// Tests for the closed-form theory predictions: Proposition 2.8 (average
// stationary generosity), Corollary C.1, Proposition D.2 (variance bound),
// and the Theorem 2.9 regime machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "ppg/core/theory.hpp"
#include "ppg/games/strategy.hpp"
#include "ppg/stats/distributions.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

// Direct evaluation of the average stationary generosity from its
// definition: sum_j g_j * mu(j) with mu(j) ∝ lambda^{j-1}.
double direct_average_generosity(double beta, std::size_t k, double g_max) {
  const double lambda = (1.0 - beta) / beta;
  const auto mu = geometric_weights(k, lambda);
  const auto grid = generosity_grid(k, g_max);
  return distribution_mean(mu, grid);
}

TEST(Proposition28, ClosedFormMatchesDirectSum) {
  for (const double beta : {0.05, 0.2, 0.4, 0.6, 0.8}) {
    for (const std::size_t k : {2u, 3u, 5u, 10u, 30u}) {
      for (const double g_max : {0.3, 0.8, 1.0}) {
        EXPECT_NEAR(average_stationary_generosity(beta, k, g_max),
                    direct_average_generosity(beta, k, g_max), 1e-9)
            << "beta=" << beta << " k=" << k << " g_max=" << g_max;
      }
    }
  }
}

TEST(Proposition28, BalancedPopulationGivesHalf) {
  EXPECT_DOUBLE_EQ(average_stationary_generosity(0.5, 7, 0.8), 0.4);
  EXPECT_DOUBLE_EQ(average_stationary_generosity(0.5, 2, 1.0), 0.5);
}

TEST(Proposition28, ApproachesGMaxForSmallBeta) {
  // beta << 1/2: average generosity -> g_max at rate O(1/k).
  const double g_max = 0.9;
  EXPECT_GT(average_stationary_generosity(0.1, 50, g_max), 0.97 * g_max);
  EXPECT_LT(average_stationary_generosity(0.9, 50, g_max), 0.03 * g_max);
}

TEST(Proposition28, MonotoneInK) {
  // For beta < 1/2, more levels mean a higher average stationary
  // generosity.
  double previous = 0.0;
  for (const std::size_t k : {2u, 4u, 8u, 16u, 32u}) {
    const double g = average_stationary_generosity(0.25, k, 1.0);
    EXPECT_GT(g, previous);
    previous = g;
  }
}

TEST(CorollaryC1, LowerBoundHolds) {
  for (const double beta : {0.05, 0.15, 0.3, 0.45}) {
    for (const std::size_t k : {2u, 4u, 10u, 40u}) {
      const double exact = average_stationary_generosity(beta, k, 0.9);
      const double bound = average_generosity_lower_bound(beta, k, 0.9);
      EXPECT_GE(exact + 1e-12, bound) << "beta=" << beta << " k=" << k;
    }
  }
}

TEST(CorollaryC1, RequiresBetaBelowHalf) {
  EXPECT_THROW((void)average_generosity_lower_bound(0.5, 5, 1.0),
               invariant_error);
  EXPECT_THROW((void)average_generosity_lower_bound(0.7, 5, 1.0),
               invariant_error);
}

TEST(CorollaryC1, OneOverKDecay) {
  // 1 - g_avg/g_max decays as Theta(1/k) for fixed lambda > 1: the product
  // k * (1 - g_avg/g_max) should stabilize to a constant.
  const double beta = 0.25;  // lambda = 3
  double previous_product = 0.0;
  for (const std::size_t k : {8u, 16u, 32u, 64u}) {
    const double gap =
        1.0 - average_stationary_generosity(beta, k, 1.0);
    const double product = gap * static_cast<double>(k);
    if (previous_product > 0.0) {
      EXPECT_NEAR(product, previous_product, 0.15 * previous_product);
    }
    previous_product = product;
  }
}

TEST(PropositionD2, VarianceBoundHolds) {
  // The bound 16/(k-1)^2 must dominate the exact variance in the lambda >= 2
  // regime (beta <= 1/3), normalized as in the proposition (g in [0, g_max],
  // g_max <= 1).
  for (const double beta : {0.05, 0.15, 0.25, 1.0 / 3.0}) {
    for (const std::size_t k : {2u, 3u, 5u, 10u, 25u}) {
      const double exact = stationary_generosity_variance(beta, k, 1.0);
      EXPECT_LE(exact, generosity_variance_bound(k))
          << "beta=" << beta << " k=" << k;
    }
  }
}

TEST(PropositionD2, VarianceDecaysQuadratically) {
  const double beta = 0.2;
  for (const std::size_t k : {4u, 8u, 16u, 32u}) {
    const double var_k = stationary_generosity_variance(beta, k, 1.0);
    const double var_2k = stationary_generosity_variance(beta, 2 * k, 1.0);
    // Doubling k should cut variance by roughly 4 (within a factor 2).
    EXPECT_LT(var_2k, var_k / 2.0);
  }
}

TEST(Theorem29Conditions, KnownGoodConfiguration) {
  // A strongly cooperative configuration: few defectors, large reward
  // ratio, moderate delta.
  const rd_setting setting{16.0, 1.0, 0.5, 0.5};
  const auto cond = check_theorem_2_9(setting, 0.1, 0.6, 0.2);
  EXPECT_TRUE(cond.s1_ok);
  EXPECT_TRUE(cond.lambda_ok);
  EXPECT_TRUE(cond.reward_ratio_ok);
  EXPECT_TRUE(cond.delta_ok) << "delta limit " << cond.delta_limit;
  EXPECT_TRUE(cond.g_max_ok) << "g_max limit " << cond.g_max_limit;
  EXPECT_TRUE(cond.deviation_gain_ok)
      << "coefficient " << cond.deviation_coefficient;
  EXPECT_TRUE(cond.all());
}

TEST(Theorem29Conditions, LiteralConditionsAdmitNonDecayingInstances) {
  // Reproduction finding (EXPERIMENTS.md, E5): this instance satisfies every
  // constraint printed in Theorem 2.9, yet the corrected deviation
  // coefficient is negative — generosity is locally *harmful* against the
  // most generous opponent (g_max = 0.9 with delta = 0.45), the best
  // deviation is g = 0, and Psi does not decay with k. The corrected
  // condition flags it.
  const rd_setting setting{4.0, 1.0, 0.45, 0.5};
  const auto cond = check_theorem_2_9(setting, 0.2, 0.7, 0.9);
  EXPECT_TRUE(cond.paper_conditions());
  EXPECT_FALSE(cond.deviation_gain_ok);
  EXPECT_LT(cond.deviation_coefficient, 0.0);
  EXPECT_FALSE(cond.all());
}

TEST(Theorem29Conditions, LambdaFailsForLargeBeta) {
  const rd_setting setting{16.0, 1.0, 0.5, 0.5};
  const auto cond = check_theorem_2_9(setting, 0.4, 0.5, 0.2);
  EXPECT_FALSE(cond.lambda_ok);  // lambda = 1.5 < 2
}

TEST(Theorem29Conditions, RewardRatioFails) {
  const rd_setting setting{1.5, 1.0, 0.5, 0.5};
  const auto cond = check_theorem_2_9(setting, 0.2, 0.5, 0.2);
  EXPECT_FALSE(cond.reward_ratio_ok);
}

TEST(Theorem29Conditions, DeltaLimitMonotoneInBeta) {
  // More defectors tighten the delta constraint.
  const rd_setting setting{16.0, 1.0, 0.5, 0.5};
  const auto loose = check_theorem_2_9(setting, 0.05, 0.6, 0.2);
  const auto tight = check_theorem_2_9(setting, 0.3, 0.6, 0.2);
  EXPECT_GT(loose.delta_limit, tight.delta_limit);
}

TEST(Theorem29Conditions, InvalidInputsThrow) {
  const rd_setting setting{16.0, 1.0, 0.5, 0.5};
  EXPECT_THROW((void)check_theorem_2_9(setting, 0.0, 0.6, 0.2),
               invariant_error);
  EXPECT_THROW((void)check_theorem_2_9(setting, 0.2, 0.0, 0.2),
               invariant_error);
  EXPECT_THROW((void)check_theorem_2_9(setting, 0.2, 0.6, 1.5),
               invariant_error);
}

TEST(Theorem29Instance, SearchFindsValidConfigurations) {
  for (const double beta : {0.05, 0.15, 0.25, 1.0 / 3.0}) {
    const double gamma = (1.0 - beta) * 0.8;  // leave some AC agents
    const auto instance = make_theorem_2_9_instance(beta, gamma, 0.5);
    const auto cond =
        check_theorem_2_9(instance.setting, beta, gamma, instance.g_max);
    EXPECT_TRUE(cond.all()) << "beta=" << beta;
    EXPECT_GT(instance.g_max, 0.0);
    EXPECT_TRUE(instance.setting.valid());
  }
}

TEST(Theorem29Instance, RejectsLargeBeta) {
  EXPECT_THROW((void)make_theorem_2_9_instance(0.4, 0.5, 0.5),
               invariant_error);
}

// Parameterized sweep of Proposition 2.8 against a brute-force weighted sum
// with explicit (non-normalized) lambda powers.
class AverageGenerositySweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(AverageGenerositySweep, BruteForceAgreement) {
  const auto [beta, k] = GetParam();
  const double g_max = 0.85;
  const double lambda = (1.0 - beta) / beta;
  double num = 0.0;
  double den = 0.0;
  for (std::size_t j = 1; j <= k; ++j) {
    const double w = std::pow(lambda, static_cast<double>(j - 1));
    num += g_max * static_cast<double>(j - 1) /
           static_cast<double>(k - 1) * w;
    den += w;
  }
  EXPECT_NEAR(average_stationary_generosity(beta, k, g_max), num / den,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    BetaK, AverageGenerositySweep,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.45, 0.55, 0.7),
                       ::testing::Values(std::size_t{2}, std::size_t{4},
                                         std::size_t{9}, std::size_t{17})));

}  // namespace
}  // namespace ppg
