// Tests for the autocorrelation diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/stats/autocorrelation.hpp"
#include "ppg/util/error.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {
namespace {

TEST(Autocorrelation, LagZeroIsOne) {
  const std::vector<double> series = {1.0, 2.0, 0.5, 3.0, 1.5};
  EXPECT_DOUBLE_EQ(autocorrelation(series, 0), 1.0);
}

TEST(Autocorrelation, IidSeriesDecorrelates) {
  rng gen(61);
  std::vector<double> series(20000);
  for (auto& x : series) x = gen.next_double();
  EXPECT_NEAR(autocorrelation(series, 1), 0.0, 0.03);
  EXPECT_NEAR(autocorrelation(series, 5), 0.0, 0.03);
  EXPECT_NEAR(integrated_autocorrelation_time(series), 1.0, 0.15);
  EXPECT_GT(effective_sample_size(series), 0.8 * 20000);
}

TEST(Autocorrelation, Ar1SeriesHasKnownTau) {
  // AR(1) with coefficient phi: rho(l) = phi^l and
  // tau = 1 + 2 phi/(1 - phi) = (1 + phi)/(1 - phi).
  rng gen(62);
  const double phi = 0.8;
  std::vector<double> series(400000);
  double x = 0.0;
  for (auto& out : series) {
    x = phi * x + (gen.next_double() - 0.5);
    out = x;
  }
  const double tau = integrated_autocorrelation_time(series, 2000, 0.001);
  EXPECT_NEAR(tau, (1.0 + phi) / (1.0 - phi), 1.0);
}

TEST(Autocorrelation, ConstantSeriesIsHandled) {
  const std::vector<double> series(100, 3.0);
  EXPECT_DOUBLE_EQ(autocorrelation(series, 3), 0.0);
  EXPECT_DOUBLE_EQ(integrated_autocorrelation_time(series), 1.0);
}

TEST(Autocorrelation, AlternatingSeriesIsNegativelyCorrelated) {
  std::vector<double> series(1000);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = (i % 2 == 0) ? 1.0 : -1.0;
  }
  EXPECT_NEAR(autocorrelation(series, 1), -1.0, 0.01);
  // Negative rho(1) stops the adaptive window immediately: tau ~ 1.
  EXPECT_NEAR(integrated_autocorrelation_time(series), 1.0, 0.01);
}

TEST(Autocorrelation, InputValidation) {
  const std::vector<double> tiny = {1.0};
  EXPECT_THROW((void)autocorrelation(tiny, 0), invariant_error);
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW((void)autocorrelation(two, 2), invariant_error);
  EXPECT_THROW((void)integrated_autocorrelation_time(two), invariant_error);
}

TEST(Autocorrelation, IgtCensusTimeScaleGrowsWithN) {
  // The census autocorrelation time of the k-IGT count chain grows with
  // the population (single-ball moves change a larger census more slowly):
  // a practical demonstration of why benches decorrelate samples.
  auto measure_tau = [](std::uint64_t n_gtft) {
    const abg_population pop{10, 10, n_gtft};
    igt_count_chain chain(pop, 3, 0);
    rng gen(63);
    chain.run(50'000, gen);
    std::vector<double> top_level;
    top_level.reserve(40000);
    for (int i = 0; i < 40000; ++i) {
      chain.step(gen);
      top_level.push_back(static_cast<double>(chain.counts()[2]));
    }
    return integrated_autocorrelation_time(top_level, 20000, 0.02);
  };
  const double tau_small = measure_tau(20);
  const double tau_large = measure_tau(200);
  EXPECT_GT(tau_large, 2.0 * tau_small);
}

}  // namespace
}  // namespace ppg
