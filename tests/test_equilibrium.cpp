// Tests for the distributional-equilibrium machinery: induced distributions,
// the Definition 1.2 gap Psi, agreement between the closed-form analyzer and
// the exact-engine Definition 1.1 path, and the O(1/k) decay of Theorem 2.9.
#include <gtest/gtest.h>

#include <cmath>

#include "ppg/core/equilibrium.hpp"
#include "ppg/core/theory.hpp"
#include "ppg/stats/distributions.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(InducedDistribution, MatchesEquation3) {
  const std::vector<double> mu = {0.5, 0.3, 0.2};
  const auto full = induced_full_distribution(mu, 0.2, 0.3, 0.5);
  ASSERT_EQ(full.size(), 5u);
  EXPECT_DOUBLE_EQ(full[0], 0.2);             // AC
  EXPECT_DOUBLE_EQ(full[1], 0.3);             // AD
  EXPECT_DOUBLE_EQ(full[2], 0.5 * 0.5);       // gamma * mu(1)
  EXPECT_DOUBLE_EQ(full[3], 0.5 * 0.3);
  EXPECT_DOUBLE_EQ(full[4], 0.5 * 0.2);
  EXPECT_TRUE(is_distribution(full));
}

TEST(InducedDistribution, Validation) {
  EXPECT_THROW(
      (void)induced_full_distribution({0.5, 0.6}, 0.2, 0.3, 0.5),
      invariant_error);
  EXPECT_THROW(
      (void)induced_full_distribution({1.0}, 0.2, 0.3, 0.6),
      invariant_error);
}

igt_equilibrium_analyzer default_analyzer(std::size_t k) {
  const rd_setting setting{16.0, 1.0, 0.5, 0.5};
  return igt_equilibrium_analyzer(setting, 0.3, 0.1, 0.6, k, 0.2);
}

TEST(Analyzer, GapIsNonNegativeForAnyMu) {
  const auto analyzer = default_analyzer(5);
  for (const auto& mu :
       {std::vector<double>{1.0, 0.0, 0.0, 0.0, 0.0},
        std::vector<double>{0.0, 0.0, 0.0, 0.0, 1.0},
        std::vector<double>{0.2, 0.2, 0.2, 0.2, 0.2},
        std::vector<double>{0.05, 0.1, 0.15, 0.3, 0.4}}) {
    const auto result = analyzer.gap(mu);
    EXPECT_GE(result.epsilon, -1e-12);
    EXPECT_GE(result.best_payoff, result.mean_payoff - 1e-12);
  }
}

TEST(Analyzer, PointMassAtBestLevelHasZeroGap) {
  // If mu is the point mass at the argmax level, the mean equals the max,
  // so the gap vanishes... but the argmax can shift with mu itself. Find a
  // fixed point by iterating: for this setting the best response to "all
  // mass at top" is the top level itself (Proposition 2.2 regime).
  const auto analyzer = default_analyzer(5);
  std::vector<double> top(5, 0.0);
  top.back() = 1.0;
  const auto result = analyzer.gap(top);
  ASSERT_TRUE(proposition_2_2_regime(analyzer.setting(), 0.2));
  EXPECT_EQ(result.best_level, 4u);
  EXPECT_NEAR(result.epsilon, 0.0, 1e-12);
}

TEST(Analyzer, BestLevelIsTopInProposition22Regime) {
  // Inside the Prop 2.2 regime, f is increasing in g, so the best deviation
  // is always the top level regardless of mu.
  const auto analyzer = default_analyzer(6);
  ASSERT_TRUE(proposition_2_2_regime(analyzer.setting(), 0.2));
  const auto uniform = std::vector<double>(6, 1.0 / 6.0);
  EXPECT_EQ(analyzer.gap(uniform).best_level, 5u);
  EXPECT_EQ(analyzer.stationary_gap().best_level, 5u);
}

TEST(Analyzer, StationaryMuMatchesTheorem27) {
  const auto analyzer = default_analyzer(4);
  const auto mu = analyzer.stationary_mu();
  // beta = 0.1 -> lambda = 9.
  EXPECT_NEAR(mu[1] / mu[0], 9.0, 1e-9);
  EXPECT_TRUE(is_distribution(mu));
}

TEST(Analyzer, PayoffVsMixtureInterpolatesGridRows) {
  const auto analyzer = default_analyzer(4);
  const auto mu = std::vector<double>{0.25, 0.25, 0.25, 0.25};
  const auto result = analyzer.gap(mu);
  // payoff_vs_mixture at a grid point equals the tabulated deviation payoff.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(analyzer.payoff_vs_mixture(analyzer.grid()[i], mu),
                result.deviation_payoffs[i], 1e-9);
  }
}

TEST(Analyzer, AgreesWithExactEngineDefinition11Path) {
  // Build the full payoff matrix with the matrix engine and evaluate the
  // Definition 1.1 gap at mu_hat; the first player's deviation gap
  // restricted to GTFT strategies must match the analyzer's Psi.
  const rd_setting setting{16.0, 1.0, 0.5, 0.5};
  const double alpha = 0.3;
  const double beta = 0.1;
  const double gamma = 0.6;
  const std::size_t k = 4;
  const double g_max = 0.2;
  const igt_equilibrium_analyzer analyzer(setting, alpha, beta, gamma, k,
                                          g_max);
  const auto mu = analyzer.stationary_mu();
  const auto result = analyzer.gap(mu);

  const auto u = full_payoff_matrix(setting, k, g_max);
  const auto mu_hat = induced_full_distribution(mu, alpha, beta, gamma);
  // E_{S ~ mu_hat}[f(g_i, S)] from the engine matrix.
  for (std::size_t i = 0; i < k; ++i) {
    double dev = 0.0;
    for (std::size_t j = 0; j < mu_hat.size(); ++j) {
      dev += mu_hat[j] * u(2 + i, j);
    }
    EXPECT_NEAR(dev, result.deviation_payoffs[i], 1e-8) << "level " << i;
  }
}

TEST(GeneralDeGap, SymmetricGameConsistency) {
  // For a symmetric game u2(i, j) = u1(j, i), the two players' gaps agree
  // when mu is symmetric.
  const auto u1 = matrix::from_rows({{1.0, 0.0}, {3.0, 2.0}});
  const auto u2 = u1.transposed();
  const std::vector<double> mu = {0.5, 0.5};
  const auto result = general_de_gap(u1, u2, mu);
  EXPECT_NEAR(result.epsilon1, result.epsilon2, 1e-12);
}

TEST(GeneralDeGap, PrisonersDilemmaPureDefectionIsEquilibrium) {
  // One-shot donation PD: (AD, AD) is the Nash equilibrium, so the point
  // mass on AD has zero gap.
  const auto u1 =
      matrix::from_rows({{2.0, -1.0}, {3.0, 0.0}});  // rows: C, D
  const auto u2 = u1.transposed();
  const std::vector<double> defect = {0.0, 1.0};
  const auto result = general_de_gap(u1, u2, defect);
  EXPECT_NEAR(result.epsilon(), 0.0, 1e-12);
  // Full cooperation is NOT an equilibrium: gap is b - (b - c) = c = 1.
  const std::vector<double> cooperate = {1.0, 0.0};
  EXPECT_NEAR(general_de_gap(u1, u2, cooperate).epsilon(), 1.0, 1e-12);
}

TEST(GeneralDeGap, MatchingPenniesUniformIsEquilibrium) {
  const auto u1 = matrix::from_rows({{1.0, -1.0}, {-1.0, 1.0}});
  const auto u2 = matrix::from_rows({{-1.0, 1.0}, {1.0, -1.0}});
  const std::vector<double> uniform = {0.5, 0.5};
  EXPECT_NEAR(general_de_gap(u1, u2, uniform).epsilon(), 0.0, 1e-12);
  const std::vector<double> skewed = {0.9, 0.1};
  EXPECT_GT(general_de_gap(u1, u2, skewed).epsilon(), 0.5);
}

// Theorem 2.9: Psi decays as O(1/k) in an admissible regime — k * Psi stays
// bounded (and roughly stabilizes) as k grows.
TEST(Theorem29, PsiDecaysAsOneOverK) {
  const double beta = 0.2;
  const double gamma = 0.7;
  const double alpha = 0.1;
  const auto instance = make_theorem_2_9_instance(beta, gamma, 0.5);
  ASSERT_TRUE(
      check_theorem_2_9(instance.setting, beta, gamma, instance.g_max)
          .all());
  std::vector<double> scaled;
  for (const std::size_t k : {4u, 8u, 16u, 32u, 64u}) {
    const igt_equilibrium_analyzer analyzer(instance.setting, alpha, beta,
                                            gamma, k, instance.g_max);
    const auto result = analyzer.stationary_gap();
    EXPECT_GE(result.epsilon, 0.0);
    scaled.push_back(result.epsilon * static_cast<double>(k));
  }
  // k * Psi bounded: the largest value is within a constant of the smallest
  // nonzero value, and no growth trend.
  for (std::size_t i = 1; i < scaled.size(); ++i) {
    EXPECT_LT(scaled[i], 4.0 * scaled[0] + 1e-9)
        << "k*Psi grew: " << scaled[i] << " vs " << scaled[0];
  }
}

TEST(Theorem29, PsiSmallerWithMoreLevels) {
  const double beta = 0.25;
  const double gamma = 0.7;
  const double alpha = 0.05;
  const auto instance = make_theorem_2_9_instance(beta, gamma, 0.5);
  double previous = 1e300;
  for (const std::size_t k : {4u, 16u, 64u}) {
    const igt_equilibrium_analyzer analyzer(instance.setting, alpha, beta,
                                            gamma, k, instance.g_max);
    const double eps = analyzer.stationary_gap().epsilon;
    EXPECT_LT(eps, previous);
    previous = eps;
  }
}

TEST(Analyzer, InputValidation) {
  const rd_setting setting{16.0, 1.0, 0.5, 0.5};
  EXPECT_THROW(
      igt_equilibrium_analyzer(setting, 0.5, 0.1, 0.6, 4, 0.2),
      invariant_error);  // fractions don't sum to 1
  const auto analyzer = default_analyzer(3);
  EXPECT_THROW((void)analyzer.gap({0.5, 0.5}), invariant_error);  // wrong k
  EXPECT_THROW((void)analyzer.gap({0.7, 0.7, -0.4}), invariant_error);
}

}  // namespace
}  // namespace ppg
