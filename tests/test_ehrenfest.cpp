// Tests for the (k, a, b, m)-Ehrenfest process simulations: parameter
// validation, conservation laws, the equivalence of the count-chain and
// coordinate-walk representations, and convergence of long-run occupation
// to the Theorem 2.4 stationary law.
#include <gtest/gtest.h>

#include <numeric>

#include "ppg/ehrenfest/coordinate_walk.hpp"
#include "ppg/ehrenfest/process.hpp"
#include "ppg/ehrenfest/stationary.hpp"
#include "ppg/stats/chi_square.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(EhrenfestParams, Validity) {
  EXPECT_TRUE((ehrenfest_params{2, 0.3, 0.3, 5}).valid());
  EXPECT_FALSE((ehrenfest_params{1, 0.3, 0.3, 5}).valid());   // k < 2
  EXPECT_FALSE((ehrenfest_params{3, 0.0, 0.3, 5}).valid());   // a = 0
  EXPECT_FALSE((ehrenfest_params{3, 0.6, 0.6, 5}).valid());   // a + b > 1
  EXPECT_FALSE((ehrenfest_params{3, 0.3, 0.3, 0}).valid());   // m = 0
  EXPECT_DOUBLE_EQ((ehrenfest_params{3, 0.4, 0.2, 5}).lambda(), 2.0);
}

TEST(EhrenfestProcess, ConservesBallCount) {
  const ehrenfest_params params{4, 0.3, 0.2, 20};
  auto process = ehrenfest_process::at_corner(params, false);
  rng gen(201);
  for (int i = 0; i < 5000; ++i) {
    process.step(gen);
    const auto& counts = process.counts();
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::uint64_t{0}),
              params.m);
  }
  EXPECT_EQ(process.time(), 5000u);
}

TEST(EhrenfestProcess, CornerStarts) {
  const ehrenfest_params params{3, 0.25, 0.25, 7};
  const auto bottom = ehrenfest_process::at_corner(params, false);
  EXPECT_EQ(bottom.counts()[0], 7u);
  const auto top = ehrenfest_process::at_corner(params, true);
  EXPECT_EQ(top.counts()[2], 7u);
}

TEST(EhrenfestProcess, RejectsBadInitialCounts) {
  const ehrenfest_params params{3, 0.25, 0.25, 7};
  EXPECT_THROW(ehrenfest_process(params, {3, 3}), invariant_error);
  EXPECT_THROW(ehrenfest_process(params, {3, 3, 3}), invariant_error);
}

TEST(CoordinateWalk, CountsTrackValues) {
  const ehrenfest_params params{5, 0.3, 0.3, 12};
  coordinate_walk walk(params, 2);
  rng gen(202);
  walk.run(3000, gen);
  std::vector<std::uint64_t> manual(params.k, 0);
  for (const auto v : walk.values()) {
    ++manual[v];
  }
  EXPECT_EQ(manual, walk.counts());
}

TEST(CoordinateWalk, RejectsOutOfRangeValues) {
  const ehrenfest_params params{3, 0.3, 0.3, 2};
  EXPECT_THROW(coordinate_walk(params, std::vector<std::uint32_t>{0, 3}),
               invariant_error);
  EXPECT_THROW(coordinate_walk(params, std::vector<std::uint32_t>{0}),
               invariant_error);
}

TEST(CoordinateWalk, IdenticalLawToCountChain) {
  // Both representations must produce the same distribution of counts after
  // a fixed time horizon (they are the same Markov chain): compare long-run
  // occupancy of urn 0 for a small instance.
  const ehrenfest_params params{3, 0.2, 0.3, 6};
  rng gen_a(203);
  rng gen_b(204);
  auto process = ehrenfest_process::at_corner(params, false);
  coordinate_walk walk(params, 0);
  const int burn = 20000;
  const int samples = 60000;
  process.run(burn, gen_a);
  walk.run(burn, gen_b);
  double occ_process = 0.0;
  double occ_walk = 0.0;
  for (int i = 0; i < samples; ++i) {
    process.step(gen_a);
    walk.step(gen_b);
    occ_process += static_cast<double>(process.counts()[0]);
    occ_walk += static_cast<double>(walk.counts()[0]);
  }
  occ_process /= samples;
  occ_walk /= samples;
  EXPECT_NEAR(occ_process, occ_walk, 0.1);
}

TEST(EhrenfestStationary, ProbsAreGeometric) {
  const ehrenfest_params params{4, 0.4, 0.2, 10};
  const auto p = ehrenfest_stationary_probs(params);
  EXPECT_TRUE(is_distribution(p));
  EXPECT_NEAR(p[1] / p[0], 2.0, 1e-12);
  EXPECT_NEAR(p[3] / p[2], 2.0, 1e-12);
}

TEST(EhrenfestStationary, MeanSumsToM) {
  const ehrenfest_params params{5, 0.25, 0.35, 17};
  const auto mean = ehrenfest_stationary_mean(params);
  double total = 0.0;
  for (const double x : mean) total += x;
  EXPECT_NEAR(total, 17.0, 1e-9);
}

TEST(EhrenfestStationary, SamplerMatchesPmfMarginals) {
  const ehrenfest_params params{3, 0.3, 0.15, 12};
  rng gen(205);
  const auto probs = ehrenfest_stationary_probs(params);
  std::vector<double> occupancy(params.k, 0.0);
  constexpr int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    const auto sample = sample_ehrenfest_stationary(params, gen);
    for (std::size_t j = 0; j < params.k; ++j) {
      occupancy[j] += static_cast<double>(sample[j]);
    }
  }
  for (std::size_t j = 0; j < params.k; ++j) {
    EXPECT_NEAR(occupancy[j] / (trials * static_cast<double>(params.m)),
                probs[j], 0.01);
  }
}

// Theorem 2.4, simulated: the per-ball marginal occupancy under the
// long-run count chain matches the geometric stationary probabilities.
class StationaryOccupancySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(StationaryOccupancySweep, LongRunOccupancyMatchesTheorem24) {
  const auto [k, lambda] = GetParam();
  const double b = 0.2;
  const ehrenfest_params params{k, lambda * b, b, 30};
  ASSERT_TRUE(params.valid());
  rng gen(206 + k);
  coordinate_walk walk(params, 0);
  const std::uint64_t burn = 300ull * params.m * k;
  walk.run(burn, gen);
  std::vector<double> occupancy(k, 0.0);
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    walk.step(gen);
    for (std::size_t j = 0; j < k; ++j) {
      occupancy[j] += static_cast<double>(walk.counts()[j]);
    }
  }
  std::vector<double> empirical(k);
  for (std::size_t j = 0; j < k; ++j) {
    empirical[j] = occupancy[j] / (samples * static_cast<double>(params.m));
  }
  const auto expected = ehrenfest_stationary_probs(params);
  EXPECT_LT(total_variation(empirical, expected), 0.02)
      << "k=" << k << " lambda=" << lambda;
}

INSTANTIATE_TEST_SUITE_P(
    KLambda, StationaryOccupancySweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{6}),
                       ::testing::Values(0.5, 1.0, 2.0)));

TEST(EhrenfestStationary, PmfConsistentWithProbs) {
  const ehrenfest_params params{3, 0.3, 0.3, 4};
  // Sum of the PMF over the whole simplex is 1.
  double total = 0.0;
  for (std::uint64_t x = 0; x <= 4; ++x) {
    for (std::uint64_t y = 0; x + y <= 4; ++y) {
      total += ehrenfest_stationary_pmf(params, {x, y, 4 - x - y});
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace ppg
