// Tests for the ppg-bench experiment harness: scenario registry semantics,
// --filter selection, the JSON writer/parser (escaping + round-trip of a
// scenario_result), flag parsing, artifact schema, and the determinism
// contract two identical --smoke --seed runs must satisfy.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ppg/exp/harness.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/exp/scenario.hpp"
#include "ppg/util/error.hpp"
#include "ppg/util/json.hpp"

namespace {

using namespace ppg;

scenario_result trivial_scenario(const scenario_context&) {
  scenario_result result;
  result.metric("answer", 42.0);
  return result;
}

TEST(ScenarioRegistry, RegisterAndFind) {
  scenario_registry registry;
  registry.register_scenario("alpha", "tag1,tag2", "first", trivial_scenario);
  registry.register_scenario("beta", "tag2", "second", trivial_scenario);
  ASSERT_NE(registry.find("alpha"), nullptr);
  EXPECT_EQ(registry.find("alpha")->description, "first");
  EXPECT_EQ(registry.find("missing"), nullptr);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ScenarioRegistry, DuplicateNameThrows) {
  scenario_registry registry;
  registry.register_scenario("alpha", "", "first", trivial_scenario);
  EXPECT_THROW(
      registry.register_scenario("alpha", "", "again", trivial_scenario),
      invariant_error);
}

TEST(ScenarioRegistry, EmptyNameOrBodyThrows) {
  scenario_registry registry;
  EXPECT_THROW(registry.register_scenario("", "", "x", trivial_scenario),
               invariant_error);
  EXPECT_THROW(registry.register_scenario("ok", "", "x", nullptr),
               invariant_error);
}

TEST(ScenarioRegistry, FilterMatchesNamesAndTags) {
  scenario_registry registry;
  registry.register_scenario("e1_stationary", "ehrenfest,exact", "",
                             trivial_scenario);
  registry.register_scenario("e11_mixing", "igt,simulation", "",
                             trivial_scenario);
  registry.register_scenario("a1_ablation", "igt,ablation", "",
                             trivial_scenario);

  // Empty filter selects everything, name-sorted.
  const auto all = registry.match("");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name, "a1_ablation");
  EXPECT_EQ(all[1]->name, "e11_mixing");
  EXPECT_EQ(all[2]->name, "e1_stationary");

  // Substring regex over names: "e1" matches both e1_* and e11_*.
  EXPECT_EQ(registry.match("e1").size(), 2u);
  // Anchors narrow it down.
  const auto anchored = registry.match("^e1_");
  ASSERT_EQ(anchored.size(), 1u);
  EXPECT_EQ(anchored[0]->name, "e1_stationary");
  // Tag matches select too: "igt" is a tag of two scenarios.
  EXPECT_EQ(registry.match("^igt$").size(), 2u);
  // No match is empty, not an error.
  EXPECT_TRUE(registry.match("zzz").empty());
  // Malformed regex throws.
  EXPECT_THROW(registry.match("["), invariant_error);
}

TEST(FormatMetric, ShortestRoundTrip) {
  // The std::to_string bug this replaces: fixed six decimals lose
  // precision (to_string(2.0/3.0) == "0.666667") and pad integers
  // ("2.000000"). format_metric is shortest-round-trip.
  EXPECT_EQ(format_metric(2.0), "2");
  EXPECT_EQ(format_metric(0.1), "0.1");
  const double lambda = 2.0 / 3.0;
  EXPECT_EQ(std::stod(format_metric(lambda)), lambda);
  // Rounded display: shortest form of the rounded value.
  EXPECT_EQ(format_metric(lambda, 4), "0.6667");
  EXPECT_EQ(format_metric(2.0, 4), "2");
  EXPECT_EQ(format_metric(1234.5678, 2), "1200");
  EXPECT_EQ(format_metric(0.0), "0");
}

TEST(Json, EscapingRoundTrip) {
  json doc = json::object();
  doc["quote\"backslash\\"] = "tab\tnewline\ncontrol\x01";
  doc["unicode"] = std::string("caf\xc3\xa9");  // UTF-8 passes through
  const std::string text = doc.dump_string();
  EXPECT_NE(text.find("\\\""), std::string::npos);
  EXPECT_NE(text.find("\\\\"), std::string::npos);
  EXPECT_NE(text.find("\\t"), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  const json parsed = json::parse(text);
  EXPECT_EQ(parsed, doc);
}

TEST(Json, ParserAcceptsStandardEscapes) {
  const json parsed =
      json::parse(R"({"s": "a\/b A 😀", "n": [1, -2.5e3]})");
  EXPECT_EQ(parsed.find("s")->as_string(),
            "a/b A \xf0\x9f\x98\x80");  // surrogate pair -> U+1F600
  EXPECT_EQ(parsed.find("n")->items()[1].as_number(), -2500.0);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), invariant_error);
  EXPECT_THROW(json::parse("[1,]"), invariant_error);
  EXPECT_THROW(json::parse("{\"a\": 1} trailing"), invariant_error);
  EXPECT_THROW(json::parse("\"unterminated"), invariant_error);
  EXPECT_THROW(json::parse("{\"a\": 1, \"a\": 2}"), invariant_error);
  EXPECT_THROW(json::parse("nul"), invariant_error);
}

TEST(Json, ParseLimitsRejectOversizedInput) {
  json::parse_limits limits;
  limits.max_bytes = 16;
  EXPECT_NO_THROW((void)json::parse(R"({"a": 1})", limits));
  try {
    (void)json::parse(R"({"key": "0123456789"})", limits);
    FAIL() << "oversized input was accepted";
  } catch (const invariant_error& e) {
    // The error must point at both sizes, so a client learns the cap.
    const std::string what = e.what();
    EXPECT_NE(what.find("21 bytes"), std::string::npos) << what;
    EXPECT_NE(what.find("16-byte limit"), std::string::npos) << what;
  }
  // max_bytes == 0 means unlimited (the trusted-input default).
  limits.max_bytes = 0;
  EXPECT_NO_THROW((void)json::parse(R"({"key": "0123456789"})", limits));
}

TEST(Json, ParseLimitsRejectDeepNesting) {
  json::parse_limits limits;
  limits.max_depth = 4;
  EXPECT_NO_THROW((void)json::parse("[[[[1]]]]", limits));  // exactly 4 deep
  try {
    (void)json::parse("[[[[[1]]]]]", limits);
    FAIL() << "over-deep input was accepted";
  } catch (const invariant_error& e) {
    EXPECT_NE(std::string(e.what()).find("deeper than 4 levels"),
              std::string::npos)
        << e.what();
  }
  // Objects and arrays share the one depth budget: 4 mixed levels pass,
  // a fifth of either kind is refused.
  EXPECT_NO_THROW((void)json::parse(R"({"a": [{"b": [1]}]})", limits));
  EXPECT_THROW((void)json::parse(R"({"a": [{"b": [[1]]}]})", limits),
               invariant_error);
  EXPECT_THROW((void)(json::parse("x", json::parse_limits{0, 0})),
               invariant_error);  // a zero depth budget is a caller bug
}

TEST(Json, DefaultParseDepthIsBounded) {
  // The unlimited-bytes default still bounds recursion: 4000 open brackets
  // must fail with the depth error, not a stack overflow.
  const std::string deep(4000, '[');
  try {
    (void)json::parse(deep);
    FAIL() << "unbounded nesting was accepted";
  } catch (const invariant_error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting deeper"), std::string::npos)
        << e.what();
  }
}

TEST(Json, LargeUnsignedIntegersStayExact) {
  // Seeds above 2^53 must not be routed through double: the artifact
  // exists so a run can be reproduced from its recorded parameters.
  const std::uint64_t seed = 9007199254740993ull;  // 2^53 + 1
  json doc = json::object();
  doc["seed"] = seed;
  const std::string text = doc.dump_string(false);
  EXPECT_NE(text.find("9007199254740993"), std::string::npos);
  const json parsed = json::parse(text);
  EXPECT_EQ(parsed.find("seed")->as_uint64(), seed);
  EXPECT_EQ(json::parse("18446744073709551615").as_uint64(),
            ~std::uint64_t{0});
  // Small integers written from int compare equal to their re-parsed
  // (exact) form.
  EXPECT_EQ(json::parse(json(400).dump_string()), json(400));
}

TEST(Json, NumbersSurviveRoundTrip) {
  json doc = json::array();
  doc.push_back(1.0 / 3.0);
  doc.push_back(6.59e-17);
  doc.push_back(1e300);
  doc.push_back(-0.0);
  const json parsed = json::parse(doc.dump_string(false));
  for (std::size_t i = 0; i < doc.size(); ++i) {
    EXPECT_EQ(parsed.items()[i].as_number(), doc.items()[i].as_number());
  }
}

TEST(ScenarioResult, JsonRoundTrip) {
  scenario_result result;
  result.param("n", 400);
  result.param("engine", "census");
  result.metric("max_tv", 0.0123456789012345, metric_goal::minimize);
  result.metric("speedup", 11.5, metric_goal::maximize);
  result.metric("untracked", 1.0);
  auto& table = result.table("sweep \"quoted\"", {"k", "value"});
  table.add_row({"2", format_metric(1.0 / 3.0)});
  result.note("line one\nline two");

  const json fragment = result.to_json();
  const json parsed = json::parse(fragment.dump_string());
  EXPECT_EQ(parsed, fragment);
  EXPECT_EQ(parsed.find("params")->find("n")->as_number(), 400.0);
  EXPECT_EQ(parsed.find("metrics")->find("max_tv")->as_number(),
            0.0123456789012345);
  EXPECT_EQ(parsed.find("metric_goals")->find("max_tv")->as_string(), "min");
  EXPECT_EQ(parsed.find("metric_goals")->find("speedup")->as_string(), "max");
  EXPECT_EQ(parsed.find("metric_goals")->find("untracked"), nullptr);
  const auto& rows = parsed.find("tables")->items()[0].find("rows")->items();
  EXPECT_EQ(std::stod(rows[0].items()[1].as_string()), 1.0 / 3.0);
}

TEST(ScenarioResult, MetricOverwriteKeepsOnePerName) {
  scenario_result result;
  result.metric("x", 1.0);
  result.metric("x", 2.0, metric_goal::minimize);
  EXPECT_EQ(result.metrics().size(), 1u);
  EXPECT_EQ(result.metric_value("x"), 2.0);
  EXPECT_THROW(static_cast<void>(result.metric_value("missing")),
               invariant_error);
}

TEST(ScenarioTable, RowWidthEnforced) {
  scenario_result result;
  auto& table = result.table("t", {"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), invariant_error);
}

TEST(HarnessArgs, ParseAllFlags) {
  const auto options = parse_harness_args(
      {"--smoke", "--filter", "e1.*", "--seed", "7", "--threads", "3",
       "--json", "out.json"});
  EXPECT_TRUE(options.smoke);
  EXPECT_EQ(options.filter, "e1.*");
  EXPECT_EQ(options.seed, 7u);
  EXPECT_EQ(options.threads, 3u);
  EXPECT_EQ(options.json_path, "out.json");
  EXPECT_FALSE(options.list);

  EXPECT_THROW(parse_harness_args({"--bogus"}), invariant_error);
  EXPECT_THROW(parse_harness_args({"--seed"}), invariant_error);
  EXPECT_THROW(parse_harness_args({"--seed", "abc"}), invariant_error);
  // strtoull would silently wrap these; the parser must reject them.
  EXPECT_THROW(parse_harness_args({"--seed", "-1"}), invariant_error);
  EXPECT_THROW(parse_harness_args({"--seed", "99999999999999999999"}),
               invariant_error);
  // A full 64-bit seed survives parsing exactly.
  EXPECT_EQ(parse_harness_args({"--seed", "18446744073709551615"}).seed,
            ~std::uint64_t{0});
}

// A toy Monte-Carlo scenario: all randomness flows from ctx.seed through
// the batch engine, so the harness determinism contract applies.
scenario_result monte_carlo_scenario(const scenario_context& ctx) {
  scenario_result result;
  const std::size_t replicas = ctx.pick<std::size_t>(8, 4);
  const auto agg = replicate_scalar(
      ctx.batch(replicas), [](const replica_context&, rng& gen) {
        double total = 0.0;
        for (int i = 0; i < 1000; ++i) total += gen.next_double();
        return total;
      });
  result.param("replicas", replicas);
  result.metric("mean", agg.mean(), metric_goal::minimize);
  result.metric("extra_draw", ctx.make_rng(1).next_double());
  return result;
}

// Runs the harness once and returns the parsed artifact.
json run_once(scenario_registry& registry, const harness_options& options) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_harness(options, registry, out, err);
  EXPECT_EQ(code, 0) << err.str();
  std::ifstream file(options.json_path);
  std::stringstream text;
  text << file.rdbuf();
  return json::parse(text.str());
}

TEST(Harness, SmokeRunsAreDeterministic) {
  scenario_registry registry;
  registry.register_scenario("mc", "toy", "deterministic toy",
                             monte_carlo_scenario);
  harness_options options;
  options.smoke = true;
  options.seed = 42;
  const std::string path_a = testing::TempDir() + "ppg_det_a.json";
  const std::string path_b = testing::TempDir() + "ppg_det_b.json";
  options.json_path = path_a;
  const json first = run_once(registry, options);
  options.json_path = path_b;
  const json second = run_once(registry, options);

  // Two --smoke --seed 42 runs produce bitwise-identical metrics (wall_s
  // and timestamp legitimately differ).
  const json* metrics_a = first.find("scenarios")->items()[0].find("metrics");
  const json* metrics_b =
      second.find("scenarios")->items()[0].find("metrics");
  EXPECT_EQ(*metrics_a, *metrics_b);

  // A different seed changes the metrics.
  options.seed = 43;
  const json third = run_once(registry, options);
  EXPECT_NE(*third.find("scenarios")->items()[0].find("metrics"), *metrics_a);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(Harness, ArtifactSchema) {
  scenario_registry registry;
  registry.register_scenario("mc", "toy", "toy", monte_carlo_scenario);
  harness_options options;
  options.smoke = true;
  const scenario_context ctx{options.smoke, options.seed, options.threads};
  std::vector<harness_run> runs;
  runs.push_back({"mc", registry.find("mc")->run(ctx), 0.5});
  const json artifact = harness_artifact(runs, options);

  EXPECT_EQ(artifact.find("schema_version")->as_number(),
            static_cast<double>(bench_schema_version));
  ASSERT_NE(artifact.find("git_sha"), nullptr);
  ASSERT_NE(artifact.find("build_type"), nullptr);
  ASSERT_NE(artifact.find("timestamp"), nullptr);
  EXPECT_TRUE(artifact.find("smoke")->as_bool());
  const auto& scenario = artifact.find("scenarios")->items()[0];
  EXPECT_EQ(scenario.find("name")->as_string(), "mc");
  EXPECT_EQ(scenario.find("wall_s")->as_number(), 0.5);
  ASSERT_NE(scenario.find("params"), nullptr);
  ASSERT_NE(scenario.find("metrics"), nullptr);
  ASSERT_NE(scenario.find("metric_goals"), nullptr);
  ASSERT_NE(scenario.find("tables"), nullptr);
  ASSERT_NE(scenario.find("notes"), nullptr);
}

TEST(Harness, ListAndFilterExitCodes) {
  scenario_registry registry;
  registry.register_scenario("mc", "toy", "toy", monte_carlo_scenario);
  std::ostringstream out;
  std::ostringstream err;

  harness_options list_options;
  list_options.list = true;
  EXPECT_EQ(run_harness(list_options, registry, out, err), 0);
  EXPECT_NE(out.str().find("mc"), std::string::npos);

  harness_options no_match;
  no_match.filter = "nothing-matches";
  EXPECT_EQ(run_harness(no_match, registry, out, err), 2);

  harness_options bad_regex;
  bad_regex.filter = "[";
  EXPECT_EQ(run_harness(bad_regex, registry, out, err), 2);
}

}  // namespace
