// Shared helpers for the engine-agreement suites (test_engines,
// test_game_dynamics): per-replica census statistics across engines and a
// two-sample chi-square homogeneity test for comparing their laws.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "ppg/pp/engine.hpp"
#include "ppg/stats/chi_square.hpp"
#include "ppg/util/rng.hpp"

namespace ppg::testing {

/// Runs `replicas` independent engines of `kind` for `steps` interactions
/// each and collects a scalar census statistic per replica.
inline std::vector<double> replica_statistics(
    const sim_spec& spec, engine_kind kind, std::size_t replicas,
    std::uint64_t steps, std::uint64_t master,
    const std::function<double(const census_view&)>& statistic) {
  std::vector<double> out;
  out.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    rng gen = make_stream_rng(master, r);
    const auto engine = spec.make_engine(kind, gen);
    engine->run(steps);
    out.push_back(statistic(engine->census()));
  }
  return out;
}

/// Two-sample chi-square homogeneity test on scalar samples, binned at the
/// pooled quantiles; returns the upper-tail p-value.
inline double two_sample_p(const std::vector<double>& a,
                           const std::vector<double>& b, std::size_t bins) {
  std::vector<double> pooled = a;
  pooled.insert(pooled.end(), b.begin(), b.end());
  std::sort(pooled.begin(), pooled.end());
  std::vector<double> edges;
  for (std::size_t i = 1; i < bins; ++i) {
    const double e = pooled[i * pooled.size() / bins];
    if (edges.empty() || e > edges.back()) edges.push_back(e);
  }
  const auto bin_of = [&](double x) {
    return static_cast<std::size_t>(
        std::upper_bound(edges.begin(), edges.end(), x) - edges.begin());
  };
  std::vector<double> oa(edges.size() + 1, 0.0);
  std::vector<double> ob(edges.size() + 1, 0.0);
  for (const double x : a) oa[bin_of(x)] += 1.0;
  for (const double x : b) ob[bin_of(x)] += 1.0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double statistic = 0.0;
  double dof = -1.0;
  for (std::size_t i = 0; i < oa.size(); ++i) {
    if (oa[i] + ob[i] == 0.0) continue;
    const double d = std::sqrt(nb / na) * oa[i] - std::sqrt(na / nb) * ob[i];
    statistic += d * d / (oa[i] + ob[i]);
    dof += 1.0;
  }
  if (dof < 1.0) return 1.0;  // all mass in one bin: distributions agree
  return chi_square_tail(statistic, dof);
}

}  // namespace ppg::testing
