// Tests for the Appendix A.4.1 coupling: monotone coalescence, the
// Lemma A.8 tail bound, and agreement between measured coalescence times
// and the Proposition A.7 absorption-time bounds.
#include <gtest/gtest.h>

#include "ppg/ehrenfest/bounds.hpp"
#include "ppg/ehrenfest/coupling.hpp"
#include "ppg/markov/random_walk.hpp"
#include "ppg/stats/summary.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(Coupling, EqualStartsCoalesceImmediately) {
  const ehrenfest_params params{3, 0.3, 0.2, 5};
  rng gen(301);
  std::vector<std::uint32_t> same(params.m, 1);
  const auto run = simulate_coupling(params, same, same, 1000, gen);
  EXPECT_TRUE(run.coalesced);
  EXPECT_EQ(run.coupling_time, 0u);
}

TEST(Coupling, CornerStartsEventuallyCoalesce) {
  const ehrenfest_params params{4, 0.3, 0.2, 8};
  rng gen(302);
  const auto run = simulate_corner_coupling(params, 10'000'000, gen);
  EXPECT_TRUE(run.coalesced);
  EXPECT_GT(run.coupling_time, 0u);
}

TEST(Coupling, RespectsMaxSteps) {
  const ehrenfest_params params{6, 0.2, 0.2, 50};
  rng gen(303);
  const auto run = simulate_corner_coupling(params, 10, gen);
  EXPECT_FALSE(run.coalesced);
  EXPECT_EQ(run.coupling_time, 10u);
}

TEST(Coupling, TailBoundOfLemmaA8Holds) {
  // Pr[tau_couple > 2 Phi log(4m)] <= 1/4. Measure the empirical exceedance
  // frequency over many runs.
  const ehrenfest_params params{3, 0.3, 0.15, 10};
  const auto budget =
      static_cast<std::uint64_t>(mixing_upper_bound(params));
  rng gen(304);
  int exceeded = 0;
  constexpr int trials = 400;
  for (int i = 0; i < trials; ++i) {
    const auto run = simulate_corner_coupling(params, budget, gen);
    if (!run.coalesced) ++exceeded;
  }
  EXPECT_LE(exceeded, trials / 4);
}

TEST(Coupling, MeanCouplingTimeWithinPhiLogBudget) {
  // E[tau] <= Phi per coordinate argument up to constants; check the mean
  // stays below the full 2 Phi log(4m) budget with slack.
  const ehrenfest_params params{4, 0.35, 0.1, 12};
  rng gen(305);
  running_summary times;
  for (int i = 0; i < 200; ++i) {
    const auto run = simulate_corner_coupling(params, 100'000'000, gen);
    ASSERT_TRUE(run.coalesced);
    times.add(static_cast<double>(run.coupling_time));
  }
  EXPECT_LT(times.mean(), mixing_upper_bound(params));
}

TEST(Coupling, PropositionA7BoundsCoordinateCoalescence) {
  // A single coordinate pair started at the extremes coalesces within the
  // absorption time of the centered walk on {-k, ..., k} (Proposition A.6);
  // in expectation that is at most min{k/|a-b|, k^2} moves. With m = 1 the
  // coupling has a single coordinate sampled every step.
  const std::size_t k = 6;
  const ehrenfest_params params{k, 0.35, 0.15, 1};
  rng gen(306);
  running_summary times;
  for (int i = 0; i < 20000; ++i) {
    const auto run = simulate_corner_coupling(params, 10'000'000, gen);
    ASSERT_TRUE(run.coalesced);
    times.add(static_cast<double>(run.coupling_time));
  }
  const double bound = coalescence_bound(params) / (params.a + params.b);
  // Lemma A.5 counts only moving steps; convert to steps by 1/(a+b).
  EXPECT_LT(times.mean(), bound);
}

TEST(Coupling, BiasShortensCoupling) {
  const std::uint64_t m = 10;
  rng gen(307);
  auto mean_time = [&](double a, double b) {
    const ehrenfest_params params{4, a, b, m};
    running_summary s;
    for (int i = 0; i < 300; ++i) {
      const auto run = simulate_corner_coupling(params, 100'000'000, gen);
      s.add(static_cast<double>(run.coupling_time));
    }
    return s.mean();
  };
  EXPECT_LT(mean_time(0.4, 0.1), mean_time(0.25, 0.25));
}

TEST(Coupling, DistanceNeverIncreases) {
  // The coupled coordinates share randomness, so per-coordinate distance is
  // non-increasing; verify coalescence monotonicity by running the coupling
  // in small chunks and checking the disagreement count trend indirectly:
  // once coalesced, restarting from the coalesced state stays coalesced.
  const ehrenfest_params params{3, 0.25, 0.25, 6};
  rng gen(308);
  const auto run = simulate_corner_coupling(params, 10'000'000, gen);
  ASSERT_TRUE(run.coalesced);
  std::vector<std::uint32_t> state(params.m, 1);
  const auto rerun = simulate_coupling(params, state, state, 100, gen);
  EXPECT_TRUE(rerun.coalesced);
  EXPECT_EQ(rerun.coupling_time, 0u);
}

TEST(Coupling, InputValidation) {
  const ehrenfest_params params{3, 0.25, 0.25, 4};
  rng gen(309);
  std::vector<std::uint32_t> wrong_len(3, 0);
  std::vector<std::uint32_t> ok(4, 0);
  std::vector<std::uint32_t> out_of_range = {0, 1, 2, 3};
  EXPECT_THROW((void)simulate_coupling(params, wrong_len, ok, 10, gen),
               invariant_error);
  EXPECT_THROW((void)simulate_coupling(params, ok, out_of_range, 10, gen),
               invariant_error);
}

}  // namespace
}  // namespace ppg
