// Tests for the k-IGT dynamics: the Definition 2.1 transition table, the
// population construction, the count-chain reduction (equation (5)), and
// the action-keyed variant.
#include <gtest/gtest.h>

#include <numeric>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(IgtEncoding, RoundTrip) {
  EXPECT_TRUE(igt_encoding::is_gtft(igt_encoding::gtft(0)));
  EXPECT_FALSE(igt_encoding::is_gtft(igt_encoding::ac));
  EXPECT_FALSE(igt_encoding::is_gtft(igt_encoding::ad));
  EXPECT_EQ(igt_encoding::level(igt_encoding::gtft(3)), 3u);
  EXPECT_THROW((void)igt_encoding::level(igt_encoding::ad), invariant_error);
}

TEST(IgtProtocol, Definition21TransitionTable) {
  const igt_protocol proto(4);
  rng gen(601);
  // (i) g_j + AC -> Inc(g_j) + AC.
  EXPECT_EQ(proto.interact(igt_encoding::gtft(1), igt_encoding::ac, gen).first,
            igt_encoding::gtft(2));
  // (ii) g_j + g_i -> Inc(g_j) + g_i for any i.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(proto.interact(igt_encoding::gtft(1), igt_encoding::gtft(i), gen)
                  .first,
              igt_encoding::gtft(2));
  }
  // (iii) g_j + AD -> Dec(g_j) + AD.
  EXPECT_EQ(proto.interact(igt_encoding::gtft(2), igt_encoding::ad, gen).first,
            igt_encoding::gtft(1));
}

TEST(IgtProtocol, TruncationAtBoundaries) {
  const igt_protocol proto(3);
  rng gen(602);
  // Inc at the top level stays.
  EXPECT_EQ(proto.interact(igt_encoding::gtft(2), igt_encoding::ac, gen).first,
            igt_encoding::gtft(2));
  // Dec at the bottom level stays.
  EXPECT_EQ(proto.interact(igt_encoding::gtft(0), igt_encoding::ad, gen).first,
            igt_encoding::gtft(0));
}

TEST(IgtProtocol, OneWayResponderNeverChanges) {
  const igt_protocol proto(4);
  rng gen(603);
  for (agent_state init :
       {igt_encoding::ac, igt_encoding::ad, igt_encoding::gtft(1)}) {
    for (agent_state resp :
         {igt_encoding::ac, igt_encoding::ad, igt_encoding::gtft(2)}) {
      EXPECT_EQ(proto.interact(init, resp, gen).second, resp);
    }
  }
}

TEST(IgtProtocol, FixedStrategiesNeverUpdate) {
  const igt_protocol proto(4);
  rng gen(604);
  for (agent_state resp :
       {igt_encoding::ac, igt_encoding::ad, igt_encoding::gtft(0)}) {
    EXPECT_EQ(proto.interact(igt_encoding::ac, resp, gen).first,
              igt_encoding::ac);
    EXPECT_EQ(proto.interact(igt_encoding::ad, resp, gen).first,
              igt_encoding::ad);
  }
}

TEST(IgtProtocol, StateNames) {
  const igt_protocol proto(3);
  EXPECT_EQ(proto.state_name(igt_encoding::ac), "AC");
  EXPECT_EQ(proto.state_name(igt_encoding::ad), "AD");
  EXPECT_EQ(proto.state_name(igt_encoding::gtft(0)), "g1");
  EXPECT_EQ(proto.state_name(igt_encoding::gtft(2)), "g3");
}

TEST(IgtProtocol, RequiresAtLeastTwoLevels) {
  EXPECT_THROW(igt_protocol(1), invariant_error);
}

TEST(AbgPopulation, FractionsAndLambda) {
  const abg_population pop{20, 10, 70};
  EXPECT_EQ(pop.n(), 100u);
  EXPECT_DOUBLE_EQ(pop.alpha(), 0.2);
  EXPECT_DOUBLE_EQ(pop.beta(), 0.1);
  EXPECT_DOUBLE_EQ(pop.gamma(), 0.7);
  EXPECT_DOUBLE_EQ(pop.lambda(), 9.0);
}

TEST(AbgPopulation, FromFractionsPreservesN) {
  const auto pop = abg_population::from_fractions(101, 0.3, 0.3, 0.4);
  EXPECT_EQ(pop.n(), 101u);
  EXPECT_NEAR(pop.alpha(), 0.3, 0.02);
  EXPECT_NEAR(pop.beta(), 0.3, 0.02);
  EXPECT_NEAR(pop.gamma(), 0.4, 0.02);
}

TEST(AbgPopulation, FromFractionsValidation) {
  EXPECT_THROW((void)abg_population::from_fractions(100, 0.5, 0.5, 0.5),
               invariant_error);
  EXPECT_THROW((void)abg_population::from_fractions(100, -0.1, 0.6, 0.5),
               invariant_error);
}

TEST(AbgPopulation, EhrenfestReduction) {
  // Section 2.4: a = gamma (1 - beta), b = gamma beta, m = gamma n.
  const abg_population pop{10, 20, 70};
  const auto params = igt_ehrenfest_params(pop, 5);
  EXPECT_EQ(params.k, 5u);
  EXPECT_EQ(params.m, 70u);
  EXPECT_NEAR(params.a, 0.7 * 0.8, 1e-12);
  EXPECT_NEAR(params.b, 0.7 * 0.2, 1e-12);
  // lambda of the embedded chain equals (1 - beta)/beta.
  EXPECT_NEAR(params.lambda(), pop.lambda(), 1e-12);
}

TEST(IgtPopulationStates, LayoutAndCensus) {
  const abg_population pop{2, 3, 4};
  const auto states = make_igt_population_states(pop, 5, 2);
  ASSERT_EQ(states.size(), 9u);
  const population agents(states, 2 + 5);
  EXPECT_EQ(agents.count(igt_encoding::ac), 2u);
  EXPECT_EQ(agents.count(igt_encoding::ad), 3u);
  const auto census = gtft_level_counts(agents, 5);
  EXPECT_EQ(census[2], 4u);
  EXPECT_EQ(std::accumulate(census.begin(), census.end(), std::uint64_t{0}),
            4u);
}

TEST(IgtPopulationStates, ExplicitLevels) {
  const abg_population pop{1, 1, 3};
  const auto states = make_igt_population_states(
      pop, 4, std::vector<std::uint32_t>{0, 1, 3});
  const population agents(states, 6);
  const auto census = gtft_level_counts(agents, 4);
  EXPECT_EQ(census, (std::vector<std::uint64_t>{1, 1, 0, 1}));
}

TEST(IgtCountChain, PreservesGtftCount) {
  const abg_population pop{10, 10, 30};
  igt_count_chain chain(pop, 4, 0);
  rng gen(605);
  chain.run(20000, gen);
  const auto& z = chain.counts();
  EXPECT_EQ(std::accumulate(z.begin(), z.end(), std::uint64_t{0}), 30u);
  EXPECT_EQ(chain.interactions(), 20000u);
}

TEST(IgtCountChain, RequiresAdAgents) {
  const abg_population pop{10, 0, 30};
  EXPECT_THROW(igt_count_chain(pop, 4, 0), invariant_error);
}

TEST(IgtCountChain, LevelDistributionNormalized) {
  const abg_population pop{5, 5, 20};
  igt_count_chain chain(pop, 3, 1);
  const auto mu = chain.level_distribution();
  EXPECT_TRUE(is_distribution(mu));
  EXPECT_DOUBLE_EQ(mu[1], 1.0);
}

TEST(IgtStationaryProbs, MatchesTheorem27Weights) {
  const abg_population pop{10, 25, 65};  // beta = 0.25, lambda = 3
  const auto p = igt_stationary_probs(pop, 4);
  EXPECT_NEAR(p[1] / p[0], 3.0, 1e-9);
  EXPECT_NEAR(p[2] / p[1], 3.0, 1e-9);
  EXPECT_NEAR(p[3] / p[2], 3.0, 1e-9);
}

TEST(IgtMixingBounds, OrderAndPositivity) {
  const abg_population pop{100, 100, 300};
  EXPECT_GT(igt_mixing_lower_bound(pop, 8), 0.0);
  EXPECT_GT(igt_mixing_upper_bound(pop, 8),
            igt_mixing_lower_bound(pop, 8));
}

TEST(IgtActionProtocol, HighDeltaMatchesTypeKeyedTransitions) {
  // With delta close to 1 the opponent's majority action reveals its type,
  // so the action-keyed protocol agrees with Definition 2.1 almost always.
  const rd_setting setting{3.0, 1.0, 0.98, 1.0};
  const igt_action_protocol action_proto(4, setting, 0.4);
  const igt_protocol type_proto(4);
  rng gen(606);
  int agreements = 0;
  constexpr int trials = 400;
  for (int i = 0; i < trials; ++i) {
    const agent_state init =
        igt_encoding::gtft(static_cast<std::size_t>(1 + (i % 2)));
    const agent_state resp =
        (i % 3 == 0) ? igt_encoding::ac
                     : (i % 3 == 1 ? igt_encoding::ad
                                   : igt_encoding::gtft(3));
    const auto expected = type_proto.interact(init, resp, gen).first;
    const auto actual = action_proto.interact(init, resp, gen).first;
    if (expected == actual) ++agreements;
  }
  EXPECT_GT(agreements, trials * 9 / 10);
}

TEST(IgtActionProtocol, StrategyLowering) {
  const rd_setting setting{3.0, 1.0, 0.9, 0.7};
  const igt_action_protocol proto(3, setting, 0.6);
  EXPECT_DOUBLE_EQ(
      proto.strategy_of(igt_encoding::ac).initial_cooperation, 1.0);
  EXPECT_DOUBLE_EQ(
      proto.strategy_of(igt_encoding::ad).initial_cooperation, 0.0);
  const auto mid = proto.strategy_of(igt_encoding::gtft(1));
  EXPECT_DOUBLE_EQ(mid.response(game_state::dd), 0.3);  // g_2 = 0.6/2
  EXPECT_DOUBLE_EQ(mid.initial_cooperation, 0.7);
}

// The reduction of Section 2.2.1: empirical transition frequencies of the
// agent-level protocol match equation (5)'s probabilities.
TEST(IgtReduction, AgentLevelTransitionFrequenciesMatchEquation5) {
  const std::size_t k = 3;
  const abg_population pop{30, 20, 50};
  const igt_protocol proto(k);
  // Freeze the census at a known state: all GTFT at level 1 (middle).
  const auto states = make_igt_population_states(pop, k, 1);
  rng gen(607);
  // Use with-replacement sampling to match (5) exactly.
  constexpr int trials = 400000;
  int up_moves = 0;
  int down_moves = 0;
  for (int i = 0; i < trials; ++i) {
    population agents(states, 2 + k);
    simulation sim(proto, std::move(agents), gen.split(),
                   pair_sampling::with_replacement);
    sim.step();
    const auto census = gtft_level_counts(sim.agents(), k);
    if (census[2] == 1) ++up_moves;
    if (census[0] == 1) ++down_moves;
  }
  // Equation (5) with z_1 = m: up w.p. (z_1/m) gamma (1-beta) = 0.4,
  // down w.p. (z_1/m) gamma beta = 0.1.
  EXPECT_NEAR(up_moves / static_cast<double>(trials), 0.5 * 0.8, 0.005);
  EXPECT_NEAR(down_moves / static_cast<double>(trials), 0.5 * 0.2, 0.005);
}

}  // namespace
}  // namespace ppg
