// Tests for the population-protocol engine: populations, schedulers, and
// the simulator loop.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ppg/pp/engine.hpp"
#include "ppg/pp/population.hpp"
#include "ppg/pp/scheduler.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(Population, CountsMaintainedIncrementally) {
  population pop({0, 1, 1, 2, 2, 2}, 3);
  EXPECT_EQ(pop.size(), 6u);
  EXPECT_EQ(pop.count(0), 1u);
  EXPECT_EQ(pop.count(1), 2u);
  EXPECT_EQ(pop.count(2), 3u);
  pop.set_state(0, 2);
  EXPECT_EQ(pop.count(0), 0u);
  EXPECT_EQ(pop.count(2), 4u);
  EXPECT_EQ(pop.state_of(0), 2u);
}

TEST(Population, SelfAssignmentIsNoop) {
  population pop({0, 0}, 1);
  pop.set_state(0, 0);
  EXPECT_EQ(pop.count(0), 2u);
}

TEST(Population, FractionsSumToOne) {
  const population pop({0, 1, 1, 1}, 2);
  const auto f = pop.fractions();
  EXPECT_DOUBLE_EQ(f[0], 0.25);
  EXPECT_DOUBLE_EQ(f[1], 0.75);
}

TEST(Population, BoundsChecked) {
  population pop({0, 1}, 2);
  EXPECT_THROW((void)pop.state_of(2), invariant_error);
  EXPECT_THROW(pop.set_state(0, 5), invariant_error);
  EXPECT_THROW(population({3}, 2), invariant_error);
  EXPECT_THROW(population({}, 2), invariant_error);
}

TEST(Scheduler, DistinctPairsAreDistinct) {
  rng gen(401);
  for (int i = 0; i < 5000; ++i) {
    const auto pair = sample_distinct_pair(5, gen);
    EXPECT_NE(pair.initiator, pair.responder);
    EXPECT_LT(pair.initiator, 5u);
    EXPECT_LT(pair.responder, 5u);
  }
}

TEST(Scheduler, DistinctPairsCoverAllOrderedPairs) {
  rng gen(402);
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto pair = sample_distinct_pair(3, gen);
    seen.insert({pair.initiator, pair.responder});
  }
  EXPECT_EQ(seen.size(), 6u);  // 3 * 2 ordered pairs
}

TEST(Scheduler, DistinctPairsAreUniform) {
  rng gen(403);
  constexpr int trials = 120000;
  std::array<std::array<int, 4>, 4> counts{};
  for (int i = 0; i < trials; ++i) {
    const auto pair = sample_distinct_pair(4, gen);
    ++counts[pair.initiator][pair.responder];
  }
  const double expected = trials / 12.0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) {
        EXPECT_EQ(counts[i][j], 0);
      } else {
        EXPECT_NEAR(counts[i][j], expected, 5.0 * std::sqrt(expected));
      }
    }
  }
}

TEST(Scheduler, WithReplacementAllowsSelfPairs) {
  rng gen(404);
  bool saw_self = false;
  for (int i = 0; i < 1000; ++i) {
    const auto pair = sample_with_replacement_pair(3, gen);
    if (pair.initiator == pair.responder) saw_self = true;
  }
  EXPECT_TRUE(saw_self);
}

TEST(Scheduler, NeedsEnoughAgents) {
  rng gen(405);
  EXPECT_THROW((void)sample_distinct_pair(1, gen), invariant_error);
  EXPECT_NO_THROW((void)sample_with_replacement_pair(1, gen));
}

// A deterministic toy protocol for simulator tests: the initiator's value
// overwrites the responder's (one-way "infection" by larger state).
class max_protocol final : public protocol {
 public:
  [[nodiscard]] std::size_t num_states() const override { return 4; }
  [[nodiscard]] std::pair<agent_state, agent_state> interact(
      agent_state initiator, agent_state responder,
      rng& /*gen*/) const override {
    return {initiator, std::max(initiator, responder)};
  }
};

TEST(Simulator, StepsAdvanceInteractionCount) {
  const max_protocol proto;
  simulation sim(proto, population({0, 1, 2, 3}, 4), rng(406));
  sim.run(10);
  EXPECT_EQ(sim.interactions(), 10u);
  EXPECT_DOUBLE_EQ(sim.parallel_time(), 2.5);
}

TEST(Simulator, MaxProtocolConvergesToMaximum) {
  const max_protocol proto;
  simulation sim(proto, population({0, 1, 2, 3}, 4), rng(407));
  const auto steps = sim.run_until(
      [](const census_view& c) { return c.count(3) == c.population_size(); },
      100000);
  EXPECT_LT(steps, 100000u);
  EXPECT_EQ(sim.agents().count(3), 4u);
}

TEST(Simulator, RunUntilStopsImmediatelyWhenConverged) {
  const max_protocol proto;
  simulation sim(proto, population({3, 3, 3}, 4), rng(408));
  const auto steps = sim.run_until(
      [](const census_view& c) { return c.count(3) == c.population_size(); },
      1000);
  EXPECT_EQ(steps, 0u);
}

TEST(Simulator, CensusPredicateSeesPerAgentConvergence) {
  // Ported off the retired run_until_agents shim: every predicate the
  // per-agent view could express over an anonymous population is a census
  // predicate, evaluated identically on every engine.
  const max_protocol proto;
  simulation sim(proto, population({0, 1, 2, 3}, 4), rng(412));
  const auto steps = sim.run_until(
      [](const census_view& c) { return c.count(3) == c.population_size(); },
      100000);
  EXPECT_LT(steps, 100000u);
  EXPECT_EQ(sim.agents().count(3), 4u);
}

TEST(Population, ApplyInteractionDebugChecksBounds) {
  population pop({0, 1}, 2);
#ifndef NDEBUG
  EXPECT_THROW(pop.apply_interaction(0, 5), invariant_error);
  EXPECT_THROW(pop.apply_interaction(7, 1), invariant_error);
#endif
  pop.apply_interaction(0, 1);
  EXPECT_EQ(pop.count(1), 2u);
}

TEST(CensusView, ViewsPopulationCounts) {
  const population pop({0, 1, 1, 2, 2, 2}, 3);
  const census_view view(pop);
  EXPECT_EQ(view.population_size(), 6u);
  EXPECT_EQ(view.num_state_kinds(), 3u);
  EXPECT_EQ(view.count(2), 3u);
  EXPECT_DOUBLE_EQ(view.fraction(1), 1.0 / 3.0);
  EXPECT_THROW((void)view.count(3), invariant_error);
}

TEST(Simulator, SnapshotsAtRequestedCadence) {
  const max_protocol proto;
  simulation sim(proto, population({0, 1, 2, 3}, 4), rng(409));
  const auto snaps = sim.run_with_snapshots(25, 10);
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].interactions, 10u);
  EXPECT_EQ(snaps[1].interactions, 20u);
  EXPECT_EQ(snaps[2].interactions, 25u);
  for (const auto& snap : snaps) {
    std::uint64_t total = 0;
    for (const auto c : snap.counts) total += c;
    EXPECT_EQ(total, 4u);
  }
}

TEST(Simulator, WithReplacementSelfInteractionIsSafe) {
  const max_protocol proto;
  simulation sim(proto, population({2, 2}, 4), rng(410),
                 pair_sampling::with_replacement);
  sim.run(1000);  // must not corrupt counts on self pairs
  EXPECT_EQ(sim.agents().count(2), 2u);
}

TEST(Simulator, RejectsTooSmallPopulations) {
  const max_protocol proto;
  EXPECT_THROW(simulation(proto, population({0}, 4), rng(411)),
               invariant_error);
}

TEST(Simulator, DefaultStateNames) {
  const max_protocol proto;
  EXPECT_EQ(proto.state_name(2), "s2");
}

}  // namespace
}  // namespace ppg
