// Tests for the paper-adjacent extensions: the two-way IGT discipline and
// population welfare.
#include <gtest/gtest.h>

#include <numeric>

#include "ppg/core/equilibrium.hpp"
#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(TwoWayIgt, BothGtftAgentsUpdate) {
  const igt_protocol proto(4, igt_discipline::two_way);
  rng gen(701);
  // GTFT(1) initiates against GTFT(2): both see a GTFT partner -> both
  // increment.
  const auto [next_i, next_r] =
      proto.interact(igt_encoding::gtft(1), igt_encoding::gtft(2), gen);
  EXPECT_EQ(next_i, igt_encoding::gtft(2));
  EXPECT_EQ(next_r, igt_encoding::gtft(3));
}

TEST(TwoWayIgt, ResponderUpdatesAgainstFixedInitiator) {
  const igt_protocol proto(4, igt_discipline::two_way);
  rng gen(702);
  // AD initiates against GTFT(2): initiator fixed, responder decrements.
  const auto [next_i, next_r] =
      proto.interact(igt_encoding::ad, igt_encoding::gtft(2), gen);
  EXPECT_EQ(next_i, igt_encoding::ad);
  EXPECT_EQ(next_r, igt_encoding::gtft(1));
  // AC initiates against GTFT(2): responder increments.
  const auto [i2, r2] =
      proto.interact(igt_encoding::ac, igt_encoding::gtft(2), gen);
  EXPECT_EQ(i2, igt_encoding::ac);
  EXPECT_EQ(r2, igt_encoding::gtft(3));
}

TEST(TwoWayIgt, OneWayLeavesResponderUnchanged) {
  const igt_protocol proto(4, igt_discipline::one_way);
  rng gen(703);
  const auto [next_i, next_r] =
      proto.interact(igt_encoding::ad, igt_encoding::gtft(2), gen);
  EXPECT_EQ(next_r, igt_encoding::gtft(2));
}

TEST(TwoWayIgt, SameStationaryCensusAsOneWay) {
  // The two-way discipline doubles the per-agent update rate but keeps the
  // up/down ratio, so the stationary census is unchanged (Theorem 2.7's
  // multinomial). Compare time-averaged occupancies.
  const std::size_t k = 3;
  const abg_population pop{20, 20, 40};
  const auto expected = igt_stationary_probs(pop, k);
  for (const auto discipline :
       {igt_discipline::one_way, igt_discipline::two_way}) {
    const igt_protocol proto(k, discipline);
    simulation sim(proto,
                   population(make_igt_population_states(pop, k, 0), 2 + k),
                   rng(704), pair_sampling::with_replacement);
    sim.run(300'000);
    std::vector<double> occupancy(k, 0.0);
    const std::uint64_t samples = 400'000;
    for (std::uint64_t i = 0; i < samples; ++i) {
      sim.step();
      const auto census = gtft_level_counts(sim.agents(), k);
      for (std::size_t j = 0; j < k; ++j) {
        occupancy[j] += static_cast<double>(census[j]);
      }
    }
    for (auto& x : occupancy) {
      x /= static_cast<double>(samples) * static_cast<double>(pop.num_gtft);
    }
    EXPECT_LT(total_variation(occupancy, expected), 0.02)
        << "discipline "
        << (discipline == igt_discipline::one_way ? "one-way" : "two-way");
  }
}

TEST(TwoWayIgt, ConvergesFasterThanOneWay) {
  // Hitting-time proxy: interactions until the mean level reaches 90% of
  // its stationary value. The two-way protocol should be roughly twice as
  // fast.
  const std::size_t k = 6;
  const abg_population pop{50, 50, 150};
  const auto probs = igt_stationary_probs(pop, k);
  double target = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    target += static_cast<double>(j) * probs[j];
  }
  target *= 0.9;

  auto hitting = [&](igt_discipline discipline, std::uint64_t seed) {
    const igt_protocol proto(k, discipline);
    simulation sim(proto,
                   population(make_igt_population_states(pop, k, 0), 2 + k),
                   rng(seed), pair_sampling::with_replacement);
    for (std::uint64_t t = 1; t <= 50'000'000; ++t) {
      sim.step();
      if (t % 32 != 0) continue;
      const auto census = gtft_level_counts(sim.agents(), k);
      double mean_level = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        mean_level +=
            static_cast<double>(j) * static_cast<double>(census[j]);
      }
      mean_level /= static_cast<double>(pop.num_gtft);
      if (mean_level >= target) return t;
    }
    return std::uint64_t{50'000'000};
  };
  double one_way_total = 0.0;
  double two_way_total = 0.0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    one_way_total +=
        static_cast<double>(hitting(igt_discipline::one_way, 710 + s));
    two_way_total +=
        static_cast<double>(hitting(igt_discipline::two_way, 720 + s));
  }
  EXPECT_LT(two_way_total, 0.75 * one_way_total);
  EXPECT_GT(two_way_total, 0.25 * one_way_total);
}

TEST(Welfare, PureStrategiesKnownValues) {
  const rd_setting setting{3.0, 1.0, 0.5, 1.0};
  const std::size_t k = 2;
  const auto u = full_payoff_matrix(setting, k, 0.5);
  // Support: {AC, AD, g1, g2}. All-AD population earns 0.
  EXPECT_NEAR(population_welfare(u, {0.0, 1.0, 0.0, 0.0}), 0.0, 1e-12);
  // All-AC earns (b-c)/(1-delta) = 4 per agent.
  EXPECT_NEAR(population_welfare(u, {1.0, 0.0, 0.0, 0.0}), 4.0, 1e-9);
}

TEST(Welfare, MixturesInterpolateQuadratically) {
  const rd_setting setting{3.0, 1.0, 0.5, 1.0};
  const auto u = full_payoff_matrix(setting, 2, 0.5);
  // Donation game structure: welfare of an AC/AD mix is linear in the
  // cooperator fraction x: each round transfers b and costs c per
  // cooperating donor, so W = x(b - c)/(1 - delta).
  for (const double x : {0.25, 0.5, 0.75}) {
    const double w = population_welfare(u, {x, 1.0 - x, 0.0, 0.0});
    EXPECT_NEAR(w, x * 4.0, 1e-9) << "x = " << x;
  }
}

TEST(Welfare, GenerousPopulationOutEarnsStingyOne) {
  const rd_setting setting{3.0, 1.0, 0.9, 1.0};
  const std::size_t k = 4;
  const auto u = full_payoff_matrix(setting, k, 0.6);
  // All mass on the most generous level vs all mass on TFT (g = 0), in the
  // presence of noise-free openings both cooperate fully; with s1 = 1 both
  // achieve full cooperation, so compare against a population with some AD.
  std::vector<double> generous = {0.0, 0.2, 0.0, 0.0, 0.0, 0.8};
  std::vector<double> stingy = {0.0, 0.2, 0.8, 0.0, 0.0, 0.0};
  EXPECT_GT(population_welfare(u, generous) + 1e-9,
            population_welfare(u, stingy));
}

TEST(Welfare, InputValidation) {
  const rd_setting setting{3.0, 1.0, 0.5, 1.0};
  const auto u = full_payoff_matrix(setting, 2, 0.5);
  EXPECT_THROW((void)population_welfare(u, {0.5, 0.5}), invariant_error);
  EXPECT_THROW((void)population_welfare(u, {0.5, 0.2, 0.2, 0.2}),
               invariant_error);
}

}  // namespace
}  // namespace ppg
