// Exact verification of the paper's Ehrenfest results on fully enumerated
// state spaces: Theorem 2.4 (stationary law, via detailed balance and via
// direct solve), Theorem 2.5 (mixing-time bounds bracket the measured
// mixing time), and Proposition A.9 (diameter lower bound structure).
#include <gtest/gtest.h>

#include "ppg/ehrenfest/bounds.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/ehrenfest/stationary.hpp"
#include "ppg/markov/mixing.hpp"
#include "ppg/markov/stationary.hpp"
#include "ppg/stats/distributions.hpp"
#include "ppg/stats/empirical.hpp"

namespace ppg {
namespace {

TEST(ExactChain, IsStochasticAndIrreducible) {
  const ehrenfest_params params{3, 0.3, 0.2, 6};
  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  EXPECT_TRUE(chain.is_stochastic(1e-12));
  EXPECT_TRUE(chain.is_irreducible());
}

TEST(ExactChain, CornersAreExtreme) {
  const simplex_index index(3, 5);
  const auto corners = find_corner_states(index);
  EXPECT_EQ(index.unrank(corners.bottom),
            (std::vector<std::uint64_t>{5, 0, 0}));
  EXPECT_EQ(index.unrank(corners.top),
            (std::vector<std::uint64_t>{0, 0, 5}));
}

// Theorem 2.4 via detailed balance: the multinomial PMF satisfies
// pi(x) P(x,y) = pi(y) P(y,x) exactly, over a parameter sweep.
class DetailedBalanceSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::uint64_t, double, double>> {};

TEST_P(DetailedBalanceSweep, MultinomialSatisfiesDetailedBalance) {
  const auto [k, m, a, b] = GetParam();
  const ehrenfest_params params{k, a, b, m};
  ASSERT_TRUE(params.valid());
  const simplex_index index(k, m);
  const auto chain = build_ehrenfest_chain(params, index);
  const auto pi = exact_stationary_vector(params, index);
  EXPECT_LT(chain.detailed_balance_residual(pi), 1e-14)
      << "k=" << k << " m=" << m << " a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    Parameters, DetailedBalanceSweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{4}, std::size_t{5}),
                       ::testing::Values(std::uint64_t{3}, std::uint64_t{6}),
                       ::testing::Values(0.2, 0.35),
                       ::testing::Values(0.1, 0.35)));

TEST(ExactChain, StationaryMatchesDirectSolve) {
  const ehrenfest_params params{3, 0.3, 0.15, 5};
  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  const auto closed = exact_stationary_vector(params, index);
  const auto solved = solve_stationary(chain);
  EXPECT_LT(total_variation(closed, solved), 1e-9);
}

TEST(ExactChain, StationaryIsFixedPoint) {
  const ehrenfest_params params{4, 0.25, 0.25, 4};
  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  const auto pi = exact_stationary_vector(params, index);
  const auto stepped = chain.step(pi);
  EXPECT_LT(total_variation(pi, stepped), 1e-14);
}

TEST(ExactChain, BinomialForKEqualsTwo) {
  // Remark A.2: the k = 2 stationary law is Binomial(m, 1/(1+lambda)).
  const ehrenfest_params params{2, 0.3, 0.15, 10};  // lambda = 2
  const simplex_index index(2, 10);
  const auto pi = exact_stationary_vector(params, index);
  // State (x0, m - x0); p(first urn) = 1/(1+lambda) = 1/3.
  for (std::uint64_t x0 = 0; x0 <= 10; ++x0) {
    const auto r = index.rank({x0, 10 - x0});
    EXPECT_NEAR(pi[r], binomial_pmf(10, 1.0 / 3.0, x0), 1e-12);
  }
}

TEST(MixingBounds, BracketMeasuredMixingTime) {
  // Measured t_mix (worst corner start) must lie between the diameter lower
  // bound km/2 and the coupling upper bound 2 Phi log(4m).
  for (const auto& params :
       {ehrenfest_params{2, 0.25, 0.25, 12}, ehrenfest_params{3, 0.3, 0.15, 8},
        ehrenfest_params{4, 0.2, 0.3, 6}}) {
    const simplex_index index(params.k, params.m);
    const auto chain = build_ehrenfest_chain(params, index);
    const auto pi = exact_stationary_vector(params, index);
    const auto corners = find_corner_states(index);
    const auto measured = mixing_time_from_starts(
        chain, {corners.bottom, corners.top}, pi, 0.25, 500000);
    EXPECT_GE(static_cast<double>(measured), mixing_lower_bound(params))
        << "k=" << params.k;
    EXPECT_LE(static_cast<double>(measured), mixing_upper_bound(params))
        << "k=" << params.k;
  }
}

TEST(MixingBounds, PhiCaseDistinction) {
  // a != b with small gap: k/|a-b| may exceed k^2, so Phi = k^2 m.
  const ehrenfest_params near_critical{8, 0.3, 0.29, 10};
  EXPECT_DOUBLE_EQ(phi_bound(near_critical), 64.0 * 10.0);
  // Large gap: Phi = k/|a-b| * m.
  const ehrenfest_params biased{8, 0.4, 0.1, 10};
  EXPECT_DOUBLE_EQ(phi_bound(biased), 8.0 / 0.3 * 10.0);
  // a == b: Phi = k^2 m.
  const ehrenfest_params unbiased{8, 0.25, 0.25, 10};
  EXPECT_DOUBLE_EQ(phi_bound(unbiased), 64.0 * 10.0);
}

TEST(MixingBounds, LowerBoundIsDiameterOverTwo) {
  const ehrenfest_params params{5, 0.3, 0.2, 7};
  EXPECT_DOUBLE_EQ(mixing_lower_bound(params), 5.0 * 7.0 / 2.0);
}

TEST(Mixing, BiasSpeedsUpMixing) {
  // Theorem 2.5: the k/|a-b| bound beats the k^2 bound only once
  // |a - b| > 1/k, so the speedup is a *large-k* phenomenon. Use k = 8 with
  // |a - b| = 0.4 > 1/8 against the balanced chain.
  const std::uint64_t m = 4;
  const std::size_t k = 8;
  const simplex_index index(k, m);
  auto measure = [&](double a, double b) {
    const ehrenfest_params params{k, a, b, m};
    const auto chain = build_ehrenfest_chain(params, index);
    const auto pi = exact_stationary_vector(params, index);
    const auto corners = find_corner_states(index);
    return mixing_time_from_starts(chain, {corners.bottom, corners.top}, pi,
                                   0.25, 1000000);
  };
  const auto balanced = measure(0.25, 0.25);
  const auto biased = measure(0.45, 0.05);
  EXPECT_LT(biased, balanced);
}

TEST(Mixing, TvFromCornerDecaysMonotonically) {
  const ehrenfest_params params{3, 0.3, 0.2, 6};
  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  const auto pi = exact_stationary_vector(params, index);
  const auto corners = find_corner_states(index);
  const auto curve =
      tv_decay_curve(chain, corners.bottom, pi, {0, 50, 200, 800, 3200});
  for (std::size_t i = 1; i < curve.tv.size(); ++i) {
    EXPECT_LE(curve.tv[i], curve.tv[i - 1] + 1e-12);
  }
  EXPECT_GT(curve.tv.front(), 0.9);  // corner start is far from stationary
}

}  // namespace
}  // namespace ppg
