// End-to-end integration tests: the full agent-level k-IGT dynamics is
// simulated with the population-protocol engine and checked against the
// paper's predictions — the Ehrenfest reduction (Theorem 2.7), the
// stationary occupancy, the average stationary generosity (Proposition 2.8),
// and the equilibrium gap measured from the *simulated* census
// (Theorem 2.9).
#include <gtest/gtest.h>

#include <numeric>

#include "ppg/core/equilibrium.hpp"
#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/core/theory.hpp"
#include "ppg/ehrenfest/stationary.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/stats/chi_square.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/stats/summary.hpp"

namespace ppg {
namespace {

// Runs the agent-level protocol and returns time-averaged level occupancy
// (fraction of GTFT agents per level, averaged over post-burn-in samples).
std::vector<double> simulate_agent_occupancy(const abg_population& pop,
                                             std::size_t k,
                                             std::uint64_t burn,
                                             std::uint64_t samples,
                                             std::uint64_t seed) {
  const igt_protocol proto(k);
  simulation sim(proto,
                 population(make_igt_population_states(pop, k, 0), 2 + k),
                 rng(seed), pair_sampling::with_replacement);
  sim.run(burn);
  std::vector<double> occupancy(k, 0.0);
  for (std::uint64_t i = 0; i < samples; ++i) {
    sim.step();
    const auto census = gtft_level_counts(sim.agents(), k);
    for (std::size_t j = 0; j < k; ++j) {
      occupancy[j] += static_cast<double>(census[j]);
    }
  }
  const double total =
      static_cast<double>(samples) * static_cast<double>(pop.num_gtft);
  for (auto& x : occupancy) {
    x /= total;
  }
  return occupancy;
}

TEST(Integration, AgentLevelOccupancyMatchesTheorem27) {
  const std::size_t k = 4;
  const abg_population pop{20, 20, 60};  // beta = 0.2, lambda = 4
  const auto occupancy =
      simulate_agent_occupancy(pop, k, 400'000, 600'000, 901);
  const auto expected = igt_stationary_probs(pop, k);
  EXPECT_LT(total_variation(occupancy, expected), 0.02);
}

TEST(Integration, AgentLevelMatchesCountChain) {
  // The agent-level protocol and the reduced count chain must produce the
  // same time-averaged occupancy (they are the same process up to O(1/n)
  // pair-sampling effects).
  const std::size_t k = 3;
  const abg_population pop{25, 25, 50};
  const auto agent_occ =
      simulate_agent_occupancy(pop, k, 200'000, 400'000, 902);

  igt_count_chain chain(pop, k, 0);
  rng gen(903);
  chain.run(200'000, gen);
  std::vector<double> chain_occ(k, 0.0);
  const std::uint64_t samples = 400'000;
  for (std::uint64_t i = 0; i < samples; ++i) {
    chain.step(gen);
    for (std::size_t j = 0; j < k; ++j) {
      chain_occ[j] += static_cast<double>(chain.counts()[j]);
    }
  }
  for (auto& x : chain_occ) {
    x /= static_cast<double>(samples) * static_cast<double>(pop.num_gtft);
  }
  EXPECT_LT(total_variation(agent_occ, chain_occ), 0.02);
}

TEST(Integration, StationarySnapshotPassesChiSquare) {
  // Draw many independent stationary-ish snapshots (long gaps between
  // samples) of a small-m chain and chi-square the pooled per-level ball
  // counts against the multinomial marginals.
  const std::size_t k = 3;
  const abg_population pop{6, 6, 12};
  const auto params = igt_ehrenfest_params(pop, k);
  igt_count_chain chain(pop, k, 0);
  rng gen(904);
  chain.run(100'000, gen);  // burn-in
  std::vector<std::uint64_t> pooled(k, 0);
  constexpr int snapshots = 4000;
  for (int s = 0; s < snapshots; ++s) {
    chain.run(2'000, gen);  // decorrelation gap >> t_mix for this instance
    for (std::size_t j = 0; j < k; ++j) {
      pooled[j] += chain.counts()[j];
    }
  }
  const auto expected = ehrenfest_stationary_probs(params);
  const auto result = chi_square_gof(pooled, expected);
  // Snapshots are not perfectly independent; accept unless wildly off.
  EXPECT_GT(result.p_value, 1e-4);
}

TEST(Integration, AverageGenerosityMatchesProposition28) {
  const std::size_t k = 5;
  const double g_max = 0.3;
  const abg_population pop{30, 15, 55};  // beta = 0.15
  igt_count_chain chain(pop, k, 0);
  rng gen(905);
  chain.run(500'000, gen);
  const auto grid = generosity_grid(k, g_max);
  running_summary avg_g;
  for (int i = 0; i < 500'000; ++i) {
    chain.step(gen);
    double g_bar = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      g_bar += grid[j] * static_cast<double>(chain.counts()[j]);
    }
    avg_g.add(g_bar / static_cast<double>(pop.num_gtft));
  }
  const double predicted =
      average_stationary_generosity(pop.beta(), k, g_max);
  EXPECT_NEAR(avg_g.mean(), predicted, 0.01);
}

TEST(Integration, SimulatedCensusIsApproximateDe) {
  // Theorem 2.9 end-to-end: run the dynamics, take the time-averaged census
  // as mu, and verify its equilibrium gap is within a constant factor of
  // the gap of the ideal stationary mean (and hence O(1/k)).
  const double beta = 0.2;
  const double gamma = 0.7;
  const double alpha = 0.1;
  const auto instance = make_theorem_2_9_instance(beta, gamma, 0.5);
  const std::size_t k = 8;
  const auto pop = abg_population::from_fractions(200, alpha, beta, gamma);
  const auto occupancy =
      simulate_agent_occupancy(pop, k, 600'000, 800'000, 906);

  const igt_equilibrium_analyzer analyzer(instance.setting, alpha, beta,
                                          gamma, k, instance.g_max);
  const auto simulated = analyzer.gap(occupancy);
  const auto ideal = analyzer.stationary_gap();
  EXPECT_GE(simulated.epsilon, 0.0);
  // The simulated census should achieve a gap comparable to the ideal one.
  EXPECT_LT(simulated.epsilon, 3.0 * ideal.epsilon + 0.05);
}

TEST(Integration, MixingTimeScalesRoughlyLinearlyInK) {
  // Theorem 2.7: t_mix = O(k n log n) and Omega(k n) — doubling k should
  // roughly double the time for the census mean to reach its stationary
  // value. We measure a proxy: interactions until the average level first
  // exceeds 90% of its stationary expectation, averaged over seeds.
  const abg_population pop{20, 20, 60};
  auto hitting_proxy = [&](std::size_t k, std::uint64_t seed) {
    const auto probs = igt_stationary_probs(pop, k);
    double target = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      target += static_cast<double>(j) * probs[j];
    }
    target *= 0.9;
    igt_count_chain chain(pop, k, 0);
    rng gen(seed);
    const std::uint64_t cap = 100'000'000;
    for (std::uint64_t t = 0; t < cap; ++t) {
      chain.step(gen);
      double mean_level = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        mean_level +=
            static_cast<double>(j) * static_cast<double>(chain.counts()[j]);
      }
      mean_level /= static_cast<double>(pop.num_gtft);
      if (mean_level >= target) return t;
    }
    return cap;
  };
  running_summary t4;
  running_summary t8;
  for (std::uint64_t s = 0; s < 8; ++s) {
    t4.add(static_cast<double>(hitting_proxy(4, 907 + s)));
    t8.add(static_cast<double>(hitting_proxy(8, 917 + s)));
  }
  const double ratio = t8.mean() / t4.mean();
  EXPECT_GT(ratio, 1.2);  // clearly grows with k
  EXPECT_LT(ratio, 5.0);  // but not super-linearly
}

TEST(Integration, ActionKeyedVariantReachesSimilarStationaryShape) {
  // The action-keyed protocol (inference from observed play) should land
  // close to the type-keyed stationary occupancy when delta is large.
  const std::size_t k = 3;
  const abg_population pop{12, 12, 26};
  const rd_setting setting{8.0, 1.0, 0.95, 1.0};
  const igt_action_protocol proto(k, setting, 0.3);
  simulation sim(proto,
                 population(make_igt_population_states(pop, k, 0), 2 + k),
                 rng(908), pair_sampling::with_replacement);
  sim.run(60'000);
  std::vector<double> occupancy(k, 0.0);
  const std::uint64_t samples = 120'000;
  for (std::uint64_t i = 0; i < samples; ++i) {
    sim.step();
    const auto census = gtft_level_counts(sim.agents(), k);
    for (std::size_t j = 0; j < k; ++j) {
      occupancy[j] += static_cast<double>(census[j]);
    }
  }
  for (auto& x : occupancy) {
    x /= static_cast<double>(samples) * static_cast<double>(pop.num_gtft);
  }
  const auto expected = igt_stationary_probs(pop, k);
  // Looser tolerance: the inference is only approximately type-revealing.
  EXPECT_LT(total_variation(occupancy, expected), 0.12);
}

}  // namespace
}  // namespace ppg
