// The mean-field extraction: drift correctness against closed-form limits
// (one-way rumor -> logistic growth; proportional imitation on a zero-sum
// game -> replicator dynamics), simplex invariance of the RK4 integrator,
// and the satellite cross-check of the k-IGT kernel's mean-field fixed
// point against the Theorem 2.7 closed form and the census engine at
// n = 10^6.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/core/theory.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/mean_field.hpp"
#include "ppg/games/strategy.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/pp/protocols/rumor.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(MeanField, RumorDriftIsLogisticGrowth) {
  // One-way rumor: only the (informed, susceptible) pair changes anything,
  // so dx_I/dt = x_I (1 - x_I) — logistic growth with the exact solution
  // x(t) = x0 / (x0 + (1 - x0) e^{-t}).
  const rumor_protocol proto;
  const mean_field_ode ode(proto);
  const double x0 = 0.02;
  std::vector<double> x = {1.0 - x0, x0};
  const double dt = 0.01;
  for (int step = 1; step <= 800; ++step) {
    x = rk4_simplex_step(ode, x, dt);
    const double t = static_cast<double>(step) * dt;
    const double exact = x0 / (x0 + (1.0 - x0) * std::exp(-t));
    ASSERT_NEAR(x[rumor_protocol::state_informed], exact, 1e-7)
        << "t = " << t;
  }
}

TEST(MeanField, DriftConservesMassAndTheSimplexIsInvariant) {
  const game_protocol proto(rock_paper_scissors_matrix(),
                            std::make_shared<logit_response_rule>(0.3));
  const mean_field_ode ode(proto);
  ASSERT_EQ(ode.dimension(), 3u);
  const auto trajectory =
      integrate_mean_field(ode, {0.6, 0.3, 0.1}, 0.01, 2000, 100);
  for (const auto& state : trajectory.states) {
    double total = 0.0;
    for (const double v : state) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    double drift_sum = 0.0;
    for (const double d : ode.drift(state)) drift_sum += d;
    EXPECT_NEAR(drift_sum, 0.0, 1e-12);
  }
}

TEST(MeanField, ProportionalImitationIsReplicatorOnZeroSumGames) {
  // For a zero-sum game the encounter-payoff comparison sees the full
  // fitness difference, so the mean field is exactly the replicator field
  // scaled by 2 * rate / payoff_span (DESIGN.md §7).
  const double rate = 0.7;
  const auto game = rock_paper_scissors_matrix();
  const game_protocol proto(
      game, std::make_shared<proportional_imitation_rule>(rate));
  const mean_field_ode ode(proto);
  const double scale = 2.0 * rate / game.payoff_span();
  for (const auto& x : {std::vector<double>{0.2, 0.3, 0.5},
                        std::vector<double>{0.6, 0.2, 0.2},
                        std::vector<double>{1.0 / 3, 1.0 / 3, 1.0 / 3}}) {
    const auto drift = ode.drift(x);
    const auto replicator = replicator_drift(game, x);
    for (std::size_t u = 0; u < 3; ++u) {
      EXPECT_NEAR(drift[u], scale * replicator[u], 1e-12);
    }
  }
}

TEST(MeanField, ImitationConvergesToDefectionOnTheDonationGame) {
  const game_protocol proto(donation_matrix(),
                            std::make_shared<imitate_if_better_rule>());
  const mean_field_ode ode(proto);
  const auto fixed =
      relax_to_fixed_point(ode, {0.9, 0.1}, 0.05, 1e-10, 500.0);
  ASSERT_TRUE(fixed.converged);
  EXPECT_NEAR(fixed.state[1], 1.0, 1e-6);  // all-defect
}

TEST(MeanField, RejectsKernellessProtocolsAndBadStates) {
  class kernelless final : public protocol {
   public:
    [[nodiscard]] std::size_t num_states() const override { return 2; }
    [[nodiscard]] std::pair<agent_state, agent_state> interact(
        agent_state i, agent_state r, rng& /*gen*/) const override {
      return {i, r};
    }
  };
  EXPECT_THROW(mean_field_ode{kernelless{}}, invariant_error);
  const mean_field_ode ode(rumor_protocol{});
  EXPECT_THROW((void)ode.drift({0.5}), invariant_error);
  EXPECT_THROW((void)integrate_mean_field(ode, {0.7, 0.7}, 0.01, 1),
               invariant_error);
  EXPECT_THROW((void)rk4_simplex_step(ode, {0.5, 0.5}, 0.0),
               invariant_error);
}

TEST(MeanField, IgtFixedPointMatchesTheTheorem27ClosedForm) {
  const std::size_t k = 5;
  const auto pop = abg_population::from_fractions(1000, 0.1, 0.25, 0.65);
  const igt_protocol proto(k);
  const mean_field_ode ode(proto);
  // Everyone's fractions: AC, AD, then all GTFT mass at level 0.
  std::vector<double> x0(2 + k, 0.0);
  x0[igt_encoding::ac] = pop.alpha();
  x0[igt_encoding::ad] = pop.beta();
  x0[igt_encoding::first_gtft] = pop.gamma();
  const auto fixed = relax_to_fixed_point(ode, x0, 0.05, 1e-12, 5000.0);
  ASSERT_TRUE(fixed.converged);
  // AC/AD are fixed strategies: their fractions never move.
  EXPECT_NEAR(fixed.state[igt_encoding::ac], pop.alpha(), 1e-9);
  EXPECT_NEAR(fixed.state[igt_encoding::ad], pop.beta(), 1e-9);
  // The level occupancy at the fixed point is the Theorem 2.7 mean
  // stationary distribution mu(j) ∝ lambda^{j-1}.
  std::vector<double> occupancy(k);
  for (std::size_t j = 0; j < k; ++j) {
    occupancy[j] = fixed.state[igt_encoding::gtft(j)] / pop.gamma();
  }
  const auto expected = igt_stationary_probs(pop, k);
  EXPECT_LT(total_variation(occupancy, expected), 1e-8);
  // And the induced average generosity matches Proposition 2.8.
  const double g_max = 0.9;  // igt_game_matrix default grid
  const auto grid = generosity_grid(k, g_max);
  double avg = 0.0;
  for (std::size_t j = 0; j < k; ++j) avg += grid[j] * occupancy[j];
  EXPECT_NEAR(avg, average_stationary_generosity(pop.beta(), k, g_max),
              1e-8);
}

TEST(MeanField, IgtFixedPointMatchesTheCensusEngineAtMillionAgents) {
  // The deterministic limit against the stochastic engine at n = 10^6:
  // burn past the level-marginal relaxation, then time-average the level
  // census. Fluctuations at this scale are O(1/sqrt(gamma n)) ~ 1e-3.
  const std::size_t k = 5;
  const auto pop =
      abg_population::from_fractions(1'000'000, 0.1, 0.25, 0.65);
  const igt_protocol proto(k);
  const mean_field_ode ode(proto);
  std::vector<double> x0(2 + k, 0.0);
  x0[igt_encoding::ac] = pop.alpha();
  x0[igt_encoding::ad] = pop.beta();
  x0[igt_encoding::first_gtft] = pop.gamma();
  const auto fixed = relax_to_fixed_point(ode, x0, 0.05, 1e-12, 5000.0);
  ASSERT_TRUE(fixed.converged);

  std::vector<std::uint64_t> counts(2 + k, 0);
  counts[igt_encoding::ac] = pop.num_ac;
  counts[igt_encoding::ad] = pop.num_ad;
  counts[igt_encoding::gtft(0)] = pop.num_gtft;
  const sim_spec spec(proto, counts);
  rng gen(515);
  const auto engine = spec.make_engine(engine_kind::batched, gen);
  engine->run(30 * pop.n());  // parallel-time-30 burn-in
  const std::uint64_t samples = 200'000;
  const std::uint64_t stride = 50;
  std::vector<double> occupancy(k, 0.0);
  for (std::uint64_t i = 0; i < samples / stride; ++i) {
    engine->run(stride);
    const auto z = gtft_level_counts(engine->census(), k);
    for (std::size_t j = 0; j < k; ++j) {
      occupancy[j] += static_cast<double>(z[j]);
    }
  }
  const double total_mass =
      static_cast<double>(samples / stride) *
      static_cast<double>(pop.num_gtft);
  for (auto& x : occupancy) x /= total_mass;

  std::vector<double> predicted(k);
  for (std::size_t j = 0; j < k; ++j) {
    predicted[j] = fixed.state[igt_encoding::gtft(j)] / pop.gamma();
  }
  EXPECT_LT(total_variation(occupancy, predicted), 0.02);
}

}  // namespace
}  // namespace ppg
