// Tests for the spectral-gap machinery: SLEM estimation on chains with
// known spectra, and the relaxation-time mixing brackets.
#include <gtest/gtest.h>

#include <cmath>

#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/markov/mixing.hpp"
#include "ppg/markov/random_walk.hpp"
#include "ppg/markov/spectral.hpp"
#include "ppg/markov/stationary.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

finite_chain lazy_two_state(double p, double q) {
  finite_chain chain(2);
  chain.add_transition(0, 1, p);
  chain.add_transition(0, 0, 1.0 - p);
  chain.add_transition(1, 0, q);
  chain.add_transition(1, 1, 1.0 - q);
  return chain;
}

TEST(Spectral, TwoStateClosedForm) {
  // Eigenvalues of the 2-state chain are 1 and 1 - p - q.
  const double p = 0.2;
  const double q = 0.3;
  const auto chain = lazy_two_state(p, q);
  const auto pi = solve_stationary(chain);
  const auto spectral = estimate_slem(chain, pi);
  EXPECT_TRUE(spectral.converged);
  EXPECT_NEAR(spectral.slem, 1.0 - p - q, 1e-9);
  EXPECT_NEAR(spectral.relaxation_time, 1.0 / (p + q), 1e-6);
}

TEST(Spectral, RandomWalkOnCompleteGraphLazy) {
  // Lazy uniform chain: P = (1-r) I + r * (uniform). Second eigenvalue is
  // 1 - r (multiplicity n-1).
  const std::size_t n = 6;
  const double r = 0.4;
  finite_chain chain(n);
  for (std::size_t i = 0; i < n; ++i) {
    chain.add_transition(i, i, 1.0 - r);
    for (std::size_t j = 0; j < n; ++j) {
      chain.add_transition(i, j, r / static_cast<double>(n));
    }
  }
  const std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  const auto spectral = estimate_slem(chain, pi);
  EXPECT_NEAR(spectral.slem, 1.0 - r, 1e-9);
}

TEST(Spectral, RejectsNonReversibleChain) {
  // A 3-cycle with clockwise drift is not reversible.
  finite_chain chain(3);
  for (std::size_t i = 0; i < 3; ++i) {
    chain.add_transition(i, (i + 1) % 3, 0.6);
    chain.add_transition(i, (i + 2) % 3, 0.1);
    chain.add_transition(i, i, 0.3);
  }
  const std::vector<double> pi(3, 1.0 / 3.0);
  EXPECT_THROW((void)estimate_slem(chain, pi), invariant_error);
}

TEST(Spectral, ReflectingWalkGapShrinksWithSize) {
  // Larger intervals relax more slowly.
  const walk_params params{0.25, 0.25};
  double previous_gap = 1.0;
  for (const std::size_t size : {3u, 6u, 12u}) {
    const auto chain = reflecting_walk_chain(size, params);
    const auto pi = reflecting_walk_stationary(size, params);
    const auto spectral = estimate_slem(chain, pi);
    EXPECT_LT(spectral.spectral_gap, previous_gap);
    previous_gap = spectral.spectral_gap;
  }
}

TEST(Spectral, RelaxationBracketsMeasuredMixing) {
  // For the exact Ehrenfest chain, the measured t_mix must lie within the
  // relaxation-time bracket.
  const ehrenfest_params params{3, 0.3, 0.15, 8};
  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  const auto pi = exact_stationary_vector(params, index);
  const auto spectral = estimate_slem(chain, pi, 1e-13, 2'000'000);
  ASSERT_TRUE(spectral.converged);
  const auto bounds = mixing_bounds_from_relaxation(spectral, pi);
  const auto corners = find_corner_states(index);
  const auto measured = mixing_time_from_starts(
      chain, {corners.bottom, corners.top}, pi, 0.25, 10'000'000);
  EXPECT_GE(static_cast<double>(measured), bounds.lower * 0.999);
  EXPECT_LE(static_cast<double>(measured), bounds.upper * 1.001);
}

TEST(Spectral, EhrenfestGapMatchesBirthDeathStructure) {
  // For k = 2 the chain is birth-death; the spectral gap of the classic
  // symmetric urn with laziness (a = b) is known to be (a + b)/m.
  const ehrenfest_params params{2, 0.25, 0.25, 10};
  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  const auto pi = exact_stationary_vector(params, index);
  const auto spectral = estimate_slem(chain, pi, 1e-13, 2'000'000);
  EXPECT_NEAR(spectral.spectral_gap,
              (params.a + params.b) / static_cast<double>(params.m), 1e-6);
}

TEST(Spectral, MixingBoundsValidation) {
  spectral_result fake;
  fake.slem = 0.5;
  fake.spectral_gap = 0.5;
  fake.relaxation_time = 2.0;
  const std::vector<double> pi = {0.5, 0.5};
  const auto bounds = mixing_bounds_from_relaxation(fake, pi, 0.25);
  EXPECT_NEAR(bounds.lower, 1.0 * std::log(2.0), 1e-12);
  EXPECT_NEAR(bounds.upper, 2.0 * std::log(8.0), 1e-12);
  EXPECT_THROW(
      (void)mixing_bounds_from_relaxation(fake, pi, 0.0),
      invariant_error);
}

}  // namespace
}  // namespace ppg
