// Tests for the game structures and strategy representations.
#include <gtest/gtest.h>

#include "ppg/games/donation.hpp"
#include "ppg/games/strategy.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(GameState, IndexingRoundTrip) {
  for (const action ra : {action::cooperate, action::defect}) {
    for (const action ca : {action::cooperate, action::defect}) {
      const game_state s = make_state(ra, ca);
      EXPECT_EQ(row_action(s), ra);
      EXPECT_EQ(col_action(s), ca);
    }
  }
}

TEST(GameState, PaperOrdering) {
  EXPECT_EQ(make_state(action::cooperate, action::cooperate), game_state::cc);
  EXPECT_EQ(make_state(action::cooperate, action::defect), game_state::cd);
  EXPECT_EQ(make_state(action::defect, action::cooperate), game_state::dc);
  EXPECT_EQ(make_state(action::defect, action::defect), game_state::dd);
}

TEST(GameState, SwappedExchangesRoles) {
  EXPECT_EQ(swapped(game_state::cd), game_state::dc);
  EXPECT_EQ(swapped(game_state::dc), game_state::cd);
  EXPECT_EQ(swapped(game_state::cc), game_state::cc);
  EXPECT_EQ(swapped(game_state::dd), game_state::dd);
}

TEST(DonationGame, RewardVectorMatchesPaper) {
  const donation_game game{3.0, 1.0};
  const auto v = game.reward_vector();
  EXPECT_DOUBLE_EQ(v[0], 2.0);   // CC: b - c
  EXPECT_DOUBLE_EQ(v[1], -1.0);  // CD: -c
  EXPECT_DOUBLE_EQ(v[2], 3.0);   // DC: b
  EXPECT_DOUBLE_EQ(v[3], 0.0);   // DD: 0
}

TEST(DonationGame, ValidityRequiresBGreaterThanC) {
  EXPECT_TRUE((donation_game{2.0, 1.0}).valid());
  EXPECT_TRUE((donation_game{2.0, 0.0}).valid());
  EXPECT_FALSE((donation_game{1.0, 1.0}).valid());
  EXPECT_FALSE((donation_game{1.0, 2.0}).valid());
  EXPECT_FALSE((donation_game{2.0, -0.5}).valid());
}

TEST(DonationGame, InducesPrisonersDilemma) {
  EXPECT_TRUE((donation_game{2.0, 1.0}).payoffs().is_prisoners_dilemma());
  EXPECT_TRUE((donation_game{10.0, 1.0}).payoffs().is_prisoners_dilemma());
  // c = 0 degenerates (P == S).
  EXPECT_FALSE((donation_game{2.0, 0.0}).payoffs().is_prisoners_dilemma());
}

TEST(PdPayoffs, ClassicAxelrodValues) {
  const pd_payoffs axelrod{3.0, 0.0, 5.0, 1.0};
  EXPECT_TRUE(axelrod.is_prisoners_dilemma());
  EXPECT_DOUBLE_EQ(axelrod.payoff(game_state::dc), 5.0);
}

TEST(Strategy, ValidityChecks) {
  EXPECT_TRUE(always_cooperate().valid());
  EXPECT_TRUE(always_defect().valid());
  memory_one_strategy bad = always_cooperate();
  bad.initial_cooperation = 1.5;
  EXPECT_FALSE(bad.valid());
  bad = always_cooperate();
  bad.cooperate_given[2] = -0.1;
  EXPECT_FALSE(bad.valid());
}

TEST(Strategy, GtftResponses) {
  const auto gtft = generous_tit_for_tat(0.25, 0.5);
  EXPECT_DOUBLE_EQ(gtft.initial_cooperation, 0.5);
  // Opponent cooperated (states CC and DC): respond C with probability 1.
  EXPECT_DOUBLE_EQ(gtft.response(game_state::cc), 1.0);
  EXPECT_DOUBLE_EQ(gtft.response(game_state::dc), 1.0);
  // Opponent defected (states CD and DD): respond C with probability g.
  EXPECT_DOUBLE_EQ(gtft.response(game_state::cd), 0.25);
  EXPECT_DOUBLE_EQ(gtft.response(game_state::dd), 0.25);
}

TEST(Strategy, TftIsGtftWithZeroGenerosity) {
  const auto tft = tit_for_tat(1.0);
  const auto gtft0 = generous_tit_for_tat(0.0, 1.0);
  for (std::size_t s = 0; s < num_game_states; ++s) {
    EXPECT_DOUBLE_EQ(tft.response(static_cast<game_state>(s)),
                     gtft0.response(static_cast<game_state>(s)));
  }
}

TEST(Strategy, AcIsGtftWithFullGenerosity) {
  const auto gtft1 = generous_tit_for_tat(1.0, 1.0);
  for (std::size_t s = 0; s < num_game_states; ++s) {
    EXPECT_DOUBLE_EQ(gtft1.response(static_cast<game_state>(s)), 1.0);
  }
}

TEST(Strategy, ReactivityClassification) {
  EXPECT_TRUE(always_cooperate().is_reactive());
  EXPECT_TRUE(always_defect().is_reactive());
  EXPECT_TRUE(tit_for_tat().is_reactive());
  EXPECT_TRUE(generous_tit_for_tat(0.3, 0.8).is_reactive());
  EXPECT_FALSE(grim().is_reactive());
  EXPECT_FALSE(win_stay_lose_shift().is_reactive());
}

TEST(Strategy, WslsResponses) {
  const auto wsls = win_stay_lose_shift();
  EXPECT_DOUBLE_EQ(wsls.response(game_state::cc), 1.0);  // won with C: stay
  EXPECT_DOUBLE_EQ(wsls.response(game_state::cd), 0.0);  // lost with C: shift
  EXPECT_DOUBLE_EQ(wsls.response(game_state::dc), 0.0);  // won with D: stay D
  EXPECT_DOUBLE_EQ(wsls.response(game_state::dd), 1.0);  // lost with D: shift
}

TEST(Strategy, InvalidParametersThrow) {
  EXPECT_THROW((void)generous_tit_for_tat(1.5, 0.5), invariant_error);
  EXPECT_THROW((void)generous_tit_for_tat(0.5, -0.1), invariant_error);
  EXPECT_THROW((void)tit_for_tat(2.0), invariant_error);
}

TEST(PaperStrategy, LoweringToMemoryOne) {
  EXPECT_DOUBLE_EQ(
      paper_strategy::ac().to_memory_one(0.5).initial_cooperation, 1.0);
  EXPECT_DOUBLE_EQ(
      paper_strategy::ad().to_memory_one(0.5).initial_cooperation, 0.0);
  const auto g = paper_strategy::gtft(0.3).to_memory_one(0.7);
  EXPECT_DOUBLE_EQ(g.initial_cooperation, 0.7);
  EXPECT_DOUBLE_EQ(g.response(game_state::dd), 0.3);
}

TEST(PaperStrategy, Names) {
  EXPECT_EQ(paper_strategy::ac().name(), "AC");
  EXPECT_EQ(paper_strategy::ad().name(), "AD");
  EXPECT_EQ(paper_strategy::gtft(0.5).name(), "GTFT(0.500)");
}

TEST(GenerosityGrid, EquidistantEndpoints) {
  const auto grid = generosity_grid(5, 0.8);
  EXPECT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 0.8);
  EXPECT_DOUBLE_EQ(grid[1], 0.2);
  EXPECT_DOUBLE_EQ(grid[2], 0.4);
}

TEST(GenerosityGrid, MinimumTwoLevels) {
  const auto grid = generosity_grid(2, 1.0);
  EXPECT_DOUBLE_EQ(grid[0], 0.0);
  EXPECT_DOUBLE_EQ(grid[1], 1.0);
  EXPECT_THROW((void)generosity_grid(1, 0.5), invariant_error);
}

}  // namespace
}  // namespace ppg
