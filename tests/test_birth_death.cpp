// Tests for the one-dimensional Ehrenfest projections: the k = 2
// birth-death chain of expression (11) and the single-ball level marginal.
#include <gtest/gtest.h>

#include "ppg/ehrenfest/birth_death.hpp"
#include "ppg/ehrenfest/coordinate_walk.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/ehrenfest/stationary.hpp"
#include "ppg/markov/mixing.hpp"
#include "ppg/markov/random_walk.hpp"
#include "ppg/markov/stationary.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(BirthDeath, ProjectionIsStochastic) {
  const ehrenfest_params params{2, 0.3, 0.15, 50};
  const auto chain = two_urn_projected_chain(params);
  EXPECT_TRUE(chain.is_stochastic(1e-12));
  EXPECT_TRUE(chain.is_irreducible());
  EXPECT_EQ(chain.num_states(), 51u);
}

TEST(BirthDeath, ProjectionRequiresKTwo) {
  EXPECT_THROW((void)two_urn_projected_chain({3, 0.3, 0.15, 10}),
               invariant_error);
}

TEST(BirthDeath, StationaryIsBinomial) {
  const ehrenfest_params params{2, 0.3, 0.15, 30};  // lambda = 2
  const auto pi = two_urn_projected_stationary(params);
  const auto solved = solve_stationary(two_urn_projected_chain(params));
  EXPECT_LT(total_variation(pi, solved), 1e-10);
  // Mean urn-1 load = m p with p = 1/(1+lambda) = 1/3.
  double mean = 0.0;
  for (std::size_t x = 0; x < pi.size(); ++x) {
    mean += static_cast<double>(x) * pi[x];
  }
  EXPECT_NEAR(mean, 10.0, 1e-9);
}

TEST(BirthDeath, ProjectionMatchesFullChainTvDecay) {
  // For k = 2, TV curves computed on the projection must match the full
  // simplex chain exactly (the projection is a bijection of state spaces).
  const ehrenfest_params params{2, 0.25, 0.25, 12};
  const simplex_index index(params.k, params.m);
  const auto full = build_ehrenfest_chain(params, index);
  const auto full_pi = exact_stationary_vector(params, index);
  const auto corners = find_corner_states(index);

  const auto projected = two_urn_projected_chain(params);
  const auto projected_pi = two_urn_projected_stationary(params);

  // Corner (m, 0, ..., 0) has urn-1 load m.
  const auto t_full = hitting_time_of_tv(full, corners.bottom, full_pi, 0.25,
                                         1'000'000);
  const auto t_proj =
      hitting_time_of_tv(projected, params.m, projected_pi, 0.25, 1'000'000);
  EXPECT_EQ(t_full, t_proj);
}

TEST(BirthDeath, DetailedBalanceHolds) {
  const ehrenfest_params params{2, 0.2, 0.3, 40};
  const auto chain = two_urn_projected_chain(params);
  const auto pi = two_urn_projected_stationary(params);
  EXPECT_LT(chain.detailed_balance_residual(pi), 1e-14);
}

TEST(BirthDeath, LargeMIsTractable) {
  // m = 2048 would be an astronomically large simplex for generic code but
  // is trivial for the tridiagonal projection.
  const ehrenfest_params params{2, 0.25, 0.25, 2048};
  const auto chain = two_urn_projected_chain(params);
  const auto pi = two_urn_projected_stationary(params);
  EXPECT_LT(chain.detailed_balance_residual(pi), 1e-12);
  const auto curve = tv_decay_curve(chain, 0, pi, {0, 1000});
  EXPECT_GT(curve.tv[0], 0.99);
}

TEST(SingleBallMarginal, ZeroStepsIsPointMass) {
  const ehrenfest_params params{4, 0.3, 0.15, 10};
  const auto marginal = single_ball_marginal(params, 2, 0);
  EXPECT_DOUBLE_EQ(marginal[2], 1.0);
}

TEST(SingleBallMarginal, IsDistributionAndConvergesToGeometric) {
  const ehrenfest_params params{4, 0.3, 0.15, 10};
  const auto marginal =
      single_ball_marginal(params, 0, 4000 * params.m);
  EXPECT_TRUE(is_distribution(marginal, 1e-9));
  const auto stationary =
      reflecting_walk_stationary(params.k, {params.a, params.b});
  EXPECT_LT(total_variation(marginal, stationary), 1e-6);
}

TEST(SingleBallMarginal, MatchesDirectSimulation) {
  const ehrenfest_params params{3, 0.25, 0.25, 5};
  const std::uint64_t t = 60;
  const auto exact = single_ball_marginal(params, 0, t);
  // Simulate the full coordinate walk and record ball 0's level at time t.
  rng gen(451);
  std::vector<double> empirical(params.k, 0.0);
  constexpr int trials = 200000;
  for (int trial = 0; trial < trials; ++trial) {
    coordinate_walk walk(params, 0);
    walk.run(t, gen);
    empirical[walk.values()[0]] += 1.0;
  }
  for (auto& x : empirical) x /= trials;
  EXPECT_LT(total_variation(exact, empirical), 0.01);
}

TEST(SingleBallMarginal, MeanLoadIdentity) {
  // Summing m independent single-ball marginals gives the expected count
  // vector of the full process started from the same homogeneous state:
  // E[z_t(j)] = m * marginal_t(j). Cross-check against simulation.
  const ehrenfest_params params{3, 0.3, 0.15, 20};
  const std::uint64_t t = 500;
  const auto marginal = single_ball_marginal(params, 0, t);
  rng gen(452);
  std::vector<double> mean_counts(params.k, 0.0);
  constexpr int trials = 20000;
  for (int trial = 0; trial < trials; ++trial) {
    coordinate_walk walk(params, 0);
    walk.run(t, gen);
    for (std::size_t j = 0; j < params.k; ++j) {
      mean_counts[j] += static_cast<double>(walk.counts()[j]);
    }
  }
  for (std::size_t j = 0; j < params.k; ++j) {
    mean_counts[j] /= trials;
    EXPECT_NEAR(mean_counts[j],
                static_cast<double>(params.m) * marginal[j], 0.15)
        << "urn " << j;
  }
}

}  // namespace
}  // namespace ppg
