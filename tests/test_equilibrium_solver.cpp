// The solver subsystem's contracts (DESIGN.md §12): support enumeration
// reproduces closed-form equilibria to machine precision with the right
// stability classification, the logit homotopy follows the principal
// branch to a Nash point (selecting the risk-dominant corner in
// coordination games) with residuals at its tolerance, the two solvers
// agree on random games, and the certification layer certifies an engine's
// stationary census only when the mean-field prediction is trusted and
// reproduced.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "ppg/games/game_matrix.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/mean_field.hpp"
#include "ppg/games/solver/certify.hpp"
#include "ppg/games/solver/enumeration.hpp"
#include "ppg/games/solver/homotopy.hpp"
#include "ppg/games/solver/zoo.hpp"
#include "ppg/games/update_rule.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/util/error.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {
namespace {

double linf_gap(const std::vector<double>& a, const std::vector<double>& b) {
  double gap = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    gap = std::max(gap, std::abs(a[i] - b[i]));
  }
  return gap;
}

TEST(SupportEnumeration, HawkDoveMixedEssMatchesClosedForm) {
  const double value = 1.0;
  const double cost = 2.0;
  const auto equilibria =
      enumerate_symmetric_equilibria(hawk_dove_matrix(value, cost));
  ASSERT_EQ(equilibria.size(), 1u);  // neither corner is Nash
  const auto& mixed = equilibria[0];
  EXPECT_FALSE(mixed.pure);
  ASSERT_EQ(mixed.support, (std::vector<std::size_t>{0, 1}));
  EXPECT_NEAR(mixed.mix[0], value / cost, 1e-15);
  EXPECT_NEAR(mixed.mix[1], 1.0 - value / cost, 1e-15);
  // Equilibrium payoff v = x^T A x at the v/c mix: (v/2)(1 - v/c) + ...
  EXPECT_NEAR(mixed.payoff, 0.25, 1e-15);
  EXPECT_LE(mixed.residual, 1e-12);
  EXPECT_EQ(mixed.stability, equilibrium_stability::ess);
}

TEST(SupportEnumeration, RpsInteriorPointIsNeutrallyStable) {
  const auto equilibria =
      enumerate_symmetric_equilibria(rock_paper_scissors_matrix());
  ASSERT_EQ(equilibria.size(), 1u);
  const auto& interior = equilibria[0];
  ASSERT_EQ(interior.support, (std::vector<std::size_t>{0, 1, 2}));
  for (const double w : interior.mix) EXPECT_NEAR(w, 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(interior.payoff, 0.0, 1e-15);
  // Zero-sum: the symmetric part of the payoff matrix vanishes, so no
  // mutant gains and none is repelled — neutral stability, not ESS.
  EXPECT_EQ(interior.stability, equilibrium_stability::neutrally_stable);
}

TEST(SupportEnumeration, StagHuntCornersAreEssMixedIsUnstable) {
  const auto equilibria =
      enumerate_symmetric_equilibria(stag_hunt_matrix(4.0, 3.0));
  ASSERT_EQ(equilibria.size(), 3u);
  // (size, lexicographic) order: stag corner, hare corner, then the mix.
  EXPECT_TRUE(equilibria[0].pure);
  EXPECT_EQ(equilibria[0].support, (std::vector<std::size_t>{0}));
  EXPECT_EQ(equilibria[0].stability, equilibrium_stability::ess);
  EXPECT_NEAR(equilibria[0].payoff, 4.0, 1e-15);
  EXPECT_TRUE(equilibria[1].pure);
  EXPECT_EQ(equilibria[1].support, (std::vector<std::size_t>{1}));
  EXPECT_EQ(equilibria[1].stability, equilibrium_stability::ess);
  EXPECT_NEAR(equilibria[1].payoff, 3.0, 1e-15);
  // Indifference: 4 x_S = 3 x_S + 3 x_H => x_S = 3/4, the basin boundary.
  EXPECT_FALSE(equilibria[2].pure);
  EXPECT_NEAR(equilibria[2].mix[0], 0.75, 1e-15);
  EXPECT_NEAR(equilibria[2].mix[1], 0.25, 1e-15);
  EXPECT_EQ(equilibria[2].stability, equilibrium_stability::unstable);
}

TEST(SupportEnumeration, PrisonersDilemmaDefectionIsTheUniqueEss) {
  const auto equilibria =
      enumerate_symmetric_equilibria(donation_matrix());
  ASSERT_EQ(equilibria.size(), 1u);
  EXPECT_TRUE(equilibria[0].pure);
  EXPECT_EQ(equilibria[0].support, (std::vector<std::size_t>{1}));
  EXPECT_EQ(equilibria[0].stability, equilibrium_stability::ess);
}

TEST(BestResponseCycles, RpsCyclesAndStagHuntDoesNot) {
  const auto rps = find_best_response_cycles(rock_paper_scissors_matrix());
  // R is beaten by P, P by S, S by R: one 3-cycle, no fixed point.
  EXPECT_EQ(rps.best_response, (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_TRUE(rps.has_nontrivial_cycle);
  ASSERT_EQ(rps.cycles.size(), 1u);
  EXPECT_EQ(rps.cycles[0], (std::vector<std::size_t>{0, 1, 2}));

  const auto stag = find_best_response_cycles(stag_hunt_matrix());
  // Both corners are strict Nash: two fixed points, nothing cycles.
  EXPECT_EQ(stag.best_response, (std::vector<std::size_t>{0, 1}));
  EXPECT_FALSE(stag.has_nontrivial_cycle);
  ASSERT_EQ(stag.cycles.size(), 2u);
}

TEST(LogitHomotopy, HawkDoveConvergesToTheMixedEss) {
  // The v/c mix balances the logit response at every temperature, so the
  // whole path sits on it and the endpoint hits the ESS at solver
  // precision, not just O(end_temperature).
  const auto result = follow_logit_path(hawk_dove_matrix(1.0, 2.0));
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.residual, 1e-8);
  EXPECT_NEAR(result.mix[0], 0.5, 1e-8);
  EXPECT_FALSE(result.path.empty());
  for (const auto& record : result.path) {
    EXPECT_LE(record.residual, 1e-8);
    EXPECT_GT(record.temperature, 0.0);
  }
  // The ladder is monotone decreasing and ends at the requested floor.
  for (std::size_t i = 1; i < result.path.size(); ++i) {
    EXPECT_LT(result.path[i].temperature, result.path[i - 1].temperature);
  }
  EXPECT_DOUBLE_EQ(result.temperature, homotopy_options{}.end_temperature);
}

TEST(LogitHomotopy, StagHuntSelectsTheRiskDominantCorner) {
  // Hare risk-dominates stag for (4, 3): (4-3)^2 < (3-0)^2, and the
  // principal branch through the barycenter tracks basin size, so the
  // path must land on all-hare even though all-stag pays more.
  const auto result = follow_logit_path(stag_hunt_matrix(4.0, 3.0));
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.residual, 1e-8);
  EXPECT_GT(result.mix[1], 0.999);
  EXPECT_LE(result.nash_gap, 1e-6);
}

TEST(LogitHomotopy, AgreesWithSupportEnumerationOnRandomGames) {
  for (std::size_t q = 2; q <= 4; ++q) {
    for (std::size_t index = 0; index < 6; ++index) {
      const auto entry = random_zoo_game(20240901, q, index);
      const auto equilibria = enumerate_symmetric_equilibria(entry.game);
      ASSERT_FALSE(equilibria.empty()) << entry.name;
      const auto followed = follow_logit_path(entry.game);
      EXPECT_TRUE(followed.converged) << entry.name;
      EXPECT_LE(followed.residual, 1e-8) << entry.name;
      double nearest = 2.0;
      for (const auto& eq : equilibria) {
        nearest = std::min(nearest, linf_gap(eq.mix, followed.mix));
      }
      // The endpoint is the QRE at T = 1e-3, an O(T) smoothing of the
      // limiting Nash point on a generic game.
      EXPECT_LE(nearest, 0.02)
          << entry.name << ": homotopy endpoint is not near any "
          << "enumerated equilibrium";
    }
  }
}

TEST(SupportEnumeration, EveryZooEquilibriumSatisfiesTheNashInequalities) {
  const auto zoo = make_game_zoo(1234);
  for (const auto& entry : zoo) {
    const auto equilibria = enumerate_symmetric_equilibria(entry.game);
    ASSERT_FALSE(equilibria.empty()) << entry.name;
    const double scale = std::max(1.0, entry.game.payoff_span());
    for (const auto& eq : equilibria) {
      for (std::size_t s = 0; s < entry.game.num_strategies(); ++s) {
        EXPECT_LE(entry.game.expected_payoff(s, eq.mix),
                  eq.payoff + 1e-8 * scale)
            << entry.name << ": strategy " << s << " improves on the "
            << "claimed equilibrium";
      }
    }
  }
}

TEST(Certification, EngineCensusIsCertifiedOnHawkDove) {
  const equilibrium_certifier certifier(
      hawk_dove_matrix(1.0, 2.0),
      std::make_shared<logit_response_rule>(0.25));
  ASSERT_TRUE(certifier.prediction_trusted());
  ASSERT_EQ(certifier.equilibria().size(), 1u);

  // A census engine's time-averaged census must reproduce the prediction.
  const game_protocol proto(hawk_dove_matrix(1.0, 2.0),
                            std::make_shared<logit_response_rule>(0.25));
  const std::uint64_t n = 10'000;
  const sim_spec spec(proto, {n / 2, n / 2});
  rng gen(20240902);
  const auto engine = spec.make_engine(engine_kind::census, gen);
  engine->run(20 * n);  // burn-in
  std::vector<double> mean(2, 0.0);
  const std::uint64_t strides = 300;
  for (std::uint64_t i = 0; i < strides; ++i) {
    engine->run(n / 10);
    for (std::size_t s = 0; s < 2; ++s) {
      mean[s] += engine->census().fraction(static_cast<agent_state>(s));
    }
  }
  for (auto& x : mean) x /= static_cast<double>(strides);

  const auto verdict = certifier.certify(mean);
  EXPECT_TRUE(verdict.certified);
  EXPECT_LE(verdict.tv_to_prediction, 0.02);
  EXPECT_EQ(verdict.nearest_equilibrium, 0u);
  EXPECT_TRUE(verdict.rule_predicts_equilibrium);
}

TEST(Certification, CensusFarFromEveryEquilibriumFailsCertification) {
  const equilibrium_certifier certifier(
      hawk_dove_matrix(1.0, 2.0),
      std::make_shared<logit_response_rule>(0.25));
  ASSERT_TRUE(certifier.prediction_trusted());
  // An all-hawk census: nowhere near the unique mixed equilibrium or the
  // smoothed prediction.
  const auto verdict = certifier.certify({0.98, 0.02});
  EXPECT_FALSE(verdict.certified);
  EXPECT_GT(verdict.tv_to_prediction, 0.1);
  EXPECT_GT(verdict.tv_to_equilibrium, 0.1);
  EXPECT_GT(verdict.nash_gap, 0.0);
}

TEST(Certification, UntrustedPredictionNeverCertifies) {
  // Weighted zero-sum rock-paper-scissors: under proportional imitation
  // the mean field is exactly the replicator flow, whose orbits are the
  // closed level curves of sum_i x*_i log x_i around the interior
  // equilibrium x* = (3, 2, 1)/6. The barycenter is off x*, so the
  // relaxation circulates forever instead of converging — the textbook
  // untrusted-prediction case of DESIGN.md §12.
  game_matrix weighted(
      {"R", "P", "S"},
      {0.0, -1.0, 2.0, 1.0, 0.0, -3.0, -2.0, 3.0, 0.0});
  certify_options options;
  options.relax_t_max = 200.0;  // keep the failing relaxation cheap
  const equilibrium_certifier certifier(
      weighted, std::make_shared<proportional_imitation_rule>(1.0),
      revision_discipline::one_way, options);
  EXPECT_FALSE(certifier.prediction_trusted());
  // Even the prediction endpoint itself is refused: distance zero, but
  // the point the distance is measured to means nothing.
  const auto verdict = certifier.certify(certifier.prediction().state);
  EXPECT_FALSE(verdict.certified);
  EXPECT_DOUBLE_EQ(verdict.tv_to_prediction, 0.0);
}

TEST(MeanField, RelaxationReportsItsIterationCount) {
  const game_protocol proto(hawk_dove_matrix(1.0, 2.0),
                            std::make_shared<logit_response_rule>(0.25));
  const mean_field_ode ode(proto);
  const auto report =
      relax_to_fixed_point(ode, {0.9, 0.1}, 0.02, 1e-10, 2000.0);
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.iterations, 0u);
  EXPECT_NEAR(report.time,
              static_cast<double>(report.iterations) * 0.02, 1e-9);
  EXPECT_LE(report.residual, 1e-10);

  // An unreachable tolerance exhausts the horizon and says so: the report
  // distinguishes "converged" from "ran out of time" explicitly.
  const auto unconverged =
      relax_to_fixed_point(ode, {0.9, 0.1}, 0.02, 1e-18, 1.0);
  EXPECT_FALSE(unconverged.converged);
  // 1.0 / 0.02 steps, +-1 for the accumulated-time comparison at the edge.
  EXPECT_GE(unconverged.iterations, 50u);
  EXPECT_LE(unconverged.iterations, 51u);
  EXPECT_GT(unconverged.residual, 0.0);
}

TEST(GameZoo, IsDeterministicInItsSeed) {
  const auto a = make_game_zoo(7);
  const auto b = make_game_zoo(7);
  const auto c = make_game_zoo(8);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 6u + 5u * 4u);  // named classics + 4 per q in [2, 6]
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    const std::size_t q = a[i].game.num_strategies();
    ASSERT_EQ(q, b[i].game.num_strategies());
    for (std::size_t r = 0; r < q; ++r) {
      for (std::size_t col = 0; col < q; ++col) {
        EXPECT_EQ(a[i].game.payoff(r, col), b[i].game.payoff(r, col));
        any_differs = any_differs ||
                      a[i].game.payoff(r, col) != c[i].game.payoff(r, col);
      }
    }
  }
  EXPECT_TRUE(any_differs);  // a different seed draws different payoffs
}

TEST(BestResponses, TieToleranceControlsDegenerateGames) {
  // All payoffs equal: every strategy is a best response at any tolerance.
  const game_matrix flat({"a", "b", "c"},
                         {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(flat.best_responses({0.5, 0.3, 0.2}),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(flat.best_responses({0.5, 0.3, 0.2}, 0.0),
            (std::vector<std::size_t>{0, 1, 2}));

  // A tie at floating-point noise scale: reported as a joint best response
  // at the default tolerance, split only by an exact (tol = 0) comparison.
  const double noise = 1e-13;
  const game_matrix near_tie({"a", "b"}, {1.0, 1.0, 1.0 + noise, 1.0 + noise});
  EXPECT_EQ(near_tie.best_responses({0.5, 0.5}),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(near_tie.best_responses({0.5, 0.5}, 0.0),
            (std::vector<std::size_t>{1}));

  // A real payoff gap: invisible at the default tolerance, merged once the
  // tolerance is loosened past the gap.
  const game_matrix gapped({"a", "b"}, {1.0, 1.0, 1.01, 1.01});
  EXPECT_EQ(gapped.best_responses({0.5, 0.5}),
            (std::vector<std::size_t>{1}));
  EXPECT_EQ(gapped.best_responses({0.5, 0.5}, 0.05),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(gapped.best_responses_to_pure(0),
            (std::vector<std::size_t>{1}));
  EXPECT_EQ(gapped.best_responses_to_pure(0, 0.05),
            (std::vector<std::size_t>{0, 1}));

  EXPECT_THROW((void)flat.best_responses({0.5, 0.3, 0.2}, -1e-9),
               invariant_error);
  EXPECT_THROW((void)flat.best_responses_to_pure(0, -1e-9), invariant_error);
}

}  // namespace
}  // namespace ppg
