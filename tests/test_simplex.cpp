// Tests for the integer-simplex enumeration and ranking.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "ppg/ehrenfest/simplex.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

std::uint64_t binom(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  std::uint64_t result = 1;
  for (std::uint64_t i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
  }
  return result;
}

TEST(Simplex, SizeMatchesStarsAndBars) {
  for (std::size_t k = 1; k <= 5; ++k) {
    for (std::uint64_t m = 1; m <= 8; ++m) {
      const simplex_index index(k, m);
      EXPECT_EQ(index.size(), binom(m + k - 1, k - 1))
          << "k=" << k << " m=" << m;
    }
  }
}

TEST(Simplex, FirstAndEnumeration) {
  const simplex_index index(3, 2);
  auto x = index.first();
  EXPECT_EQ(x, (std::vector<std::uint64_t>{0, 0, 2}));
  std::vector<std::vector<std::uint64_t>> all;
  do {
    all.push_back(x);
  } while (index.next(x));
  EXPECT_EQ(all.size(), index.size());
  // Lexicographically sorted and distinct.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1], all[i]);
  }
  EXPECT_EQ(all.back(), (std::vector<std::uint64_t>{2, 0, 0}));
}

TEST(Simplex, EveryCompositionSumsToM) {
  const simplex_index index(4, 5);
  auto x = index.first();
  do {
    EXPECT_EQ(std::accumulate(x.begin(), x.end(), std::uint64_t{0}), 5u);
  } while (index.next(x));
}

TEST(Simplex, RankUnrankRoundTrip) {
  const simplex_index index(4, 6);
  for (std::size_t r = 0; r < index.size(); ++r) {
    const auto x = index.unrank(r);
    EXPECT_EQ(index.rank(x), r);
  }
}

TEST(Simplex, RankMatchesEnumerationOrder) {
  const simplex_index index(3, 7);
  auto x = index.first();
  std::size_t expected_rank = 0;
  do {
    EXPECT_EQ(index.rank(x), expected_rank);
    ++expected_rank;
  } while (index.next(x));
}

TEST(Simplex, RanksAreDistinct) {
  const simplex_index index(5, 4);
  std::set<std::size_t> ranks;
  auto x = index.first();
  do {
    ranks.insert(index.rank(x));
  } while (index.next(x));
  EXPECT_EQ(ranks.size(), index.size());
}

TEST(Simplex, DegenerateOnePart) {
  const simplex_index index(1, 5);
  EXPECT_EQ(index.size(), 1u);
  auto x = index.first();
  EXPECT_EQ(x, (std::vector<std::uint64_t>{5}));
  EXPECT_FALSE(index.next(x));
  EXPECT_EQ(index.rank({5}), 0u);
}

TEST(Simplex, CompositionsTable) {
  const simplex_index index(4, 6);
  EXPECT_EQ(index.compositions(1, 6), 1u);
  EXPECT_EQ(index.compositions(2, 6), 7u);
  EXPECT_EQ(index.compositions(3, 4), binom(6, 2));
}

TEST(Simplex, InvalidInputsThrow) {
  const simplex_index index(3, 4);
  EXPECT_THROW((void)index.rank({1, 1, 1}), invariant_error);  // sums to 3
  EXPECT_THROW((void)index.rank({4, 0}), invariant_error);     // wrong length
  EXPECT_THROW((void)index.unrank(index.size()), invariant_error);
  EXPECT_THROW(simplex_index(8, 100), invariant_error);  // too large
}

TEST(Simplex, LargeSpaceWithinBudgetWorks) {
  // C(40+3-1, 2) = 861 states: trivially fine.
  const simplex_index index(3, 40);
  EXPECT_EQ(index.size(), binom(42, 2));
  const auto x = index.unrank(index.size() - 1);
  EXPECT_EQ(x, (std::vector<std::uint64_t>{40, 0, 0}));
}

}  // namespace
}  // namespace ppg
