// Tests for the batch-replication engine: thread-count determinism, RNG
// stream derivation, aggregator merge associativity, the thread pool, and
// the empirical-CDF accumulator it feeds.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/stats/ecdf.hpp"
#include "ppg/util/thread_pool.hpp"

namespace ppg {
namespace {

TEST(StreamSeeds, DeterministicAndDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const auto seed = derive_stream_seed(42, i);
    EXPECT_EQ(seed, derive_stream_seed(42, i));
    seeds.insert(seed);
  }
  // splitmix64's output function is a bijection of the counter, so all
  // derived seeds of one master must be distinct.
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(StreamSeeds, IndependentOfOtherStreams) {
  // Counter-based: stream 7's seed is the same whether or not streams 0-6
  // were ever derived, and across masters the maps differ.
  EXPECT_EQ(derive_stream_seed(1, 7), derive_stream_seed(1, 7));
  EXPECT_NE(derive_stream_seed(1, 7), derive_stream_seed(2, 7));
}

TEST(StreamSeeds, StreamsDoNotOverlap) {
  // Draw a prefix from many streams of one master; across streams the
  // 64-bit outputs must be (essentially) collision-free. Any overlap of
  // stream windows would show up as repeated values.
  std::set<std::uint64_t> draws;
  constexpr int streams = 200;
  constexpr int prefix = 64;
  for (int s = 0; s < streams; ++s) {
    rng gen = make_stream_rng(99, static_cast<std::uint64_t>(s));
    for (int i = 0; i < prefix; ++i) {
      draws.insert(gen());
    }
  }
  EXPECT_EQ(draws.size(), static_cast<std::size_t>(streams * prefix));
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  thread_pool pool(4);
  std::atomic<int> hits{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&hits] { hits.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 100);
  // The pool stays usable after an idle wait.
  pool.submit([&hits] { hits.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 101);
}

TEST(ThreadPool, QueuedAndActiveCounters) {
  thread_pool pool(2);
  EXPECT_EQ(pool.queued(), 0u);
  EXPECT_EQ(pool.active(), 0u);

  // Park both workers on a gate, then pile up waiting tasks: the counters
  // must see exactly 2 executing and the rest queued.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> entered{0};
  const auto blocker = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  pool.submit(blocker);
  pool.submit(blocker);
  while (entered.load() < 2) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 5; ++i) {
    pool.submit([] {});
  }
  EXPECT_EQ(pool.active(), 2u);
  EXPECT_EQ(pool.queued(), 5u);

  {
    const std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  pool.wait_idle();
  // Determinism contract: after wait_idle with no concurrent submitters the
  // pool must be provably drained — observing the counters is side-effect
  // free and never perturbs task order.
  EXPECT_EQ(pool.queued(), 0u);
  EXPECT_EQ(pool.active(), 0u);
}

TEST(BatchRunner, CoversEveryReplicaOnce) {
  const batch_options opts{32, 7, 4};
  const auto indices = batch_runner(opts).run(
      [](const replica_context& ctx, rng&) { return ctx.index; });
  ASSERT_EQ(indices.size(), 32u);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], i);
  }
}

TEST(BatchRunner, ReplicaSeedsMatchDerivation) {
  const batch_options opts{8, 1234, 2};
  const auto seeds = batch_runner(opts).run(
      [](const replica_context& ctx, rng&) { return ctx.seed; });
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], derive_stream_seed(1234, i));
  }
}

// The acceptance property of the engine: a real simulation batch aggregated
// at 1 worker and at 8 workers produces bit-identical results.
TEST(BatchRunner, AggregatesBitIdenticalAcrossThreadCounts) {
  const auto pop = abg_population::from_fractions(60, 0.1, 0.2, 0.7);
  const std::size_t k = 4;
  const igt_protocol proto(k);
  const sim_spec spec(proto, population(make_igt_population_states(pop, k, 0),
                                        2 + k));
  const auto body = [&](const replica_context&, rng& gen) {
    simulation sim = spec.instantiate(gen);
    sim.run(2000);
    std::vector<double> census(k);
    const auto z = gtft_level_counts(sim.agents(), k);
    for (std::size_t j = 0; j < k; ++j) {
      census[j] = static_cast<double>(z[j]);
    }
    return census;
  };
  const auto serial = replicate_census({16, 2024, 1}, body);
  const auto parallel = replicate_census({16, 2024, 8}, body);
  ASSERT_EQ(serial.count(), 16u);
  ASSERT_EQ(parallel.count(), 16u);
  for (std::size_t j = 0; j < k; ++j) {
    // Exact equality, not near-equality: the engine promises bit-identical
    // reduction order at any thread count.
    EXPECT_EQ(serial.mean()[j], parallel.mean()[j]);
    EXPECT_EQ(serial.ci_half_width()[j], parallel.ci_half_width()[j]);
  }
}

TEST(BatchRunner, ScalarAggregateDeterministicAcrossThreadCounts) {
  const auto body = [](const replica_context& ctx, rng& gen) {
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) acc += gen.next_double();
    return acc + static_cast<double>(ctx.index);
  };
  const auto a = replicate_scalar({25, 5, 1}, body);
  const auto b = replicate_scalar({25, 5, 3}, body);
  const auto c = replicate_scalar({25, 5, 8}, body);
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.mean(), c.mean());
  EXPECT_EQ(a.std_error(), c.std_error());
  EXPECT_EQ(a.quantile(0.5), c.quantile(0.5));
}

TEST(BatchRunner, PropagatesReplicaExceptions) {
  const batch_options opts{8, 0, 4};
  EXPECT_THROW(batch_runner(opts).run([](const replica_context& ctx, rng&) {
    if (ctx.index == 5) throw std::runtime_error("replica 5 failed");
    return 0;
  }),
               std::runtime_error);
}

TEST(BatchRunner, RejectsEmptyBatch) {
  EXPECT_THROW(batch_runner({0, 0, 1}), invariant_error);
}

TEST(Aggregators, CensusMergeMatchesSequentialFill) {
  // merge() must behave as if the right-hand replicas had been added
  // directly, and must be associative up to floating-point round-off.
  std::vector<std::vector<double>> censuses;
  rng gen(3);
  for (int r = 0; r < 9; ++r) {
    censuses.push_back({gen.next_double(), gen.next_double() * 10.0,
                        gen.next_double() - 0.5});
  }
  census_aggregator all;
  for (const auto& census : censuses) all.add(census);

  census_aggregator a, b, c;
  for (int r = 0; r < 3; ++r) a.add(censuses[static_cast<std::size_t>(r)]);
  for (int r = 3; r < 6; ++r) b.add(censuses[static_cast<std::size_t>(r)]);
  for (int r = 6; r < 9; ++r) c.add(censuses[static_cast<std::size_t>(r)]);

  census_aggregator left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  census_aggregator bc = b;     // a + (b + c)
  bc.merge(c);
  census_aggregator right = a;
  right.merge(bc);

  ASSERT_EQ(left.count(), 9u);
  ASSERT_EQ(right.count(), 9u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(left.mean()[j], right.mean()[j], 1e-13);
    EXPECT_NEAR(left.mean()[j], all.mean()[j], 1e-13);
    EXPECT_NEAR(left.ci_half_width()[j], right.ci_half_width()[j], 1e-13);
    EXPECT_NEAR(left.ci_half_width()[j], all.ci_half_width()[j], 1e-13);
  }
}

TEST(Aggregators, ScalarMergeAssociative) {
  scalar_aggregator a, b, c;
  rng gen(17);
  for (int i = 0; i < 50; ++i) a.add(gen.next_double());
  for (int i = 0; i < 30; ++i) b.add(gen.next_double() * 5.0);
  for (int i = 0; i < 20; ++i) c.add(gen.next_double() - 2.0);

  scalar_aggregator left = a;
  left.merge(b);
  left.merge(c);
  scalar_aggregator bc = b;
  bc.merge(c);
  scalar_aggregator right = a;
  right.merge(bc);

  ASSERT_EQ(left.count(), 100u);
  ASSERT_EQ(right.count(), 100u);
  EXPECT_NEAR(left.mean(), right.mean(), 1e-14);
  EXPECT_NEAR(left.std_error(), right.std_error(), 1e-14);
  // The empirical distribution is sorted, so merging is exactly
  // order-independent.
  EXPECT_EQ(left.distribution().sorted_samples(),
            right.distribution().sorted_samples());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
}

TEST(Aggregators, MergeWithEmptyIsIdentity) {
  census_aggregator filled;
  filled.add({1.0, 2.0});
  filled.add({3.0, 4.0});
  census_aggregator empty;
  census_aggregator left = filled;
  left.merge(empty);
  census_aggregator right = empty;
  right.merge(filled);
  EXPECT_EQ(left.mean(), filled.mean());
  EXPECT_EQ(right.mean(), filled.mean());
  EXPECT_EQ(left.count(), 2u);
  EXPECT_EQ(right.count(), 2u);
}

TEST(Aggregators, TrajectoryBand) {
  trajectory_aggregator band;
  band.add({0.0, 1.0, 2.0});
  band.add({2.0, 3.0, 4.0});
  ASSERT_EQ(band.points(), 3u);
  const auto mean = band.mean_curve();
  EXPECT_DOUBLE_EQ(mean[0], 1.0);
  EXPECT_DOUBLE_EQ(mean[1], 2.0);
  EXPECT_DOUBLE_EQ(mean[2], 3.0);
  EXPECT_THROW(band.add({1.0}), invariant_error);
}

TEST(Ecdf, QuantilesAndCdf) {
  empirical_cdf dist;
  for (const double x : {5.0, 1.0, 3.0, 2.0, 4.0}) dist.add(x);
  EXPECT_DOUBLE_EQ(dist.min(), 1.0);
  EXPECT_DOUBLE_EQ(dist.max(), 5.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(dist.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(dist.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(dist.cdf(3.0), 0.6);
  EXPECT_DOUBLE_EQ(dist.cdf(9.0), 1.0);
}

TEST(Ecdf, BinnedHistogramClampsOutliers) {
  empirical_cdf dist;
  for (const double x : {-10.0, 0.1, 0.5, 0.9, 10.0}) dist.add(x);
  const auto h = dist.binned(2, 0.0, 1.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);  // -10 clamped down, plus 0.1
  EXPECT_EQ(h.count(1), 3u);  // 0.5 and 0.9, plus 10 clamped up
}

TEST(Histogram, MergeAddsCounts) {
  histogram a(3);
  a.add(0, 2);
  a.add(2);
  histogram b(3);
  b.add(1, 5);
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(1), 5u);
  EXPECT_EQ(a.count(2), 1u);
  EXPECT_EQ(a.total(), 8u);
  histogram wrong(2);
  EXPECT_THROW(a.merge(wrong), invariant_error);
}

TEST(SimSpec, ReplicasStartFromIdenticalInitialCondition) {
  const auto pop = abg_population::from_fractions(40, 0.1, 0.2, 0.7);
  const std::size_t k = 3;
  const igt_protocol proto(k);
  const sim_spec spec(proto, population(make_igt_population_states(pop, k, 1),
                                        2 + k));
  rng gen_a(1);
  rng gen_b(2);
  simulation first = spec.instantiate(gen_a);
  simulation second = spec.instantiate(gen_b);
  EXPECT_EQ(first.agents().counts(), second.agents().counts());
  // Same seed => identical replica trajectories.
  rng gen_c(1);
  simulation third = spec.instantiate(gen_c);
  first.run(500);
  third.run(500);
  EXPECT_EQ(first.agents().counts(), third.agents().counts());
}

TEST(SimSpec, InstantiateDoesNotShareTheCallersStream) {
  const auto pop = abg_population::from_fractions(40, 0.1, 0.2, 0.7);
  const std::size_t k = 3;
  const igt_protocol proto(k);
  const sim_spec spec(proto, population(make_igt_population_states(pop, k, 0),
                                        2 + k));
  // Two simulations drawn from one generator must follow different
  // trajectories, and the caller's generator must have advanced.
  rng gen(9);
  rng untouched(9);
  simulation a = spec.instantiate(gen);
  simulation b = spec.instantiate(gen);
  a.run(2000);
  b.run(2000);
  EXPECT_NE(a.agents().counts(), b.agents().counts());
  EXPECT_NE(gen(), untouched());
}

}  // namespace
}  // namespace ppg
