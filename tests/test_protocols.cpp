// Tests for the classic protocol substrates: approximate majority, leader
// election, and rumor spreading.
#include <gtest/gtest.h>

#include <cmath>

#include "ppg/pp/engine.hpp"
#include "ppg/pp/protocols/approximate_majority.hpp"
#include "ppg/pp/protocols/leader_election.hpp"
#include "ppg/pp/protocols/rumor.hpp"
#include "ppg/stats/summary.hpp"

namespace ppg {
namespace {

population majority_population(std::size_t x, std::size_t y,
                               std::size_t blank) {
  std::vector<agent_state> states;
  states.insert(states.end(), x, approximate_majority_protocol::state_x);
  states.insert(states.end(), y, approximate_majority_protocol::state_y);
  states.insert(states.end(), blank,
                approximate_majority_protocol::state_blank);
  return population(std::move(states), 3);
}

TEST(ApproximateMajority, TransitionTable) {
  const approximate_majority_protocol proto;
  rng gen(501);
  using amp = approximate_majority_protocol;
  // X + Y -> X + B.
  EXPECT_EQ(proto.interact(amp::state_x, amp::state_y, gen),
            (std::pair<agent_state, agent_state>{amp::state_x,
                                                 amp::state_blank}));
  // X + B -> X + X.
  EXPECT_EQ(proto.interact(amp::state_x, amp::state_blank, gen),
            (std::pair<agent_state, agent_state>{amp::state_x, amp::state_x}));
  // Y + X -> Y + B.
  EXPECT_EQ(proto.interact(amp::state_y, amp::state_x, gen),
            (std::pair<agent_state, agent_state>{amp::state_y,
                                                 amp::state_blank}));
  // Like states unchanged.
  EXPECT_EQ(proto.interact(amp::state_x, amp::state_x, gen),
            (std::pair<agent_state, agent_state>{amp::state_x, amp::state_x}));
}

TEST(ApproximateMajority, ReachesConsensus) {
  const approximate_majority_protocol proto;
  simulation sim(proto, majority_population(60, 40, 0), rng(502));
  const auto steps = sim.run_until(approximate_majority_protocol::has_consensus,
                                   2'000'000);
  ASSERT_LT(steps, 2'000'000u);
  EXPECT_TRUE(approximate_majority_protocol::has_consensus(sim.agents()));
}

TEST(ApproximateMajority, LargeInitialGapElectsMajority) {
  // With a large initial margin the majority opinion wins with high
  // probability; count wins over repeated runs.
  int x_wins = 0;
  constexpr int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const approximate_majority_protocol proto;
    simulation sim(proto, majority_population(80, 20, 0),
                   rng(503 + static_cast<std::uint64_t>(t)));
    sim.run_until(approximate_majority_protocol::has_consensus, 2'000'000);
    if (sim.agents().count(approximate_majority_protocol::state_x) ==
        sim.agents().size()) {
      ++x_wins;
    }
  }
  EXPECT_GE(x_wins, trials - 2);
}

TEST(ApproximateMajority, ConsensusIsFast) {
  // O(n log n) interactions: allow a generous constant.
  const std::size_t n = 300;
  running_summary times;
  for (int t = 0; t < 10; ++t) {
    const approximate_majority_protocol proto;
    simulation sim(proto, majority_population(2 * n / 3, n / 3, 0),
                   rng(504 + static_cast<std::uint64_t>(t)));
    const auto steps = sim.run_until(
        approximate_majority_protocol::has_consensus, 50'000'000);
    ASSERT_LT(steps, 50'000'000u);
    times.add(static_cast<double>(steps));
  }
  const double budget = 40.0 * n * std::log(n);
  EXPECT_LT(times.mean(), budget);
}

TEST(ApproximateMajority, StateNames) {
  const approximate_majority_protocol proto;
  EXPECT_EQ(proto.state_name(0), "X");
  EXPECT_EQ(proto.state_name(1), "Y");
  EXPECT_EQ(proto.state_name(2), "B");
}

TEST(LeaderElection, TransitionTable) {
  const leader_election_protocol proto;
  rng gen(505);
  using lep = leader_election_protocol;
  EXPECT_EQ(proto.interact(lep::state_leader, lep::state_leader, gen),
            (std::pair<agent_state, agent_state>{lep::state_leader,
                                                 lep::state_follower}));
  EXPECT_EQ(proto.interact(lep::state_leader, lep::state_follower, gen),
            (std::pair<agent_state, agent_state>{lep::state_leader,
                                                 lep::state_follower}));
  EXPECT_EQ(proto.interact(lep::state_follower, lep::state_follower, gen),
            (std::pair<agent_state, agent_state>{lep::state_follower,
                                                 lep::state_follower}));
}

TEST(LeaderElection, AlwaysElectsExactlyOneLeader) {
  const leader_election_protocol proto;
  const std::size_t n = 100;
  simulation sim(proto,
                 population(n, leader_election_protocol::state_leader, 2),
                 rng(506));
  const auto steps = sim.run_until(
      leader_election_protocol::has_unique_leader, 100'000'000);
  ASSERT_LT(steps, 100'000'000u);
  EXPECT_EQ(sim.agents().count(leader_election_protocol::state_leader), 1u);
}

TEST(LeaderElection, LeaderCountIsMonotoneNonIncreasing) {
  const leader_election_protocol proto;
  simulation sim(proto,
                 population(50, leader_election_protocol::state_leader, 2),
                 rng(507));
  std::uint64_t previous = 50;
  for (int i = 0; i < 2000; ++i) {
    sim.step();
    const auto leaders =
        sim.agents().count(leader_election_protocol::state_leader);
    EXPECT_LE(leaders, previous);
    previous = leaders;
  }
  EXPECT_GE(previous, 1u);
}

TEST(LeaderElection, ExpectedQuadraticTimeScale) {
  // Coupon-collector style bound: expected completion ~ n^2 interactions
  // (sum over pair meet times); check a small n completes within ~8 n^2 on
  // average.
  const std::size_t n = 60;
  running_summary times;
  for (int t = 0; t < 10; ++t) {
    const leader_election_protocol proto;
    simulation sim(proto,
                   population(n, leader_election_protocol::state_leader, 2),
                   rng(508 + static_cast<std::uint64_t>(t)));
    const auto steps = sim.run_until(
        leader_election_protocol::has_unique_leader, 100'000'000);
    ASSERT_LT(steps, 100'000'000u);
    times.add(static_cast<double>(steps));
  }
  EXPECT_LT(times.mean(), 8.0 * n * n);
  EXPECT_GT(times.mean(), 0.1 * n * n);
}

TEST(Rumor, TransitionTable) {
  const rumor_protocol proto;
  rng gen(509);
  using rp = rumor_protocol;
  EXPECT_EQ(proto.interact(rp::state_informed, rp::state_susceptible, gen),
            (std::pair<agent_state, agent_state>{rp::state_informed,
                                                 rp::state_informed}));
  EXPECT_EQ(proto.interact(rp::state_susceptible, rp::state_informed, gen),
            (std::pair<agent_state, agent_state>{rp::state_susceptible,
                                                 rp::state_informed}));
}

TEST(Rumor, SpreadsToEveryone) {
  const rumor_protocol proto;
  std::vector<agent_state> states(200, rumor_protocol::state_susceptible);
  states[0] = rumor_protocol::state_informed;
  simulation sim(proto, population(std::move(states), 2), rng(510));
  const auto steps = sim.run_until(rumor_protocol::all_informed, 10'000'000);
  ASSERT_LT(steps, 10'000'000u);
  EXPECT_TRUE(rumor_protocol::all_informed(sim.agents()));
}

TEST(Rumor, CompletionIsNLogNScale) {
  const std::size_t n = 500;
  running_summary times;
  for (int t = 0; t < 10; ++t) {
    const rumor_protocol proto;
    std::vector<agent_state> states(n, rumor_protocol::state_susceptible);
    states[0] = rumor_protocol::state_informed;
    simulation sim(proto, population(std::move(states), 2),
                   rng(511 + static_cast<std::uint64_t>(t)));
    const auto steps =
        sim.run_until(rumor_protocol::all_informed, 100'000'000);
    ASSERT_LT(steps, 100'000'000u);
    times.add(static_cast<double>(steps));
  }
  // Push-only epidemic completes in ~n ln n * constant interactions.
  EXPECT_LT(times.mean(), 10.0 * n * std::log(n));
  EXPECT_GT(times.mean(), 0.5 * n * std::log(n));
}

TEST(Rumor, InformedCountNeverDecreases) {
  const rumor_protocol proto;
  std::vector<agent_state> states(50, rumor_protocol::state_susceptible);
  states[0] = rumor_protocol::state_informed;
  simulation sim(proto, population(std::move(states), 2), rng(512));
  std::uint64_t previous = 1;
  for (int i = 0; i < 5000; ++i) {
    sim.step();
    const auto informed = sim.agents().count(rumor_protocol::state_informed);
    EXPECT_GE(informed, previous);
    previous = informed;
  }
}

}  // namespace
}  // namespace ppg
