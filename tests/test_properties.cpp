// Randomized property tests: invariants that must hold for *arbitrary*
// valid inputs, exercised over seeded random sweeps. Complements the
// example-based suites with broad-spectrum checks on the payoff engine, the
// Ehrenfest machinery, the equilibrium gap, and the trace recorder.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "ppg/core/equilibrium.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/ehrenfest/stationary.hpp"
#include "ppg/games/exact_payoff.hpp"
#include "ppg/markov/stationary.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/pp/trace.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {
namespace {

memory_one_strategy random_strategy(rng& gen) {
  memory_one_strategy s;
  s.initial_cooperation = gen.next_double();
  for (auto& p : s.cooperate_given) {
    p = gen.next_double();
  }
  return s;
}

class RandomStrategySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomStrategySweep, PayoffEngineInvariants) {
  rng gen(GetParam());
  const double delta = 0.1 + 0.85 * gen.next_double();
  const double b = 1.5 + 5.0 * gen.next_double();
  const repeated_donation_game rdg{{b, 1.0}, delta};
  const auto row = random_strategy(gen);
  const auto col = random_strategy(gen);

  // (1) Occupation masses are non-negative and sum to the expected rounds.
  const auto occ = expected_state_occupation(rdg, row, col);
  double total = 0.0;
  for (const double x : occ) {
    EXPECT_GE(x, -1e-12);
    total += x;
  }
  EXPECT_NEAR(total, rdg.expected_rounds(), 1e-8);

  // (2) Payoff is bounded by the extreme per-round rewards times the
  // expected rounds.
  const double f = expected_payoff(rdg, row, col);
  EXPECT_LE(f, b * rdg.expected_rounds() + 1e-9);
  EXPECT_GE(f, -1.0 * rdg.expected_rounds() - 1e-9);

  // (3) Role symmetry: row payoff of (A, B) equals column payoff of (B, A).
  const auto [row_ab, col_ab] = expected_payoffs(rdg, row, col);
  const auto [row_ba, col_ba] = expected_payoffs(rdg, col, row);
  EXPECT_NEAR(row_ab, col_ba, 1e-9);
  EXPECT_NEAR(col_ab, row_ba, 1e-9);

  // (4) Cooperation rate is a probability.
  const double rate = cooperation_rate(rdg, row, col);
  EXPECT_GE(rate, -1e-12);
  EXPECT_LE(rate, 1.0 + 1e-12);

  // (5) Zero-sum identity of the donation structure: the sum of both
  // players' payoffs equals (b - c) * (expected number of cooperating
  // actions). In particular it is at most 2(b-c) * expected rounds.
  EXPECT_LE(row_ab + col_ab,
            2.0 * (b - 1.0) * rdg.expected_rounds() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStrategySweep,
                         ::testing::Range<std::uint64_t>(1000, 1030));

class RandomEhrenfestSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomEhrenfestSweep, ExactChainInvariants) {
  rng gen(GetParam());
  ehrenfest_params params;
  params.k = 2 + gen.next_below(3);                    // 2..4
  params.m = 2 + gen.next_below(5);                    // 2..6
  params.a = 0.05 + 0.4 * gen.next_double();
  params.b = 0.05 + 0.4 * gen.next_double();
  ASSERT_TRUE(params.valid());

  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  EXPECT_TRUE(chain.is_stochastic(1e-12));
  EXPECT_TRUE(chain.is_irreducible());

  // Theorem 2.4 for random parameters: detailed balance at the multinomial.
  const auto pi = exact_stationary_vector(params, index);
  EXPECT_TRUE(is_distribution(pi, 1e-9));
  EXPECT_LT(chain.detailed_balance_residual(pi), 1e-13);

  // Fixed-point property.
  EXPECT_LT(total_variation(pi, chain.step(pi)), 1e-13);

  // Agreement with the generic solver.
  EXPECT_LT(total_variation(pi, solve_stationary(chain)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEhrenfestSweep,
                         ::testing::Range<std::uint64_t>(2000, 2025));

class RandomMuSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMuSweep, EquilibriumGapInvariants) {
  rng gen(GetParam());
  const rd_setting setting{16.0, 1.0, 0.5, 0.5};
  const std::size_t k = 3 + gen.next_below(6);
  const igt_equilibrium_analyzer analyzer(setting, 0.3, 0.1, 0.6, k, 0.2);

  // Random distribution over G.
  std::vector<double> mu(k);
  double total = 0.0;
  for (auto& x : mu) {
    x = 0.01 + gen.next_double();
    total += x;
  }
  for (auto& x : mu) x /= total;

  const auto de = analyzer.gap(mu);
  // (1) The gap is non-negative and the mean is a convex combination of
  // the deviation payoffs.
  EXPECT_GE(de.epsilon, -1e-12);
  double lo = de.deviation_payoffs[0];
  double hi = de.deviation_payoffs[0];
  for (const double d : de.deviation_payoffs) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_GE(de.mean_payoff, lo - 1e-9);
  EXPECT_LE(de.mean_payoff, hi + 1e-9);
  EXPECT_NEAR(de.best_payoff, hi, 1e-12);

  // (2) The continuous best response weakly improves on every grid point.
  const double g_star = analyzer.best_response_generosity(mu);
  EXPECT_GE(analyzer.payoff_vs_mixture(g_star, mu), de.best_payoff - 1e-9);

  // (3) The general Definition 1.1 machinery agrees on the induced mu_hat:
  // restricted to GTFT deviations, its first-player deviation payoffs match.
  const auto u = full_payoff_matrix(setting, k, 0.2);
  const auto mu_hat = induced_full_distribution(mu, 0.3, 0.1, 0.6);
  for (std::size_t i = 0; i < k; ++i) {
    double dev = 0.0;
    for (std::size_t j = 0; j < mu_hat.size(); ++j) {
      dev += mu_hat[j] * u(2 + i, j);
    }
    EXPECT_NEAR(dev, de.deviation_payoffs[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMuSweep,
                         ::testing::Range<std::uint64_t>(3000, 3020));

TEST(CensusRecorder, RecordsAndWritesCsv) {
  census_recorder recorder({"X", "Y"});
  recorder.record(10, 5, {3, 2});
  recorder.record(20, 5, {1, 4});
  EXPECT_EQ(recorder.row_count(), 2u);
  EXPECT_DOUBLE_EQ(recorder.rows()[0].parallel_time, 2.0);
  std::ostringstream out;
  recorder.write_csv(out);
  EXPECT_EQ(out.str(),
            "interactions,parallel_time,X,Y\n10,2,3,2\n20,4,1,4\n");
}

TEST(CensusRecorder, RecordsFromSimulation) {
  class id_protocol final : public protocol {
   public:
    [[nodiscard]] std::size_t num_states() const override { return 2; }
    [[nodiscard]] std::pair<agent_state, agent_state> interact(
        agent_state a, agent_state b, rng&) const override {
      return {a, b};
    }
  };
  const id_protocol proto;
  simulation sim(proto, population({0, 1, 1}, 2), rng(5));
  census_recorder recorder({"s0", "s1"});
  recorder.record(sim);
  sim.run(3);
  recorder.record(sim);
  ASSERT_EQ(recorder.row_count(), 2u);
  EXPECT_EQ(recorder.rows()[1].interactions, 3u);
  EXPECT_EQ(recorder.rows()[1].counts[1], 2u);
}

TEST(CensusRecorder, Validation) {
  EXPECT_THROW(census_recorder({}), invariant_error);
  EXPECT_THROW(census_recorder({"a,b"}), invariant_error);
  census_recorder recorder({"a"});
  EXPECT_THROW(recorder.record(1, 0, {1}), invariant_error);
  EXPECT_THROW(recorder.record(1, 5, {1, 2}), invariant_error);
}

}  // namespace
}  // namespace ppg
