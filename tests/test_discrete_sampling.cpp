// The discrete-sampling layer: every sampler is validated against its
// closed-form PMF (chi-square goodness of fit plus moment checks in both
// the small-count and the mode-inversion regimes), at its boundary
// parameters (p in {0, 1}, draws = population, single category), and under
// the two-runs-bit-identical determinism contract the engines rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "ppg/stats/chi_square.hpp"
#include "ppg/stats/discrete_sampling.hpp"
#include "ppg/stats/distributions.hpp"
#include "ppg/stats/summary.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(DiscreteSampling, BinomialChiSquareSmallRegime) {
  // n * p below the crossover: the geometric-skip path.
  rng gen(21);
  const std::uint64_t n = 40;
  const double p = 0.3;
  std::vector<std::uint64_t> observed(n + 1, 0);
  constexpr int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    ++observed[sample_binomial(n, p, gen)];
  }
  std::vector<double> expected(n + 1);
  for (std::uint64_t k = 0; k <= n; ++k) {
    expected[k] = binomial_pmf(n, p, k);
  }
  EXPECT_GT(chi_square_gof(observed, expected).p_value, 1e-4);
}

TEST(DiscreteSampling, BinomialChiSquareModeInversionRegime) {
  // n * p far above the crossover: the inversion-from-the-mode path.
  rng gen(22);
  const std::uint64_t n = 1000;
  const double p = 0.47;
  std::vector<std::uint64_t> observed(n + 1, 0);
  constexpr int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    ++observed[sample_binomial(n, p, gen)];
  }
  std::vector<double> expected(n + 1);
  for (std::uint64_t k = 0; k <= n; ++k) {
    expected[k] = binomial_pmf(n, p, k);
  }
  EXPECT_GT(chi_square_gof(observed, expected).p_value, 1e-4);
}

TEST(DiscreteSampling, BinomialMomentsAtHugeN) {
  // The multibatch scale: n beyond any table, expected count moderate.
  rng gen(23);
  const std::uint64_t n = 3'000'000'000ull;
  const double p = 1e-6;  // mean 3000, far into the inversion path
  running_summary s;
  for (int t = 0; t < 3000; ++t) {
    s.add(static_cast<double>(sample_binomial(n, p, gen)));
  }
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  EXPECT_NEAR(s.mean(), mean, 5.0 * sd / std::sqrt(3000.0));
  EXPECT_NEAR(s.variance(), sd * sd, 0.2 * sd * sd);
}

TEST(DiscreteSampling, BinomialBoundaries) {
  rng gen(24);
  EXPECT_EQ(sample_binomial(10, 0.0, gen), 0u);
  EXPECT_EQ(sample_binomial(10, 1.0, gen), 10u);
  EXPECT_EQ(sample_binomial(0, 0.5, gen), 0u);
  for (int t = 0; t < 200; ++t) {
    EXPECT_LE(sample_binomial(5, 0.9999, gen), 5u);
  }
}

TEST(DiscreteSampling, HypergeometricChiSquareBothPaths) {
  // draws <= 8 takes the exact sequential path, larger draws the
  // mode-inversion path; validate both against the closed-form PMF.
  for (const std::uint64_t draws : {std::uint64_t{6}, std::uint64_t{20}}) {
    rng gen(25 + draws);
    const std::uint64_t total = 60;
    const std::uint64_t marked = 25;
    std::vector<std::uint64_t> observed(draws + 1, 0);
    constexpr int trials = 40000;
    for (int t = 0; t < trials; ++t) {
      ++observed[sample_hypergeometric(total, marked, draws, gen)];
    }
    std::vector<double> expected(draws + 1);
    for (std::uint64_t x = 0; x <= draws; ++x) {
      expected[x] = hypergeometric_pmf(total, marked, draws, x);
    }
    EXPECT_GT(chi_square_gof(observed, expected).p_value, 1e-4)
        << "draws=" << draws;
  }
}

TEST(DiscreteSampling, HypergeometricSymmetryReductions) {
  // marked > total/2 and draws > total/2 exercise both flip branches; the
  // support bound max(0, draws + marked - total) must hold exactly.
  rng gen(26);
  const std::uint64_t total = 10;
  const std::uint64_t marked = 7;
  const std::uint64_t draws = 9;
  for (int t = 0; t < 2000; ++t) {
    const auto x = sample_hypergeometric(total, marked, draws, gen);
    EXPECT_GE(x, draws + marked - total);
    EXPECT_LE(x, std::min(draws, marked));
  }
}

TEST(DiscreteSampling, HypergeometricBoundaries) {
  rng gen(27);
  EXPECT_EQ(sample_hypergeometric(50, 0, 20, gen), 0u);
  EXPECT_EQ(sample_hypergeometric(50, 50, 20, gen), 20u);
  EXPECT_EQ(sample_hypergeometric(50, 17, 50, gen), 17u);  // draws = total
  EXPECT_EQ(sample_hypergeometric(50, 17, 0, gen), 0u);
  EXPECT_THROW((void)sample_hypergeometric(10, 11, 5, gen), invariant_error);
  EXPECT_THROW((void)sample_hypergeometric(10, 5, 11, gen), invariant_error);
}

TEST(DiscreteSampling, HypergeometricMomentsAtHugeN) {
  rng gen(28);
  const std::uint64_t total = 3'000'000'000ull;
  const std::uint64_t marked = 1'000'000'000ull;
  const std::uint64_t draws = 10'000;
  running_summary s;
  for (int t = 0; t < 3000; ++t) {
    s.add(static_cast<double>(
        sample_hypergeometric(total, marked, draws, gen)));
  }
  const double mean = static_cast<double>(draws) / 3.0;
  const double sd = std::sqrt(static_cast<double>(draws) * (1.0 / 3.0) *
                              (2.0 / 3.0));
  EXPECT_NEAR(s.mean(), mean, 5.0 * sd / std::sqrt(3000.0));
}

TEST(DiscreteSampling, MultivariateHypergeometricJointChiSquare) {
  // Small census whose full joint support fits in one chi-square: index
  // each outcome (x0, x1, x2) as x0 * 16 + x1 against the closed-form PMF.
  rng gen(29);
  const std::vector<std::uint64_t> counts = {3, 2, 2};
  const std::uint64_t draws = 3;
  std::vector<std::uint64_t> observed(16 * 4, 0);
  std::vector<double> expected(16 * 4, 0.0);
  for (std::uint64_t x0 = 0; x0 <= 3; ++x0) {
    for (std::uint64_t x1 = 0; x1 <= 2; ++x1) {
      if (x0 + x1 > draws || draws - x0 - x1 > 2) continue;
      expected[x0 * 16 + x1] = multivariate_hypergeometric_pmf(
          counts, {x0, x1, draws - x0 - x1});
    }
  }
  constexpr int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    const auto x = sample_multivariate_hypergeometric(counts, draws, gen);
    std::uint64_t total = 0;
    for (const auto xi : x) total += xi;
    ASSERT_EQ(total, draws);
    ++observed[x[0] * 16 + x[1]];
  }
  EXPECT_GT(chi_square_gof(observed, expected).p_value, 1e-4);
}

TEST(DiscreteSampling, MultivariateHypergeometricMarginals) {
  // Each coordinate of the joint draw is marginally univariate
  // hypergeometric.
  rng gen(30);
  const std::vector<std::uint64_t> counts = {12, 8, 5};
  const std::uint64_t draws = 10;
  std::vector<std::vector<std::uint64_t>> observed(
      3, std::vector<std::uint64_t>(draws + 1, 0));
  constexpr int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    const auto x = sample_multivariate_hypergeometric(counts, draws, gen);
    for (std::size_t i = 0; i < 3; ++i) ++observed[i][x[i]];
  }
  for (std::size_t i = 0; i < 3; ++i) {
    std::vector<double> expected(draws + 1);
    for (std::uint64_t x = 0; x <= draws; ++x) {
      expected[x] = hypergeometric_pmf(25, counts[i], draws, x);
    }
    EXPECT_GT(chi_square_gof(observed[i], expected).p_value, 1e-4)
        << "coordinate " << i;
  }
}

TEST(DiscreteSampling, MultivariateHypergeometricBoundaries) {
  rng gen(31);
  const std::vector<std::uint64_t> counts = {4, 0, 3};
  // draws = population returns the census itself.
  EXPECT_EQ(sample_multivariate_hypergeometric(counts, 7, gen), counts);
  EXPECT_EQ(sample_multivariate_hypergeometric(counts, 0, gen),
            (std::vector<std::uint64_t>{0, 0, 0}));
  // Single category: everything lands there.
  EXPECT_EQ(sample_multivariate_hypergeometric({9}, 4, gen),
            (std::vector<std::uint64_t>{4}));
  EXPECT_THROW((void)sample_multivariate_hypergeometric(counts, 8, gen),
               invariant_error);
}

TEST(DiscreteSampling, MultinomialJointChiSquare) {
  rng gen(32);
  const std::vector<double> probs = {0.2, 0.3, 0.5};
  const std::uint64_t m = 6;
  std::vector<std::uint64_t> observed(8 * 8, 0);
  std::vector<double> expected(8 * 8, 0.0);
  for (std::uint64_t x0 = 0; x0 <= m; ++x0) {
    for (std::uint64_t x1 = 0; x0 + x1 <= m; ++x1) {
      expected[x0 * 8 + x1] =
          multinomial_pmf(m, probs, {x0, x1, m - x0 - x1});
    }
  }
  constexpr int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    const auto x = sample_multinomial(m, probs, gen);
    ++observed[x[0] * 8 + x[1]];
  }
  EXPECT_GT(chi_square_gof(observed, expected).p_value, 1e-4);
}

TEST(DiscreteSampling, MultinomialBoundaries) {
  rng gen(33);
  // Single category and zero-probability categories.
  EXPECT_EQ(sample_multinomial(5, {1.0}, gen),
            (std::vector<std::uint64_t>{5}));
  const auto x = sample_multinomial(20, {0.0, 1.0, 0.0}, gen);
  EXPECT_EQ(x, (std::vector<std::uint64_t>{0, 20, 0}));
  EXPECT_EQ(sample_multinomial(0, {0.5, 0.5}, gen),
            (std::vector<std::uint64_t>{0, 0}));
}

TEST(DiscreteSampling, TwoRunsAreBitIdentical) {
  // The determinism contract: equal seeds give equal draw sequences across
  // every sampler and both internal sampling paths.
  const auto draw_all = [](rng gen) {
    std::vector<std::uint64_t> log;
    const std::vector<std::uint64_t> counts = {500, 300, 200};
    for (int t = 0; t < 200; ++t) {
      log.push_back(sample_binomial(40, 0.3, gen));
      log.push_back(sample_binomial(5000, 0.4, gen));
      log.push_back(sample_hypergeometric(1000, 400, 6, gen));
      log.push_back(sample_hypergeometric(1000, 400, 300, gen));
      const auto mvh = sample_multivariate_hypergeometric(counts, 100, gen);
      log.insert(log.end(), mvh.begin(), mvh.end());
      const auto mn = sample_multinomial(100, {0.25, 0.25, 0.5}, gen);
      log.insert(log.end(), mn.begin(), mn.end());
      log.push_back(sample_categorical({1.0, 2.0, 3.0}, gen));
    }
    return log;
  };
  EXPECT_EQ(draw_all(rng(777)), draw_all(rng(777)));
}

TEST(DiscreteSampling, PointerOverloadsAreDrawForDrawIdentical) {
  // The allocation-free MVH/multinomial forms (the ensemble and sharded
  // paths) must consume the exact draw sequence of the vector forms.
  rng gen_a(55);
  rng gen_b(55);
  const std::vector<std::uint64_t> counts = {700, 250, 50, 0, 1000};
  const std::vector<double> probs = {0.1, 0.4, 0.2, 0.3};
  for (int t = 0; t < 200; ++t) {
    const auto mvh = sample_multivariate_hypergeometric(counts, 333, gen_a);
    std::vector<std::uint64_t> mvh_out(counts.size());
    sample_multivariate_hypergeometric(counts.data(), counts.size(), 333,
                                       gen_b, mvh_out.data());
    ASSERT_EQ(mvh_out, mvh);
    const auto mn = sample_multinomial(500, probs, gen_a);
    std::vector<std::uint64_t> mn_out(probs.size());
    sample_multinomial(500, probs.data(), probs.size(), gen_b,
                       mn_out.data());
    ASSERT_EQ(mn_out, mn);
  }
  // The generators themselves stay in lockstep.
  EXPECT_EQ(gen_a(), gen_b());
}

TEST(DiscreteSampling, CollisionRunSamplerTableMatchesTheBirthdayLaw) {
  // log S(j) = log n! - log (n-2j)! - j log(n(n-1)), computed directly via
  // lgamma, must match the incremental table within accumulated rounding.
  for (const std::uint64_t n : {2ull, 10ull, 1000ull, 123'456ull}) {
    const collision_run_sampler sampler(n);
    EXPECT_EQ(sampler.population_size(), n);
    const auto& table = sampler.log_survival();
    ASSERT_GE(table.size(), 2u);
    EXPECT_EQ(table[0], 0.0);
    EXPECT_EQ(table[1], 0.0);  // S(1) = 1: the first pair cannot collide
    const double lg_n1 = std::lgamma(static_cast<double>(n) + 1.0);
    const double log_pairs = std::log(static_cast<double>(n)) +
                             std::log(static_cast<double>(n - 1));
    for (std::size_t j = 0; j < table.size(); ++j) {
      const double direct =
          lg_n1 - std::lgamma(static_cast<double>(n - 2 * j) + 1.0) -
          static_cast<double>(j) * log_pairs;
      EXPECT_NEAR(table[j], direct, 1e-7) << "n=" << n << " j=" << j;
    }
    // The table covers the support or reaches below every level a 53-bit
    // uniform can ask for (log 2^-53 ~ -36.74).
    EXPECT_TRUE(table.size() == n / 2 + 1 || table.back() < -36.8);
  }
}

TEST(DiscreteSampling, CollisionRunSamplerMomentsAndSupport) {
  const std::uint64_t n = 10'000;
  const collision_run_sampler sampler(n);
  // E[J] = sum_j P(J > j), computable from the tabulated survival.
  double expected = 0.0;
  for (const double ls : sampler.log_survival()) expected += std::exp(ls);
  rng gen(66);
  running_summary s;
  constexpr int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t j = sampler.sample(gen);
    ASSERT_GE(j, 1u);
    ASSERT_LE(j, n / 2);
    s.add(static_cast<double>(j));
  }
  EXPECT_NEAR(s.mean(), expected,
              5.0 * s.stddev() / std::sqrt(static_cast<double>(trials)));
  // Determinism: equal seeds, equal draws.
  rng gen_a(67);
  rng gen_b(67);
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(sampler.sample(gen_a), sampler.sample(gen_b));
  }
}

}  // namespace
}  // namespace ppg
