// Tests for the Markov substrate: finite chains, stationary computation,
// mixing-time measurement, and random-walk closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "ppg/markov/chain.hpp"
#include "ppg/markov/mixing.hpp"
#include "ppg/markov/random_walk.hpp"
#include "ppg/markov/stationary.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/stats/summary.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

finite_chain two_state_chain(double p01, double p10) {
  finite_chain chain(2);
  chain.add_transition(0, 1, p01);
  chain.add_transition(0, 0, 1.0 - p01);
  chain.add_transition(1, 0, p10);
  chain.add_transition(1, 1, 1.0 - p10);
  return chain;
}

TEST(Chain, StochasticityCheck) {
  EXPECT_TRUE(two_state_chain(0.3, 0.6).is_stochastic());
  finite_chain broken(2);
  broken.add_transition(0, 1, 0.5);
  broken.add_transition(1, 0, 1.0);
  EXPECT_FALSE(broken.is_stochastic());
}

TEST(Chain, TransitionAccumulation) {
  finite_chain chain(2);
  chain.add_transition(0, 1, 0.25);
  chain.add_transition(0, 1, 0.25);
  EXPECT_DOUBLE_EQ(chain.probability(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(chain.probability(1, 0), 0.0);
}

TEST(Chain, StepPreservesMass) {
  const auto chain = two_state_chain(0.3, 0.6);
  const auto mu = chain.step({0.2, 0.8});
  EXPECT_NEAR(mu[0] + mu[1], 1.0, 1e-15);
  EXPECT_NEAR(mu[0], 0.2 * 0.7 + 0.8 * 0.6, 1e-15);
}

TEST(Chain, EvolveMatchesRepeatedStep) {
  const auto chain = two_state_chain(0.3, 0.6);
  auto manual = std::vector<double>{1.0, 0.0};
  for (int i = 0; i < 5; ++i) manual = chain.step(manual);
  const auto direct = chain.evolve({1.0, 0.0}, 5);
  EXPECT_NEAR(manual[0], direct[0], 1e-15);
}

TEST(Chain, IrreducibilityDetection) {
  EXPECT_TRUE(two_state_chain(0.3, 0.6).is_irreducible());
  finite_chain absorbing(2);
  absorbing.add_transition(0, 0, 1.0);
  absorbing.add_transition(1, 0, 1.0);
  EXPECT_FALSE(absorbing.is_irreducible());
}

TEST(Stationary, TwoStateClosedForm) {
  // pi = (p10, p01)/(p01 + p10).
  const auto chain = two_state_chain(0.3, 0.6);
  const auto pi = solve_stationary(chain);
  EXPECT_NEAR(pi[0], 0.6 / 0.9, 1e-12);
  EXPECT_NEAR(pi[1], 0.3 / 0.9, 1e-12);
}

TEST(Stationary, PowerIterationAgreesWithSolve) {
  const auto chain = two_state_chain(0.25, 0.15);
  const auto solved = solve_stationary(chain);
  const auto iterated = power_iteration_stationary(chain);
  EXPECT_TRUE(iterated.converged);
  EXPECT_LT(total_variation(solved, iterated.distribution), 1e-9);
}

TEST(Stationary, StationaryIsFixedPoint) {
  const auto chain = two_state_chain(0.4, 0.2);
  const auto pi = solve_stationary(chain);
  const auto stepped = chain.step(pi);
  EXPECT_LT(total_variation(pi, stepped), 1e-14);
}

TEST(Chain, DetailedBalanceResidual) {
  // Birth-death chains are reversible: residual should vanish at pi.
  const auto chain = reflecting_walk_chain(5, {0.2, 0.3});
  const auto pi = solve_stationary(chain);
  EXPECT_LT(chain.detailed_balance_residual(pi), 1e-12);
  // A uniform distribution is not stationary here.
  const std::vector<double> uniform(5, 0.2);
  EXPECT_GT(chain.detailed_balance_residual(uniform), 1e-3);
}

TEST(Mixing, TvDecayIsMonotoneForLazyChain) {
  const auto chain = reflecting_walk_chain(6, {0.2, 0.2});
  const auto pi = solve_stationary(chain);
  const auto curve = tv_decay_curve(chain, 0, pi, {0, 10, 50, 200, 1000});
  for (std::size_t i = 1; i < curve.tv.size(); ++i) {
    EXPECT_LE(curve.tv[i], curve.tv[i - 1] + 1e-12);
  }
  EXPECT_LT(curve.tv.back(), 0.05);
}

TEST(Mixing, HittingTimeOfTvFindsQuarter) {
  const auto chain = reflecting_walk_chain(4, {0.3, 0.3});
  const auto pi = solve_stationary(chain);
  const auto t = hitting_time_of_tv(chain, 0, pi, 0.25, 100000);
  EXPECT_GT(t, 0u);
  EXPECT_LT(t, 100000u);
  // Verify the definition: TV at t is <= 1/4, TV at t-1 is > 1/4.
  const auto curve = tv_decay_curve(chain, 0, pi, {t - 1, t});
  EXPECT_GT(curve.tv[0], 0.25);
  EXPECT_LE(curve.tv[1], 0.25);
}

TEST(Mixing, WorstOfStartsIsMax) {
  const auto chain = reflecting_walk_chain(8, {0.35, 0.1});
  const auto pi = solve_stationary(chain);
  const auto from0 = hitting_time_of_tv(chain, 0, pi, 0.25, 100000);
  const auto from7 = hitting_time_of_tv(chain, 7, pi, 0.25, 100000);
  const auto worst = mixing_time_from_starts(chain, {0, 7}, pi, 0.25, 100000);
  EXPECT_EQ(worst, std::max(from0, from7));
}

TEST(RandomWalk, UnbiasedAbsorptionTimeClosedForm) {
  // Unbiased lazy walk on {0..N}: E[tau] = z(N-z)/(a+b).
  const walk_params params{0.25, 0.25};
  EXPECT_NEAR(expected_absorption_time(params, 10, 5), 5.0 * 5.0 / 0.5,
              1e-9);
  EXPECT_DOUBLE_EQ(expected_absorption_time(params, 10, 0), 0.0);
  EXPECT_DOUBLE_EQ(expected_absorption_time(params, 10, 10), 0.0);
}

TEST(RandomWalk, BiasedAbsorptionMatchesSimulation) {
  const walk_params params{0.3, 0.15};
  const std::int64_t span = 12;
  const std::int64_t start = 4;
  rng gen(55);
  running_summary s;
  for (int i = 0; i < 40000; ++i) {
    s.add(static_cast<double>(
        simulate_absorption_time(params, span, start, gen)));
  }
  const double expected = expected_absorption_time(params, span, start);
  EXPECT_NEAR(s.mean(), expected, 4.0 * s.ci_half_width());
}

TEST(RandomWalk, UnbiasedAbsorptionMatchesSimulation) {
  const walk_params params{0.25, 0.25};
  rng gen(56);
  running_summary s;
  for (int i = 0; i < 40000; ++i) {
    s.add(static_cast<double>(simulate_absorption_time(params, 8, 3, gen)));
  }
  EXPECT_NEAR(s.mean(), expected_absorption_time(params, 8, 3),
              4.0 * s.ci_half_width());
}

TEST(RandomWalk, UpperAbsorptionProbability) {
  // Unbiased: probability z/N.
  EXPECT_NEAR(upper_absorption_probability({0.2, 0.2}, 10, 3), 0.3, 1e-12);
  // Strong upward bias from the middle: near 1.
  EXPECT_GT(upper_absorption_probability({0.4, 0.05}, 20, 10), 0.999);
  // Matches simulation for a moderate bias.
  const walk_params params{0.3, 0.2};
  rng gen(57);
  int upper = 0;
  constexpr int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    std::int64_t pos = 4;
    while (pos != 0 && pos != 10) {
      const double u = gen.next_double();
      if (u < params.up) ++pos;
      else if (u < params.up + params.down) --pos;
    }
    if (pos == 10) ++upper;
  }
  EXPECT_NEAR(upper / static_cast<double>(trials),
              upper_absorption_probability(params, 10, 4), 0.01);
}

TEST(RandomWalk, ReflectingChainIsStochasticAndReversible) {
  const auto chain = reflecting_walk_chain(7, {0.3, 0.2});
  EXPECT_TRUE(chain.is_stochastic());
  EXPECT_TRUE(chain.is_irreducible());
  const auto pi = reflecting_walk_stationary(7, {0.3, 0.2});
  EXPECT_LT(chain.detailed_balance_residual(pi), 1e-12);
}

TEST(RandomWalk, ReflectingStationaryMatchesSolve) {
  const walk_params params{0.15, 0.3};
  const auto closed = reflecting_walk_stationary(6, params);
  const auto solved = solve_stationary(reflecting_walk_chain(6, params));
  EXPECT_LT(total_variation(closed, solved), 1e-10);
}

// Property sweep: the geometric stationary law holds across biases & sizes.
class ReflectingWalkSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(ReflectingWalkSweep, ClosedFormStationary) {
  const auto [size, up] = GetParam();
  const walk_params params{up, 0.45 - up / 2.0};
  const auto closed = reflecting_walk_stationary(size, params);
  const auto solved = solve_stationary(reflecting_walk_chain(size, params));
  EXPECT_LT(total_variation(closed, solved), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBiases, ReflectingWalkSweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{5}, std::size_t{9},
                                         std::size_t{16}),
                       ::testing::Values(0.1, 0.2, 0.3, 0.4)));

TEST(RandomWalk, InvalidParamsThrow) {
  EXPECT_THROW((void)expected_absorption_time({0.0, 0.5}, 5, 2),
               invariant_error);
  EXPECT_THROW((void)expected_absorption_time({0.6, 0.6}, 5, 2),
               invariant_error);
  EXPECT_THROW((void)expected_absorption_time({0.3, 0.3}, 5, 9),
               invariant_error);
}

}  // namespace
}  // namespace ppg
