// The generic game-dynamics layer: game_matrix builders, update-rule
// contracts, the game_protocol compilation (game + rule -> kernel), engine
// agreement (two-sample chi-square at fixed parallel time across the agent,
// census, batched, and multibatch engines for every update rule on at
// least two games),
// and bitwise equivalence of igt_protocol — now a game_protocol
// specialization — with the paper's hand-written Definition 2.1 transition
// function, frozen here as the reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "engine_agreement.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/games/game_matrix.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/update_rule.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/pp/kernel.hpp"
#include "ppg/stats/chi_square.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(GameMatrix, DonationMatrixIsThePaperPrisonersDilemma) {
  const donation_game game{3.0, 1.0};
  const auto m = donation_matrix(game);
  ASSERT_EQ(m.num_strategies(), 2u);
  EXPECT_EQ(m.strategy_name(0), "C");
  EXPECT_EQ(m.strategy_name(1), "D");
  EXPECT_DOUBLE_EQ(m.payoff(0, 0), 2.0);   // b - c
  EXPECT_DOUBLE_EQ(m.payoff(0, 1), -1.0);  // -c
  EXPECT_DOUBLE_EQ(m.payoff(1, 0), 3.0);   // b
  EXPECT_DOUBLE_EQ(m.payoff(1, 1), 0.0);
  EXPECT_TRUE(game.payoffs().is_prisoners_dilemma());
  // Defection dominates against any mix.
  for (const double x : {0.0, 0.3, 1.0}) {
    EXPECT_GT(m.expected_payoff(1, {x, 1.0 - x}),
              m.expected_payoff(0, {x, 1.0 - x}));
  }
}

TEST(GameMatrix, HawkDoveMixedEquilibriumAtValueOverCost) {
  const auto m = hawk_dove_matrix(1.0, 2.0);
  // At hawk fraction v/c both strategies earn the same.
  const std::vector<double> ess = {0.5, 0.5};
  EXPECT_NEAR(m.expected_payoff(0, ess), m.expected_payoff(1, ess), 1e-12);
  EXPECT_EQ(m.best_responses(ess).size(), 2u);
  // Above it doves do better, below it hawks do.
  EXPECT_GT(m.expected_payoff(1, {0.7, 0.3}),
            m.expected_payoff(0, {0.7, 0.3}));
  EXPECT_GT(m.expected_payoff(0, {0.3, 0.7}),
            m.expected_payoff(1, {0.3, 0.7}));
}

TEST(GameMatrix, StagHuntHasTwoPureEquilibriaAndAThreshold) {
  const auto m = stag_hunt_matrix(4.0, 3.0);
  EXPECT_EQ(m.best_responses({1.0, 0.0}),
            (std::vector<std::size_t>{0}));  // all-stag: stag best
  EXPECT_EQ(m.best_responses({0.0, 1.0}),
            (std::vector<std::size_t>{1}));  // all-hare: hare best
  // Indifference at stag fraction hare/stag = 3/4.
  const std::vector<double> threshold = {0.75, 0.25};
  EXPECT_NEAR(m.expected_payoff(0, threshold),
              m.expected_payoff(1, threshold), 1e-12);
}

TEST(GameMatrix, RockPaperScissorsIsZeroSumWithUniformEquilibrium) {
  const auto m = rock_paper_scissors_matrix();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m.payoff(i, j), -m.payoff(j, i));
    }
  }
  const std::vector<double> uniform(3, 1.0 / 3.0);
  EXPECT_NEAR(m.average_payoff(uniform), 0.0, 1e-12);
  EXPECT_EQ(m.best_responses(uniform).size(), 3u);
}

TEST(GameMatrix, IgtMatrixMatchesTheClosedFormPayoffs) {
  const std::size_t k = 4;
  const rd_setting setting{2.0, 1.0, 0.9, 0.8};
  const double g_max = 0.6;
  const auto m = igt_game_matrix(k, setting, g_max);
  ASSERT_EQ(m.num_strategies(), 2 + k);
  EXPECT_EQ(m.strategy_name(0), "AC");
  EXPECT_EQ(m.strategy_name(1), "AD");
  EXPECT_EQ(m.strategy_name(2), "g1");
  EXPECT_EQ(m.strategy_name(2 + k - 1), "g" + std::to_string(k));
  const auto grid = generosity_grid(k, g_max);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(m.payoff(2 + i, 0), f_gtft_vs_ac(setting), 1e-9);
    EXPECT_NEAR(m.payoff(2 + i, 1), f_gtft_vs_ad(setting, grid[i]), 1e-9);
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_NEAR(m.payoff(2 + i, 2 + j),
                  f_gtft_vs_gtft(setting, grid[i], grid[j]), 1e-9);
    }
  }
}

TEST(GameMatrix, ConstructionRejectsMalformedInput) {
  EXPECT_THROW(game_matrix({"A"}, {1.0}), invariant_error);
  EXPECT_THROW(game_matrix({"A", "B"}, {1.0, 2.0, 3.0}), invariant_error);
  EXPECT_THROW(game_matrix({"A", "A"}, {0.0, 0.0, 0.0, 0.0}),
               invariant_error);
  EXPECT_THROW(game_matrix({"A", ""}, {0.0, 0.0, 0.0, 0.0}),
               invariant_error);
  EXPECT_THROW(hawk_dove_matrix(2.0, 1.0), invariant_error);
  EXPECT_THROW(stag_hunt_matrix(3.0, 4.0), invariant_error);
}

std::vector<std::shared_ptr<const update_rule>> all_rules() {
  return {std::make_shared<imitate_if_better_rule>(),
          std::make_shared<proportional_imitation_rule>(0.8),
          std::make_shared<logit_response_rule>(0.5),
          std::make_shared<igt_ladder_rule>(3)};
}

TEST(UpdateRules, RevisionsAreProbabilityDistributions) {
  const auto igt = igt_game_matrix(3);
  const auto games = {donation_matrix(), igt};
  for (const auto& rule : all_rules()) {
    for (const auto& game : games) {
      if (rule->name() == "igt-ladder" && game.num_strategies() != 5) {
        continue;  // the ladder is defined over the generosity-indexed set
      }
      for (std::size_t s = 0; s < game.num_strategies(); ++s) {
        for (std::size_t p = 0; p < game.num_strategies(); ++p) {
          const auto dist = rule->revise(game, s, p);
          ASSERT_EQ(dist.size(), game.num_strategies());
          double total = 0.0;
          for (const double x : dist) {
            EXPECT_GE(x, 0.0);
            total += x;
          }
          EXPECT_NEAR(total, 1.0, 1e-12) << rule->name();
        }
      }
    }
  }
}

TEST(UpdateRules, ImitateIfBetterFollowsTheEncounterPayoffs) {
  const auto m = donation_matrix();  // C vs D: the defector earns more
  const imitate_if_better_rule rule;
  EXPECT_DOUBLE_EQ(rule.revise(m, 0, 1)[1], 1.0);  // C adopts D
  EXPECT_DOUBLE_EQ(rule.revise(m, 1, 0)[1], 1.0);  // D keeps D
  EXPECT_DOUBLE_EQ(rule.revise(m, 0, 0)[0], 1.0);  // ties never switch
}

TEST(UpdateRules, ProportionalImitationScalesWithThePayoffGap) {
  const auto m = donation_matrix(donation_game{2.0, 1.0});
  // Span = b - (-c) = 3; C vs D gap = b - (-c) = 3 -> switch w.p. rate.
  const proportional_imitation_rule rule(0.5);
  EXPECT_NEAR(rule.revise(m, 0, 1)[1], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(rule.revise(m, 1, 0)[1], 1.0);  // winners never switch
}

TEST(UpdateRules, LogitApproachesBestResponseAsTemperatureFalls) {
  const auto m = stag_hunt_matrix(4.0, 3.0);
  const logit_response_rule cold(0.05);
  const logit_response_rule hot(100.0);
  // Respond to a stag partner: stag is the best response.
  EXPECT_GT(cold.revise(m, 1, 0)[0], 0.999);
  // Near-infinite temperature: uniform.
  EXPECT_NEAR(hot.revise(m, 1, 0)[0], 0.5, 0.01);
}

TEST(UpdateRules, LadderMatchesTheIgtEncoding) {
  const std::size_t k = 4;
  const auto m = igt_game_matrix(k);
  const igt_ladder_rule rule(k);
  for (std::size_t level = 0; level < k; ++level) {
    const auto self = igt_encoding::gtft(level);
    const auto up = rule.revise(m, self, igt_encoding::ac);
    const auto down = rule.revise(m, self, igt_encoding::ad);
    EXPECT_DOUBLE_EQ(
        up[igt_encoding::gtft(std::min(level + 1, k - 1))], 1.0);
    EXPECT_DOUBLE_EQ(
        down[igt_encoding::gtft(level > 0 ? level - 1 : 0)], 1.0);
  }
  EXPECT_DOUBLE_EQ(rule.revise(m, igt_encoding::ac, igt_encoding::ad)
                       [igt_encoding::ac],
                   1.0);
  EXPECT_THROW((void)rule.revise(donation_matrix(), 0, 1), invariant_error);
}

TEST(GameProtocol, CompiledKernelSatisfiesTheKernelContract) {
  for (const auto discipline :
       {revision_discipline::one_way, revision_discipline::two_way}) {
    for (const auto& rule : all_rules()) {
      const auto game = rule->name() == "igt-ladder"
                            ? igt_game_matrix(3)
                            : hawk_dove_matrix(1.0, 2.0);
      const game_protocol proto(game, rule, discipline);
      EXPECT_TRUE(proto.has_kernel());
      EXPECT_EQ(proto.num_states(), game.num_strategies());
      EXPECT_NO_THROW(kernel_table{proto});  // validates every pair
    }
  }
}

TEST(GameProtocol, OneWayNeverTouchesTheResponder) {
  const game_protocol proto(rock_paper_scissors_matrix(),
                            std::make_shared<logit_response_rule>(0.7));
  for (agent_state i = 0; i < proto.num_states(); ++i) {
    for (agent_state r = 0; r < proto.num_states(); ++r) {
      for (const auto& o : proto.outcome_distribution(i, r)) {
        EXPECT_EQ(o.responder, r);
      }
    }
  }
}

TEST(GameProtocol, TwoWayKernelIsTheProductOfIndependentRevisions) {
  const auto game = hawk_dove_matrix(1.0, 2.0);
  const auto rule = std::make_shared<logit_response_rule>(0.4);
  const game_protocol proto(game, rule, revision_discipline::two_way);
  for (agent_state i = 0; i < 2; ++i) {
    for (agent_state r = 0; r < 2; ++r) {
      const auto mine = rule->revise(game, i, r);
      const auto theirs = rule->revise(game, r, i);
      for (const auto& o : proto.outcome_distribution(i, r)) {
        EXPECT_NEAR(o.probability, mine[o.initiator] * theirs[o.responder],
                    1e-12);
      }
    }
  }
}

TEST(GameProtocol, InteractMatchesDefaultKernelSampling) {
  // The cached-kernel interact must consume draws exactly like the default
  // outcome_distribution sampler, so trajectories are independent of the
  // caching optimization.
  const game_protocol proto(hawk_dove_matrix(1.0, 2.0),
                            std::make_shared<logit_response_rule>(0.4),
                            revision_discipline::two_way);
  // A shadow protocol exposing the same kernel through the default path.
  class shadow final : public protocol {
   public:
    explicit shadow(const game_protocol& inner) : inner_(&inner) {}
    [[nodiscard]] std::size_t num_states() const override {
      return inner_->num_states();
    }
    [[nodiscard]] bool has_kernel() const override { return true; }
    [[nodiscard]] std::vector<outcome> outcome_distribution(
        agent_state i, agent_state r) const override {
      return inner_->outcome_distribution(i, r);
    }

   private:
    const game_protocol* inner_;
  };
  const shadow uncached(proto);
  rng gen_a(11);
  rng gen_b(11);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto i = static_cast<agent_state>(trial % 2);
    const auto r = static_cast<agent_state>((trial / 2) % 2);
    EXPECT_EQ(proto.interact(i, r, gen_a), uncached.interact(i, r, gen_b));
  }
}

// ---------------------------------------------------------------------------
// The shared engine-agreement suite: for every update rule, on two games
// each, the agent, census, batched, and multibatch engines must agree in
// distribution at a fixed parallel time (two-sample chi-square on a census
// statistic).
// ---------------------------------------------------------------------------

struct engine_case {
  std::string label;
  std::shared_ptr<const update_rule> rule;
  game_matrix game;
  std::vector<std::uint64_t> initial_counts;
};

std::vector<engine_case> engine_cases() {
  std::vector<engine_case> cases;
  const auto donation = donation_matrix(donation_game{2.0, 1.0});
  const auto hawk_dove = hawk_dove_matrix(1.0, 2.0);
  const auto rps = rock_paper_scissors_matrix();
  const std::vector<std::uint64_t> two_even = {75, 75};
  const std::vector<std::uint64_t> three_tilted = {70, 50, 30};
  cases.push_back({"imitate/donation",
                   std::make_shared<imitate_if_better_rule>(), donation,
                   two_even});
  cases.push_back({"imitate/hawk-dove",
                   std::make_shared<imitate_if_better_rule>(), hawk_dove,
                   two_even});
  cases.push_back({"proportional/donation",
                   std::make_shared<proportional_imitation_rule>(0.8),
                   donation, two_even});
  cases.push_back({"proportional/rps",
                   std::make_shared<proportional_imitation_rule>(0.8), rps,
                   three_tilted});
  cases.push_back({"logit/hawk-dove",
                   std::make_shared<logit_response_rule>(0.5), hawk_dove,
                   two_even});
  cases.push_back({"logit/stag-hunt",
                   std::make_shared<logit_response_rule>(0.5),
                   stag_hunt_matrix(4.0, 3.0), two_even});
  // Two distinct ladder games: different rung counts (and so different
  // generosity grids and payoff matrices).
  cases.push_back({"ladder/igt-k3", std::make_shared<igt_ladder_rule>(3),
                   igt_game_matrix(3), {20, 40, 90, 0, 0}});
  cases.push_back({"ladder/igt-k4", std::make_shared<igt_ladder_rule>(4),
                   igt_game_matrix(4), {20, 40, 90, 0, 0, 0}});
  return cases;
}

TEST(Engines, AllUpdateRulesAgreeAcrossEnginesAtFixedParallelTime) {
  std::uint64_t master = 400;
  for (const auto& c : engine_cases()) {
    const game_protocol proto(c.game, c.rule);
    const sim_spec spec(proto, c.initial_counts);
    const std::uint64_t steps = 12 * spec.population_size();
    // One scalar summary that weights every state differently, so a
    // distribution shift in any coordinate moves it.
    const auto statistic = [](const census_view& census) {
      double mass = 0.0;
      for (std::size_t s = 0; s < census.num_state_kinds(); ++s) {
        mass += static_cast<double>(s + 1) *
                static_cast<double>(census.count(
                    static_cast<agent_state>(s)));
      }
      return mass;
    };
    constexpr std::size_t replicas = 200;
    const auto agent = testing::replica_statistics(
        spec, engine_kind::agent, replicas, steps, master++, statistic);
    const auto census = testing::replica_statistics(
        spec, engine_kind::census, replicas, steps, master++, statistic);
    const auto batched = testing::replica_statistics(
        spec, engine_kind::batched, replicas, steps, master++, statistic);
    const auto multibatch = testing::replica_statistics(
        spec, engine_kind::multibatch, replicas, steps, master++, statistic);
    EXPECT_GT(testing::two_sample_p(agent, census, 8), 1e-4) << c.label;
    EXPECT_GT(testing::two_sample_p(agent, batched, 8), 1e-4) << c.label;
    EXPECT_GT(testing::two_sample_p(agent, multibatch, 8), 1e-4) << c.label;
  }
}

// ---------------------------------------------------------------------------
// Bitwise equivalence of the compiled igt_protocol with the legacy
// hand-written Definition 2.1 transition function (the pre-refactor
// implementation, frozen here verbatim as the reference).
// ---------------------------------------------------------------------------

class legacy_igt_protocol final : public protocol {
 public:
  explicit legacy_igt_protocol(std::size_t k, igt_discipline discipline)
      : k_(k), discipline_(discipline) {}

  [[nodiscard]] std::size_t num_states() const override { return 2 + k_; }
  [[nodiscard]] bool has_kernel() const override { return true; }

  [[nodiscard]] std::vector<outcome> outcome_distribution(
      agent_state initiator, agent_state responder) const override {
    const agent_state next_initiator = updated_level(initiator, responder);
    const agent_state next_responder =
        discipline_ == igt_discipline::two_way
            ? updated_level(responder, initiator)
            : responder;
    return {{next_initiator, next_responder, 1.0}};
  }

  [[nodiscard]] std::pair<agent_state, agent_state> interact(
      agent_state initiator, agent_state responder,
      rng& /*gen*/) const override {
    const agent_state next_initiator = updated_level(initiator, responder);
    const agent_state next_responder =
        discipline_ == igt_discipline::two_way
            ? updated_level(responder, initiator)
            : responder;
    return {next_initiator, next_responder};
  }

 private:
  [[nodiscard]] agent_state updated_level(agent_state self,
                                          agent_state partner) const {
    if (!igt_encoding::is_gtft(self)) {
      return self;
    }
    const std::size_t level = igt_encoding::level(self);
    if (partner == igt_encoding::ad) {
      return igt_encoding::gtft(level > 0 ? level - 1 : 0);
    }
    return igt_encoding::gtft(level + 1 < k_ ? level + 1 : k_ - 1);
  }

  std::size_t k_;
  igt_discipline discipline_;
};

TEST(IgtCompilation, BitwiseIdenticalToTheLegacyImplementation) {
  const std::size_t k = 5;
  for (const auto discipline :
       {igt_discipline::one_way, igt_discipline::two_way}) {
    const igt_protocol compiled(k, discipline);
    const legacy_igt_protocol legacy(k, discipline);
    // The kernels are pointwise identical...
    for (agent_state i = 0; i < compiled.num_states(); ++i) {
      for (agent_state r = 0; r < compiled.num_states(); ++r) {
        const auto a = compiled.outcome_distribution(i, r);
        const auto b = legacy.outcome_distribution(i, r);
        ASSERT_EQ(a.size(), 1u);
        ASSERT_EQ(b.size(), 1u);
        EXPECT_EQ(a[0].initiator, b[0].initiator);
        EXPECT_EQ(a[0].responder, b[0].responder);
      }
    }
    // ...and shared-seed trajectories are bitwise equal on the agent and
    // census engines (compared censuswise at every checkpoint).
    const auto pop = abg_population::from_fractions(90, 0.2, 0.3, 0.5);
    const sim_spec spec_compiled(
        compiled, population(make_igt_population_states(pop, k, 1), 2 + k));
    const sim_spec spec_legacy(
        legacy, population(make_igt_population_states(pop, k, 1), 2 + k));
    for (const auto kind : {engine_kind::agent, engine_kind::census}) {
      rng gen_a(2024);
      rng gen_b(2024);
      const auto lhs = spec_compiled.make_engine(kind, gen_a);
      const auto rhs = spec_legacy.make_engine(kind, gen_b);
      for (int checkpoint = 0; checkpoint < 20; ++checkpoint) {
        lhs->run(1000);
        rhs->run(1000);
        ASSERT_EQ(lhs->census().counts(), rhs->census().counts())
            << engine_kind_name(kind) << " checkpoint " << checkpoint;
      }
    }
  }
}

TEST(IgtCompilation, ExposesTheCompiledGameAndRule) {
  const igt_protocol proto(4);
  EXPECT_EQ(proto.game().num_strategies(), 6u);
  EXPECT_EQ(proto.rule().name(), "igt-ladder");
  EXPECT_EQ(proto.discipline(), igt_discipline::one_way);
  EXPECT_EQ(proto.state_name(0), "AC");
  EXPECT_EQ(proto.state_name(1), "AD");
  EXPECT_EQ(proto.state_name(5), "g4");
}

}  // namespace
}  // namespace ppg
