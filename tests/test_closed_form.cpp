// Tests for the paper's closed-form payoff derivatives and the
// Proposition 2.2 local-optimality regime.
#include <gtest/gtest.h>

#include <cmath>

#include "ppg/games/closed_form.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

// Numeric differentiation helpers (central differences).
double numeric_df(const rd_setting& s, double g, double gp) {
  const double h = 1e-6;
  return (f_gtft_vs_gtft(s, g + h, gp) - f_gtft_vs_gtft(s, g - h, gp)) /
         (2.0 * h);
}

double numeric_d2f(const rd_setting& s, double g, double gp) {
  const double h = 1e-4;
  return (f_gtft_vs_gtft(s, g + h, gp) - 2.0 * f_gtft_vs_gtft(s, g, gp) +
          f_gtft_vs_gtft(s, g - h, gp)) /
         (h * h);
}

TEST(ClosedForm, SettingValidity) {
  EXPECT_TRUE((rd_setting{2.0, 1.0, 0.9, 0.5}).valid());
  EXPECT_FALSE((rd_setting{1.0, 1.0, 0.9, 0.5}).valid());   // b == c
  EXPECT_FALSE((rd_setting{2.0, 1.0, 1.0, 0.5}).valid());   // delta == 1
  EXPECT_FALSE((rd_setting{2.0, 1.0, 0.9, 1.5}).valid());   // s1 > 1
  EXPECT_FALSE((rd_setting{2.0, -1.0, 0.9, 0.5}).valid());  // c < 0
}

TEST(ClosedForm, FVsAcIndependentOfGenerosity) {
  const rd_setting s{3.0, 1.0, 0.7, 0.4};
  const double base = f_gtft_vs_ac(s);
  EXPECT_NEAR(base, 1.0 * 0.6 + 2.0 / 0.3, 1e-12);
}

TEST(ClosedForm, FVsAdDecreasesLinearlyInG) {
  const rd_setting s{3.0, 1.0, 0.5, 0.2};
  // f(g, AD) = -c s1 - c g delta/(1-delta): linear in g with slope
  // -c delta/(1-delta).
  const double slope =
      (f_gtft_vs_ad(s, 0.8) - f_gtft_vs_ad(s, 0.2)) / 0.6;
  EXPECT_NEAR(slope, -1.0 * 0.5 / 0.5, 1e-10);
  EXPECT_NEAR(f_gtft_vs_ad(s, 0.0), -0.2, 1e-12);
}

TEST(ClosedForm, MutualFullGenerosityEqualsFullCooperationAfterRound1) {
  // g = g' = 1: round 1 is random by s1, all later rounds are CC.
  const rd_setting s{3.0, 1.0, 0.8, 0.25};
  const double expected =
      s.s1 * (s.b - s.c) + (s.b - s.c) * s.delta / (1.0 - s.delta);
  EXPECT_NEAR(f_gtft_vs_gtft(s, 1.0, 1.0), expected, 1e-10);
}

TEST(ClosedForm, TwoTftPlayersClosedForm) {
  // g = g' = 0 reduces to two TFT players: f = s1 (b - c)/(1 - delta).
  const rd_setting s{3.0, 1.0, 0.6, 0.7};
  EXPECT_NEAR(f_gtft_vs_gtft(s, 0.0, 0.0),
              s.s1 * (s.b - s.c) / (1.0 - s.delta), 1e-10);
}

TEST(ClosedForm, DerivativeMatchesNumericDifferentiation) {
  const rd_setting s{4.0, 1.0, 0.85, 0.3};
  for (const double g : {0.05, 0.3, 0.7, 0.95}) {
    for (const double gp : {0.1, 0.5, 0.9}) {
      EXPECT_NEAR(df_dg_gtft_vs_gtft(s, g, gp), numeric_df(s, g, gp), 1e-5)
          << "g=" << g << " g'=" << gp;
    }
  }
}

TEST(ClosedForm, SecondDerivativeMatchesNumericDifferentiation) {
  const rd_setting s{4.0, 1.0, 0.85, 0.3};
  for (const double g : {0.1, 0.4, 0.8}) {
    for (const double gp : {0.2, 0.6}) {
      EXPECT_NEAR(d2f_dg2_gtft_vs_gtft(s, g, gp), numeric_d2f(s, g, gp),
                  1e-3)
          << "g=" << g << " g'=" << gp;
    }
  }
}

TEST(ClosedForm, SecondDerivativeBoundIsValid) {
  const rd_setting s{4.0, 1.0, 0.85, 0.3};
  const double g_max = 0.9;
  const double bound = second_derivative_bound(s, g_max);
  for (double g = 0.0; g <= g_max + 1e-12; g += 0.05) {
    for (double gp = 0.0; gp <= g_max + 1e-12; gp += 0.05) {
      EXPECT_LE(std::abs(d2f_dg2_gtft_vs_gtft(s, g, gp)), bound);
    }
  }
}

TEST(Proposition22, RegimePredicate) {
  // delta > c/b and g_max < 1 - c/(delta b).
  const rd_setting good{3.0, 1.0, 0.8, 0.5};
  EXPECT_TRUE(proposition_2_2_regime(good, 0.5));
  // g_max too large: 1 - 1/(0.8*3) = 0.583...
  EXPECT_FALSE(proposition_2_2_regime(good, 0.6));
  // delta below c/b.
  const rd_setting slow{3.0, 1.0, 0.3, 0.5};
  EXPECT_FALSE(proposition_2_2_regime(slow, 0.2));
  // s1 = 1 excluded.
  const rd_setting deterministic{3.0, 1.0, 0.8, 1.0};
  EXPECT_FALSE(proposition_2_2_regime(deterministic, 0.5));
}

// Proposition 2.2(i): f(g, g'') strictly increasing in g within the regime.
class Prop22MonotoneSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Prop22MonotoneSweep, PayoffIncreasesWithOwnGenerosity) {
  const auto [b, delta] = GetParam();
  const rd_setting s{b, 1.0, delta, 0.5};
  const double g_max = 0.95 * (1.0 - 1.0 / (delta * b));
  ASSERT_TRUE(proposition_2_2_regime(s, g_max));
  const int steps = 8;
  for (int gi = 0; gi < steps; ++gi) {
    for (int gj = gi + 1; gj <= steps; ++gj) {
      const double g = g_max * gi / steps;
      const double g2 = g_max * gj / steps;
      for (int gk = 0; gk <= steps; ++gk) {
        const double gpp = g_max * gk / steps;
        // (i) strictly increasing against any GTFT opponent.
        EXPECT_LT(f_gtft_vs_gtft(s, g, gpp), f_gtft_vs_gtft(s, g2, gpp));
      }
      // (ii) non-decreasing against AC (equal here).
      EXPECT_LE(f_gtft_vs_ac(s), f_gtft_vs_ac(s));
      // (iii) strictly decreasing against AD.
      EXPECT_GT(f_gtft_vs_ad(s, g), f_gtft_vs_ad(s, g2));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, Prop22MonotoneSweep,
    ::testing::Combine(::testing::Values(2.0, 3.0, 8.0),
                       ::testing::Values(0.6, 0.8, 0.95)));

TEST(Proposition22, DerivativePositiveInsideRegime) {
  const rd_setting s{3.0, 1.0, 0.8, 0.5};
  const double g_max = 0.9 * (1.0 - 1.0 / (0.8 * 3.0));
  ASSERT_TRUE(proposition_2_2_regime(s, g_max));
  for (double g = 0.0; g <= g_max; g += g_max / 10.0) {
    for (double gp = 0.0; gp <= g_max; gp += g_max / 10.0) {
      EXPECT_GT(df_dg_gtft_vs_gtft(s, g, gp), 0.0);
    }
  }
}

TEST(Proposition22, MonotonicityCanFailOutsideRegime) {
  // With tiny delta the future is worthless: generosity against a stingy
  // GTFT opponent only costs, so the derivative goes negative somewhere.
  const rd_setting s{1.2, 1.0, 0.05, 0.5};
  bool found_negative = false;
  for (double g = 0.0; g <= 1.0; g += 0.1) {
    for (double gp = 0.0; gp <= 1.0; gp += 0.1) {
      if (df_dg_gtft_vs_gtft(s, g, gp) < 0.0) found_negative = true;
    }
  }
  EXPECT_TRUE(found_negative);
}

TEST(ClosedForm, GenerosityRangeChecked) {
  const rd_setting s{3.0, 1.0, 0.8, 0.5};
  EXPECT_THROW((void)f_gtft_vs_ad(s, 1.5), invariant_error);
  EXPECT_THROW((void)f_gtft_vs_gtft(s, -0.1, 0.5), invariant_error);
}

}  // namespace
}  // namespace ppg
