// Failure-injection tests: the engine must reject corrupt inputs loudly
// rather than silently mis-simulate. Each test wires a deliberately broken
// component through the public API and asserts a diagnosable failure.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <limits>
#include <string>

#include "ppg/core/igt_protocol.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/markov/chain.hpp"
#include "ppg/markov/stationary.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/pp/trace.hpp"
#include "ppg/serve/server.hpp"
#include "ppg/stats/chi_square.hpp"
#include "ppg/util/atomic_file.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

// A protocol that emits a state outside its declared state space.
class rogue_protocol final : public protocol {
 public:
  [[nodiscard]] std::size_t num_states() const override { return 2; }
  [[nodiscard]] std::pair<agent_state, agent_state> interact(
      agent_state, agent_state, rng&) const override {
    return {7, 7};  // out of range
  }
};

TEST(FailureInjection, RogueProtocolStateIsCaughtAtApplication) {
  const rogue_protocol proto;
  simulation sim(proto, population({0, 1}, 2), rng(1));
  EXPECT_THROW(sim.step(), invariant_error);
}

// A protocol that under-declares its state space relative to the
// population's encoding.
TEST(FailureInjection, PopulationSmallerThanProtocolIsRejected) {
  const igt_protocol proto(8);  // needs 10 states
  EXPECT_THROW(simulation(proto, population({0, 1}, 3), rng(2)),
               invariant_error);
}

TEST(FailureInjection, NonStochasticChainDetected) {
  finite_chain chain(2);
  chain.add_transition(0, 1, 0.7);  // row 0 sums to 0.7
  chain.add_transition(1, 0, 0.5);
  chain.add_transition(1, 1, 0.5);
  EXPECT_FALSE(chain.is_stochastic());
}

TEST(FailureInjection, NegativeTransitionRejected) {
  finite_chain chain(2);
  EXPECT_THROW(chain.add_transition(0, 1, -0.1), invariant_error);
}

TEST(FailureInjection, StationarySolveOnReducibleChainFails) {
  // Two absorbing components: stationary distribution is not unique; the
  // direct solve must either throw (singular system) — any silent answer
  // would be wrong.
  finite_chain chain(4);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 0, 1.0);
  chain.add_transition(2, 3, 1.0);
  chain.add_transition(3, 2, 1.0);
  EXPECT_FALSE(chain.is_irreducible());
  EXPECT_THROW((void)solve_stationary(chain), invariant_error);
}

TEST(FailureInjection, SimplexMismatchRejectedByExactChain) {
  const ehrenfest_params params{3, 0.3, 0.2, 6};
  const simplex_index wrong_k(4, 6);
  const simplex_index wrong_m(3, 7);
  EXPECT_THROW((void)build_ehrenfest_chain(params, wrong_k),
               invariant_error);
  EXPECT_THROW((void)build_ehrenfest_chain(params, wrong_m),
               invariant_error);
}

TEST(FailureInjection, ChiSquareRejectsEmptyAndMismatchedInput) {
  EXPECT_THROW((void)chi_square_gof({1, 2}, {0.5, 0.3, 0.2}),
               invariant_error);
  EXPECT_THROW((void)chi_square_gof({0, 0}, {0.5, 0.5}), invariant_error);
  EXPECT_THROW((void)chi_square_gof({5}, {1.0}), invariant_error);
}

TEST(FailureInjection, CorruptCensusLevelsRejected) {
  const abg_population pop{1, 1, 2};
  // Level 9 does not exist for k = 4.
  EXPECT_THROW((void)make_igt_population_states(
                   pop, 4, std::vector<std::uint32_t>{0, 9}),
               invariant_error);
}

TEST(FailureInjection, NanProbabilitiesRejectedByRng) {
  rng gen(3);
  // NaN comparisons are false, so next_bernoulli(NaN) must not return true;
  // geometric with NaN must throw via its range check.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(gen.next_bernoulli(nan));
  EXPECT_THROW((void)gen.next_geometric(nan), invariant_error);
}

TEST(FailureInjection, RecorderAfterStateCorruptionStaysConsistent) {
  // Injecting a failing step must leave previously recorded rows intact.
  const rogue_protocol proto;
  simulation sim(proto, population({0, 1}, 2), rng(4));
  census_recorder recorder({"a", "b"});
  recorder.record(sim);
  EXPECT_THROW(sim.step(), invariant_error);
  EXPECT_EQ(recorder.row_count(), 1u);
  EXPECT_EQ(recorder.rows()[0].interactions, 0u);
}

// --- deterministic fault plans (ppg-serve durability layer) ----------------

TEST(FailureInjection, ShortSizesAreBoundedAndSeedDeterministic) {
  const char* plan_text = R"({"seed": 77, "rules": []})";
  auto first = fault_plan::parse(json::parse(plan_text));
  auto second = fault_plan::parse(json::parse(plan_text));
  for (int i = 0; i < 100; ++i) {
    const std::size_t a = first->short_size(4096);
    EXPECT_GE(a, 1u);
    EXPECT_LT(a, 4096u);
    EXPECT_EQ(a, second->short_size(4096));  // pure function of (seed, order)
  }
  EXPECT_EQ(first->short_size(1), 1u);  // cannot shorten below one byte
}

TEST(FailureInjection, FsyncFaultFailsTheAtomicWriteAndKeepsTheOldFile) {
  std::string dir = "/tmp/ppg_fault_XXXXXX";
  ASSERT_NE(::mkdtemp(dir.data()), nullptr);
  const std::string path = dir + "/spill.json";
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, "generation-1", &error)) << error;

  auto plan = fault_plan::parse(json::parse(
      R"({"rules": [{"site": "store.fsync", "nth": 1, "action": "eio"}]})"));
  faulty_file_ops ops(plan, default_file_ops());
  EXPECT_FALSE(atomic_write_file(path, "generation-2", &error, ops));
  std::string bytes;
  ASSERT_TRUE(read_file(path, &bytes, &error)) << error;
  EXPECT_EQ(bytes, "generation-1");
  EXPECT_EQ(plan->fired(), 1u);

  ::unlink(path.c_str());
  ::rmdir(dir.c_str());
}

/// Bare blocking socket talking to a live http_server.
class raw_client {
 public:
  explicit raw_client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                        sizeof(address)),
              0);
  }
  ~raw_client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_all(const std::string& bytes) const {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t wrote =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(wrote, 0);
      sent += static_cast<std::size_t>(wrote);
    }
  }

  /// Everything the server sends until it closes the connection.
  std::string read_to_eof() const {
    std::string all;
    char chunk[4096];
    for (;;) {
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got <= 0) return all;
      all.append(chunk, static_cast<std::size_t>(got));
    }
  }

 private:
  int fd_ = -1;
};

TEST(FailureInjection, InjectedSocketFaultsDropConnectionsNotTheServer) {
  serve_config config;
  config.connection_threads = 1;  // serialize so fault ordering is exact
  // First response write dies with EIO; reads 2..4 are short (fragmenting
  // request parsing); everything later is clean.
  config.faults = fault_plan::parse(json::parse(R"({
      "seed": 13,
      "rules": [{"site": "socket.write", "nth": 1, "action": "eio"},
                {"site": "socket.read", "nth": 2, "action": "short"},
                {"site": "socket.read", "nth": 3, "action": "short"},
                {"site": "socket.read", "nth": 4, "action": "short"}]})"));
  serve_app app(config);
  http_server server(app, config);
  server.start();

  {
    // The injected write failure closes the connection before any bytes.
    raw_client doomed(server.port());
    doomed.send_all("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_EQ(doomed.read_to_eof(), "");
  }
  {
    // Short reads only fragment the stream; the request still assembles and
    // the server answers normally — no crash, no corruption.
    raw_client fragmented(server.port());
    fragmented.send_all("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    const std::string response = fragmented.read_to_eof();
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
  }
  server.stop();
}

}  // namespace
}  // namespace ppg
