// Failure-injection tests: the engine must reject corrupt inputs loudly
// rather than silently mis-simulate. Each test wires a deliberately broken
// component through the public API and asserts a diagnosable failure.
#include <gtest/gtest.h>

#include <limits>

#include "ppg/core/igt_protocol.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/markov/chain.hpp"
#include "ppg/markov/stationary.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/pp/trace.hpp"
#include "ppg/stats/chi_square.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

// A protocol that emits a state outside its declared state space.
class rogue_protocol final : public protocol {
 public:
  [[nodiscard]] std::size_t num_states() const override { return 2; }
  [[nodiscard]] std::pair<agent_state, agent_state> interact(
      agent_state, agent_state, rng&) const override {
    return {7, 7};  // out of range
  }
};

TEST(FailureInjection, RogueProtocolStateIsCaughtAtApplication) {
  const rogue_protocol proto;
  simulation sim(proto, population({0, 1}, 2), rng(1));
  EXPECT_THROW(sim.step(), invariant_error);
}

// A protocol that under-declares its state space relative to the
// population's encoding.
TEST(FailureInjection, PopulationSmallerThanProtocolIsRejected) {
  const igt_protocol proto(8);  // needs 10 states
  EXPECT_THROW(simulation(proto, population({0, 1}, 3), rng(2)),
               invariant_error);
}

TEST(FailureInjection, NonStochasticChainDetected) {
  finite_chain chain(2);
  chain.add_transition(0, 1, 0.7);  // row 0 sums to 0.7
  chain.add_transition(1, 0, 0.5);
  chain.add_transition(1, 1, 0.5);
  EXPECT_FALSE(chain.is_stochastic());
}

TEST(FailureInjection, NegativeTransitionRejected) {
  finite_chain chain(2);
  EXPECT_THROW(chain.add_transition(0, 1, -0.1), invariant_error);
}

TEST(FailureInjection, StationarySolveOnReducibleChainFails) {
  // Two absorbing components: stationary distribution is not unique; the
  // direct solve must either throw (singular system) — any silent answer
  // would be wrong.
  finite_chain chain(4);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 0, 1.0);
  chain.add_transition(2, 3, 1.0);
  chain.add_transition(3, 2, 1.0);
  EXPECT_FALSE(chain.is_irreducible());
  EXPECT_THROW((void)solve_stationary(chain), invariant_error);
}

TEST(FailureInjection, SimplexMismatchRejectedByExactChain) {
  const ehrenfest_params params{3, 0.3, 0.2, 6};
  const simplex_index wrong_k(4, 6);
  const simplex_index wrong_m(3, 7);
  EXPECT_THROW((void)build_ehrenfest_chain(params, wrong_k),
               invariant_error);
  EXPECT_THROW((void)build_ehrenfest_chain(params, wrong_m),
               invariant_error);
}

TEST(FailureInjection, ChiSquareRejectsEmptyAndMismatchedInput) {
  EXPECT_THROW((void)chi_square_gof({1, 2}, {0.5, 0.3, 0.2}),
               invariant_error);
  EXPECT_THROW((void)chi_square_gof({0, 0}, {0.5, 0.5}), invariant_error);
  EXPECT_THROW((void)chi_square_gof({5}, {1.0}), invariant_error);
}

TEST(FailureInjection, CorruptCensusLevelsRejected) {
  const abg_population pop{1, 1, 2};
  // Level 9 does not exist for k = 4.
  EXPECT_THROW((void)make_igt_population_states(
                   pop, 4, std::vector<std::uint32_t>{0, 9}),
               invariant_error);
}

TEST(FailureInjection, NanProbabilitiesRejectedByRng) {
  rng gen(3);
  // NaN comparisons are false, so next_bernoulli(NaN) must not return true;
  // geometric with NaN must throw via its range check.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(gen.next_bernoulli(nan));
  EXPECT_THROW((void)gen.next_geometric(nan), invariant_error);
}

TEST(FailureInjection, RecorderAfterStateCorruptionStaysConsistent) {
  // Injecting a failing step must leave previously recorded rows intact.
  const rogue_protocol proto;
  simulation sim(proto, population({0, 1}, 2), rng(4));
  census_recorder recorder({"a", "b"});
  recorder.record(sim);
  EXPECT_THROW(sim.step(), invariant_error);
  EXPECT_EQ(recorder.row_count(), 1u);
  EXPECT_EQ(recorder.rows()[0].interactions, 0u);
}

}  // namespace
}  // namespace ppg
