// Tests for the ppg-serve subsystem: the routing core (serve_app driven
// directly, no sockets), the fairness/bit-exactness contract of interleaved
// sessions, the kernel cache, the fair scheduler, and a raw-socket smoke
// test of the HTTP front end.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ppg/pp/checkpoint.hpp"
#include "ppg/serve/server.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

const char* rumor_recipe() {
  return R"({"protocol": {"name": "rumor", "params": {}},
    "initial_counts": [280, 20], "sampling": "distinct"})";
}

const char* majority_recipe() {
  return R"({"protocol": {"name": "approximate-majority", "params": {}},
    "initial_counts": [600, 400, 0], "sampling": "distinct"})";
}

const char* hawk_dove_recipe() {
  return R"({"protocol": {"name": "matrix-game",
                          "params": {"game": {"name": "hawk-dove",
                                              "value": 2.0, "cost": 3.0},
                                     "rule": {"name": "logit",
                                              "temperature": 0.4},
                                     "discipline": "two_way"}},
    "initial_counts": [160, 140], "sampling": "distinct"})";
}

http_request make_request(const std::string& method, const std::string& target,
                          const std::string& body = "") {
  http_request request;
  request.method = method;
  request.target = target;
  request.body = body;
  return request;
}

/// POST /sessions body for (recipe, engine, seed).
std::string create_body(const char* recipe_text, const char* engine,
                        std::uint64_t seed) {
  json body = json::object();
  body["recipe"] = json::parse(recipe_text);
  body["engine"] = engine;
  body["seed"] = seed;
  return body.dump_string(false);
}

json handle_json(serve_app& app, const http_request& request,
                 int expected_status) {
  const http_response response = app.handle(request);
  EXPECT_EQ(response.status, expected_status)
      << request.method << " " << request.target << " -> " << response.body;
  return json::parse(response.body);
}

// --- fair scheduler --------------------------------------------------------

TEST(FairScheduler, SlicesBudgetAndMatchesDirectRun) {
  const sim_recipe recipe = sim_recipe::from_json(json::parse(rumor_recipe()));
  fair_scheduler scheduler(/*threads=*/2, /*chunk=*/1000);

  rng gen_sched(42);
  rng gen_direct(42);
  const auto scheduled = recipe.spec().make_engine(engine_kind::multibatch,
                                                   gen_sched);
  const auto direct = recipe.spec().make_engine(engine_kind::multibatch,
                                                gen_direct);

  // 4500 interactions in chunks of 1000 -> 5 slices, and the direct twin
  // replays the identical run() schedule, so the states must match bitwise.
  EXPECT_EQ(scheduler.advance(*scheduled, 4500), 5u);
  for (std::uint64_t remaining = 4500; remaining > 0;) {
    const std::uint64_t slice = std::min<std::uint64_t>(1000, remaining);
    direct->run(slice);
    remaining -= slice;
  }
  EXPECT_EQ(scheduled->save_state(), direct->save_state());
  EXPECT_EQ(scheduler.advance(*scheduled, 1), 1u);
  EXPECT_EQ(scheduler.advance(*scheduled, 0), 0u);
}

TEST(FairScheduler, RejectsZeroChunk) {
  EXPECT_THROW(fair_scheduler(1, 0), invariant_error);
}

// --- kernel cache ----------------------------------------------------------

TEST(KernelCache, CompilesOnceAndCountsHits) {
  const sim_recipe recipe = sim_recipe::from_json(json::parse(rumor_recipe()));
  kernel_cache cache;
  EXPECT_EQ(cache.size(), 0u);

  const auto first = cache.get_or_compile(99, recipe.proto());
  EXPECT_FALSE(first.hit);
  const auto second = cache.get_or_compile(99, recipe.proto());
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.kernel.get(), second.kernel.get());  // shared, not copied
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  const auto other = cache.get_or_compile(100, recipe.proto());
  EXPECT_FALSE(other.hit);
  EXPECT_EQ(cache.size(), 2u);
}

// --- session lifecycle and error paths -------------------------------------

TEST(ServeApp, HealthzAndEmptyStats) {
  serve_app app;
  const json health = handle_json(app, make_request("GET", "/healthz"), 200);
  EXPECT_EQ(health.find("status")->as_string(), "ok");
  EXPECT_EQ(health.find("sessions")->as_uint64(), 0u);

  const json stats = handle_json(app, make_request("GET", "/stats"), 200);
  EXPECT_EQ(stats.find("sessions")->size(), 0u);
  EXPECT_EQ(stats.find("kernel_cache")->find("entries")->as_uint64(), 0u);
}

TEST(ServeApp, SessionLifecycle) {
  serve_app app;
  const json created = handle_json(
      app,
      make_request("POST", "/sessions", create_body(rumor_recipe(), "census", 7)),
      201);
  const std::string id = created.find("id")->as_string();
  EXPECT_EQ(created.find("state")->as_string(), "created");
  EXPECT_EQ(created.find("engine")->as_string(), "census");
  EXPECT_FALSE(created.find("kernel_cache_hit")->as_bool());
  EXPECT_EQ(created.find("population")->as_uint64(), 300u);

  const json advanced = handle_json(
      app,
      make_request("POST", "/sessions/" + id + "/advance",
                   R"({"interactions": 5000})"),
      200);
  EXPECT_EQ(advanced.find("interactions")->as_uint64(), 5000u);
  EXPECT_GE(advanced.find("slices")->as_uint64(), 1u);

  const json info =
      handle_json(app, make_request("GET", "/sessions/" + id), 200);
  EXPECT_EQ(info.find("state")->as_string(), "idle");
  EXPECT_EQ(info.find("advances")->as_uint64(), 1u);
  EXPECT_EQ(info.find("seed")->as_uint64(), 7u);

  const json census =
      handle_json(app, make_request("GET", "/sessions/" + id + "/census"), 200);
  EXPECT_EQ(census.find("population")->as_uint64(), 300u);
  std::uint64_t total = 0;
  for (const auto& count : census.find("counts")->items()) {
    total += count.as_uint64();
  }
  EXPECT_EQ(total, 300u);

  const json destroyed =
      handle_json(app, make_request("DELETE", "/sessions/" + id), 200);
  EXPECT_TRUE(destroyed.find("destroyed")->as_bool());
  // Double destroy and use-after-destroy are 404s, not crashes.
  (void)handle_json(app, make_request("DELETE", "/sessions/" + id), 404);
  (void)handle_json(app, make_request("GET", "/sessions/" + id + "/census"),
                    404);
}

TEST(ServeApp, ErrorPaths) {
  serve_app app;
  // Unknown routes and ids.
  (void)handle_json(app, make_request("GET", "/nope"), 404);
  (void)handle_json(app, make_request("GET", "/sessions/s999"), 404);
  (void)handle_json(app,
                    make_request("POST", "/sessions/s999/advance",
                                 R"({"interactions": 1})"),
                    404);
  (void)handle_json(app, make_request("GET", "/sessions/s1/unknown-verb"), 404);

  // Method mismatches.
  (void)handle_json(app, make_request("POST", "/healthz"), 405);
  (void)handle_json(app, make_request("DELETE", "/stats"), 405);
  (void)handle_json(app, make_request("GET", "/sessions"), 405);

  // Malformed creation requests -> 400 with a pointed message.
  const json no_body = handle_json(app, make_request("POST", "/sessions"), 400);
  EXPECT_NE(no_body.find("error")->as_string().find("JSON body"),
            std::string::npos);
  (void)handle_json(app, make_request("POST", "/sessions", "{not json"), 400);
  (void)handle_json(
      app, make_request("POST", "/sessions", R"({"surprise": 1})"), 400);
  (void)handle_json(
      app,
      make_request(
          "POST", "/sessions",
          R"({"recipe": {"protocol": {"name": "no-such-protocol",
                                      "params": {}},
              "initial_counts": [10, 10], "sampling": "distinct"},
              "engine": "census"})"),
      400);
  (void)handle_json(
      app,
      make_request("POST", "/sessions",
                   create_body(rumor_recipe(), "warp-drive", 1)),
      400);

  // Advance validation.
  const std::string id =
      handle_json(app,
                  make_request("POST", "/sessions",
                               create_body(rumor_recipe(), "agent", 3)),
                  201)
          .find("id")
          ->as_string();
  (void)handle_json(app,
                    make_request("POST", "/sessions/" + id + "/advance",
                                 R"({"interactions": 0})"),
                    400);
  (void)handle_json(app,
                    make_request("POST", "/sessions/" + id + "/advance",
                                 R"({"interactions": 5, "turbo": true})"),
                    400);
}

TEST(ServeApp, BusySessionAnswers409) {
  serve_app app;
  const std::string id =
      handle_json(app,
                  make_request("POST", "/sessions",
                               create_body(rumor_recipe(), "census", 5)),
                  201)
          .find("id")
          ->as_string();
  auto session = app.sessions().find(id);
  ASSERT_NE(session, nullptr);
  {
    // Hold the session's engine lock, as an in-flight advance would.
    const std::lock_guard<std::mutex> busy(session->mu);
    (void)handle_json(app,
                      make_request("POST", "/sessions/" + id + "/advance",
                                   R"({"interactions": 1})"),
                      409);
    (void)handle_json(app, make_request("GET", "/sessions/" + id + "/census"),
                      409);
    (void)handle_json(
        app, make_request("GET", "/sessions/" + id + "/checkpoint"), 409);
  }
  // Lock released: the session serves again.
  (void)handle_json(app,
                    make_request("POST", "/sessions/" + id + "/advance",
                                 R"({"interactions": 1})"),
                    200);
}

TEST(ServeApp, SessionCapAnswers503) {
  serve_config config;
  config.max_sessions = 2;
  serve_app app(config);
  for (int i = 0; i < 2; ++i) {
    (void)handle_json(
        app,
        make_request("POST", "/sessions",
                     create_body(rumor_recipe(), "census",
                                 static_cast<std::uint64_t>(i))),
        201);
  }
  (void)handle_json(app,
                    make_request("POST", "/sessions",
                                 create_body(rumor_recipe(), "census", 9)),
                    503);
  // Destroying one frees a slot.
  (void)handle_json(app, make_request("DELETE", "/sessions/s1"), 200);
  (void)handle_json(app,
                    make_request("POST", "/sessions",
                                 create_body(rumor_recipe(), "census", 9)),
                    201);
}

TEST(ServeApp, BodyLimitsAreEnforced) {
  serve_config config;
  config.max_body_bytes = 256;
  config.max_json_depth = 4;
  serve_app app(config);
  const std::string oversized(300, ' ');
  (void)handle_json(app,
                    make_request("POST", "/sessions", "{" + oversized + "}"),
                    400);
  (void)handle_json(app, make_request("POST", "/sessions", "[[[[[[1]]]]]]"),
                    400);
}

// --- warm kernel cache across sessions -------------------------------------

TEST(ServeApp, SessionsShareCompiledKernels) {
  serve_app app;
  const json first = handle_json(
      app,
      make_request("POST", "/sessions",
                   create_body(majority_recipe(), "multibatch", 1)),
      201);
  EXPECT_FALSE(first.find("kernel_cache_hit")->as_bool());

  // Different census and seed, same protocol -> warm hit.
  const json second = handle_json(
      app,
      make_request(
          "POST", "/sessions",
          create_body(
              R"({"protocol": {"name": "approximate-majority", "params": {}},
                  "initial_counts": [100, 50, 0], "sampling": "distinct"})",
              "census", 2)),
      201);
  EXPECT_TRUE(second.find("kernel_cache_hit")->as_bool());

  // A different protocol compiles its own kernel; the agent engine never
  // touches the cache.
  const json third = handle_json(
      app,
      make_request("POST", "/sessions",
                   create_body(rumor_recipe(), "batched", 3)),
      201);
  EXPECT_FALSE(third.find("kernel_cache_hit")->as_bool());
  const json fourth = handle_json(
      app,
      make_request("POST", "/sessions", create_body(rumor_recipe(), "agent", 4)),
      201);
  EXPECT_FALSE(fourth.find("kernel_cache_hit")->as_bool());

  const json stats = handle_json(app, make_request("GET", "/stats"), 200);
  const json* cache = stats.find("kernel_cache");
  EXPECT_EQ(cache->find("entries")->as_uint64(), 2u);
  EXPECT_EQ(cache->find("hits")->as_uint64(), 1u);
  EXPECT_EQ(cache->find("misses")->as_uint64(), 2u);
}

// --- the tentpole contract: interleaving never changes a trajectory --------

struct solo_twin {
  sim_recipe recipe;
  std::unique_ptr<sim_engine> engine;
};

solo_twin make_twin(const char* recipe_text, engine_kind kind,
                    std::uint64_t seed) {
  sim_recipe recipe = sim_recipe::from_json(json::parse(recipe_text));
  rng gen(seed);
  auto engine = recipe.spec().make_engine(kind, gen);
  return {std::move(recipe), std::move(engine)};
}

/// Replays the serve scheduler's chunk schedule on a solo engine.
void solo_advance(sim_engine& engine, std::uint64_t budget,
                  std::uint64_t chunk) {
  while (budget > 0) {
    const std::uint64_t slice = std::min(chunk, budget);
    engine.run(slice);
    budget -= slice;
  }
}

TEST(ServeApp, InterleavedSessionsMatchSoloRunsBitExactly) {
  serve_config config;
  config.chunk = 1024;  // small chunk -> real interleaving per advance
  config.threads = 2;
  serve_app app(config);

  struct session_case {
    const char* recipe;
    const char* engine_name;
    engine_kind kind;
    std::uint64_t seed;
    std::string id;
  };
  std::vector<session_case> cases = {
      {rumor_recipe(), "census", engine_kind::census, 11, ""},
      {majority_recipe(), "multibatch", engine_kind::multibatch, 22, ""},
      {hawk_dove_recipe(), "batched", engine_kind::batched, 33, ""},
      {rumor_recipe(), "agent", engine_kind::agent, 44, ""},
  };
  for (auto& c : cases) {
    c.id = handle_json(app,
                       make_request("POST", "/sessions",
                                    create_body(c.recipe, c.engine_name,
                                                c.seed)),
                       201)
               .find("id")
               ->as_string();
  }

  // Interleave advances across all sessions in rounds with uneven budgets,
  // so session slices genuinely mix inside the shared scheduler.
  const std::vector<std::uint64_t> budgets = {3000, 5120, 1, 4097};
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const std::uint64_t budget =
          budgets[(i + static_cast<std::size_t>(round)) % budgets.size()];
      (void)handle_json(
          app,
          make_request("POST", "/sessions/" + cases[i].id + "/advance",
                       "{\"interactions\": " + std::to_string(budget) + "}"),
          200);
    }
  }

  // Every session must now be bit-identical — census AND checkpoint bytes —
  // to a solo engine that replayed the same chunked schedule alone.
  for (std::size_t i = 0; i < cases.size(); ++i) {
    solo_twin twin = make_twin(cases[i].recipe, cases[i].kind, cases[i].seed);
    for (int round = 0; round < 3; ++round) {
      const std::uint64_t budget =
          budgets[(i + static_cast<std::size_t>(round)) % budgets.size()];
      solo_advance(*twin.engine, budget, config.chunk);
    }

    const http_response served_census = app.handle(
        make_request("GET", "/sessions/" + cases[i].id + "/census"));
    ASSERT_EQ(served_census.status, 200);
    const json counts = *json::parse(served_census.body).find("counts");
    const auto twin_counts = twin.engine->census().counts();
    ASSERT_EQ(counts.size(), twin_counts.size());
    for (std::size_t s = 0; s < twin_counts.size(); ++s) {
      EXPECT_EQ(counts.items()[s].as_uint64(), twin_counts[s])
          << cases[i].engine_name << " state " << s;
    }

    const http_response served_checkpoint = app.handle(
        make_request("GET", "/sessions/" + cases[i].id + "/checkpoint"));
    ASSERT_EQ(served_checkpoint.status, 200);
    EXPECT_EQ(served_checkpoint.body,
              save_checkpoint(twin.recipe, *twin.engine).dump_string(true))
        << cases[i].engine_name;
  }
}

TEST(ServeApp, CheckpointRestoreRoundTripsThroughTheWire) {
  serve_app app;
  const std::string id =
      handle_json(app,
                  make_request("POST", "/sessions",
                               create_body(hawk_dove_recipe(), "multibatch",
                                           606)),
                  201)
          .find("id")
          ->as_string();
  (void)handle_json(app,
                    make_request("POST", "/sessions/" + id + "/advance",
                                 R"({"interactions": 70000})"),
                    200);

  const http_response checkpoint = app.handle(
      make_request("GET", "/sessions/" + id + "/checkpoint"));
  ASSERT_EQ(checkpoint.status, 200);

  const json restored = handle_json(
      app, make_request("POST", "/sessions/restore", checkpoint.body), 201);
  const std::string clone = restored.find("id")->as_string();
  EXPECT_TRUE(restored.find("restored")->as_bool());
  EXPECT_TRUE(restored.find("kernel_cache_hit")->as_bool());  // warm cache
  EXPECT_EQ(restored.find("interactions")->as_uint64(), 70000u);

  // Advancing original and clone identically keeps them byte-identical.
  for (const auto& session_id : {id, clone}) {
    (void)handle_json(app,
                      make_request("POST",
                                   "/sessions/" + session_id + "/advance",
                                   R"({"interactions": 30000})"),
                      200);
  }
  const http_response original_ckpt = app.handle(
      make_request("GET", "/sessions/" + id + "/checkpoint"));
  const http_response clone_ckpt = app.handle(
      make_request("GET", "/sessions/" + clone + "/checkpoint"));
  EXPECT_EQ(original_ckpt.body, clone_ckpt.body);

  // The restore endpoint is strict about the envelope.
  (void)handle_json(app,
                    make_request("POST", "/sessions/restore", R"({"spec": 1})"),
                    400);
}

// --- raw-socket smoke test of the HTTP front end ---------------------------

/// Minimal blocking client: one connection, send bytes, read until close or
/// a full response (Content-Length delimited).
class test_client {
 public:
  explicit test_client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                        sizeof(address)),
              0);
  }
  ~test_client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_all(const std::string& bytes) const {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t wrote =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(wrote, 0);
      sent += static_cast<std::size_t>(wrote);
    }
  }

  /// Reads one Content-Length-delimited response.
  std::string read_response() {
    for (;;) {
      const std::size_t head_end = buffer_.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        const std::size_t length = content_length(buffer_.substr(0, head_end));
        const std::size_t total = head_end + 4 + length;
        if (buffer_.size() >= total) {
          std::string response = buffer_.substr(0, total);
          buffer_.erase(0, total);
          return response;
        }
      }
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got <= 0) {
        std::string rest = buffer_;
        buffer_.clear();
        return rest;  // connection closed; return what we have
      }
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

 private:
  static std::size_t content_length(const std::string& head) {
    const std::string needle = "Content-Length: ";
    const std::size_t at = head.find(needle);
    if (at == std::string::npos) return 0;
    return static_cast<std::size_t>(
        std::strtoull(head.c_str() + at + needle.size(), nullptr, 10));
  }

  int fd_ = -1;
  std::string buffer_;
};

std::string http_get(const std::string& target) {
  return "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
}

std::string http_post(const std::string& target, const std::string& body) {
  return "POST " + target + " HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

TEST(HttpServer, ServesSessionsOverRealSockets) {
  serve_config config;
  config.connection_threads = 2;
  serve_app app(config);
  http_server server(app, config);
  server.start();
  ASSERT_GT(server.port(), 0);

  {
    // One keep-alive connection: health check, create, advance, census.
    test_client client(server.port());
    client.send_all(http_get("/healthz"));
    std::string response = client.read_response();
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);

    client.send_all(
        http_post("/sessions", create_body(rumor_recipe(), "census", 17)));
    response = client.read_response();
    EXPECT_NE(response.find("HTTP/1.1 201 Created"), std::string::npos);
    EXPECT_NE(response.find("\"id\":\"s1\""), std::string::npos);

    client.send_all(
        http_post("/sessions/s1/advance", R"({"interactions": 2000})"));
    response = client.read_response();
    EXPECT_NE(response.find("\"interactions\":2000"), std::string::npos);

    client.send_all(http_get("/sessions/s1/census"));
    response = client.read_response();
    EXPECT_NE(response.find("\"population\":300"), std::string::npos);
  }
  {
    // A second connection sees the same session table.
    test_client client(server.port());
    client.send_all(http_get("/stats"));
    const std::string response = client.read_response();
    EXPECT_NE(response.find("\"id\":\"s1\""), std::string::npos);
  }
  {
    // Protocol-level refusals: bad version and oversized headers close the
    // connection with the right status.
    test_client client(server.port());
    client.send_all("GET /healthz SMTP/9.9\r\n\r\n");
    EXPECT_NE(client.read_response().find("505"), std::string::npos);
  }
  {
    test_client client(server.port());
    client.send_all("GET / HTTP/1.1\r\nPad: " + std::string(20000, 'x') +
                    "\r\n\r\n");
    EXPECT_NE(client.read_response().find("431"), std::string::npos);
  }
  server.stop();
}

TEST(HttpServer, SlowlorisConnectionsAreReapedAndServiceContinues) {
  serve_config config;
  config.read_timeout_ms = 100;  // aggressive so the test is quick
  serve_app app(config);
  http_server server(app, config);
  server.start();
  {
    // Idle keep-alive connection: reaped silently once the deadline lapses
    // — no 4xx noise, the worker just moves on.
    test_client idle(server.port());
    EXPECT_EQ(idle.read_response(), "");
  }
  {
    // A peer stalled mid-request (classic slowloris: head never finishes)
    // is answered 408 and dropped instead of pinning a worker forever.
    test_client slow(server.port());
    slow.send_all("GET /healthz HTTP/1.1\r\n");  // no terminating blank line
    const std::string response = slow.read_response();
    EXPECT_NE(response.find("408"), std::string::npos) << response;
  }
  // The reaper freed the workers: a well-behaved client is served as usual.
  test_client healthy(server.port());
  healthy.send_all(http_get("/healthz"));
  EXPECT_NE(healthy.read_response().find("HTTP/1.1 200 OK"),
            std::string::npos);
  server.stop();
}

TEST(HttpServer, StopUnblocksIdleConnections) {
  serve_config config;
  serve_app app(config);
  http_server server(app, config);
  server.start();
  // An idle keep-alive connection parked in recv() must not hang stop().
  test_client idle(server.port());
  idle.send_all(http_get("/healthz"));
  (void)idle.read_response();
  server.stop();  // would deadlock if the worker never woke
}

}  // namespace
}  // namespace ppg
