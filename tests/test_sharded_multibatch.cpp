// The intra-run parallelism contracts (DESIGN.md §11): the sharded
// multibatch round is bit-identical at every thread count — census,
// counters, residual carry, and the full snapshot including the RNG
// position, checkpoints taken mid-residual-round included — and the SoA
// ensemble engine's replicas are bitwise twins of solo multibatch engines
// under the batch_runner stream law, agree across threads, and agree in
// distribution with all four single-trajectory engines.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine_agreement.hpp"
#include "ppg/exp/ensemble_runner.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/games/game_matrix.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/update_rule.hpp"
#include "ppg/pp/ensemble_engine.hpp"
#include "ppg/pp/multibatch_engine.hpp"
#include "ppg/pp/multibatch_round.hpp"
#include "ppg/util/error.hpp"
#include "ppg/util/json.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {
namespace {

/// Dense two-way hawk-dove: every pair randomizes both sides, so rounds
/// exercise the MVH tables, the multinomial splits, and the shard merge.
game_protocol dense_proto() {
  return {hawk_dove_matrix(1.0, 2.0),
          std::make_shared<logit_response_rule>(0.5),
          revision_discipline::two_way};
}

std::vector<std::uint64_t> half_split(std::uint64_t n) {
  return {n / 2, n - n / 2};
}

/// Everything observable about a multibatch engine, as one string.
std::string full_state(const multibatch_engine& engine) {
  return engine.save_state().dump_string(false);
}

TEST(ShardLaw, IsAFixedFunctionOfTheRunLength) {
  // q = 2 games have threshold 16 < the 512-pair grain.
  const std::uint64_t thr = 16;
  EXPECT_EQ(multibatch_executor::shard_count(1, thr), 1u);
  EXPECT_EQ(multibatch_executor::shard_count(511, thr), 1u);
  EXPECT_EQ(multibatch_executor::shard_count(1023, thr), 1u);
  EXPECT_EQ(multibatch_executor::shard_count(1024, thr), 2u);
  EXPECT_EQ(multibatch_executor::shard_count(512 * 7, thr), 7u);
  EXPECT_EQ(multibatch_executor::shard_count(512 * 16, thr), 16u);
  EXPECT_EQ(multibatch_executor::shard_count(1u << 30, thr), 16u);
  // A larger aggregate threshold raises the grain with it.
  EXPECT_EQ(multibatch_executor::shard_count(4096, 4096), 1u);
  EXPECT_EQ(multibatch_executor::shard_count(3 * 4096, 4096), 3u);
}

TEST(ShardedMultibatch, TrajectoryBitwiseIdenticalAtAnyThreadCount) {
  const auto proto = dense_proto();
  const std::uint64_t n = 8'000'000;  // E[round] ~ 2500 pairs => 4-8 shards
  std::vector<std::unique_ptr<multibatch_engine>> engines;
  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    auto engine = std::make_unique<multibatch_engine>(proto, half_split(n),
                                                      rng(987));
    engine->set_shards(threads);
    EXPECT_EQ(engine->shards(), threads);
    engines.push_back(std::move(engine));
  }
  // Odd chunk sizes end mid-round essentially always, so the sweep also
  // covers the residual-carry path at every thread count.
  bool saw_mid_round = false;
  for (const std::uint64_t chunk : {37'777u, 4'001u, 60'000u, 1u, 25'913u}) {
    for (auto& engine : engines) engine->run(chunk);
    const std::string reference = full_state(*engines.front());
    for (std::size_t i = 1; i < engines.size(); ++i) {
      ASSERT_EQ(full_state(*engines[i]), reference)
          << "diverged at chunk " << chunk << " with "
          << engines[i]->shards() << " threads";
      ASSERT_EQ(engines[i]->census().counts(),
                engines.front()->census().counts());
      ASSERT_EQ(engines[i]->interactions(), engines.front()->interactions());
      ASSERT_EQ(engines[i]->rounds(), engines.front()->rounds());
      ASSERT_EQ(engines[i]->collisions(), engines.front()->collisions());
      ASSERT_EQ(engines[i]->residual_free(), engines.front()->residual_free());
    }
    saw_mid_round = saw_mid_round || engines.front()->mid_round();
  }
  EXPECT_TRUE(saw_mid_round);
  // The sweep must actually have exercised multi-shard aggregates.
  EXPECT_GT(engines.front()->rounds(), 20u);
}

TEST(ShardedMultibatch, MidResidualRoundCheckpointRestoresAtAnyThreadCount) {
  const auto proto = dense_proto();
  const std::uint64_t n = 8'000'000;
  multibatch_engine source(proto, half_split(n), rng(4242));
  source.set_shards(3);
  // Park the engine mid-round with residual carry: a chunk far smaller
  // than the expected round length truncates the collision-free run.
  source.run(200'000);
  source.run(643);
  ASSERT_TRUE(source.mid_round());
  ASSERT_GT(source.residual_free(), 0u);
  const json snapshot = source.save_state();

  // Restore into engines at different thread counts (fresh RNGs — the
  // snapshot's RNG position must win) and continue everything in lockstep.
  std::vector<std::unique_ptr<multibatch_engine>> resumed;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    auto engine = std::make_unique<multibatch_engine>(proto, half_split(n),
                                                      rng(1));
    engine->set_shards(threads);
    engine->restore_state(snapshot);
    ASSERT_TRUE(engine->mid_round());
    ASSERT_EQ(engine->residual_free(), source.residual_free());
    resumed.push_back(std::move(engine));
  }
  for (const std::uint64_t chunk : {777u, 123'456u, 50'000u}) {
    source.run(chunk);
    for (auto& engine : resumed) {
      engine->run(chunk);
      ASSERT_EQ(full_state(*engine), full_state(source));
    }
  }
}

TEST(EnsembleEngine, ReplicasAreBitwiseTwinsOfSoloMultibatch) {
  const auto proto = dense_proto();
  const std::uint64_t n = 100'000;
  const std::uint64_t master = 77;
  const std::size_t replicas = 6;
  const sim_spec spec(proto, half_split(n));
  ensemble_engine ensemble(proto, half_split(n), master, replicas);
  ensemble.set_threads(4);
  // One shared chunk schedule: a burn run plus single steps.
  ensemble.run(30'000);
  for (int i = 0; i < 5; ++i) ensemble.step();
  for (std::size_t r = 0; r < replicas; ++r) {
    rng gen = make_stream_rng(master, r);
    const auto solo = spec.make_engine(engine_kind::multibatch, gen);
    solo->run(30'000);
    for (int i = 0; i < 5; ++i) solo->step();
    EXPECT_EQ(ensemble.replica_census(r), solo->census().counts())
        << "replica " << r;
    EXPECT_EQ(ensemble.interactions(r), solo->interactions());
  }
  EXPECT_EQ(ensemble.total_interactions(),
            replicas * (30'000ull + 5ull));
  EXPECT_GT(ensemble.total_rounds(), 0u);
  EXPECT_GT(ensemble.total_collisions(), 0u);
}

TEST(EnsembleEngine, ThreadCountNeverChangesResults) {
  const auto proto = dense_proto();
  const std::uint64_t n = 50'000;
  const std::size_t replicas = 9;
  std::vector<std::vector<std::uint64_t>> reference;
  for (const std::size_t threads : {1u, 3u, 8u}) {
    ensemble_engine ensemble(proto, half_split(n), 123, replicas);
    ensemble.set_threads(threads);
    ensemble.run(40'000);
    std::vector<std::vector<std::uint64_t>> censuses;
    censuses.reserve(replicas);
    for (std::size_t r = 0; r < replicas; ++r) {
      censuses.push_back(ensemble.replica_census(r));
    }
    if (reference.empty()) {
      reference = censuses;
    } else {
      EXPECT_EQ(censuses, reference) << "at " << threads << " threads";
    }
  }
}

TEST(EnsembleEngine, TimeAveragedCensusBitwiseEqualsTheReplicatePath) {
  const auto proto = dense_proto();
  const sim_spec spec(proto, half_split(20'000));
  const auto project = [](const census_view& view) {
    return view.fractions();
  };
  batch_options bopts;
  bopts.replicas = 5;
  bopts.master_seed = 2024;
  bopts.threads = 2;
  const auto solo = replicate_time_averaged_census(
      spec, engine_kind::multibatch, 10'000, 50, bopts, project);
  ensemble_options eopts;
  eopts.replicas = 5;
  eopts.master_seed = 2024;
  eopts.threads = 2;
  const auto ensemble =
      ensemble_time_averaged_census(spec, 10'000, 50, eopts, project);
  ASSERT_EQ(ensemble.count(), solo.count());
  const auto solo_mean = solo.mean();
  const auto ensemble_mean = ensemble.mean();
  ASSERT_EQ(ensemble_mean.size(), solo_mean.size());
  for (std::size_t j = 0; j < solo_mean.size(); ++j) {
    EXPECT_EQ(ensemble_mean[j], solo_mean[j]) << "coordinate " << j;
  }
}

TEST(EnsembleEngine, SaveRestoreResumesBitExactly) {
  const auto proto = dense_proto();
  const std::uint64_t n = 100'000;
  const std::uint64_t master = 4711;
  const std::size_t replicas = 5;

  // The uninterrupted twin runs the whole schedule in one life.
  ensemble_engine reference(proto, half_split(n), master, replicas);
  reference.set_threads(3);
  reference.run(30'000);

  // The checkpointed copy saves mid-schedule; the snapshot crosses a
  // dump/parse byte boundary, exactly like a file or wire round trip.
  ensemble_engine source(proto, half_split(n), master, replicas);
  source.run(17'123);  // odd chunk: replicas park mid-round
  const json snapshot =
      json::parse(source.save_state().dump_string(false));

  // Restore into an ensemble built from a different master seed at a
  // different thread count: the snapshot's RNG positions must win, and
  // the continuation must match the twin bit for bit under the remaining
  // schedule (run(a); run(b) == run(a+b) does NOT hold for multibatch, so
  // the chunk boundaries are aligned: 17'123 + 12'877 = 30'000).
  ensemble_engine resumed(proto, half_split(n), master + 999, replicas);
  resumed.set_threads(2);
  resumed.restore_state(snapshot);
  EXPECT_EQ(resumed.master_seed(), master);
  source.run(12'877);
  resumed.run(12'877);
  for (std::size_t r = 0; r < replicas; ++r) {
    EXPECT_EQ(resumed.replica_census(r), source.replica_census(r))
        << "replica " << r;
    EXPECT_EQ(resumed.interactions(r), source.interactions(r));
  }
  EXPECT_EQ(resumed.save_state().dump_string(false),
            source.save_state().dump_string(false));

  // And both equal the uninterrupted twin under the same chunk schedule.
  ensemble_engine twin(proto, half_split(n), master, replicas);
  twin.run(17'123);
  twin.run(12'877);
  EXPECT_EQ(resumed.save_state().dump_string(false),
            twin.save_state().dump_string(false));
}

TEST(EnsembleEngine, ReplicaSnapshotEntriesAreTheSoloSchema) {
  const auto proto = dense_proto();
  const std::uint64_t n = 100'000;
  const std::uint64_t master = 3141;
  const std::size_t replicas = 3;
  const sim_spec spec(proto, half_split(n));
  ensemble_engine ensemble(proto, half_split(n), master, replicas);
  ensemble.run(23'456);
  const json snapshot = ensemble.save_state();
  const auto& entries =
      json_require_array(snapshot, "replicas", "ensemble snapshot");
  ASSERT_EQ(entries.size(), replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    // Replica r's entry is byte-identical to the snapshot of the solo
    // multibatch engine it twins — the schemas are shared, not parallel.
    rng gen = make_stream_rng(master, r);
    const auto solo = spec.make_engine(engine_kind::multibatch, gen);
    solo->run(23'456);
    EXPECT_EQ(entries[r].dump_string(false),
              solo->save_state().dump_string(false))
        << "replica " << r;
    // And it restores into a solo engine directly.
    rng fresh(1);
    auto other = spec.make_engine(engine_kind::multibatch, fresh);
    other->restore_state(entries[r]);
    EXPECT_EQ(other->census().counts(), ensemble.replica_census(r));
  }
}

/// Copies an ensemble snapshot, replacing its "replicas" array — the json
/// type is append-only, so tampering rebuilds rather than mutates in place.
json with_replicas(const json& snapshot, const std::vector<json>& entries) {
  json copy = json::object();
  for (const auto& [key, value] : snapshot.members()) {
    if (key == "replicas") {
      json replaced = json::array();
      for (const auto& entry : entries) replaced.push_back(entry);
      copy[key] = std::move(replaced);
    } else {
      copy[key] = value;
    }
  }
  return copy;
}

TEST(EnsembleEngine, RestoreRejectsTamperedSnapshots) {
  const auto proto = dense_proto();
  const std::uint64_t n = 10'000;
  ensemble_engine ensemble(proto, half_split(n), 55, 2);
  ensemble.run(5'000);
  const json good = ensemble.save_state();
  const std::string before = good.dump_string(false);
  const auto& entries =
      json_require_array(good, "replicas", "ensemble snapshot");

  json wrong_version = good;
  wrong_version["state_version"] = std::uint64_t{99};
  EXPECT_THROW(ensemble.restore_state(wrong_version), invariant_error);

  json wrong_engine = good;
  wrong_engine["engine"] = "multibatch";
  EXPECT_THROW(ensemble.restore_state(wrong_engine), invariant_error);

  json missing_key = json::object();
  for (const auto& [key, value] : good.members()) {
    if (key != "master_seed") missing_key[key] = value;
  }
  EXPECT_THROW(ensemble.restore_state(missing_key), invariant_error);

  const json wrong_replicas = with_replicas(good, {entries[0]});
  EXPECT_THROW(ensemble.restore_state(wrong_replicas), invariant_error);

  // A per-replica violation (pools no longer partition the census) is
  // caught by the shared solo validation, and the failed restore leaves
  // the ensemble untouched.
  auto counts = json_require_uint_array(entries[1], "counts", "replica");
  counts[0] += 1;
  json bad_entry = entries[1];
  bad_entry["counts"] = json_uint_array(counts);
  const json bad_pools = with_replicas(good, {entries[0], bad_entry});
  EXPECT_THROW(ensemble.restore_state(bad_pools), invariant_error);
  EXPECT_EQ(ensemble.save_state().dump_string(false), before);
}

TEST(EnsembleEngine, AgreesInDistributionWithAllFourEngines) {
  const auto proto = dense_proto();
  const std::uint64_t n = 1000;
  const std::uint64_t steps = 3000;
  const std::size_t replicas = 160;
  const sim_spec spec(proto, half_split(n));
  const auto hawk_fraction = [](const census_view& view) {
    return view.fraction(0);
  };
  // A master seed disjoint from the engines' below, so the two samples are
  // independent (at an equal seed the multibatch sample would be the
  // ensemble's bitwise twin — a different, stronger test above).
  ensemble_engine ensemble(proto, half_split(n), 900, replicas);
  ensemble.set_threads(3);
  ensemble.run(steps);
  std::vector<double> ensemble_sample;
  ensemble_sample.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    const auto counts = ensemble.replica_census(r);
    ensemble_sample.push_back(
        census_view(counts, n).fraction(0));
  }
  for (const auto kind : {engine_kind::agent, engine_kind::census,
                          engine_kind::batched, engine_kind::multibatch}) {
    const auto engine_sample = testing::replica_statistics(
        spec, kind, replicas, steps, 901, hawk_fraction);
    const double p =
        testing::two_sample_p(ensemble_sample, engine_sample, 8);
    EXPECT_GT(p, 1e-3) << "ensemble vs " << engine_kind_name(kind);
  }
}

}  // namespace
}  // namespace ppg
