// Tests for the exact payoff engine (Appendix B.1): round transition
// matrices, occupation masses, and the equivalence with the paper's
// closed-form expressions (44)-(46).
#include <gtest/gtest.h>

#include <cmath>

#include "ppg/games/closed_form.hpp"
#include "ppg/games/exact_payoff.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

constexpr double kTol = 1e-10;

TEST(RoundMatrix, GtftVsAcMatchesPaperEquation35) {
  const double g = 0.3;
  const auto m = round_transition_matrix(generous_tit_for_tat(g, 0.5),
                                         always_cooperate());
  // Paper (35): rows CC=[1,0,0,0], CD=[g,0,1-g,0], DC=[1,0,0,0],
  // DD=[g,0,1-g,0].
  const double expected[4][4] = {{1, 0, 0, 0},
                                 {g, 0, 1 - g, 0},
                                 {1, 0, 0, 0},
                                 {g, 0, 1 - g, 0}};
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(m(r, c), expected[r][c], kTol) << "entry " << r << "," << c;
    }
  }
}

TEST(RoundMatrix, GtftVsAdMatchesPaperEquation38) {
  const double g = 0.3;
  const auto m = round_transition_matrix(generous_tit_for_tat(g, 0.5),
                                         always_defect());
  const double expected[4][4] = {{0, 1, 0, 0},
                                 {0, g, 0, 1 - g},
                                 {0, 1, 0, 0},
                                 {0, g, 0, 1 - g}};
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(m(r, c), expected[r][c], kTol) << "entry " << r << "," << c;
    }
  }
}

TEST(RoundMatrix, GtftVsGtftMatchesPaperEquation41) {
  const double g = 0.3;
  const double gp = 0.6;
  const auto m = round_transition_matrix(generous_tit_for_tat(g, 0.5),
                                         generous_tit_for_tat(gp, 0.5));
  const double expected[4][4] = {
      {1, 0, 0, 0},
      {g, 0, 1 - g, 0},
      {gp, 1 - gp, 0, 0},
      {g * gp, (1 - gp) * g, gp * (1 - g), (1 - g) * (1 - gp)}};
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(m(r, c), expected[r][c], kTol) << "entry " << r << "," << c;
    }
  }
}

TEST(RoundMatrix, AlwaysRowStochastic) {
  const memory_one_strategy strategies[] = {
      always_cooperate(), always_defect(), tit_for_tat(0.5),
      generous_tit_for_tat(0.25, 0.75), win_stay_lose_shift(), grim()};
  for (const auto& row : strategies) {
    for (const auto& col : strategies) {
      EXPECT_TRUE(round_transition_matrix(row, col).is_row_stochastic());
    }
  }
}

TEST(InitialDistribution, MatchesPaperEquations34And37And40) {
  const double s1 = 0.6;
  const auto gtft = generous_tit_for_tat(0.3, s1);
  {
    const auto q1 = initial_state_distribution(gtft, always_cooperate());
    EXPECT_NEAR(q1[0], s1, kTol);
    EXPECT_NEAR(q1[1], 0.0, kTol);
    EXPECT_NEAR(q1[2], 1 - s1, kTol);
    EXPECT_NEAR(q1[3], 0.0, kTol);
  }
  {
    const auto q1 = initial_state_distribution(gtft, always_defect());
    EXPECT_NEAR(q1[0], 0.0, kTol);
    EXPECT_NEAR(q1[1], s1, kTol);
    EXPECT_NEAR(q1[2], 0.0, kTol);
    EXPECT_NEAR(q1[3], 1 - s1, kTol);
  }
  {
    const auto q1 = initial_state_distribution(gtft, gtft);
    EXPECT_NEAR(q1[0], s1 * s1, kTol);
    EXPECT_NEAR(q1[1], s1 * (1 - s1), kTol);
    EXPECT_NEAR(q1[2], (1 - s1) * s1, kTol);
    EXPECT_NEAR(q1[3], (1 - s1) * (1 - s1), kTol);
  }
}

TEST(Occupation, SumsToExpectedRounds) {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.8};
  const auto occ = expected_state_occupation(
      rdg, generous_tit_for_tat(0.2, 0.9), tit_for_tat(0.5));
  double total = 0.0;
  for (const double x : occ) total += x;
  EXPECT_NEAR(total, rdg.expected_rounds(), 1e-9);
}

TEST(ExpectedPayoff, AcVsAcFullCooperation) {
  // Two AC players earn (b - c) every round: (b - c)/(1 - delta).
  const repeated_donation_game rdg{{3.0, 1.0}, 0.75};
  const double f =
      expected_payoff(rdg, always_cooperate(), always_cooperate());
  EXPECT_NEAR(f, 2.0 / 0.25, 1e-9);
}

TEST(ExpectedPayoff, AdVsAdZero) {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.75};
  EXPECT_NEAR(expected_payoff(rdg, always_defect(), always_defect()), 0.0,
              1e-12);
}

TEST(ExpectedPayoff, AdExploitsAc) {
  // AD vs AC: b per round for the defector, -c per round for the cooperator.
  const repeated_donation_game rdg{{3.0, 1.0}, 0.5};
  const auto [row, col] =
      expected_payoffs(rdg, always_defect(), always_cooperate());
  EXPECT_NEAR(row, 3.0 / 0.5, 1e-9);
  EXPECT_NEAR(col, -1.0 / 0.5, 1e-9);
}

TEST(ExpectedPayoff, SymmetryOfRoles) {
  // f(S1, S2) computed as row equals the column payoff of the swapped
  // pairing.
  const repeated_donation_game rdg{{4.0, 1.0}, 0.85};
  const auto a = generous_tit_for_tat(0.15, 0.7);
  const auto b = win_stay_lose_shift(0.4);
  const auto [row_ab, col_ab] = expected_payoffs(rdg, a, b);
  const auto [row_ba, col_ba] = expected_payoffs(rdg, b, a);
  EXPECT_NEAR(row_ab, col_ba, 1e-9);
  EXPECT_NEAR(col_ab, row_ba, 1e-9);
}

TEST(ExpectedPayoff, MatchesClosedFormVsAc) {
  const rd_setting s{3.0, 1.0, 0.8, 0.6};
  const repeated_donation_game rdg = s.to_game();
  for (const double g : {0.0, 0.2, 0.5, 0.9}) {
    const double engine = expected_payoff(
        rdg, generous_tit_for_tat(g, s.s1), always_cooperate());
    EXPECT_NEAR(engine, f_gtft_vs_ac(s), 1e-9) << "g = " << g;
  }
}

TEST(ExpectedPayoff, MatchesClosedFormVsAd) {
  const rd_setting s{3.0, 1.0, 0.8, 0.6};
  const repeated_donation_game rdg = s.to_game();
  for (const double g : {0.0, 0.2, 0.5, 0.9}) {
    const double engine = expected_payoff(
        rdg, generous_tit_for_tat(g, s.s1), always_defect());
    EXPECT_NEAR(engine, f_gtft_vs_ad(s, g), 1e-9) << "g = " << g;
  }
}

TEST(ExpectedPayoff, MatchesClosedFormVsGtft) {
  const rd_setting s{3.0, 1.0, 0.8, 0.6};
  const repeated_donation_game rdg = s.to_game();
  for (const double g : {0.0, 0.3, 0.7}) {
    for (const double gp : {0.1, 0.5, 1.0}) {
      const double engine =
          expected_payoff(rdg, generous_tit_for_tat(g, s.s1),
                          generous_tit_for_tat(gp, s.s1));
      EXPECT_NEAR(engine, f_gtft_vs_gtft(s, g, gp), 1e-9)
          << "g = " << g << ", g' = " << gp;
    }
  }
}

// Parameterized sweep: engine == closed forms across game settings.
class PayoffEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(PayoffEquivalenceSweep, EngineEqualsClosedForms) {
  const auto [b, delta, s1] = GetParam();
  const rd_setting s{b, 1.0, delta, s1};
  const repeated_donation_game rdg = s.to_game();
  for (const double g : {0.0, 0.25, 0.6, 1.0}) {
    EXPECT_NEAR(expected_payoff(rdg, generous_tit_for_tat(g, s1),
                                always_cooperate()),
                f_gtft_vs_ac(s), 1e-8);
    EXPECT_NEAR(
        expected_payoff(rdg, generous_tit_for_tat(g, s1), always_defect()),
        f_gtft_vs_ad(s, g), 1e-8);
    for (const double gp : {0.0, 0.5, 1.0}) {
      EXPECT_NEAR(expected_payoff(rdg, generous_tit_for_tat(g, s1),
                                  generous_tit_for_tat(gp, s1)),
                  f_gtft_vs_gtft(s, g, gp), 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GameSettings, PayoffEquivalenceSweep,
    ::testing::Combine(::testing::Values(1.5, 2.0, 5.0, 20.0),
                       ::testing::Values(0.1, 0.5, 0.9, 0.99),
                       ::testing::Values(0.0, 0.5, 0.95)));

TEST(CooperationRate, ExtremesAndOrdering) {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.9};
  EXPECT_NEAR(
      cooperation_rate(rdg, always_cooperate(), always_defect()), 1.0, 1e-9);
  EXPECT_NEAR(
      cooperation_rate(rdg, always_defect(), always_cooperate()), 0.0, 1e-9);
  // Higher generosity -> (weakly) higher own cooperation rate vs AD.
  const double low = cooperation_rate(
      rdg, generous_tit_for_tat(0.1, 1.0), always_defect());
  const double high = cooperation_rate(
      rdg, generous_tit_for_tat(0.6, 1.0), always_defect());
  EXPECT_LT(low, high);
}

TEST(PayoffOracle, DispatchesAllKinds) {
  const payoff_oracle oracle({{3.0, 1.0}, 0.8}, 0.9);
  const double f_ac_ad =
      oracle.payoff(paper_strategy::ac(), paper_strategy::ad());
  EXPECT_NEAR(f_ac_ad, -1.0 / 0.2, 1e-9);
  const double via_gtft = oracle.gtft_payoff(0.4, paper_strategy::ad());
  const rd_setting s{3.0, 1.0, 0.8, 0.9};
  EXPECT_NEAR(via_gtft, f_gtft_vs_ad(s, 0.4), 1e-9);
}

TEST(PayoffOracle, InvalidSettingThrows) {
  EXPECT_THROW(payoff_oracle({{1.0, 2.0}, 0.5}, 0.5), invariant_error);
  EXPECT_THROW(payoff_oracle({{3.0, 1.0}, 1.0}, 0.5), invariant_error);
  EXPECT_THROW(payoff_oracle({{3.0, 1.0}, 0.5}, 1.5), invariant_error);
}

}  // namespace
}  // namespace ppg
