// Crash-recovery suite for the checkpoint layer: RNG state capture, the
// sim_recipe JSON round trip for every built-in registry entry, strict-parse
// rejection of malformed documents, and the bit-exact resume contract —
// checkpoint mid-run (including mid-residual for the multibatch engine),
// restore through a dump/parse cycle as a fresh process would, and assert
// the continued trajectory is bitwise identical to the uninterrupted twin
// with the same run() schedule (DESIGN.md §9).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ppg/exp/resume.hpp"
#include "ppg/pp/checkpoint.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/pp/multibatch_engine.hpp"
#include "ppg/pp/protocol_registry.hpp"
#include "ppg/util/error.hpp"
#include "ppg/util/json.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {
namespace {

constexpr engine_kind all_kinds[] = {engine_kind::agent, engine_kind::census,
                                     engine_kind::batched,
                                     engine_kind::multibatch};

// --- RNG state capture ----------------------------------------------------

TEST(RngState, SaveRestoreContinuesIdenticalStream) {
  rng source(8801);
  for (int i = 0; i < 17; ++i) (void)source();
  const auto mark = source.save();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(source());

  rng other(12345);  // unrelated position; restore overwrites it entirely
  other.restore(mark);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(other(), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(RngState, AllZeroStateRejected) {
  rng gen(1);
  EXPECT_THROW(gen.restore({0, 0, 0, 0}), invariant_error);
}

// --- sim_recipe round trip ------------------------------------------------

json parse_recipe_doc(const std::string& text) { return json::parse(text); }

void expect_recipe_round_trip(const std::string& text) {
  const json doc = parse_recipe_doc(text);
  const sim_recipe recipe = sim_recipe::from_json(doc);
  const json out = recipe.to_json();
  // Canonical form is a fixed point: dump → parse → to_json is byte-stable.
  const sim_recipe again = sim_recipe::from_json(json::parse(
      out.dump_string()));
  EXPECT_EQ(again.to_json().dump_string(), out.dump_string());
  EXPECT_EQ(again.to_json(), out);
  EXPECT_EQ(recipe.spec().initial_counts(), again.spec().initial_counts());
  EXPECT_EQ(recipe.sampling(), again.sampling());
  EXPECT_EQ(recipe.proto().num_states(), again.proto().num_states());
}

TEST(SimRecipe, ParameterlessProtocolsRoundTrip) {
  expect_recipe_round_trip(R"({"protocol": {"name": "rumor", "params": {}},
    "initial_counts": [90, 10], "sampling": "distinct"})");
  expect_recipe_round_trip(
      R"({"protocol": {"name": "approximate-majority", "params": {}},
    "initial_counts": [40, 30, 30], "sampling": "with_replacement"})");
  expect_recipe_round_trip(
      R"({"protocol": {"name": "leader-election", "params": {}},
    "initial_counts": [64, 0], "sampling": "distinct"})");
}

TEST(SimRecipe, IgtRoundTrip) {
  expect_recipe_round_trip(
      R"({"protocol": {"name": "igt",
                       "params": {"k": 4, "discipline": "one_way"}},
    "initial_counts": [20, 20, 20, 20, 20, 20], "sampling": "distinct"})");
}

TEST(SimRecipe, MatrixGameRoundTrip) {
  expect_recipe_round_trip(
      R"({"protocol": {"name": "matrix-game",
                       "params": {"game": {"name": "hawk-dove",
                                           "value": 2.0, "cost": 3.0},
                                  "rule": {"name": "logit",
                                           "temperature": 0.5},
                                  "discipline": "two_way"}},
    "initial_counts": [60, 40], "sampling": "distinct"})");
  expect_recipe_round_trip(
      R"({"protocol": {"name": "matrix-game",
                       "params": {"game": {"name": "donation",
                                           "b": 3.0, "c": 1.0},
                                  "rule": {"name": "proportional-imitation",
                                           "rate": 0.25},
                                  "discipline": "one_way"}},
    "initial_counts": [50, 50], "sampling": "distinct"})");
}

TEST(SimRecipe, EveryRegisteredNameIsConstructible) {
  const auto names = protocol_registry::global().names();
  EXPECT_GE(names.size(), 5u);
  for (const auto& name : names) {
    EXPECT_TRUE(protocol_registry::global().contains(name)) << name;
  }
}

TEST(SimRecipe, StrictParseRejectsMalformedDocuments) {
  // Missing key.
  EXPECT_THROW(sim_recipe::from_json(parse_recipe_doc(
                   R"({"protocol": {"name": "rumor", "params": {}},
                       "initial_counts": [9, 1]})")),
               invariant_error);
  // Unknown key.
  EXPECT_THROW(sim_recipe::from_json(parse_recipe_doc(
                   R"({"protocol": {"name": "rumor", "params": {}},
                       "initial_counts": [9, 1], "sampling": "distinct",
                       "extra": 1})")),
               invariant_error);
  // Wrong type.
  EXPECT_THROW(sim_recipe::from_json(parse_recipe_doc(
                   R"({"protocol": {"name": "rumor", "params": {}},
                       "initial_counts": "nope", "sampling": "distinct"})")),
               invariant_error);
  // Unknown protocol / sampling names.
  EXPECT_THROW(sim_recipe::from_json(parse_recipe_doc(
                   R"({"protocol": {"name": "gossip", "params": {}},
                       "initial_counts": [9, 1], "sampling": "distinct"})")),
               invariant_error);
  EXPECT_THROW(sim_recipe::from_json(parse_recipe_doc(
                   R"({"protocol": {"name": "rumor", "params": {}},
                       "initial_counts": [9, 1], "sampling": "sorted"})")),
               invariant_error);
  // Parameterless protocols reject stray params.
  EXPECT_THROW(sim_recipe::from_json(parse_recipe_doc(
                   R"({"protocol": {"name": "rumor", "params": {"k": 3}},
                       "initial_counts": [9, 1], "sampling": "distinct"})")),
               invariant_error);
}

TEST(SimRecipe, StrictParseRejectsUnknownGameAndRule) {
  EXPECT_THROW(
      (void)game_matrix_from_json(json::parse(R"({"name": "chess"})")),
      invariant_error);
  EXPECT_THROW(
      (void)update_rule_from_json(json::parse(R"({"name": "replicate"})")),
      invariant_error);
  EXPECT_THROW((void)game_matrix_from_json(json::parse(
                   R"({"name": "hawk-dove", "value": 2.0})")),
               invariant_error);
  EXPECT_THROW((void)update_rule_from_json(json::parse(
                   R"({"name": "logit", "temperature": 0.5, "beta": 1.0})")),
               invariant_error);
}

// --- bit-exact resume across all four engines -----------------------------

const char* igt_recipe_text() {
  return R"({"protocol": {"name": "igt",
                          "params": {"k": 3, "discipline": "one_way"}},
    "initial_counts": [60, 60, 60, 60, 60], "sampling": "distinct"})";
}

const char* hawk_dove_recipe_text() {
  return R"({"protocol": {"name": "matrix-game",
                          "params": {"game": {"name": "hawk-dove",
                                              "value": 2.0, "cost": 3.0},
                                     "rule": {"name": "logit",
                                              "temperature": 0.4},
                                     "discipline": "two_way"}},
    "initial_counts": [160, 140], "sampling": "distinct"})";
}

const char* rumor_recipe_text() {
  return R"({"protocol": {"name": "rumor", "params": {}},
    "initial_counts": [280, 20], "sampling": "distinct"})";
}

// Runs the saved/restored trajectory against the uninterrupted twin. Both
// runs use the same snapshot cadence, so the run() chunk schedule — part of
// the draw schedule for the aggregated engines — is identical; the
// checkpoint sits at a chunk boundary (t_checkpoint a multiple of cadence).
void expect_bit_exact_resume(const std::string& recipe_text, engine_kind kind,
                             std::uint64_t seed) {
  constexpr std::uint64_t t_checkpoint = 4000;
  constexpr std::uint64_t t_total = 9000;
  constexpr std::uint64_t cadence = 1000;

  const sim_recipe recipe = sim_recipe::from_json(json::parse(recipe_text));

  rng gen_full(seed);
  const auto full = recipe.spec().make_engine(kind, gen_full);
  const auto full_snaps = full->run_with_snapshots(t_total, cadence);

  rng gen_cut(seed);
  const auto cut = recipe.spec().make_engine(kind, gen_cut);
  const auto before = cut->run_with_snapshots(t_checkpoint, cadence);

  // Through bytes, as a fresh process would read the file.
  const std::string file = save_checkpoint(recipe, *cut).dump_string();
  restored_sim resumed = restore_checkpoint(json::parse(file));
  ASSERT_EQ(resumed.engine->kind(), kind);
  ASSERT_EQ(resumed.engine->interactions(), t_checkpoint);
  const auto after =
      resumed.engine->run_with_snapshots(t_total - t_checkpoint, cadence);

  ASSERT_EQ(before.size() + after.size(), full_snaps.size());
  for (std::size_t i = 0; i < full_snaps.size(); ++i) {
    const auto& got =
        i < before.size() ? before[i] : after[i - before.size()];
    EXPECT_EQ(got.interactions, full_snaps[i].interactions);
    EXPECT_EQ(got.counts, full_snaps[i].counts)
        << engine_kind_name(kind) << " diverged at snapshot " << i;
  }
  // The resumed engine's *entire* state — RNG position included — matches
  // the uninterrupted twin's.
  EXPECT_EQ(resumed.engine->save_state(), full->save_state());
}

TEST(Checkpoint, BitExactResumeIgt) {
  for (const auto kind : all_kinds) {
    expect_bit_exact_resume(igt_recipe_text(), kind, 501);
  }
}

TEST(Checkpoint, BitExactResumeHawkDoveLogit) {
  for (const auto kind : all_kinds) {
    expect_bit_exact_resume(hawk_dove_recipe_text(), kind, 502);
  }
}

TEST(Checkpoint, BitExactResumeRumor) {
  for (const auto kind : all_kinds) {
    expect_bit_exact_resume(rumor_recipe_text(), kind, 503);
  }
}

// The multibatch engine's rounds span ~sqrt(n) interactions, so a run()
// budget routinely truncates a round mid-flight; the carry (pending free
// pairs + the unresolved collision split) must survive the checkpoint.
TEST(Checkpoint, MultibatchResumesMidResidualRound) {
  const sim_recipe recipe =
      sim_recipe::from_json(json::parse(rumor_recipe_text()));
  constexpr std::uint64_t chunk = 7;  // far below a round length at n=300

  rng gen_full(604);
  const auto full = recipe.spec().make_engine(engine_kind::multibatch,
                                              gen_full);
  rng gen_cut(604);
  const auto cut = recipe.spec().make_engine(engine_kind::multibatch,
                                             gen_cut);

  // Advance both twins in lockstep until the cut engine is mid-round with
  // free pairs still pending.
  const auto* mb = dynamic_cast<const multibatch_engine*>(cut.get());
  ASSERT_NE(mb, nullptr);
  bool found = false;
  for (int i = 0; i < 200 && !found; ++i) {
    full->run(chunk);
    cut->run(chunk);
    found = mb->residual_free() > 0;
  }
  ASSERT_TRUE(found) << "never saw a truncated round with pending pairs";
  ASSERT_TRUE(mb->mid_round());

  const std::string file = save_checkpoint(recipe, *cut).dump_string();
  restored_sim resumed = restore_checkpoint(json::parse(file));
  const auto* rmb =
      dynamic_cast<const multibatch_engine*>(resumed.engine.get());
  ASSERT_NE(rmb, nullptr);
  EXPECT_EQ(rmb->residual_free(), mb->residual_free());
  EXPECT_TRUE(rmb->mid_round());

  // Identical run() schedules from here on: the continued trajectory must
  // match the uninterrupted twin draw for draw.
  for (int i = 0; i < 50; ++i) {
    full->run(chunk);
    resumed.engine->run(chunk);
    ASSERT_EQ(resumed.engine->interactions(), full->interactions());
    const auto a = full->census();
    const auto b = resumed.engine->census();
    for (agent_state s = 0; s < a.num_state_kinds(); ++s) {
      ASSERT_EQ(b.count(s), a.count(s)) << "state " << s << " at chunk " << i;
    }
  }
  EXPECT_EQ(resumed.engine->save_state(), full->save_state());
}

// --- recipe fingerprints ---------------------------------------------------

TEST(Fingerprint, InvariantUnderSourceFormatting) {
  // The fingerprint hashes the *canonical* form, so whitespace, key order
  // of the source text, and number spelling in the input must not matter.
  const sim_recipe tidy = sim_recipe::from_json(json::parse(
      R"({"protocol": {"name": "rumor", "params": {}},
          "initial_counts": [280, 20], "sampling": "distinct"})"));
  const sim_recipe scrambled = sim_recipe::from_json(json::parse(
      "{\"sampling\":\"distinct\",\"initial_counts\":[280,20],"
      "\"protocol\":{\"params\":{},\"name\":\"rumor\"}}"));
  EXPECT_EQ(recipe_fingerprint(tidy), recipe_fingerprint(scrambled));
}

TEST(Fingerprint, SensitiveToEveryRecipeField) {
  const auto fingerprint_of = [](const char* text) {
    return recipe_fingerprint(sim_recipe::from_json(json::parse(text)));
  };
  const std::uint64_t base = fingerprint_of(
      R"({"protocol": {"name": "rumor", "params": {}},
          "initial_counts": [280, 20], "sampling": "distinct"})");
  // Census, sampling, and protocol changes all move the fingerprint.
  EXPECT_NE(base, fingerprint_of(
                      R"({"protocol": {"name": "rumor", "params": {}},
          "initial_counts": [281, 19], "sampling": "distinct"})"));
  EXPECT_NE(base, fingerprint_of(
                      R"({"protocol": {"name": "rumor", "params": {}},
          "initial_counts": [280, 20], "sampling": "with_replacement"})"));
  EXPECT_NE(base,
            fingerprint_of(
                R"({"protocol": {"name": "approximate-majority", "params": {}},
          "initial_counts": [280, 20, 0], "sampling": "distinct"})"));
}

TEST(Fingerprint, StableAcrossProcessRestarts) {
  // json_fingerprint must be a pure function of the document bytes — no
  // per-process salting — or the serve kernel cache would never warm up
  // across sessions created from identical client requests.
  const json doc = json::parse(R"({"name": "rumor", "params": {}})");
  EXPECT_EQ(json_fingerprint(doc), json_fingerprint(json::parse(
                                       R"({"name":"rumor","params":{}})")));
  EXPECT_NE(json_fingerprint(doc),
            json_fingerprint(json::parse(R"({"name": "rumor"})")));
}

TEST(Checkpoint, RestoreWithPrecompiledKernelIsBitExact) {
  // The serve warm-cache path: restoring with a shared precompiled kernel
  // must continue the trajectory exactly like a fresh compile.
  const sim_recipe recipe =
      sim_recipe::from_json(json::parse(hawk_dove_recipe_text()));
  const auto kernel = std::make_shared<const kernel_table>(recipe.proto());
  for (const auto kind :
       {engine_kind::census, engine_kind::batched, engine_kind::multibatch}) {
    rng gen(604);
    const auto engine = recipe.spec().make_engine(kind, gen);
    engine->run(4096);
    const json checkpoint = save_checkpoint(recipe, *engine);

    auto plain = restore_checkpoint(checkpoint);
    auto shared = restore_checkpoint(checkpoint, kernel);
    plain.engine->run(4096);
    shared.engine->run(4096);
    EXPECT_EQ(plain.engine->save_state(), shared.engine->save_state())
        << engine_kind_name(kind);
  }
}

// --- snapshot round trip and strictness -----------------------------------

TEST(Checkpoint, SnapshotIsAFixedPointOfRestore) {
  const sim_recipe recipe =
      sim_recipe::from_json(json::parse(igt_recipe_text()));
  for (const auto kind : all_kinds) {
    rng gen(705);
    const auto engine = recipe.spec().make_engine(kind, gen);
    engine->run(3137);  // deliberately not a round/batch boundary
    const json snapshot = engine->save_state();
    EXPECT_EQ(json::parse(snapshot.dump_string()), snapshot);

    rng scratch(0);
    const auto fresh = recipe.spec().make_engine(kind, scratch);
    fresh->restore_state(snapshot);
    EXPECT_EQ(fresh->save_state(), snapshot) << engine_kind_name(kind);
    EXPECT_EQ(fresh->interactions(), engine->interactions());
  }
}

TEST(Checkpoint, RestoreRejectsTamperedSnapshots) {
  const sim_recipe recipe =
      sim_recipe::from_json(json::parse(rumor_recipe_text()));
  rng gen(806);
  const auto engine = recipe.spec().make_engine(engine_kind::census, gen);
  engine->run(500);
  const json good = engine->save_state();

  const auto fresh_engine = [&recipe](engine_kind kind) {
    rng scratch(0);
    return recipe.spec().make_engine(kind, scratch);
  };

  {  // Foreign engine name.
    auto e = fresh_engine(engine_kind::batched);
    EXPECT_THROW(e->restore_state(good), invariant_error);
  }
  {  // Unknown state version.
    json bad = good;
    bad["state_version"] = std::uint64_t{99};
    auto e = fresh_engine(engine_kind::census);
    EXPECT_THROW(e->restore_state(bad), invariant_error);
  }
  {  // Unknown key.
    json bad = good;
    bad["surprise"] = std::uint64_t{1};
    auto e = fresh_engine(engine_kind::census);
    EXPECT_THROW(e->restore_state(bad), invariant_error);
  }
  {  // All-zero RNG state (corrupt).
    json bad = good;
    bad["rng"] = json_uint_array({0, 0, 0, 0});
    auto e = fresh_engine(engine_kind::census);
    EXPECT_THROW(e->restore_state(bad), invariant_error);
  }
  {  // Census total inconsistent with the spec's population.
    json bad = good;
    bad["counts"] = json_uint_array({1, 1});
    auto e = fresh_engine(engine_kind::census);
    EXPECT_THROW(e->restore_state(bad), invariant_error);
  }
  {  // Unsupported outer schema version.
    json file = save_checkpoint(recipe, *engine);
    file["schema_version"] = std::uint64_t{2};
    EXPECT_THROW((void)restore_checkpoint(file), invariant_error);
  }
}

// --- resumable sweeps -----------------------------------------------------

TEST(ResumableSweep, ResumesEveryReplicaBitExactly) {
  constexpr std::uint64_t master_seed = 907;
  constexpr std::size_t replicas = 3;
  constexpr std::uint64_t horizon = 6000;
  constexpr std::uint64_t chunk = 1500;

  const auto make = [] {
    return sim_recipe::from_json(json::parse(hawk_dove_recipe_text()));
  };

  resumable_sweep uninterrupted(make(), engine_kind::batched, master_seed,
                                replicas, horizon, 2);
  while (uninterrupted.advance(chunk)) {
  }

  resumable_sweep first_leg(make(), engine_kind::batched, master_seed,
                            replicas, horizon, 2);
  first_leg.advance(chunk);
  const std::string file = first_leg.save().dump_string();

  resumable_sweep second_leg = resumable_sweep::restore(json::parse(file), 2);
  EXPECT_EQ(second_leg.replicas(), replicas);
  EXPECT_EQ(second_leg.master_seed(), master_seed);
  EXPECT_EQ(second_leg.horizon(), horizon);
  EXPECT_EQ(second_leg.kind(), engine_kind::batched);
  while (second_leg.advance(chunk)) {
  }

  ASSERT_TRUE(uninterrupted.finished());
  ASSERT_TRUE(second_leg.finished());
  for (std::size_t i = 0; i < replicas; ++i) {
    EXPECT_EQ(second_leg.replica(i).interactions(), horizon);
    EXPECT_EQ(second_leg.replica(i).save_state(),
              uninterrupted.replica(i).save_state())
        << "replica " << i;
  }
}

TEST(ResumableSweep, MatchesBatchRunnerStreamLaw) {
  // Replica i of a sweep must see exactly the trajectory a replicate_* body
  // building spec.make_engine(kind, gen) from make_stream_rng(master, i)
  // would — the sweep is the checkpointable form of the same computation.
  constexpr std::uint64_t master_seed = 31;
  const sim_recipe recipe =
      sim_recipe::from_json(json::parse(rumor_recipe_text()));
  resumable_sweep sweep(
      sim_recipe::from_json(json::parse(rumor_recipe_text())),
      engine_kind::census, master_seed, 2, 2000, 1);
  while (sweep.advance(500)) {
  }
  for (std::uint64_t i = 0; i < 2; ++i) {
    rng gen = make_stream_rng(master_seed, i);
    const auto twin = recipe.spec().make_engine(engine_kind::census, gen);
    twin->run(2000);
    EXPECT_EQ(sweep.replica(i).save_state(), twin->save_state())
        << "replica " << i;
  }
}

}  // namespace
}  // namespace ppg
