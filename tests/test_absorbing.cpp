// Tests for the absorbing-chain solver: gambler's-ruin closed forms,
// absorption probabilities (equation (25) of the paper), and the leader
// election projection.
#include <gtest/gtest.h>

#include "ppg/markov/absorbing.hpp"
#include "ppg/markov/random_walk.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/pp/protocols/leader_election.hpp"
#include "ppg/stats/summary.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(Absorbing, GamblersRuinTimesMatchClosedForm) {
  for (const auto& params :
       {walk_params{0.25, 0.25}, walk_params{0.3, 0.15},
        walk_params{0.1, 0.4}}) {
    const std::size_t span = 14;
    const auto chain = absorbing_walk_chain(span, params.up, params.down);
    std::vector<bool> absorbing(span + 1, false);
    absorbing[0] = true;
    absorbing[span] = true;
    const auto times = expected_absorption_times(chain, absorbing);
    for (std::size_t start = 0; start <= span; ++start) {
      EXPECT_NEAR(times[start],
                  expected_absorption_time(params,
                                           static_cast<std::int64_t>(span),
                                           static_cast<std::int64_t>(start)),
                  1e-8)
          << "start " << start << " up " << params.up;
    }
  }
}

TEST(Absorbing, AbsorptionProbabilitiesMatchEquation25) {
  // Equation (25): probability of upper absorption for the biased walk.
  const walk_params params{0.3, 0.15};
  const std::size_t span = 10;
  const auto chain = absorbing_walk_chain(span, params.up, params.down);
  std::vector<bool> absorbing(span + 1, false);
  absorbing[0] = true;
  absorbing[span] = true;
  std::vector<bool> upper(span + 1, false);
  upper[span] = true;
  const auto probs = absorption_probabilities(chain, absorbing, upper);
  for (std::size_t start = 0; start <= span; ++start) {
    EXPECT_NEAR(probs[start],
                upper_absorption_probability(
                    params, static_cast<std::int64_t>(span),
                    static_cast<std::int64_t>(start)),
                1e-10);
  }
}

TEST(Absorbing, ComplementaryProbabilitiesSumToOne) {
  const auto chain = absorbing_walk_chain(8, 0.2, 0.3);
  std::vector<bool> absorbing(9, false);
  absorbing[0] = true;
  absorbing[8] = true;
  std::vector<bool> lower(9, false);
  lower[0] = true;
  std::vector<bool> upper(9, false);
  upper[8] = true;
  const auto p_low = absorption_probabilities(chain, absorbing, lower);
  const auto p_high = absorption_probabilities(chain, absorbing, upper);
  for (std::size_t i = 0; i <= 8; ++i) {
    EXPECT_NEAR(p_low[i] + p_high[i], 1.0, 1e-10);
  }
}

TEST(Absorbing, AbsorbingStatesHaveZeroTime) {
  const auto chain = absorbing_walk_chain(5, 0.25, 0.25);
  std::vector<bool> absorbing(6, false);
  absorbing[0] = true;
  absorbing[5] = true;
  const auto times = expected_absorption_times(chain, absorbing);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[5], 0.0);
  EXPECT_GT(times[2], 0.0);
}

TEST(Absorbing, TargetMustBeAbsorbing) {
  const auto chain = absorbing_walk_chain(5, 0.25, 0.25);
  std::vector<bool> absorbing(6, false);
  absorbing[0] = true;
  absorbing[5] = true;
  std::vector<bool> bad_target(6, false);
  bad_target[2] = true;  // transient
  EXPECT_THROW(
      (void)absorption_probabilities(chain, absorbing, bad_target),
      invariant_error);
}

TEST(Absorbing, LeaderCountChainExpectedTimeClosedForm) {
  // From l leaders, the number of interactions to drop to l-1 is geometric
  // with success probability l(l-1)/(n(n-1)), so
  // E[T] = n(n-1) sum_{l=2}^{n} 1/(l(l-1)) = n(n-1)(1 - 1/n).
  const std::size_t n = 40;
  const auto chain = leader_count_chain(n);
  std::vector<bool> absorbing(n, false);
  absorbing[0] = true;  // one leader left
  const auto times = expected_absorption_times(chain, absorbing);
  const double nd = static_cast<double>(n);
  EXPECT_NEAR(times[n - 1], nd * (nd - 1.0) * (1.0 - 1.0 / nd), 1e-6);
}

TEST(Absorbing, LeaderCountChainMatchesAgentSimulation) {
  // The projected chain's expected completion time should match the mean of
  // the agent-level protocol.
  const std::size_t n = 30;
  const auto chain = leader_count_chain(n);
  std::vector<bool> absorbing(n, false);
  absorbing[0] = true;
  const double exact = expected_absorption_times(chain, absorbing)[n - 1];

  running_summary simulated;
  for (int t = 0; t < 60; ++t) {
    const leader_election_protocol proto;
    simulation sim(proto,
                   population(n, leader_election_protocol::state_leader, 2),
                   rng(800 + static_cast<std::uint64_t>(t)));
    const auto steps = sim.run_until(
        leader_election_protocol::has_unique_leader, 100'000'000);
    simulated.add(static_cast<double>(steps));
  }
  EXPECT_NEAR(simulated.mean(), exact, 5.0 * simulated.ci_half_width());
}

TEST(Absorbing, UnreachableAbsorptionThrows) {
  // Two disconnected transient states can never be absorbed.
  finite_chain chain(3);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 0, 1.0);
  chain.add_transition(2, 2, 1.0);
  std::vector<bool> absorbing(3, false);
  absorbing[2] = true;
  EXPECT_THROW((void)expected_absorption_times(chain, absorbing),
               invariant_error);
}

}  // namespace
}  // namespace ppg
