// Tests for the statistics layer: summaries, histograms, empirical
// comparisons, chi-square goodness of fit, and closed-form distributions.
#include <gtest/gtest.h>

#include <cmath>

#include "ppg/stats/chi_square.hpp"
#include "ppg/stats/discrete_sampling.hpp"
#include "ppg/stats/distributions.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/stats/histogram.hpp"
#include "ppg/stats/summary.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(Summary, MeanVarianceKnownValues) {
  running_summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptySummaryThrows) {
  running_summary s;
  EXPECT_THROW((void)s.mean(), invariant_error);
  EXPECT_THROW((void)s.min(), invariant_error);
  s.add(1.0);
  EXPECT_THROW((void)s.variance(), invariant_error);
}

TEST(Summary, MergeMatchesSequential) {
  running_summary all;
  running_summary left;
  running_summary right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  running_summary a;
  a.add(1.0);
  a.add(3.0);
  running_summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  running_summary target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(Summary, CiShrinksWithSamples) {
  running_summary small;
  running_summary large;
  rng gen(1);
  for (int i = 0; i < 100; ++i) small.add(gen.next_double());
  for (int i = 0; i < 10000; ++i) large.add(gen.next_double());
  EXPECT_LT(large.ci_half_width(), small.ci_half_width());
}

TEST(Histogram, CountsAndNormalization) {
  histogram h(3);
  h.add(0);
  h.add(1, 3);
  h.add(2);
  EXPECT_EQ(h.total(), 5u);
  const auto p = h.normalized();
  EXPECT_DOUBLE_EQ(p[0], 0.2);
  EXPECT_DOUBLE_EQ(p[1], 0.6);
  EXPECT_DOUBLE_EQ(p[2], 0.2);
}

TEST(Histogram, OutOfRangeThrows) {
  histogram h(2);
  EXPECT_THROW(h.add(2), invariant_error);
  EXPECT_THROW((void)h.count(5), invariant_error);
}

TEST(Histogram, ClearResets) {
  histogram h(2);
  h.add(0);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_THROW((void)h.normalized(), invariant_error);
}

TEST(Histogram, AsciiBarsRenderEveryBucket) {
  histogram h(3);
  h.add(0, 10);
  h.add(2, 5);
  const auto bars = h.ascii_bars(10);
  EXPECT_NE(bars.find("[0]"), std::string::npos);
  EXPECT_NE(bars.find("[2]"), std::string::npos);
}

TEST(Empirical, TotalVariationKnownValues) {
  EXPECT_DOUBLE_EQ(total_variation({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(total_variation({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(total_variation({0.7, 0.3}, {0.5, 0.5}), 0.2);
}

TEST(Empirical, TvRequiresEqualSupports) {
  EXPECT_THROW((void)total_variation({1.0}, {0.5, 0.5}), invariant_error);
}

TEST(Empirical, LinfDistance) {
  EXPECT_DOUBLE_EQ(linf_distance({0.1, 0.9}, {0.3, 0.7}), 0.2);
}

TEST(Empirical, IsDistribution) {
  EXPECT_TRUE(is_distribution({0.25, 0.75}));
  EXPECT_FALSE(is_distribution({0.5, 0.6}));
  EXPECT_FALSE(is_distribution({-0.1, 1.1}));
}

TEST(Empirical, MeanAndVariance) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> v = {0.0, 2.0};
  EXPECT_DOUBLE_EQ(distribution_mean(p, v), 1.0);
  EXPECT_DOUBLE_EQ(distribution_variance(p, v), 1.0);
}

TEST(ChiSquare, RegularizedGammaKnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (const double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
  // P(0.5, x) = erf(sqrt(x)).
  for (const double x : {0.2, 1.0, 4.0}) {
    EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(ChiSquare, TailKnownValues) {
  // Chi-square with 2 dof: tail = exp(-x/2).
  EXPECT_NEAR(chi_square_tail(2.0, 2.0), std::exp(-1.0), 1e-10);
  // 95th percentile of chi-square(1) is ~3.841.
  EXPECT_NEAR(chi_square_tail(3.841, 1.0), 0.05, 1e-3);
}

TEST(ChiSquare, GofAcceptsTrueDistribution) {
  rng gen(101);
  const std::vector<double> probs = {0.2, 0.3, 0.5};
  std::vector<std::uint64_t> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[sample_categorical(probs, gen)];
  }
  const auto result = chi_square_gof(counts, probs);
  EXPECT_GT(result.p_value, 0.001);
}

TEST(ChiSquare, GofRejectsWrongDistribution) {
  rng gen(102);
  const std::vector<double> truth = {0.5, 0.5};
  const std::vector<double> claimed = {0.8, 0.2};
  std::vector<std::uint64_t> counts(2, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[sample_categorical(truth, gen)];
  }
  const auto result = chi_square_gof(counts, claimed);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquare, MergesSparseCells) {
  // n = 400: the last three cells have expected counts 4, 2, 2 (< 5), so
  // they must be merged.
  const std::vector<std::uint64_t> observed = {200, 190, 6, 2, 2};
  const std::vector<double> expected = {0.5, 0.48, 0.01, 0.005, 0.005};
  const auto result = chi_square_gof(observed, expected, 5.0);
  EXPECT_LT(result.merged_buckets, observed.size());
  EXPECT_GT(result.p_value, 0.0);
}

TEST(Distributions, BinomialPmfSumsToOne) {
  for (const double p : {0.2, 0.5, 0.9}) {
    double sum = 0.0;
    for (std::uint64_t k = 0; k <= 20; ++k) {
      sum += binomial_pmf(20, p, k);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Distributions, BinomialPmfKnownValue) {
  EXPECT_NEAR(binomial_pmf(4, 0.5, 2), 6.0 / 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 1.0, 4), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 0.5, 5), 0.0);
}

TEST(Distributions, MultinomialPmfMatchesBinomialWhenKIsTwo) {
  const std::vector<double> probs = {0.3, 0.7};
  for (std::uint64_t x = 0; x <= 10; ++x) {
    EXPECT_NEAR(multinomial_pmf(10, probs, {x, 10 - x}),
                binomial_pmf(10, 0.3, x), 1e-12);
  }
}

TEST(Distributions, MultinomialPmfSumsToOne) {
  const std::vector<double> probs = {0.2, 0.3, 0.5};
  double sum = 0.0;
  for (std::uint64_t x = 0; x <= 6; ++x) {
    for (std::uint64_t y = 0; x + y <= 6; ++y) {
      sum += multinomial_pmf(6, probs, {x, y, 6 - x - y});
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Distributions, MultinomialCountMismatchThrows) {
  EXPECT_THROW(
      (void)multinomial_pmf(5, {0.5, 0.5}, {2, 2}),
      invariant_error);
}

TEST(Distributions, SampleBinomialMoments) {
  rng gen(7);
  const std::uint64_t n = 100;
  const double p = 0.3;
  running_summary s;
  for (int i = 0; i < 50000; ++i) {
    s.add(static_cast<double>(sample_binomial(n, p, gen)));
  }
  EXPECT_NEAR(s.mean(), n * p, 0.2);
  EXPECT_NEAR(s.variance(), n * p * (1 - p), 1.0);
}

TEST(Distributions, SampleBinomialEdgeCases) {
  rng gen(8);
  EXPECT_EQ(sample_binomial(10, 0.0, gen), 0u);
  EXPECT_EQ(sample_binomial(10, 1.0, gen), 10u);
  EXPECT_EQ(sample_binomial(0, 0.5, gen), 0u);
}

TEST(Distributions, SampleMultinomialSumsToM) {
  rng gen(9);
  const std::vector<double> probs = {0.1, 0.2, 0.3, 0.4};
  for (int trial = 0; trial < 100; ++trial) {
    const auto counts = sample_multinomial(50, probs, gen);
    std::uint64_t total = 0;
    for (const auto c : counts) total += c;
    EXPECT_EQ(total, 50u);
  }
}

TEST(Distributions, SampleMultinomialMeans) {
  rng gen(10);
  const std::vector<double> probs = {0.1, 0.6, 0.3};
  std::vector<double> sums(3, 0.0);
  constexpr int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto counts = sample_multinomial(30, probs, gen);
    for (std::size_t i = 0; i < 3; ++i) {
      sums[i] += static_cast<double>(counts[i]);
    }
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(sums[i] / trials, 30.0 * probs[i], 0.15);
  }
}

TEST(Distributions, CategoricalRespectsWeights) {
  rng gen(11);
  const std::vector<double> weights = {1.0, 3.0};  // not normalized
  int ones = 0;
  constexpr int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    if (sample_categorical(weights, gen) == 1) ++ones;
  }
  EXPECT_NEAR(ones / static_cast<double>(trials), 0.75, 0.01);
}

TEST(Distributions, CategoricalRejectsBadWeights) {
  rng gen(12);
  EXPECT_THROW((void)sample_categorical({}, gen), invariant_error);
  EXPECT_THROW((void)sample_categorical({0.0, 0.0}, gen), invariant_error);
  EXPECT_THROW((void)sample_categorical({-1.0, 2.0}, gen), invariant_error);
}

TEST(Distributions, GeometricWeightsShape) {
  const auto w = geometric_weights(4, 2.0);
  EXPECT_TRUE(is_distribution(w));
  // Ratios between consecutive weights equal lambda.
  EXPECT_NEAR(w[1] / w[0], 2.0, 1e-12);
  EXPECT_NEAR(w[2] / w[1], 2.0, 1e-12);
  EXPECT_NEAR(w[3] / w[2], 2.0, 1e-12);
}

TEST(Distributions, GeometricWeightsUniformWhenLambdaOne) {
  const auto w = geometric_weights(5, 1.0);
  for (const double x : w) {
    EXPECT_NEAR(x, 0.2, 1e-12);
  }
}

TEST(Distributions, GeometricWeightsExtremeLambdaStable) {
  // Must not overflow or produce NaN for large k and lambda.
  const auto w = geometric_weights(64, 10.0);
  EXPECT_TRUE(is_distribution(w, 1e-9));
  EXPECT_GT(w.back(), 0.89);  // mass concentrates at the top
  const auto w_small = geometric_weights(64, 0.1);
  EXPECT_TRUE(is_distribution(w_small, 1e-9));
  EXPECT_GT(w_small.front(), 0.89);
}

}  // namespace
}  // namespace ppg
