// Tests for execution noise (perturbed strategies) and the continuous
// best-response generosity solver.
#include <gtest/gtest.h>

#include <cmath>

#include "ppg/core/equilibrium.hpp"
#include "ppg/core/theory.hpp"
#include "ppg/games/exact_payoff.hpp"
#include "ppg/games/rollout.hpp"
#include "ppg/games/strategy.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(Noise, PerturbationMapsProbabilitiesAffinely) {
  const auto tft = tit_for_tat(1.0);
  const auto noisy = perturbed(tft, 0.1);
  EXPECT_DOUBLE_EQ(noisy.initial_cooperation, 0.9);
  EXPECT_DOUBLE_EQ(noisy.response(game_state::cc), 0.9);   // 1 -> 0.9
  EXPECT_DOUBLE_EQ(noisy.response(game_state::cd), 0.1);   // 0 -> 0.1
  EXPECT_TRUE(noisy.valid());
}

TEST(Noise, ZeroNoiseIsIdentity) {
  const auto s = generous_tit_for_tat(0.3, 0.7);
  const auto same = perturbed(s, 0.0);
  EXPECT_DOUBLE_EQ(same.initial_cooperation, s.initial_cooperation);
  for (std::size_t i = 0; i < num_game_states; ++i) {
    EXPECT_DOUBLE_EQ(same.cooperate_given[i], s.cooperate_given[i]);
  }
}

TEST(Noise, HalfNoiseErasesAllStructure) {
  const auto s = grim(1.0);
  const auto random = perturbed(s, 0.5);
  EXPECT_DOUBLE_EQ(random.initial_cooperation, 0.5);
  for (std::size_t i = 0; i < num_game_states; ++i) {
    EXPECT_DOUBLE_EQ(random.cooperate_given[i], 0.5);
  }
}

TEST(Noise, FullNoiseInvertsActions) {
  const auto noisy_ac = perturbed(always_cooperate(), 1.0);
  EXPECT_DOUBLE_EQ(noisy_ac.initial_cooperation, 0.0);
  EXPECT_DOUBLE_EQ(noisy_ac.response(game_state::cc), 0.0);
}

TEST(Noise, ExactFoldingMatchesExplicitNoiseSimulation) {
  // Simulate noise explicitly in a rollout (flip each performed action) and
  // compare against the exact oracle on the perturbed strategies.
  const repeated_donation_game rdg{{3.0, 1.0}, 0.8};
  const double noise = 0.05;
  const auto row = tit_for_tat(1.0);
  const auto col = generous_tit_for_tat(0.2, 1.0);
  const double exact =
      expected_payoff(rdg, perturbed(row, noise), perturbed(col, noise));

  rng gen(881);
  const auto v = rdg.game.reward_vector();
  double total = 0.0;
  constexpr int trials = 300000;
  for (int t = 0; t < trials; ++t) {
    auto flip = [&](bool coop) {
      return gen.next_bernoulli(noise) ? !coop : coop;
    };
    bool row_c = flip(gen.next_bernoulli(row.initial_cooperation));
    bool col_c = flip(gen.next_bernoulli(col.initial_cooperation));
    double payoff = 0.0;
    while (true) {
      const game_state state =
          make_state(row_c ? action::cooperate : action::defect,
                     col_c ? action::cooperate : action::defect);
      payoff += v[static_cast<std::size_t>(state)];
      if (!gen.next_bernoulli(rdg.delta)) break;
      const bool next_row =
          flip(gen.next_bernoulli(row.response(state)));
      const bool next_col =
          flip(gen.next_bernoulli(col.response(swapped(state))));
      row_c = next_row;
      col_c = next_col;
    }
    total += payoff;
  }
  EXPECT_NEAR(total / trials, exact, 0.05);
}

TEST(Noise, TftCollapsesGtftRecovers) {
  // The classic robustness result: under noise, mutual TFT loses most of
  // the cooperative surplus; GTFT with moderate generosity retains it.
  const repeated_donation_game rdg{{3.0, 1.0}, 0.95};
  const double full =
      expected_payoff(rdg, always_cooperate(), always_cooperate());
  const double noise = 0.02;
  const auto noisy_tft = perturbed(tit_for_tat(1.0), noise);
  const auto noisy_gtft = perturbed(generous_tit_for_tat(0.3, 1.0), noise);
  const double tft_payoff = expected_payoff(rdg, noisy_tft, noisy_tft);
  const double gtft_payoff = expected_payoff(rdg, noisy_gtft, noisy_gtft);
  EXPECT_LT(tft_payoff, 0.8 * full);
  EXPECT_GT(gtft_payoff, 0.9 * full);
  EXPECT_GT(gtft_payoff, tft_payoff + 0.1 * full);
}

TEST(Noise, OptimalGenerosityIncreasesWithNoise) {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.95};
  auto best_g = [&](double noise) {
    double best = 0.0;
    double best_value = -1e300;
    for (int i = 0; i <= 50; ++i) {
      const double g = i / 50.0;
      const auto s = perturbed(generous_tit_for_tat(g, 1.0), noise);
      const double value = expected_payoff(rdg, s, s);
      if (value > best_value) {
        best_value = value;
        best = g;
      }
    }
    return best;
  };
  EXPECT_LE(best_g(0.005), best_g(0.05));
  EXPECT_GT(best_g(0.05), 0.0);
}

TEST(Noise, InvalidInputsThrow) {
  EXPECT_THROW((void)perturbed(always_cooperate(), -0.1), invariant_error);
  EXPECT_THROW((void)perturbed(always_cooperate(), 1.5), invariant_error);
}

igt_equilibrium_analyzer admissible_analyzer(std::size_t k) {
  const auto instance = make_theorem_2_9_instance(0.2, 0.7, 0.5);
  return igt_equilibrium_analyzer(instance.setting, 0.1, 0.2, 0.7, k,
                                  instance.g_max);
}

TEST(BestResponse, MatchesGridArgmaxUpToGridResolution) {
  const auto analyzer = admissible_analyzer(16);
  const auto mu = analyzer.stationary_mu();
  const double g_star = analyzer.best_response_generosity(mu);
  const auto de = analyzer.gap(mu);
  const double grid_best = analyzer.grid()[de.best_level];
  // Continuous optimum is at least as good as the best grid point and not
  // far from it.
  EXPECT_GE(analyzer.payoff_vs_mixture(g_star, mu),
            de.best_payoff - 1e-12);
  EXPECT_NEAR(g_star, grid_best, analyzer.grid()[1] - analyzer.grid()[0]);
}

TEST(BestResponse, IsTopInAdmissibleRegime) {
  // Within the corrected Theorem 2.9 regime the deviation payoff increases
  // in g, so the continuous best response is at (or extremely near) g_max.
  const auto analyzer = admissible_analyzer(8);
  const auto mu = analyzer.stationary_mu();
  const double g_star = analyzer.best_response_generosity(mu);
  EXPECT_NEAR(g_star, analyzer.grid().back(), 1e-6);
}

TEST(BestResponse, IsZeroInNegativeCoefficientRegime) {
  // The E5(c) counterexample: negative deviation coefficient makes g = 0
  // the best response.
  const rd_setting bad{4.0, 1.0, 0.45, 0.5};
  const igt_equilibrium_analyzer analyzer(bad, 0.1, 0.2, 0.7, 8, 0.9);
  const auto mu = analyzer.stationary_mu();
  EXPECT_NEAR(analyzer.best_response_generosity(mu), 0.0, 1e-6);
}

TEST(BestResponse, DistanceToMeanShrinkWithK) {
  // |g_avg - g*| = O(1/k): the proof skeleton of Theorem 2.9.
  const auto instance = make_theorem_2_9_instance(0.2, 0.7, 0.5);
  double previous = 1e300;
  for (const std::size_t k : {4u, 16u, 64u}) {
    const igt_equilibrium_analyzer analyzer(instance.setting, 0.1, 0.2, 0.7,
                                            k, instance.g_max);
    const auto mu = analyzer.stationary_mu();
    const double g_star = analyzer.best_response_generosity(mu);
    const double g_avg = average_stationary_generosity(0.2, k, instance.g_max);
    const double distance = std::abs(g_avg - g_star);
    EXPECT_LT(distance, previous);
    previous = distance;
  }
  EXPECT_LT(previous, 0.02);
}

}  // namespace
}  // namespace ppg
