// Tests for the dense matrix and LU decomposition.
#include <gtest/gtest.h>

#include <cmath>

#include "ppg/linalg/lu.hpp"
#include "ppg/linalg/matrix.hpp"
#include "ppg/util/error.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
  EXPECT_THROW((void)m(2, 0), invariant_error);
}

TEST(Matrix, FromRowsAndIdentity) {
  const auto m = matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  const auto id = matrix::identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  EXPECT_THROW((void)matrix::from_rows({{1.0}, {1.0, 2.0}}),
               invariant_error);
}

TEST(Matrix, Arithmetic) {
  const auto a = matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const auto b = matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  const auto diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
  const auto scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, ProductKnownValue) {
  const auto a = matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const auto b = matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const auto p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 50.0);
}

TEST(Matrix, Transpose) {
  const auto a = matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const auto t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, RowStochasticCheck) {
  const auto good = matrix::from_rows({{0.5, 0.5}, {0.1, 0.9}});
  EXPECT_TRUE(good.is_row_stochastic());
  const auto bad_sum = matrix::from_rows({{0.5, 0.6}, {0.1, 0.9}});
  EXPECT_FALSE(bad_sum.is_row_stochastic());
  const auto negative = matrix::from_rows({{-0.5, 1.5}, {0.1, 0.9}});
  EXPECT_FALSE(negative.is_row_stochastic());
}

TEST(Matrix, RowTimesAndTimesCol) {
  const auto m = matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const auto row = row_times({1.0, 1.0}, m);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[1], 6.0);
  const auto col = times_col(m, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(col[0], 3.0);
  EXPECT_DOUBLE_EQ(col[1], 7.0);
}

TEST(Matrix, DotProduct) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_THROW((void)dot({1.0}, {1.0, 2.0}), invariant_error);
}

TEST(Lu, SolvesKnownSystem) {
  const auto a = matrix::from_rows({{2.0, 1.0}, {1.0, 3.0}});
  const auto x = solve(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, SolveRandomSystemsResidual) {
  rng gen(33);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(2 + trial % 6);
    matrix a(n, n);
    std::vector<double> b(n);
    for (std::size_t r = 0; r < n; ++r) {
      b[r] = gen.next_double() * 2.0 - 1.0;
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) = gen.next_double() * 2.0 - 1.0;
      }
      a(r, r) += 3.0;  // diagonally dominant, hence well-conditioned
    }
    const auto x = solve(a, b);
    const auto ax = times_col(a, x);
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_NEAR(ax[r], b[r], 1e-9);
    }
  }
}

TEST(Lu, SolveTransposed) {
  const auto a = matrix::from_rows({{2.0, 0.0}, {1.0, 3.0}});
  // Solve x A = b  <=>  A^T x = b.
  const auto x = lu_decomposition(a).solve_transposed({5.0, 9.0});
  // x A = (2 x0 + x1, 3 x1) = (5, 9) -> x1 = 3, x0 = 1.
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, InverseRoundTrip) {
  const auto a = matrix::from_rows(
      {{4.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}});
  const auto inv = inverse(a);
  const auto prod = a * inv;
  const auto id = matrix::identity(3);
  EXPECT_LT((prod - id).max_abs(), 1e-10);
}

TEST(Lu, DeterminantKnownValues) {
  const auto a = matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_NEAR(lu_decomposition(a).determinant(), -2.0, 1e-12);
  const auto id = matrix::identity(4);
  EXPECT_NEAR(lu_decomposition(id).determinant(), 1.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  const auto a = matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_THROW(lu_decomposition{a}, invariant_error);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  const auto a = matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  const auto x = solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, NeumannSeriesIdentity) {
  // (I - dM)^{-1} = sum (dM)^i for a stochastic M and d < 1: the identity
  // the exact payoff engine relies on (equation (33)).
  const auto m = matrix::from_rows({{0.3, 0.7}, {0.6, 0.4}});
  const double d = 0.8;
  auto a = matrix::identity(2);
  a -= d * m;
  const auto inv = inverse(a);
  // Partial sums of the series.
  auto partial = matrix::identity(2);
  auto term = matrix::identity(2);
  for (int i = 0; i < 400; ++i) {
    term = term * (d * m);
    partial += term;
  }
  EXPECT_LT((partial - inv).max_abs(), 1e-8);
}

}  // namespace
}  // namespace ppg
