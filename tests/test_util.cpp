// Tests for the utility layer: error handling, the deterministic RNG, and
// the table/format helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "ppg/util/error.hpp"
#include "ppg/util/rng.hpp"
#include "ppg/util/table.hpp"
#include "ppg/util/timer.hpp"

namespace ppg {
namespace {

TEST(Error, CheckThrowsWithContext) {
  try {
    PPG_CHECK(1 == 2, "one is not two");
    FAIL() << "PPG_CHECK did not throw";
  } catch (const invariant_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(PPG_CHECK(true, "fine"));
}

TEST(Rng, DeterministicForFixedSeed) {
  rng a(42);
  rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, GoldenReferenceValues) {
  // Frozen outputs of xoshiro256** seeded via splitmix64(12345). These pin
  // down cross-platform bit-reproducibility of every simulation in the
  // repository; if this test ever fails, all recorded experiment numbers
  // must be considered stale.
  rng g(12345);
  EXPECT_EQ(g(), 13720838825685603483ull);
  EXPECT_EQ(g(), 2398916695208396998ull);
  EXPECT_EQ(g(), 17770384849984869256ull);
  EXPECT_EQ(g(), 891717726879801395ull);
  rng h(12345);
  EXPECT_EQ(h.next_below(1000), 743u);
  EXPECT_EQ(h.next_below(1000), 130u);
  rng d(12345);
  EXPECT_DOUBLE_EQ(d.next_double(), 0.74380816315658937);
  EXPECT_DOUBLE_EQ(d.next_double(), 0.13004553462783452);
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1);
  rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  rng gen(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(gen.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  rng gen(7);
  EXPECT_THROW((void)gen.next_below(0), invariant_error);
}

TEST(Rng, NextBelowIsApproximatelyUniform) {
  rng gen(11);
  constexpr std::uint64_t bound = 5;
  constexpr int trials = 100000;
  std::array<int, bound> counts{};
  for (int i = 0; i < trials; ++i) {
    ++counts[gen.next_below(bound)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 5.0, 600.0);
  }
}

TEST(Rng, NextInCoversInclusiveRange) {
  rng gen(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = gen.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  rng gen(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  rng gen(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(gen.next_bernoulli(0.0));
    EXPECT_TRUE(gen.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  rng gen(13);
  int hits = 0;
  constexpr int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (gen.next_bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches) {
  rng gen(17);
  const double p = 0.2;
  double sum = 0.0;
  constexpr int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(gen.next_geometric(p));
  }
  // Mean of failures-before-success geometric: (1-p)/p = 4.
  EXPECT_NEAR(sum / trials, (1.0 - p) / p, 0.1);
}

TEST(Rng, GeometricWithPOneIsZero) {
  rng gen(19);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(gen.next_geometric(1.0), 0u);
  }
}

TEST(Rng, GeometricSmallPKeepsItsMean) {
  // p small enough that a naive log(1-p) would lose precision; the log1p
  // inversion must keep the mean at (1-p)/p ~ 1e6.
  rng gen(20);
  const double p = 1e-6;
  double sum = 0.0;
  constexpr int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(gen.next_geometric(p));
  }
  EXPECT_NEAR(sum / trials / 1e6, 1.0, 0.05);
}

TEST(Rng, GeometricTinyPClampsInsteadOfOverflowing) {
  // For p ~ 1e-300 the inversion exceeds the 64-bit range on essentially
  // every draw; the cast must be clamped (UB before the fix), and the
  // clamped value is the largest representable skip count.
  rng gen(21);
  for (int i = 0; i < 100; ++i) {
    const auto skips = gen.next_geometric(1e-300);
    EXPECT_GE(skips, std::uint64_t{1} << 62);
  }
  // p just past the clamp threshold still produces in-range finite draws.
  rng gen2(22);
  for (int i = 0; i < 1000; ++i) {
    (void)gen2.next_geometric(1e-12);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  rng gen(23);
  rng child = gen.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (gen() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Table, AlignsAndCounts) {
  text_table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream out;
  t.print(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("value"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  text_table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), invariant_error);
}

TEST(Table, RejectsCommasForCsvSafety) {
  text_table t({"a"});
  EXPECT_THROW(t.add_row({"x,y"}), invariant_error);
}

TEST(Table, CsvOutput) {
  text_table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Format, FixedAndScientific) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
  EXPECT_NE(fmt_sci(12345.0).find('e'), std::string::npos);
}

TEST(Format, CountGrouping) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1_000");
  EXPECT_EQ(fmt_count(1234567), "1_234_567");
}

TEST(Timer, MeasuresNonNegativeTime) {
  timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace ppg
