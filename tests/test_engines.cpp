// Engine equivalence suite: the agent, census, batched, and multibatch
// engines execute the same interaction law for a given (protocol, initial
// census, sampling) triple. Pinned here via (a) exact kernel-vs-interact
// agreement, (b) bitwise agent-engine/legacy-simulation agreement under
// shared seeds, (c) two-sample chi-square cross-checks of replica
// statistics at a fixed parallel time for IGT, approximate majority,
// rumor, and leader election, and (d) agreement of census-engine
// stationary statistics with igt_count_chain (equation (5)) and the
// Theorem 2.7 closed form.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "engine_agreement.hpp"
#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/pp/batched_engine.hpp"
#include "ppg/pp/census_engine.hpp"
#include "ppg/pp/kernel.hpp"
#include "ppg/pp/multibatch_engine.hpp"
#include "ppg/pp/protocols/approximate_majority.hpp"
#include "ppg/pp/protocols/leader_election.hpp"
#include "ppg/pp/protocols/rumor.hpp"
#include "ppg/stats/chi_square.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(Kernel, IgtKernelMatchesInteract) {
  rng gen(1);
  for (const auto discipline :
       {igt_discipline::one_way, igt_discipline::two_way}) {
    const igt_protocol proto(5, discipline);
    const kernel_table kernel(proto);
    EXPECT_TRUE(kernel.fully_deterministic());
    for (agent_state i = 0; i < proto.num_states(); ++i) {
      for (agent_state r = 0; r < proto.num_states(); ++r) {
        const auto dist = proto.outcome_distribution(i, r);
        ASSERT_EQ(dist.size(), 1u);
        const auto direct = proto.interact(i, r, gen);
        EXPECT_EQ(dist[0].initiator, direct.first);
        EXPECT_EQ(dist[0].responder, direct.second);
        EXPECT_EQ(kernel.sample(i, r, gen), direct);
        EXPECT_EQ(kernel.identity(i, r),
                  direct == std::make_pair(i, r));
      }
    }
  }
}

// A protocol defining only the kernel: the default interact samples it.
class coin_protocol final : public protocol {
 public:
  [[nodiscard]] std::size_t num_states() const override { return 2; }
  [[nodiscard]] bool has_kernel() const override { return true; }
  [[nodiscard]] std::vector<outcome> outcome_distribution(
      agent_state /*initiator*/, agent_state responder) const override {
    // The initiator rerandomizes its opinion; the responder is unchanged.
    return {{0, responder, 0.5}, {1, responder, 0.5}};
  }
};

TEST(Kernel, DefaultInteractSamplesTheKernel) {
  const coin_protocol proto;
  rng gen(2);
  int heads = 0;
  constexpr int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    const auto [next_initiator, next_responder] = proto.interact(0, 1, gen);
    EXPECT_EQ(next_responder, 1u);
    heads += next_initiator == 1 ? 1 : 0;
  }
  EXPECT_NEAR(heads, trials / 2, 5.0 * std::sqrt(trials / 4.0));
}

class bad_sum_protocol final : public protocol {
 public:
  [[nodiscard]] std::size_t num_states() const override { return 2; }
  [[nodiscard]] bool has_kernel() const override { return true; }
  [[nodiscard]] std::vector<outcome> outcome_distribution(
      agent_state initiator, agent_state responder) const override {
    return {{initiator, responder, 0.7}};  // sums to 0.7
  }
};

class kernelless_protocol final : public protocol {
 public:
  [[nodiscard]] std::size_t num_states() const override { return 2; }
  [[nodiscard]] std::pair<agent_state, agent_state> interact(
      agent_state initiator, agent_state responder,
      rng& /*gen*/) const override {
    return {initiator, responder};
  }
};

TEST(Kernel, ContractViolationsAreRejected) {
  EXPECT_THROW(kernel_table{bad_sum_protocol{}}, invariant_error);
  EXPECT_THROW(kernel_table{kernelless_protocol{}}, invariant_error);
  // Default interact on a kernel-less protocol has nothing to sample.
  rng gen(3);
  const kernelless_protocol proto;
  EXPECT_THROW((void)proto.outcome_distribution(0, 0), invariant_error);
}

TEST(Engines, KernellessProtocolRestrictedToAgentEngine) {
  const kernelless_protocol proto;
  const sim_spec spec(proto, population({0, 1, 1, 0}, 2));
  rng gen(4);
  EXPECT_NO_THROW((void)spec.make_engine(engine_kind::agent, gen));
  EXPECT_THROW((void)spec.make_engine(engine_kind::census, gen),
               invariant_error);
  EXPECT_THROW((void)spec.make_engine(engine_kind::batched, gen),
               invariant_error);
  EXPECT_THROW((void)spec.make_engine(engine_kind::multibatch, gen),
               invariant_error);
}

TEST(Engines, BatchedAndMultibatchRequireDistinctSampling) {
  const rumor_protocol proto;
  const sim_spec spec(proto, population({1, 0, 0, 0}, 2),
                      pair_sampling::with_replacement);
  rng gen(5);
  EXPECT_THROW((void)spec.make_engine(engine_kind::batched, gen),
               invariant_error);
  EXPECT_THROW((void)spec.make_engine(engine_kind::multibatch, gen),
               invariant_error);
  EXPECT_NO_THROW((void)spec.make_engine(engine_kind::census, gen));
}

TEST(Engines, AgentEngineIsBitwiseTheLegacySimulation) {
  const igt_protocol proto(4);
  const auto pop = abg_population::from_fractions(60, 0.2, 0.3, 0.5);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, 4, 1), 6));
  rng gen_a(77);
  rng gen_b(77);
  const auto engine = spec.make_engine(engine_kind::agent, gen_a);
  simulation legacy = spec.instantiate(gen_b);
  engine->run(5000);
  legacy.run(5000);
  EXPECT_EQ(engine->census().counts(), legacy.census().counts());
  EXPECT_EQ(engine->interactions(), legacy.interactions());
}

TEST(Engines, AgreeOnIgtAtFixedParallelTime) {
  const std::size_t k = 4;
  const auto pop = abg_population::from_fractions(240, 0.1, 0.25, 0.65);
  const igt_protocol proto(k);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, k, 0), 2 + k));
  const std::uint64_t steps = 40 * pop.n();  // parallel time 40
  const auto statistic = [&](const census_view& census) {
    const auto z = gtft_level_counts(census, k);
    double level_mass = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      level_mass += static_cast<double>(j) * static_cast<double>(z[j]);
    }
    return level_mass;
  };
  constexpr std::size_t replicas = 300;
  const auto agent = testing::replica_statistics(
      spec, engine_kind::agent, replicas, steps, 90, statistic);
  const auto census = testing::replica_statistics(
      spec, engine_kind::census, replicas, steps, 91, statistic);
  const auto batched = testing::replica_statistics(
      spec, engine_kind::batched, replicas, steps, 92, statistic);
  const auto multibatch = testing::replica_statistics(
      spec, engine_kind::multibatch, replicas, steps, 292, statistic);
  EXPECT_GT(testing::two_sample_p(agent, census, 8), 1e-4);
  EXPECT_GT(testing::two_sample_p(agent, batched, 8), 1e-4);
  EXPECT_GT(testing::two_sample_p(agent, multibatch, 8), 1e-4);
}

TEST(Engines, AgreeOnApproximateMajorityAtFixedParallelTime) {
  using amp = approximate_majority_protocol;
  const amp proto;
  std::vector<agent_state> states;
  states.insert(states.end(), 60, amp::state_x);
  states.insert(states.end(), 40, amp::state_y);
  states.insert(states.end(), 20, amp::state_blank);
  const sim_spec spec(proto, population(std::move(states), 3));
  const std::uint64_t steps = 2 * 120;  // parallel time 2: mid-dynamics
  const auto statistic = [](const census_view& census) {
    return static_cast<double>(census.count(amp::state_x)) -
           static_cast<double>(census.count(amp::state_y));
  };
  constexpr std::size_t replicas = 300;
  const auto agent = testing::replica_statistics(
      spec, engine_kind::agent, replicas, steps, 93, statistic);
  const auto census = testing::replica_statistics(
      spec, engine_kind::census, replicas, steps, 94, statistic);
  const auto batched = testing::replica_statistics(
      spec, engine_kind::batched, replicas, steps, 95, statistic);
  const auto multibatch = testing::replica_statistics(
      spec, engine_kind::multibatch, replicas, steps, 295, statistic);
  EXPECT_GT(testing::two_sample_p(agent, census, 8), 1e-4);
  EXPECT_GT(testing::two_sample_p(agent, batched, 8), 1e-4);
  EXPECT_GT(testing::two_sample_p(agent, multibatch, 8), 1e-4);
}

TEST(Engines, AgreeOnRumorAtFixedParallelTime) {
  const rumor_protocol proto;
  std::vector<agent_state> states(150, rumor_protocol::state_susceptible);
  states[0] = rumor_protocol::state_informed;
  const sim_spec spec(proto, population(std::move(states), 2));
  const std::uint64_t steps = 3 * 150;  // parallel time 3: mid-spread
  const auto statistic = [](const census_view& census) {
    return static_cast<double>(census.count(rumor_protocol::state_informed));
  };
  constexpr std::size_t replicas = 300;
  const auto agent = testing::replica_statistics(
      spec, engine_kind::agent, replicas, steps, 96, statistic);
  const auto census = testing::replica_statistics(
      spec, engine_kind::census, replicas, steps, 97, statistic);
  const auto batched = testing::replica_statistics(
      spec, engine_kind::batched, replicas, steps, 98, statistic);
  const auto multibatch = testing::replica_statistics(
      spec, engine_kind::multibatch, replicas, steps, 298, statistic);
  EXPECT_GT(testing::two_sample_p(agent, census, 8), 1e-4);
  EXPECT_GT(testing::two_sample_p(agent, batched, 8), 1e-4);
  EXPECT_GT(testing::two_sample_p(agent, multibatch, 8), 1e-4);
}

TEST(Engines, AgreeOnLeaderElectionAtFixedParallelTime) {
  const leader_election_protocol proto;
  const sim_spec spec(
      proto, population(150, leader_election_protocol::state_leader, 2));
  const std::uint64_t steps = 2 * 150;  // parallel time 2: mid-election
  const auto statistic = [](const census_view& census) {
    return static_cast<double>(
        census.count(leader_election_protocol::state_leader));
  };
  constexpr std::size_t replicas = 300;
  const auto agent = testing::replica_statistics(
      spec, engine_kind::agent, replicas, steps, 110, statistic);
  const auto census = testing::replica_statistics(
      spec, engine_kind::census, replicas, steps, 111, statistic);
  const auto batched = testing::replica_statistics(
      spec, engine_kind::batched, replicas, steps, 112, statistic);
  const auto multibatch = testing::replica_statistics(
      spec, engine_kind::multibatch, replicas, steps, 312, statistic);
  EXPECT_GT(testing::two_sample_p(agent, census, 8), 1e-4);
  EXPECT_GT(testing::two_sample_p(agent, batched, 8), 1e-4);
  EXPECT_GT(testing::two_sample_p(agent, multibatch, 8), 1e-4);
}

TEST(Engines, ChiSquareCrossCheckDetectsDifferentLaws) {
  // Negative control for the helper: the same engine at different parallel
  // times follows different laws, which the test statistic must flag.
  const rumor_protocol proto;
  std::vector<agent_state> states(150, rumor_protocol::state_susceptible);
  states[0] = rumor_protocol::state_informed;
  const sim_spec spec(proto, population(std::move(states), 2));
  const auto statistic = [](const census_view& census) {
    return static_cast<double>(census.count(rumor_protocol::state_informed));
  };
  const auto early = testing::replica_statistics(
      spec, engine_kind::census, 300, 150, 99, statistic);
  const auto late = testing::replica_statistics(
      spec, engine_kind::census, 300, 3 * 150, 100, statistic);
  EXPECT_LT(testing::two_sample_p(early, late, 8), 1e-6);
}

TEST(Engines, CensusEngineMatchesCountChainStationary) {
  // Equation (5): with idealized (with-replacement) sampling, the level
  // census of the census engine and igt_count_chain follow the same chain,
  // whose stationary law is the Theorem 2.7 closed form.
  const std::size_t k = 5;
  const auto pop = abg_population::from_fractions(200, 0.1, 0.25, 0.65);
  const igt_protocol proto(k);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, k, 0), 2 + k),
                      pair_sampling::with_replacement);
  const auto burn =
      static_cast<std::uint64_t>(igt_mixing_upper_bound(pop, k));
  const std::uint64_t samples = 300'000;
  const auto m = static_cast<double>(pop.num_gtft);

  rng gen(101);
  const auto engine = spec.make_engine(engine_kind::census, gen);
  engine->run(burn);
  std::vector<double> from_engine(k, 0.0);
  for (std::uint64_t i = 0; i < samples; ++i) {
    engine->step();
    const auto z = gtft_level_counts(engine->census(), k);
    for (std::size_t j = 0; j < k; ++j) {
      from_engine[j] += static_cast<double>(z[j]);
    }
  }
  for (auto& x : from_engine) x /= static_cast<double>(samples) * m;

  igt_count_chain chain(pop, k, 0);
  rng chain_gen(102);
  chain.run(burn, chain_gen);
  std::vector<double> from_chain(k, 0.0);
  for (std::uint64_t i = 0; i < samples; ++i) {
    chain.step(chain_gen);
    const auto& z = chain.counts();
    for (std::size_t j = 0; j < k; ++j) {
      from_chain[j] += static_cast<double>(z[j]);
    }
  }
  for (auto& x : from_chain) x /= static_cast<double>(samples) * m;

  const auto closed_form = igt_stationary_probs(pop, k);
  EXPECT_LT(total_variation(from_engine, closed_form), 0.03);
  EXPECT_LT(total_variation(from_chain, closed_form), 0.03);
  EXPECT_LT(total_variation(from_engine, from_chain), 0.05);
}

TEST(Engines, CensusEngineRunsHundredMillionAgents) {
  // The acceptance-scale configuration: n = 10^8 with no per-agent array.
  const std::size_t k = 8;
  const igt_protocol proto(k);
  std::vector<std::uint64_t> counts(2 + k, 0);
  counts[igt_encoding::ac] = 10'000'000;
  counts[igt_encoding::ad] = 20'000'000;
  counts[igt_encoding::gtft(0)] = 70'000'000;
  const sim_spec spec(proto, counts);
  EXPECT_FALSE(spec.has_agent_initial());
  EXPECT_EQ(spec.population_size(), 100'000'000u);
  rng gen(103);
  const auto engine = spec.make_engine(engine_kind::census, gen);
  engine->run(100'000);
  EXPECT_EQ(engine->interactions(), 100'000u);
  std::uint64_t total = 0;
  for (const auto c : engine->census().counts()) total += c;
  EXPECT_EQ(total, 100'000'000u);
}

TEST(Engines, BatchedEngineSkipsIdentityInteractionsAtScale) {
  // Dilute GTFT population at n = 10^8: ~99% of interactions are identities
  // the batched engine never samples individually.
  const std::size_t k = 8;
  const igt_protocol proto(k);
  std::vector<std::uint64_t> counts(2 + k, 0);
  counts[igt_encoding::ac] = 79'000'000;
  counts[igt_encoding::ad] = 20'000'000;
  counts[igt_encoding::gtft(0)] = 1'000'000;
  const sim_spec spec(proto, counts);
  rng gen(104);
  const auto engine = spec.make_engine(engine_kind::batched, gen);
  engine->run(10'000'000);
  EXPECT_EQ(engine->interactions(), 10'000'000u);
  std::uint64_t total = 0;
  for (const auto c : engine->census().counts()) total += c;
  EXPECT_EQ(total, 100'000'000u);
}

TEST(Engines, MultibatchAggregatesDenseKernelsAtScale) {
  // Dense GTFT population at n = 10^8: nearly every interaction changes
  // the census, so the batched engine degenerates to one sampling round
  // per interaction while the multibatch engine advances in ~sqrt(n)-sized
  // aggregated rounds.
  const std::size_t k = 8;
  const igt_protocol proto(k);
  std::vector<std::uint64_t> counts(2 + k, 0);
  counts[igt_encoding::ac] = 10'000'000;
  counts[igt_encoding::ad] = 20'000'000;
  counts[igt_encoding::gtft(0)] = 70'000'000;
  const sim_spec spec(proto, counts);
  rng gen(108);
  const auto engine = spec.make_engine(engine_kind::multibatch, gen);
  engine->run(10'000'000);
  EXPECT_EQ(engine->interactions(), 10'000'000u);
  std::uint64_t total = 0;
  for (const auto c : engine->census().counts()) total += c;
  EXPECT_EQ(total, 100'000'000u);
  const auto* multibatch =
      dynamic_cast<const multibatch_engine*>(engine.get());
  ASSERT_NE(multibatch, nullptr);
  // ~sqrt(n)-interaction rounds: the work metric is thousands of times
  // below the interaction count (the bound is loose on purpose).
  EXPECT_LT(multibatch->rounds() + multibatch->collisions(), 100'000u);
}

TEST(Engines, MultibatchRoundsSurviveBudgetTruncation) {
  // run() boundaries land mid-round; the residual collision-free run is
  // carried across calls, so odd-sized chunks must keep the interaction
  // accounting and the census intact.
  const igt_protocol proto(3);
  const auto pop = abg_population::from_fractions(500, 0.2, 0.3, 0.5);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, 3, 0), 5));
  rng gen(109);
  const auto engine = spec.make_engine(engine_kind::multibatch, gen);
  std::uint64_t done = 0;
  for (const std::uint64_t chunk : {7u, 1u, 123u, 5u, 999u, 13u, 2048u}) {
    engine->run(chunk);
    done += chunk;
    EXPECT_EQ(engine->interactions(), done);
    std::uint64_t total = 0;
    for (const auto c : engine->census().counts()) total += c;
    EXPECT_EQ(total, 500u);
  }
}

TEST(Engines, BatchedFrozenCensusBurnsTheBudget) {
  // All agents informed: every pair is an identity, active weight 0.
  const rumor_protocol proto;
  const sim_spec spec(proto,
                      population(50, rumor_protocol::state_informed, 2));
  rng gen(105);
  const auto engine = spec.make_engine(engine_kind::batched, gen);
  engine->run(5000);
  EXPECT_EQ(engine->interactions(), 5000u);
  EXPECT_EQ(engine->census().count(rumor_protocol::state_informed), 50u);
  const auto executed = engine->run_until(
      [](const census_view& census) { return census.count(0) > 0; }, 1000);
  EXPECT_EQ(executed, 1000u);
  EXPECT_EQ(engine->interactions(), 6000u);
}

TEST(Engines, RunUntilConvergesOnEveryEngine) {
  const rumor_protocol proto;
  std::vector<agent_state> states(100, rumor_protocol::state_susceptible);
  states[0] = rumor_protocol::state_informed;
  const sim_spec spec(proto, population(std::move(states), 2));
  for (const auto kind :
       {engine_kind::agent, engine_kind::census, engine_kind::batched,
        engine_kind::multibatch}) {
    rng gen(106);
    const auto engine = spec.make_engine(kind, gen);
    const auto executed =
        engine->run_until(rumor_protocol::all_informed, 10'000'000);
    ASSERT_LT(executed, 10'000'000u) << engine_kind_name(kind);
    EXPECT_TRUE(rumor_protocol::all_informed(engine->census()));
    EXPECT_EQ(engine->interactions(), executed);
  }
}

TEST(Engines, SnapshotCadenceIsUniformAcrossEngines) {
  const igt_protocol proto(3);
  const auto pop = abg_population::from_fractions(40, 0.2, 0.3, 0.5);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, 3, 0), 5));
  for (const auto kind :
       {engine_kind::agent, engine_kind::census, engine_kind::batched,
        engine_kind::multibatch}) {
    rng gen(107);
    const auto engine = spec.make_engine(kind, gen);
    const auto snaps = engine->run_with_snapshots(25, 10);
    ASSERT_EQ(snaps.size(), 3u) << engine_kind_name(kind);
    EXPECT_EQ(snaps[0].interactions, 10u);
    EXPECT_EQ(snaps[1].interactions, 20u);
    EXPECT_EQ(snaps[2].interactions, 25u);
    for (const auto& snap : snaps) {
      std::uint64_t total = 0;
      for (const auto c : snap.counts) total += c;
      EXPECT_EQ(total, pop.n());
    }
  }
}

}  // namespace
}  // namespace ppg
