// Tests for the ppg-serve durability layer (DESIGN.md §13): the atomic
// spill discipline, boot-time recovery under original ids, quarantine of
// corrupt spills, degradation (not crashes) on injected disk failures, and
// the bit-exactness of recovered trajectories — including a multibatch
// engine spilled mid-residual-round.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "ppg/pp/checkpoint.hpp"
#include "ppg/serve/server.hpp"
#include "ppg/util/atomic_file.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

const char* rumor_recipe() {
  return R"({"protocol": {"name": "rumor", "params": {}},
    "initial_counts": [280, 20], "sampling": "distinct"})";
}

const char* majority_recipe() {
  return R"({"protocol": {"name": "approximate-majority", "params": {}},
    "initial_counts": [600, 400, 0], "sampling": "distinct"})";
}

http_request make_request(const std::string& method, const std::string& target,
                          const std::string& body = "") {
  http_request request;
  request.method = method;
  request.target = target;
  request.body = body;
  return request;
}

std::string create_body(const char* recipe_text, const char* engine,
                        std::uint64_t seed) {
  json body = json::object();
  body["recipe"] = json::parse(recipe_text);
  body["engine"] = engine;
  body["seed"] = seed;
  return body.dump_string(false);
}

json handle_json(serve_app& app, const http_request& request,
                 int expected_status) {
  const http_response response = app.handle(request);
  EXPECT_EQ(response.status, expected_status)
      << request.method << " " << request.target << " -> " << response.body;
  return json::parse(response.body);
}

/// A fresh store directory under /tmp, removed (recursively) on scope exit.
class temp_dir {
 public:
  temp_dir() {
    std::string name = "/tmp/ppg_durability_XXXXXX";
    char* made = ::mkdtemp(name.data());
    EXPECT_NE(made, nullptr);
    path_ = name;
  }
  ~temp_dir() { remove_tree(path_); }

  [[nodiscard]] const std::string& path() const { return path_; }

  [[nodiscard]] std::vector<std::string> entries(
      const std::string& subdir = "") const {
    std::vector<std::string> names;
    const std::string where =
        subdir.empty() ? path_ : path_ + "/" + subdir;
    DIR* dir = ::opendir(where.c_str());
    if (dir == nullptr) return names;
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
  }

 private:
  static void remove_tree(const std::string& where) {
    DIR* dir = ::opendir(where.c_str());
    if (dir != nullptr) {
      while (dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        const std::string child = where + "/" + name;
        if (::unlink(child.c_str()) != 0) remove_tree(child);
      }
      ::closedir(dir);
    }
    ::rmdir(where.c_str());
  }

  std::string path_;
};

std::string spill_path(const temp_dir& store, const std::string& id) {
  return store.path() + "/" + id + ".session.json";
}

std::string read_bytes(const std::string& path) {
  std::string bytes;
  std::string error;
  EXPECT_TRUE(read_file(path, &bytes, &error)) << path << ": " << error;
  return bytes;
}

// --- atomic file layer -----------------------------------------------------

TEST(AtomicFile, ReplacesAtomicallyAndLeavesNoTemp) {
  temp_dir dir;
  const std::string path = dir.path() + "/value.json";
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, "first", &error)) << error;
  EXPECT_EQ(read_bytes(path), "first");
  ASSERT_TRUE(atomic_write_file(path, "second", &error)) << error;
  EXPECT_EQ(read_bytes(path), "second");
  // No *.tmp residue after successful writes.
  for (const std::string& name : dir.entries()) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

TEST(AtomicFile, FailedWriteKeepsPreviousContent) {
  temp_dir dir;
  const std::string path = dir.path() + "/value.json";
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, "stable", &error)) << error;

  json plan_doc = json::parse(
      R"({"rules": [{"site": "store.write", "nth": 1, "action": "eio"}]})");
  auto plan = fault_plan::parse(plan_doc);
  faulty_file_ops ops(plan, default_file_ops());
  EXPECT_FALSE(atomic_write_file(path, "torn!", &error, ops));
  EXPECT_NE(error.find("Input/output error"), std::string::npos) << error;
  EXPECT_EQ(read_bytes(path), "stable");  // the old spill survived
}

// --- spill envelope --------------------------------------------------------

TEST(StoreEnvelope, RoundTripsAndRejectsMalformedDocuments) {
  store_file file;
  file.id = "s7";
  file.generation = 3;
  file.seed = 99;
  file.checkpoint = json::parse(R"({"schema_version": 1})");
  const json doc = store_envelope(file);
  const store_file parsed = parse_store_envelope(doc);
  EXPECT_EQ(parsed.id, "s7");
  EXPECT_EQ(parsed.generation, 3u);
  EXPECT_EQ(parsed.seed, 99u);

  json extra = doc;  // mutate a copy per violation
  extra["surprise"] = true;
  EXPECT_THROW((void)parse_store_envelope(extra), invariant_error);
  json zero_gen = doc;
  zero_gen["generation"] = std::uint64_t{0};
  EXPECT_THROW((void)parse_store_envelope(zero_gen), invariant_error);
  json bad_version = doc;
  bad_version["store_version"] = std::uint64_t{42};
  EXPECT_THROW((void)parse_store_envelope(bad_version), invariant_error);
}

// --- fault plan ------------------------------------------------------------

TEST(FaultPlan, StrictParseRejectsUnknownKeysAndActions) {
  EXPECT_THROW((void)fault_plan::parse(json::parse(R"({"surprise": 1})")),
               invariant_error);
  EXPECT_THROW(
      (void)fault_plan::parse(json::parse(
          R"({"rules": [{"site": "store.write", "nth": 1,
               "action": "meteor-strike"}]})")),
      invariant_error);
  EXPECT_THROW(
      (void)fault_plan::parse(json::parse(
          R"({"rules": [{"site": "store.write", "nth": 0,
               "action": "eio"}]})")),
      invariant_error);

  auto plan = fault_plan::parse(json::parse(
      R"({"seed": 5, "abort_at_interactions": 123,
          "rules": [{"site": "store.write", "nth": 2, "action": "enospc"}]})"));
  EXPECT_EQ(plan->abort_at_interactions(), 123u);
  EXPECT_EQ(plan->next("store.write"), fault_action::none);
  EXPECT_EQ(plan->next("store.fsync"), fault_action::none);
  EXPECT_EQ(plan->next("store.write"), fault_action::fail_enospc);
  EXPECT_EQ(plan->next("store.write"), fault_action::none);
  EXPECT_EQ(plan->fired(), 1u);
}

// --- spill / recover round trip --------------------------------------------

TEST(ServeDurability, SessionsRecoverUnderOriginalIdsBitExactly) {
  temp_dir store;
  serve_config config;
  config.store_dir = store.path();
  config.chunk = 1024;
  config.spill_every_chunks = 4;

  std::string census_checkpoint;
  std::string multibatch_checkpoint;
  {
    serve_app app(config);
    (void)handle_json(
        app,
        make_request("POST", "/sessions",
                     create_body(rumor_recipe(), "census", 11)),
        201);
    (void)handle_json(
        app,
        make_request("POST", "/sessions",
                     create_body(majority_recipe(), "multibatch", 22)),
        201);
    for (const char* id : {"s1", "s2"}) {
      (void)handle_json(app,
                        make_request("POST",
                                     std::string("/sessions/") + id +
                                         "/advance",
                                     R"({"interactions": 20000})"),
                        200);
    }
    census_checkpoint =
        app.handle(make_request("GET", "/sessions/s1/checkpoint")).body;
    multibatch_checkpoint =
        app.handle(make_request("GET", "/sessions/s2/checkpoint")).body;
  }

  // Reboot on the same directory: both sessions come back under their
  // original ids with byte-identical checkpoints (the idle-transition spill
  // captured the final state).
  serve_app rebooted(config);
  const json info = handle_json(rebooted, make_request("GET", "/sessions/s1"),
                                200);
  EXPECT_TRUE(info.find("recovered")->as_bool());
  EXPECT_TRUE(info.find("durable")->as_bool());
  EXPECT_EQ(info.find("seed")->as_uint64(), 11u);
  EXPECT_EQ(
      rebooted.handle(make_request("GET", "/sessions/s1/checkpoint")).body,
      census_checkpoint);
  EXPECT_EQ(
      rebooted.handle(make_request("GET", "/sessions/s2/checkpoint")).body,
      multibatch_checkpoint);

  // The recovered session continues exactly like a restore of the same
  // checkpoint: advance both identically and compare bytes again.
  const json clone = handle_json(
      rebooted,
      make_request("POST", "/sessions/restore", multibatch_checkpoint), 201);
  const std::string clone_id = clone.find("id")->as_string();
  EXPECT_NE(clone_id, "s1");  // adopted ids never collide with new ones
  EXPECT_NE(clone_id, "s2");
  for (const std::string& id : {std::string("s2"), clone_id}) {
    (void)handle_json(rebooted,
                      make_request("POST", "/sessions/" + id + "/advance",
                                   R"({"interactions": 7333})"),
                      200);
  }
  EXPECT_EQ(
      rebooted.handle(make_request("GET", "/sessions/s2/checkpoint")).body,
      rebooted.handle(make_request("GET", "/sessions/" + clone_id +
                                              "/checkpoint"))
          .body);
}

TEST(ServeDurability, MidResidualRoundMultibatchSpillRecoversBitExactly) {
  // Odd chunk and budgets leave the multibatch engine with a live residual
  // round at the spill points; recovery must resume from exactly that
  // mid-round state.
  temp_dir store;
  serve_config config;
  config.store_dir = store.path();
  config.chunk = 777;
  config.spill_every_chunks = 1;  // spill after every chunk

  std::string final_checkpoint;
  {
    serve_app app(config);
    (void)handle_json(
        app,
        make_request("POST", "/sessions",
                     create_body(majority_recipe(), "multibatch", 5)),
        201);
    (void)handle_json(app,
                      make_request("POST", "/sessions/s1/advance",
                                   R"({"interactions": 2501})"),
                      200);
    final_checkpoint =
        app.handle(make_request("GET", "/sessions/s1/checkpoint")).body;
  }

  serve_app rebooted(config);
  EXPECT_EQ(
      rebooted.handle(make_request("GET", "/sessions/s1/checkpoint")).body,
      final_checkpoint);
  // Continue the recovered session and a fresh restore of the checkpoint in
  // lockstep: byte-identical forever after.
  const std::string clone_id =
      handle_json(rebooted,
                  make_request("POST", "/sessions/restore", final_checkpoint),
                  201)
          .find("id")
          ->as_string();
  for (const std::string& id : {std::string("s1"), clone_id}) {
    (void)handle_json(rebooted,
                      make_request("POST", "/sessions/" + id + "/advance",
                                   R"({"interactions": 997})"),
                      200);
  }
  EXPECT_EQ(
      rebooted.handle(make_request("GET", "/sessions/s1/checkpoint")).body,
      rebooted.handle(make_request("GET", "/sessions/" + clone_id +
                                              "/checkpoint"))
          .body);
}

TEST(ServeDurability, GenerationIsMonotonicAndDrainSpillsLatestState) {
  temp_dir store;
  serve_config config;
  config.store_dir = store.path();
  config.chunk = 1000;
  config.spill_every_chunks = 0;  // only idle transitions and drain spill

  serve_app app(config);
  (void)handle_json(app,
                    make_request("POST", "/sessions",
                                 create_body(rumor_recipe(), "census", 3)),
                    201);
  const json created = handle_json(app, make_request("GET", "/sessions/s1"),
                                   200);
  EXPECT_EQ(created.find("generation")->as_uint64(), 1u);  // spilled at birth

  std::uint64_t last_generation = 1;
  for (int round = 0; round < 3; ++round) {
    (void)handle_json(app,
                      make_request("POST", "/sessions/s1/advance",
                                   R"({"interactions": 1500})"),
                      200);
    const json info = handle_json(app, make_request("GET", "/sessions/s1"),
                                  200);
    const std::uint64_t generation = info.find("generation")->as_uint64();
    EXPECT_GT(generation, last_generation);
    last_generation = generation;
  }

  app.drain();
  const store_file spilled =
      parse_store_envelope(json::parse(read_bytes(spill_path(store, "s1"))));
  EXPECT_EQ(spilled.generation, last_generation);  // nothing new to spill
  EXPECT_EQ(json_require_uint(
                json_require(spilled.checkpoint, "engine", "checkpoint"),
                "interactions", "engine snapshot"),
            4500u);
}

TEST(ServeDurability, DestroyedSessionsDoNotResurrect) {
  temp_dir store;
  serve_config config;
  config.store_dir = store.path();
  {
    serve_app app(config);
    (void)handle_json(app,
                      make_request("POST", "/sessions",
                                   create_body(rumor_recipe(), "census", 1)),
                      201);
    (void)handle_json(app,
                      make_request("POST", "/sessions",
                                   create_body(rumor_recipe(), "census", 2)),
                      201);
    (void)handle_json(app, make_request("DELETE", "/sessions/s1"), 200);
  }
  serve_app rebooted(config);
  (void)handle_json(rebooted, make_request("GET", "/sessions/s1"), 404);
  (void)handle_json(rebooted, make_request("GET", "/sessions/s2"), 200);
}

// --- quarantine ------------------------------------------------------------

TEST(ServeDurability, CorruptSpillsAreQuarantinedNotFatal) {
  temp_dir store;
  serve_config config;
  config.store_dir = store.path();
  {
    serve_app app(config);
    (void)handle_json(app,
                      make_request("POST", "/sessions",
                                   create_body(rumor_recipe(), "census", 8)),
                      201);
    (void)handle_json(app,
                      make_request("POST", "/sessions",
                                   create_body(rumor_recipe(), "census", 9)),
                      201);
    (void)handle_json(app,
                      make_request("POST", "/sessions/s1/advance",
                                   R"({"interactions": 4000})"),
                      200);
  }

  // Corrupt s2's spill three different ways across boots would need three
  // dirs; here: truncate s2 (torn write), plant a non-JSON file, and plant
  // an envelope whose inner checkpoint is garbage.
  const std::string s2 = spill_path(store, "s2");
  const std::string torn = read_bytes(s2).substr(0, 40);
  std::string error;
  ASSERT_TRUE(atomic_write_file(s2, torn, &error)) << error;

  ASSERT_TRUE(atomic_write_file(spill_path(store, "gibberish"),
                                "not json at all", &error))
      << error;
  store_file bad_inner;
  bad_inner.id = "zombie";
  bad_inner.generation = 1;
  bad_inner.seed = 0;
  bad_inner.checkpoint = json::parse(R"({"schema_version": 99})");
  ASSERT_TRUE(atomic_write_file(
      spill_path(store, "zombie"),
      store_envelope(bad_inner).dump_string(true), &error))
      << error;
  // A leftover temp file from an interrupted write is silently deleted.
  ASSERT_TRUE(atomic_write_file(store.path() + "/s9.session.json.tmp",
                                "partial", &error))
      << error;

  serve_app rebooted(config);
  // The healthy session recovered; every corrupt file was quarantined.
  (void)handle_json(rebooted, make_request("GET", "/sessions/s1"), 200);
  (void)handle_json(rebooted, make_request("GET", "/sessions/s2"), 404);
  (void)handle_json(rebooted, make_request("GET", "/sessions/zombie"), 404);

  const json stats = handle_json(rebooted, make_request("GET", "/stats"), 200);
  const json* durability = stats.find("durability");
  ASSERT_NE(durability, nullptr);
  EXPECT_TRUE(durability->find("enabled")->as_bool());
  EXPECT_EQ(durability->find("recovered_sessions")->as_uint64(), 1u);
  const json* quarantined = durability->find("quarantined");
  ASSERT_NE(quarantined, nullptr);
  EXPECT_EQ(quarantined->size(), 3u) << quarantined->dump_string(false);

  // The evidence is preserved on disk, and the store dir still scans clean.
  const std::vector<std::string> held = store.entries("quarantine");
  EXPECT_EQ(held.size(), 3u);
  for (const std::string& name : store.entries()) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

// --- degradation under injected disk failures ------------------------------

TEST(ServeDurability, SpillFailureDegradesSessionNotDaemon) {
  temp_dir store;
  serve_config config;
  config.store_dir = store.path();
  config.chunk = 1000;
  config.spill_every_chunks = 1;
  // The creation spill (write #1) succeeds; the next spill hits ENOSPC.
  config.faults = fault_plan::parse(json::parse(
      R"({"rules": [{"site": "store.write", "nth": 2, "action": "enospc"}]})"));

  serve_app app(config);
  (void)handle_json(app,
                    make_request("POST", "/sessions",
                                 create_body(rumor_recipe(), "census", 4)),
                    201);
  // The advance triggers the failing spill — the request still succeeds.
  (void)handle_json(app,
                    make_request("POST", "/sessions/s1/advance",
                                 R"({"interactions": 1000})"),
                    200);
  const json info = handle_json(app, make_request("GET", "/sessions/s1"), 200);
  EXPECT_FALSE(info.find("durable")->as_bool());  // degraded
  EXPECT_EQ(info.find("generation")->as_uint64(), 1u);

  const json stats = handle_json(app, make_request("GET", "/stats"), 200);
  EXPECT_EQ(stats.find("durability")->find("degraded_sessions")->as_uint64(),
            1u);
  EXPECT_EQ(stats.find("durability")->find("spill_failures")->as_uint64(), 1u);

  // The daemon (and the degraded session) keep serving.
  (void)handle_json(app,
                    make_request("POST", "/sessions/s1/advance",
                                 R"({"interactions": 1000})"),
                    200);
  // And the on-disk spill is still the intact generation-1 envelope.
  const store_file spilled =
      parse_store_envelope(json::parse(read_bytes(spill_path(store, "s1"))));
  EXPECT_EQ(spilled.generation, 1u);
}

TEST(ServeDurability, TornRenameIsQuarantinedOnNextBoot) {
  temp_dir store;
  serve_config config;
  config.store_dir = store.path();
  config.chunk = 1000;
  config.spill_every_chunks = 1;
  // The second rename (first advance's spill) tears the destination file.
  config.faults = fault_plan::parse(json::parse(
      R"({"rules": [{"site": "store.rename", "nth": 2, "action": "torn"}]})"));

  {
    serve_app app(config);
    (void)handle_json(app,
                      make_request("POST", "/sessions",
                                   create_body(rumor_recipe(), "census", 6)),
                      201);
    (void)handle_json(app,
                      make_request("POST", "/sessions/s1/advance",
                                   R"({"interactions": 1000})"),
                      200);
  }

  serve_config clean = config;
  clean.faults = nullptr;
  serve_app rebooted(clean);
  (void)handle_json(rebooted, make_request("GET", "/sessions/s1"), 404);
  const json stats = handle_json(rebooted, make_request("GET", "/stats"), 200);
  const json* quarantined = stats.find("durability")->find("quarantined");
  ASSERT_EQ(quarantined->size(), 1u);
  EXPECT_NE(quarantined->items()[0].as_string().find("s1.session.json"),
            std::string::npos);
}

// --- injectable store ------------------------------------------------------

/// An in-memory store: proves serve_app is written against the interface,
/// and gives the bench scenario a disk-free durability fixture.
class memory_store final : public session_store {
 public:
  bool spill(const store_file& file, std::string* error) override {
    (void)error;
    for (auto& existing : files_) {
      if (existing.id == file.id) {
        existing = file;
        return true;
      }
    }
    files_.push_back(file);
    return true;
  }
  store_scan scan() override {
    store_scan result;
    result.sessions = files_;
    return result;
  }
  void remove(const std::string& id) override {
    files_.erase(std::remove_if(files_.begin(), files_.end(),
                                [&](const store_file& f) {
                                  return f.id == id;
                                }),
                 files_.end());
  }
  bool quarantine(const std::string& id, const std::string& reason) override {
    remove(id);
    quarantined_.push_back(id + ": " + reason);
    return true;
  }
  [[nodiscard]] json stats() const override {
    json body = json::object();
    body["spills"] = std::uint64_t{0};
    body["spill_failures"] = std::uint64_t{0};
    body["quarantined"] = json::array();
    return body;
  }

  std::vector<store_file> files_;
  std::vector<std::string> quarantined_;
};

TEST(ServeDurability, InjectedStoreSeesSpillsAndRemovals) {
  auto owned = std::make_unique<memory_store>();
  memory_store* store = owned.get();
  serve_config config;
  config.chunk = 1000;
  config.spill_every_chunks = 1;
  serve_app app(config, std::move(owned));

  (void)handle_json(app,
                    make_request("POST", "/sessions",
                                 create_body(rumor_recipe(), "census", 2)),
                    201);
  ASSERT_EQ(store->files_.size(), 1u);
  EXPECT_EQ(store->files_[0].generation, 1u);
  (void)handle_json(app,
                    make_request("POST", "/sessions/s1/advance",
                                 R"({"interactions": 2000})"),
                    200);
  EXPECT_GE(store->files_[0].generation, 2u);
  (void)handle_json(app, make_request("DELETE", "/sessions/s1"), 200);
  EXPECT_TRUE(store->files_.empty());
}

}  // namespace
}  // namespace ppg
