// Monte-Carlo rollouts of repeated games cross-validated against the exact
// payoff oracle.
#include <gtest/gtest.h>

#include "ppg/games/closed_form.hpp"
#include "ppg/games/rollout.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

TEST(Rollout, RoundCountIsGeometric) {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.75};
  rng gen(71);
  running_summary rounds;
  for (int i = 0; i < 50000; ++i) {
    rounds.add(static_cast<double>(
        play_repeated_game(rdg, always_cooperate(), always_defect(), gen)
            .rounds));
  }
  // Expected rounds: 1/(1 - delta) = 4.
  EXPECT_NEAR(rounds.mean(), 4.0, 4.0 * rounds.ci_half_width());
}

TEST(Rollout, AtLeastOneRoundAlwaysPlayed) {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.0};
  rng gen(72);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(
        play_repeated_game(rdg, always_defect(), always_defect(), gen).rounds,
        1u);
  }
}

TEST(Rollout, DeterministicPairingExactPayoffs) {
  // AD vs AC with delta = 0: exactly one round, payoffs (b, -c).
  const repeated_donation_game rdg{{3.0, 1.0}, 0.0};
  rng gen(73);
  const auto result =
      play_repeated_game(rdg, always_defect(), always_cooperate(), gen);
  EXPECT_DOUBLE_EQ(result.row_payoff, 3.0);
  EXPECT_DOUBLE_EQ(result.col_payoff, -1.0);
  EXPECT_EQ(result.row_cooperations, 0u);
  EXPECT_EQ(result.col_cooperations, 1u);
}

TEST(Rollout, MonteCarloMatchesExactEngineAcVsAd) {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.6};
  rng gen(74);
  const auto estimate =
      estimate_payoff(rdg, always_cooperate(), always_defect(), 60000, gen);
  const double exact =
      expected_payoff(rdg, always_cooperate(), always_defect());
  EXPECT_NEAR(estimate.mean(), exact, 4.0 * estimate.ci_half_width());
}

TEST(Rollout, MonteCarloMatchesExactEngineGtftPairs) {
  const rd_setting s{3.0, 1.0, 0.7, 0.8};
  const repeated_donation_game rdg = s.to_game();
  rng gen(75);
  const auto row = generous_tit_for_tat(0.3, s.s1);
  const auto col = generous_tit_for_tat(0.6, s.s1);
  const auto estimate = estimate_payoff(rdg, row, col, 80000, gen);
  EXPECT_NEAR(estimate.mean(), f_gtft_vs_gtft(s, 0.3, 0.6),
              4.0 * estimate.ci_half_width());
}

TEST(Rollout, MonteCarloMatchesExactEngineGtftVsAd) {
  const rd_setting s{3.0, 1.0, 0.7, 0.8};
  rng gen(76);
  const auto estimate = estimate_payoff(
      s.to_game(), generous_tit_for_tat(0.5, s.s1), always_defect(), 80000,
      gen);
  EXPECT_NEAR(estimate.mean(), f_gtft_vs_ad(s, 0.5),
              4.0 * estimate.ci_half_width());
}

TEST(Rollout, MonteCarloMatchesExactEngineWsls) {
  // Exercise a non-reactive strategy through the same machinery.
  const repeated_donation_game rdg{{4.0, 1.0}, 0.8};
  rng gen(77);
  const auto estimate = estimate_payoff(rdg, win_stay_lose_shift(0.9),
                                        tit_for_tat(0.5), 80000, gen);
  const double exact =
      expected_payoff(rdg, win_stay_lose_shift(0.9), tit_for_tat(0.5));
  EXPECT_NEAR(estimate.mean(), exact, 4.0 * estimate.ci_half_width());
}

TEST(Rollout, CooperationCountsMatchRate) {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.85};
  rng gen(78);
  const auto row = generous_tit_for_tat(0.2, 1.0);
  const auto col = always_defect();
  double coop_rounds = 0.0;
  double total_rounds = 0.0;
  for (int i = 0; i < 60000; ++i) {
    const auto result = play_repeated_game(rdg, row, col, gen);
    coop_rounds += static_cast<double>(result.row_cooperations);
    total_rounds += static_cast<double>(result.rounds);
  }
  // Expected cooperation mass per game / expected rounds per game.
  const double exact_rate = cooperation_rate(rdg, row, col);
  EXPECT_NEAR(coop_rounds / total_rounds, exact_rate, 0.01);
}

TEST(Rollout, InvalidInputsThrow) {
  rng gen(79);
  const repeated_donation_game bad_delta{{3.0, 1.0}, 1.0};
  EXPECT_THROW((void)play_repeated_game(bad_delta, always_cooperate(),
                                        always_cooperate(), gen),
               invariant_error);
  const repeated_donation_game rdg{{3.0, 1.0}, 0.5};
  EXPECT_THROW(
      (void)estimate_payoff(rdg, always_cooperate(), always_cooperate(), 0,
                            gen),
      invariant_error);
}

}  // namespace
}  // namespace ppg
