// The paper's headline trade-off (Theorems 2.7 + 2.9): increasing the local
// state space k tightens the equilibrium approximation (epsilon = O(1/k))
// but slows convergence (t_mix = O(k n log n)) and costs local memory.
// This example prints the trade-off table for a fixed admissible game
// setting.
#include <cstddef>
#include <iostream>

#include "ppg/core/equilibrium.hpp"
#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/theory.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;

  const double alpha = 0.1;
  const double beta = 0.2;   // lambda = 4 >= 2
  const double gamma = 0.7;
  const std::size_t n = 1000;

  // Construct a game setting satisfying the Theorem 2.9 regime (with the
  // corrected deviation-gain condition; see DESIGN.md).
  const auto instance = make_theorem_2_9_instance(beta, gamma, 0.5);
  const auto cond =
      check_theorem_2_9(instance.setting, beta, gamma, instance.g_max);
  std::cout << "Game setting: b = " << instance.setting.b
            << ", c = " << instance.setting.c
            << ", delta = " << fmt(instance.setting.delta, 3)
            << ", s1 = " << instance.setting.s1
            << ", g_max = " << fmt(instance.g_max, 3) << "\n";
  std::cout << "Theorem 2.9 regime satisfied: "
            << (cond.all() ? "yes" : "NO") << " (deviation coefficient "
            << fmt(cond.deviation_coefficient, 3) << ")\n\n";

  const auto pop = abg_population::from_fractions(n, alpha, beta, gamma);

  text_table table({"k", "epsilon (Psi)", "k*epsilon", "t_mix upper bound",
                    "t_mix lower bound", "agent memory (states)"});
  for (const std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const igt_equilibrium_analyzer analyzer(instance.setting, alpha, beta,
                                            gamma, k, instance.g_max);
    const auto de = analyzer.stationary_gap();
    table.add_row(
        {std::to_string(k), fmt_sci(de.epsilon, 3),
         fmt(de.epsilon * static_cast<double>(k), 4),
         fmt_count(static_cast<std::uint64_t>(
             igt_mixing_upper_bound(pop, k))),
         fmt_count(static_cast<std::uint64_t>(
             igt_mixing_lower_bound(pop, k))),
         std::to_string(2 + k)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: epsilon decays as O(1/k) (the k*epsilon column\n"
         "stabilizes) while both mixing-time bounds grow linearly in k —\n"
         "the time/space/approximation trade-off of the paper.\n";
  return 0;
}
