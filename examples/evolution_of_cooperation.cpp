// Evolution of cooperation under pairwise random interactions: sweeps the
// fraction beta of always-defect agents and reports how the population's
// stationary generosity and realized cooperation respond — the phenomenon
// the paper's introduction motivates (Axelrod-Hamilton via GTFT).
//
// Below beta = 1/2 the GTFT subpopulation is pushed toward maximum
// generosity (Proposition 2.8: g_avg ~ g_max(1 - O(1/k))); above it,
// defectors drag the population to stinginess at the same rate.
#include <cstddef>
#include <iostream>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/theory.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/games/closed_form.hpp"
#include "ppg/games/exact_payoff.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;

  const std::size_t n = 600;
  const std::size_t k = 8;
  const double g_max = 0.6;
  const rd_setting setting{4.0, 1.0, 0.8, 0.95};
  const auto grid = generosity_grid(k, g_max);

  std::cout << "Repeated donation game: b = " << setting.b
            << ", c = " << setting.c << ", delta = " << setting.delta
            << ", s1 = " << setting.s1 << "\n";
  std::cout << "k = " << k << " generosity levels on [0, " << g_max
            << "]; n = " << n << " agents, alpha = beta sweep\n\n";

  text_table table({"beta", "avg generosity (sim)", "+- 95% CI",
                    "avg generosity (P2.8)", "GTFT-vs-GTFT coop payoff",
                    "vs-AD bleed"});

  for (const double beta : {0.05, 0.15, 0.25, 0.35, 0.45, 0.5, 0.55, 0.65,
                            0.75}) {
    const double alpha = 0.1;
    const double gamma = 1.0 - alpha - beta;
    const auto pop = abg_population::from_fractions(n, alpha, beta, gamma);

    // Simulate 4 independent count-chain replicas to the stationary regime
    // on the batch engine; each replica's time-averaged mean generosity is
    // one observation.
    const auto burn =
        static_cast<std::uint64_t>(igt_mixing_upper_bound(pop, k));
    const auto batch = replicate_scalar(
        {4, 7, 0}, [&](const replica_context&, rng& gen) {
          igt_count_chain chain(pop, k, 0);
          chain.run(burn, gen);
          double total = 0.0;
          const std::uint64_t samples = 50'000;
          for (std::uint64_t i = 0; i < samples; ++i) {
            chain.step(gen);
            double g_bar = 0.0;
            for (std::size_t j = 0; j < k; ++j) {
              g_bar += grid[j] * static_cast<double>(chain.counts()[j]);
            }
            total += g_bar / static_cast<double>(pop.num_gtft);
          }
          return total / static_cast<double>(samples);
        });
    const double avg_g = batch.mean();

    const double predicted =
        average_stationary_generosity(pop.beta(), k, g_max);
    // What that generosity means in payoff terms.
    const double coop_payoff = f_gtft_vs_gtft(setting, avg_g, avg_g);
    const double bleed = f_gtft_vs_ad(setting, avg_g);

    table.add_row({fmt(pop.beta(), 3), fmt(avg_g, 4),
                   fmt(batch.ci_half_width(), 4), fmt(predicted, 4),
                   fmt(coop_payoff, 3), fmt(bleed, 3)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: below beta = 1/2 the dynamics sustain near-maximal\n"
         "generosity (cooperation evolves); above it, generosity collapses\n"
         "toward 0 at rate O(1/k) (Proposition 2.8). The 'bleed' column is\n"
         "the expected loss per encounter with a defector, the pressure\n"
         "that pulls generosity down.\n";
  return 0;
}
