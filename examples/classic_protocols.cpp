// Substrate demonstration: the population-protocol engines running three
// classic dynamics — approximate majority, leader election, and rumor
// spreading — with their textbook convergence behavior. Each block picks a
// different execution backend through sim_spec::make_engine (census,
// agent, batched, multibatch); all engines implement the same interaction law,
// so the choice is purely a speed/memory trade-off (see DESIGN.md §3).
#include <cmath>
#include <cstddef>
#include <iostream>

#include "ppg/pp/engine.hpp"
#include "ppg/pp/protocols/approximate_majority.hpp"
#include "ppg/pp/protocols/leader_election.hpp"
#include "ppg/pp/protocols/rumor.hpp"
#include "ppg/stats/summary.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;
  const std::size_t n = 1000;
  constexpr int trials = 20;

  std::cout << "Population protocol engine demo, n = " << n << " agents, "
            << trials << " trials each.\n\n";

  // --- Approximate majority from a 60/40 split, on the census engine.
  {
    const approximate_majority_protocol proto;
    std::vector<std::uint64_t> counts(3, 0);
    counts[approximate_majority_protocol::state_x] = 3 * n / 5;
    counts[approximate_majority_protocol::state_y] = 2 * n / 5;
    const sim_spec spec(proto, counts);
    running_summary steps;
    int majority_wins = 0;
    for (int t = 0; t < trials; ++t) {
      rng gen(100 + static_cast<std::uint64_t>(t));
      const auto sim = spec.make_engine(engine_kind::census, gen);
      sim->run_until(approximate_majority_protocol::has_consensus,
                     200'000'000);
      steps.add(sim->parallel_time());
      if (sim->census().count(approximate_majority_protocol::state_x) ==
          sim->population_size()) {
        ++majority_wins;
      }
    }
    std::cout << "Approximate majority (60/40 split, census engine):\n"
              << "  consensus in " << fmt(steps.mean(), 1) << " +- "
              << fmt(steps.ci_half_width(), 1)
              << " parallel time (theory: O(log n) = "
              << fmt(std::log(static_cast<double>(n)), 1) << ")\n"
              << "  initial majority won " << majority_wins << "/" << trials
              << " trials\n\n";
  }

  // --- Leader election from all-leaders, on the agent engine.
  {
    const leader_election_protocol proto;
    const sim_spec spec(
        proto, population(n, leader_election_protocol::state_leader, 2));
    running_summary steps;
    for (int t = 0; t < trials; ++t) {
      rng gen(200 + static_cast<std::uint64_t>(t));
      const auto sim = spec.make_engine(engine_kind::agent, gen);
      sim->run_until(leader_election_protocol::has_unique_leader,
                     200'000'000);
      steps.add(sim->parallel_time());
    }
    std::cout << "Leader election (pairwise demotion, agent engine):\n"
              << "  unique leader in " << fmt(steps.mean(), 1) << " +- "
              << fmt(steps.ci_half_width(), 1)
              << " parallel time (theory: Theta(n) = " << n << ")\n\n";
  }

  // --- Rumor spreading from a single informed agent, on the batched
  // engine: once few susceptible agents remain, almost every interaction is
  // an identity the geometric batch skips.
  {
    const rumor_protocol proto;
    std::vector<std::uint64_t> counts(2, 0);
    counts[rumor_protocol::state_susceptible] = n - 1;
    counts[rumor_protocol::state_informed] = 1;
    const sim_spec spec(proto, counts);
    running_summary steps;
    for (int t = 0; t < trials; ++t) {
      rng gen(300 + static_cast<std::uint64_t>(t));
      const auto sim = spec.make_engine(engine_kind::batched, gen);
      sim->run_until(rumor_protocol::all_informed, 200'000'000);
      steps.add(sim->parallel_time());
    }
    std::cout << "Rumor spreading (one-way push, batched engine):\n"
              << "  fully informed in " << fmt(steps.mean(), 1) << " +- "
              << fmt(steps.ci_half_width(), 1)
              << " parallel time (theory: Theta(log n) growth + coupon tail)"
              << "\n";
  }
  return 0;
}
