// Substrate demonstration: the population-protocol engine running three
// classic dynamics — approximate majority, leader election, and rumor
// spreading — with their textbook convergence behavior.
#include <cmath>
#include <cstddef>
#include <iostream>

#include "ppg/pp/protocols/approximate_majority.hpp"
#include "ppg/pp/protocols/leader_election.hpp"
#include "ppg/pp/protocols/rumor.hpp"
#include "ppg/stats/summary.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;
  const std::size_t n = 1000;
  constexpr int trials = 20;

  std::cout << "Population protocol engine demo, n = " << n << " agents, "
            << trials << " trials each.\n\n";

  // --- Approximate majority from a 60/40 split.
  {
    running_summary steps;
    int majority_wins = 0;
    for (int t = 0; t < trials; ++t) {
      std::vector<agent_state> states;
      states.insert(states.end(), 3 * n / 5,
                    approximate_majority_protocol::state_x);
      states.insert(states.end(), 2 * n / 5,
                    approximate_majority_protocol::state_y);
      const approximate_majority_protocol proto;
      simulation sim(proto, population(std::move(states), 3),
                     rng(100 + static_cast<std::uint64_t>(t)));
      sim.run_until(approximate_majority_protocol::has_consensus,
                    200'000'000);
      steps.add(sim.parallel_time());
      if (sim.agents().count(approximate_majority_protocol::state_x) ==
          sim.agents().size()) {
        ++majority_wins;
      }
    }
    std::cout << "Approximate majority (60/40 split):\n"
              << "  consensus in " << fmt(steps.mean(), 1) << " +- "
              << fmt(steps.ci_half_width(), 1)
              << " parallel time (theory: O(log n) = "
              << fmt(std::log(static_cast<double>(n)), 1) << ")\n"
              << "  initial majority won " << majority_wins << "/" << trials
              << " trials\n\n";
  }

  // --- Leader election from all-leaders.
  {
    running_summary steps;
    for (int t = 0; t < trials; ++t) {
      const leader_election_protocol proto;
      simulation sim(
          proto, population(n, leader_election_protocol::state_leader, 2),
          rng(200 + static_cast<std::uint64_t>(t)));
      sim.run_until(leader_election_protocol::has_unique_leader,
                    200'000'000);
      steps.add(sim.parallel_time());
    }
    std::cout << "Leader election (pairwise demotion):\n"
              << "  unique leader in " << fmt(steps.mean(), 1) << " +- "
              << fmt(steps.ci_half_width(), 1)
              << " parallel time (theory: Theta(n) = " << n << ")\n\n";
  }

  // --- Rumor spreading from a single informed agent.
  {
    running_summary steps;
    for (int t = 0; t < trials; ++t) {
      std::vector<agent_state> states(n, rumor_protocol::state_susceptible);
      states[0] = rumor_protocol::state_informed;
      const rumor_protocol proto;
      simulation sim(proto, population(std::move(states), 2),
                     rng(300 + static_cast<std::uint64_t>(t)));
      sim.run_until(rumor_protocol::all_informed, 200'000'000);
      steps.add(sim.parallel_time());
    }
    std::cout << "Rumor spreading (one-way push):\n"
              << "  fully informed in " << fmt(steps.mean(), 1) << " +- "
              << fmt(steps.ci_half_width(), 1)
              << " parallel time (theory: Theta(log n) growth + coupon tail)"
              << "\n";
  }
  return 0;
}
