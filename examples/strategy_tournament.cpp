// Axelrod-style round-robin tournament of memory-one strategies in the
// repeated donation game, computed with the *exact* payoff engine (no
// sampling noise), followed by the equilibrium lens: which strategy mixes
// are distributional equilibria (Definition 1.1)?
#include <cstddef>
#include <iostream>
#include <vector>

#include "ppg/core/equilibrium.hpp"
#include "ppg/games/exact_payoff.hpp"
#include "ppg/linalg/matrix.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;

  const repeated_donation_game rdg{{3.0, 1.0}, 0.9};
  const double s1 = 0.99;  // nearly-cooperative openings, a la Axelrod

  struct entrant {
    std::string name;
    memory_one_strategy strategy;
  };
  const std::vector<entrant> entrants = {
      {"AC", always_cooperate()},
      {"AD", always_defect()},
      {"TFT", tit_for_tat(s1)},
      {"GTFT(0.1)", generous_tit_for_tat(0.1, s1)},
      {"GTFT(0.3)", generous_tit_for_tat(0.3, s1)},
      {"GRIM", grim(s1)},
      {"WSLS", win_stay_lose_shift(s1)},
  };

  std::cout << "Round-robin repeated donation game tournament\n"
            << "b = " << rdg.game.b << ", c = " << rdg.game.c
            << ", delta = " << rdg.delta << " (expected "
            << fmt(rdg.expected_rounds(), 1) << " rounds per match)\n\n";

  // Exact pairwise payoff matrix.
  const std::size_t s = entrants.size();
  matrix payoffs(s, s);
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      payoffs(i, j) =
          expected_payoff(rdg, entrants[i].strategy, entrants[j].strategy);
    }
  }

  std::vector<std::string> headers = {"strategy"};
  for (const auto& e : entrants) headers.push_back("vs " + e.name);
  headers.push_back("total");
  text_table table(headers);
  std::vector<double> totals(s, 0.0);
  for (std::size_t i = 0; i < s; ++i) {
    std::vector<std::string> row = {entrants[i].name};
    for (std::size_t j = 0; j < s; ++j) {
      row.push_back(fmt(payoffs(i, j), 2));
      totals[i] += payoffs(i, j);
    }
    row.push_back(fmt(totals[i], 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::size_t winner = 0;
  for (std::size_t i = 1; i < s; ++i) {
    if (totals[i] > totals[winner]) winner = i;
  }
  std::cout << "\nTournament winner (uniform opponent pool): "
            << entrants[winner].name << "\n\n";

  // Equilibrium lens: evaluate the Definition 1.1 gap of some natural
  // population mixes over this strategy pool.
  const auto u2 = payoffs.transposed();  // symmetric game
  text_table de_table({"population mix", "epsilon (Def 1.1)"});
  auto report = [&](const std::string& name, std::vector<double> mu) {
    const auto gap = general_de_gap(payoffs, u2, mu);
    de_table.add_row({name, fmt(gap.epsilon(), 3)});
  };
  report("all AD", {0, 1, 0, 0, 0, 0, 0});
  report("all AC", {1, 0, 0, 0, 0, 0, 0});
  report("all TFT", {0, 0, 1, 0, 0, 0, 0});
  report("all GTFT(0.3)", {0, 0, 0, 0, 1, 0, 0});
  report("uniform", std::vector<double>(s, 1.0 / static_cast<double>(s)));
  report("half TFT half GTFT(0.1)", {0, 0, 0.5, 0.5, 0, 0, 0});
  de_table.print(std::cout);

  std::cout << "\nReading: pure defection is always an equilibrium of the\n"
               "one-shot game, but with delta = 0.9 the repeated game makes\n"
               "reciprocal strategies self-enforcing: deviating from a\n"
               "TFT/GTFT population to any strategy in the pool gains\n"
               "(almost) nothing, while all-AC is exploitable.\n";
  return 0;
}
