// Driving ppg-serve's routing core in-process: the serve_app is the whole
// service minus the socket, so a program can embed it — or, as here, prove
// the service's central promise without any networking: a session advanced
// in fair-scheduler slices, interleaved with other sessions, is
// bit-identical (checkpoint bytes and all) to the same recipe run solo
// with the same chunk schedule, and a checkpoint served over the API
// restores into a session that continues the trajectory exactly.
//
// For the daemon itself see `ppg-serve` (README "Running the service");
// the wire protocol and fairness contract are DESIGN.md §10.
//
// Build & run:   ./build/examples/serve_session
#include <algorithm>
#include <iostream>
#include <string>

#include "ppg/pp/checkpoint.hpp"
#include "ppg/serve/server.hpp"

int main() {
  using namespace ppg;

  serve_config config;
  config.chunk = 4096;  // small slices so the interleaving is real
  serve_app app(config);

  const auto post = [&app](const std::string& target,
                           const std::string& body) {
    http_request request;
    request.method = "POST";
    request.target = target;
    request.body = body;
    return app.handle(request);
  };
  const auto get = [&app](const std::string& target) {
    http_request request;
    request.method = "GET";
    request.target = target;
    return app.handle(request);
  };

  // Two sessions sharing the scheduler (and, being the same protocol, one
  // compiled kernel): the second create reports a warm cache hit.
  const char* recipe_text =
      R"({"protocol": {"name": "approximate-majority", "params": {}},
          "initial_counts": [600, 400, 0], "sampling": "distinct"})";
  for (const std::uint64_t seed : {7u, 8u}) {
    json body = json::object();
    body["recipe"] = json::parse(recipe_text);
    body["engine"] = "multibatch";
    body["seed"] = seed;
    const http_response created = post("/sessions", body.dump_string(false));
    std::cout << "POST /sessions -> " << created.status << " "
              << created.body << "\n";
  }

  // Interleave advances: s1 and s2 alternate, slicing through the shared
  // scheduler in 4096-interaction chunks.
  for (int round = 0; round < 4; ++round) {
    for (const char* id : {"s1", "s2"}) {
      post(std::string("/sessions/") + id + "/advance",
           R"({"interactions": 50000})");
    }
  }
  std::cout << "advanced s1 and s2 by 4 x 50000 interactions, interleaved\n";

  // The solo twin replays s1's exact chunk schedule alone.
  sim_recipe recipe = sim_recipe::from_json(json::parse(recipe_text));
  rng gen(7);
  const auto solo = recipe.spec().make_engine(engine_kind::multibatch, gen);
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t left = 50000; left > 0;) {
      const std::uint64_t slice = std::min<std::uint64_t>(config.chunk, left);
      solo->run(slice);
      left -= slice;
    }
  }

  const http_response served = get("/sessions/s1/checkpoint");
  const std::string solo_bytes =
      save_checkpoint(recipe, *solo).dump_string(true);
  const bool interleaved_matches = served.body == solo_bytes;
  std::cout << "served checkpoint == solo checkpoint bytes: "
            << (interleaved_matches ? "yes" : "NO") << "\n";

  // Round-trip the served bytes through /sessions/restore and advance the
  // clone and the original identically: still byte-identical.
  const http_response restored = post("/sessions/restore", served.body);
  std::cout << "POST /sessions/restore -> " << restored.status << " "
            << restored.body << "\n";
  const std::string clone =
      json::parse(restored.body).find("id")->as_string();
  for (const std::string& id : {std::string("s1"), clone}) {
    post("/sessions/" + id + "/advance", R"({"interactions": 100000})");
  }
  const bool clone_matches = get("/sessions/s1/checkpoint").body ==
                             get("/sessions/" + clone + "/checkpoint").body;
  std::cout << "clone stays bit-identical after advancing: "
            << (clone_matches ? "yes" : "NO") << "\n";
  std::cout << "GET /stats -> " << get("/stats").body << "\n";

  return interleaved_matches && clone_matches ? 0 : 1;
}
