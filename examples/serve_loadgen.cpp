// Load generator / crash-tolerance driver for a live ppg-serve daemon:
// S worker threads each own one durable session and push it through R
// rounds of advances using the retrying client (ppg/serve/client.hpp).
// Because every worker goes through session_handle, the daemon may be
// killed and rebooted mid-run — workers reconcile or restore from their
// last checkpoint and keep going; the summary reports how often they had
// to.
//
// Run a daemon first, e.g.:
//   ./build/serve/ppg-serve --port 8080 --store /tmp/ppg-store &
//   ./build/examples/serve_loadgen --port 8080 --sessions 8 --rounds 20
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ppg/serve/client.hpp"

namespace {

struct worker_report {
  bool ok = false;
  std::uint64_t rounds_done = 0;
  std::uint64_t recoveries = 0;
  ppg::client_stats transport;
  std::string error;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "serve_loadgen: " << message << "\n"
            << "usage: serve_loadgen --port N [--sessions S] [--rounds R]\n"
            << "                     [--interactions N] [--seed N]\n"
            << "                     [--checkpoint-every K]\n";
  std::exit(2);
}

std::uint64_t parse_count(const std::string& flag, const char* text) {
  if (text == nullptr) usage_error(flag + " needs a value");
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    usage_error(flag + ": '" + text + "' is not a number");
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::uint64_t sessions = 4;
  std::uint64_t rounds = 10;
  std::uint64_t interactions = 20'000;
  std::uint64_t seed = 1;
  std::uint64_t checkpoint_every = 4;  ///< refresh checkpoint every K rounds
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--port") {
      port = static_cast<std::uint16_t>(parse_count(flag, value));
      ++i;
    } else if (flag == "--sessions") {
      sessions = parse_count(flag, value);
      ++i;
    } else if (flag == "--rounds") {
      rounds = parse_count(flag, value);
      ++i;
    } else if (flag == "--interactions") {
      interactions = parse_count(flag, value);
      ++i;
    } else if (flag == "--seed") {
      seed = parse_count(flag, value);
      ++i;
    } else if (flag == "--checkpoint-every") {
      checkpoint_every = parse_count(flag, value);
      ++i;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }
  if (port == 0) usage_error("--port is required");
  if (sessions == 0 || rounds == 0 || interactions == 0) {
    usage_error("--sessions, --rounds, and --interactions must be >= 1");
  }

  const char* recipe_text =
      R"({"protocol": {"name": "approximate-majority", "params": {}},
          "initial_counts": [6000, 4000, 0], "sampling": "distinct"})";
  const ppg::json recipe = ppg::json::parse(recipe_text);

  std::vector<worker_report> reports(sessions);
  std::vector<std::thread> workers;
  workers.reserve(sessions);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t w = 0; w < sessions; ++w) {
    workers.emplace_back([&, w] {
      worker_report& report = reports[w];
      try {
        ppg::client_config config;
        config.port = port;
        config.jitter_seed = seed * 1000 + w;
        ppg::serve_client client(config);
        ppg::session_handle session = ppg::session_handle::create(
            client, recipe, "multibatch", seed + w);
        for (std::uint64_t round = 1; round <= rounds; ++round) {
          session.advance(interactions);
          ++report.rounds_done;
          if (checkpoint_every != 0 && round % checkpoint_every == 0) {
            session.refresh_checkpoint();
          }
        }
        report.recoveries = session.recoveries();
        report.transport = client.stats();
        report.ok = true;
      } catch (const std::exception& error) {
        report.error = error.what();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::uint64_t rounds_done = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t failed = 0;
  for (const worker_report& report : reports) {
    rounds_done += report.rounds_done;
    recoveries += report.recoveries;
    retries += report.transport.retries;
    reconnects += report.transport.reconnects;
    if (!report.ok) {
      ++failed;
      std::cerr << "serve_loadgen: worker failed: " << report.error << "\n";
    }
  }

  const double session_rate =
      elapsed > 0.0 ? static_cast<double>(sessions) / elapsed : 0.0;
  const double advance_rate =
      elapsed > 0.0 ? static_cast<double>(rounds_done) / elapsed : 0.0;
  std::cout << "serve_loadgen: " << sessions << " sessions x " << rounds
            << " rounds x " << interactions << " interactions in " << elapsed
            << "s\n"
            << "  sessions/sec:  " << session_rate << "\n"
            << "  advances/sec:  " << advance_rate << "\n"
            << "  recoveries:    " << recoveries << "\n"
            << "  retries:       " << retries << "\n"
            << "  reconnects:    " << reconnects << "\n"
            << "  failed:        " << failed << "\n";
  return failed == 0 ? 0 : 1;
}
