// Resuming a run: write a checkpoint file mid-simulation, read it back as a
// fresh process would, and verify the continued trajectory is bit-identical
// to never having stopped.
//
// The checkpoint file is self-describing: its spec header carries the
// protocol by registry name + params, the initial census, and the sampling
// discipline, so restore_checkpoint needs no out-of-band context — the
// recipe below could equally be a ppg-serve session spec. The engine
// snapshot carries the complete dynamical state: the census, the
// interaction counter, the multibatch engine's residual-round carry, and
// the full 256-bit RNG position.
//
// Build & run:   ./build/examples/checkpoint_resume [checkpoint.json]
// Exits nonzero if the resumed trajectory diverges from the uninterrupted
// one — this binary doubles as the CI checkpoint smoke test.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ppg/pp/checkpoint.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/util/json.hpp"
#include "ppg/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ppg;
  const std::string path = argc > 1 ? argv[1] : "checkpoint.json";

  // The recipe: k = 3 IGT dynamics on 10^5 agents, uniform over the five
  // strategies {AC, AD, g_1, g_2, g_3}, on the multibatch engine — the
  // backend with the most checkpoint-sensitive state (rounds are aggregated
  // across ~sqrt(n) interactions, and a run() budget can split one).
  const sim_recipe recipe(
      "igt", json::parse(R"({"k": 3, "discipline": "one_way"})"),
      std::vector<std::uint64_t>(5, 20'000), pair_sampling::distinct);
  constexpr std::uint64_t horizon = 2'000'000;
  constexpr std::uint64_t cut = 1'000'000;
  constexpr std::uint64_t seed = 20240722;

  // Twin A runs to the horizon without stopping.
  rng gen_full(seed);
  const auto full = recipe.spec().make_engine(engine_kind::multibatch,
                                              gen_full);
  full->run(cut);
  full->run(horizon - cut);

  // Twin B stops at the cut and checkpoints to disk.
  rng gen_cut(seed);
  const auto interrupted = recipe.spec().make_engine(engine_kind::multibatch,
                                                     gen_cut);
  interrupted->run(cut);
  {
    std::ofstream out(path);
    save_checkpoint(recipe, *interrupted).dump(out);
    out << '\n';
  }
  std::cout << "checkpointed " << interrupted->interactions()
            << " interactions to " << path << "\n";

  // A "fresh process": everything below uses only the file's bytes.
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  restored_sim resumed = restore_checkpoint(json::parse(buffer.str()));
  std::cout << "restored " << resumed.recipe.protocol_name() << " run at "
            << resumed.engine->interactions() << " interactions on the "
            << engine_kind_name(resumed.engine->kind()) << " engine\n";
  resumed.engine->run(horizon - cut);

  // Bit-exact resume: not just the census — the complete serialized state,
  // RNG position included, must match the uninterrupted twin's.
  const census_view a = full->census();
  const census_view b = resumed.engine->census();
  bool ok = resumed.engine->interactions() == full->interactions();
  for (agent_state s = 0; ok && s < a.num_state_kinds(); ++s) {
    ok = a.count(s) == b.count(s);
  }
  const bool state_ok = resumed.engine->save_state() == full->save_state();

  std::cout << "final census (resumed):      ";
  for (agent_state s = 0; s < b.num_state_kinds(); ++s) {
    std::cout << b.count(s) << (s + 1 < b.num_state_kinds() ? " " : "\n");
  }
  std::cout << "final census (uninterrupted): ";
  for (agent_state s = 0; s < a.num_state_kinds(); ++s) {
    std::cout << a.count(s) << (s + 1 < a.num_state_kinds() ? " " : "\n");
  }
  if (!ok || !state_ok) {
    std::cerr << "FAIL: resumed trajectory diverged ("
              << (ok ? "snapshot state mismatch" : "census mismatch")
              << ")\n";
    return 1;
  }
  std::cout << "OK: resumed trajectory bit-identical through " << horizon
            << " interactions\n";
  return 0;
}
