// The (k, a, b, m)-Ehrenfest process on its own: the classic two-urn model
// and the paper's weighted high-dimensional generalization, with an exact
// TV-decay curve illustrating convergence (and, for k = 2, the cutoff
// behavior around (1/2) m log m discussed in Remark 2.6).
#include <cmath>
#include <cstddef>
#include <iostream>

#include "ppg/ehrenfest/bounds.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/ehrenfest/stationary.hpp"
#include "ppg/markov/mixing.hpp"
#include "ppg/util/table.hpp"

namespace {

void print_tv_curve(const ppg::tv_curve& curve, double scale_reference) {
  using namespace ppg;
  for (std::size_t i = 0; i < curve.times.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(curve.tv[i] * 50.0);
    std::cout << "  t = " << fmt(static_cast<double>(curve.times[i]) /
                                     scale_reference,
                                 2)
              << " * (m log m)/2   TV = " << fmt(curve.tv[i], 3) << "  "
              << std::string(bar_len, '#') << "\n";
  }
}

}  // namespace

int main() {
  using namespace ppg;

  // --- Part 1: the classic two-urn Ehrenfest model (k = 2, a = b = 1/4).
  const ehrenfest_params classic{2, 0.25, 0.25, 60};
  std::cout << "Classic two-urn Ehrenfest model: m = " << classic.m
            << " balls, lazy symmetric moves.\n";
  std::cout << "Stationary law: Binomial(m, 1/2) (Remark A.2).\n\n";

  const simplex_index index2(classic.k, classic.m);
  const auto chain2 = build_ehrenfest_chain(classic, index2);
  const auto pi2 = exact_stationary_vector(classic, index2);
  const auto corners2 = find_corner_states(index2);

  // Cutoff (Remark 2.6): TV stays near 1, then collapses around
  // (1/2) m log m *moves*; our chain moves with probability (a+b) per step,
  // so the reference time is (1/2) m log m / (a + b).
  const double md = static_cast<double>(classic.m);
  const double reference =
      0.5 * md * std::log(md) / (classic.a + classic.b);
  std::vector<std::size_t> times;
  for (const double f : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.1, 1.3, 1.6, 2.0}) {
    times.push_back(static_cast<std::size_t>(f * reference));
  }
  const auto curve = tv_decay_curve(chain2, corners2.bottom, pi2, times);
  std::cout << "TV distance from the all-in-one-urn start (cutoff at ~1.0):\n";
  print_tv_curve(curve, reference);

  // --- Part 2: the weighted high-dimensional generalization.
  std::cout << "\nWeighted high-dimensional process: k = 5 urns in a row,\n"
               "up-moves (a = 0.3) twice as likely as down-moves (b = "
               "0.15).\n\n";
  const ehrenfest_params weighted{5, 0.3, 0.15, 40};
  std::cout << "Theorem 2.4 stationary urn probabilities (p_j ∝ 2^{j-1}):\n";
  const auto probs = ehrenfest_stationary_probs(weighted);
  text_table table({"urn", "p_j", "E[balls]"});
  const auto mean = ehrenfest_stationary_mean(weighted);
  for (std::size_t j = 0; j < weighted.k; ++j) {
    table.add_row({std::to_string(j + 1), fmt(probs[j], 4),
                   fmt(mean[j], 2)});
  }
  table.print(std::cout);

  std::cout << "\nMixing bounds (Theorem 2.5) for this process:\n";
  std::cout << "  diameter lower bound  t_mix >= " << fmt_count(
                   static_cast<std::uint64_t>(mixing_lower_bound(weighted)))
            << " steps\n";
  std::cout << "  coupling upper bound  t_mix <= " << fmt_count(
                   static_cast<std::uint64_t>(mixing_upper_bound(weighted)))
            << " steps\n";

  const simplex_index index5(weighted.k, weighted.m);
  const auto chain5 = build_ehrenfest_chain(weighted, index5);
  const auto pi5 = exact_stationary_vector(weighted, index5);
  const auto corners5 = find_corner_states(index5);
  const auto measured = mixing_time_from_starts(
      chain5, {corners5.bottom, corners5.top}, pi5, 0.25, 10'000'000);
  std::cout << "  measured (exact TV from worst corner): "
            << fmt_count(measured) << " steps\n";
  return 0;
}
