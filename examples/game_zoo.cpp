// game_zoo: the generic game-dynamics API end to end. Build matrix games
// (classics plus the paper's own repeated-game strategy set), compose them
// with update rules into population protocols, run them on the census
// engine, and cross-check each run against its mean-field ODE — all without
// writing a single protocol class.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "ppg/games/game_matrix.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/mean_field.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/util/table.hpp"

namespace {

using namespace ppg;

void print_matrix(const game_matrix& game) {
  std::vector<std::string> headers = {""};
  for (const auto& name : game.strategy_names()) headers.push_back(name);
  text_table out(headers);
  for (std::size_t i = 0; i < game.num_strategies(); ++i) {
    std::vector<std::string> row = {game.strategy_name(i)};
    for (std::size_t j = 0; j < game.num_strategies(); ++j) {
      row.push_back(fmt(game.payoff(i, j), 3));
    }
    out.add_row(row);
  }
  out.print(std::cout);
}

// Runs (game, rule) on the census engine and compares the long-run census
// with the mean-field fixed point reached from the same initial fractions.
void run_and_compare(const std::string& label, const game_matrix& game,
                     const std::shared_ptr<const update_rule>& rule,
                     const std::vector<double>& initial_fractions,
                     std::uint64_t seed) {
  const std::uint64_t n = 100'000;
  const game_protocol proto(game, rule);
  const mean_field_ode ode(proto);
  const auto fixed =
      relax_to_fixed_point(ode, initial_fractions, 0.02, 1e-10, 2000.0);

  std::vector<std::uint64_t> counts(game.num_strategies());
  std::uint64_t assigned = 0;
  for (std::size_t s = 0; s + 1 < counts.size(); ++s) {
    counts[s] = static_cast<std::uint64_t>(initial_fractions[s] *
                                           static_cast<double>(n));
    assigned += counts[s];
  }
  counts.back() = n - assigned;
  const sim_spec spec(proto, counts);
  rng gen(seed);
  const auto engine = spec.make_engine(engine_kind::census, gen);
  engine->run(50 * n);  // parallel time 50
  double mean_abs_gap = 0.0;
  std::cout << label << " (rule: " << rule->name() << ")\n";
  text_table out({"strategy", "initial", "census @ t=50", "mean-field limit"});
  for (std::size_t s = 0; s < game.num_strategies(); ++s) {
    const double simulated =
        engine->census().fraction(static_cast<agent_state>(s));
    mean_abs_gap += std::abs(simulated - fixed.state[s]);
    out.add_row({game.strategy_name(s), fmt(initial_fractions[s], 3),
                 fmt(simulated, 4), fmt(fixed.state[s], 4)});
  }
  out.print(std::cout);
  std::cout << "  mean |census - ODE| = "
            << fmt(mean_abs_gap / static_cast<double>(game.num_strategies()),
                   5);
  if (fixed.converged) {
    std::cout << "  (ODE converged in " << fixed.iterations
              << " RK4 steps, residual " << fmt_sci(fixed.residual) << ")";
  } else {
    std::cout << "  (ODE not at a fixed point after " << fixed.iterations
              << " RK4 steps: cycling dynamics — the comparison point is "
                 "where integration stopped, not a prediction)";
  }
  std::cout << "\n\n";
}

}  // namespace

int main() {
  std::cout << "== The game zoo ==\n\n";

  std::cout << "Donation game (b=2, c=1):\n";
  const auto donation = donation_matrix();
  print_matrix(donation);
  run_and_compare("Defection sweeps under imitation", donation,
                  std::make_shared<imitate_if_better_rule>(), {0.9, 0.1},
                  11);

  std::cout << "Hawk-dove (v=1, c=2):\n";
  const auto hd = hawk_dove_matrix(1.0, 2.0);
  print_matrix(hd);
  run_and_compare("Interior equilibrium under logit response", hd,
                  std::make_shared<logit_response_rule>(0.25), {0.9, 0.1},
                  12);

  std::cout << "Rock-paper-scissors (zero-sum):\n";
  const auto rps = rock_paper_scissors_matrix();
  print_matrix(rps);
  run_and_compare("No fixed point: both orbit forever (snapshots at t=50 "
                  "disagree; see bench g1 for the matched periods)",
                  rps,
                  std::make_shared<proportional_imitation_rule>(1.0),
                  {0.5, 0.25, 0.25}, 13);

  std::cout << "The paper's strategy set {AC, AD, g_1..g_4} "
               "(exact repeated-game payoffs):\n";
  const auto igt = igt_game_matrix(4);
  print_matrix(igt);
  run_and_compare("k-IGT ladder over the generosity grid", igt,
                  std::make_shared<igt_ladder_rule>(4),
                  {0.1, 0.25, 0.65, 0.0, 0.0, 0.0}, 14);

  std::cout << "Every composition above compiled to the same kernel\n"
               "contract and ran unchanged on the census engine; swap\n"
               "engine_kind::census for agent or batched to taste.\n";
  return 0;
}
