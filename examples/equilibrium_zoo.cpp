// equilibrium_zoo: the solver stack end to end. Enumerate the symmetric
// Nash equilibria of classic games with stability labels, read the
// best-response structure, trace the logit homotopy to see which
// equilibrium the principal branch selects, then close the loop: run an
// engine and certify its time-averaged census against the rule's own
// predicted limit — including a game where the prediction is rightly
// refused because the dynamics never settle.
#include <iostream>
#include <memory>
#include <vector>

#include "ppg/games/game_matrix.hpp"
#include "ppg/games/solver/certify.hpp"
#include "ppg/games/solver/enumeration.hpp"
#include "ppg/games/solver/homotopy.hpp"
#include "ppg/games/update_rule.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/util/table.hpp"

namespace {

using namespace ppg;

void print_equilibria(const game_matrix& game) {
  const auto equilibria = enumerate_symmetric_equilibria(game);
  text_table out({"equilibrium", "payoff", "stability", "residual"});
  for (const auto& eq : equilibria) {
    std::string mix = "(";
    for (std::size_t s = 0; s < eq.mix.size(); ++s) {
      if (s > 0) mix += " ";
      mix += fmt(eq.mix[s], 3);
    }
    mix += eq.pure ? ") pure" : ") mixed";
    out.add_row({mix, fmt(eq.payoff, 3),
                 equilibrium_stability_name(eq.stability),
                 fmt_sci(eq.residual)});
  }
  out.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "== Computing and certifying equilibria ==\n\n";

  // 1. Support enumeration: the full symmetric Nash set, classified.
  std::cout << "Stag hunt (stag=4 payoff, hare=3 safe): three equilibria —\n"
               "two strict pure ESS and the unstable mixed threshold "
               "between\ntheir basins.\n";
  const auto stag = stag_hunt_matrix();
  print_equilibria(stag);

  std::cout << "\nRock-paper-scissors: one interior point; zero-sum games\n"
               "are never strictly stable, only neutrally so.\n";
  const auto rps = rock_paper_scissors_matrix();
  print_equilibria(rps);

  // 2. Best-response structure: RPS cycles, stag hunt does not.
  const auto rps_cycles = find_best_response_cycles(rps);
  std::cout << "\nRPS best-response graph has a cycle of length "
            << rps_cycles.cycles.front().size()
            << " (rock -> paper -> scissors -> rock); the stag hunt's\n"
               "best-response graph has "
            << find_best_response_cycles(stag).cycles.size()
            << " fixed points and no cycle.\n";

  // 3. The logit homotopy: follow the quantal-response branch from the
  // high-temperature barycenter down to (near) zero temperature. Where
  // enumeration lists every equilibrium, the homotopy *selects* one — on
  // the stag hunt, the risk-dominant hare corner, not the payoff-dominant
  // stag corner.
  const auto path = follow_logit_path(stag);
  std::cout << "\nLogit homotopy on the stag hunt: " << path.path.size()
            << " temperature rungs, " << path.total_iterations
            << " Newton iterations, final residual "
            << fmt_sci(path.residual) << ".\n"
            << "Selected mix (stag, hare) = (" << fmt(path.mix[0], 4)
            << ", " << fmt(path.mix[1], 4)
            << ") — risk dominance, not payoff dominance.\n";

  // 4. Certification: compute the equilibrium set once per recipe, then
  // hold any engine's time-averaged census against the rule's predicted
  // limit.
  const std::uint64_t n = 100'000;
  const auto hd = hawk_dove_matrix(1.0, 2.0);
  const equilibrium_certifier certifier(
      hd, std::make_shared<logit_response_rule>(0.25));
  const game_protocol proto(hd, std::make_shared<logit_response_rule>(0.25),
                            revision_discipline::one_way);
  const sim_spec spec(proto, {n / 2, n - n / 2});
  rng gen(21);
  const auto engine = spec.make_engine(engine_kind::multibatch, gen);
  engine->run(20 * n);  // burn-in, parallel time 20
  std::vector<double> mean(hd.num_strategies(), 0.0);
  const std::uint64_t strides = 300;
  for (std::uint64_t i = 0; i < strides; ++i) {
    engine->run(n / 10);
    const auto fractions = engine->census().fractions();
    for (std::size_t s = 0; s < mean.size(); ++s) mean[s] += fractions[s];
  }
  for (auto& x : mean) x /= static_cast<double>(strides);
  const auto verdict = certifier.certify(mean);
  std::cout << "\nHawk-dove on the multibatch engine (n = " << n << "):\n"
            << "  time-averaged census = (" << fmt(mean[0], 4) << ", "
            << fmt(mean[1], 4) << ")\n"
            << "  nearest equilibrium  = #" << verdict.nearest_equilibrium
            << " at TV " << fmt(verdict.tv_to_equilibrium, 4)
            << " (the mixed ESS at hawk = v/c)\n"
            << "  TV to rule's limit   = "
            << fmt(verdict.tv_to_prediction, 4) << ", census Nash gap "
            << fmt_sci(verdict.nash_gap) << "\n"
            << "  certified: " << (verdict.certified ? "yes" : "no")
            << " (prediction trusted, census within tolerance)\n";

  // 5. The refusal case: proportional imitation on a weighted zero-sum RPS
  // is the replicator flow, whose orbits circle the interior equilibrium
  // forever. The relaxation never converges, so the certifier reports
  // distances but refuses to certify anything — even the exact
  // equilibrium itself.
  const game_matrix spun(
      {"rock", "paper", "scissors"},
      {0.0, -1.0, 2.0, 1.0, 0.0, -3.0, -2.0, 3.0, 0.0});
  certify_options options;
  options.relax_t_max = 200.0;
  const equilibrium_certifier untrusted(
      spun, std::make_shared<proportional_imitation_rule>(1.0),
      revision_discipline::one_way, options);
  std::cout << "\nWeighted zero-sum RPS under proportional imitation:\n"
            << "  prediction trusted: "
            << (untrusted.prediction_trusted() ? "yes" : "no")
            << " (replicator orbits close around the interior point;\n"
               "   there is no limit to compare against, so nothing\n"
               "   certifies — see bench g1 for the matched cycle periods)\n";
  return 0;
}
