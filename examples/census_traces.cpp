// Exporting raw trajectories: runs the k-IGT dynamics on the census engine
// and writes the level census as CSV (via ppg::census_recorder) for
// external plotting — the raw data behind figures like the welfare
// trajectories of bench A3. The recorder accepts any engine kind.
//
// Usage: ./census_traces > trace.csv
#include <iostream>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/pp/trace.hpp"

int main() {
  using namespace ppg;

  const auto pop = abg_population::from_fractions(400, 0.1, 0.2, 0.7);
  const std::size_t k = 5;

  const igt_protocol proto(k);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, k, 0), 2 + k));
  rng gen(99);
  const auto sim = spec.make_engine(engine_kind::census, gen);

  std::vector<std::string> columns = {"AC", "AD"};
  for (std::size_t j = 1; j <= k; ++j) {
    columns.push_back("g" + std::to_string(j));
  }
  census_recorder recorder(columns);

  recorder.record(*sim);
  const std::uint64_t stride = pop.n();  // one unit of parallel time
  for (int step = 0; step < 100; ++step) {
    sim->run(stride);
    recorder.record(*sim);
  }
  recorder.write_csv(std::cout);

  std::cerr << "wrote " << recorder.row_count()
            << " census rows (one per unit of parallel time); stationary "
               "prediction for the top level: "
            << igt_stationary_probs(pop, k).back() *
                   static_cast<double>(pop.num_gtft)
            << " agents\n";
  return 0;
}
