// Quickstart: simulate the k-IGT dynamics in an (alpha, beta, gamma)
// population and compare the long-run distribution of generosity levels to
// the closed-form stationary law of Theorem 2.7.
//
// The measurement runs as a batch of 4 independent replicas on the
// batch-replication engine: one sim_spec describes the experiment, an
// engine_kind picks the execution backend (here the census engine, which
// simulates the count vector directly — same law as the agent-level loop,
// no per-agent state), the batch engine fans the replicas across a worker
// pool (deterministically — the numbers below are bit-identical at any
// thread count), and the census aggregator reduces them to a mean estimate
// with replica-level confidence intervals.
//
// Build & run:   ./build/examples/quickstart
#include <cstddef>
#include <iostream>

#include "ppg/core/igt_protocol.hpp"
#include "ppg/core/igt_count_chain.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;

  // An (alpha, beta, gamma) = (0.2, 0.2, 0.6) population of 500 agents.
  const auto pop = abg_population::from_fractions(500, 0.2, 0.2, 0.6);
  const std::size_t k = 6;  // six generosity levels

  std::cout << "Population: " << pop.num_ac << " AC, " << pop.num_ad
            << " AD, " << pop.num_gtft << " GTFT agents; k = " << k
            << " levels\n\n";

  // The replica recipe: agent-level IGT dynamics, every GTFT agent starting
  // at the stingiest level g_1 = 0.
  const igt_protocol proto(k);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, k, 0), 2 + k));

  // Burn in past the mixing time (Theorem 2.7: O(k n log n) interactions),
  // then time-average the level census — once per replica.
  const std::uint64_t burn =
      static_cast<std::uint64_t>(igt_mixing_upper_bound(pop, k));
  const std::uint64_t samples = 100'000;
  const batch_options opts{/*replicas=*/4, /*master_seed=*/2024,
                           /*threads=*/0};
  std::cout << "Running " << opts.replicas << " replicas ("
            << fmt_count(burn) << " burn-in + " << fmt_count(samples)
            << " sampled interactions each) on the batch engine...\n";

  const auto batch = replicate_time_averaged_census(
      spec, engine_kind::census, burn, samples, opts,
      [&](const census_view& census) {
        const auto z = gtft_level_counts(census, k);
        std::vector<double> occupancy(k);
        for (std::size_t j = 0; j < k; ++j) {
          occupancy[j] = static_cast<double>(z[j]) /
                         static_cast<double>(pop.num_gtft);
        }
        return occupancy;
      });

  // Compare with Theorem 2.7: multinomial with p_j ∝ (1/beta - 1)^{j-1}.
  const auto expected = igt_stationary_probs(pop, k);
  const auto measured = batch.mean();
  const auto ci = batch.ci_half_width();

  text_table table({"level", "generosity g_j", "measured", "+- 95% CI",
                    "Theorem 2.7"});
  const auto grid = generosity_grid(k, 1.0);
  for (std::size_t j = 0; j < k; ++j) {
    table.add_row({"g" + std::to_string(j + 1), fmt(grid[j], 3),
                   fmt(measured[j], 4), fmt(ci[j], 4), fmt(expected[j], 4)});
  }
  table.print(std::cout);
  std::cout << "\nTV distance (measured vs predicted): "
            << fmt(total_variation(measured, expected), 4) << "\n\n";

  std::cout << "Level occupancy (replica-averaged):\n";
  for (std::size_t j = 0; j < k; ++j) {
    const auto bar = static_cast<std::size_t>(measured[j] * 44.0);
    std::cout << "[g" << j + 1 << "] " << std::string(bar, '#') << ' '
              << fmt(measured[j], 3) << "\n";
  }
  return 0;
}
