// Quickstart: simulate the k-IGT dynamics in an (alpha, beta, gamma)
// population and compare the long-run distribution of generosity levels to
// the closed-form stationary law of Theorem 2.7.
//
// Build & run:   ./build/examples/quickstart
#include <cstddef>
#include <iostream>

#include "ppg/core/igt_protocol.hpp"
#include "ppg/core/igt_count_chain.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/stats/histogram.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;

  // An (alpha, beta, gamma) = (0.2, 0.2, 0.6) population of 500 agents.
  const auto pop = abg_population::from_fractions(500, 0.2, 0.2, 0.6);
  const std::size_t k = 6;  // six generosity levels

  std::cout << "Population: " << pop.num_ac << " AC, " << pop.num_ad
            << " AD, " << pop.num_gtft << " GTFT agents; k = " << k
            << " levels\n\n";

  // Agent-level simulation with the population-protocol engine. Every GTFT
  // agent starts at the stingiest level g_1 = 0.
  const igt_protocol proto(k);
  simulation sim(proto,
                 population(make_igt_population_states(pop, k, 0), 2 + k),
                 rng(/*seed=*/2024));

  // Burn in past the mixing time (Theorem 2.7: O(k n log n) interactions),
  // then time-average the level census.
  const std::uint64_t burn =
      static_cast<std::uint64_t>(igt_mixing_upper_bound(pop, k));
  std::cout << "Burning in for " << fmt_count(burn) << " interactions ("
            << fmt(static_cast<double>(burn) / static_cast<double>(pop.n()),
                   1)
            << " parallel time)...\n";
  sim.run(burn);

  histogram occupancy(k);
  const std::uint64_t samples = 400'000;
  for (std::uint64_t i = 0; i < samples; ++i) {
    sim.step();
    const auto census = gtft_level_counts(sim.agents(), k);
    for (std::size_t j = 0; j < k; ++j) {
      occupancy.add(j, census[j]);
    }
  }

  // Compare with Theorem 2.7: multinomial with p_j ∝ (1/beta - 1)^{j-1}.
  const auto expected = igt_stationary_probs(pop, k);
  const auto measured = occupancy.normalized();

  text_table table({"level", "generosity g_j", "measured", "Theorem 2.7"});
  const auto grid = generosity_grid(k, 1.0);
  for (std::size_t j = 0; j < k; ++j) {
    table.add_row({"g" + std::to_string(j + 1), fmt(grid[j], 3),
                   fmt(measured[j], 4), fmt(expected[j], 4)});
  }
  table.print(std::cout);
  std::cout << "\nTV distance (measured vs predicted): "
            << fmt(total_variation(measured, expected), 4) << "\n\n";
  std::cout << "Level occupancy (time-averaged):\n"
            << occupancy.ascii_bars(44) << "\n";
  return 0;
}
