// The unified experiment driver. Every experiment in bench/scenarios/ is a
// registered scenario; this binary lists, filters, runs, prints, and
// serializes them. See `ppg-bench --help` and README "Running experiments".
#include "ppg/exp/harness.hpp"

int main(int argc, char** argv) { return ppg::harness_main(argc, argv); }
