// Engine micro-benchmarks (google-benchmark): interactions per second of
// the pluggable simulation engines (agent / census / batched, selected via
// sim_spec::make_engine) across population sizes, plus the k-IGT count
// chain, the exact-chain distribution step, the payoff oracles, and the
// batch-replication engine's thread scaling.
//
// The bm_engine_igt rows are the engine-selection guide: the census engine's
// per-interaction cost is O(q) and independent of n (it is the only engine
// that reaches n = 10^8), and the batched engine additionally skips runs of
// identity interactions in one geometric draw — on the one-way IGT kernel
// with a dilute GTFT subpopulation it executes far less than one sampling
// operation per interaction. items_per_second is interactions per second in
// every engine row, so BENCH_*.json tracks an engine-comparison trajectory.
//
// Invoked as `bench_throughput --smoke`, only the engine rows run, briefly —
// the CI regression check for engine selection.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/ehrenfest/process.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/games/closed_form.hpp"
#include "ppg/games/exact_payoff.hpp"
#include "ppg/games/rollout.hpp"

namespace {

using namespace ppg;

// A census-form one-way IGT spec (no per-agent array) with GTFT levels
// initialized at the rounded Theorem 2.7 stationary census, so every row
// measures steady-state throughput rather than the all-stingy transient.
sim_spec igt_spec(const igt_protocol& proto, std::uint64_t n, double alpha,
                  double beta, double gamma) {
  const auto pop = abg_population::from_fractions(n, alpha, beta, gamma);
  const auto probs = igt_stationary_probs(pop, proto.k());
  std::vector<std::uint64_t> counts(proto.num_states(), 0);
  counts[igt_encoding::ac] = pop.num_ac;
  counts[igt_encoding::ad] = pop.num_ad;
  std::uint64_t placed = 0;
  for (std::size_t j = 0; j + 1 < proto.k(); ++j) {
    const auto c = static_cast<std::uint64_t>(
        probs[j] * static_cast<double>(pop.num_gtft));
    counts[igt_encoding::gtft(j)] = c;
    placed += c;
  }
  counts[igt_encoding::gtft(proto.k() - 1)] = pop.num_gtft - placed;
  return sim_spec(proto, std::move(counts));
}

// Interactions/sec of one engine on the one-way IGT kernel. The dense
// configuration is the tree's default (alpha, beta, gamma) = (.1, .2, .7);
// the dilute one (gamma = .05) is the regime where most interactions are
// identities and the batched engine's geometric skip dominates.
void engine_rows(benchmark::State& state, engine_kind kind, double gamma) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const igt_protocol proto(8);
  const sim_spec spec = igt_spec(proto, n, 1.0 - 0.2 - gamma, 0.2, gamma);
  rng gen(1);
  const auto engine = spec.make_engine(kind, gen);
  constexpr std::uint64_t chunk = 8192;
  for (auto _ : state) {
    engine->run(chunk);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
}

void bm_engine_igt(benchmark::State& state, engine_kind kind) {
  engine_rows(state, kind, 0.7);
}
BENCHMARK_CAPTURE(bm_engine_igt, agent, engine_kind::agent)
    ->Arg(10'000)
    ->Arg(1'000'000);
BENCHMARK_CAPTURE(bm_engine_igt, census, engine_kind::census)
    ->Arg(10'000)
    ->Arg(1'000'000)
    ->Arg(100'000'000);
BENCHMARK_CAPTURE(bm_engine_igt, batched, engine_kind::batched)
    ->Arg(10'000)
    ->Arg(1'000'000)
    ->Arg(100'000'000);

void bm_engine_igt_dilute(benchmark::State& state, engine_kind kind) {
  engine_rows(state, kind, 0.05);
}
BENCHMARK_CAPTURE(bm_engine_igt_dilute, agent, engine_kind::agent)
    ->Arg(1'000'000);
BENCHMARK_CAPTURE(bm_engine_igt_dilute, census, engine_kind::census)
    ->Arg(1'000'000)
    ->Arg(100'000'000);
BENCHMARK_CAPTURE(bm_engine_igt_dilute, batched, engine_kind::batched)
    ->Arg(1'000'000)
    ->Arg(100'000'000);

void bm_igt_count_chain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto pop = abg_population::from_fractions(n, 0.1, 0.2, 0.7);
  igt_count_chain chain(pop, 8, 0);
  rng gen(2);
  for (auto _ : state) {
    chain.step(gen);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_igt_count_chain)->Arg(100)->Arg(1000)->Arg(10000);

void bm_ehrenfest_count_vector(benchmark::State& state) {
  const ehrenfest_params params{8, 0.3, 0.15,
                                static_cast<std::uint64_t>(state.range(0))};
  auto process = ehrenfest_process::at_corner(params, false);
  rng gen(3);
  for (auto _ : state) {
    process.step(gen);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_ehrenfest_count_vector)->Arg(100)->Arg(10000);

void bm_exact_chain_step(benchmark::State& state) {
  const ehrenfest_params params{3, 0.3, 0.15, 20};
  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  std::vector<double> mu(index.size(), 1.0 / static_cast<double>(index.size()));
  for (auto _ : state) {
    mu = chain.step(mu);
    benchmark::DoNotOptimize(mu.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(index.size()));
}
BENCHMARK(bm_exact_chain_step);

void bm_exact_payoff_engine(benchmark::State& state) {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.8};
  const auto row = generous_tit_for_tat(0.3, 0.9);
  const auto col = generous_tit_for_tat(0.6, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expected_payoff(rdg, row, col));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_exact_payoff_engine);

void bm_closed_form_payoff(benchmark::State& state) {
  const rd_setting s{3.0, 1.0, 0.8, 0.9};
  double g = 0.0;
  for (auto _ : state) {
    g += 1e-9;
    benchmark::DoNotOptimize(f_gtft_vs_gtft(s, 0.3 + g, 0.6));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_closed_form_payoff);

// Aggregate throughput of the batch-replication engine: R = 8 replicas of a
// fixed-step agent-level IGT simulation fanned across Arg(0) worker threads.
// Items = total interactions across all replicas, measured on the wall
// clock, so items/sec is the aggregate simulation throughput; on a machine
// with >= 8 cores the 8-thread row should show >= 4x the 1-thread rate.
// Aggregates are bit-identical across the rows (asserted in test_exp).
void bm_batch_agent_level(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 8;
  const auto pop = abg_population::from_fractions(1000, 0.1, 0.2, 0.7);
  const igt_protocol proto(k);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, k, 0), 2 + k));
  constexpr std::size_t replicas = 8;
  constexpr std::uint64_t steps_per_replica = 100'000;
  for (auto _ : state) {
    const auto batch = replicate_census(
        {replicas, 7, threads}, [&](const replica_context&, rng& gen) {
          simulation sim = spec.instantiate(gen);
          sim.run(steps_per_replica);
          return sim.agents().fractions();
        });
    benchmark::DoNotOptimize(batch.count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(replicas) *
                          static_cast<std::int64_t>(steps_per_replica));
}
BENCHMARK(bm_batch_agent_level)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void bm_rollout_game(benchmark::State& state) {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.9};
  const auto row = generous_tit_for_tat(0.3, 0.9);
  const auto col = always_defect();
  rng gen(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(play_repeated_game(rdg, row, col, gen));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_rollout_game);

}  // namespace

// Custom main so that `bench_throughput --smoke` maps to a short run of the
// engine-comparison rows only (the CI regression check); all other arguments
// pass through to google-benchmark unchanged.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  // Only the filter is injected: --benchmark_min_time spellings differ
  // across google-benchmark versions, and the default per-row budget keeps
  // the smoke run under a minute.
  char filter[] = "--benchmark_filter=bm_engine_igt";
  if (smoke) {
    args.push_back(filter);
  }
  int pruned_argc = static_cast<int>(args.size());
  benchmark::Initialize(&pruned_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(pruned_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
