// Engine micro-benchmarks (google-benchmark): interactions per second of
// the three simulation layers (agent-level protocol engine, k-IGT count
// chain / coordinate walk, exact-chain distribution step), the exact
// payoff oracle, and the batch-replication engine's thread scaling. These
// are the practical knobs for choosing a layer: the count chain is ~an
// order of magnitude faster than the agent-level engine and is exact for
// census-level questions (equation (5)).
#include <benchmark/benchmark.h>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/ehrenfest/process.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/games/closed_form.hpp"
#include "ppg/games/exact_payoff.hpp"
#include "ppg/games/rollout.hpp"

namespace {

using namespace ppg;

void bm_agent_level_igt(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 8;
  const auto pop = abg_population::from_fractions(n, 0.1, 0.2, 0.7);
  const igt_protocol proto(k);
  simulation sim(proto,
                 population(make_igt_population_states(pop, k, 0), 2 + k),
                 rng(1));
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_agent_level_igt)->Arg(100)->Arg(1000)->Arg(10000);

void bm_igt_count_chain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto pop = abg_population::from_fractions(n, 0.1, 0.2, 0.7);
  igt_count_chain chain(pop, 8, 0);
  rng gen(2);
  for (auto _ : state) {
    chain.step(gen);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_igt_count_chain)->Arg(100)->Arg(1000)->Arg(10000);

void bm_ehrenfest_count_vector(benchmark::State& state) {
  const ehrenfest_params params{8, 0.3, 0.15,
                                static_cast<std::uint64_t>(state.range(0))};
  auto process = ehrenfest_process::at_corner(params, false);
  rng gen(3);
  for (auto _ : state) {
    process.step(gen);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_ehrenfest_count_vector)->Arg(100)->Arg(10000);

void bm_exact_chain_step(benchmark::State& state) {
  const ehrenfest_params params{3, 0.3, 0.15, 20};
  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  std::vector<double> mu(index.size(), 1.0 / static_cast<double>(index.size()));
  for (auto _ : state) {
    mu = chain.step(mu);
    benchmark::DoNotOptimize(mu.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(index.size()));
}
BENCHMARK(bm_exact_chain_step);

void bm_exact_payoff_engine(benchmark::State& state) {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.8};
  const auto row = generous_tit_for_tat(0.3, 0.9);
  const auto col = generous_tit_for_tat(0.6, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expected_payoff(rdg, row, col));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_exact_payoff_engine);

void bm_closed_form_payoff(benchmark::State& state) {
  const rd_setting s{3.0, 1.0, 0.8, 0.9};
  double g = 0.0;
  for (auto _ : state) {
    g += 1e-9;
    benchmark::DoNotOptimize(f_gtft_vs_gtft(s, 0.3 + g, 0.6));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_closed_form_payoff);

// Aggregate throughput of the batch-replication engine: R = 8 replicas of a
// fixed-step agent-level IGT simulation fanned across Arg(0) worker threads.
// Items = total interactions across all replicas, measured on the wall
// clock, so items/sec is the aggregate simulation throughput; on a machine
// with >= 8 cores the 8-thread row should show >= 4x the 1-thread rate.
// Aggregates are bit-identical across the rows (asserted in test_exp).
void bm_batch_agent_level(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 8;
  const auto pop = abg_population::from_fractions(1000, 0.1, 0.2, 0.7);
  const igt_protocol proto(k);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, k, 0), 2 + k));
  constexpr std::size_t replicas = 8;
  constexpr std::uint64_t steps_per_replica = 100'000;
  for (auto _ : state) {
    const auto batch = replicate_census(
        {replicas, 7, threads}, [&](const replica_context&, rng& gen) {
          simulation sim = spec.instantiate(gen);
          sim.run(steps_per_replica);
          return sim.agents().fractions();
        });
    benchmark::DoNotOptimize(batch.count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(replicas) *
                          static_cast<std::int64_t>(steps_per_replica));
}
BENCHMARK(bm_batch_agent_level)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void bm_rollout_game(benchmark::State& state) {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.9};
  const auto row = generous_tit_for_tat(0.3, 0.9);
  const auto col = always_defect();
  rng gen(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(play_repeated_game(rdg, row, col, gen));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_rollout_game);

}  // namespace
