// Ablation A1: one-way vs two-way update discipline. The paper adopts the
// standard one-way protocol (only the initiator updates; footnote 3). The
// two-way variant doubles the per-agent update rate without changing the
// up/down ratio, so Theorem 2.7's stationary census should be unchanged
// while convergence roughly doubles in speed — a free 2x if the application
// allows symmetric updates.
#include <iostream>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/table.hpp"

namespace {

using namespace ppg;

std::vector<double> stationary_census(const abg_population& pop,
                                      std::size_t k,
                                      igt_discipline discipline, rng gen) {
  const igt_protocol proto(k, discipline);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, k, 0), 2 + k),
                      pair_sampling::with_replacement);
  const auto sim = spec.make_engine(engine_kind::census, gen);
  sim->run(400'000);
  std::vector<double> occupancy(k, 0.0);
  const std::uint64_t samples = 400'000;
  for (std::uint64_t i = 0; i < samples; ++i) {
    sim->step();
    const auto census = gtft_level_counts(sim->census(), k);
    for (std::size_t j = 0; j < k; ++j) {
      occupancy[j] += static_cast<double>(census[j]);
    }
  }
  for (auto& x : occupancy) {
    x /= static_cast<double>(samples) * static_cast<double>(pop.num_gtft);
  }
  return occupancy;
}

double hitting_time(const abg_population& pop, std::size_t k,
                    igt_discipline discipline, rng& gen) {
  const auto probs = igt_stationary_probs(pop, k);
  double target = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    target += static_cast<double>(j) * probs[j];
  }
  target *= 0.9;
  const igt_protocol proto(k, discipline);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, k, 0), 2 + k),
                      pair_sampling::with_replacement);
  const auto sim = spec.make_engine(engine_kind::census, gen);
  for (std::uint64_t t = 32; t <= 100'000'000; t += 32) {
    sim->run(32);
    const auto census = gtft_level_counts(sim->census(), k);
    double mean_level = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      mean_level += static_cast<double>(j) * static_cast<double>(census[j]);
    }
    if (mean_level / static_cast<double>(pop.num_gtft) >= target) {
      return static_cast<double>(t);
    }
  }
  return 100'000'000.0;
}

// Mean hitting time over independent replicas, fanned across the batch
// engine's worker pool.
double mean_hitting_time(const abg_population& pop, std::size_t k,
                         igt_discipline discipline, std::uint64_t master) {
  return replicate_scalar({6, master, 0},
                          [&](const replica_context&, rng& gen) {
                            return hitting_time(pop, k, discipline, gen);
                          })
      .mean();
}

}  // namespace

int main() {
  std::cout << "=== A1: one-way vs two-way IGT update discipline ===\n\n";

  const std::size_t k = 6;
  std::cout << "(a) stationary census is discipline-invariant (TV vs "
               "Theorem 2.7)\n";
  text_table census_table({"beta", "TV one-way", "TV two-way"});
  for (const double beta : {0.15, 0.3, 0.5}) {
    const auto pop =
        abg_population::from_fractions(300, 0.1, beta, 0.9 - beta);
    const auto expected = igt_stationary_probs(pop, k);
    const auto one =
        stationary_census(pop, k, igt_discipline::one_way, rng(31));
    const auto two =
        stationary_census(pop, k, igt_discipline::two_way, rng(32));
    census_table.add_row({fmt(pop.beta(), 2),
                          fmt(total_variation(one, expected), 4),
                          fmt(total_variation(two, expected), 4)});
  }
  census_table.print(std::cout);

  std::cout << "\n(b) convergence speedup (hitting-time proxy, mean of 6 "
               "replicas)\n";
  text_table speed_table({"n", "one-way", "two-way", "speedup"});
  for (const std::size_t n : {300u, 600u, 1200u}) {
    const auto pop = abg_population::from_fractions(n, 0.1, 0.2, 0.7);
    const double one = mean_hitting_time(pop, k, igt_discipline::one_way, 40);
    const double two = mean_hitting_time(pop, k, igt_discipline::two_way, 50);
    speed_table.add_row({std::to_string(n),
                         fmt_count(static_cast<std::uint64_t>(one)),
                         fmt_count(static_cast<std::uint64_t>(two)),
                         fmt(one / two, 2)});
  }
  speed_table.print(std::cout);

  std::cout << "\nExpected shape: both disciplines hit the Theorem 2.7 "
               "census (TV ~ 0.01); the\ntwo-way variant converges ~2x "
               "faster (each interaction performs up to two updates).\n";
  return 0;
}
