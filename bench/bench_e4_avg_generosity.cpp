// Experiment E4 (Proposition 2.8 / Corollary C.1): the average stationary
// generosity of the k-IGT dynamics. Simulated time-averages are compared
// against the closed form
//   g_avg = g_max (lambda^k/(lambda^k - 1)
//           - (1/(k-1))(lambda/(lambda-1))(lambda^{k-1}-1)/(lambda^k-1)),
// and against the Corollary C.1 lower bound g_max(1 - 1/((lambda-1)(k-1)))
// for beta < 1/2. The 1/k approach to g_max (and to 0 for beta > 1/2) is
// the quantitative signature.
#include <iostream>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/theory.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/games/strategy.hpp"
#include "ppg/util/table.hpp"

namespace {

double replica_average_generosity(const ppg::abg_population& pop,
                                  std::size_t k, double g_max,
                                  ppg::rng& gen) {
  using namespace ppg;
  const auto grid = generosity_grid(k, g_max);
  igt_count_chain chain(pop, k, 0);
  chain.run(static_cast<std::uint64_t>(igt_mixing_upper_bound(pop, k)), gen);
  double total = 0.0;
  const std::uint64_t samples = 150'000;
  for (std::uint64_t i = 0; i < samples; ++i) {
    chain.step(gen);
    double g_bar = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      g_bar += grid[j] * static_cast<double>(chain.counts()[j]);
    }
    total += g_bar / static_cast<double>(pop.num_gtft);
  }
  return total / static_cast<double>(samples);
}

// Mean over independent replicas run on the batch engine (the time average
// of each replica is one scalar observation).
double simulated_average_generosity(const ppg::abg_population& pop,
                                    std::size_t k, double g_max) {
  using namespace ppg;
  return replicate_scalar({4, 77, 0},
                          [&](const replica_context&, rng& gen) {
                            return replica_average_generosity(pop, k, g_max,
                                                              gen);
                          })
      .mean();
}

}  // namespace

int main() {
  using namespace ppg;
  std::cout << "=== E4: average stationary generosity (Proposition 2.8, "
               "Corollary C.1) ===\n\n";
  const double g_max = 0.8;
  const std::size_t n = 500;

  std::cout << "(a) beta sweep at k = 8, g_max = " << g_max << "\n";
  text_table beta_table({"beta", "simulated", "closed form (P2.8)",
                         "C.1 lower bound"});
  for (const double beta : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8}) {
    const auto pop =
        abg_population::from_fractions(n, 0.1, beta, 0.9 - beta);
    const double sim = simulated_average_generosity(pop, 8, g_max);
    const double closed =
        average_stationary_generosity(pop.beta(), 8, g_max);
    const std::string bound =
        pop.beta() < 0.5
            ? fmt(average_generosity_lower_bound(pop.beta(), 8, g_max), 4)
            : "n/a";
    beta_table.add_row({fmt(pop.beta(), 3), fmt(sim, 4), fmt(closed, 4),
                        bound});
  }
  beta_table.print(std::cout);

  std::cout << "\n(b) k sweep at beta = 0.25 (lambda = 3): the gap to g_max "
               "decays as 1/k\n";
  text_table k_table({"k", "simulated", "closed form", "g_max - g_avg",
                      "k*(g_max - g_avg)/g_max"});
  for (const std::size_t k : {2u, 4u, 8u, 16u, 32u}) {
    const auto pop = abg_population::from_fractions(n, 0.1, 0.25, 0.65);
    const double sim = simulated_average_generosity(pop, k, g_max);
    const double closed =
        average_stationary_generosity(pop.beta(), k, g_max);
    const double gap = g_max - closed;
    k_table.add_row({std::to_string(k), fmt(sim, 4), fmt(closed, 4),
                     fmt(gap, 4),
                     fmt(gap * static_cast<double>(k) / g_max, 3)});
  }
  k_table.print(std::cout);

  std::cout << "\n(c) k sweep at beta = 0.75 (lambda = 1/3): approach to 0 "
               "at rate 1/k\n";
  text_table k0_table({"k", "simulated", "closed form", "k*g_avg/g_max"});
  for (const std::size_t k : {2u, 4u, 8u, 16u, 32u}) {
    const auto pop = abg_population::from_fractions(n, 0.1, 0.75, 0.15);
    const double sim = simulated_average_generosity(pop, k, g_max);
    const double closed =
        average_stationary_generosity(pop.beta(), k, g_max);
    k0_table.add_row({std::to_string(k), fmt(sim, 4), fmt(closed, 4),
                      fmt(closed * static_cast<double>(k) / g_max, 3)});
  }
  k0_table.print(std::cout);

  std::cout << "\nExpected shape: simulated == closed form within ~0.01;\n"
               "normalized k-scaled gaps stabilize to constants (the O(1/k) "
               "rates of Proposition 2.8).\n";
  return 0;
}
