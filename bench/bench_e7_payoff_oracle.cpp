// Experiment E7 (Appendix B.1.5): the exact expected-payoff oracle. Three
// independent computations of f(S1, S2) must agree:
//   closed forms (44)-(46)  ==  matrix engine q1 (I - delta M)^{-1} v
//                           ==  Monte-Carlo rollouts (within CI).
#include <cmath>
#include <iostream>

#include "ppg/games/closed_form.hpp"
#include "ppg/games/rollout.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;
  std::cout << "=== E7: expected payoff oracle (equations (44)-(46)) ===\n\n";

  const rd_setting s{3.0, 1.0, 0.8, 0.7};
  const repeated_donation_game rdg = s.to_game();
  std::cout << "b = " << s.b << ", c = " << s.c << ", delta = " << s.delta
            << ", s1 = " << s.s1 << "; 200k rollouts per pairing\n\n";

  rng gen(99);
  constexpr std::size_t trials = 200'000;
  text_table table({"pairing", "closed form", "matrix engine",
                    "Monte Carlo", "MC std err", "|closed - engine|"});

  auto add_row = [&](const std::string& name, double closed,
                     const memory_one_strategy& row,
                     const memory_one_strategy& col) {
    const double engine = expected_payoff(rdg, row, col);
    const auto mc = estimate_payoff(rdg, row, col, trials, gen);
    table.add_row({name, fmt(closed, 5), fmt(engine, 5), fmt(mc.mean(), 5),
                   fmt(mc.std_error(), 5),
                   fmt_sci(std::abs(closed - engine), 2)});
  };

  for (const double g : {0.0, 0.3, 0.7}) {
    add_row("GTFT(" + fmt(g, 1) + ") vs AC", f_gtft_vs_ac(s),
            generous_tit_for_tat(g, s.s1), always_cooperate());
    add_row("GTFT(" + fmt(g, 1) + ") vs AD", f_gtft_vs_ad(s, g),
            generous_tit_for_tat(g, s.s1), always_defect());
  }
  for (const auto& [g, gp] :
       {std::pair{0.0, 0.0}, std::pair{0.3, 0.7}, std::pair{0.7, 0.3},
        std::pair{1.0, 1.0}}) {
    add_row("GTFT(" + fmt(g, 1) + ") vs GTFT(" + fmt(gp, 1) + ")",
            f_gtft_vs_gtft(s, g, gp), generous_tit_for_tat(g, s.s1),
            generous_tit_for_tat(gp, s.s1));
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: closed form and engine agree to ~1e-10; "
               "Monte Carlo within a few\nstandard errors (the rollout "
               "plays the literal round-by-round game of Section 1.1.2).\n";
  return 0;
}
