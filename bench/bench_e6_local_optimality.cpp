// Experiment E6 (Proposition 2.2): local optimality of the IGT update
// rules. Inside the regime (s1 < 1, delta > c/b, g_max < 1 - c/(delta b)):
//   (i)  f(g, g'') strictly increasing in g for all g'' in [0, g_max],
//   (ii) f(g, AC) non-decreasing in g,
//   (iii) f(g, AD) strictly decreasing in g.
// The harness counts violations over dense grids, inside and outside the
// regime, using both the closed forms and the independent matrix engine.
#include <iostream>

#include "ppg/games/closed_form.hpp"
#include "ppg/games/exact_payoff.hpp"
#include "ppg/util/table.hpp"

namespace {

struct violation_counts {
  int checked = 0;
  int monotone_gtft = 0;  // (i) violations
  int monotone_ac = 0;    // (ii) violations
  int monotone_ad = 0;    // (iii) violations
};

violation_counts count_violations(const ppg::rd_setting& s, double g_max,
                                  int steps) {
  using namespace ppg;
  violation_counts counts;
  const repeated_donation_game rdg = s.to_game();
  for (int i = 0; i < steps; ++i) {
    const double g1 = g_max * i / steps;
    const double g2 = g_max * (i + 1) / steps;
    // (ii) and (iii) via the engine.
    const double ac1 = expected_payoff(rdg, generous_tit_for_tat(g1, s.s1),
                                       always_cooperate());
    const double ac2 = expected_payoff(rdg, generous_tit_for_tat(g2, s.s1),
                                       always_cooperate());
    if (ac2 < ac1 - 1e-12) ++counts.monotone_ac;
    const double ad1 = expected_payoff(rdg, generous_tit_for_tat(g1, s.s1),
                                       always_defect());
    const double ad2 = expected_payoff(rdg, generous_tit_for_tat(g2, s.s1),
                                       always_defect());
    if (ad2 >= ad1) ++counts.monotone_ad;
    for (int j = 0; j <= steps; ++j) {
      const double gpp = g_max * j / steps;
      const double f1 = f_gtft_vs_gtft(s, g1, gpp);
      const double f2 = f_gtft_vs_gtft(s, g2, gpp);
      if (f2 <= f1) ++counts.monotone_gtft;
      ++counts.checked;
    }
  }
  return counts;
}

}  // namespace

int main() {
  using namespace ppg;
  std::cout << "=== E6: local optimality of IGT transitions "
               "(Proposition 2.2) ===\n\n";

  text_table table({"b", "delta", "g_max", "in regime?", "grid points",
                    "(i) violations", "(ii) violations",
                    "(iii) violations"});
  struct config {
    double b;
    double delta;
    double g_max;
  };
  const config configs[] = {
      // Inside the regime.
      {3.0, 0.8, 0.5},
      {2.0, 0.9, 0.35},
      {8.0, 0.5, 0.7},
      {16.0, 0.3, 0.75},
      // Outside: delta too small or g_max too large.
      {3.0, 0.25, 0.5},
      {3.0, 0.8, 0.95},
      {1.5, 0.5, 0.9},
  };
  for (const auto& cfg : configs) {
    const rd_setting s{cfg.b, 1.0, cfg.delta, 0.5};
    const bool in_regime = proposition_2_2_regime(s, cfg.g_max);
    const auto counts = count_violations(s, cfg.g_max, 24);
    table.add_row({fmt(cfg.b, 1), fmt(cfg.delta, 2), fmt(cfg.g_max, 2),
                   in_regime ? "yes" : "no",
                   std::to_string(counts.checked),
                   std::to_string(counts.monotone_gtft),
                   std::to_string(counts.monotone_ac),
                   std::to_string(counts.monotone_ad)});
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape: zero violations of (i)-(iii) whenever the "
         "regime predicate holds;\nout-of-regime rows may (and the "
         "g_max = 0.95 row does) violate (i) — the transitions\nare no "
         "longer locally optimal there, which is also the mechanism behind "
         "the E5(c) finding.\n";
  return 0;
}
