// Experiment E8 (Remark 2.6): the cutoff phenomenon. For the classic k = 2
// urn process, the TV distance from the worst start stays near 1 and then
// collapses sharply around (1/2) m log m moves; the window narrows (in
// relative terms) as m grows. We measure the exact TV profile and the
// relative width of the [0.75, 0.25] TV window, then probe the same
// quantities for a high-dimensional (k = 4) process, where obtaining exact
// cutoff constants is the paper's stated open question.
#include <cmath>
#include <iostream>

#include "ppg/ehrenfest/birth_death.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/markov/mixing.hpp"
#include "ppg/util/table.hpp"

namespace {

using namespace ppg;

struct cutoff_profile {
  double t25 = 0.0;  ///< first t with TV <= 0.25
  double t75 = 0.0;  ///< first t with TV <= 0.75
  double relative_width = 0.0;  ///< (t25 - t75)/t25
};

cutoff_profile measure_cutoff(const ehrenfest_params& params) {
  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  const auto pi = exact_stationary_vector(params, index);
  const auto corners = find_corner_states(index);
  // Use the worse of the two corners (relevant for biased chains).
  const auto t25 = mixing_time_from_starts(
      chain, {corners.bottom, corners.top}, pi, 0.25, 100'000'000);
  const auto t75 = mixing_time_from_starts(
      chain, {corners.bottom, corners.top}, pi, 0.75, 100'000'000);
  cutoff_profile profile;
  profile.t25 = static_cast<double>(t25);
  profile.t75 = static_cast<double>(t75);
  profile.relative_width = (profile.t25 - profile.t75) / profile.t25;
  return profile;
}

}  // namespace

int main() {
  std::cout << "=== E8: cutoff phenomenon (Remark 2.6) ===\n\n";

  std::cout << "(a) classic k = 2 urn (a = b = 1/4): t_mix vs the "
               "(1/2) m log m / (a+b) prediction,\n    and the relative "
               "width of the TV drop (cutoff => width -> 0)\n";
  text_table two_table({"m", "t(TV=0.75)", "t(TV=0.25)",
                        "t25 / ((m log m)/2/(a+b))", "relative width"});
  for (const std::uint64_t m : {8ull, 16ull, 32ull, 64ull, 128ull}) {
    const ehrenfest_params params{2, 0.25, 0.25, m};
    const auto profile = measure_cutoff(params);
    const double md = static_cast<double>(m);
    const double predicted = 0.5 * md * std::log(md) / (params.a + params.b);
    two_table.add_row({std::to_string(m), fmt(profile.t75, 0),
                       fmt(profile.t25, 0), fmt(profile.t25 / predicted, 3),
                       fmt(profile.relative_width, 3)});
  }
  two_table.print(std::cout);

  std::cout << "\n(b) high-dimensional probe, k = 4 (a = b = 1/4): does the "
               "relative width still shrink?\n";
  text_table four_table({"m", "t(TV=0.75)", "t(TV=0.25)",
                         "t25 / (m log m)", "relative width"});
  for (const std::uint64_t m : {6ull, 12ull, 24ull, 48ull}) {
    const ehrenfest_params params{4, 0.25, 0.25, m};
    const auto profile = measure_cutoff(params);
    const double md = static_cast<double>(m);
    four_table.add_row({std::to_string(m), fmt(profile.t75, 0),
                        fmt(profile.t25, 0),
                        fmt(profile.t25 / (md * std::log(md)), 3),
                        fmt(profile.relative_width, 3)});
  }
  four_table.print(std::cout);

  std::cout << "\n(c) biased k = 2 (a = 0.3, b = 0.15): the cutoff location "
               "shifts with the bias\n";
  text_table biased_table({"m", "t(TV=0.25)", "t25 / (m log m)"});
  for (const std::uint64_t m : {16ull, 32ull, 64ull}) {
    const ehrenfest_params params{2, 0.3, 0.15, m};
    const auto profile = measure_cutoff(params);
    const double md = static_cast<double>(m);
    biased_table.add_row({std::to_string(m), fmt(profile.t25, 0),
                          fmt(profile.t25 / (md * std::log(md)), 3)});
  }
  biased_table.print(std::cout);

  std::cout << "\n(d) large-m confirmation via the k = 2 birth-death "
               "projection (expression (11)):\n    the O(m)-state "
               "tridiagonal chain reaches m = 2048 where the cutoff is "
               "sharp\n";
  text_table large_table({"m", "t(TV=0.75)", "t(TV=0.25)",
                          "t25 / ((m log m)/2/(a+b))", "relative width"});
  for (const std::uint64_t m : {256ull, 512ull, 1024ull, 2048ull}) {
    const ehrenfest_params params{2, 0.25, 0.25, m};
    const auto chain = two_urn_projected_chain(params);
    const auto pi = two_urn_projected_stationary(params);
    // Worst start: all balls in urn 1 (projected state m).
    const auto t25 = hitting_time_of_tv(chain, static_cast<std::size_t>(m),
                                        pi, 0.25, 500'000'000);
    const auto t75 = hitting_time_of_tv(chain, static_cast<std::size_t>(m),
                                        pi, 0.75, 500'000'000);
    const double md = static_cast<double>(m);
    const double predicted = 0.5 * md * std::log(md) / (params.a + params.b);
    large_table.add_row(
        {std::to_string(m), fmt_count(t75), fmt_count(t25),
         fmt(static_cast<double>(t25) / predicted, 3),
         fmt((static_cast<double>(t25) - static_cast<double>(t75)) /
                 static_cast<double>(t25),
             3)});
  }
  large_table.print(std::cout);

  std::cout << "\nExpected shape: in (a), the t25/(prediction) ratio tends "
               "to ~1 and the relative\nwidth shrinks with m — the textbook "
               "cutoff. In (b) the width also shrinks, evidence\nthat the "
               "high-dimensional process exhibits cutoff too (open question "
               "in the paper).\nIn (d) the ratio is within a few percent of "
               "1 by m = 2048.\n";
  return 0;
}
