// Experiment E3 (Theorem 2.7): the k-IGT dynamics' level census is exactly
// a (k, gamma(1-beta), gamma*beta, gamma*n)-Ehrenfest process; its
// stationary distribution is multinomial with p_j ∝ (1/beta - 1)^{j-1}.
//
// The dynamics run at the census level (engine_kind::census — the exact
// interaction law of the agent-level protocol, executed on the count vector
// alone; both pair-sampling disciplines, four independent replicas each on
// the batch engine) and the replica-averaged census is compared to the
// closed form across beta regimes.
#include <iostream>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/table.hpp"
#include "ppg/util/timer.hpp"

int main() {
  using namespace ppg;
  std::cout << "=== E3: stationary census of the k-IGT dynamics "
               "(Theorem 2.7) ===\n\n";

  const std::size_t n = 400;
  const std::size_t k = 6;
  std::cout << "n = " << n << " agents, alpha = 0.1, k = " << k
            << " levels; census-engine simulation of Definition 2.1.\n\n";

  text_table table({"beta", "lambda", "sampling", "TV(census, Thm 2.7)",
                    "top-level mass (sim)", "top-level mass (theory)",
                    "top-level CI", "seconds"});
  constexpr std::size_t replicas = 4;
  for (const double beta : {0.1, 0.2, 1.0 / 3.0, 0.5, 0.7}) {
    const double alpha = 0.1;
    const auto pop = abg_population::from_fractions(n, alpha, beta,
                                                    1.0 - alpha - beta);
    const auto expected = igt_stationary_probs(pop, k);
    const auto burn =
        static_cast<std::uint64_t>(igt_mixing_upper_bound(pop, k));
    for (const auto sampling :
         {pair_sampling::distinct, pair_sampling::with_replacement}) {
      timer clock;
      const igt_protocol proto(k);
      const sim_spec spec(
          proto, population(make_igt_population_states(pop, k, 0), 2 + k),
          sampling);
      const auto batch = replicate_time_averaged_census(
          spec, engine_kind::census, burn, 125'000,
          {replicas, 1234 + static_cast<std::uint64_t>(beta * 100), 0},
          [&](const census_view& census) {
            const auto z = gtft_level_counts(census, k);
            std::vector<double> occupancy(k);
            for (std::size_t j = 0; j < k; ++j) {
              occupancy[j] = static_cast<double>(z[j]) /
                             static_cast<double>(pop.num_gtft);
            }
            return occupancy;
          });
      const auto census = batch.mean();
      const double lambda = (1.0 - pop.beta()) / pop.beta();
      table.add_row(
          {fmt(pop.beta(), 3), fmt(lambda, 2),
           sampling == pair_sampling::distinct ? "distinct" : "replace",
           fmt(total_variation(census, expected), 4), fmt(census[k - 1], 4),
           fmt(expected[k - 1], 4), fmt(batch.ci_half_width()[k - 1], 4),
           fmt(clock.seconds(), 2)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape: TV below ~0.01 for both sampling disciplines\n"
         "(the paper's idealized probabilities differ from the distinct-\n"
         "pair model by O(1/n)); top-level mass decreases as beta grows,\n"
         "crossing 1/k at beta = 1/2.\n";
  return 0;
}
