// Experiment E9 (Lemma A.5 / Lemma A.8): the shared-randomness coupling.
// Measures the empirical distribution of the coalescence time tau_couple
// from the worst (corner) starts and checks
//   (a) E[tau] against the per-coordinate bound Phi = min{k/|a-b|, k^2} m
//       (converted from moves to steps by 1/(a+b)),
//   (b) the tail bound Pr[tau > 2 Phi log(4m)] <= 1/4,
//   (c) that Proposition A.7's absorption-time closed forms match a direct
//       simulation of the centered walk.
#include <iostream>
#include <tuple>

#include "ppg/ehrenfest/bounds.hpp"
#include "ppg/ehrenfest/coupling.hpp"
#include "ppg/markov/random_walk.hpp"
#include "ppg/stats/summary.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;
  std::cout << "=== E9: coupling analysis (Appendix A.4.1) ===\n\n";

  std::cout << "(a,b) corner-start coupling times, 300 runs each\n";
  text_table table({"k", "m", "a", "b", "mean tau", "max tau",
                    "Phi/(a+b)", "budget 2*Phi*log(4m)",
                    "Pr[tau > budget]"});
  rng gen(123);
  for (const auto& params :
       {ehrenfest_params{2, 0.25, 0.25, 20}, ehrenfest_params{4, 0.25, 0.25, 20},
        ehrenfest_params{4, 0.35, 0.15, 20}, ehrenfest_params{8, 0.35, 0.15, 20},
        ehrenfest_params{8, 0.45, 0.05, 40},
        ehrenfest_params{16, 0.25, 0.25, 10}}) {
    running_summary tau;
    const auto budget =
        static_cast<std::uint64_t>(mixing_upper_bound(params));
    int exceeded = 0;
    constexpr int runs = 300;
    for (int r = 0; r < runs; ++r) {
      const auto run = simulate_corner_coupling(params, budget, gen);
      if (!run.coalesced) {
        ++exceeded;
        tau.add(static_cast<double>(budget));  // censored at the budget
      } else {
        tau.add(static_cast<double>(run.coupling_time));
      }
    }
    table.add_row({std::to_string(params.k), std::to_string(params.m),
                   fmt(params.a, 2), fmt(params.b, 2), fmt(tau.mean(), 0),
                   fmt(tau.max(), 0),
                   fmt(phi_bound(params) / (params.a + params.b), 0),
                   fmt_count(budget),
                   fmt(exceeded / static_cast<double>(runs), 3)});
  }
  table.print(std::cout);

  std::cout << "\n(c) Proposition A.7 absorption times: closed form vs "
               "simulation (20k runs)\n";
  text_table walk_table({"span 2k", "start", "up a", "down b",
                         "closed form E[tau]", "simulated E[tau]"});
  for (const auto& [a, b, span] :
       {std::tuple<double, double, std::int64_t>{0.25, 0.25, 12},
        std::tuple<double, double, std::int64_t>{0.3, 0.15, 12},
        std::tuple<double, double, std::int64_t>{0.4, 0.1, 20}}) {
    const std::int64_t start = span / 2;
    running_summary sim;
    for (int r = 0; r < 20000; ++r) {
      sim.add(static_cast<double>(
          simulate_absorption_time({a, b}, span, start, gen)));
    }
    walk_table.add_row({std::to_string(span), std::to_string(start),
                        fmt(a, 2), fmt(b, 2),
                        fmt(expected_absorption_time({a, b}, span, start), 1),
                        fmt(sim.mean(), 1)});
  }
  walk_table.print(std::cout);

  std::cout << "\nExpected shape: mean tau well below the Phi-based budget, "
               "exceedance frequency <= 0.25\n(Lemma A.8), and closed-form "
               "absorption times matching simulation.\n";
  return 0;
}
