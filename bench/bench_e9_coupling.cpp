// Experiment E9 (Lemma A.5 / Lemma A.8): the shared-randomness coupling.
// Measures the empirical distribution of the coalescence time tau_couple
// from the worst (corner) starts and checks
//   (a) E[tau] against the per-coordinate bound Phi = min{k/|a-b|, k^2} m
//       (converted from moves to steps by 1/(a+b)),
//   (b) the tail bound Pr[tau > 2 Phi log(4m)] <= 1/4,
//   (c) that Proposition A.7's absorption-time closed forms match a direct
//       simulation of the centered walk.
// Replication runs on the batch engine: each table row fans its replicas
// across the worker pool and aggregates deterministically.
#include <iostream>
#include <tuple>

#include "ppg/ehrenfest/bounds.hpp"
#include "ppg/ehrenfest/coupling.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/markov/random_walk.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;
  std::cout << "=== E9: coupling analysis (Appendix A.4.1) ===\n\n";

  std::cout << "(a,b) corner-start coupling times, 300 replicas each\n";
  text_table table({"k", "m", "a", "b", "mean tau", "90% tau", "max tau",
                    "Phi/(a+b)", "budget 2*Phi*log(4m)", "Pr[tau > budget]"});
  for (const auto& params :
       {ehrenfest_params{2, 0.25, 0.25, 20}, ehrenfest_params{4, 0.25, 0.25, 20},
        ehrenfest_params{4, 0.35, 0.15, 20}, ehrenfest_params{8, 0.35, 0.15, 20},
        ehrenfest_params{8, 0.45, 0.05, 40},
        ehrenfest_params{16, 0.25, 0.25, 10}}) {
    const auto budget = static_cast<std::uint64_t>(mixing_upper_bound(params));
    // Each replica reports its coupling time and whether it coalesced; the
    // fold censors non-coalesced runs at the budget and counts them as
    // exceedances (a run may also coalesce at exactly the budget, which is
    // not an exceedance).
    constexpr std::size_t runs = 300;
    struct coupling_sample {
      double tau = 0.0;
      bool exceeded = false;
    };
    const auto samples = batch_runner({runs, 123, 0})
                             .run([&](const replica_context&, rng& gen) {
                               const auto run = simulate_corner_coupling(
                                   params, budget, gen);
                               return coupling_sample{
                                   static_cast<double>(
                                       run.coalesced ? run.coupling_time
                                                     : budget),
                                   !run.coalesced};
                             });
    scalar_aggregator tau;
    std::size_t exceed_count = 0;
    for (const auto& sample : samples) {
      tau.add(sample.tau);
      if (sample.exceeded) ++exceed_count;
    }
    const double exceeded =
        static_cast<double>(exceed_count) / static_cast<double>(runs);
    table.add_row({std::to_string(params.k), std::to_string(params.m),
                   fmt(params.a, 2), fmt(params.b, 2), fmt(tau.mean(), 0),
                   fmt(tau.quantile(0.9), 0), fmt(tau.max(), 0),
                   fmt(phi_bound(params) / (params.a + params.b), 0),
                   fmt_count(budget), fmt(exceeded, 3)});
  }
  table.print(std::cout);

  std::cout << "\n(c) Proposition A.7 absorption times: closed form vs "
               "simulation (20k replicas)\n";
  text_table walk_table({"span 2k", "start", "up a", "down b",
                         "closed form E[tau]", "simulated E[tau]",
                         "95% CI half-width"});
  for (const auto& [a, b, span] :
       {std::tuple<double, double, std::int64_t>{0.25, 0.25, 12},
        std::tuple<double, double, std::int64_t>{0.3, 0.15, 12},
        std::tuple<double, double, std::int64_t>{0.4, 0.1, 20}}) {
    const std::int64_t start = span / 2;
    const auto sim = replicate_scalar(
        {20000, 456, 0}, [&, a = a, b = b, span = span](
                             const replica_context&, rng& gen) {
          return static_cast<double>(
              simulate_absorption_time({a, b}, span, start, gen));
        });
    walk_table.add_row({std::to_string(span), std::to_string(start),
                        fmt(a, 2), fmt(b, 2),
                        fmt(expected_absorption_time({a, b}, span, start), 1),
                        fmt(sim.mean(), 1), fmt(sim.ci_half_width(), 2)});
  }
  walk_table.print(std::cout);

  std::cout << "\nExpected shape: mean tau well below the Phi-based budget, "
               "exceedance frequency <= 0.25\n(Lemma A.8), and closed-form "
               "absorption times within the simulation CI.\n";
  return 0;
}
