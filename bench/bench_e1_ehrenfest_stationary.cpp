// Experiment E1 (Theorem 2.4): the stationary distribution of the
// (k, a, b, m)-Ehrenfest process is multinomial with p_j ∝ lambda^{j-1}.
//
// Two independent validations:
//  (a) exact — on fully enumerated state spaces, the multinomial PMF
//      satisfies the detailed balance equations to machine precision and
//      matches the stationary vector obtained by direct linear solve;
//  (b) simulated — long-run marginal urn occupancy of the O(1)-per-step
//      coordinate-walk simulation matches the closed form (TV distance and
//      chi-square on pooled ball counts).
#include <iostream>

#include "ppg/ehrenfest/coordinate_walk.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/ehrenfest/stationary.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/markov/stationary.hpp"
#include "ppg/stats/chi_square.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/table.hpp"
#include "ppg/util/timer.hpp"

namespace {

// One replica of the part-(b) measurement: burn in, time-average the urn
// occupancy, then append decorrelated pooled snapshots for the chi-square
// test. Returns occupancy fractions followed by the pooled counts (the
// batch aggregator consumes one flat vector per replica).
std::vector<double> occupancy_replica(const ppg::ehrenfest_params& params,
                                      ppg::rng& gen, std::uint64_t samples,
                                      int snapshots) {
  using namespace ppg;
  coordinate_walk walk(params, 0);
  const std::uint64_t burn = 400ull * params.m * params.k;
  walk.run(burn, gen);
  std::vector<double> result(2 * params.k, 0.0);
  for (std::uint64_t i = 0; i < samples; ++i) {
    walk.step(gen);
    for (std::size_t j = 0; j < params.k; ++j) {
      result[j] += static_cast<double>(walk.counts()[j]);
    }
  }
  for (std::size_t j = 0; j < params.k; ++j) {
    result[j] /= static_cast<double>(samples) * static_cast<double>(params.m);
  }
  for (int s = 0; s < snapshots; ++s) {
    walk.run(20ull * params.m, gen);
    for (std::size_t j = 0; j < params.k; ++j) {
      result[params.k + j] += static_cast<double>(walk.counts()[j]);
    }
  }
  return result;
}

}  // namespace

int main() {
  using namespace ppg;
  std::cout << "=== E1: stationary law of the (k,a,b,m)-Ehrenfest process "
               "(Theorem 2.4) ===\n\n";

  std::cout << "(a) exact verification on enumerated state spaces\n";
  text_table exact_table({"k", "m", "lambda", "|states|",
                          "detailed-balance residual",
                          "TV(multinomial, solved)"});
  for (const auto& params :
       {ehrenfest_params{2, 0.3, 0.15, 24}, ehrenfest_params{3, 0.3, 0.15, 12},
        ehrenfest_params{3, 0.2, 0.2, 12}, ehrenfest_params{4, 0.1, 0.4, 8},
        ehrenfest_params{5, 0.35, 0.1, 6}, ehrenfest_params{6, 0.25, 0.25, 5}}) {
    const simplex_index index(params.k, params.m);
    const auto chain = build_ehrenfest_chain(params, index);
    const auto pi = exact_stationary_vector(params, index);
    const auto solved = solve_stationary(chain);
    exact_table.add_row(
        {std::to_string(params.k), std::to_string(params.m),
         fmt(params.lambda(), 2), fmt_count(index.size()),
         fmt_sci(chain.detailed_balance_residual(pi), 2),
         fmt_sci(total_variation(pi, solved), 2)});
  }
  exact_table.print(std::cout);

  std::cout << "\n(b) simulation: long-run urn occupancy vs closed form "
               "(4 replicas each)\n";
  text_table sim_table({"k", "m", "lambda", "samples", "TV(occupancy)",
                        "chi2 p-value", "sim seconds"});
  constexpr std::size_t replicas = 4;
  for (const auto& params :
       {ehrenfest_params{2, 0.3, 0.15, 100}, ehrenfest_params{4, 0.3, 0.15, 100},
        ehrenfest_params{8, 0.3, 0.15, 100}, ehrenfest_params{8, 0.15, 0.3, 100},
        ehrenfest_params{16, 0.25, 0.25, 200},
        ehrenfest_params{16, 0.28, 0.14, 200}}) {
    timer clock;
    const std::uint64_t samples = 100'000;  // per replica
    constexpr int snapshots = 75;           // per replica
    const auto results = batch_runner({replicas, 42, 0})
                             .run([&](const replica_context&, rng& gen) {
                               return occupancy_replica(params, gen, samples,
                                                        snapshots);
                             });
    // The replica average of the first k coordinates is the occupancy
    // estimate; the pooled snapshot counts (exact integers stored as
    // doubles) add across replicas.
    census_aggregator occupancy_agg;
    std::vector<std::uint64_t> pooled(params.k, 0);
    for (const auto& result : results) {
      occupancy_agg.add(std::vector<double>(
          result.begin(), result.begin() + static_cast<long>(params.k)));
      for (std::size_t j = 0; j < params.k; ++j) {
        pooled[j] += static_cast<std::uint64_t>(result[params.k + j]);
      }
    }
    const auto occupancy = occupancy_agg.mean();
    const auto expected = ehrenfest_stationary_probs(params);
    const auto gof = chi_square_gof(pooled, expected);
    sim_table.add_row({std::to_string(params.k), std::to_string(params.m),
                       fmt(params.lambda(), 2),
                       fmt_count(samples * replicas),
                       fmt(total_variation(occupancy, expected), 4),
                       fmt(gof.p_value, 3), fmt(clock.seconds(), 2)});
  }
  sim_table.print(std::cout);
  std::cout << "\nExpected shape: residuals at machine precision in (a); TV "
               "below ~0.01 in (b).\nNote: pooled snapshots are weakly "
               "correlated, so occasional moderate p-values are expected;\n"
               "the TV column is the primary check.\n";
  return 0;
}
