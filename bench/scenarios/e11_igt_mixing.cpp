// Experiment E11 (Theorem 2.7, mixing): convergence time of the k-IGT
// dynamics in total population interactions.
//   upper bound: O(min{k/|1-2 beta|, k^2} n log n), lower bound Omega(kn).
// Exact TV measurement is infeasible for realistic n (the state space is
// the whole simplex), so we measure a standard proxy on the simulated
// count chain: the first time the census TV-matches its stationary marginal
// expectation within 0.1, averaged over seeds, from the worst (all-bottom
// or all-top) start. Scaling in k, n, and beta is the object of interest.
#include <algorithm>
#include <cmath>
#include <vector>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/exp/scenario.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/table.hpp"

namespace {

using namespace ppg;

// First interaction count at which the *instantaneous* census is within
// `tol` TV of the stationary marginal, starting from the worse corner.
// (The instantaneous census is a random vector; for m balls its TV to the
// mean is noisy, so tol must be above the sampling noise floor.)
double census_hitting_time(const abg_population& pop, std::size_t k,
                           double tol, rng& gen) {
  const auto probs = igt_stationary_probs(pop, k);
  // Worst corner: all mass at the level with the *least* stationary mass.
  const std::size_t start = probs.front() < probs.back() ? 0 : k - 1;
  igt_count_chain chain(pop, k, start);
  const std::uint64_t cap = 200'000'000;
  std::vector<double> census(k);
  for (std::uint64_t t = 1; t <= cap; ++t) {
    chain.step(gen);
    if (t % 64 != 0) continue;  // check periodically
    const auto& z = chain.counts();
    for (std::size_t j = 0; j < k; ++j) {
      census[j] =
          static_cast<double>(z[j]) / static_cast<double>(pop.num_gtft);
    }
    if (total_variation(census, probs) <= tol) {
      return static_cast<double>(t);
    }
  }
  return static_cast<double>(cap);
}

scenario_result run_e11(const scenario_context& ctx) {
  scenario_result result;
  const std::size_t replicas = ctx.pick<std::size_t>(6, 3);
  result.param("replicas", replicas);

  std::uint64_t salt = 0;
  // Replicates the hitting-time measurement on the batch engine (one
  // replica per worker-pool slot) and returns the mean.
  const auto replicated_hitting = [&](const abg_population& pop,
                                      std::size_t k) {
    return replicate_scalar(ctx.batch(replicas, salt++),
                            [&](const replica_context&, rng& gen) {
                              return census_hitting_time(pop, k, 0.1, gen);
                            })
        .mean();
  };

  double max_t_over_upper = 0.0;
  const auto ks = ctx.pick<std::vector<std::size_t>>({2, 4, 8, 16}, {2, 4, 8});
  auto& k_table = result.table(
      "(a) scaling in k (n = 1000, beta = 0.2): time/k should stabilize "
      "between\n    the bounds",
      {"k", "hitting time", "time/k", "lower kn/2 bound", "upper bound"});
  const auto pop = abg_population::from_fractions(1000, 0.1, 0.2, 0.7);
  double time_per_k_last = 0.0;
  for (const std::size_t k : ks) {
    const double t = replicated_hitting(pop, k);
    time_per_k_last = t / static_cast<double>(k);
    max_t_over_upper =
        std::max(max_t_over_upper, t / igt_mixing_upper_bound(pop, k));
    k_table.add_row({format_metric(static_cast<double>(k)),
                     fmt_count(static_cast<std::uint64_t>(t)),
                     format_metric(time_per_k_last, 4),
                     format_metric(igt_mixing_lower_bound(pop, k), 4),
                     format_metric(igt_mixing_upper_bound(pop, k), 4)});
  }

  const auto ns = ctx.pick<std::vector<std::size_t>>(
      {250, 500, 1000, 2000, 4000}, {250, 1000});
  auto& n_table = result.table(
      "(b) scaling in n (k = 6, beta = 0.2): time/(n log n) should "
      "stabilize",
      {"n", "hitting time", "time/(n log n)"});
  double time_over_nlogn_last = 0.0;
  for (const std::size_t n : ns) {
    const auto pop_n = abg_population::from_fractions(n, 0.1, 0.2, 0.7);
    const double t = replicated_hitting(pop_n, 6);
    time_over_nlogn_last =
        t / (static_cast<double>(n) * std::log(static_cast<double>(n)));
    n_table.add_row({format_metric(static_cast<double>(n)),
                     fmt_count(static_cast<std::uint64_t>(t)),
                     format_metric(time_over_nlogn_last, 4)});
  }

  const auto betas = ctx.pick<std::vector<double>>(
      {0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.6, 0.7}, {0.2, 0.45});
  auto& b_table = result.table(
      "(c) beta sweep (n = 1000, k = 8): slowdown near beta = 1/2 (the "
      "|1-2 beta|\n    effect)",
      {"beta", "|1-2 beta|", "hitting time", "min{k/|1-2b|, k^2}"});
  for (const double beta : betas) {
    const auto pop_b =
        abg_population::from_fractions(1000, 0.1, beta, 0.9 - beta);
    const double t = replicated_hitting(pop_b, 8);
    const double gap = std::abs(1.0 - 2.0 * pop_b.beta());
    const double factor = gap < 1e-12 ? 64.0 : std::min(8.0 / gap, 64.0);
    b_table.add_row({format_metric(pop_b.beta(), 3), format_metric(gap, 3),
                     fmt_count(static_cast<std::uint64_t>(t)),
                     format_metric(factor, 3)});
  }

  result.metric("time_per_k_last", time_per_k_last);
  result.metric("time_over_nlogn_last", time_over_nlogn_last);
  result.metric("max_t_over_upper", max_t_over_upper, metric_goal::minimize);
  result.note(
      "Expected shape: (a) linear-in-k growth; (b) mild super-linear growth "
      "in n\nconsistent with n log n; (c) a slowdown peak around beta = 1/2, "
      "the regime where\nthe embedded Ehrenfest chain loses its drift "
      "(Theorem 2.7's case distinction).");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "e11_igt_mixing", "igt,mixing,simulation",
    "k-IGT mixing-time scaling (Theorem 2.7)", run_e11);

}  // namespace
