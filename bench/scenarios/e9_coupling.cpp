// Experiment E9 (Lemma A.5 / Lemma A.8): the shared-randomness coupling.
// Measures the empirical distribution of the coalescence time tau_couple
// from the worst (corner) starts and checks
//   (a) E[tau] against the per-coordinate bound Phi = min{k/|a-b|, k^2} m
//       (converted from moves to steps by 1/(a+b)),
//   (b) the tail bound Pr[tau > 2 Phi log(4m)] <= 1/4,
//   (c) that Proposition A.7's absorption-time closed forms match a direct
//       simulation of the centered walk.
// Replication runs on the batch engine: each table row fans its replicas
// across the worker pool and aggregates deterministically.
#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "ppg/ehrenfest/bounds.hpp"
#include "ppg/ehrenfest/coupling.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/exp/scenario.hpp"
#include "ppg/markov/random_walk.hpp"
#include "ppg/util/table.hpp"

namespace {

using namespace ppg;

scenario_result run_e9(const scenario_context& ctx) {
  scenario_result result;
  const std::size_t runs = ctx.pick<std::size_t>(300, 60);
  result.param("coupling_replicas", runs);

  auto& table = result.table(
      "(a,b) corner-start coupling times",
      {"k", "m", "a", "b", "mean tau", "90% tau", "max tau", "Phi/(a+b)",
       "budget 2*Phi*log(4m)", "Pr[tau > budget]"});
  const auto coupling_configs = ctx.pick<std::vector<ehrenfest_params>>(
      {{2, 0.25, 0.25, 20},
       {4, 0.25, 0.25, 20},
       {4, 0.35, 0.15, 20},
       {8, 0.35, 0.15, 20},
       {8, 0.45, 0.05, 40},
       {16, 0.25, 0.25, 10}},
      {{2, 0.25, 0.25, 20}, {4, 0.35, 0.15, 20}, {8, 0.45, 0.05, 40}});
  double max_exceed = 0.0;
  std::uint64_t salt = 0;
  for (const auto& params : coupling_configs) {
    const auto budget = static_cast<std::uint64_t>(mixing_upper_bound(params));
    // Each replica reports its coupling time and whether it coalesced; the
    // fold censors non-coalesced runs at the budget and counts them as
    // exceedances (a run may also coalesce at exactly the budget, which is
    // not an exceedance).
    struct coupling_sample {
      double tau = 0.0;
      bool exceeded = false;
    };
    const auto samples =
        batch_runner(ctx.batch(runs, salt++))
            .run([&](const replica_context&, rng& gen) {
              const auto run = simulate_corner_coupling(params, budget, gen);
              return coupling_sample{
                  static_cast<double>(run.coalesced ? run.coupling_time
                                                    : budget),
                  !run.coalesced};
            });
    scalar_aggregator tau;
    std::size_t exceed_count = 0;
    for (const auto& sample : samples) {
      tau.add(sample.tau);
      if (sample.exceeded) ++exceed_count;
    }
    const double exceeded =
        static_cast<double>(exceed_count) / static_cast<double>(runs);
    max_exceed = std::max(max_exceed, exceeded);
    table.add_row({format_metric(static_cast<double>(params.k)),
                   format_metric(static_cast<double>(params.m)),
                   format_metric(params.a), format_metric(params.b),
                   format_metric(tau.mean(), 4),
                   format_metric(tau.quantile(0.9), 4),
                   format_metric(tau.max(), 4),
                   format_metric(phi_bound(params) / (params.a + params.b), 4),
                   fmt_count(budget), format_metric(exceeded, 3)});
  }

  const std::size_t walk_runs = ctx.pick<std::size_t>(20'000, 4'000);
  result.param("absorption_replicas", walk_runs);
  auto& walk_table = result.table(
      "(c) Proposition A.7 absorption times: closed form vs simulation",
      {"span 2k", "start", "up a", "down b", "closed form E[tau]",
       "simulated E[tau]", "95% CI half-width"});
  double max_absorption_err = 0.0;
  for (const auto& [a, b, span] :
       {std::tuple<double, double, std::int64_t>{0.25, 0.25, 12},
        std::tuple<double, double, std::int64_t>{0.3, 0.15, 12},
        std::tuple<double, double, std::int64_t>{0.4, 0.1, 20}}) {
    const std::int64_t start = span / 2;
    const auto sim = replicate_scalar(
        ctx.batch(walk_runs, salt++),
        [&, a = a, b = b, span = span](const replica_context&, rng& gen) {
          return static_cast<double>(
              simulate_absorption_time({a, b}, span, start, gen));
        });
    const double closed = expected_absorption_time({a, b}, span, start);
    max_absorption_err =
        std::max(max_absorption_err, std::abs(sim.mean() - closed) / closed);
    walk_table.add_row({format_metric(static_cast<double>(span)),
                        format_metric(static_cast<double>(start)),
                        format_metric(a), format_metric(b),
                        format_metric(closed, 5), format_metric(sim.mean(), 5),
                        format_metric(sim.ci_half_width(), 3)});
  }

  result.metric("max_exceed_prob", max_exceed, metric_goal::minimize);
  result.metric("max_absorption_rel_err", max_absorption_err,
                metric_goal::minimize);
  result.note(
      "Expected shape: mean tau well below the Phi-based budget, exceedance "
      "frequency\n<= 0.25 (Lemma A.8), and closed-form absorption times "
      "within the simulation CI.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "e9_coupling", "ehrenfest,coupling,simulation",
    "Shared-randomness coupling analysis (Appendix A.4.1)", run_e9);

}  // namespace
