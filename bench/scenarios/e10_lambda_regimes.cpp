// Experiment E10 (footnote 4 of the paper): behavior of the equilibrium
// gap Psi across lambda = (1-beta)/beta regimes. Theorem 2.9 is stated for
// lambda >= 2; the footnote warns that for lambda close to 1 the stationary
// mean can sit far from the best-response generosity and the O(1/k)
// convergence can fail. This scenario sweeps lambda through
// {4, 3, 2, 1.5, 1, 0.667, 0.5} for a fixed admissible game setting and
// reports Psi(k) and k*Psi, exposing where the decay degrades.
#include "ppg/core/equilibrium.hpp"
#include "ppg/core/theory.hpp"
#include "ppg/exp/scenario.hpp"

namespace {

using namespace ppg;

scenario_result run_e10(const scenario_context&) {
  scenario_result result;
  // One game setting constructed to be admissible at beta = 0.2 (lambda=4);
  // the population mix is then varied while the game stays fixed. Exact
  // computation throughout — no smoke reductions needed.
  const auto instance = make_theorem_2_9_instance(0.2, 0.7, 0.5);
  result.param("b", instance.setting.b);
  result.param("c", instance.setting.c);
  result.param("delta", instance.setting.delta);
  result.param("g_max", instance.g_max);
  result.param("alpha", 0.1);

  auto& table = result.table(
      "Psi across lambda regimes for the fixed admissible game",
      {"beta", "lambda", "dev-coeff", "Psi(k=8)", "Psi(k=32)", "Psi(k=128)",
       "128*Psi(128)", "decay?"});
  int decays_in_theorem_regime = 0;
  int rows_in_theorem_regime = 0;
  double k_psi_at_beta_02 = 0.0;
  for (const double beta : {0.2, 0.25, 1.0 / 3.0, 0.4, 0.5, 0.6, 2.0 / 3.0}) {
    const double alpha = 0.1;
    const double gamma = 1.0 - alpha - beta;
    const double lambda = (1.0 - beta) / beta;
    const auto cond =
        check_theorem_2_9(instance.setting, beta, gamma, instance.g_max);
    double psi8 = 0.0;
    double psi32 = 0.0;
    double psi128 = 0.0;
    for (const std::size_t k : {8u, 32u, 128u}) {
      const igt_equilibrium_analyzer analyzer(instance.setting, alpha, beta,
                                              gamma, k, instance.g_max);
      const double psi = analyzer.stationary_gap().epsilon;
      (k == 8 ? psi8 : k == 32 ? psi32 : psi128) = psi;
    }
    // Heuristic decay classification: Psi shrinks by >= 2x per 4x k.
    const bool decays = psi32 < psi8 / 2.0 && psi128 < psi32 / 2.0;
    if (lambda >= 2.0) {
      ++rows_in_theorem_regime;
      if (decays) ++decays_in_theorem_regime;
    }
    if (beta == 0.2) k_psi_at_beta_02 = psi128 * 128.0;
    table.add_row({format_metric(beta, 3), format_metric(lambda, 3),
                   format_metric(cond.deviation_coefficient, 3),
                   format_metric(psi8, 3), format_metric(psi32, 3),
                   format_metric(psi128, 3),
                   format_metric(psi128 * 128.0, 4), decays ? "yes" : "no"});
  }

  result.metric("k_psi_at_beta_02", k_psi_at_beta_02);
  result.metric("decay_fraction_lambda_ge_2",
                static_cast<double>(decays_in_theorem_regime) /
                    static_cast<double>(rows_in_theorem_regime),
                metric_goal::maximize);
  result.note(
      "Expected shape: clean O(1/k) decay for lambda >= 2 (the theorem's "
      "regime);\ndegradation as lambda approaches 1 from above, where the "
      "stationary mean spreads\nacross levels (beta = 1/2 makes mu uniform) "
      "— exactly the failure mode footnote 4\ndescribes. For lambda < 1 the "
      "mean collapses toward g = 0; with this cooperative\ngame setting the "
      "best response remains high generosity, so Psi stays Theta(1).");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "e10_lambda_regimes", "igt,equilibrium,exact",
    "Psi across lambda regimes (footnote 4)", run_e10);

}  // namespace
