// Experiment G3 (generic game-dynamics API): stag-hunt basin-of-attraction
// sweep. Local (single-partner) revision rules cannot see the coordination
// payoff through a population mixture, so the two classic regimes appear in
// sharp form: under a near-greedy logit response the dynamics reduce to the
// voter model — fixation is probabilistic with P(all-stag) equal to the
// initial stag fraction (the martingale property), the stochastic analogue
// of a basin boundary — while under imitate-if-better the risk-dominant
// all-hare equilibrium absorbs every initial condition (the sucker's payoff
// always loses the encounter comparison). The sweep counts fixations across
// an initial-condition grid and pins both regimes with seed-deterministic
// metrics; DESIGN.md §7 discusses why the mean-field ODE (drift ~0 for the
// voter regime) must not be trusted here.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "ppg/exp/scenario.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/mean_field.hpp"
#include "ppg/pp/engine.hpp"

namespace {

using namespace ppg;

scenario_result run_g3(const scenario_context& ctx) {
  scenario_result result;
  const std::uint64_t n = 200;
  const double stag = 4.0;
  const double hare = 3.0;
  const double temperature = 0.1;
  const auto replicas = ctx.pick<std::size_t>(48, 12);
  const std::vector<double> grid = {0.1, 0.2, 0.3, 0.4, 0.5,
                                    0.6, 0.7, 0.8, 0.9};
  const std::uint64_t max_steps = 400 * n;
  result.param("n", n);
  result.param("stag", stag);
  result.param("hare", hare);
  result.param("temperature", temperature);
  result.param("replicas", replicas);
  result.param("max_parallel_time", 400);

  const auto game = stag_hunt_matrix(stag, hare);
  const game_protocol voter_like(
      game, std::make_shared<logit_response_rule>(temperature));
  const game_protocol imitation(game,
                                std::make_shared<imitate_if_better_rule>());

  // Mean-field contrast: the logit drift is ~0 on the whole segment (the
  // voter limit), while the replicator field has its basin boundary at the
  // indifference point hare/stag.
  const mean_field_ode ode(voter_like);
  double max_drift = 0.0;
  for (const double x : grid) {
    const auto d = ode.drift({x, 1.0 - x});
    max_drift = std::max(max_drift, std::abs(d[0]));
  }
  const double replicator_threshold = hare / stag;

  auto& table = result.table(
      "fixation sweep: stag fixations out of R replicas per initial "
      "fraction",
      {"initial stag", "logit (voter regime)", "voter prediction",
       "imitate-if-better"});
  std::uint64_t stag_basin_count = 0;
  std::uint64_t risk_dominance_violations = 0;
  double martingale_error = 0.0;
  std::uint64_t salt = 1;
  for (const double x0 : grid) {
    const auto stags =
        static_cast<std::uint64_t>(x0 * static_cast<double>(n));
    const std::vector<std::uint64_t> counts = {stags, n - stags};
    const sim_spec voter_spec(voter_like, counts);
    const sim_spec imitation_spec(imitation, counts);
    std::uint64_t stag_fixations = 0;
    std::uint64_t hare_fixations = 0;
    for (std::size_t r = 0; r < replicas; ++r) {
      rng gen = ctx.make_rng(salt++);
      const auto engine = voter_spec.make_engine(engine_kind::census, gen);
      // Quasi-fixation: at temperature 0.1 the escape probability per
      // revision is ~e^{-10}, so 95% is effectively absorbed.
      (void)engine->run_until(
          [&](const census_view& census) {
            const auto s = census.count(0);
            return s >= (19 * n) / 20 || s <= n / 20;
          },
          max_steps);
      if (2 * engine->census().count(0) >= n) {
        ++stag_fixations;
      }
    }
    for (std::size_t r = 0; r < replicas; ++r) {
      rng gen = ctx.make_rng(salt++);
      const auto engine =
          imitation_spec.make_engine(engine_kind::census, gen);
      (void)engine->run_until(
          [](const census_view& census) { return census.count(0) == 0; },
          max_steps);
      if (engine->census().count(0) == 0) ++hare_fixations;
    }
    stag_basin_count += stag_fixations;
    risk_dominance_violations += replicas - hare_fixations;
    const double share = static_cast<double>(stag_fixations) /
                         static_cast<double>(replicas);
    martingale_error = std::max(martingale_error, std::abs(share - x0));
    table.add_row(
        {format_metric(x0, 2),
         format_metric(static_cast<double>(stag_fixations)),
         format_metric(x0 * static_cast<double>(replicas), 3),
         format_metric(static_cast<double>(replicas - hare_fixations))});
  }

  result.metric("stag_basin_count",
                static_cast<double>(stag_basin_count),
                metric_goal::maximize);
  result.metric("fixation_martingale_error", martingale_error,
                metric_goal::minimize);
  result.metric("risk_dominance_violations",
                static_cast<double>(risk_dominance_violations),
                metric_goal::minimize);
  result.metric("mean_field_max_drift", max_drift);
  result.metric("replicator_threshold", replicator_threshold);
  result.note(
      "Expected shape: logit fixations climb linearly with the initial stag\n"
      "fraction (voter martingale: P(all-stag) = x0, binomial scatter\n"
      "across R replicas), imitate-if-better fixates all-hare everywhere\n"
      "(0 violations), and neither follows the replicator basin boundary\n"
      "hare/stag = 0.75 — local single-partner rules cannot express it.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "g3_stag_hunt_basins", "games,coordination,census-engine",
    "Stag-hunt fixation-basin sweep under local revision rules", run_g3);

}  // namespace
