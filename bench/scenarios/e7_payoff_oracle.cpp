// Experiment E7 (Appendix B.1.5): the exact expected-payoff oracle. Three
// independent computations of f(S1, S2) must agree:
//   closed forms (44)-(46)  ==  matrix engine q1 (I - delta M)^{-1} v
//                           ==  Monte-Carlo rollouts (within CI).
#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "ppg/exp/scenario.hpp"
#include "ppg/games/closed_form.hpp"
#include "ppg/games/rollout.hpp"

namespace {

using namespace ppg;

scenario_result run_e7(const scenario_context& ctx) {
  scenario_result result;
  const rd_setting s{3.0, 1.0, 0.8, 0.7};
  const repeated_donation_game rdg = s.to_game();
  const std::size_t trials = ctx.pick<std::size_t>(200'000, 20'000);
  result.param("b", s.b);
  result.param("c", s.c);
  result.param("delta", s.delta);
  result.param("s1", s.s1);
  result.param("rollouts_per_pairing", trials);

  rng gen = ctx.make_rng();
  auto& table = result.table(
      "three independent payoff computations per pairing",
      {"pairing", "closed form", "matrix engine", "Monte Carlo",
       "MC std err", "|closed - engine|"});
  double max_engine_gap = 0.0;
  double max_mc_zscore = 0.0;
  const auto add_row = [&](const std::string& name, double closed,
                           const memory_one_strategy& row,
                           const memory_one_strategy& col) {
    const double engine = expected_payoff(rdg, row, col);
    const auto mc = estimate_payoff(rdg, row, col, trials, gen);
    const double gap = std::abs(closed - engine);
    max_engine_gap = std::max(max_engine_gap, gap);
    if (mc.std_error() > 0.0) {
      max_mc_zscore = std::max(
          max_mc_zscore, std::abs(mc.mean() - engine) / mc.std_error());
    }
    table.add_row({name, format_metric(closed, 6), format_metric(engine, 6),
                   format_metric(mc.mean(), 6),
                   format_metric(mc.std_error(), 3), format_metric(gap, 3)});
  };

  for (const double g : {0.0, 0.3, 0.7}) {
    add_row("GTFT(" + format_metric(g, 2) + ") vs AC", f_gtft_vs_ac(s),
            generous_tit_for_tat(g, s.s1), always_cooperate());
    add_row("GTFT(" + format_metric(g, 2) + ") vs AD", f_gtft_vs_ad(s, g),
            generous_tit_for_tat(g, s.s1), always_defect());
  }
  for (const auto& [g, gp] :
       {std::pair{0.0, 0.0}, std::pair{0.3, 0.7}, std::pair{0.7, 0.3},
        std::pair{1.0, 1.0}}) {
    add_row(
        "GTFT(" + format_metric(g, 2) + ") vs GTFT(" + format_metric(gp, 2) +
            ")",
        f_gtft_vs_gtft(s, g, gp), generous_tit_for_tat(g, s.s1),
        generous_tit_for_tat(gp, s.s1));
  }

  result.metric("max_closed_engine_gap", max_engine_gap,
                metric_goal::minimize);
  result.metric("max_mc_zscore", max_mc_zscore);
  result.note(
      "Expected shape: closed form and engine agree to ~1e-10; Monte Carlo "
      "within a\nfew standard errors (the rollout plays the literal "
      "round-by-round game of\nSection 1.1.2).");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "e7_payoff_oracle", "games,exact,monte-carlo",
    "Expected payoff oracle: closed form vs matrix engine vs rollouts "
    "(eqs. 44-46)",
    run_e7);

}  // namespace
