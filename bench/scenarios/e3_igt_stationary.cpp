// Experiment E3 (Theorem 2.7): the k-IGT dynamics' level census is exactly
// a (k, gamma(1-beta), gamma*beta, gamma*n)-Ehrenfest process; its
// stationary distribution is multinomial with p_j ∝ (1/beta - 1)^{j-1}.
//
// The dynamics run at the census level (engine_kind::census — the exact
// interaction law of the agent-level protocol, executed on the count vector
// alone; both pair-sampling disciplines, independent replicas each on the
// batch engine) and the replica-averaged census is compared to the closed
// form across beta regimes.
#include <algorithm>
#include <vector>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/exp/scenario.hpp"
#include "ppg/stats/empirical.hpp"

namespace {

using namespace ppg;

scenario_result run_e3(const scenario_context& ctx) {
  scenario_result result;
  const std::size_t n = 400;
  const std::size_t k = 6;
  const double alpha = 0.1;
  const std::size_t replicas = ctx.pick<std::size_t>(4, 2);
  const std::uint64_t samples = ctx.pick<std::uint64_t>(125'000, 30'000);
  const auto betas = ctx.pick<std::vector<double>>(
      {0.1, 0.2, 1.0 / 3.0, 0.5, 0.7}, {0.2, 0.5});
  result.param("n", n);
  result.param("k", k);
  result.param("alpha", alpha);
  result.param("replicas", replicas);
  result.param("samples", samples);

  auto& table = result.table(
      "census-engine simulation of Definition 2.1 vs the Theorem 2.7 "
      "closed form",
      {"beta", "lambda", "sampling", "TV(census, Thm 2.7)",
       "top-level mass (sim)", "top-level mass (theory)", "top-level CI"});
  double max_tv = 0.0;
  std::uint64_t salt = 0;
  for (const double beta : betas) {
    const auto pop =
        abg_population::from_fractions(n, alpha, beta, 1.0 - alpha - beta);
    const auto expected = igt_stationary_probs(pop, k);
    const auto burn =
        static_cast<std::uint64_t>(igt_mixing_upper_bound(pop, k));
    for (const auto sampling :
         {pair_sampling::distinct, pair_sampling::with_replacement}) {
      const igt_protocol proto(k);
      const sim_spec spec(
          proto, population(make_igt_population_states(pop, k, 0), 2 + k),
          sampling);
      const auto batch = replicate_time_averaged_census(
          spec, engine_kind::census, burn, samples, ctx.batch(replicas, salt++),
          [&](const census_view& census) {
            const auto z = gtft_level_counts(census, k);
            std::vector<double> occupancy(k);
            for (std::size_t j = 0; j < k; ++j) {
              occupancy[j] = static_cast<double>(z[j]) /
                             static_cast<double>(pop.num_gtft);
            }
            return occupancy;
          });
      const auto census = batch.mean();
      const double lambda = (1.0 - pop.beta()) / pop.beta();
      const double tv = total_variation(census, expected);
      max_tv = std::max(max_tv, tv);
      table.add_row(
          {format_metric(pop.beta(), 3), format_metric(lambda, 3),
           sampling == pair_sampling::distinct ? "distinct" : "replace",
           format_metric(tv, 4), format_metric(census[k - 1], 4),
           format_metric(expected[k - 1], 4),
           format_metric(batch.ci_half_width()[k - 1], 4)});
    }
  }

  result.metric("max_tv", max_tv, metric_goal::minimize);
  result.note(
      "Expected shape: TV below ~0.01 for both sampling disciplines (the "
      "paper's\nidealized probabilities differ from the distinct-pair model "
      "by O(1/n));\ntop-level mass decreases as beta grows, crossing 1/k at "
      "beta = 1/2.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "e3_igt_stationary", "igt,stationary,census-engine",
    "Stationary census of the k-IGT dynamics (Theorem 2.7)", run_e3);

}  // namespace
