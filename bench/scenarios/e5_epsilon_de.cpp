// Experiment E5 (Theorem 2.9): the normalized mean stationary distribution
// mu of the k-IGT dynamics is an epsilon-approximate distributional
// equilibrium with epsilon = O(1/k).
//
// Three parts:
//  (a) exact Psi(k) decay within the (corrected) admissible regime — the
//      k*Psi column should stabilize;
//  (b) Psi measured from an actual census-engine simulation census;
//  (c) reproduction note — an instance satisfying the paper's *literal*
//      constraints whose equation-(63) bracket is negative: Psi stays
//      Theta(1). The corrected deviation-gain condition (see theory.hpp)
//      separates the two regimes.
#include <algorithm>
#include <cmath>
#include <vector>

#include "ppg/core/equilibrium.hpp"
#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/core/theory.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/exp/scenario.hpp"

namespace {

using namespace ppg;

scenario_result run_e5(const scenario_context& ctx) {
  scenario_result result;
  const double alpha = 0.1;
  const double beta = 0.2;  // lambda = 4
  const double gamma = 0.7;
  const auto instance = make_theorem_2_9_instance(beta, gamma, 0.5);
  const auto cond =
      check_theorem_2_9(instance.setting, beta, gamma, instance.g_max);
  result.param("b", instance.setting.b);
  result.param("c", instance.setting.c);
  result.param("delta", instance.setting.delta);
  result.param("s1", instance.setting.s1);
  result.param("g_max", instance.g_max);
  result.param("conditions_hold", cond.all());

  auto& psi_table = result.table(
      "(a) exact Psi(k) under the stationary mean distribution",
      {"k", "Psi", "k*Psi", "best deviation level",
       "L*Var bound (D.1-D.3)"});
  double last_k_psi = 0.0;
  for (const std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const igt_equilibrium_analyzer analyzer(instance.setting, alpha, beta,
                                            gamma, k, instance.g_max);
    const auto de = analyzer.stationary_gap();
    const double l_bound =
        second_derivative_bound(instance.setting, instance.g_max) *
        stationary_generosity_variance(beta, k, instance.g_max);
    last_k_psi = de.epsilon * static_cast<double>(k);
    psi_table.add_row({format_metric(static_cast<double>(k)),
                       format_metric(de.epsilon, 4),
                       format_metric(last_k_psi, 4),
                       format_metric(static_cast<double>(de.best_level + 1)),
                       format_metric(l_bound, 3)});
  }

  const std::size_t n = 300;
  const std::size_t replicas = ctx.pick<std::size_t>(4, 2);
  const std::uint64_t samples = ctx.pick<std::uint64_t>(100'000, 30'000);
  const auto sim_ks =
      ctx.pick<std::vector<std::size_t>>({4, 8, 16}, {4, 8});
  result.param("sim_n", n);
  result.param("sim_replicas", replicas);
  result.param("sim_samples", samples);
  auto& sim_table = result.table(
      "(b) Psi of the census measured from the census-engine simulation",
      {"k", "Psi (ideal mu)", "Psi (simulated census)"});
  const auto pop = abg_population::from_fractions(n, alpha, beta, gamma);
  double max_psi_gap = 0.0;
  std::uint64_t salt = 0;
  for (const std::size_t k : sim_ks) {
    const igt_equilibrium_analyzer analyzer(instance.setting, alpha, beta,
                                            gamma, k, instance.g_max);
    const igt_protocol proto(k);
    const sim_spec spec(
        proto, population(make_igt_population_states(pop, k, 0), 2 + k),
        pair_sampling::with_replacement);
    const auto burn =
        static_cast<std::uint64_t>(igt_mixing_upper_bound(pop, k));
    const auto batch = replicate_time_averaged_census(
        spec, engine_kind::census, burn, samples, ctx.batch(replicas, salt++),
        [&](const census_view& census) {
          const auto z = gtft_level_counts(census, k);
          std::vector<double> mu(k);
          for (std::size_t j = 0; j < k; ++j) {
            mu[j] = static_cast<double>(z[j]) /
                    static_cast<double>(pop.num_gtft);
          }
          return mu;
        });
    const double psi_ideal = analyzer.stationary_gap().epsilon;
    const double psi_sim = analyzer.gap(batch.mean()).epsilon;
    max_psi_gap = std::max(max_psi_gap, std::abs(psi_sim - psi_ideal));
    sim_table.add_row({format_metric(static_cast<double>(k)),
                       format_metric(psi_ideal, 4),
                       format_metric(psi_sim, 4)});
  }

  const rd_setting bad{4.0, 1.0, 0.45, 0.5};
  const auto bad_cond = check_theorem_2_9(bad, 0.2, 0.7, 0.9);
  result.param("bad_paper_conditions_hold", bad_cond.paper_conditions());
  result.param("bad_deviation_coefficient", bad_cond.deviation_coefficient);
  auto& bad_table = result.table(
      "(c) literal-conditions instance with a negative equation-(63) "
      "bracket:\n    Psi does NOT decay",
      {"k", "Psi", "k*Psi", "best deviation level"});
  double bad_last_psi = 0.0;
  for (const std::size_t k : {4u, 16u, 64u}) {
    const igt_equilibrium_analyzer analyzer(bad, 0.1, 0.2, 0.7, k, 0.9);
    const auto de = analyzer.stationary_gap();
    bad_last_psi = de.epsilon;
    bad_table.add_row({format_metric(static_cast<double>(k)),
                       format_metric(de.epsilon, 4),
                       format_metric(de.epsilon * static_cast<double>(k), 4),
                       format_metric(static_cast<double>(de.best_level + 1))});
  }

  result.metric("last_k_psi", last_k_psi);
  result.metric("max_psi_sim_gap", max_psi_gap, metric_goal::minimize);
  result.metric("bad_instance_psi_at_64", bad_last_psi);
  result.note(
      "Expected shape: (a) k*Psi stabilizes (O(1/k) decay), the best "
      "deviation is the\ntop level and the Taylor term L*Var = O(1/k^2) is "
      "dominated; (b) simulated Psi\ntracks the ideal one; (c) Psi ~ "
      "constant with the best deviation at level 1 —\nthe corrected "
      "condition is necessary.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "e5_epsilon_de", "igt,equilibrium,census-engine",
    "Epsilon-approximate distributional equilibrium (Theorem 2.9)", run_e5);

}  // namespace
