// Intra-run parallelism scenario (DESIGN.md §11): the sharded multibatch
// round core and the SoA ensemble engine.
//
//  - Sharded rounds: one dense hawk-dove trajectory advanced by multibatch
//    engines at 1 / 2 / 8 shard threads. The decomposition is a fixed law
//    (shard count is a function of the round length, never the thread
//    count), so the full snapshots — census, counters, residual carry, RNG
//    position — must be bitwise identical; that pass flag and the engine's
//    seed-deterministic work counters (rounds, collisions, aggregation
//    factor) are the gated metrics.
//  - Ensemble: R lockstep replicas on SoA planes, checked bitwise against
//    R solo multibatch engines under the batch_runner stream law, and for
//    thread-count independence; ensemble totals gate alongside the flags.
//
// Wall-clock rates and speedups (shards > 1 vs 1, ensemble vs solo loop)
// are recorded for the trajectory but carry no regression goal: CI core
// counts and cache hierarchies vary, so only seed-deterministic quantities
// gate — the same split every perf scenario here uses.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ppg/exp/scenario.hpp"
#include "ppg/games/game_matrix.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/update_rule.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/pp/ensemble_engine.hpp"
#include "ppg/pp/multibatch_engine.hpp"
#include "ppg/util/rng.hpp"
#include "ppg/util/table.hpp"
#include "ppg/util/timer.hpp"

namespace {

using namespace ppg;

/// Dense two-way hawk-dove: every pair randomizes both sides, so every
/// round exercises the MVH tables, the multinomial splits, and the merge.
game_protocol dense_proto() {
  return {hawk_dove_matrix(1.0, 2.0),
          std::make_shared<logit_response_rule>(0.5),
          revision_discipline::two_way};
}

std::vector<std::uint64_t> half_split(std::uint64_t n) {
  return {n / 2, n - n / 2};
}

scenario_result run_parallel(const scenario_context& ctx) {
  scenario_result result;
  const auto proto = dense_proto();

  // --- Sharded multibatch rounds -------------------------------------
  const std::uint64_t n = ctx.pick<std::uint64_t>(8'000'000, 1'000'000);
  const std::uint64_t steps = ctx.pick<std::uint64_t>(4'000'000, 400'000);
  result.param("n", n);
  result.param("steps", steps);
  result.param("game", "hawk-dove v=1 c=2, logit tau=0.5, two-way");

  auto& shard_table = result.table(
      "sharded multibatch rounds: one seed, one trajectory, varying shard "
      "threads\n(snapshots must be bitwise identical)",
      {"shard threads", "interactions/s", "identical"});
  std::string reference_state;
  double base_rate = 0.0;
  bool shard_deterministic = true;
  std::uint64_t rounds = 0;
  std::uint64_t collisions = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    multibatch_engine engine(proto, half_split(n), ctx.make_rng(1));
    engine.set_shards(threads);
    const timer clock;
    engine.run(steps);
    const double rate = static_cast<double>(steps) / clock.seconds();
    const std::string state = engine.save_state().dump_string(false);
    if (threads == 1) {
      reference_state = state;
      base_rate = rate;
      rounds = engine.rounds();
      collisions = engine.collisions();
    } else if (state != reference_state) {
      shard_deterministic = false;
    }
    result.metric("ips_sharded_t" +
                      format_metric(static_cast<double>(threads)),
                  rate);
    shard_table.add_row({format_metric(static_cast<double>(threads)),
                         format_metric(rate, 4),
                         state == reference_state ? "yes" : "NO"});
  }
  result.metric("shard_determinism", shard_deterministic ? 1.0 : 0.0,
                metric_goal::maximize);
  // The engine's seed-deterministic work profile: identical on every
  // machine at a fixed (smoke, seed), so exact-value drifts surface in the
  // refresh diff and real regressions (lost aggregation) gate.
  result.metric("mb_rounds", static_cast<double>(rounds),
                metric_goal::maximize);
  result.metric("mb_collisions", static_cast<double>(collisions),
                metric_goal::maximize);
  result.metric("mb_aggregation_factor",
                static_cast<double>(steps) /
                    static_cast<double>(rounds + collisions),
                metric_goal::maximize);

  // --- SoA ensemble engine -------------------------------------------
  const std::uint64_t en = ctx.pick<std::uint64_t>(1'000'000, 200'000);
  const std::size_t replicas = ctx.pick<std::size_t>(48, 12);
  const std::uint64_t esteps = ctx.pick<std::uint64_t>(250'000, 50'000);
  const std::uint64_t master = derive_stream_seed(ctx.seed, 7);
  result.param("ensemble_n", en);
  result.param("ensemble_replicas", replicas);
  result.param("ensemble_steps_per_replica", esteps);
  const sim_spec spec(proto, half_split(en));

  // R solo multibatch engines under the batch_runner stream law: the
  // bitwise reference for the ensemble, and the baseline its shared
  // kernel + birthday table + contiguous planes are measured against.
  std::vector<std::vector<std::uint64_t>> solo_census(replicas);
  const timer solo_clock;
  for (std::size_t r = 0; r < replicas; ++r) {
    rng gen = make_stream_rng(master, r);
    const auto engine = spec.make_engine(engine_kind::multibatch, gen);
    engine->run(esteps);
    solo_census[r] = engine->census().counts();
  }
  const double solo_seconds = solo_clock.seconds();

  auto& ensemble_table = result.table(
      "SoA ensemble vs a loop of solo multibatch engines (same master "
      "seed,\nsame stream law; replicas must be bitwise twins)",
      {"path", "threads", "total interactions/s", "twins"});
  const double total_steps =
      static_cast<double>(replicas) * static_cast<double>(esteps);
  ensemble_table.add_row({"solo loop", "1",
                          format_metric(total_steps / solo_seconds, 4),
                          "reference"});
  result.metric("ips_solo_loop", total_steps / solo_seconds);

  bool ensemble_twins = true;
  bool thread_deterministic = true;
  double ensemble_base_rate = 0.0;
  std::uint64_t ensemble_rounds = 0;
  std::uint64_t ensemble_collisions = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ensemble_engine ensemble(proto, half_split(en), master, replicas);
    ensemble.set_threads(threads);
    const timer clock;
    ensemble.run(esteps);
    const double rate = total_steps / clock.seconds();
    bool twins = true;
    for (std::size_t r = 0; r < replicas; ++r) {
      if (ensemble.replica_census(r) != solo_census[r]) twins = false;
    }
    if (threads == 1) {
      ensemble_base_rate = rate;
      ensemble_rounds = ensemble.total_rounds();
      ensemble_collisions = ensemble.total_collisions();
      ensemble_twins = twins;
    } else if (!twins) {
      // Solo equality at one thread count plus cross-thread equality is
      // the full contract; a mismatch here is a thread-determinism break.
      thread_deterministic = false;
    }
    result.metric("ips_ensemble_t" +
                      format_metric(static_cast<double>(threads)),
                  rate);
    ensemble_table.add_row({"ensemble",
                            format_metric(static_cast<double>(threads)),
                            format_metric(rate, 4), twins ? "yes" : "NO"});
  }
  result.metric("ensemble_twins", ensemble_twins ? 1.0 : 0.0,
                metric_goal::maximize);
  result.metric("ensemble_thread_determinism",
                thread_deterministic ? 1.0 : 0.0, metric_goal::maximize);
  result.metric("ensemble_total_rounds",
                static_cast<double>(ensemble_rounds), metric_goal::maximize);
  result.metric("ensemble_total_collisions",
                static_cast<double>(ensemble_collisions),
                metric_goal::maximize);

  // Wall-clock-derived ratios: trajectory only, no goals (hardware-bound).
  result.metric("speedup_sharded_t8_vs_t1",
                result.metric_value("ips_sharded_t8") / base_rate);
  result.metric("speedup_ensemble_vs_solo_loop",
                ensemble_base_rate *
                    (solo_seconds / total_steps));
  result.note(
      "Expected shape: bitwise-identical snapshots at every shard thread "
      "count\n(shard_determinism = 1), bitwise replica twins and "
      "thread-independence for\nthe ensemble (ensemble_twins = "
      "ensemble_thread_determinism = 1), and\nwall-clock speedups that "
      "track the host's core count (informational only).");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "p1_parallel_engines", "parallel,threads,engines,multibatch,perf",
    "Sharded multibatch determinism across thread counts and the SoA "
    "ensemble engine vs solo replication",
    run_parallel);

}  // namespace
