// Ablation A1: one-way vs two-way update discipline. The paper adopts the
// standard one-way protocol (only the initiator updates; footnote 3). The
// two-way variant doubles the per-agent update rate without changing the
// up/down ratio, so Theorem 2.7's stationary census should be unchanged
// while convergence roughly doubles in speed — a free 2x if the application
// allows symmetric updates.
#include <algorithm>
#include <vector>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/exp/scenario.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/table.hpp"

namespace {

using namespace ppg;

std::vector<double> stationary_census(const abg_population& pop,
                                      std::size_t k, igt_discipline discipline,
                                      std::uint64_t steps, rng gen) {
  const igt_protocol proto(k, discipline);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, k, 0), 2 + k),
                      pair_sampling::with_replacement);
  const auto sim = spec.make_engine(engine_kind::census, gen);
  sim->run(steps);
  std::vector<double> occupancy(k, 0.0);
  const std::uint64_t samples = steps;
  for (std::uint64_t i = 0; i < samples; ++i) {
    sim->step();
    const auto census = gtft_level_counts(sim->census(), k);
    for (std::size_t j = 0; j < k; ++j) {
      occupancy[j] += static_cast<double>(census[j]);
    }
  }
  for (auto& x : occupancy) {
    x /= static_cast<double>(samples) * static_cast<double>(pop.num_gtft);
  }
  return occupancy;
}

double hitting_time(const abg_population& pop, std::size_t k,
                    igt_discipline discipline, rng& gen) {
  const auto probs = igt_stationary_probs(pop, k);
  double target = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    target += static_cast<double>(j) * probs[j];
  }
  target *= 0.9;
  const igt_protocol proto(k, discipline);
  const sim_spec spec(proto,
                      population(make_igt_population_states(pop, k, 0), 2 + k),
                      pair_sampling::with_replacement);
  const auto sim = spec.make_engine(engine_kind::census, gen);
  for (std::uint64_t t = 32; t <= 100'000'000; t += 32) {
    sim->run(32);
    const auto census = gtft_level_counts(sim->census(), k);
    double mean_level = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      mean_level += static_cast<double>(j) * static_cast<double>(census[j]);
    }
    if (mean_level / static_cast<double>(pop.num_gtft) >= target) {
      return static_cast<double>(t);
    }
  }
  return 100'000'000.0;
}

scenario_result run_a1(const scenario_context& ctx) {
  scenario_result result;
  const std::size_t k = 6;
  const std::uint64_t census_steps = ctx.pick<std::uint64_t>(400'000, 120'000);
  const std::size_t replicas = ctx.pick<std::size_t>(6, 3);
  result.param("k", k);
  result.param("census_steps", census_steps);
  result.param("hitting_replicas", replicas);

  std::uint64_t salt = 0;
  auto& census_table = result.table(
      "(a) stationary census is discipline-invariant (TV vs Theorem 2.7)",
      {"beta", "TV one-way", "TV two-way"});
  const auto betas =
      ctx.pick<std::vector<double>>({0.15, 0.3, 0.5}, {0.15, 0.3});
  double max_tv = 0.0;
  for (const double beta : betas) {
    const auto pop =
        abg_population::from_fractions(300, 0.1, beta, 0.9 - beta);
    const auto expected = igt_stationary_probs(pop, k);
    const auto one = stationary_census(pop, k, igt_discipline::one_way,
                                       census_steps, ctx.make_rng(salt++));
    const auto two = stationary_census(pop, k, igt_discipline::two_way,
                                       census_steps, ctx.make_rng(salt++));
    const double tv_one = total_variation(one, expected);
    const double tv_two = total_variation(two, expected);
    max_tv = std::max(max_tv, std::max(tv_one, tv_two));
    census_table.add_row({format_metric(pop.beta(), 3),
                          format_metric(tv_one, 4),
                          format_metric(tv_two, 4)});
  }

  // Mean hitting time over independent replicas, fanned across the batch
  // engine's worker pool.
  const auto mean_hitting_time = [&](const abg_population& pop,
                                     igt_discipline discipline) {
    return replicate_scalar(ctx.batch(replicas, salt++),
                            [&](const replica_context&, rng& gen) {
                              return hitting_time(pop, k, discipline, gen);
                            })
        .mean();
  };

  auto& speed_table = result.table(
      "(b) convergence speedup (hitting-time proxy, replica mean)",
      {"n", "one-way", "two-way", "speedup"});
  const auto ns =
      ctx.pick<std::vector<std::size_t>>({300, 600, 1200}, {300, 600});
  double min_speedup = 1e300;
  for (const std::size_t n : ns) {
    const auto pop = abg_population::from_fractions(n, 0.1, 0.2, 0.7);
    const double one = mean_hitting_time(pop, igt_discipline::one_way);
    const double two = mean_hitting_time(pop, igt_discipline::two_way);
    min_speedup = std::min(min_speedup, one / two);
    speed_table.add_row({format_metric(static_cast<double>(n)),
                         fmt_count(static_cast<std::uint64_t>(one)),
                         fmt_count(static_cast<std::uint64_t>(two)),
                         format_metric(one / two, 4)});
  }

  result.metric("max_tv", max_tv, metric_goal::minimize);
  result.metric("min_speedup", min_speedup, metric_goal::maximize);
  result.note(
      "Expected shape: both disciplines hit the Theorem 2.7 census (TV ~ "
      "0.01); the\ntwo-way variant converges ~2x faster (each interaction "
      "performs up to two\nupdates).");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "a1_discipline_ablation", "igt,ablation,census-engine",
    "One-way vs two-way IGT update discipline", run_a1);

}  // namespace
