// Engine and subsystem throughput scenarios (replacing the old
// google-benchmark bench_throughput binary with registry scenarios whose
// rates land in the same JSON trajectory as every other experiment).
//
//  - throughput_engines: interactions per second of the pluggable
//    simulation engines (agent / census / batched / multibatch, selected
//    via sim_spec::make_engine) on the one-way IGT kernel (dense and
//    dilute) and on dense matrix games (hawk-dove, rock-paper-scissors).
//    The census engine's per-interaction cost is O(q) and independent of
//    n, the batched engine skips runs of identity interactions in one
//    geometric draw (huge in the dilute regime, inert on dense games), and
//    the multibatch engine advances in aggregated ~sqrt(n)-interaction
//    rounds, so it is the engine that stays sublinear on dense kernels.
//  - throughput_batch: aggregate throughput and thread scaling of the
//    batch-replication engine, plus the bit-identical-aggregates
//    determinism check across thread counts.
//  - throughput_micro: single-component rates (count chains, exact-chain
//    distribution step, payoff oracles, rollouts).
//
// Everything wall-clock-derived (rates AND cross-engine speedups) is
// recorded without a regression goal: CI hardware varies, so only
// seed-deterministic quantities (here: the thread-determinism flag) gate
// the regression check — see scripts/check_bench.py.
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/ehrenfest/process.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/exp/scenario.hpp"
#include "ppg/games/closed_form.hpp"
#include "ppg/games/exact_payoff.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/rollout.hpp"
#include "ppg/games/update_rule.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/pp/ensemble_engine.hpp"
#include "ppg/pp/multibatch_engine.hpp"
#include "ppg/util/table.hpp"
#include "ppg/util/timer.hpp"

namespace {

using namespace ppg;

// Runs `chunk()` (which performs `items` units of work) until `min_seconds`
// of wall clock accumulate, after one untimed warmup call; returns units
// per second.
template <typename Chunk>
double measure_rate(Chunk&& chunk, double items, double min_seconds) {
  chunk();  // warmup
  const timer clock;
  double total = 0.0;
  do {
    chunk();
    total += items;
  } while (clock.seconds() < min_seconds);
  return total / clock.seconds();
}

// A census-form one-way IGT spec (no per-agent array) with GTFT levels
// initialized at the rounded Theorem 2.7 stationary census, so every row
// measures steady-state throughput rather than the all-stingy transient.
sim_spec igt_spec(const igt_protocol& proto, std::uint64_t n, double alpha,
                  double beta, double gamma) {
  const auto pop = abg_population::from_fractions(n, alpha, beta, gamma);
  const auto probs = igt_stationary_probs(pop, proto.k());
  std::vector<std::uint64_t> counts(proto.num_states(), 0);
  counts[igt_encoding::ac] = pop.num_ac;
  counts[igt_encoding::ad] = pop.num_ad;
  std::uint64_t placed = 0;
  for (std::size_t j = 0; j + 1 < proto.k(); ++j) {
    const auto c = static_cast<std::uint64_t>(
        probs[j] * static_cast<double>(pop.num_gtft));
    counts[igt_encoding::gtft(j)] = c;
    placed += c;
  }
  counts[igt_encoding::gtft(proto.k() - 1)] = pop.num_gtft - placed;
  return sim_spec(proto, std::move(counts));
}

scenario_result run_engines(const scenario_context& ctx) {
  scenario_result result;
  const double min_seconds = ctx.pick(0.5, 0.08);
  const igt_protocol proto(8);
  result.param("k", 8);
  result.param("beta", 0.2);
  result.param("min_seconds_per_row", min_seconds);

  struct row_spec {
    engine_kind kind;
    std::uint64_t n;
    bool dilute;
    bool full_only;  // n = 10^8 rows are skipped in smoke mode
  };
  const std::vector<row_spec> rows = {
      {engine_kind::agent, 10'000, false, false},
      {engine_kind::agent, 1'000'000, false, false},
      {engine_kind::census, 10'000, false, false},
      {engine_kind::census, 1'000'000, false, false},
      {engine_kind::census, 100'000'000, false, true},
      {engine_kind::batched, 10'000, false, false},
      {engine_kind::batched, 1'000'000, false, false},
      {engine_kind::batched, 100'000'000, false, true},
      {engine_kind::multibatch, 10'000, false, false},
      {engine_kind::multibatch, 1'000'000, false, false},
      {engine_kind::multibatch, 100'000'000, false, true},
      {engine_kind::agent, 1'000'000, true, false},
      {engine_kind::census, 1'000'000, true, false},
      {engine_kind::census, 100'000'000, true, true},
      {engine_kind::batched, 1'000'000, true, false},
      {engine_kind::batched, 100'000'000, true, true},
      {engine_kind::multibatch, 1'000'000, true, false},
      {engine_kind::multibatch, 100'000'000, true, true},
  };

  auto& table = result.table(
      "interactions/second on the one-way IGT kernel (dense gamma = 0.7, "
      "dilute\ngamma = 0.05; stationary-census start)",
      {"engine", "n", "regime", "interactions/s"});
  double ips_dense_agent_1e6 = 0.0;
  double ips_dense_batched_1e6 = 0.0;
  double ips_dilute_agent_1e6 = 0.0;
  double ips_dilute_batched_1e6 = 0.0;
  for (const auto& row : rows) {
    if (row.full_only && ctx.smoke) continue;
    const double gamma = row.dilute ? 0.05 : 0.7;
    const sim_spec spec =
        igt_spec(proto, row.n, 1.0 - 0.2 - gamma, 0.2, gamma);
    rng gen = ctx.make_rng(row.n + (row.dilute ? 1 : 0) +
                           static_cast<std::uint64_t>(row.kind) * 7);
    const auto engine = spec.make_engine(row.kind, gen);
    constexpr std::uint64_t chunk = 8192;
    const double ips = measure_rate(
        [&] { engine->run(chunk); }, static_cast<double>(chunk), min_seconds);
    const std::string key = std::string("ips_") +
                            (row.dilute ? "dilute_" : "dense_") +
                            engine_kind_name(row.kind) + "_n" +
                            std::to_string(row.n);
    result.metric(key, ips);
    if (row.n == 1'000'000) {
      if (!row.dilute && row.kind == engine_kind::agent) {
        ips_dense_agent_1e6 = ips;
      }
      if (!row.dilute && row.kind == engine_kind::batched) {
        ips_dense_batched_1e6 = ips;
      }
      if (row.dilute && row.kind == engine_kind::agent) {
        ips_dilute_agent_1e6 = ips;
      }
      if (row.dilute && row.kind == engine_kind::batched) {
        ips_dilute_batched_1e6 = ips;
      }
    }
    table.add_row({engine_kind_name(row.kind),
                   fmt_count(row.n), row.dilute ? "dilute" : "dense",
                   format_metric(ips, 4)});
  }

  // Dense matrix games: the workload where nearly every interaction moves
  // the census, so the batched engine's identity skipping buys nothing and
  // only the multibatch engine's aggregated rounds stay sublinear.
  const auto hawk_dove = hawk_dove_matrix(1.0, 2.0);
  const auto rps = rock_paper_scissors_matrix();
  const game_protocol hd_proto(hawk_dove,
                               std::make_shared<logit_response_rule>(0.5));
  const game_protocol rps_proto(
      rps, std::make_shared<proportional_imitation_rule>(0.8));
  result.param("hawk_dove", "v=1 c=2, logit tau=0.5");
  result.param("rps", "proportional imitation rate=0.8");
  struct game_row {
    const char* game;  ///< table label
    const char* key;   ///< metric-key fragment (doubles as the rng salt)
    const game_protocol* proto;
    engine_kind kind;
    std::uint64_t n;
    bool full_only;
  };
  std::vector<game_row> game_rows;
  for (const auto n : {std::uint64_t{1'000'000}, std::uint64_t{100'000'000}}) {
    const bool full_only = n == 100'000'000;
    for (const auto kind :
         {engine_kind::agent, engine_kind::census, engine_kind::batched,
          engine_kind::multibatch}) {
      if (full_only && kind == engine_kind::agent) continue;  // 400 MB array
      game_rows.push_back({"hawk-dove", "hawk_dove", &hd_proto, kind, n,
                           full_only});
      game_rows.push_back({"rps", "rps", &rps_proto, kind, n, full_only});
    }
  }
  auto& games_table = result.table(
      "interactions/second on dense games (every interaction samples a "
      "randomized\nkernel outcome)",
      {"game", "engine", "n", "interactions/s"});
  for (const auto& row : game_rows) {
    if (row.full_only && ctx.smoke) continue;
    const std::size_t q = row.proto->num_states();
    std::vector<std::uint64_t> counts(q, row.n / q);
    counts.back() += row.n - (row.n / q) * q;
    const sim_spec spec(*row.proto, std::move(counts));
    rng gen = ctx.make_rng(row.n + static_cast<std::uint64_t>(row.kind) * 7 +
                           static_cast<std::uint64_t>(row.key[0]));
    const auto engine = spec.make_engine(row.kind, gen);
    constexpr std::uint64_t chunk = 8192;
    const double ips = measure_rate(
        [&] { engine->run(chunk); }, static_cast<double>(chunk), min_seconds);
    result.metric("ips_" + std::string(row.key) + "_" +
                      engine_kind_name(row.kind) + "_n" +
                      std::to_string(row.n),
                  ips);
    games_table.add_row({row.game, engine_kind_name(row.kind),
                         fmt_count(row.n), format_metric(ips, 4)});
  }

  // Intra-run parallelism (DESIGN.md §11) on the dense hawk-dove workload:
  // the sharded multibatch round core at the host's thread count, and the
  // SoA ensemble engine's aggregate rate. Wall-clock only — the bitwise
  // determinism gates for both paths live in p1_parallel_engines.
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  auto& par_table = result.table(
      "intra-run parallelism on dense hawk-dove (wall-clock only; "
      "determinism\ngates live in p1_parallel_engines)",
      {"path", "threads", "n", "interactions/s"});
  for (const auto pn :
       {std::uint64_t{1'000'000}, std::uint64_t{100'000'000}}) {
    if (pn == 100'000'000 && ctx.smoke) continue;
    multibatch_engine engine(hd_proto, {pn / 2, pn - pn / 2},
                             ctx.make_rng(pn + 31));
    engine.set_shards(hw);
    constexpr std::uint64_t chunk = 65536;
    const double ips = measure_rate(
        [&] { engine.run(chunk); }, static_cast<double>(chunk), min_seconds);
    result.metric(
        "ips_hawk_dove_multibatch_sharded_n" + std::to_string(pn), ips);
    par_table.add_row({"multibatch sharded", std::to_string(hw),
                       fmt_count(pn), format_metric(ips, 4)});
  }
  {
    constexpr std::size_t replicas = 16;
    constexpr std::uint64_t en = 1'000'000;
    ensemble_engine ensemble(hd_proto, {en / 2, en - en / 2},
                             derive_stream_seed(ctx.seed, 61), replicas);
    ensemble.set_threads(hw);
    constexpr std::uint64_t chunk = 8192;
    const double ips = measure_rate(
        [&] { ensemble.run(chunk); },
        static_cast<double>(replicas) * static_cast<double>(chunk),
        min_seconds);
    result.metric("ips_hawk_dove_ensemble_r16_n" + std::to_string(en), ips);
    par_table.add_row({"ensemble x16", std::to_string(hw), fmt_count(en),
                       format_metric(ips, 4)});
  }

  // Cross-engine ratios land in the trajectory but carry no regression
  // goal: they depend on the host's cache hierarchy (the agent engine is
  // n-sensitive, the others are not), so a baseline from one machine would
  // gate CI runs on another. The seed-deterministic multibatch speedup
  // gate lives in g4_multibatch_dense.
  result.metric("speedup_batched_vs_agent_dense_n1e6",
                ips_dense_batched_1e6 / ips_dense_agent_1e6);
  result.metric("speedup_batched_vs_agent_dilute_n1e6",
                ips_dilute_batched_1e6 / ips_dilute_agent_1e6);
  result.note(
      "Expected shape: census rates independent of n; batched >> agent, "
      "most extreme\nin the dilute regime where identity interactions are "
      "skipped in geometric\nbatches; multibatch >> batched on the dense "
      "games, where no interaction is\nan identity and only aggregated "
      "rounds avoid per-interaction sampling.");
  return result;
}

scenario_result run_batch(const scenario_context& ctx) {
  scenario_result result;
  const std::size_t k = 8;
  const auto pop = abg_population::from_fractions(1000, 0.1, 0.2, 0.7);
  const igt_protocol proto(k);
  const sim_spec spec(
      proto, population(make_igt_population_states(pop, k, 0), 2 + k));
  const std::size_t replicas = 8;
  const std::uint64_t steps = ctx.pick<std::uint64_t>(400'000, 100'000);
  const auto thread_counts =
      ctx.pick<std::vector<std::size_t>>({1, 2, 4, 8}, {1, 2, 4});
  result.param("replicas", replicas);
  result.param("steps_per_replica", steps);

  const auto run_once = [&](std::size_t threads) {
    return replicate_census(
        {replicas, derive_stream_seed(ctx.seed, 99), threads},
        [&](const replica_context&, rng& gen) {
          simulation sim = spec.instantiate(gen);
          sim.run(steps);
          return sim.agents().fractions();
        });
  };

  auto& table = result.table(
      "agent-level batch replication: aggregate interactions/second vs "
      "worker\nthreads (8 replicas)",
      {"threads", "total interactions/s", "speedup vs 1 thread"});
  double base_rate = 0.0;
  std::vector<double> reference_mean;
  bool deterministic = true;
  for (const std::size_t threads : thread_counts) {
    const timer clock;
    const auto batch = run_once(threads);
    const double seconds = clock.seconds();
    const double rate =
        static_cast<double>(replicas) * static_cast<double>(steps) / seconds;
    if (threads == 1) {
      base_rate = rate;
      reference_mean = batch.mean();
    } else if (batch.mean() != reference_mean) {
      // The determinism contract: aggregates are bit-identical at any
      // thread count (fold order is replica order, not completion order).
      deterministic = false;
    }
    result.metric("batch_ips_t" + format_metric(static_cast<double>(threads)),
                  rate);
    table.add_row({format_metric(static_cast<double>(threads)),
                   format_metric(rate, 4),
                   format_metric(rate / base_rate, 3)});
  }

  result.metric("thread_determinism", deterministic ? 1.0 : 0.0,
                metric_goal::maximize);
  result.note(
      "Expected shape: near-linear speedup up to the physical core count, "
      "and\nbit-identical aggregates at every thread count "
      "(thread_determinism = 1).");
  return result;
}

scenario_result run_micro(const scenario_context& ctx) {
  scenario_result result;
  const double min_seconds = ctx.pick(0.4, 0.06);
  result.param("min_seconds_per_row", min_seconds);
  auto& table = result.table("single-component rates",
                             {"component", "unit", "rate/s"});
  const auto add = [&](const std::string& name, const std::string& unit,
                       double rate) {
    result.metric("rate_" + name, rate);
    table.add_row({name, unit, format_metric(rate, 4)});
  };

  {
    const auto pop = abg_population::from_fractions(1000, 0.1, 0.2, 0.7);
    igt_count_chain chain(pop, 8, 0);
    rng gen = ctx.make_rng(1);
    constexpr std::uint64_t chunk = 16384;
    add("igt_count_chain_step", "steps",
        measure_rate(
            [&] {
              for (std::uint64_t i = 0; i < chunk; ++i) chain.step(gen);
            },
            static_cast<double>(chunk), min_seconds));
  }
  {
    const ehrenfest_params params{8, 0.3, 0.15, 10'000};
    auto process = ehrenfest_process::at_corner(params, false);
    rng gen = ctx.make_rng(2);
    constexpr std::uint64_t chunk = 16384;
    add("ehrenfest_count_vector_step", "steps",
        measure_rate(
            [&] {
              for (std::uint64_t i = 0; i < chunk; ++i) process.step(gen);
            },
            static_cast<double>(chunk), min_seconds));
  }
  {
    const ehrenfest_params params{3, 0.3, 0.15, 20};
    const simplex_index index(params.k, params.m);
    const auto chain = build_ehrenfest_chain(params, index);
    std::vector<double> mu(index.size(),
                           1.0 / static_cast<double>(index.size()));
    add("exact_chain_distribution_step", "state-rows",
        measure_rate([&] { mu = chain.step(mu); },
                     static_cast<double>(index.size()), min_seconds));
  }
  {
    const repeated_donation_game rdg{{3.0, 1.0}, 0.8};
    const auto row = generous_tit_for_tat(0.3, 0.9);
    const auto col = generous_tit_for_tat(0.6, 0.9);
    double sink = 0.0;
    add("exact_payoff_engine", "evals",
        measure_rate([&] { sink += expected_payoff(rdg, row, col); }, 1.0,
                     min_seconds));
    result.param("exact_payoff_sink", sink != 0.0);
  }
  {
    const rd_setting s{3.0, 1.0, 0.8, 0.9};
    double g = 0.0;
    double sink = 0.0;
    constexpr std::uint64_t chunk = 4096;
    add("closed_form_payoff", "evals",
        measure_rate(
            [&] {
              for (std::uint64_t i = 0; i < chunk; ++i) {
                g += 1e-9;
                sink += f_gtft_vs_gtft(s, 0.3 + g, 0.6);
              }
            },
            static_cast<double>(chunk), min_seconds));
    result.param("closed_form_sink", sink != 0.0);
  }
  {
    const repeated_donation_game rdg{{3.0, 1.0}, 0.9};
    const auto row = generous_tit_for_tat(0.3, 0.9);
    const auto col = always_defect();
    rng gen = ctx.make_rng(3);
    double sink = 0.0;
    constexpr std::uint64_t chunk = 1024;
    add("rollout_game", "games",
        measure_rate(
            [&] {
              for (std::uint64_t i = 0; i < chunk; ++i) {
                sink += play_repeated_game(rdg, row, col, gen).row_payoff;
              }
            },
            static_cast<double>(chunk), min_seconds));
    result.param("rollout_sink", sink != 0.0);
  }

  result.note(
      "Single-component rates for the trajectory; no regression goals (CI "
      "machines\nvary run to run).");
  return result;
}

[[maybe_unused]] const bool registered_engines = register_scenario(
    "throughput_engines", "throughput,engines,perf",
    "Interactions/s of the agent/census/batched/multibatch engines on the "
    "IGT kernel and dense games",
    run_engines);

[[maybe_unused]] const bool registered_batch = register_scenario(
    "throughput_batch", "throughput,batch,threads,perf",
    "Batch-replication thread scaling and the bit-identical determinism "
    "check",
    run_batch);

[[maybe_unused]] const bool registered_micro = register_scenario(
    "throughput_micro", "throughput,micro,perf",
    "Single-component rates: count chains, exact step, payoff oracles, "
    "rollouts",
    run_micro);

}  // namespace
