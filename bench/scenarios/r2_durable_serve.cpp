// Scenario R2 (serve durability layer): crash-safety of ppg-serve as a
// bench gate. One in-process serve_app runs with a filesystem session
// store; the scenario measures what durability costs (spill overhead over
// a store-less twin, boot-time recovery latency) and gates the three
// robustness flags that must never regress:
//
//   recovery_bit_exact — a session recovered from the store continues
//     byte-identically to a restore of its last spilled checkpoint;
//   quarantine_detected — a deliberately corrupted spill is quarantined at
//     boot (and reported) while healthy sessions still recover;
//   drain_spilled — drain() leaves the on-disk generation carrying exactly
//     the engine's final interaction count.
//
// The flags are deterministic (1.0 by construction of the §13 contract);
// overhead and latency are informational.
#include <dirent.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "ppg/exp/scenario.hpp"
#include "ppg/serve/server.hpp"
#include "ppg/util/atomic_file.hpp"
#include "ppg/util/error.hpp"
#include "ppg/util/json.hpp"
#include "ppg/util/table.hpp"
#include "ppg/util/timer.hpp"

namespace {

using namespace ppg;

http_request make_request(const std::string& method, const std::string& target,
                          const std::string& body = "") {
  http_request request;
  request.method = method;
  request.target = target;
  request.body = body;
  return request;
}

void remove_tree(const std::string& where) {
  DIR* dir = ::opendir(where.c_str());
  if (dir != nullptr) {
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = where + "/" + name;
      if (::unlink(child.c_str()) != 0) remove_tree(child);
    }
    ::closedir(dir);
  }
  ::rmdir(where.c_str());
}

/// POSTs and asserts 2xx (scenario-level sanity, not a gated metric).
http_response must(serve_app& app, const http_request& request) {
  http_response response = app.handle(request);
  PPG_CHECK(response.status < 300, request.method + " " + request.target +
                                       " -> " + std::to_string(response.status) +
                                       " " + response.body);
  return response;
}

scenario_result run_r2(const scenario_context& ctx) {
  scenario_result result;
  const auto n = ctx.pick<std::uint64_t>(200'000, 5'000);
  const auto rounds = ctx.pick<std::uint64_t>(16, 4);
  const auto budget = ctx.pick<std::uint64_t>(1'000'000, 10'000);
  result.param("n", n);
  result.param("rounds", rounds);
  result.param("budget_per_round", budget);
  result.param("protocol", "approximate-majority multibatch");

  json recipe = json::parse(
      R"({"protocol": {"name": "approximate-majority", "params": {}},
          "sampling": "distinct"})");
  json counts = json::array();
  counts.push_back(n * 3 / 5);
  counts.push_back(n - n * 3 / 5);
  counts.push_back(std::uint64_t{0});
  recipe["initial_counts"] = std::move(counts);

  const auto create_body = [&](std::uint64_t seed) {
    json body = json::object();
    body["recipe"] = recipe;
    body["engine"] = "multibatch";
    body["seed"] = seed;
    return body.dump_string(false);
  };
  const std::string advance_body =
      "{\"interactions\": " + std::to_string(budget) + "}";

  std::string dir_template = "/tmp/ppg_bench_r2_XXXXXX";
  char* made = ::mkdtemp(dir_template.data());
  PPG_CHECK(made != nullptr, "r2_durable_serve: mkdtemp failed");
  const std::string store_dir = std::string(made) + "/store";

  // Full mode amortizes spills over 64 chunks (a realistic production
  // cadence: ~4 mid-advance spills per 10^6-interaction round); smoke mode
  // spills aggressively so the mid-advance path is still exercised fast.
  serve_config durable_config;
  durable_config.store_dir = store_dir;
  durable_config.chunk = 4096;
  durable_config.spill_every_chunks = ctx.pick<std::uint64_t>(64, 2);
  serve_config plain_config = durable_config;
  plain_config.store_dir.clear();

  // --- spill overhead: the same advance schedule with and without a store.
  const timer plain_clock;
  {
    serve_app plain(plain_config);
    (void)must(plain, make_request("POST", "/sessions", create_body(1)));
    for (std::uint64_t round = 0; round < rounds; ++round) {
      (void)must(plain,
                 make_request("POST", "/sessions/s1/advance", advance_body));
    }
  }
  const double plain_s = plain_clock.seconds();

  std::string final_checkpoint;
  const timer durable_clock;
  {
    serve_app durable(durable_config);
    (void)must(durable, make_request("POST", "/sessions", create_body(1)));
    (void)must(durable, make_request("POST", "/sessions", create_body(2)));
    for (std::uint64_t round = 0; round < rounds; ++round) {
      (void)must(durable,
                 make_request("POST", "/sessions/s1/advance", advance_body));
    }
    final_checkpoint =
        must(durable, make_request("GET", "/sessions/s1/checkpoint")).body;
    // No drain: the serve_app dies like a crashed daemon — the idle spill
    // already made the last advance recoverable.
  }
  const double durable_s = durable_clock.seconds();
  const double overhead_pct =
      plain_s > 0.0 ? (durable_s / plain_s - 1.0) * 100.0 : 0.0;

  // --- recovery: reboot on the store, continue bit-exactly.
  const timer recovery_clock;
  serve_app rebooted(durable_config);
  const double recovery_ms = recovery_clock.seconds() * 1e3;

  bool recovery_bit_exact =
      must(rebooted, make_request("GET", "/sessions/s1/checkpoint")).body ==
      final_checkpoint;
  const json clone_info = json::parse(
      must(rebooted,
           make_request("POST", "/sessions/restore", final_checkpoint))
          .body);
  const std::string clone_id = clone_info.find("id")->as_string();
  for (const std::string& id : {std::string("s1"), clone_id}) {
    (void)must(rebooted,
               make_request("POST", "/sessions/" + id + "/advance",
                            advance_body));
  }
  recovery_bit_exact =
      recovery_bit_exact &&
      must(rebooted, make_request("GET", "/sessions/s1/checkpoint")).body ==
          must(rebooted,
               make_request("GET", "/sessions/" + clone_id + "/checkpoint"))
              .body;

  // --- drain: the on-disk envelope must carry the final interaction count.
  rebooted.drain();
  std::string spill_bytes;
  std::string io_error;
  PPG_CHECK(read_file(store_dir + "/s1.session.json", &spill_bytes, &io_error),
            "r2_durable_serve: " + io_error);
  const store_file spilled = parse_store_envelope(json::parse(spill_bytes));
  const std::uint64_t spilled_interactions = json_require_uint(
      json_require(spilled.checkpoint, "engine", "checkpoint"),
      "interactions", "engine snapshot");
  const bool drain_spilled = spilled_interactions == (rounds + 1) * budget;

  // --- quarantine: corrupt s2's spill, boot again, s1 must still recover.
  PPG_CHECK(atomic_write_file(store_dir + "/s2.session.json",
                              "{torn mid-write", &io_error),
            "r2_durable_serve: " + io_error);
  serve_app after_corruption(durable_config);
  const json stats = json::parse(
      must(after_corruption, make_request("GET", "/stats")).body);
  const json* durability = stats.find("durability");
  const bool quarantine_detected =
      durability != nullptr &&
      durability->find("quarantined")->size() == 1 &&
      durability->find("recovered_sessions")->as_uint64() >= 1;

  result.metric("recovery_bit_exact", recovery_bit_exact ? 1.0 : 0.0,
                metric_goal::maximize);
  result.metric("quarantine_detected", quarantine_detected ? 1.0 : 0.0,
                metric_goal::maximize);
  result.metric("drain_spilled", drain_spilled ? 1.0 : 0.0,
                metric_goal::maximize);
  result.metric("spill_overhead_pct", overhead_pct);
  result.metric("recovery_ms", recovery_ms);

  auto& table = result.table(
      "crash-safety gates (all three flags must be 1)",
      {"check", "value"});
  table.add_row({"recovery_bit_exact", recovery_bit_exact ? "yes" : "NO"});
  table.add_row({"quarantine_detected", quarantine_detected ? "yes" : "NO"});
  table.add_row({"drain_spilled", drain_spilled ? "yes" : "NO"});
  table.add_row({"spill overhead", format_metric(overhead_pct, 2) + " %"});
  table.add_row({"recovery latency", format_metric(recovery_ms, 3) + " ms"});

  result.note(
      "Expected shape: the three flags are identically 1 — recovery replays "
      "the\nlast spilled generation bit-exactly (DESIGN.md §13), corruption "
      "is\nquarantined rather than fatal, and drain persists the final "
      "state. Spill\noverhead is fsync-bound and scales with the cadence: "
      "this scenario spills\nfar more often than the daemon's defaults "
      "(chunk 2^16, spill_every 16)\nprecisely to exercise the mid-advance "
      "path, so its overhead reads high.");

  remove_tree(made);  // the scenario leaves no /tmp residue behind
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "r2_durable_serve", "serve,durability,robustness",
    "Crash-safe ppg-serve: spill overhead, bit-exact recovery, quarantine",
    run_r2);

}  // namespace
