// Experiment E1 (Theorem 2.4): the stationary distribution of the
// (k, a, b, m)-Ehrenfest process is multinomial with p_j ∝ lambda^{j-1}.
//
// Two independent validations:
//  (a) exact — on fully enumerated state spaces, the multinomial PMF
//      satisfies the detailed balance equations to machine precision and
//      matches the stationary vector obtained by direct linear solve;
//  (b) simulated — long-run marginal urn occupancy of the O(1)-per-step
//      coordinate-walk simulation matches the closed form (TV distance and
//      chi-square on pooled ball counts).
#include <algorithm>
#include <cstdint>
#include <vector>

#include "ppg/ehrenfest/coordinate_walk.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/ehrenfest/stationary.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/exp/scenario.hpp"
#include "ppg/markov/stationary.hpp"
#include "ppg/stats/chi_square.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/table.hpp"

namespace {

using namespace ppg;

// One replica of the part-(b) measurement: burn in, time-average the urn
// occupancy, then append decorrelated pooled snapshots for the chi-square
// test. Returns occupancy fractions followed by the pooled counts (the
// batch aggregator consumes one flat vector per replica).
std::vector<double> occupancy_replica(const ehrenfest_params& params,
                                      rng& gen, std::uint64_t samples,
                                      int snapshots) {
  coordinate_walk walk(params, 0);
  const std::uint64_t burn = 400ull * params.m * params.k;
  walk.run(burn, gen);
  std::vector<double> result(2 * params.k, 0.0);
  for (std::uint64_t i = 0; i < samples; ++i) {
    walk.step(gen);
    for (std::size_t j = 0; j < params.k; ++j) {
      result[j] += static_cast<double>(walk.counts()[j]);
    }
  }
  for (std::size_t j = 0; j < params.k; ++j) {
    result[j] /= static_cast<double>(samples) * static_cast<double>(params.m);
  }
  for (int s = 0; s < snapshots; ++s) {
    walk.run(20ull * params.m, gen);
    for (std::size_t j = 0; j < params.k; ++j) {
      result[params.k + j] += static_cast<double>(walk.counts()[j]);
    }
  }
  return result;
}

scenario_result run_e1(const scenario_context& ctx) {
  scenario_result result;

  const std::vector<ehrenfest_params> exact_configs =
      ctx.pick<std::vector<ehrenfest_params>>(
          {{2, 0.3, 0.15, 24},
           {3, 0.3, 0.15, 12},
           {3, 0.2, 0.2, 12},
           {4, 0.1, 0.4, 8},
           {5, 0.35, 0.1, 6},
           {6, 0.25, 0.25, 5}},
          {{2, 0.3, 0.15, 24}, {3, 0.3, 0.15, 12}, {4, 0.1, 0.4, 8}});
  result.param("exact_configs", exact_configs.size());

  auto& exact_table = result.table(
      "(a) exact verification on enumerated state spaces",
      {"k", "m", "lambda", "|states|", "detailed-balance residual",
       "TV(multinomial, solved)"});
  double max_residual = 0.0;
  double max_tv_exact = 0.0;
  for (const auto& params : exact_configs) {
    const simplex_index index(params.k, params.m);
    const auto chain = build_ehrenfest_chain(params, index);
    const auto pi = exact_stationary_vector(params, index);
    const auto solved = solve_stationary(chain);
    const double residual = chain.detailed_balance_residual(pi);
    const double tv = total_variation(pi, solved);
    max_residual = std::max(max_residual, residual);
    max_tv_exact = std::max(max_tv_exact, tv);
    exact_table.add_row({format_metric(static_cast<double>(params.k)),
                         format_metric(static_cast<double>(params.m)),
                         format_metric(params.lambda()),
                         fmt_count(index.size()), format_metric(residual, 3),
                         format_metric(tv, 3)});
  }

  const std::vector<ehrenfest_params> sim_configs =
      ctx.pick<std::vector<ehrenfest_params>>(
          {{2, 0.3, 0.15, 100},
           {4, 0.3, 0.15, 100},
           {8, 0.3, 0.15, 100},
           {8, 0.15, 0.3, 100},
           {16, 0.25, 0.25, 200},
           {16, 0.28, 0.14, 200}},
          {{2, 0.3, 0.15, 100}, {8, 0.3, 0.15, 100}});
  const std::size_t replicas = ctx.pick<std::size_t>(4, 2);
  const std::uint64_t samples = ctx.pick<std::uint64_t>(100'000, 20'000);
  const int snapshots = ctx.pick(75, 30);
  result.param("sim_replicas", replicas);
  result.param("sim_samples", samples);
  result.param("sim_snapshots", snapshots);

  auto& sim_table = result.table(
      "(b) simulation: long-run urn occupancy vs closed form",
      {"k", "m", "lambda", "samples", "TV(occupancy)", "chi2 p-value"});
  double max_tv_sim = 0.0;
  double min_chi2_p = 1.0;
  std::uint64_t salt = 0;
  for (const auto& params : sim_configs) {
    const auto results =
        batch_runner(ctx.batch(replicas, salt++))
            .run([&](const replica_context&, rng& gen) {
              return occupancy_replica(params, gen, samples, snapshots);
            });
    // The replica average of the first k coordinates is the occupancy
    // estimate; the pooled snapshot counts (exact integers stored as
    // doubles) add across replicas.
    census_aggregator occupancy_agg;
    std::vector<std::uint64_t> pooled(params.k, 0);
    for (const auto& replica : results) {
      occupancy_agg.add(std::vector<double>(
          replica.begin(), replica.begin() + static_cast<long>(params.k)));
      for (std::size_t j = 0; j < params.k; ++j) {
        pooled[j] += static_cast<std::uint64_t>(replica[params.k + j]);
      }
    }
    const auto occupancy = occupancy_agg.mean();
    const auto expected = ehrenfest_stationary_probs(params);
    const auto gof = chi_square_gof(pooled, expected);
    const double tv = total_variation(occupancy, expected);
    max_tv_sim = std::max(max_tv_sim, tv);
    min_chi2_p = std::min(min_chi2_p, gof.p_value);
    sim_table.add_row({format_metric(static_cast<double>(params.k)),
                       format_metric(static_cast<double>(params.m)),
                       format_metric(params.lambda()),
                       fmt_count(samples * replicas), format_metric(tv, 4),
                       format_metric(gof.p_value, 3)});
  }

  result.metric("max_db_residual", max_residual, metric_goal::minimize);
  result.metric("max_tv_exact", max_tv_exact, metric_goal::minimize);
  result.metric("max_tv_sim", max_tv_sim, metric_goal::minimize);
  result.metric("min_chi2_p", min_chi2_p);
  result.note(
      "Expected shape: residuals at machine precision in (a); TV below "
      "~0.01 in (b).\nNote: pooled snapshots are weakly correlated, so "
      "occasional moderate p-values are\nexpected; the TV column is the "
      "primary check.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "e1_ehrenfest_stationary", "ehrenfest,stationary,exact,simulation",
    "Stationary law of the (k,a,b,m)-Ehrenfest process (Theorem 2.4)",
    run_e1);

}  // namespace
