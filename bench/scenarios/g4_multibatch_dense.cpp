// Experiment G4 (multibatch engine): the dense-game workload where the
// batched engine's identity skipping buys nothing — every hawk-dove or RPS
// interaction samples a randomized kernel outcome, so batched degenerates
// to one sampling round per interaction while the multibatch engine
// aggregates ~sqrt(n) interactions per round.
//
// The regression gate is the *event* speedup: sampling events per engine
// (batched: advance_batch rounds; multibatch: aggregated rounds +
// collision resolutions) are seed-deterministic counts, so the ratio is
// reproducible across hardware — unlike wall-clock rates, which are
// reported for the trajectory but never gated. The acceptance bar is a
// >= 5x event win on a dense game at n = 10^8; the measured ratio is in
// the thousands, recorded both raw (gated, goal max) and as the
// deterministic pass flag multibatch_5x_win.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ppg/exp/scenario.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/update_rule.hpp"
#include "ppg/pp/batched_engine.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/pp/multibatch_engine.hpp"
#include "ppg/util/table.hpp"
#include "ppg/util/timer.hpp"

namespace {

using namespace ppg;

scenario_result run_g4(const scenario_context& ctx) {
  scenario_result result;
  const auto n = ctx.pick<std::uint64_t>(100'000'000, 1'000'000);
  const auto interactions = ctx.pick<std::uint64_t>(2'000'000, 200'000);
  result.param("n", n);
  result.param("interactions", interactions);
  result.param("hawk_dove", "v=1 c=2, logit tau=0.5");
  result.param("rps", "proportional imitation rate=0.8");

  const auto hawk_dove = hawk_dove_matrix(1.0, 2.0);
  const auto rps = rock_paper_scissors_matrix();
  const game_protocol hd_proto(hawk_dove,
                               std::make_shared<logit_response_rule>(0.5));
  const game_protocol rps_proto(
      rps, std::make_shared<proportional_imitation_rule>(0.8));

  auto& table = result.table(
      "sampling events per engine on dense games (seed-deterministic; the "
      "gated\nspeedup is events_batched / events_multibatch)",
      {"game", "batched events", "multibatch events", "event speedup",
       "wall speedup"});
  double min_event_speedup = 0.0;
  std::uint64_t salt = 1;
  const std::vector<std::pair<std::string, const game_protocol*>> games = {
      {"hawk_dove", &hd_proto}, {"rps", &rps_proto}};
  for (const auto& [name, proto] : games) {
    const std::size_t q = proto->num_states();
    std::vector<std::uint64_t> counts(q, n / q);
    counts.back() += n - (n / q) * q;
    const sim_spec spec(*proto, std::move(counts));

    rng gen_batched = ctx.make_rng(salt++);
    const auto batched = spec.make_engine(engine_kind::batched, gen_batched);
    const timer batched_clock;
    batched->run(interactions);
    const double batched_seconds = batched_clock.seconds();
    const auto batched_events =
        dynamic_cast<const batched_engine&>(*batched).batches();

    rng gen_multibatch = ctx.make_rng(salt++);
    const auto multibatch =
        spec.make_engine(engine_kind::multibatch, gen_multibatch);
    const timer multibatch_clock;
    multibatch->run(interactions);
    const double multibatch_seconds = multibatch_clock.seconds();
    const auto& mb = dynamic_cast<const multibatch_engine&>(*multibatch);
    const auto multibatch_events = mb.rounds() + mb.collisions();

    const double event_speedup = static_cast<double>(batched_events) /
                                 static_cast<double>(multibatch_events);
    const double wall_speedup = batched_seconds / multibatch_seconds;
    min_event_speedup = min_event_speedup == 0.0
                            ? event_speedup
                            : std::min(min_event_speedup, event_speedup);
    result.metric("events_batched_" + name,
                  static_cast<double>(batched_events));
    result.metric("events_multibatch_" + name,
                  static_cast<double>(multibatch_events));
    result.metric("event_speedup_" + name, event_speedup,
                  metric_goal::maximize);
    // Wall-clock is informational only: CI hardware varies.
    result.metric("wall_speedup_" + name, wall_speedup);
    table.add_row({name, format_metric(static_cast<double>(batched_events)),
                   format_metric(static_cast<double>(multibatch_events)),
                   format_metric(event_speedup, 4),
                   format_metric(wall_speedup, 3)});
  }

  // The acceptance bar as a deterministic pass flag: >= 5x on every dense
  // game (the measured ratios are orders of magnitude above it).
  result.metric("multibatch_5x_win", min_event_speedup >= 5.0 ? 1.0 : 0.0,
                metric_goal::maximize);
  result.note(
      "Expected shape: batched events ~= interactions (dense kernels have "
      "no\nidentity pairs to skip) while multibatch events ~= interactions "
      "/ sqrt(n),\nso the event speedup grows with sqrt(n) and clears the "
      "5x acceptance bar by\norders of magnitude at n = 10^8.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "g4_multibatch_dense", "games,engines,multibatch,perf",
    "Multibatch vs batched sampling-event speedup on dense games", run_g4);

}  // namespace
