// Experiment E2 (Theorem 2.5): mixing-time scaling of the
// (k, a, b, m)-Ehrenfest process. t_mix is measured exactly (TV decay from
// the worst corner start on the enumerated state space) and compared
// against the theorem's bounds:
//   upper:  O(min{k/|a-b|, k^2} * m log m)   (a != b; k^2 m log m if a = b)
//   lower:  Omega(km)  (diameter)
// The tables report the measured time and the scaling ratios that should
// stabilize if the bounds are tight in k and m respectively.
#include <algorithm>
#include <cmath>
#include <vector>

#include "ppg/ehrenfest/bounds.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/exp/scenario.hpp"
#include "ppg/markov/mixing.hpp"
#include "ppg/util/table.hpp"

namespace {

using namespace ppg;

std::size_t measure_tmix(const ehrenfest_params& params) {
  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  const auto pi = exact_stationary_vector(params, index);
  const auto corners = find_corner_states(index);
  return mixing_time_from_starts(chain, {corners.bottom, corners.top}, pi,
                                 0.25, 50'000'000);
}

scenario_result run_e2(const scenario_context& ctx) {
  scenario_result result;
  double max_t_over_upper = 0.0;
  double min_t_over_lower = 1e300;
  const auto track_bounds = [&](const ehrenfest_params& params, double t) {
    max_t_over_upper =
        std::max(max_t_over_upper, t / mixing_upper_bound(params));
    min_t_over_lower =
        std::min(min_t_over_lower, t / mixing_lower_bound(params));
  };

  const auto ks_moderate =
      ctx.pick<std::vector<std::size_t>>({2, 3, 4, 5, 6, 8}, {2, 3, 4});
  result.param("ks_moderate", ks_moderate.size());
  auto& k_table = result.table(
      "(a) scaling in k, moderate bias (m = 6, a = 0.3, b = 0.15): the k^2 "
      "regime\n    (t_mix/k^2 should stabilize while t_mix/k keeps growing)",
      {"k", "measured t_mix", "t_mix / k", "t_mix / k^2", "lower km/2",
       "upper 2*Phi*log(4m)"});
  double last_t_over_k2 = 0.0;
  for (const std::size_t k : ks_moderate) {
    const ehrenfest_params params{k, 0.3, 0.15, 6};
    const auto t = static_cast<double>(measure_tmix(params));
    const auto kd = static_cast<double>(k);
    track_bounds(params, t);
    last_t_over_k2 = t / (kd * kd);
    k_table.add_row(
        {format_metric(kd), format_metric(t), format_metric(t / kd, 3),
         format_metric(last_t_over_k2, 3),
         format_metric(mixing_lower_bound(params), 3),
         format_metric(mixing_upper_bound(params), 3)});
  }

  const auto ks_strong =
      ctx.pick<std::vector<std::size_t>>({3, 4, 5, 6, 8, 10}, {3, 4, 5});
  auto& k2_table = result.table(
      "(a') scaling in k, strong bias (m = 6, a = 0.45, b = 0.05): the "
      "linear\n    regime (t_mix/k should stabilize)",
      {"k", "measured t_mix", "t_mix / k", "t_mix / k^2"});
  double last_t_over_k = 0.0;
  for (const std::size_t k : ks_strong) {
    const ehrenfest_params params{k, 0.45, 0.05, 6};
    const auto t = static_cast<double>(measure_tmix(params));
    const auto kd = static_cast<double>(k);
    track_bounds(params, t);
    last_t_over_k = t / kd;
    k2_table.add_row({format_metric(kd), format_metric(t),
                      format_metric(t / kd, 3),
                      format_metric(t / (kd * kd), 3)});
  }

  const auto ms = ctx.pick<std::vector<std::uint64_t>>({4, 8, 16, 32, 64},
                                                       {4, 8, 16});
  auto& m_table = result.table(
      "(b) scaling in m (k = 3, a = 0.3, b = 0.15): t_mix/(m log m) should "
      "stabilize",
      {"m", "measured t_mix", "t_mix / (m log m)", "lower km/2",
       "upper 2*Phi*log(4m)"});
  double last_t_over_mlogm = 0.0;
  for (const std::uint64_t m : ms) {
    const ehrenfest_params params{3, 0.3, 0.15, m};
    const auto t = static_cast<double>(measure_tmix(params));
    const double mlogm =
        static_cast<double>(m) * std::log(static_cast<double>(m));
    track_bounds(params, t);
    last_t_over_mlogm = t / mlogm;
    m_table.add_row({format_metric(static_cast<double>(m)), format_metric(t),
                     format_metric(t / mlogm, 3),
                     format_metric(mixing_lower_bound(params), 3),
                     format_metric(mixing_upper_bound(params), 3)});
  }

  const auto biases = ctx.pick<std::vector<std::pair<double, double>>>(
      {{0.25, 0.25}, {0.28, 0.22}, {0.32, 0.18}, {0.375, 0.125}, {0.45, 0.05}},
      {{0.25, 0.25}, {0.32, 0.18}, {0.45, 0.05}});
  auto& bias_table = result.table(
      "(c) bias sweep (k = 8, m = 4): larger |a-b| mixes faster once |a-b| "
      "> 1/k",
      {"a", "b", "|a-b|", "measured t_mix", "min{k/|a-b|, k^2}"});
  for (const auto& [a, b] : biases) {
    const ehrenfest_params params{8, a, b, 4};
    const auto t = static_cast<double>(measure_tmix(params));
    track_bounds(params, t);
    bias_table.add_row({format_metric(a), format_metric(b),
                        format_metric(std::abs(a - b)), format_metric(t),
                        format_metric(coalescence_bound(params), 3)});
  }

  result.metric("last_t_over_k2_moderate", last_t_over_k2);
  result.metric("last_t_over_k_strong", last_t_over_k);
  result.metric("last_t_over_mlogm", last_t_over_mlogm);
  result.metric("max_t_over_upper", max_t_over_upper, metric_goal::minimize);
  result.metric("min_t_over_lower", min_t_over_lower, metric_goal::maximize);
  result.note(
      "Expected shape: (a) quadratic-in-k growth (the k^2 regime), (a') "
      "linear-in-k\ngrowth (the k/|a-b| regime); (b) slightly super-linear "
      "growth in m consistent\nwith m log m; (c) speedup with bias once "
      "k/|a-b| < k^2 activates. Measured t_mix\nstays inside "
      "[lower, upper] for every row.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "e2_ehrenfest_mixing", "ehrenfest,mixing,exact",
    "Mixing-time scaling of the (k,a,b,m)-Ehrenfest process (Theorem 2.5)",
    run_e2);

}  // namespace
