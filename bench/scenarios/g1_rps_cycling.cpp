// Experiment G1 (generic game-dynamics API): rock-paper-scissors cycling.
// Proportional imitation on the zero-sum RPS matrix has the replicator
// dynamics as its mean-field limit (DESIGN.md §7), whose orbits are closed
// cycles around the uniform equilibrium (x_R x_P x_S is conserved). The
// scenario measures the cycle period three ways: successive ODE periods
// (residual pins integrator quality), the conserved invariant's drift, and
// the empirical period of a census-engine run at n = 10^6 against the ODE.
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "ppg/exp/scenario.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/mean_field.hpp"
#include "ppg/pp/engine.hpp"

namespace {

using namespace ppg;

// Times at which the linearly-interpolated series crosses `level` upward.
std::vector<double> upward_crossings(const std::vector<double>& times,
                                     const std::vector<double>& values,
                                     double level) {
  std::vector<double> crossings;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i - 1] < level && values[i] >= level) {
      const double fraction =
          (level - values[i - 1]) / (values[i] - values[i - 1]);
      crossings.push_back(times[i - 1] +
                          fraction * (times[i] - times[i - 1]));
    }
  }
  return crossings;
}

double mean_period(const std::vector<double>& crossings) {
  if (crossings.size() < 2) return 0.0;
  return (crossings.back() - crossings.front()) /
         static_cast<double>(crossings.size() - 1);
}

scenario_result run_g1(const scenario_context& ctx) {
  scenario_result result;
  const double rate = 1.0;
  const std::vector<double> x0 = {0.5, 0.25, 0.25};
  const double horizon = 50.0;  // parallel time; a handful of cycles
  const double dt = 0.005;
  const auto n = ctx.pick<std::uint64_t>(1'000'000, 100'000);
  result.param("rate", rate);
  result.param("n", n);
  result.param("horizon", horizon);
  result.param("dt", dt);

  const auto game = rock_paper_scissors_matrix();
  const game_protocol proto(
      game, std::make_shared<proportional_imitation_rule>(rate));
  const mean_field_ode ode(proto);

  // Mean-field orbit: record x_R and the conserved product.
  const auto steps = static_cast<std::uint64_t>(horizon / dt);
  const auto trajectory = integrate_mean_field(ode, x0, dt, steps);
  std::vector<double> rock(trajectory.states.size());
  for (std::size_t i = 0; i < trajectory.states.size(); ++i) {
    rock[i] = trajectory.states[i][0];
  }
  const auto ode_crossings =
      upward_crossings(trajectory.times, rock, 1.0 / 3.0);
  const double ode_period = mean_period(ode_crossings);
  double period_residual = 0.0;
  for (std::size_t i = 2; i < ode_crossings.size(); ++i) {
    period_residual = std::max(
        period_residual,
        std::abs((ode_crossings[i] - ode_crossings[i - 1]) -
                 (ode_crossings[i - 1] - ode_crossings[i - 2])));
  }
  const auto invariant = [](const std::vector<double>& x) {
    return x[0] * x[1] * x[2];
  };
  const double invariant_drift =
      std::abs(invariant(trajectory.states.back()) -
               invariant(trajectory.states.front()));

  // Census-engine run at the same initial fractions.
  std::vector<std::uint64_t> counts(3);
  std::uint64_t assigned = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    counts[s] = s + 1 < 3
                    ? static_cast<std::uint64_t>(x0[s] *
                                                 static_cast<double>(n))
                    : n - assigned;
    assigned += counts[s];
  }
  const sim_spec spec(proto, counts);
  rng gen = ctx.make_rng(1);
  const auto engine = spec.make_engine(engine_kind::census, gen);
  const auto snapshot_every = n / 20;  // parallel time 0.05
  const auto snapshots = engine->run_with_snapshots(
      static_cast<std::uint64_t>(horizon * static_cast<double>(n)),
      snapshot_every);
  std::vector<double> sim_times;
  std::vector<double> sim_rock;
  sim_times.reserve(snapshots.size());
  sim_rock.reserve(snapshots.size());
  for (const auto& snap : snapshots) {
    sim_times.push_back(static_cast<double>(snap.interactions) /
                        static_cast<double>(n));
    sim_rock.push_back(static_cast<double>(snap.counts[0]) /
                       static_cast<double>(n));
  }
  const auto sim_crossings = upward_crossings(sim_times, sim_rock, 1.0 / 3.0);
  const double sim_period = mean_period(sim_crossings);
  const double period_mismatch =
      ode_period > 0.0 ? std::abs(sim_period - ode_period) / ode_period
                       : 1.0;

  auto& table = result.table(
      "RPS cycle under proportional imitation: ODE vs census engine",
      {"source", "upward crossings", "mean period", "first crossing"});
  table.add_row({"mean-field ODE",
                 format_metric(static_cast<double>(ode_crossings.size())),
                 format_metric(ode_period, 6),
                 format_metric(ode_crossings.empty() ? 0.0
                                                     : ode_crossings.front(),
                               6)});
  table.add_row({"census engine",
                 format_metric(static_cast<double>(sim_crossings.size())),
                 format_metric(sim_period, 6),
                 format_metric(sim_crossings.empty() ? 0.0
                                                     : sim_crossings.front(),
                               6)});

  result.metric("ode_period", ode_period);
  result.metric("ode_period_residual", period_residual,
                metric_goal::minimize);
  result.metric("invariant_drift", invariant_drift, metric_goal::minimize);
  result.metric("sim_period", sim_period);
  result.metric("period_mismatch_rel", period_mismatch,
                metric_goal::minimize);
  result.note(
      "Expected shape: the ODE orbit is periodic (residual ~0, conserved\n"
      "x_R x_P x_S), and the finite-n census run cycles at the same period\n"
      "to within a few percent; stochasticity slowly inflates the orbit\n"
      "(the invariant is only conserved in the n -> infinity limit).");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "g1_rps_cycling", "games,mean-field,census-engine",
    "RPS cycling period: replicator limit vs census engine", run_g1);

}  // namespace
