// Scenario C1 (checkpoint layer): the bit-exact resume contract, exercised
// at bench scale on every engine kind. For each backend, one run goes
// straight to the horizon while its twin (same seed, same run() chunk
// schedule) is checkpointed mid-run, serialized to bytes, restored as a
// fresh process would restore it, and continued. The gated metrics are the
// census divergence between the two trajectories (exactly 0.0 by contract)
// and the snapshot-equality flag comparing the resumed engine's complete
// serialized state — RNG position, carries, counters — against the
// uninterrupted twin's. Checkpoint sizes are recorded informationally: they
// document what a ppg-serve session snapshot costs on the wire.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ppg/exp/scenario.hpp"
#include "ppg/pp/checkpoint.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/util/json.hpp"
#include "ppg/util/table.hpp"
#include "ppg/util/timer.hpp"

namespace {

using namespace ppg;

scenario_result run_c1(const scenario_context& ctx) {
  scenario_result result;
  const auto n = ctx.pick<std::uint64_t>(1'000'000, 10'000);
  const auto horizon = ctx.pick<std::uint64_t>(2'000'000, 20'000);
  const std::uint64_t cut = horizon / 2;
  const std::uint64_t cadence = horizon / 10;
  result.param("n", n);
  result.param("horizon", horizon);
  result.param("checkpoint_at", cut);
  result.param("protocol", "igt k=3 one_way");

  const sim_recipe recipe(
      "igt", json::parse(R"({"k": 3, "discipline": "one_way"})"),
      std::vector<std::uint64_t>(5, n / 5), pair_sampling::distinct);

  auto& table = result.table(
      "bit-exact resume per engine (census divergence is gated at 0)",
      {"engine", "census diff", "state match", "checkpoint bytes",
       "save+restore ms"});
  constexpr engine_kind kinds[] = {engine_kind::agent, engine_kind::census,
                                   engine_kind::batched,
                                   engine_kind::multibatch};
  std::uint64_t salt = 1;
  for (const auto kind : kinds) {
    const std::string name = engine_kind_name(kind);
    rng gen_full = ctx.make_rng(salt);
    const auto full = recipe.spec().make_engine(kind, gen_full);
    const auto full_snaps = full->run_with_snapshots(horizon, cadence);

    rng gen_cut = ctx.make_rng(salt++);
    const auto interrupted = recipe.spec().make_engine(kind, gen_cut);
    const auto before = interrupted->run_with_snapshots(cut, cadence);

    const timer roundtrip_clock;
    const std::string file =
        save_checkpoint(recipe, *interrupted).dump_string();
    restored_sim resumed = restore_checkpoint(json::parse(file));
    const double roundtrip_ms = roundtrip_clock.seconds() * 1e3;
    const auto after =
        resumed.engine->run_with_snapshots(horizon - cut, cadence);

    // Total absolute census divergence across every shared snapshot: the
    // contract makes this identically zero.
    std::uint64_t census_diff = 0;
    for (std::size_t i = 0; i < full_snaps.size(); ++i) {
      const auto& got =
          i < before.size() ? before[i] : after[i - before.size()];
      for (std::size_t s = 0; s < got.counts.size(); ++s) {
        const auto a = got.counts[s];
        const auto b = full_snaps[i].counts[s];
        census_diff += a > b ? a - b : b - a;
      }
    }
    const bool state_match =
        resumed.engine->save_state() == full->save_state();

    result.metric("census_diff_" + name, static_cast<double>(census_diff),
                  metric_goal::minimize);
    result.metric("state_match_" + name, state_match ? 1.0 : 0.0,
                  metric_goal::maximize);
    // Wire size and round-trip latency are informational: the agent
    // engine's snapshot scales with n, the census engines' with q.
    result.metric("checkpoint_bytes_" + name,
                  static_cast<double>(file.size()));
    table.add_row({name, format_metric(static_cast<double>(census_diff)),
                   state_match ? "yes" : "NO",
                   format_metric(static_cast<double>(file.size())),
                   format_metric(roundtrip_ms, 3)});
  }

  result.note(
      "Expected shape: census_diff identically 0 and state_match 1 for "
      "every\nengine — save/restore through bytes is an identity on the "
      "trajectory when\nthe resumed run keeps the interrupted run's chunk "
      "schedule (DESIGN.md §9).");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "c1_checkpoint_resume", "checkpoint,engines",
    "Bit-exact checkpoint/resume across all four engine kinds", run_c1);

}  // namespace
