// Experiment G5: equilibrium certification across the game zoo. For every
// zoo entry — the named classics plus seeded random games on q = 2..6
// strategies — the solver stack computes the symmetric Nash set by support
// enumeration and the logit-homotopy limiting point, the certifier derives
// the rule's own predicted limit from the mean-field ODE, and all four
// engines' time-averaged censuses are certified against that prediction.
// The one-way logit rule makes the mean-field drift linear (a positive
// column-stochastic response matrix), so every game in the zoo has a unique
// attracting fixed point and the prediction is trusted on all of them; the
// gate pins the solver metrics (equilibrium counts, homotopy convergence)
// and the certification rate, all pure functions of the master seed.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ppg/exp/scenario.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/solver/certify.hpp"
#include "ppg/games/solver/zoo.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/util/rng.hpp"

namespace {

using namespace ppg;

scenario_result run_g5(const scenario_context& ctx) {
  scenario_result result;
  const double temperature = 0.35;
  const auto n = ctx.pick<std::uint64_t>(10'000, 2'000);
  const double burn_time = 40.0;
  const double average_time = ctx.pick(60.0, 30.0);
  const auto random_per_size = ctx.pick<std::size_t>(4, 1);
  certify_options options;
  // Sized by the worst zoo citizen: stag-hunt mixes slowly near its logit
  // fixed point, so its time-average carries the largest error (TV ~0.022
  // at n = 10^4). The smoke population is 5x smaller, so the fluctuation
  // scale is sqrt(5)x larger and the tolerance widens with it.
  options.tolerance = ctx.pick(0.03, 0.06);
  result.param("temperature", temperature);
  result.param("n", n);
  result.param("burn_parallel_time", burn_time);
  result.param("average_parallel_time", average_time);
  result.param("random_games_per_size", random_per_size);
  result.param("certify_tolerance", options.tolerance);

  const auto zoo =
      make_game_zoo(derive_stream_seed(ctx.seed, 0x675), random_per_size);
  const auto rule = std::make_shared<logit_response_rule>(temperature);
  constexpr engine_kind kinds[] = {engine_kind::agent, engine_kind::census,
                                   engine_kind::batched,
                                   engine_kind::multibatch};

  auto& table = result.table(
      "per-game solver structure and four-engine certification",
      {"game", "q", "equilibria", "homotopy residual", "rungs", "certified",
       "max TV to prediction"});
  std::size_t total_equilibria = 0;
  std::size_t homotopy_converged = 0;
  double homotopy_max_residual = 0.0;
  std::uint64_t homotopy_total_rungs = 0;
  std::size_t certified = 0;
  std::size_t prediction_matched = 0;
  std::size_t verdicts = 0;
  double max_tv_to_prediction = 0.0;
  std::uint64_t salt = 1;
  for (const auto& entry : zoo) {
    const std::size_t q = entry.game.num_strategies();
    const equilibrium_certifier certifier(
        entry.game, rule, revision_discipline::one_way, options);
    total_equilibria += certifier.equilibria().size();
    const auto& homotopy = certifier.limiting_point();
    if (homotopy.converged) ++homotopy_converged;
    homotopy_max_residual =
        std::max(homotopy_max_residual, homotopy.residual);
    homotopy_total_rungs += homotopy.path.size();

    // Uniform initial census over the game's strategies.
    std::vector<std::uint64_t> initial(q, n / q);
    initial[0] += n - (n / q) * q;
    const game_protocol proto(entry.game, rule,
                              revision_discipline::one_way);
    const sim_spec spec(proto, initial);
    std::size_t game_certified = 0;
    double game_max_tv = 0.0;
    for (const auto kind : kinds) {
      rng gen = ctx.make_rng(salt++);
      const auto engine = spec.make_engine(kind, gen);
      engine->run(
          static_cast<std::uint64_t>(burn_time * static_cast<double>(n)));
      const auto strides = static_cast<std::uint64_t>(average_time * 10.0);
      std::vector<double> mean(q, 0.0);
      for (std::uint64_t i = 0; i < strides; ++i) {
        engine->run(n / 10);  // parallel time 0.1 per stride
        const auto fractions = engine->census().fractions();
        for (std::size_t s = 0; s < q; ++s) mean[s] += fractions[s];
      }
      for (auto& x : mean) x /= static_cast<double>(strides);
      const auto verdict = certifier.certify(mean);
      ++verdicts;
      if (verdict.certified) {
        ++certified;
        ++game_certified;
      }
      if (verdict.rule_predicts_equilibrium) ++prediction_matched;
      game_max_tv = std::max(game_max_tv, verdict.tv_to_prediction);
    }
    max_tv_to_prediction = std::max(max_tv_to_prediction, game_max_tv);
    table.add_row(
        {entry.name, format_metric(static_cast<double>(q)),
         format_metric(static_cast<double>(certifier.equilibria().size())),
         format_metric(homotopy.residual, 3),
         format_metric(static_cast<double>(homotopy.path.size())),
         format_metric(static_cast<double>(game_certified)) + "/4",
         format_metric(game_max_tv, 4)});
  }

  const auto fraction = [](std::size_t count, std::size_t total) {
    return static_cast<double>(count) / static_cast<double>(total);
  };
  result.metric("zoo_games", static_cast<double>(zoo.size()),
                metric_goal::maximize);
  result.metric("zoo_equilibria", static_cast<double>(total_equilibria),
                metric_goal::maximize);
  result.metric("homotopy_converged_fraction",
                fraction(homotopy_converged, zoo.size()),
                metric_goal::maximize);
  result.metric("homotopy_all_converged",
                homotopy_converged == zoo.size() ? 1.0 : 0.0,
                metric_goal::maximize);
  result.metric("homotopy_max_residual", homotopy_max_residual);
  result.metric("homotopy_total_rungs",
                static_cast<double>(homotopy_total_rungs));
  result.metric("certified_fraction", fraction(certified, verdicts),
                metric_goal::maximize);
  result.metric("prediction_match_fraction",
                fraction(prediction_matched, verdicts),
                metric_goal::maximize);
  result.metric("max_tv_to_prediction", max_tv_to_prediction,
                metric_goal::minimize);
  result.note(
      "Expected shape: the homotopy converges on every zoo game (residual\n"
      "at its tolerance), the one-way logit mean field is trusted on all\n"
      "of them, and every engine's time-averaged census certifies — TV to\n"
      "the predicted limit at the O(1/sqrt(n)) fluctuation scale, far\n"
      "inside the tolerance.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "g5_equilibrium_certification", "games,solver,engines",
    "Four-engine equilibrium certification across the game zoo", run_g5);

}  // namespace
