// Ablation A3: the emergence of cooperation as a welfare trajectory. From
// an all-stingy start (every GTFT agent at g_1 = 0), the k-IGT dynamics
// climbs the generosity ladder; this scenario tracks the population's
// average generosity and per-interaction welfare over parallel time,
// across beta regimes — the dynamic picture behind the stationary results
// of E3/E4. Each curve is the mean over independent replicas run on the
// batch engine, with a 95% CI band on the welfare column.
#include <algorithm>
#include <string>
#include <vector>

#include "ppg/core/equilibrium.hpp"
#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/exp/scenario.hpp"

namespace {

using namespace ppg;

scenario_result run_a3(const scenario_context& ctx) {
  scenario_result result;
  const std::size_t n = 400;
  const std::size_t k = 6;
  const double g_max = 0.6;
  const rd_setting setting{4.0, 1.0, 0.8, 0.95};
  const auto grid = generosity_grid(k, g_max);
  const auto payoffs = full_payoff_matrix(setting, k, g_max);
  const std::size_t replicas = ctx.pick<std::size_t>(4, 2);
  result.param("n", n);
  result.param("k", k);
  result.param("g_max", g_max);
  result.param("replicas", replicas);

  const std::uint64_t horizon = 60 * n;  // 60 units of parallel time
  const std::uint64_t stride = 6 * n;
  const std::size_t points = static_cast<std::size_t>(horizon / stride) + 1;

  const auto betas =
      ctx.pick<std::vector<double>>({0.1, 0.3, 0.6}, {0.1, 0.6});
  double final_avg_g_small_beta = 0.0;
  double peak_welfare_small_beta = 0.0;
  std::uint64_t salt = 0;
  for (const double beta : betas) {
    const double alpha = 0.1;
    const auto pop =
        abg_population::from_fractions(n, alpha, beta, 0.9 - beta);
    const igt_protocol proto(k);
    const sim_spec spec(
        proto, population(make_igt_population_states(pop, k, 0), 2 + k),
        pair_sampling::with_replacement);

    // One replica: the generosity trace followed by the welfare trace,
    // sampled on the shared time grid.
    const auto batch = replicate_trajectory(
        ctx.batch(replicas, salt++), [&](const replica_context&, rng& gen) {
          const auto sim = spec.make_engine(engine_kind::census, gen);
          std::vector<double> trace;
          trace.reserve(2 * points);
          std::vector<double> welfare_trace;
          welfare_trace.reserve(points);
          for (std::uint64_t t = 0; t <= horizon; t += stride) {
            if (t > 0) sim->run(stride);
            const auto census = gtft_level_counts(sim->census(), k);
            std::vector<double> mu(k);
            double avg_g = 0.0;
            for (std::size_t j = 0; j < k; ++j) {
              mu[j] = static_cast<double>(census[j]) /
                      static_cast<double>(pop.num_gtft);
              avg_g += grid[j] * mu[j];
            }
            const auto mu_hat = induced_full_distribution(
                mu, pop.alpha(), pop.beta(), pop.gamma());
            trace.push_back(avg_g);
            welfare_trace.push_back(population_welfare(payoffs, mu_hat) /
                                    setting.to_game().expected_rounds());
          }
          trace.insert(trace.end(), welfare_trace.begin(),
                       welfare_trace.end());
          return trace;
        });

    const auto mean = batch.mean_curve();
    const auto band = batch.ci_band();
    double peak_welfare = 0.0;
    for (std::size_t i = 0; i < points; ++i) {
      peak_welfare = std::max(peak_welfare, mean[points + i]);
    }
    if (beta == betas.front()) {
      final_avg_g_small_beta = mean[points - 1];
      peak_welfare_small_beta = peak_welfare;
    }

    auto& table = result.table(
        "beta = " + format_metric(pop.beta(), 3) +
            " (lambda = " + format_metric(pop.lambda(), 3) + ")",
        {"parallel time", "avg generosity", "welfare/round", "95% CI",
         "welfare bar"});
    for (std::size_t i = 0; i < points; ++i) {
      const double w = mean[points + i];
      const auto len = static_cast<std::size_t>(
          std::max(0.0, w / peak_welfare) * 30.0);
      table.add_row(
          {format_metric(static_cast<double>(i * stride) /
                         static_cast<double>(n)),
           format_metric(mean[i], 4), format_metric(w, 4),
           format_metric(band[points + i], 3), std::string(len, '#')});
    }
  }

  result.metric("final_avg_g_small_beta", final_avg_g_small_beta,
                metric_goal::maximize);
  result.metric("peak_welfare_small_beta", peak_welfare_small_beta);
  result.note(
      "Expected shape: for small beta, generosity and welfare climb "
      "together and\nsaturate near the stationary values within O(k log n) "
      "parallel time; for large\nbeta the climb stalls near the bottom and "
      "welfare stays depressed by defection.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "a3_welfare_trajectory", "igt,trajectory,welfare,census-engine",
    "Welfare trajectories of the k-IGT dynamics", run_a3);

}  // namespace
