// Experiment E4 (Proposition 2.8 / Corollary C.1): the average stationary
// generosity of the k-IGT dynamics. Simulated time-averages are compared
// against the closed form
//   g_avg = g_max (lambda^k/(lambda^k - 1)
//           - (1/(k-1))(lambda/(lambda-1))(lambda^{k-1}-1)/(lambda^k-1)),
// and against the Corollary C.1 lower bound g_max(1 - 1/((lambda-1)(k-1)))
// for beta < 1/2. The 1/k approach to g_max (and to 0 for beta > 1/2) is
// the quantitative signature.
#include <algorithm>
#include <cmath>
#include <vector>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/theory.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/exp/scenario.hpp"
#include "ppg/games/strategy.hpp"

namespace {

using namespace ppg;

double replica_average_generosity(const abg_population& pop, std::size_t k,
                                  double g_max, std::uint64_t samples,
                                  rng& gen) {
  const auto grid = generosity_grid(k, g_max);
  igt_count_chain chain(pop, k, 0);
  chain.run(static_cast<std::uint64_t>(igt_mixing_upper_bound(pop, k)), gen);
  double total = 0.0;
  for (std::uint64_t i = 0; i < samples; ++i) {
    chain.step(gen);
    double g_bar = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      g_bar += grid[j] * static_cast<double>(chain.counts()[j]);
    }
    total += g_bar / static_cast<double>(pop.num_gtft);
  }
  return total / static_cast<double>(samples);
}

scenario_result run_e4(const scenario_context& ctx) {
  scenario_result result;
  const double g_max = 0.8;
  const std::size_t n = 500;
  const std::size_t replicas = ctx.pick<std::size_t>(4, 2);
  const std::uint64_t samples = ctx.pick<std::uint64_t>(150'000, 40'000);
  result.param("n", n);
  result.param("g_max", g_max);
  result.param("replicas", replicas);
  result.param("samples", samples);

  double max_abs_error = 0.0;
  std::uint64_t salt = 0;
  // Mean over independent replicas run on the batch engine (the time
  // average of each replica is one scalar observation).
  const auto simulated = [&](const abg_population& pop, std::size_t k) {
    return replicate_scalar(ctx.batch(replicas, salt++),
                            [&](const replica_context&, rng& gen) {
                              return replica_average_generosity(
                                  pop, k, g_max, samples, gen);
                            })
        .mean();
  };

  const auto betas = ctx.pick<std::vector<double>>(
      {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8}, {0.1, 0.3, 0.6});
  auto& beta_table =
      result.table("(a) beta sweep at k = 8",
                   {"beta", "simulated", "closed form (P2.8)",
                    "C.1 lower bound"});
  for (const double beta : betas) {
    const auto pop = abg_population::from_fractions(n, 0.1, beta, 0.9 - beta);
    const double sim = simulated(pop, 8);
    const double closed = average_stationary_generosity(pop.beta(), 8, g_max);
    max_abs_error = std::max(max_abs_error, std::abs(sim - closed));
    const std::string bound =
        pop.beta() < 0.5
            ? format_metric(
                  average_generosity_lower_bound(pop.beta(), 8, g_max), 4)
            : "n/a";
    beta_table.add_row({format_metric(pop.beta(), 3), format_metric(sim, 4),
                        format_metric(closed, 4), bound});
  }

  const auto ks =
      ctx.pick<std::vector<std::size_t>>({2, 4, 8, 16, 32}, {2, 8});
  auto& k_table = result.table(
      "(b) k sweep at beta = 0.25 (lambda = 3): the gap to g_max decays as "
      "1/k",
      {"k", "simulated", "closed form", "g_max - g_avg",
       "k*(g_max - g_avg)/g_max"});
  for (const std::size_t k : ks) {
    const auto pop = abg_population::from_fractions(n, 0.1, 0.25, 0.65);
    const double sim = simulated(pop, k);
    const double closed =
        average_stationary_generosity(pop.beta(), k, g_max);
    max_abs_error = std::max(max_abs_error, std::abs(sim - closed));
    const double gap = g_max - closed;
    k_table.add_row(
        {format_metric(static_cast<double>(k)), format_metric(sim, 4),
         format_metric(closed, 4), format_metric(gap, 4),
         format_metric(gap * static_cast<double>(k) / g_max, 3)});
  }

  auto& k0_table = result.table(
      "(c) k sweep at beta = 0.75 (lambda = 1/3): approach to 0 at rate 1/k",
      {"k", "simulated", "closed form", "k*g_avg/g_max"});
  for (const std::size_t k : ks) {
    const auto pop = abg_population::from_fractions(n, 0.1, 0.75, 0.15);
    const double sim = simulated(pop, k);
    const double closed =
        average_stationary_generosity(pop.beta(), k, g_max);
    max_abs_error = std::max(max_abs_error, std::abs(sim - closed));
    k0_table.add_row(
        {format_metric(static_cast<double>(k)), format_metric(sim, 4),
         format_metric(closed, 4),
         format_metric(closed * static_cast<double>(k) / g_max, 3)});
  }

  result.metric("max_abs_error", max_abs_error, metric_goal::minimize);
  result.note(
      "Expected shape: simulated == closed form within ~0.01; normalized "
      "k-scaled gaps\nstabilize to constants (the O(1/k) rates of "
      "Proposition 2.8).");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "e4_avg_generosity", "igt,stationary,generosity",
    "Average stationary generosity (Proposition 2.8, Corollary C.1)",
    run_e4);

}  // namespace
