// Ablation A4 (the Section 1.1.2 discussion): why generosity? Under
// execution noise — a cooperative action occasionally replaced by defection
// — two TFT players fall into retaliation spirals and lose most of the
// cooperative surplus, while generous TFT recovers. This scenario
// quantifies the effect with the exact payoff oracle (noise folded exactly
// into the strategy via the `perturbed` map) and locates the optimal
// generosity as a function of the noise rate.
#include "ppg/exp/scenario.hpp"
#include "ppg/games/exact_payoff.hpp"
#include "ppg/games/strategy.hpp"

namespace {

using namespace ppg;

scenario_result run_a4(const scenario_context&) {
  scenario_result result;
  // Exact computation throughout — no smoke reductions needed.
  const repeated_donation_game rdg{{3.0, 1.0}, 0.95};
  const double s1 = 1.0;
  const double full_cooperation =
      expected_payoff(rdg, always_cooperate(), always_cooperate());
  result.param("b", 3.0);
  result.param("c", 1.0);
  result.param("delta", 0.95);
  result.param("full_cooperation_payoff", full_cooperation);

  // Mutual expected payoff of two identical noisy strategies.
  const auto mutual_payoff = [&](const memory_one_strategy& s, double noise) {
    const auto noisy = perturbed(s, noise);
    return expected_payoff(rdg, noisy, noisy);
  };

  auto& table = result.table(
      "mutual payoff of two identical strategies, as a fraction of full "
      "cooperation",
      {"noise", "TFT (g=0)", "GTFT(0.1)", "GTFT(0.3)", "GTFT(0.5)", "AC"});
  double tft_frac_at_05 = 0.0;
  double gtft3_frac_at_05 = 0.0;
  for (const double noise : {0.0, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    const auto frac = [&](const memory_one_strategy& s) {
      return mutual_payoff(s, noise) / full_cooperation;
    };
    const double tft_frac = frac(tit_for_tat(s1));
    const double gtft3_frac = frac(generous_tit_for_tat(0.3, s1));
    if (noise == 0.05) {
      tft_frac_at_05 = tft_frac;
      gtft3_frac_at_05 = gtft3_frac;
    }
    table.add_row({format_metric(noise), format_metric(tft_frac, 4),
                   format_metric(frac(generous_tit_for_tat(0.1, s1)), 4),
                   format_metric(gtft3_frac, 4),
                   format_metric(frac(generous_tit_for_tat(0.5, s1)), 4),
                   format_metric(frac(always_cooperate()), 4)});
  }

  // Against a pure mirror more generosity always helps; the interesting
  // trade-off needs defectors in the pool (generosity bleeds against AD).
  // Opponent pool: 80% GTFT mirror, 20% AD, everyone noisy.
  const auto pool_payoff = [&](double g, double noise) {
    const auto self = perturbed(generous_tit_for_tat(g, s1), noise);
    const auto mirror = self;
    const auto defector = perturbed(always_defect(), noise);
    return 0.8 * expected_payoff(rdg, self, mirror) +
           0.2 * expected_payoff(rdg, self, defector);
  };
  auto& opt_table = result.table(
      "optimal generosity against a noisy pool (80% GTFT mirror + 20% AD)",
      {"noise", "best g", "pool payoff at best g", "pool payoff at g=0"});
  double best_g_at_05 = 0.0;
  for (const double noise : {0.005, 0.02, 0.05, 0.1}) {
    double best_g = 0.0;
    double best_value = -1e300;
    for (int i = 0; i <= 100; ++i) {
      const double g = i / 100.0;
      const double value = pool_payoff(g, noise);
      if (value > best_value) {
        best_value = value;
        best_g = g;
      }
    }
    if (noise == 0.05) best_g_at_05 = best_g;
    opt_table.add_row({format_metric(noise), format_metric(best_g),
                       format_metric(best_value, 4),
                       format_metric(pool_payoff(0.0, noise), 4)});
  }

  result.metric("gtft3_recovery_at_noise_05", gtft3_frac_at_05,
                metric_goal::maximize);
  result.metric("tft_fraction_at_noise_05", tft_frac_at_05);
  result.metric("best_g_at_noise_05", best_g_at_05);
  result.note(
      "Expected shape: at zero noise TFT achieves full cooperation; noise "
      "drags mutual\nTFT toward the alternating-retaliation plateau while "
      "even small generosity\nrecovers most of the surplus — the paper's "
      "stated motivation for the GTFT\nfamily. With defectors in the pool "
      "the optimum is interior: generous enough to\nabsorb noise, not so "
      "generous as to subsidize AD.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "a4_noise_robustness", "games,exact,noise",
    "Noise robustness: the case for generosity (Section 1.1.2)", run_a4);

}  // namespace
