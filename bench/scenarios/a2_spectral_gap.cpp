// Ablation A2: spectral view of Theorem 2.5. The relaxation time
// t_rel = 1/(spectral gap) of the exact Ehrenfest operator gives an
// independent bracket on t_mix ((t_rel - 1) log 2 <= t_mix <=
// t_rel log(1/(eps pi_min))). This scenario compares, per parameter point:
// the measured t_mix, the coupling-based Theorem 2.5 upper bound, the
// diameter lower bound, and the spectral bracket — and reports how the gap
// itself scales with k, m, and the bias.
#include <vector>

#include "ppg/ehrenfest/bounds.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/exp/scenario.hpp"
#include "ppg/markov/mixing.hpp"
#include "ppg/markov/spectral.hpp"

namespace {

using namespace ppg;

scenario_result run_a2(const scenario_context& ctx) {
  scenario_result result;

  auto& table = result.table(
      "spectral bracket vs coupling bounds vs measured t_mix",
      {"k", "m", "a", "b", "gap", "t_rel", "measured t_mix",
       "spectral lower", "spectral upper", "Thm2.5 lower", "Thm2.5 upper"});
  const auto configs = ctx.pick<std::vector<ehrenfest_params>>(
      {{2, 0.25, 0.25, 16},
       {2, 0.35, 0.15, 16},
       {3, 0.25, 0.25, 10},
       {3, 0.35, 0.15, 10},
       {4, 0.25, 0.25, 8},
       {4, 0.4, 0.1, 8},
       {6, 0.3, 0.15, 5}},
      {{2, 0.25, 0.25, 16}, {3, 0.35, 0.15, 10}, {4, 0.25, 0.25, 8}});
  result.param("configs", configs.size());
  int inside_bracket = 0;
  for (const auto& params : configs) {
    const simplex_index index(params.k, params.m);
    const auto chain = build_ehrenfest_chain(params, index);
    const auto pi = exact_stationary_vector(params, index);
    const auto corners = find_corner_states(index);
    const auto measured = mixing_time_from_starts(
        chain, {corners.bottom, corners.top}, pi, 0.25, 50'000'000);
    const auto spectral = estimate_slem(chain, pi, 1e-13, 3'000'000);
    const auto bracket = mixing_bounds_from_relaxation(spectral, pi);
    const auto measured_d = static_cast<double>(measured);
    if (measured_d >= bracket.lower && measured_d <= bracket.upper) {
      ++inside_bracket;
    }
    table.add_row({format_metric(static_cast<double>(params.k)),
                   format_metric(static_cast<double>(params.m)),
                   format_metric(params.a), format_metric(params.b),
                   format_metric(spectral.spectral_gap, 3),
                   format_metric(spectral.relaxation_time, 4),
                   format_metric(measured_d),
                   format_metric(bracket.lower, 4),
                   format_metric(bracket.upper, 4),
                   format_metric(mixing_lower_bound(params), 4),
                   format_metric(mixing_upper_bound(params), 4)});
  }

  auto& gap_table = result.table(
      "gap scaling (a = b = 0.25): the classic k = 2 urn has gap (a+b)/m "
      "exactly;\nhigher k shrinks the gap further",
      {"k", "m", "gap", "gap * m / (a+b)"});
  const auto gap_configs = ctx.pick<std::vector<ehrenfest_params>>(
      {{2, 0.25, 0.25, 8},
       {2, 0.25, 0.25, 16},
       {3, 0.25, 0.25, 8},
       {4, 0.25, 0.25, 8},
       {5, 0.25, 0.25, 6}},
      {{2, 0.25, 0.25, 8}, {3, 0.25, 0.25, 8}, {4, 0.25, 0.25, 8}});
  double gap_norm_k2 = 0.0;
  for (const auto& params : gap_configs) {
    const simplex_index index(params.k, params.m);
    const auto chain = build_ehrenfest_chain(params, index);
    const auto pi = exact_stationary_vector(params, index);
    const auto spectral = estimate_slem(chain, pi, 1e-13, 3'000'000);
    const double normalized = spectral.spectral_gap *
                              static_cast<double>(params.m) /
                              (params.a + params.b);
    if (params.k == 2) gap_norm_k2 = normalized;
    gap_table.add_row({format_metric(static_cast<double>(params.k)),
                       format_metric(static_cast<double>(params.m)),
                       format_metric(spectral.spectral_gap, 4),
                       format_metric(normalized, 4)});
  }

  result.metric("inside_bracket_fraction",
                static_cast<double>(inside_bracket) /
                    static_cast<double>(configs.size()),
                metric_goal::maximize);
  result.metric("gap_norm_k2", gap_norm_k2);
  result.note(
      "Expected shape: measured t_mix inside both brackets; for k = 2 the "
      "normalized\ngap is exactly 1; for k > 2 it drops below 1 (slower "
      "relaxation), consistent\nwith the k-dependence of Theorem 2.5.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "a2_spectral_gap", "ehrenfest,spectral,mixing,exact",
    "Spectral gap vs coupling bounds (Theorem 2.5)", run_a2);

}  // namespace
