// Experiment G2 (generic game-dynamics API): hawk-dove mixed-equilibrium
// convergence. Under the smoothed (logit) best response to the sampled
// partner, the mean-field ODE has a unique interior fixed point near the
// game's mixed ESS (hawk fraction v/c); the scenario relaxes the ODE from
// both corners, then checks that all four engines' time-averaged censuses
// converge to the same point from opposite initial conditions.
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "ppg/exp/scenario.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/mean_field.hpp"
#include "ppg/pp/engine.hpp"

namespace {

using namespace ppg;

scenario_result run_g2(const scenario_context& ctx) {
  scenario_result result;
  const double value = 1.0;
  const double cost = 2.0;
  const double temperature = 0.25;
  const auto n = ctx.pick<std::uint64_t>(100'000, 10'000);
  const double burn_time = 30.0;
  const double average_time = ctx.pick(200.0, 50.0);
  result.param("value", value);
  result.param("cost", cost);
  result.param("temperature", temperature);
  result.param("n", n);
  result.param("burn_parallel_time", burn_time);
  result.param("average_parallel_time", average_time);

  const auto game = hawk_dove_matrix(value, cost);
  const game_protocol proto(
      game, std::make_shared<logit_response_rule>(temperature));
  const mean_field_ode ode(proto);
  const auto from_hawks =
      relax_to_fixed_point(ode, {0.95, 0.05}, 0.02, 1e-12, 2000.0);
  const auto from_doves =
      relax_to_fixed_point(ode, {0.05, 0.95}, 0.02, 1e-12, 2000.0);
  // The engines below are compared against from_hawks.state, so an
  // unconverged relaxation would silently gate against a meaningless
  // point; the convergence report makes that impossible.
  const bool ode_converged = from_hawks.converged && from_doves.converged;
  result.param("ode_iterations", from_hawks.iterations);
  result.param("ode_residual", from_hawks.residual);
  const double fixed_point_gap =
      std::abs(from_hawks.state[0] - from_doves.state[0]);
  const double hawk_star = from_hawks.state[0];
  const double ess_hawk = value / cost;

  auto& table = result.table(
      "time-averaged hawk fraction vs the mean-field fixed point",
      {"engine", "initial hawks", "time-avg hawks", "fixed point", "TV"});
  double max_tv = 0.0;
  std::uint64_t salt = 1;
  for (const double initial_hawks : {0.95, 0.05}) {
    const auto hawks =
        static_cast<std::uint64_t>(initial_hawks * static_cast<double>(n));
    const sim_spec spec(proto,
                        std::vector<std::uint64_t>{hawks, n - hawks});
    for (const auto kind :
         {engine_kind::agent, engine_kind::census, engine_kind::batched,
          engine_kind::multibatch}) {
      rng gen = ctx.make_rng(salt++);
      const auto engine = spec.make_engine(kind, gen);
      engine->run(
          static_cast<std::uint64_t>(burn_time * static_cast<double>(n)));
      const auto strides =
          static_cast<std::uint64_t>(average_time * 10.0);
      double mean_hawks = 0.0;
      for (std::uint64_t i = 0; i < strides; ++i) {
        engine->run(n / 10);  // parallel time 0.1 per stride
        mean_hawks += engine->census().fraction(0);
      }
      mean_hawks /= static_cast<double>(strides);
      const double tv = std::abs(mean_hawks - hawk_star);
      max_tv = std::max(max_tv, tv);
      table.add_row({engine_kind_name(kind), format_metric(initial_hawks, 3),
                     format_metric(mean_hawks, 5),
                     format_metric(hawk_star, 5), format_metric(tv, 5)});
    }
  }

  result.metric("hawk_fixed_point", hawk_star);
  result.metric("ess_hawk", ess_hawk);
  result.metric("ess_gap", std::abs(hawk_star - ess_hawk));
  result.metric("fixed_point_gap", fixed_point_gap, metric_goal::minimize);
  result.metric("max_tv_to_mean_field", max_tv, metric_goal::minimize);
  result.metric("ode_converged", ode_converged ? 1.0 : 0.0,
                metric_goal::maximize);
  result.note(
      "Expected shape: both ODE relaxations land on one interior fixed\n"
      "point (gap ~0) near the mixed ESS v/c, and every engine's\n"
      "time-averaged census reaches it from either corner with TV at the\n"
      "O(1/sqrt(n)) fluctuation scale.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "g2_hawk_dove_equilibrium", "games,mean-field,engines",
    "Hawk-dove mixed-equilibrium convergence across engines", run_g2);

}  // namespace
