// Experiment E6 (Proposition 2.2): local optimality of the IGT update
// rules. Inside the regime (s1 < 1, delta > c/b, g_max < 1 - c/(delta b)):
//   (i)  f(g, g'') strictly increasing in g for all g'' in [0, g_max],
//   (ii) f(g, AC) non-decreasing in g,
//   (iii) f(g, AD) strictly decreasing in g.
// The scenario counts violations over dense grids, inside and outside the
// regime, using both the closed forms and the independent matrix engine.
#include "ppg/exp/scenario.hpp"
#include "ppg/games/closed_form.hpp"
#include "ppg/games/exact_payoff.hpp"

namespace {

using namespace ppg;

struct violation_counts {
  int checked = 0;
  int monotone_gtft = 0;  // (i) violations
  int monotone_ac = 0;    // (ii) violations
  int monotone_ad = 0;    // (iii) violations
};

violation_counts count_violations(const rd_setting& s, double g_max,
                                  int steps) {
  violation_counts counts;
  const repeated_donation_game rdg = s.to_game();
  for (int i = 0; i < steps; ++i) {
    const double g1 = g_max * i / steps;
    const double g2 = g_max * (i + 1) / steps;
    // (ii) and (iii) via the engine.
    const double ac1 = expected_payoff(rdg, generous_tit_for_tat(g1, s.s1),
                                       always_cooperate());
    const double ac2 = expected_payoff(rdg, generous_tit_for_tat(g2, s.s1),
                                       always_cooperate());
    if (ac2 < ac1 - 1e-12) ++counts.monotone_ac;
    const double ad1 = expected_payoff(rdg, generous_tit_for_tat(g1, s.s1),
                                       always_defect());
    const double ad2 = expected_payoff(rdg, generous_tit_for_tat(g2, s.s1),
                                       always_defect());
    if (ad2 >= ad1) ++counts.monotone_ad;
    for (int j = 0; j <= steps; ++j) {
      const double gpp = g_max * j / steps;
      const double f1 = f_gtft_vs_gtft(s, g1, gpp);
      const double f2 = f_gtft_vs_gtft(s, g2, gpp);
      if (f2 <= f1) ++counts.monotone_gtft;
      ++counts.checked;
    }
  }
  return counts;
}

scenario_result run_e6(const scenario_context& ctx) {
  scenario_result result;
  const int steps = ctx.pick(24, 16);
  result.param("grid_steps", steps);

  auto& table = result.table(
      "violation counts over dense (g, g'') grids",
      {"b", "delta", "g_max", "in regime?", "grid points", "(i) violations",
       "(ii) violations", "(iii) violations"});
  struct config {
    double b;
    double delta;
    double g_max;
  };
  const config configs[] = {
      // Inside the regime.
      {3.0, 0.8, 0.5},
      {2.0, 0.9, 0.35},
      {8.0, 0.5, 0.7},
      {16.0, 0.3, 0.75},
      // Outside: delta too small or g_max too large.
      {3.0, 0.25, 0.5},
      {3.0, 0.8, 0.95},
      {1.5, 0.5, 0.9},
  };
  int in_regime_violations = 0;
  int out_regime_violations = 0;
  for (const auto& cfg : configs) {
    const rd_setting s{cfg.b, 1.0, cfg.delta, 0.5};
    const bool in_regime = proposition_2_2_regime(s, cfg.g_max);
    const auto counts = count_violations(s, cfg.g_max, steps);
    const int total =
        counts.monotone_gtft + counts.monotone_ac + counts.monotone_ad;
    (in_regime ? in_regime_violations : out_regime_violations) += total;
    table.add_row({format_metric(cfg.b), format_metric(cfg.delta),
                   format_metric(cfg.g_max), in_regime ? "yes" : "no",
                   format_metric(counts.checked),
                   format_metric(counts.monotone_gtft),
                   format_metric(counts.monotone_ac),
                   format_metric(counts.monotone_ad)});
  }

  result.metric("in_regime_violations",
                static_cast<double>(in_regime_violations),
                metric_goal::minimize);
  result.metric("out_regime_violations",
                static_cast<double>(out_regime_violations));
  result.note(
      "Expected shape: zero violations of (i)-(iii) whenever the regime "
      "predicate\nholds; out-of-regime rows may (and the g_max = 0.95 row "
      "does) violate (i) — the\ntransitions are no longer locally optimal "
      "there, which is also the mechanism\nbehind the e5 part-(c) finding.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "e6_local_optimality", "games,exact,monotonicity",
    "Local optimality of IGT transitions (Proposition 2.2)", run_e6);

}  // namespace
