// Experiment E8 (Remark 2.6): the cutoff phenomenon. For the classic k = 2
// urn process, the TV distance from the worst start stays near 1 and then
// collapses sharply around (1/2) m log m moves; the window narrows (in
// relative terms) as m grows. We measure the exact TV profile and the
// relative width of the [0.75, 0.25] TV window, then probe the same
// quantities for a high-dimensional (k = 4) process, where obtaining exact
// cutoff constants is the paper's stated open question.
#include <cmath>
#include <vector>

#include "ppg/ehrenfest/birth_death.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/exp/scenario.hpp"
#include "ppg/markov/mixing.hpp"
#include "ppg/util/table.hpp"

namespace {

using namespace ppg;

struct cutoff_profile {
  double t25 = 0.0;             ///< first t with TV <= 0.25
  double t75 = 0.0;             ///< first t with TV <= 0.75
  double relative_width = 0.0;  ///< (t25 - t75)/t25
};

cutoff_profile measure_cutoff(const ehrenfest_params& params) {
  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  const auto pi = exact_stationary_vector(params, index);
  const auto corners = find_corner_states(index);
  // Use the worse of the two corners (relevant for biased chains).
  const auto t25 = mixing_time_from_starts(
      chain, {corners.bottom, corners.top}, pi, 0.25, 100'000'000);
  const auto t75 = mixing_time_from_starts(
      chain, {corners.bottom, corners.top}, pi, 0.75, 100'000'000);
  cutoff_profile profile;
  profile.t25 = static_cast<double>(t25);
  profile.t75 = static_cast<double>(t75);
  profile.relative_width = (profile.t25 - profile.t75) / profile.t25;
  return profile;
}

scenario_result run_e8(const scenario_context& ctx) {
  scenario_result result;

  const auto two_ms = ctx.pick<std::vector<std::uint64_t>>(
      {8, 16, 32, 64, 128}, {8, 16, 32});
  result.param("two_urn_max_m", two_ms.back());
  auto& two_table = result.table(
      "(a) classic k = 2 urn (a = b = 1/4): t_mix vs the (1/2) m log m / "
      "(a+b)\n    prediction, and the relative width of the TV drop "
      "(cutoff => width -> 0)",
      {"m", "t(TV=0.75)", "t(TV=0.25)", "t25 / ((m log m)/2/(a+b))",
       "relative width"});
  double two_urn_last_ratio = 0.0;
  double two_urn_last_width = 0.0;
  for (const std::uint64_t m : two_ms) {
    const ehrenfest_params params{2, 0.25, 0.25, m};
    const auto profile = measure_cutoff(params);
    const double md = static_cast<double>(m);
    const double predicted = 0.5 * md * std::log(md) / (params.a + params.b);
    two_urn_last_ratio = profile.t25 / predicted;
    two_urn_last_width = profile.relative_width;
    two_table.add_row({format_metric(md), format_metric(profile.t75),
                       format_metric(profile.t25),
                       format_metric(two_urn_last_ratio, 4),
                       format_metric(two_urn_last_width, 4)});
  }

  const auto four_ms =
      ctx.pick<std::vector<std::uint64_t>>({6, 12, 24, 48}, {6, 12});
  auto& four_table = result.table(
      "(b) high-dimensional probe, k = 4 (a = b = 1/4): does the relative "
      "width\n    still shrink?",
      {"m", "t(TV=0.75)", "t(TV=0.25)", "t25 / (m log m)",
       "relative width"});
  double four_urn_last_width = 0.0;
  for (const std::uint64_t m : four_ms) {
    const ehrenfest_params params{4, 0.25, 0.25, m};
    const auto profile = measure_cutoff(params);
    const double md = static_cast<double>(m);
    four_urn_last_width = profile.relative_width;
    four_table.add_row(
        {format_metric(md), format_metric(profile.t75),
         format_metric(profile.t25),
         format_metric(profile.t25 / (md * std::log(md)), 4),
         format_metric(four_urn_last_width, 4)});
  }

  const auto biased_ms =
      ctx.pick<std::vector<std::uint64_t>>({16, 32, 64}, {16, 32});
  auto& biased_table = result.table(
      "(c) biased k = 2 (a = 0.3, b = 0.15): the cutoff location shifts "
      "with the bias",
      {"m", "t(TV=0.25)", "t25 / (m log m)"});
  for (const std::uint64_t m : biased_ms) {
    const ehrenfest_params params{2, 0.3, 0.15, m};
    const auto profile = measure_cutoff(params);
    const double md = static_cast<double>(m);
    biased_table.add_row(
        {format_metric(md), format_metric(profile.t25),
         format_metric(profile.t25 / (md * std::log(md)), 4)});
  }

  const auto large_ms = ctx.pick<std::vector<std::uint64_t>>(
      {256, 512, 1024, 2048}, {256, 512});
  auto& large_table = result.table(
      "(d) large-m confirmation via the k = 2 birth-death projection "
      "(expression\n    (11)): the O(m)-state tridiagonal chain reaches "
      "large m where the cutoff is\n    sharp",
      {"m", "t(TV=0.75)", "t(TV=0.25)", "t25 / ((m log m)/2/(a+b))",
       "relative width"});
  double large_last_ratio = 0.0;
  for (const std::uint64_t m : large_ms) {
    const ehrenfest_params params{2, 0.25, 0.25, m};
    const auto chain = two_urn_projected_chain(params);
    const auto pi = two_urn_projected_stationary(params);
    // Worst start: all balls in urn 1 (projected state m).
    const auto t25 = hitting_time_of_tv(chain, static_cast<std::size_t>(m),
                                        pi, 0.25, 500'000'000);
    const auto t75 = hitting_time_of_tv(chain, static_cast<std::size_t>(m),
                                        pi, 0.75, 500'000'000);
    const double md = static_cast<double>(m);
    const double predicted = 0.5 * md * std::log(md) / (params.a + params.b);
    large_last_ratio = static_cast<double>(t25) / predicted;
    large_table.add_row(
        {format_metric(md), fmt_count(t75), fmt_count(t25),
         format_metric(large_last_ratio, 4),
         format_metric((static_cast<double>(t25) - static_cast<double>(t75)) /
                           static_cast<double>(t25),
                       4)});
  }

  result.metric("two_urn_last_ratio", two_urn_last_ratio);
  result.metric("two_urn_last_width", two_urn_last_width,
                metric_goal::minimize);
  result.metric("four_urn_last_width", four_urn_last_width,
                metric_goal::minimize);
  result.metric("large_m_last_ratio", large_last_ratio);
  result.note(
      "Expected shape: in (a), the t25/(prediction) ratio tends to ~1 and "
      "the relative\nwidth shrinks with m — the textbook cutoff. In (b) the "
      "width also shrinks,\nevidence that the high-dimensional process "
      "exhibits cutoff too (open question in\nthe paper). In (d) the ratio "
      "is within a few percent of 1 at the largest m.");
  return result;
}

[[maybe_unused]] const bool registered = register_scenario(
    "e8_cutoff", "ehrenfest,mixing,cutoff,exact",
    "Cutoff phenomenon of the urn process (Remark 2.6)", run_e8);

}  // namespace
