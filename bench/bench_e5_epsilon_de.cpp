// Experiment E5 (Theorem 2.9): the normalized mean stationary distribution
// mu of the k-IGT dynamics is an epsilon-approximate distributional
// equilibrium with epsilon = O(1/k).
//
// Three parts:
//  (a) exact Psi(k) decay within the (corrected) admissible regime — the
//      k*Psi column should stabilize;
//  (b) Psi measured from an actual agent-level simulation census;
//  (c) reproduction note — an instance satisfying the paper's *literal*
//      constraints whose equation-(63) bracket is negative: Psi stays
//      Theta(1). The corrected deviation-gain condition (see theory.hpp)
//      separates the two regimes.
#include <iostream>

#include "ppg/core/equilibrium.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/core/igt_count_chain.hpp"
#include "ppg/core/theory.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;
  std::cout << "=== E5: epsilon-approximate distributional equilibrium "
               "(Theorem 2.9) ===\n\n";

  const double alpha = 0.1;
  const double beta = 0.2;  // lambda = 4
  const double gamma = 0.7;
  const auto instance = make_theorem_2_9_instance(beta, gamma, 0.5);
  const auto cond =
      check_theorem_2_9(instance.setting, beta, gamma, instance.g_max);
  std::cout << "Admissible instance: b = " << instance.setting.b
            << ", c = " << instance.setting.c
            << ", delta = " << fmt(instance.setting.delta, 3)
            << ", s1 = " << instance.setting.s1
            << ", g_max = " << fmt(instance.g_max, 3)
            << "; all conditions: " << (cond.all() ? "yes" : "NO") << "\n\n";

  std::cout << "(a) exact Psi(k) under the stationary mean distribution\n";
  text_table psi_table({"k", "Psi", "k*Psi", "best deviation level",
                        "L*Var bound (D.1-D.3)"});
  for (const std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const igt_equilibrium_analyzer analyzer(instance.setting, alpha, beta,
                                            gamma, k, instance.g_max);
    const auto de = analyzer.stationary_gap();
    const double l_bound =
        second_derivative_bound(instance.setting, instance.g_max) *
        stationary_generosity_variance(beta, k, instance.g_max);
    psi_table.add_row({std::to_string(k), fmt_sci(de.epsilon, 3),
                       fmt(de.epsilon * static_cast<double>(k), 4),
                       std::to_string(de.best_level + 1),
                       fmt_sci(l_bound, 2)});
  }
  psi_table.print(std::cout);

  std::cout << "\n(b) Psi of the census measured from the census-engine "
               "simulation (n = 300, 4 replicas)\n";
  text_table sim_table({"k", "Psi (ideal mu)", "Psi (simulated census)"});
  const auto pop = abg_population::from_fractions(300, alpha, beta, gamma);
  for (const std::size_t k : {4u, 8u, 16u}) {
    const igt_equilibrium_analyzer analyzer(instance.setting, alpha, beta,
                                            gamma, k, instance.g_max);
    const igt_protocol proto(k);
    const sim_spec spec(
        proto, population(make_igt_population_states(pop, k, 0), 2 + k),
        pair_sampling::with_replacement);
    const auto burn =
        static_cast<std::uint64_t>(igt_mixing_upper_bound(pop, k));
    const auto batch = replicate_time_averaged_census(
        spec, engine_kind::census, burn, 100'000, {4, 11, 0},
        [&](const census_view& census) {
          const auto z = gtft_level_counts(census, k);
          std::vector<double> mu(k);
          for (std::size_t j = 0; j < k; ++j) {
            mu[j] = static_cast<double>(z[j]) /
                    static_cast<double>(pop.num_gtft);
          }
          return mu;
        });
    sim_table.add_row({std::to_string(k),
                       fmt_sci(analyzer.stationary_gap().epsilon, 3),
                       fmt_sci(analyzer.gap(batch.mean()).epsilon, 3)});
  }
  sim_table.print(std::cout);

  std::cout << "\n(c) reproduction note: a literal-conditions instance with "
               "a negative\n    equation-(63) bracket — Psi does NOT decay\n";
  const rd_setting bad{4.0, 1.0, 0.45, 0.5};
  const auto bad_cond = check_theorem_2_9(bad, 0.2, 0.7, 0.9);
  std::cout << "    paper conditions: "
            << (bad_cond.paper_conditions() ? "satisfied" : "violated")
            << "; corrected deviation coefficient = "
            << fmt(bad_cond.deviation_coefficient, 3) << " (< 0)\n";
  text_table bad_table({"k", "Psi", "k*Psi", "best deviation level"});
  for (const std::size_t k : {4u, 16u, 64u}) {
    const igt_equilibrium_analyzer analyzer(bad, 0.1, 0.2, 0.7, k, 0.9);
    const auto de = analyzer.stationary_gap();
    bad_table.add_row({std::to_string(k), fmt(de.epsilon, 4),
                       fmt(de.epsilon * static_cast<double>(k), 2),
                       std::to_string(de.best_level + 1)});
  }
  bad_table.print(std::cout);

  std::cout << "\nExpected shape: (a) k*Psi stabilizes (O(1/k) decay), the "
               "best deviation is the top level\nand the Taylor term "
               "L*Var = O(1/k^2) is dominated; (b) simulated Psi tracks the "
               "ideal one;\n(c) Psi ~ constant with the best deviation at "
               "level 1 — the corrected condition is necessary.\n";
  return 0;
}
