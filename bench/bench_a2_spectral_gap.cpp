// Ablation A2: spectral view of Theorem 2.5. The relaxation time
// t_rel = 1/(spectral gap) of the exact Ehrenfest operator gives an
// independent bracket on t_mix ((t_rel - 1) log 2 <= t_mix <=
// t_rel log(1/(eps pi_min))). This bench compares, per parameter point:
// the measured t_mix, the coupling-based Theorem 2.5 upper bound, the
// diameter lower bound, and the spectral bracket — and reports how the gap
// itself scales with k, m, and the bias.
#include <iostream>

#include "ppg/ehrenfest/bounds.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/markov/mixing.hpp"
#include "ppg/markov/spectral.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;
  std::cout << "=== A2: spectral gap vs coupling bounds (Theorem 2.5) "
               "===\n\n";

  text_table table({"k", "m", "a", "b", "gap", "t_rel", "measured t_mix",
                    "spectral lower", "spectral upper", "Thm2.5 lower",
                    "Thm2.5 upper"});
  for (const auto& params :
       {ehrenfest_params{2, 0.25, 0.25, 16}, ehrenfest_params{2, 0.35, 0.15, 16},
        ehrenfest_params{3, 0.25, 0.25, 10}, ehrenfest_params{3, 0.35, 0.15, 10},
        ehrenfest_params{4, 0.25, 0.25, 8}, ehrenfest_params{4, 0.4, 0.1, 8},
        ehrenfest_params{6, 0.3, 0.15, 5}}) {
    const simplex_index index(params.k, params.m);
    const auto chain = build_ehrenfest_chain(params, index);
    const auto pi = exact_stationary_vector(params, index);
    const auto corners = find_corner_states(index);
    const auto measured = mixing_time_from_starts(
        chain, {corners.bottom, corners.top}, pi, 0.25, 50'000'000);
    const auto spectral = estimate_slem(chain, pi, 1e-13, 3'000'000);
    const auto bracket = mixing_bounds_from_relaxation(spectral, pi);
    table.add_row({std::to_string(params.k), std::to_string(params.m),
                   fmt(params.a, 2), fmt(params.b, 2),
                   fmt_sci(spectral.spectral_gap, 2),
                   fmt(spectral.relaxation_time, 1), fmt_count(measured),
                   fmt(bracket.lower, 0), fmt(bracket.upper, 0),
                   fmt(mixing_lower_bound(params), 0),
                   fmt(mixing_upper_bound(params), 0)});
  }
  table.print(std::cout);

  std::cout << "\nGap scaling (a = b = 0.25): the classic k = 2 urn has gap "
               "(a+b)/m exactly;\nhigher k shrinks the gap further\n";
  text_table gap_table({"k", "m", "gap", "gap * m / (a+b)"});
  for (const auto& params :
       {ehrenfest_params{2, 0.25, 0.25, 8}, ehrenfest_params{2, 0.25, 0.25, 16},
        ehrenfest_params{3, 0.25, 0.25, 8}, ehrenfest_params{4, 0.25, 0.25, 8},
        ehrenfest_params{5, 0.25, 0.25, 6}}) {
    const simplex_index index(params.k, params.m);
    const auto chain = build_ehrenfest_chain(params, index);
    const auto pi = exact_stationary_vector(params, index);
    const auto spectral = estimate_slem(chain, pi, 1e-13, 3'000'000);
    gap_table.add_row({std::to_string(params.k), std::to_string(params.m),
                       fmt_sci(spectral.spectral_gap, 3),
                       fmt(spectral.spectral_gap *
                               static_cast<double>(params.m) /
                               (params.a + params.b),
                           3)});
  }
  gap_table.print(std::cout);

  std::cout << "\nExpected shape: measured t_mix inside both brackets; for "
               "k = 2 the normalized gap\nis exactly 1; for k > 2 it drops "
               "below 1 (slower relaxation), consistent with the\nk-"
               "dependence of Theorem 2.5.\n";
  return 0;
}
