// Ablation A3: the emergence of cooperation as a welfare trajectory. From
// an all-stingy start (every GTFT agent at g_1 = 0), the k-IGT dynamics
// climbs the generosity ladder; this bench tracks the population's average
// generosity and per-interaction welfare over parallel time, across beta
// regimes — the dynamic picture behind the stationary results of E3/E4.
// Each curve is the mean over 4 independent replicas run on the batch
// engine, with a 95% CI band on the welfare column.
#include <iostream>

#include "ppg/core/equilibrium.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/core/igt_count_chain.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;
  std::cout << "=== A3: welfare trajectories of the k-IGT dynamics ===\n\n";

  const std::size_t n = 400;
  const std::size_t k = 6;
  const double g_max = 0.6;
  const rd_setting setting{4.0, 1.0, 0.8, 0.95};
  const auto grid = generosity_grid(k, g_max);
  const auto payoffs = full_payoff_matrix(setting, k, g_max);

  std::cout << "Game: b = " << setting.b << ", c = " << setting.c
            << ", delta = " << setting.delta << "; n = " << n
            << ", k = " << k << ", all GTFT agents start at g = 0;\n"
            << "4 replicas per beta, welfare shown as mean with a 95% CI "
               "half-width\n\n";

  const std::uint64_t horizon = 60 * n;  // 60 units of parallel time
  const std::uint64_t stride = 6 * n;
  const std::size_t points = static_cast<std::size_t>(horizon / stride) + 1;

  for (const double beta : {0.1, 0.3, 0.6}) {
    const double alpha = 0.1;
    const auto pop =
        abg_population::from_fractions(n, alpha, beta, 0.9 - beta);
    const igt_protocol proto(k);
    const sim_spec spec(
        proto, population(make_igt_population_states(pop, k, 0), 2 + k),
        pair_sampling::with_replacement);

    // One replica: the generosity trace followed by the welfare trace,
    // sampled on the shared time grid.
    const auto batch = replicate_trajectory(
        {4, 2025, 0}, [&](const replica_context&, rng& gen) {
          const auto sim = spec.make_engine(engine_kind::census, gen);
          std::vector<double> trace;
          trace.reserve(2 * points);
          std::vector<double> welfare_trace;
          welfare_trace.reserve(points);
          for (std::uint64_t t = 0; t <= horizon; t += stride) {
            if (t > 0) sim->run(stride);
            const auto census = gtft_level_counts(sim->census(), k);
            std::vector<double> mu(k);
            double avg_g = 0.0;
            for (std::size_t j = 0; j < k; ++j) {
              mu[j] = static_cast<double>(census[j]) /
                      static_cast<double>(pop.num_gtft);
              avg_g += grid[j] * mu[j];
            }
            const auto mu_hat = induced_full_distribution(
                mu, pop.alpha(), pop.beta(), pop.gamma());
            trace.push_back(avg_g);
            welfare_trace.push_back(population_welfare(payoffs, mu_hat) /
                                    setting.to_game().expected_rounds());
          }
          trace.insert(trace.end(), welfare_trace.begin(),
                       welfare_trace.end());
          return trace;
        });

    const auto mean = batch.mean_curve();
    const auto band = batch.ci_band();
    double peak_welfare = 0.0;
    for (std::size_t i = 0; i < points; ++i) {
      peak_welfare = std::max(peak_welfare, mean[points + i]);
    }

    std::cout << "beta = " << fmt(pop.beta(), 2)
              << " (lambda = " << fmt(pop.lambda(), 2) << ")\n";
    text_table table({"parallel time", "avg generosity", "welfare/round",
                      "95% CI", "welfare bar"});
    for (std::size_t i = 0; i < points; ++i) {
      const double w = mean[points + i];
      const auto len = static_cast<std::size_t>(
          std::max(0.0, w / peak_welfare) * 30.0);
      table.add_row(
          {fmt(static_cast<double>(i * stride) / static_cast<double>(n), 0),
           fmt(mean[i], 3), fmt(w, 3), fmt(band[points + i], 3),
           std::string(len, '#')});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape: for small beta, generosity and welfare climb "
               "together and\nsaturate near the stationary values within "
               "O(k log n) parallel time; for large\nbeta the climb stalls "
               "near the bottom and welfare stays depressed by defection.\n";
  return 0;
}
