// Ablation A3: the emergence of cooperation as a welfare trajectory. From
// an all-stingy start (every GTFT agent at g_1 = 0), the k-IGT dynamics
// climbs the generosity ladder; this bench tracks the population's average
// generosity and per-interaction welfare over parallel time, across beta
// regimes — the dynamic picture behind the stationary results of E3/E4.
#include <iostream>

#include "ppg/core/equilibrium.hpp"
#include "ppg/core/igt_protocol.hpp"
#include "ppg/core/igt_count_chain.hpp"
#include "ppg/util/table.hpp"

int main() {
  using namespace ppg;
  std::cout << "=== A3: welfare trajectories of the k-IGT dynamics ===\n\n";

  const std::size_t n = 400;
  const std::size_t k = 6;
  const double g_max = 0.6;
  const rd_setting setting{4.0, 1.0, 0.8, 0.95};
  const auto grid = generosity_grid(k, g_max);
  const auto payoffs = full_payoff_matrix(setting, k, g_max);

  std::cout << "Game: b = " << setting.b << ", c = " << setting.c
            << ", delta = " << setting.delta << "; n = " << n
            << ", k = " << k << ", all GTFT agents start at g = 0\n\n";

  for (const double beta : {0.1, 0.3, 0.6}) {
    const double alpha = 0.1;
    const auto pop =
        abg_population::from_fractions(n, alpha, beta, 0.9 - beta);
    const igt_protocol proto(k);
    simulation sim(proto,
                   population(make_igt_population_states(pop, k, 0), 2 + k),
                   rng(2025), pair_sampling::with_replacement);

    std::cout << "beta = " << fmt(pop.beta(), 2)
              << " (lambda = " << fmt(pop.lambda(), 2) << ")\n";
    text_table table({"parallel time", "avg generosity", "welfare/round",
                      "welfare bar"});
    const std::uint64_t horizon = 60 * n;  // 60 units of parallel time
    const std::uint64_t stride = 6 * n;
    double peak_welfare = 0.0;
    std::vector<std::vector<std::string>> rows;
    for (std::uint64_t t = 0; t <= horizon; t += stride) {
      if (t > 0) sim.run(stride);
      const auto census = gtft_level_counts(sim.agents(), k);
      std::vector<double> mu(k);
      double avg_g = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        mu[j] = static_cast<double>(census[j]) /
                static_cast<double>(pop.num_gtft);
        avg_g += grid[j] * mu[j];
      }
      const auto mu_hat = induced_full_distribution(
          mu, pop.alpha(), pop.beta(), pop.gamma());
      const double welfare = population_welfare(payoffs, mu_hat) /
                             setting.to_game().expected_rounds();
      peak_welfare = std::max(peak_welfare, welfare);
      rows.push_back({fmt(static_cast<double>(t) / static_cast<double>(n), 0),
                      fmt(avg_g, 3), fmt(welfare, 3), ""});
    }
    // Render bars relative to the trajectory's peak.
    for (auto& row : rows) {
      const double w = std::stod(row[2]);
      const auto len = static_cast<std::size_t>(
          std::max(0.0, w / peak_welfare) * 30.0);
      row[3] = std::string(len, '#');
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape: for small beta, generosity and welfare climb "
               "together and\nsaturate near the stationary values within "
               "O(k log n) parallel time; for large\nbeta the climb stalls "
               "near the bottom and welfare stays depressed by defection.\n";
  return 0;
}
