// Ablation A4 (the Section 1.1.2 discussion): why generosity? Under
// execution noise — a cooperative action occasionally replaced by defection
// — two TFT players fall into retaliation spirals and lose most of the
// cooperative surplus, while generous TFT recovers. This bench quantifies
// the effect with the exact payoff oracle (noise folded exactly into the
// strategy via the `perturbed` map) and locates the optimal generosity as a
// function of the noise rate.
#include <iostream>

#include "ppg/games/exact_payoff.hpp"
#include "ppg/games/strategy.hpp"
#include "ppg/util/table.hpp"

namespace {

using namespace ppg;

// Mutual expected payoff of two identical noisy strategies.
double mutual_payoff(const repeated_donation_game& rdg,
                     const memory_one_strategy& s, double noise) {
  const auto noisy = perturbed(s, noise);
  return expected_payoff(rdg, noisy, noisy);
}

}  // namespace

int main() {
  const repeated_donation_game rdg{{3.0, 1.0}, 0.95};
  const double s1 = 1.0;
  const double full_cooperation =
      expected_payoff(rdg, always_cooperate(), always_cooperate());

  std::cout << "=== A4: noise robustness — the case for generosity "
               "(Section 1.1.2) ===\n\n";
  std::cout << "b = 3, c = 1, delta = 0.95; mutual payoff of two identical "
               "strategies,\nas a fraction of the full-cooperation payoff "
            << fmt(full_cooperation, 1) << "\n\n";

  text_table table({"noise", "TFT (g=0)", "GTFT(0.1)", "GTFT(0.3)",
                    "GTFT(0.5)", "AC"});
  for (const double noise : {0.0, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    auto cell = [&](const memory_one_strategy& s) {
      return fmt(mutual_payoff(rdg, s, noise) / full_cooperation, 3);
    };
    table.add_row({fmt(noise, 3), cell(tit_for_tat(s1)),
                   cell(generous_tit_for_tat(0.1, s1)),
                   cell(generous_tit_for_tat(0.3, s1)),
                   cell(generous_tit_for_tat(0.5, s1)),
                   cell(always_cooperate())});
  }
  table.print(std::cout);

  // Against a pure mirror more generosity always helps; the interesting
  // trade-off needs defectors in the pool (generosity bleeds against AD).
  // Opponent pool: 80% GTFT mirror, 20% AD, everyone noisy.
  std::cout << "\nOptimal generosity against a noisy pool (80% GTFT mirror "
               "+ 20% AD):\n";
  text_table opt_table({"noise", "best g", "pool payoff at best g",
                        "pool payoff at g=0"});
  auto pool_payoff = [&](double g, double noise) {
    const auto self = perturbed(generous_tit_for_tat(g, s1), noise);
    const auto mirror = self;
    const auto defector = perturbed(always_defect(), noise);
    return 0.8 * expected_payoff(rdg, self, mirror) +
           0.2 * expected_payoff(rdg, self, defector);
  };
  for (const double noise : {0.005, 0.02, 0.05, 0.1}) {
    double best_g = 0.0;
    double best_value = -1e300;
    for (int i = 0; i <= 100; ++i) {
      const double g = i / 100.0;
      const double value = pool_payoff(g, noise);
      if (value > best_value) {
        best_value = value;
        best_g = g;
      }
    }
    opt_table.add_row({fmt(noise, 3), fmt(best_g, 2), fmt(best_value, 3),
                       fmt(pool_payoff(0.0, noise), 3)});
  }
  opt_table.print(std::cout);

  std::cout
      << "\nExpected shape: at zero noise TFT achieves full cooperation; "
         "noise drags mutual TFT\ntoward the alternating-retaliation "
         "plateau while even small generosity recovers most\nof the surplus "
         "— the paper's stated motivation for the GTFT family. With "
         "defectors in\nthe pool the optimum is interior: generous enough "
         "to absorb noise, not so generous as\nto subsidize AD.\n";
  return 0;
}
