// Experiment E11 (Theorem 2.7, mixing): convergence time of the k-IGT
// dynamics in total population interactions.
//   upper bound: O(min{k/|1-2 beta|, k^2} n log n), lower bound Omega(kn).
// Exact TV measurement is infeasible for realistic n (the state space is
// the whole simplex), so we measure a standard proxy on the simulated
// count chain: the first time the census TV-matches its stationary marginal
// expectation within 0.1, averaged over seeds, from the worst (all-bottom
// or all-top) start. Scaling in k, n, and beta is the object of interest.
#include <cmath>
#include <iostream>

#include "ppg/core/igt_count_chain.hpp"
#include "ppg/exp/replicate.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/table.hpp"

namespace {

using namespace ppg;

// First interaction count at which the *instantaneous* census is within
// `tol` TV of the stationary marginal, starting from the worse corner.
// (The instantaneous census is a random vector; for m balls its TV to the
// mean is noisy, so tol must be above the sampling noise floor.)
double census_hitting_time(const abg_population& pop, std::size_t k,
                           double tol, rng& gen) {
  const auto probs = igt_stationary_probs(pop, k);
  // Worst corner: all mass at the level with the *least* stationary mass.
  const std::size_t start =
      probs.front() < probs.back() ? 0 : k - 1;
  igt_count_chain chain(pop, k, start);
  const std::uint64_t cap = 200'000'000;
  std::vector<double> census(k);
  for (std::uint64_t t = 1; t <= cap; ++t) {
    chain.step(gen);
    if (t % 64 != 0) continue;  // check periodically
    const auto& z = chain.counts();
    for (std::size_t j = 0; j < k; ++j) {
      census[j] = static_cast<double>(z[j]) /
                  static_cast<double>(pop.num_gtft);
    }
    if (total_variation(census, probs) <= tol) {
      return static_cast<double>(t);
    }
  }
  return static_cast<double>(cap);
}

// Replicates the hitting-time measurement on the batch engine (one replica
// per worker-pool slot) and returns the aggregate.
scalar_aggregator replicated_hitting(const abg_population& pop, std::size_t k,
                                     std::size_t replicas) {
  return replicate_scalar(
      {replicas, 1000, 0}, [&](const replica_context&, rng& gen) {
        return census_hitting_time(pop, k, 0.1, gen);
      });
}

}  // namespace

int main() {
  std::cout << "=== E11: k-IGT mixing-time scaling (Theorem 2.7) ===\n\n";
  constexpr std::size_t replicas = 6;

  std::cout << "(a) scaling in k (n = 1000, beta = 0.2): time/k should "
               "stabilize between the bounds\n";
  text_table k_table({"k", "hitting time", "time/k", "lower kn/2 bound",
                      "upper bound"});
  const auto pop = abg_population::from_fractions(1000, 0.1, 0.2, 0.7);
  for (const std::size_t k : {2u, 4u, 8u, 16u}) {
    const double t = replicated_hitting(pop, k, replicas).mean();
    k_table.add_row(
        {std::to_string(k), fmt_count(static_cast<std::uint64_t>(t)),
         fmt(t / static_cast<double>(k), 0),
         fmt_count(
             static_cast<std::uint64_t>(igt_mixing_lower_bound(pop, k))),
         fmt_count(
             static_cast<std::uint64_t>(igt_mixing_upper_bound(pop, k)))});
  }
  k_table.print(std::cout);

  std::cout << "\n(b) scaling in n (k = 6, beta = 0.2): time/(n log n) "
               "should stabilize\n";
  text_table n_table({"n", "hitting time", "time/(n log n)"});
  for (const std::size_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
    const auto pop_n = abg_population::from_fractions(n, 0.1, 0.2, 0.7);
    const double t = replicated_hitting(pop_n, 6, replicas).mean();
    n_table.add_row(
        {std::to_string(n), fmt_count(static_cast<std::uint64_t>(t)),
         fmt(t / (static_cast<double>(n) * std::log(static_cast<double>(n))),
             2)});
  }
  n_table.print(std::cout);

  std::cout << "\n(c) beta sweep (n = 1000, k = 8): slowdown near beta = "
               "1/2 (the |1-2 beta| effect)\n";
  text_table b_table({"beta", "|1-2 beta|", "hitting time",
                      "min{k/|1-2b|, k^2}"});
  for (const double beta : {0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.6, 0.7}) {
    const auto pop_b =
        abg_population::from_fractions(1000, 0.1, beta, 0.9 - beta);
    const double t = replicated_hitting(pop_b, 8, replicas).mean();
    const double gap = std::abs(1.0 - 2.0 * pop_b.beta());
    const double factor =
        gap < 1e-12 ? 64.0 : std::min(8.0 / gap, 64.0);
    b_table.add_row({fmt(pop_b.beta(), 2), fmt(gap, 2),
                     fmt_count(static_cast<std::uint64_t>(t)),
                     fmt(factor, 1)});
  }
  b_table.print(std::cout);

  std::cout << "\nExpected shape: (a) linear-in-k growth; (b) mild "
               "super-linear growth in n\nconsistent with n log n; (c) a "
               "slowdown peak around beta = 1/2, the regime where\nthe "
               "embedded Ehrenfest chain loses its drift (Theorem 2.7's "
               "case distinction).\n";
  return 0;
}
