// Experiment E2 (Theorem 2.5): mixing-time scaling of the
// (k, a, b, m)-Ehrenfest process. t_mix is measured exactly (TV decay from
// the worst corner start on the enumerated state space) and compared
// against the theorem's bounds:
//   upper:  O(min{k/|a-b|, k^2} * m log m)   (a != b; k^2 m log m if a = b)
//   lower:  Omega(km)  (diameter)
// The tables report the measured time and the scaling ratios that should
// stabilize if the bounds are tight in k and m respectively.
#include <cmath>
#include <iostream>

#include "ppg/ehrenfest/bounds.hpp"
#include "ppg/ehrenfest/exact_chain.hpp"
#include "ppg/markov/mixing.hpp"
#include "ppg/util/table.hpp"

namespace {

std::size_t measure_tmix(const ppg::ehrenfest_params& params) {
  using namespace ppg;
  const simplex_index index(params.k, params.m);
  const auto chain = build_ehrenfest_chain(params, index);
  const auto pi = exact_stationary_vector(params, index);
  const auto corners = find_corner_states(index);
  return mixing_time_from_starts(chain, {corners.bottom, corners.top}, pi,
                                 0.25, 50'000'000);
}

}  // namespace

int main() {
  using namespace ppg;
  std::cout << "=== E2: mixing time of the (k,a,b,m)-Ehrenfest process "
               "(Theorem 2.5) ===\n\n";

  std::cout << "(a) scaling in k, moderate bias (m = 6, a = 0.3, b = 0.15):\n"
               "    here k/|a-b| = 6.7k > k^2 for k <= 6, so Theorem 2.5 "
               "predicts the k^2 regime —\n    t_mix/k^2 should stabilize "
               "while t_mix/k keeps growing\n";
  text_table k_table({"k", "measured t_mix", "t_mix / k", "t_mix / k^2",
                      "lower km/2", "upper 2*Phi*log(4m)"});
  for (const std::size_t k : {2u, 3u, 4u, 5u, 6u, 8u}) {
    const ehrenfest_params params{k, 0.3, 0.15, 6};
    const auto t = measure_tmix(params);
    const auto kd = static_cast<double>(k);
    k_table.add_row({std::to_string(k), fmt_count(t),
                     fmt(static_cast<double>(t) / kd, 1),
                     fmt(static_cast<double>(t) / (kd * kd), 1),
                     fmt_count(static_cast<std::uint64_t>(
                         mixing_lower_bound(params))),
                     fmt_count(static_cast<std::uint64_t>(
                         mixing_upper_bound(params)))});
  }
  k_table.print(std::cout);

  std::cout << "\n(a') scaling in k, strong bias (m = 6, a = 0.45, b = "
               "0.05):\n    now k/|a-b| = 2.5k < k^2 for k >= 3 — the "
               "linear regime; t_mix/k should stabilize\n";
  text_table k2_table({"k", "measured t_mix", "t_mix / k", "t_mix / k^2"});
  for (const std::size_t k : {3u, 4u, 5u, 6u, 8u, 10u}) {
    const ehrenfest_params params{k, 0.45, 0.05, 6};
    const auto t = measure_tmix(params);
    const auto kd = static_cast<double>(k);
    k2_table.add_row({std::to_string(k), fmt_count(t),
                      fmt(static_cast<double>(t) / kd, 1),
                      fmt(static_cast<double>(t) / (kd * kd), 1)});
  }
  k2_table.print(std::cout);

  std::cout << "\n(b) scaling in m (k = 3, a = 0.3, b = 0.15): "
               "t_mix/(m log m) should stabilize\n";
  text_table m_table({"m", "measured t_mix", "t_mix / (m log m)",
                      "lower km/2", "upper 2*Phi*log(4m)"});
  for (const std::uint64_t m : {4ull, 8ull, 16ull, 32ull, 64ull}) {
    const ehrenfest_params params{3, 0.3, 0.15, m};
    const auto t = measure_tmix(params);
    const double mlogm =
        static_cast<double>(m) * std::log(static_cast<double>(m));
    m_table.add_row({std::to_string(m), fmt_count(t),
                     fmt(static_cast<double>(t) / mlogm, 2),
                     fmt_count(static_cast<std::uint64_t>(
                         mixing_lower_bound(params))),
                     fmt_count(static_cast<std::uint64_t>(
                         mixing_upper_bound(params)))});
  }
  m_table.print(std::cout);

  std::cout << "\n(c) bias sweep (k = 8, m = 4): larger |a-b| mixes faster "
               "once |a-b| > 1/k\n";
  text_table bias_table({"a", "b", "|a-b|", "measured t_mix",
                         "min{k/|a-b|, k^2}"});
  for (const auto& [a, b] :
       {std::pair{0.25, 0.25}, std::pair{0.28, 0.22}, std::pair{0.32, 0.18},
        std::pair{0.375, 0.125}, std::pair{0.45, 0.05}}) {
    const ehrenfest_params params{8, a, b, 4};
    const auto t = measure_tmix(params);
    bias_table.add_row({fmt(a, 3), fmt(b, 3), fmt(std::abs(a - b), 2),
                        fmt_count(t), fmt(coalescence_bound(params), 1)});
  }
  bias_table.print(std::cout);

  std::cout << "\nExpected shape: (a) quadratic-in-k growth (the k^2 "
               "regime), (a') linear-in-k growth\n(the k/|a-b| regime); (b) "
               "slightly super-linear growth in m consistent with m log m;\n"
               "(c) speedup with bias once k/|a-b| < k^2 activates.\n";
  return 0;
}
