// Enumeration and ranking of the integer simplex ∆^m_k (the Ehrenfest state
// space). Supports exact chain analysis: building the full transition
// operator, exact stationary vectors, and TV-decay curves for small (k, m).
//
// States are ordered lexicographically; rank/unrank use the combinatorial
// number system over compositions ("stars and bars").
#pragma once

#include <cstdint>
#include <vector>

namespace ppg {

class simplex_index {
 public:
  /// Requires C(m+k-1, k-1) to fit comfortably in memory; checked against
  /// `max_size`.
  simplex_index(std::size_t k, std::uint64_t m,
                std::size_t max_size = 20'000'000);

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::uint64_t m() const { return m_; }

  /// Number of states |∆^m_k| = C(m+k-1, k-1).
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Lexicographic rank of a composition (must sum to m and have length k).
  [[nodiscard]] std::size_t rank(const std::vector<std::uint64_t>& x) const;

  /// Inverse of rank().
  [[nodiscard]] std::vector<std::uint64_t> unrank(std::size_t index) const;

  /// First composition in lexicographic order: (0, 0, ..., m).
  [[nodiscard]] std::vector<std::uint64_t> first() const;

  /// Advances to the next composition in lexicographic order; returns false
  /// when x was the last one ((m, 0, ..., 0)).
  [[nodiscard]] bool next(std::vector<std::uint64_t>& x) const;

  /// Number of compositions of `total` into `parts` parts:
  /// C(total+parts-1, parts-1), from the precomputed table.
  [[nodiscard]] std::uint64_t compositions(std::size_t parts,
                                           std::uint64_t total) const;

 private:
  std::size_t k_;
  std::uint64_t m_;
  std::size_t size_;
  // table_[p][t] = number of compositions of t into p parts.
  std::vector<std::vector<std::uint64_t>> table_;
};

}  // namespace ppg
