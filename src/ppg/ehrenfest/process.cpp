#include "ppg/ehrenfest/process.hpp"

#include <numeric>

#include "ppg/util/error.hpp"

namespace ppg {

ehrenfest_process::ehrenfest_process(ehrenfest_params params,
                                     std::vector<std::uint64_t> initial_counts)
    : params_(params), counts_(std::move(initial_counts)) {
  PPG_CHECK(params_.valid(), "invalid Ehrenfest parameters");
  PPG_CHECK(counts_.size() == params_.k, "counts size must equal k");
  const std::uint64_t total =
      std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
  PPG_CHECK(total == params_.m, "counts must sum to m");
}

ehrenfest_process ehrenfest_process::at_corner(ehrenfest_params params,
                                               bool top) {
  std::vector<std::uint64_t> counts(params.k, 0);
  counts[top ? params.k - 1 : 0] = params.m;
  return ehrenfest_process(params, std::move(counts));
}

void ehrenfest_process::step(rng& gen) {
  // Sample a ball uniformly (equivalently, an urn proportional to load).
  std::uint64_t ball = gen.next_below(params_.m);
  std::size_t urn = 0;
  while (ball >= counts_[urn]) {
    ball -= counts_[urn];
    ++urn;
  }
  const double u = gen.next_double();
  if (u < params_.a) {
    if (urn + 1 < params_.k) {
      --counts_[urn];
      ++counts_[urn + 1];
    }
  } else if (u < params_.a + params_.b) {
    if (urn > 0) {
      --counts_[urn];
      ++counts_[urn - 1];
    }
  }
  ++time_;
}

void ehrenfest_process::run(std::uint64_t steps, rng& gen) {
  for (std::uint64_t i = 0; i < steps; ++i) {
    step(gen);
  }
}

std::vector<double> ehrenfest_process::normalized_counts() const {
  std::vector<double> out(counts_.size());
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    out[j] = static_cast<double>(counts_[j]) / static_cast<double>(params_.m);
  }
  return out;
}

}  // namespace ppg
