// Closed-form stationary law of the (k, a, b, m)-Ehrenfest process
// (Theorem 2.4): multinomial with parameters m and p_j ∝ lambda^{j-1},
// lambda = a/b.
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/ehrenfest/process.hpp"

namespace ppg {

/// The per-urn stationary probabilities (p_1, ..., p_k), p_j ∝ lambda^{j-1}.
[[nodiscard]] std::vector<double> ehrenfest_stationary_probs(
    const ehrenfest_params& params);

/// Stationary PMF at a specific count vector x in ∆^m_k.
[[nodiscard]] double ehrenfest_stationary_pmf(
    const ehrenfest_params& params, const std::vector<std::uint64_t>& x);

/// Stationary mean count vector: E[pi_j] = m * p_j.
[[nodiscard]] std::vector<double> ehrenfest_stationary_mean(
    const ehrenfest_params& params);

/// Draws a sample from the stationary law.
[[nodiscard]] std::vector<std::uint64_t> sample_ehrenfest_stationary(
    const ehrenfest_params& params, rng& gen);

}  // namespace ppg
