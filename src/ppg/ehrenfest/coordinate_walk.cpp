#include "ppg/ehrenfest/coordinate_walk.hpp"

#include "ppg/util/error.hpp"

namespace ppg {

coordinate_walk::coordinate_walk(ehrenfest_params params,
                                 std::size_t initial_value)
    : coordinate_walk(
          params,
          std::vector<std::uint32_t>(
              params.m, static_cast<std::uint32_t>(initial_value))) {}

coordinate_walk::coordinate_walk(ehrenfest_params params,
                                 std::vector<std::uint32_t> initial_values)
    : params_(params), values_(std::move(initial_values)) {
  PPG_CHECK(params_.valid(), "invalid Ehrenfest parameters");
  PPG_CHECK(values_.size() == params_.m, "need one value per ball");
  counts_.assign(params_.k, 0);
  for (const auto v : values_) {
    PPG_CHECK(v < params_.k, "coordinate value out of range");
    ++counts_[v];
  }
}

void coordinate_walk::step(rng& gen) {
  const std::uint64_t i = gen.next_below(params_.m);
  const double u = gen.next_double();
  const std::uint32_t v = values_[i];
  if (u < params_.a) {
    if (v + 1 < params_.k) {
      values_[i] = v + 1;
      --counts_[v];
      ++counts_[v + 1];
    }
  } else if (u < params_.a + params_.b) {
    if (v > 0) {
      values_[i] = v - 1;
      --counts_[v];
      ++counts_[v - 1];
    }
  }
  ++time_;
}

void coordinate_walk::run(std::uint64_t steps, rng& gen) {
  for (std::uint64_t i = 0; i < steps; ++i) {
    step(gen);
  }
}

}  // namespace ppg
