// The coupling of Appendix A.4.1: two coordinate walks {X_t}, {Y_t} on
// {0, ..., k-1}^m share all randomness — at each step the same coordinate i
// is sampled and both walks apply the same increment/decrement draw
// (truncated independently). Coordinate distances |X^i - Y^i| are
// non-increasing, so the walks coalesce; the coupling time upper-bounds
// mixing via d(t) <= Pr[tau_couple > t].
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ppg/ehrenfest/process.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {

/// Result of one coupling simulation.
struct coupling_run {
  std::uint64_t coupling_time = 0;  ///< first t with X_t == Y_t
  bool coalesced = false;           ///< false if max_steps was hit first
};

/// Runs the shared-randomness coupling from two coordinate assignments until
/// coalescence or max_steps.
[[nodiscard]] coupling_run simulate_coupling(
    const ehrenfest_params& params, std::vector<std::uint32_t> x0,
    std::vector<std::uint32_t> y0, std::uint64_t max_steps, rng& gen);

/// Worst-case start: X at all-0, Y at all-(k-1) (the diameter pair).
[[nodiscard]] coupling_run simulate_corner_coupling(
    const ehrenfest_params& params, std::uint64_t max_steps, rng& gen);

}  // namespace ppg
