#include "ppg/ehrenfest/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "ppg/util/error.hpp"

namespace ppg {

double coalescence_bound(const ehrenfest_params& params) {
  PPG_CHECK(params.valid(), "invalid Ehrenfest parameters");
  const auto k = static_cast<double>(params.k);
  const double gap = std::abs(params.a - params.b);
  if (gap < 1e-15) {
    return k * k;
  }
  return std::min(k / gap, k * k);
}

double phi_bound(const ehrenfest_params& params) {
  return coalescence_bound(params) * static_cast<double>(params.m);
}

double mixing_upper_bound(const ehrenfest_params& params) {
  return 2.0 * phi_bound(params) *
         std::log(4.0 * static_cast<double>(params.m));
}

double mixing_lower_bound(const ehrenfest_params& params) {
  PPG_CHECK(params.valid(), "invalid Ehrenfest parameters");
  return static_cast<double>(params.k) * static_cast<double>(params.m) / 2.0;
}

}  // namespace ppg
