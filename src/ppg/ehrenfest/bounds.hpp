// Closed-form mixing-time bounds from Theorem 2.5 / Lemma A.8 /
// Proposition A.9, used by the bench harness as the "paper-predicted"
// columns.
#pragma once

#include "ppg/ehrenfest/process.hpp"

namespace ppg {

/// Phi from Lemma A.8: min{k/|a-b|, k^2} * m for a != b, k^2 * m otherwise.
/// (Equality is detected with a small tolerance.)
[[nodiscard]] double phi_bound(const ehrenfest_params& params);

/// The explicit coupling-time tail bound: with t = 2 Phi log(4m),
/// Pr[tau_couple > t] <= 1/4, hence t_mix <= t (Lemma A.8 + (22)).
[[nodiscard]] double mixing_upper_bound(const ehrenfest_params& params);

/// Diameter lower bound: t_mix >= km/2 (Proposition A.9).
[[nodiscard]] double mixing_lower_bound(const ehrenfest_params& params);

/// Per-coordinate expected coalescence bound of Lemma A.5:
/// min{k/|a-b|, k^2} (a != b) or k^2 (a = b) *moves of that coordinate*;
/// multiplied by m gives the expected coupling steps (equation (23)).
[[nodiscard]] double coalescence_bound(const ehrenfest_params& params);

}  // namespace ppg
