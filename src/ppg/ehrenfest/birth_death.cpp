#include "ppg/ehrenfest/birth_death.hpp"

#include <cmath>

#include "ppg/markov/random_walk.hpp"
#include "ppg/stats/distributions.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

finite_chain two_urn_projected_chain(const ehrenfest_params& params) {
  PPG_CHECK(params.valid(), "invalid Ehrenfest parameters");
  PPG_CHECK(params.k == 2, "projection defined for k = 2");
  const auto m = params.m;
  const auto md = static_cast<double>(m);
  finite_chain chain(static_cast<std::size_t>(m) + 1);
  for (std::uint64_t x = 0; x <= m; ++x) {
    double stay = 1.0;
    // A ball in urn 2 (m - x of them) moves down into urn 1 w.p. b each.
    if (x < m) {
      const double up = params.b * static_cast<double>(m - x) / md;
      chain.add_transition(static_cast<std::size_t>(x),
                           static_cast<std::size_t>(x + 1), up);
      stay -= up;
    }
    // A ball in urn 1 (x of them) moves up into urn 2 w.p. a each.
    if (x > 0) {
      const double down = params.a * static_cast<double>(x) / md;
      chain.add_transition(static_cast<std::size_t>(x),
                           static_cast<std::size_t>(x - 1), down);
      stay -= down;
    }
    PPG_CHECK(stay > -1e-12, "projection probabilities exceed 1");
    if (stay > 0.0) {
      chain.add_transition(static_cast<std::size_t>(x),
                           static_cast<std::size_t>(x), stay);
    }
  }
  return chain;
}

std::vector<double> two_urn_projected_stationary(
    const ehrenfest_params& params) {
  PPG_CHECK(params.valid(), "invalid Ehrenfest parameters");
  PPG_CHECK(params.k == 2, "projection defined for k = 2");
  const double p = 1.0 / (1.0 + params.lambda());
  std::vector<double> pi(static_cast<std::size_t>(params.m) + 1);
  for (std::uint64_t x = 0; x <= params.m; ++x) {
    pi[static_cast<std::size_t>(x)] = binomial_pmf(params.m, p, x);
  }
  return pi;
}

std::vector<double> single_ball_marginal(const ehrenfest_params& params,
                                         std::size_t start,
                                         std::uint64_t t) {
  PPG_CHECK(params.valid(), "invalid Ehrenfest parameters");
  PPG_CHECK(start < params.k, "start level out of range");
  // The ball's level conditioned on s selections is the s-step reflecting
  // walk; selections are Binomial(t, 1/m). Sum over s, truncating once the
  // binomial tail is negligible.
  const auto chain = reflecting_walk_chain(params.k, {params.a, params.b});
  std::vector<double> walk(params.k, 0.0);
  walk[start] = 1.0;
  std::vector<double> marginal(params.k, 0.0);
  const double p_select = 1.0 / static_cast<double>(params.m);
  double covered = 0.0;
  const std::uint64_t s_max =
      t;  // upper limit; loop exits early via tail bound
  for (std::uint64_t s = 0; s <= s_max; ++s) {
    const double weight = binomial_pmf(t, p_select, s);
    if (weight > 0.0) {
      for (std::size_t j = 0; j < params.k; ++j) {
        marginal[j] += weight * walk[j];
      }
      covered += weight;
    }
    // Stop once essentially all binomial mass is covered; the remaining
    // contribution is assigned to the current (nearly stationary) walk
    // distribution, keeping the output an exact distribution up to 1e-12.
    if (covered > 1.0 - 1e-12) break;
    // Early exit is also safe once the walk has numerically converged: all
    // later terms contribute the same vector.
    walk = chain.step(walk);
  }
  const double remainder = 1.0 - covered;
  if (remainder > 0.0) {
    for (std::size_t j = 0; j < params.k; ++j) {
      marginal[j] += remainder * walk[j];
    }
  }
  return marginal;
}

}  // namespace ppg
