// Ball-coordinate representation of the (k, a, b, m)-Ehrenfest process
// (proof of Theorem 2.5): the state is a vector in {0, ..., k-1}^m; at each
// step one coordinate is sampled uniformly and incremented w.p. a /
// decremented w.p. b with truncation at the ends. The vector of value counts
// evolves exactly as the count chain of Definition 2.3, but each step is
// O(1) and the representation supports the monotone coupling of
// Appendix A.4.1.
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/ehrenfest/process.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {

class coordinate_walk {
 public:
  /// All coordinates start at `initial_value` (0-indexed urn).
  coordinate_walk(ehrenfest_params params, std::size_t initial_value);

  /// Arbitrary initial assignment; values must lie in {0, ..., k-1} and the
  /// vector must have length m.
  coordinate_walk(ehrenfest_params params,
                  std::vector<std::uint32_t> initial_values);

  void step(rng& gen);
  void run(std::uint64_t steps, rng& gen);

  [[nodiscard]] const std::vector<std::uint32_t>& values() const {
    return values_;
  }
  /// Count of coordinates at each value: the Ehrenfest count vector.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] const ehrenfest_params& params() const { return params_; }

 private:
  ehrenfest_params params_;
  std::vector<std::uint32_t> values_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t time_ = 0;
};

}  // namespace ppg
