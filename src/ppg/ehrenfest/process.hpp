// The (k, a, b, m)-Ehrenfest process (Definition 2.3): a Markov chain on the
// integer simplex ∆^m_k = {x in N^k : sum x = m}. At each step a ball is
// drawn proportionally to urn load; it moves one urn up with probability a,
// one urn down with probability b, and stays otherwise (movement off the
// ends is truncated into a hold).
//
// This file provides the count-vector simulation; coordinate_walk.hpp
// provides the equivalent O(1)-per-step ball-coordinate representation used
// in the paper's coupling proof.
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/util/rng.hpp"

namespace ppg {

/// Parameters of the (k, a, b, m)-Ehrenfest process.
struct ehrenfest_params {
  std::size_t k = 2;     ///< number of urns (dimensions), k >= 2
  double a = 0.25;       ///< up-move probability
  double b = 0.25;       ///< down-move probability
  std::uint64_t m = 10;  ///< number of balls

  [[nodiscard]] bool valid() const {
    return k >= 2 && a > 0.0 && b > 0.0 && a + b <= 1.0 + 1e-12 && m >= 1;
  }

  /// The bias ratio lambda = a/b that parameterizes the stationary law.
  [[nodiscard]] double lambda() const { return a / b; }
};

/// Count-vector simulation of the process. State: counts[j] = number of
/// balls in urn j (0-indexed; urn j here is the paper's urn j+1).
class ehrenfest_process {
 public:
  ehrenfest_process(ehrenfest_params params,
                    std::vector<std::uint64_t> initial_counts);

  /// All m balls in urn 0 (`bottom`) or urn k-1 (`top`): the extreme corner
  /// states used as worst-case starts in mixing measurements.
  [[nodiscard]] static ehrenfest_process at_corner(ehrenfest_params params,
                                                   bool top);

  /// One step of the chain (one potential ball move).
  void step(rng& gen);

  /// Runs `steps` steps.
  void run(std::uint64_t steps, rng& gen);

  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] const ehrenfest_params& params() const { return params_; }

  /// Empirical distribution of counts normalized by m.
  [[nodiscard]] std::vector<double> normalized_counts() const;

 private:
  ehrenfest_params params_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t time_ = 0;
};

}  // namespace ppg
