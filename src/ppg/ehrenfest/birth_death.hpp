// One-dimensional projections of the Ehrenfest process.
//
// For k = 2 the count chain is fully determined by its first coordinate,
// whose transition matrix over {0, ..., m} is the birth-death chain of
// expression (11) in the paper (Appendix A.1). Working in this projected
// space costs O(m) states instead of O(m) simplex points — the same here —
// but crucially the *transition matrix* is tridiagonal, so exact TV-decay
// curves are cheap even for m in the thousands. This enables the
// large-m cutoff measurements of experiment E8.
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/ehrenfest/process.hpp"
#include "ppg/markov/chain.hpp"

namespace ppg {

/// The projected first-coordinate chain of a (2, a, b, m)-Ehrenfest process
/// (expression (11)): from load x of urn 1,
///   x -> x+1 with probability b (m-x)/m,
///   x -> x-1 with probability a x/m,
///   x -> x   otherwise.
[[nodiscard]] finite_chain two_urn_projected_chain(
    const ehrenfest_params& params);

/// Proposition A.1 stationary law of the projection: Binomial(m, p) over
/// the urn-1 load with p = 1/(1 + lambda).
[[nodiscard]] std::vector<double> two_urn_projected_stationary(
    const ehrenfest_params& params);

/// For general k, the *aggregate* load of a prefix of urns {1, ..., j} is
/// not Markov; but the per-ball level marginal is the reflecting walk on
/// {0, ..., k-1} (see reflecting_walk_chain). This helper returns the exact
/// marginal distribution of a single ball's level after t steps of the
/// (k, a, b, m) process, starting from level `start` — each ball's level
/// evolves as an independent lazy walk selected with probability 1/m per
/// step, so the t-step marginal is the reflecting walk evolved under a
/// binomially-thinned clock. Computed exactly by conditioning on the
/// number of times the ball was selected (truncated at negligible tail
/// mass).
[[nodiscard]] std::vector<double> single_ball_marginal(
    const ehrenfest_params& params, std::size_t start, std::uint64_t t);

}  // namespace ppg
