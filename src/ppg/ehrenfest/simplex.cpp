#include "ppg/ehrenfest/simplex.hpp"

#include <numeric>

#include "ppg/util/error.hpp"

namespace ppg {

simplex_index::simplex_index(std::size_t k, std::uint64_t m,
                             std::size_t max_size)
    : k_(k), m_(m) {
  PPG_CHECK(k >= 1, "simplex needs at least one part");
  // Build the composition-count table by the Pascal recurrence
  // N(p, t) = N(p-1, t) + N(p, t-1), N(1, t) = 1.
  table_.assign(k + 1, std::vector<std::uint64_t>(m + 1, 0));
  for (std::uint64_t t = 0; t <= m; ++t) {
    table_[1][t] = 1;
  }
  for (std::size_t p = 2; p <= k; ++p) {
    table_[p][0] = 1;
    for (std::uint64_t t = 1; t <= m; ++t) {
      const std::uint64_t sum = table_[p - 1][t] + table_[p][t - 1];
      PPG_CHECK(sum >= table_[p - 1][t], "composition count overflow");
      table_[p][t] = sum;
    }
  }
  PPG_CHECK(table_[k][m] <= max_size,
            "simplex too large for exact enumeration");
  size_ = static_cast<std::size_t>(table_[k][m]);
}

std::uint64_t simplex_index::compositions(std::size_t parts,
                                          std::uint64_t total) const {
  PPG_CHECK(parts >= 1 && parts <= k_ && total <= m_,
            "compositions query out of table range");
  return table_[parts][total];
}

std::size_t simplex_index::rank(const std::vector<std::uint64_t>& x) const {
  PPG_CHECK(x.size() == k_, "composition length mismatch");
  const std::uint64_t total =
      std::accumulate(x.begin(), x.end(), std::uint64_t{0});
  PPG_CHECK(total == m_, "composition must sum to m");
  // Lexicographic rank: count compositions whose first differing coordinate
  // is smaller.
  std::uint64_t rank = 0;
  std::uint64_t remaining = m_;
  for (std::size_t i = 0; i + 1 < k_; ++i) {
    // Compositions with prefix x_1..x_{i-1} and i-th coordinate v < x_i:
    // the suffix (k - i - 1 parts) holds remaining - v.
    for (std::uint64_t v = 0; v < x[i]; ++v) {
      rank += table_[k_ - i - 1][remaining - v];
    }
    remaining -= x[i];
  }
  return static_cast<std::size_t>(rank);
}

std::vector<std::uint64_t> simplex_index::unrank(std::size_t index) const {
  PPG_CHECK(index < size_, "rank out of range");
  std::vector<std::uint64_t> x(k_, 0);
  std::uint64_t remaining = m_;
  std::uint64_t rest = index;
  for (std::size_t i = 0; i + 1 < k_; ++i) {
    std::uint64_t v = 0;
    while (true) {
      const std::uint64_t block = table_[k_ - i - 1][remaining - v];
      if (rest < block) break;
      rest -= block;
      ++v;
    }
    x[i] = v;
    remaining -= v;
  }
  x[k_ - 1] = remaining;
  return x;
}

std::vector<std::uint64_t> simplex_index::first() const {
  std::vector<std::uint64_t> x(k_, 0);
  x[k_ - 1] = m_;
  return x;
}

bool simplex_index::next(std::vector<std::uint64_t>& x) const {
  PPG_CHECK(x.size() == k_, "composition length mismatch");
  // Lexicographic successor: find the rightmost position before the last
  // coordinate that can be incremented by pulling mass from the tail.
  if (k_ == 1) return false;
  // Find rightmost i < k-1 with some mass strictly to its right.
  std::uint64_t tail = x[k_ - 1];
  for (std::size_t ip1 = k_ - 1; ip1 >= 1; --ip1) {
    const std::size_t i = ip1 - 1;
    if (tail > 0) {
      // Increment x_i, set x_{i+1..k-2} to 0, dump the rest into the tail.
      const std::uint64_t moved = tail - 1;
      x[i] += 1;
      for (std::size_t j = i + 1; j < k_; ++j) {
        x[j] = 0;
      }
      x[k_ - 1] = moved;
      return true;
    }
    tail += x[i];
  }
  return false;
}

}  // namespace ppg
