#include "ppg/ehrenfest/stationary.hpp"

#include "ppg/stats/discrete_sampling.hpp"
#include "ppg/stats/distributions.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

std::vector<double> ehrenfest_stationary_probs(
    const ehrenfest_params& params) {
  PPG_CHECK(params.valid(), "invalid Ehrenfest parameters");
  return geometric_weights(params.k, params.lambda());
}

double ehrenfest_stationary_pmf(const ehrenfest_params& params,
                                const std::vector<std::uint64_t>& x) {
  return multinomial_pmf(params.m, ehrenfest_stationary_probs(params), x);
}

std::vector<double> ehrenfest_stationary_mean(
    const ehrenfest_params& params) {
  return multinomial_mean(params.m, ehrenfest_stationary_probs(params));
}

std::vector<std::uint64_t> sample_ehrenfest_stationary(
    const ehrenfest_params& params, rng& gen) {
  return sample_multinomial(params.m, ehrenfest_stationary_probs(params),
                            gen);
}

}  // namespace ppg
