#include "ppg/ehrenfest/coupling.hpp"

#include "ppg/util/error.hpp"

namespace ppg {

coupling_run simulate_coupling(const ehrenfest_params& params,
                               std::vector<std::uint32_t> x0,
                               std::vector<std::uint32_t> y0,
                               std::uint64_t max_steps, rng& gen) {
  PPG_CHECK(params.valid(), "invalid Ehrenfest parameters");
  PPG_CHECK(x0.size() == params.m && y0.size() == params.m,
            "coordinate vectors must have length m");
  const auto kmax = static_cast<std::uint32_t>(params.k - 1);
  std::uint64_t disagreements = 0;
  for (std::size_t i = 0; i < x0.size(); ++i) {
    PPG_CHECK(x0[i] <= kmax && y0[i] <= kmax, "coordinate out of range");
    if (x0[i] != y0[i]) ++disagreements;
  }

  coupling_run result;
  while (disagreements > 0 && result.coupling_time < max_steps) {
    const std::uint64_t i = gen.next_below(params.m);
    const double u = gen.next_double();
    const bool was_equal = x0[i] == y0[i];
    if (u < params.a) {
      if (x0[i] < kmax) ++x0[i];
      if (y0[i] < kmax) ++y0[i];
    } else if (u < params.a + params.b) {
      if (x0[i] > 0) --x0[i];
      if (y0[i] > 0) --y0[i];
    }
    const bool is_equal = x0[i] == y0[i];
    if (was_equal && !is_equal) {
      ++disagreements;  // cannot happen under truncation, kept as a guard
    } else if (!was_equal && is_equal) {
      --disagreements;
    }
    ++result.coupling_time;
  }
  result.coalesced = disagreements == 0;
  return result;
}

coupling_run simulate_corner_coupling(const ehrenfest_params& params,
                                      std::uint64_t max_steps, rng& gen) {
  std::vector<std::uint32_t> x0(params.m, 0);
  std::vector<std::uint32_t> y0(params.m,
                                static_cast<std::uint32_t>(params.k - 1));
  return simulate_coupling(params, std::move(x0), std::move(y0), max_steps,
                           gen);
}

}  // namespace ppg
