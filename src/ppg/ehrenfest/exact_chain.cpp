#include "ppg/ehrenfest/exact_chain.hpp"

#include "ppg/ehrenfest/stationary.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

finite_chain build_ehrenfest_chain(const ehrenfest_params& params,
                                   const simplex_index& index) {
  PPG_CHECK(params.valid(), "invalid Ehrenfest parameters");
  PPG_CHECK(index.k() == params.k && index.m() == params.m,
            "simplex index does not match parameters");
  finite_chain chain(index.size());
  const auto md = static_cast<double>(params.m);
  auto x = index.first();
  std::size_t from = 0;
  do {
    const std::size_t r = index.rank(x);
    PPG_CHECK(r == from, "enumeration order mismatch");
    double stay = 1.0;
    for (std::size_t j = 0; j + 1 < params.k; ++j) {
      // Up-move j -> j+1 with probability a * x_j / m.
      if (x[j] > 0) {
        const double p = params.a * static_cast<double>(x[j]) / md;
        auto y = x;
        --y[j];
        ++y[j + 1];
        chain.add_transition(from, index.rank(y), p);
        stay -= p;
      }
      // Down-move j+1 -> j with probability b * x_{j+1} / m.
      if (x[j + 1] > 0) {
        const double p = params.b * static_cast<double>(x[j + 1]) / md;
        auto y = x;
        ++y[j];
        --y[j + 1];
        chain.add_transition(from, index.rank(y), p);
        stay -= p;
      }
    }
    PPG_CHECK(stay > -1e-12, "transition probabilities exceed 1");
    if (stay > 0.0) {
      chain.add_transition(from, from, stay);
    }
    ++from;
  } while (index.next(x));
  PPG_CHECK(from == index.size(), "enumeration did not cover the simplex");
  return chain;
}

std::vector<double> exact_stationary_vector(const ehrenfest_params& params,
                                            const simplex_index& index) {
  PPG_CHECK(index.k() == params.k && index.m() == params.m,
            "simplex index does not match parameters");
  std::vector<double> pi(index.size());
  auto x = index.first();
  std::size_t r = 0;
  do {
    pi[r] = ehrenfest_stationary_pmf(params, x);
    ++r;
  } while (index.next(x));
  return pi;
}

corner_states find_corner_states(const simplex_index& index) {
  corner_states corners;
  std::vector<std::uint64_t> bottom(index.k(), 0);
  bottom[0] = index.m();
  std::vector<std::uint64_t> top(index.k(), 0);
  top[index.k() - 1] = index.m();
  corners.bottom = index.rank(bottom);
  corners.top = index.rank(top);
  return corners;
}

}  // namespace ppg
