// Exact transition operator of the (k, a, b, m)-Ehrenfest process over the
// enumerated simplex, for small state spaces: enables exact stationary
// verification (Theorem 2.4), exact TV-decay curves, and measured mixing
// times (Theorem 2.5).
#pragma once

#include <vector>

#include "ppg/ehrenfest/process.hpp"
#include "ppg/ehrenfest/simplex.hpp"
#include "ppg/markov/chain.hpp"

namespace ppg {

/// Builds the full transition matrix of Definition 2.3 over the states
/// ranked by `index` (which must match params.k and params.m).
[[nodiscard]] finite_chain build_ehrenfest_chain(const ehrenfest_params& params,
                                                 const simplex_index& index);

/// The closed-form stationary distribution as a dense vector over the ranked
/// states (multinomial PMF per Theorem 2.4).
[[nodiscard]] std::vector<double> exact_stationary_vector(
    const ehrenfest_params& params, const simplex_index& index);

/// Ranks of the two corner states (m, 0, ..., 0) and (0, ..., 0, m); these
/// are the extreme starts used for mixing-time measurement (the diameter
/// path of Proposition A.9 runs between them).
struct corner_states {
  std::size_t bottom = 0;  ///< all balls in urn 1: (m, 0, ..., 0)
  std::size_t top = 0;     ///< all balls in urn k: (0, ..., 0, m)
};
[[nodiscard]] corner_states find_corner_states(const simplex_index& index);

}  // namespace ppg
