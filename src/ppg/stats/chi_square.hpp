// Chi-square goodness-of-fit testing for validating simulated stationary
// distributions against the paper's closed-form multinomials.
#pragma once

#include <cstdint>
#include <vector>

namespace ppg {

/// Result of a goodness-of-fit test.
struct gof_result {
  double statistic = 0.0;   ///< chi-square statistic
  double dof = 0.0;         ///< degrees of freedom after bucket merging
  double p_value = 1.0;     ///< upper-tail probability under H0
  std::size_t merged_buckets = 0;  ///< buckets after merging sparse cells
};

/// Regularized lower incomplete gamma function P(a, x), computed by series
/// expansion (x < a + 1) or continued fraction (otherwise). Accurate to
/// ~1e-12 for the a, x ranges used by the tests.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Upper-tail probability of a chi-square distribution with `dof` degrees of
/// freedom at `statistic`.
[[nodiscard]] double chi_square_tail(double statistic, double dof);

/// Pearson chi-square goodness-of-fit of observed counts against expected
/// probabilities. Cells whose expected count is below `min_expected` are
/// merged into their neighbor to keep the chi-square approximation valid.
/// `extra_constraints` reduces the degrees of freedom further when the
/// expected distribution was itself fit from the data (0 here: the paper's
/// distributions are fully specified a priori).
[[nodiscard]] gof_result chi_square_gof(
    const std::vector<std::uint64_t>& observed,
    const std::vector<double>& expected_probs, double min_expected = 5.0,
    std::size_t extra_constraints = 0);

}  // namespace ppg
