#include "ppg/stats/distributions.hpp"

#include <cmath>
#include <numeric>

#include "ppg/util/error.hpp"

namespace ppg {

double log_gamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__) || defined(__FreeBSD__)
  int sign = 0;  // discarded: every caller here has Γ(x) > 0
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) {
  PPG_CHECK(k <= n, "binomial coefficient requires k <= n");
  return log_gamma(static_cast<double>(n) + 1.0) -
         log_gamma(static_cast<double>(k) + 1.0) -
         log_gamma(static_cast<double>(n - k) + 1.0);
}

double log_multinomial_coefficient(std::uint64_t m,
                                   const std::vector<std::uint64_t>& x) {
  std::uint64_t sum = 0;
  double log_coeff = log_gamma(static_cast<double>(m) + 1.0);
  for (const auto xi : x) {
    sum += xi;
    log_coeff -= log_gamma(static_cast<double>(xi) + 1.0);
  }
  PPG_CHECK(sum == m, "multinomial counts must sum to m");
  return log_coeff;
}

double binomial_pmf(std::uint64_t n, double p, std::uint64_t k) {
  PPG_CHECK(p >= 0.0 && p <= 1.0, "binomial_pmf requires p in [0, 1]");
  if (k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = log_binomial_coefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double multinomial_pmf(std::uint64_t m, const std::vector<double>& probs,
                       const std::vector<std::uint64_t>& x) {
  PPG_CHECK(probs.size() == x.size(), "probs/counts size mismatch");
  double log_pmf = log_multinomial_coefficient(m, x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] == 0) continue;
    if (probs[i] <= 0.0) return 0.0;
    log_pmf += static_cast<double>(x[i]) * std::log(probs[i]);
  }
  return std::exp(log_pmf);
}

std::vector<double> multinomial_mean(std::uint64_t m,
                                     const std::vector<double>& probs) {
  std::vector<double> mean(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    mean[i] = static_cast<double>(m) * probs[i];
  }
  return mean;
}

double hypergeometric_pmf(std::uint64_t total, std::uint64_t marked,
                          std::uint64_t draws, std::uint64_t x) {
  PPG_CHECK(marked <= total && draws <= total,
            "hypergeometric_pmf requires marked <= total, draws <= total");
  if (x > draws || x > marked) return 0.0;
  if (draws - x > total - marked) return 0.0;
  const double log_pmf = log_binomial_coefficient(marked, x) +
                         log_binomial_coefficient(total - marked, draws - x) -
                         log_binomial_coefficient(total, draws);
  return std::exp(log_pmf);
}

double multivariate_hypergeometric_pmf(
    const std::vector<std::uint64_t>& counts,
    const std::vector<std::uint64_t>& x) {
  PPG_CHECK(counts.size() == x.size(),
            "multivariate_hypergeometric_pmf: census/counts size mismatch");
  std::uint64_t total = 0;
  std::uint64_t draws = 0;
  double log_pmf = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (x[i] > counts[i]) return 0.0;
    total += counts[i];
    draws += x[i];
    log_pmf += log_binomial_coefficient(counts[i], x[i]);
  }
  log_pmf -= log_binomial_coefficient(total, draws);
  return std::exp(log_pmf);
}

std::vector<double> geometric_weights(std::size_t k, double lambda) {
  PPG_CHECK(k >= 1, "geometric_weights needs k >= 1");
  PPG_CHECK(lambda > 0.0, "geometric_weights needs lambda > 0");
  std::vector<double> weights(k);
  // Normalize against the largest power to avoid overflow for large k or
  // extreme lambda.
  double log_lambda = std::log(lambda);
  double max_log = std::max(0.0, static_cast<double>(k - 1) * log_lambda);
  double total = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    weights[j] = std::exp(static_cast<double>(j) * log_lambda - max_log);
    total += weights[j];
  }
  for (auto& w : weights) {
    w /= total;
  }
  return weights;
}

}  // namespace ppg
