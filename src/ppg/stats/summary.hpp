// Streaming summary statistics (Welford) and simple confidence intervals.
#pragma once

#include <cstddef>

namespace ppg {

/// Online mean/variance accumulator using Welford's algorithm; numerically
/// stable for long simulation streams.
class running_summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; requires at least two observations.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double std_error() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Half-width of a normal-approximation confidence interval at the given
  /// z-score (default 1.96 ~ 95%).
  [[nodiscard]] double ci_half_width(double z = 1.96) const;

  /// Merges another summary into this one (parallel reduction support).
  void merge(const running_summary& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ppg
