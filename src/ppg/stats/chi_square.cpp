#include "ppg/stats/chi_square.hpp"

#include <cmath>
#include <limits>

#include "ppg/stats/distributions.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

// Series representation of P(a, x); converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 1000; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Continued-fraction representation of Q(a, x) = 1 - P(a, x) (Lentz's
// algorithm); converges quickly for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  constexpr double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  PPG_CHECK(a > 0.0, "regularized_gamma_p requires a > 0");
  PPG_CHECK(x >= 0.0, "regularized_gamma_p requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) {
    return gamma_p_series(a, x);
  }
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double chi_square_tail(double statistic, double dof) {
  PPG_CHECK(dof > 0.0, "chi_square_tail requires positive dof");
  if (statistic <= 0.0) return 1.0;
  return 1.0 - regularized_gamma_p(dof / 2.0, statistic / 2.0);
}

gof_result chi_square_gof(const std::vector<std::uint64_t>& observed,
                          const std::vector<double>& expected_probs,
                          double min_expected,
                          std::size_t extra_constraints) {
  PPG_CHECK(observed.size() == expected_probs.size(),
            "observed/expected size mismatch");
  PPG_CHECK(observed.size() >= 2, "need at least two cells");
  std::uint64_t n = 0;
  for (const auto count : observed) n += count;
  PPG_CHECK(n > 0, "chi-square test on empty sample");

  // Merge adjacent sparse cells (expected count below threshold) left to
  // right; natural for our ordered supports (generosity levels, urn loads).
  std::vector<double> merged_observed;
  std::vector<double> merged_expected;
  double acc_obs = 0.0;
  double acc_exp = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    acc_obs += static_cast<double>(observed[i]);
    acc_exp += expected_probs[i] * static_cast<double>(n);
    if (acc_exp >= min_expected) {
      merged_observed.push_back(acc_obs);
      merged_expected.push_back(acc_exp);
      acc_obs = 0.0;
      acc_exp = 0.0;
    }
  }
  if (acc_exp > 0.0 || acc_obs > 0.0) {
    if (merged_expected.empty()) {
      merged_observed.push_back(acc_obs);
      merged_expected.push_back(acc_exp);
    } else {
      merged_observed.back() += acc_obs;
      merged_expected.back() += acc_exp;
    }
  }

  gof_result result;
  result.merged_buckets = merged_expected.size();
  if (merged_expected.size() < 2) {
    // Everything collapsed into one cell: the test is vacuous, report a
    // non-rejection.
    result.dof = 1.0;
    result.p_value = 1.0;
    return result;
  }
  for (std::size_t i = 0; i < merged_expected.size(); ++i) {
    const double diff = merged_observed[i] - merged_expected[i];
    if (merged_expected[i] > 0.0) {
      result.statistic += diff * diff / merged_expected[i];
    } else if (merged_observed[i] > 0.0) {
      result.statistic = std::numeric_limits<double>::infinity();
    }
  }
  result.dof = static_cast<double>(merged_expected.size() - 1 -
                                   extra_constraints);
  PPG_CHECK(result.dof > 0.0, "non-positive degrees of freedom");
  result.p_value = chi_square_tail(result.statistic, result.dof);
  return result;
}

}  // namespace ppg
