// Comparisons between empirical and theoretical discrete distributions.
#pragma once

#include <vector>

namespace ppg {

/// Total variation distance between two distributions on the same finite
/// support: (1/2) * sum_i |p_i - q_i|. Inputs must have equal length; they
/// are treated as given (not re-normalized).
[[nodiscard]] double total_variation(const std::vector<double>& p,
                                     const std::vector<double>& q);

/// L-infinity distance max_i |p_i - q_i|.
[[nodiscard]] double linf_distance(const std::vector<double>& p,
                                   const std::vector<double>& q);

/// Checks that `p` is a probability vector: entries >= -tol and sums to 1
/// within `tol`.
[[nodiscard]] bool is_distribution(const std::vector<double>& p,
                                   double tol = 1e-9);

/// Mean of a distribution over values: sum_i p_i * values_i.
[[nodiscard]] double distribution_mean(const std::vector<double>& p,
                                       const std::vector<double>& values);

/// Variance of a distribution over values.
[[nodiscard]] double distribution_variance(const std::vector<double>& p,
                                           const std::vector<double>& values);

}  // namespace ppg
