#include "ppg/stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "ppg/util/error.hpp"

namespace ppg {

void empirical_cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void empirical_cdf::merge(const empirical_cdf& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void empirical_cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double empirical_cdf::cdf(double x) const {
  PPG_CHECK(!samples_.empty(), "cdf of an empty sample set");
  ensure_sorted();
  const auto above = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(above - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double empirical_cdf::quantile(double q) const {
  PPG_CHECK(!samples_.empty(), "quantile of an empty sample set");
  PPG_CHECK(q >= 0.0 && q <= 1.0, "quantile level must be in [0, 1]");
  ensure_sorted();
  if (q == 0.0) return samples_.front();
  const auto n = static_cast<double>(samples_.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q * n));
  return samples_[std::min(rank, samples_.size()) - 1];
}

double empirical_cdf::min() const {
  PPG_CHECK(!samples_.empty(), "min of an empty sample set");
  ensure_sorted();
  return samples_.front();
}

double empirical_cdf::max() const {
  PPG_CHECK(!samples_.empty(), "max of an empty sample set");
  ensure_sorted();
  return samples_.back();
}

const std::vector<double>& empirical_cdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

histogram empirical_cdf::binned(std::size_t bins, double lo, double hi) const {
  PPG_CHECK(bins > 0, "binned needs at least one bucket");
  PPG_CHECK(lo < hi, "binned requires lo < hi");
  histogram h(bins);
  const double width = (hi - lo) / static_cast<double>(bins);
  const double top = static_cast<double>(bins - 1);
  for (const double x : samples_) {
    PPG_CHECK(!std::isnan(x), "binned requires non-NaN samples");
    // Clamp before the integer cast: a float-to-integer conversion of an
    // out-of-range value is undefined behavior.
    const double raw = std::floor((x - lo) / width);
    const double clamped = std::max(0.0, std::min(raw, top));
    h.add(static_cast<std::size_t>(clamped));
  }
  return h;
}

}  // namespace ppg
