// Closed-form discrete distributions used throughout the paper: binomial,
// multinomial, and hypergeometric PMFs (Theorem 2.4's stationary laws and
// the multibatch engine's aggregation laws). The matching samplers live in
// stats/discrete_sampling.hpp.
#pragma once

#include <cstdint>
#include <vector>

namespace ppg {

/// Thread-safe log Γ(x). std::lgamma is NOT reentrant on glibc (it writes
/// the process-global `signgam`), which is a data race once samplers run on
/// shard workers; every lgamma in the library goes through this wrapper,
/// which uses the reentrant lgamma_r where the platform provides it.
[[nodiscard]] double log_gamma(double x);

/// log of the binomial coefficient C(n, k).
[[nodiscard]] double log_binomial_coefficient(std::uint64_t n,
                                              std::uint64_t k);

/// log of the multinomial coefficient m! / (x_1! ... x_k!); the x_i must sum
/// to m (checked).
[[nodiscard]] double log_multinomial_coefficient(
    std::uint64_t m, const std::vector<std::uint64_t>& x);

/// Binomial(n, p) PMF at k.
[[nodiscard]] double binomial_pmf(std::uint64_t n, double p, std::uint64_t k);

/// Multinomial(m, probs) PMF at the count vector x (x must sum to m).
[[nodiscard]] double multinomial_pmf(std::uint64_t m,
                                     const std::vector<double>& probs,
                                     const std::vector<std::uint64_t>& x);

/// Mean vector of Multinomial(m, probs): m * probs.
[[nodiscard]] std::vector<double> multinomial_mean(
    std::uint64_t m, const std::vector<double>& probs);

/// Hypergeometric(total, marked, draws) PMF at x: the probability that a
/// uniform sample of `draws` items, without replacement, from `total` items
/// of which `marked` are marked contains exactly x marked items.
[[nodiscard]] double hypergeometric_pmf(std::uint64_t total,
                                        std::uint64_t marked,
                                        std::uint64_t draws, std::uint64_t x);

/// Multivariate hypergeometric PMF: the probability that a uniform sample of
/// sum(x) items, without replacement, from a population with `counts[i]`
/// items of category i contains exactly x[i] of each category.
[[nodiscard]] double multivariate_hypergeometric_pmf(
    const std::vector<std::uint64_t>& counts,
    const std::vector<std::uint64_t>& x);

/// The geometric-weight distribution p_j ∝ lambda^{j-1} on {1, ..., k}
/// (0-indexed vector of length k). This is the per-coordinate marginal of the
/// paper's stationary multinomials (Theorems 2.4 and 2.7).
[[nodiscard]] std::vector<double> geometric_weights(std::size_t k,
                                                    double lambda);

}  // namespace ppg
