// Closed-form discrete distributions used throughout the paper: binomial and
// multinomial PMFs (Theorem 2.4's stationary laws), plus samplers.
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/util/rng.hpp"

namespace ppg {

/// log of the binomial coefficient C(n, k).
[[nodiscard]] double log_binomial_coefficient(std::uint64_t n,
                                              std::uint64_t k);

/// log of the multinomial coefficient m! / (x_1! ... x_k!); the x_i must sum
/// to m (checked).
[[nodiscard]] double log_multinomial_coefficient(
    std::uint64_t m, const std::vector<std::uint64_t>& x);

/// Binomial(n, p) PMF at k.
[[nodiscard]] double binomial_pmf(std::uint64_t n, double p, std::uint64_t k);

/// Multinomial(m, probs) PMF at the count vector x (x must sum to m).
[[nodiscard]] double multinomial_pmf(std::uint64_t m,
                                     const std::vector<double>& probs,
                                     const std::vector<std::uint64_t>& x);

/// Mean vector of Multinomial(m, probs): m * probs.
[[nodiscard]] std::vector<double> multinomial_mean(
    std::uint64_t m, const std::vector<double>& probs);

/// Draws a sample count vector from Multinomial(m, probs) by sequential
/// conditional binomials.
[[nodiscard]] std::vector<std::uint64_t> sample_multinomial(
    std::uint64_t m, const std::vector<double>& probs, rng& gen);

/// Draws from Binomial(n, p) (inversion for small n*p, otherwise sum of
/// Bernoullis; n in our use cases is at most a few thousand).
[[nodiscard]] std::uint64_t sample_binomial(std::uint64_t n, double p,
                                            rng& gen);

/// Draws an index from a finite categorical distribution (probs need not be
/// normalized; they must be non-negative with a positive sum).
[[nodiscard]] std::size_t sample_categorical(const std::vector<double>& probs,
                                             rng& gen);

/// The geometric-weight distribution p_j ∝ lambda^{j-1} on {1, ..., k}
/// (0-indexed vector of length k). This is the per-coordinate marginal of the
/// paper's stationary multinomials (Theorems 2.4 and 2.7).
[[nodiscard]] std::vector<double> geometric_weights(std::size_t k,
                                                    double lambda);

}  // namespace ppg
