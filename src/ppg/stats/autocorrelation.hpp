// Autocorrelation diagnostics for simulation time series: the integrated
// autocorrelation time (IAT) and effective sample size. Census samples from
// a single chain trajectory are correlated; the benches use the IAT to
// choose decorrelation gaps and to report honest error bars.
#pragma once

#include <cstddef>
#include <vector>

namespace ppg {

/// Sample autocorrelation of `series` at the given lag (biased normalization
/// by the series length, the standard spectral convention).
[[nodiscard]] double autocorrelation(const std::vector<double>& series,
                                     std::size_t lag);

/// Integrated autocorrelation time with Geyer-style adaptive windowing:
///   tau = 1 + 2 sum_{l=1}^{L} rho(l),
/// where the sum stops at the first lag whose autocorrelation drops below
/// `cutoff` (default 0.05) or at max_lag. For i.i.d. data tau ~ 1.
[[nodiscard]] double integrated_autocorrelation_time(
    const std::vector<double>& series, std::size_t max_lag = 10'000,
    double cutoff = 0.05);

/// Effective number of independent samples: n / tau.
[[nodiscard]] double effective_sample_size(const std::vector<double>& series,
                                           std::size_t max_lag = 10'000);

}  // namespace ppg
