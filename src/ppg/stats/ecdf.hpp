// Empirical distribution of a scalar sample: exact quantiles, CDF
// evaluation, and fixed-range binning. Used by the batch engine to summarize
// per-replica scalars (convergence times, payoffs) beyond mean/CI.
#pragma once

#include <cstddef>
#include <vector>

#include "ppg/stats/histogram.hpp"

namespace ppg {

/// Collects raw samples; order of insertion does not affect any query
/// (samples are sorted lazily before the first query after an insertion),
/// so merging is associative and commutative and parallel reductions are
/// bit-stable. add() is amortized O(1); the first query after a batch of
/// insertions pays one O(n log n) sort.
class empirical_cdf {
 public:
  void add(double x);

  /// Merges another sample set into this one.
  void merge(const empirical_cdf& other);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// F(x) = fraction of samples <= x. Requires at least one sample.
  [[nodiscard]] double cdf(double x) const;

  /// The q-quantile, q in [0, 1], by the inverse-CDF (lower) convention:
  /// the smallest sample s with F(s) >= q. Requires at least one sample.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Samples in ascending order.
  [[nodiscard]] const std::vector<double>& sorted_samples() const;

  /// Bins the samples into `bins` equal-width buckets over [lo, hi]; samples
  /// outside the range are clamped to the edge buckets. Requires lo < hi.
  [[nodiscard]] histogram binned(std::size_t bins, double lo, double hi) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace ppg
