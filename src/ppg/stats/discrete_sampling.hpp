// Exact samplers for the discrete distributions the engines aggregate with:
// binomial, hypergeometric, multivariate hypergeometric, multinomial, and
// categorical draws, all built on the deterministic ppg::rng. Closed-form
// PMFs live in stats/distributions.hpp; this layer is the sampling side.
//
// Every sampler is exact in law (up to double rounding of the PMF
// recurrences) over its whole parameter range, and numerically robust at the
// population sizes the multibatch engine needs (n up to ~3e9, draws up to
// ~n): small expected counts use geometric-skip or sequential inversion,
// large ones switch to inversion from the mode, whose expected cost is
// O(standard deviation) rather than O(mean). See DESIGN.md §8.
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/util/rng.hpp"

namespace ppg {

/// Draws from Binomial(n, p). Exact for every n: small n*min(p,1-p) counts
/// successes by geometric skips (expected O(n*p + 1) work), larger regimes
/// invert the CDF outward from the mode (expected O(sqrt(n*p*(1-p))) work),
/// so huge-n draws never walk the whole support.
[[nodiscard]] std::uint64_t sample_binomial(std::uint64_t n, double p,
                                            rng& gen);

/// Draws the number of marked items in a uniform sample of `draws` items,
/// without replacement, from a population of `total` items of which `marked`
/// are marked (Hypergeometric(total, marked, draws)). Requires
/// marked <= total and draws <= total. Inversion from the mode after
/// reducing by the marked/unmarked and sampled/unsampled symmetries.
[[nodiscard]] std::uint64_t sample_hypergeometric(std::uint64_t total,
                                                  std::uint64_t marked,
                                                  std::uint64_t draws,
                                                  rng& gen);

/// Draws the per-category counts of a uniform sample of `draws` items,
/// without replacement, from a population with `counts[i]` items of category
/// i (multivariate hypergeometric), by sequential conditional univariate
/// hypergeometric draws. Requires draws <= sum(counts).
[[nodiscard]] std::vector<std::uint64_t> sample_multivariate_hypergeometric(
    const std::vector<std::uint64_t>& counts, std::uint64_t draws, rng& gen);

/// Allocation-free form of the multivariate hypergeometric draw over a raw
/// census slice (the ensemble engine's SoA planes and the sharded
/// multibatch's per-shard splits): writes the per-category counts into
/// `out[0..size)`. Draw-for-draw identical to the vector overload.
void sample_multivariate_hypergeometric(const std::uint64_t* counts,
                                        std::size_t size, std::uint64_t draws,
                                        rng& gen, std::uint64_t* out);

/// Draws a sample count vector from Multinomial(m, probs) by sequential
/// conditional binomials (probs must be non-negative and sum to 1 up to
/// rounding; the last category absorbs the remainder).
[[nodiscard]] std::vector<std::uint64_t> sample_multinomial(
    std::uint64_t m, const std::vector<double>& probs, rng& gen);

/// Allocation-free multinomial over a raw probability slice; writes the
/// category counts into `out[0..size)`. Draw-for-draw identical to the
/// vector overload.
void sample_multinomial(std::uint64_t m, const double* probs,
                        std::size_t size, rng& gen, std::uint64_t* out);

/// The exact "birthday" law of the multibatch engine's aggregated rounds:
/// the number J of collision-free ordered agent pairs drawn, without
/// replacement, from a pool of n agents before the first pair that would
/// re-use an agent, P(J > j) = prod_{i<j} (n-2i)(n-2i-1) / (n(n-1)).
///
/// The log-survival curve is tabulated once per population size by the
/// incremental recurrence log S(j+1) = log S(j) + log(n-2j) + log(n-2j-1)
/// - log(n(n-1)) — O(sqrt(n)) entries, because the curve falls below the
/// finest level a 53-bit uniform can resolve after ~sqrt(19 n) pairs — so
/// each draw is one uniform plus a binary search with no lgamma calls
/// (previously ~2 lgammas per probe, the dominant per-round cost on dense
/// low-q games). The table depends only on n: one sampler is shared across
/// every replica of an ensemble and across all rounds of a trajectory.
class collision_run_sampler {
 public:
  explicit collision_run_sampler(std::uint64_t n);

  [[nodiscard]] std::uint64_t population_size() const { return n_; }

  /// Draws J by inversion: max{j : S(j) >= U} for one positive uniform U,
  /// clamped to >= 1 (S(1) = 1 exactly — the first pair of a round cannot
  /// collide — so the clamp only guards log-domain rounding).
  [[nodiscard]] std::uint64_t sample(rng& gen) const;

  /// Tabulated log P(J > j); exposed for the law tests.
  [[nodiscard]] const std::vector<double>& log_survival() const {
    return log_survival_;
  }

 private:
  std::uint64_t n_;
  std::vector<double> log_survival_;  ///< index j = 0..j_max
};

/// Draws an index from a finite categorical distribution (probs need not be
/// normalized; they must be non-negative with a positive sum).
[[nodiscard]] std::size_t sample_categorical(const std::vector<double>& probs,
                                             rng& gen);

}  // namespace ppg
