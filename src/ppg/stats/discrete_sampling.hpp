// Exact samplers for the discrete distributions the engines aggregate with:
// binomial, hypergeometric, multivariate hypergeometric, multinomial, and
// categorical draws, all built on the deterministic ppg::rng. Closed-form
// PMFs live in stats/distributions.hpp; this layer is the sampling side.
//
// Every sampler is exact in law (up to double rounding of the PMF
// recurrences) over its whole parameter range, and numerically robust at the
// population sizes the multibatch engine needs (n up to ~3e9, draws up to
// ~n): small expected counts use geometric-skip or sequential inversion,
// large ones switch to inversion from the mode, whose expected cost is
// O(standard deviation) rather than O(mean). See DESIGN.md §8.
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/util/rng.hpp"

namespace ppg {

/// Draws from Binomial(n, p). Exact for every n: small n*min(p,1-p) counts
/// successes by geometric skips (expected O(n*p + 1) work), larger regimes
/// invert the CDF outward from the mode (expected O(sqrt(n*p*(1-p))) work),
/// so huge-n draws never walk the whole support.
[[nodiscard]] std::uint64_t sample_binomial(std::uint64_t n, double p,
                                            rng& gen);

/// Draws the number of marked items in a uniform sample of `draws` items,
/// without replacement, from a population of `total` items of which `marked`
/// are marked (Hypergeometric(total, marked, draws)). Requires
/// marked <= total and draws <= total. Inversion from the mode after
/// reducing by the marked/unmarked and sampled/unsampled symmetries.
[[nodiscard]] std::uint64_t sample_hypergeometric(std::uint64_t total,
                                                  std::uint64_t marked,
                                                  std::uint64_t draws,
                                                  rng& gen);

/// Draws the per-category counts of a uniform sample of `draws` items,
/// without replacement, from a population with `counts[i]` items of category
/// i (multivariate hypergeometric), by sequential conditional univariate
/// hypergeometric draws. Requires draws <= sum(counts).
[[nodiscard]] std::vector<std::uint64_t> sample_multivariate_hypergeometric(
    const std::vector<std::uint64_t>& counts, std::uint64_t draws, rng& gen);

/// Draws a sample count vector from Multinomial(m, probs) by sequential
/// conditional binomials (probs must be non-negative and sum to 1 up to
/// rounding; the last category absorbs the remainder).
[[nodiscard]] std::vector<std::uint64_t> sample_multinomial(
    std::uint64_t m, const std::vector<double>& probs, rng& gen);

/// Draws an index from a finite categorical distribution (probs need not be
/// normalized; they must be non-negative with a positive sum).
[[nodiscard]] std::size_t sample_categorical(const std::vector<double>& probs,
                                             rng& gen);

}  // namespace ppg
