#include "ppg/stats/empirical.hpp"

#include <cmath>

#include "ppg/util/error.hpp"

namespace ppg {

double total_variation(const std::vector<double>& p,
                       const std::vector<double>& q) {
  PPG_CHECK(p.size() == q.size(), "TV distance needs equal supports");
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    sum += std::abs(p[i] - q[i]);
  }
  return 0.5 * sum;
}

double linf_distance(const std::vector<double>& p,
                     const std::vector<double>& q) {
  PPG_CHECK(p.size() == q.size(), "Linf distance needs equal supports");
  double worst = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    worst = std::max(worst, std::abs(p[i] - q[i]));
  }
  return worst;
}

bool is_distribution(const std::vector<double>& p, double tol) {
  double sum = 0.0;
  for (const double x : p) {
    if (x < -tol) return false;
    sum += x;
  }
  return std::abs(sum - 1.0) <= tol;
}

double distribution_mean(const std::vector<double>& p,
                         const std::vector<double>& values) {
  PPG_CHECK(p.size() == values.size(), "mean needs matching supports");
  double mean = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    mean += p[i] * values[i];
  }
  return mean;
}

double distribution_variance(const std::vector<double>& p,
                             const std::vector<double>& values) {
  const double mean = distribution_mean(p, values);
  double second = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    second += p[i] * values[i] * values[i];
  }
  return second - mean * mean;
}

}  // namespace ppg
