// Integer-bucketed histogram over a fixed index range, used to accumulate
// occupation counts of discrete chain states (e.g. generosity levels).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppg {

/// Counts occurrences of integer categories in [0, size).
class histogram {
 public:
  explicit histogram(std::size_t size);

  void add(std::size_t index, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t size() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t index) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Empirical probability of each category; total() must be positive.
  [[nodiscard]] std::vector<double> normalized() const;

  /// Renders a compact ASCII bar chart (for examples); `width` is the length
  /// of the longest bar.
  [[nodiscard]] std::string ascii_bars(std::size_t width = 40) const;

  /// Adds another histogram's counts into this one (parallel reduction
  /// support); sizes must match. Associative and commutative.
  void merge(const histogram& other);

  void clear();

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ppg
