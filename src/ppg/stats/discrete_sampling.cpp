#include "ppg/stats/discrete_sampling.hpp"

#include <algorithm>
#include <cmath>

#include "ppg/stats/distributions.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

/// Inverts a unimodal PMF outward from its mode: accumulates probability at
/// the mode, then alternately one cell up and one cell down, until the
/// uniform draw is covered. `ratio_up(k)` is pmf(k+1)/pmf(k) and
/// `ratio_down(k)` is pmf(k-1)/pmf(k); expected work is O(standard
/// deviation) because the mass within a few sigma of the mode is covered
/// first. `lo_min`/`hi_max` bound the support.
template <typename RatioUp, typename RatioDown>
std::uint64_t invert_from_mode(std::uint64_t mode, double mode_pmf,
                               std::uint64_t lo_min, std::uint64_t hi_max,
                               RatioUp ratio_up, RatioDown ratio_down,
                               rng& gen) {
  const double u = gen.next_double();
  double acc = mode_pmf;
  if (u < acc) return mode;
  std::uint64_t lo = mode;
  std::uint64_t hi = mode;
  double pmf_lo = mode_pmf;
  double pmf_hi = mode_pmf;
  while (lo > lo_min || hi < hi_max) {
    if (hi < hi_max) {
      pmf_hi *= ratio_up(hi);
      ++hi;
      acc += pmf_hi;
      if (u < acc) return hi;
    }
    if (lo > lo_min) {
      pmf_lo *= ratio_down(lo);
      --lo;
      acc += pmf_lo;
      if (u < acc) return lo;
    }
  }
  // Floating-point shortfall: the support sums to 1 up to rounding, so u
  // landed in the ~1e-15 residual; attribute it to the mode.
  return mode;
}

/// Binomial(n, p) by counting successes through geometric skips between
/// them; exact, with expected work O(n*p + 1). Requires p in (0, 1).
std::uint64_t binomial_by_skips(std::uint64_t n, double p, rng& gen) {
  std::uint64_t successes = 0;
  std::uint64_t position = 0;
  while (true) {
    position += gen.next_geometric(p) + 1;
    if (position > n) break;
    ++successes;
  }
  return successes;
}

/// Hypergeometric core: requires 2*marked <= total and 2*draws <= total
/// (callers reduce by symmetry first), so the support is [0, min(m, K)].
std::uint64_t hypergeometric_core(std::uint64_t total, std::uint64_t marked,
                                  std::uint64_t draws, rng& gen) {
  if (marked == 0 || draws == 0) return 0;
  if (draws <= 8) {
    // Sequential sampling without replacement, in exact integer arithmetic:
    // draw i is marked with probability (marked - x) / (total - i).
    std::uint64_t x = 0;
    for (std::uint64_t i = 0; i < draws; ++i) {
      if (gen.next_below(total - i) < marked - x) ++x;
    }
    return x;
  }
  const double nf = static_cast<double>(total);
  const double kf = static_cast<double>(marked);
  const double mf = static_cast<double>(draws);
  // Any start index with a correctly computed pmf keeps the inversion
  // exact, so computing the mode in doubles is safe against overflow.
  const std::uint64_t hi = std::min(draws, marked);
  const double approx_mode = (mf + 1.0) * (kf + 1.0) / (nf + 2.0);
  const std::uint64_t mode =
      std::min(hi, static_cast<std::uint64_t>(approx_mode));
  const double log_mode_pmf =
      log_binomial_coefficient(marked, mode) +
      log_binomial_coefficient(total - marked, draws - mode) -
      log_binomial_coefficient(total, draws);
  const auto ratio_up = [&](std::uint64_t x) {
    const double xf = static_cast<double>(x);
    return (kf - xf) * (mf - xf) / ((xf + 1.0) * (nf - kf - mf + xf + 1.0));
  };
  const auto ratio_down = [&](std::uint64_t x) {
    const double xf = static_cast<double>(x);
    return xf * (nf - kf - mf + xf) / ((kf - xf + 1.0) * (mf - xf + 1.0));
  };
  return invert_from_mode(mode, std::exp(log_mode_pmf), 0, hi, ratio_up,
                          ratio_down, gen);
}

}  // namespace

std::uint64_t sample_binomial(std::uint64_t n, double p, rng& gen) {
  PPG_CHECK(p >= 0.0 && p <= 1.0, "sample_binomial requires p in [0, 1]");
  if (p == 0.0 || n == 0) return 0;
  if (p == 1.0) return n;
  // Work with q = min(p, 1-p): the skip path costs O(n*q), the
  // mode-inversion path O(sqrt(n*q)) plus a few lgammas — cross over once
  // the expected count outgrows the fixed cost.
  const bool flipped = p > 0.5;
  const double q = flipped ? 1.0 - p : p;
  const double expected = static_cast<double>(n) * q;
  std::uint64_t successes;
  if (expected <= 32.0) {
    successes = binomial_by_skips(n, q, gen);
  } else {
    const double nf = static_cast<double>(n);
    const std::uint64_t mode =
        std::min(n, static_cast<std::uint64_t>((nf + 1.0) * q));
    const double log_mode_pmf =
        log_binomial_coefficient(n, mode) +
        static_cast<double>(mode) * std::log(q) +
        static_cast<double>(n - mode) * std::log1p(-q);
    const double odds = q / (1.0 - q);
    const auto ratio_up = [&](std::uint64_t k) {
      const double kf = static_cast<double>(k);
      return (nf - kf) / (kf + 1.0) * odds;
    };
    const auto ratio_down = [&](std::uint64_t k) {
      const double kf = static_cast<double>(k);
      return kf / (nf - kf + 1.0) / odds;
    };
    successes = invert_from_mode(mode, std::exp(log_mode_pmf), 0, n,
                                 ratio_up, ratio_down, gen);
  }
  return flipped ? n - successes : successes;
}

std::uint64_t sample_hypergeometric(std::uint64_t total, std::uint64_t marked,
                                    std::uint64_t draws, rng& gen) {
  PPG_CHECK(marked <= total && draws <= total,
            "sample_hypergeometric requires marked <= total, draws <= total");
  if (total == 0) return 0;
  // Reduce to the small-marked, small-draws quadrant: flipping which class
  // is "marked" maps X to draws - X, and sampling the complement of the
  // drawn set maps X to marked - X.
  std::uint64_t marked2 = marked;
  std::uint64_t draws2 = draws;
  const bool flip_marked = marked2 > total - marked2;
  if (flip_marked) marked2 = total - marked2;
  const bool flip_draws = draws2 > total - draws2;
  if (flip_draws) draws2 = total - draws2;
  std::uint64_t x = hypergeometric_core(total, marked2, draws2, gen);
  if (flip_draws) x = marked2 - x;
  if (flip_marked) x = draws - x;
  return x;
}

void sample_multivariate_hypergeometric(const std::uint64_t* counts,
                                        std::size_t size, std::uint64_t draws,
                                        rng& gen, std::uint64_t* out) {
  PPG_CHECK(size > 0,
            "sample_multivariate_hypergeometric needs a non-empty census");
  std::uint64_t remaining_population = 0;
  for (std::size_t i = 0; i < size; ++i) remaining_population += counts[i];
  PPG_CHECK(draws <= remaining_population,
            "sample_multivariate_hypergeometric: more draws than items");
  for (std::size_t i = 0; i < size; ++i) out[i] = 0;
  std::uint64_t remaining_draws = draws;
  for (std::size_t i = 0; i + 1 < size && remaining_draws > 0; ++i) {
    const std::uint64_t x = sample_hypergeometric(
        remaining_population, counts[i], remaining_draws, gen);
    out[i] = x;
    remaining_draws -= x;
    remaining_population -= counts[i];
  }
  out[size - 1] += remaining_draws;
}

std::vector<std::uint64_t> sample_multivariate_hypergeometric(
    const std::vector<std::uint64_t>& counts, std::uint64_t draws, rng& gen) {
  std::vector<std::uint64_t> out(counts.size(), 0);
  sample_multivariate_hypergeometric(counts.data(), counts.size(), draws, gen,
                                     out.data());
  return out;
}

void sample_multinomial(std::uint64_t m, const double* probs,
                        std::size_t size, rng& gen, std::uint64_t* out) {
  PPG_CHECK(size > 0, "sample_multinomial needs a non-empty support");
  for (std::size_t i = 0; i < size; ++i) out[i] = 0;
  double remaining_prob = 1.0;
  std::uint64_t remaining = m;
  for (std::size_t i = 0; i + 1 < size && remaining > 0; ++i) {
    const double conditional =
        remaining_prob <= 0.0 ? 0.0 : probs[i] / remaining_prob;
    const std::uint64_t draw =
        sample_binomial(remaining, std::min(1.0, std::max(0.0, conditional)),
                        gen);
    out[i] = draw;
    remaining -= draw;
    remaining_prob -= probs[i];
  }
  out[size - 1] += remaining;
}

std::vector<std::uint64_t> sample_multinomial(std::uint64_t m,
                                              const std::vector<double>& probs,
                                              rng& gen) {
  std::vector<std::uint64_t> counts(probs.size(), 0);
  sample_multinomial(m, probs.data(), probs.size(), gen, counts.data());
  return counts;
}

collision_run_sampler::collision_run_sampler(std::uint64_t n) : n_(n) {
  PPG_CHECK(n >= 2, "the birthday law needs at least two agents");
  // Tabulate until the survival falls below every level a positive
  // next_double() can produce: the smallest positive 53-bit uniform is
  // 2^-53, log = -36.74, so entries below -38 are unreachable by inversion.
  constexpr double log_cutoff = -38.0;
  const double log_pairs = std::log(static_cast<double>(n)) +
                           std::log(static_cast<double>(n - 1));
  const std::uint64_t support_max = n / 2;
  log_survival_.reserve(static_cast<std::size_t>(std::min<double>(
      static_cast<double>(support_max) + 1.0,
      std::sqrt(19.5 * static_cast<double>(n)) + 16.0)));
  double ls = 0.0;
  log_survival_.push_back(ls);
  for (std::uint64_t j = 0; j < support_max; ++j) {
    ls += std::log(static_cast<double>(n - 2 * j)) +
          std::log(static_cast<double>(n - 2 * j - 1)) - log_pairs;
    log_survival_.push_back(ls);
    if (ls < log_cutoff) break;
  }
}

std::uint64_t collision_run_sampler::sample(rng& gen) const {
  double u = gen.next_double();
  while (u <= 0.0) u = gen.next_double();
  const double log_u = std::log(u);
  // Largest tabulated j with log S(j) >= log u. Entry 0 is log 1 = 0 >
  // log u, and the table's tail is either below every reachable log u or
  // the end of the support (the pool holds at most n/2 disjoint pairs).
  std::size_t lo = 0;
  std::size_t hi = log_survival_.size() - 1;
  if (log_survival_[hi] >= log_u) {
    return std::max<std::uint64_t>(hi, 1);
  }
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (log_survival_[mid] >= log_u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::max<std::uint64_t>(lo, 1);
}

std::size_t sample_categorical(const std::vector<double>& probs, rng& gen) {
  PPG_CHECK(!probs.empty(), "sample_categorical needs a non-empty support");
  double total = 0.0;
  for (const double p : probs) {
    PPG_CHECK(p >= 0.0, "categorical weights must be non-negative");
    total += p;
  }
  PPG_CHECK(total > 0.0, "categorical weights must have positive sum");
  double u = gen.next_double() * total;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    u -= probs[i];
    if (u < 0.0) return i;
  }
  return probs.size() - 1;  // guard against accumulated rounding
}

}  // namespace ppg
