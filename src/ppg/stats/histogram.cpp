#include "ppg/stats/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "ppg/util/error.hpp"

namespace ppg {

histogram::histogram(std::size_t size) : counts_(size, 0) {
  PPG_CHECK(size > 0, "histogram needs at least one bucket");
}

void histogram::add(std::size_t index, std::uint64_t weight) {
  PPG_CHECK(index < counts_.size(), "histogram index out of range");
  counts_[index] += weight;
  total_ += weight;
}

std::uint64_t histogram::count(std::size_t index) const {
  PPG_CHECK(index < counts_.size(), "histogram index out of range");
  return counts_[index];
}

std::vector<double> histogram::normalized() const {
  PPG_CHECK(total_ > 0, "normalizing an empty histogram");
  std::vector<double> probs(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    probs[i] =
        static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return probs;
}

std::string histogram::ascii_bars(std::size_t width) const {
  const std::uint64_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        static_cast<double>(counts_[i]) /
                        static_cast<double>(peak) *
                        static_cast<double>(width));
    out << '[' << i << "] " << std::string(bar, '#') << ' ' << counts_[i]
        << '\n';
  }
  return out.str();
}

void histogram::merge(const histogram& other) {
  PPG_CHECK(counts_.size() == other.counts_.size(),
            "merging histograms of different sizes");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

void histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

}  // namespace ppg
