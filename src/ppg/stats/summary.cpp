#include "ppg/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "ppg/util/error.hpp"

namespace ppg {

void running_summary::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double running_summary::mean() const {
  PPG_CHECK(count_ > 0, "mean of an empty summary");
  return mean_;
}

double running_summary::variance() const {
  PPG_CHECK(count_ > 1, "variance needs at least two observations");
  return m2_ / static_cast<double>(count_ - 1);
}

double running_summary::stddev() const {
  return std::sqrt(variance());
}

double running_summary::std_error() const {
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double running_summary::min() const {
  PPG_CHECK(count_ > 0, "min of an empty summary");
  return min_;
}

double running_summary::max() const {
  PPG_CHECK(count_ > 0, "max of an empty summary");
  return max_;
}

double running_summary::ci_half_width(double z) const {
  return z * std_error();
}

void running_summary::merge(const running_summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace ppg
