#include "ppg/stats/autocorrelation.hpp"

#include <algorithm>

#include "ppg/util/error.hpp"

namespace ppg {

double autocorrelation(const std::vector<double>& series, std::size_t lag) {
  const std::size_t n = series.size();
  PPG_CHECK(n >= 2, "need at least two observations");
  PPG_CHECK(lag < n, "lag exceeds series length");
  double mean = 0.0;
  for (const double x : series) mean += x;
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (const double x : series) {
    variance += (x - mean) * (x - mean);
  }
  if (variance == 0.0) return lag == 0 ? 1.0 : 0.0;  // constant series
  double covariance = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    covariance += (series[i] - mean) * (series[i + lag] - mean);
  }
  return covariance / variance;
}

double integrated_autocorrelation_time(const std::vector<double>& series,
                                       std::size_t max_lag, double cutoff) {
  PPG_CHECK(series.size() >= 4, "series too short for IAT");
  const std::size_t limit =
      std::min(max_lag, series.size() / 2);
  double tau = 1.0;
  for (std::size_t lag = 1; lag <= limit; ++lag) {
    const double rho = autocorrelation(series, lag);
    if (rho < cutoff) break;
    tau += 2.0 * rho;
  }
  return tau;
}

double effective_sample_size(const std::vector<double>& series,
                             std::size_t max_lag) {
  return static_cast<double>(series.size()) /
         integrated_autocorrelation_time(series, max_lag);
}

}  // namespace ppg
