// The k-IGT (Incremental Generosity Tuning) dynamics as a population
// protocol (Definition 2.1).
//
// Agent state encoding: 0 = AC, 1 = AD, 2 + j = GTFT with generosity level
// j in {0, ..., k-1} (level j is the paper's g_{j+1}). Only a GTFT initiator
// ever updates (one-way protocol):
//   level j  meets AC or GTFT  ->  level min(j+1, k-1)
//   level j  meets AD          ->  level max(j-1, 0)
//
// Two variants are provided:
//  - igt_protocol: transitions keyed on the responder's *strategy type*
//    (the paper's Definition 2.1). Since PR 4 this is a thin specialization
//    of the generic game_protocol — the compilation of igt_game_matrix with
//    igt_ladder_rule — kept as the canonical name; a bitwise-equivalence
//    test against the legacy hand-written transition function lives in
//    tests/test_game_dynamics.cpp.
//  - igt_action_protocol: transitions keyed on the responder's *observed
//    action* in an actually played repeated game (the alternative discussed
//    after Definition 2.1; for large delta the two nearly coincide).
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/core/population_config.hpp"
#include "ppg/games/closed_form.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/rollout.hpp"
#include "ppg/pp/census.hpp"

namespace ppg {

/// State-encoding helpers shared by both variants (and by igt_game_matrix /
/// igt_ladder_rule, which follow the same ordering).
struct igt_encoding {
  static constexpr agent_state ac = 0;
  static constexpr agent_state ad = 1;
  static constexpr agent_state first_gtft = 2;

  [[nodiscard]] static bool is_gtft(agent_state s) { return s >= first_gtft; }
  [[nodiscard]] static std::size_t level(agent_state s);
  [[nodiscard]] static agent_state gtft(std::size_t level);
};

/// Whether only the initiator updates (the paper's one-way protocol,
/// footnote 3) or both agents do (a natural ablation: the census stationary
/// law is unchanged — each agent's level performs the same reflected walk —
/// but the clock runs roughly twice as fast). Alias of the generic
/// revision_discipline so existing call sites keep compiling.
using igt_discipline = revision_discipline;

/// Definition 2.1 dynamics (type-keyed transitions): the game_protocol
/// compilation of the paper's strategy set and laddered adjustment rule.
/// The kernel is deterministic (a single support point per pair); it is
/// what the census and batched engines execute, cross-checked against
/// igt_count_chain (equation (5)) in the tests.
class igt_protocol final : public game_protocol {
 public:
  explicit igt_protocol(std::size_t k,
                        igt_discipline discipline = igt_discipline::one_way);

  [[nodiscard]] std::size_t k() const { return k_; }

 private:
  std::size_t k_;
};

/// Action-keyed variant: the pair plays one repeated donation game and the
/// GTFT initiator increments iff the opponent's last-round action was C.
class igt_action_protocol final : public protocol {
 public:
  igt_action_protocol(std::size_t k, rd_setting setting, double g_max);

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::size_t num_states() const override { return 2 + k_; }

  [[nodiscard]] std::pair<agent_state, agent_state> interact(
      agent_state initiator, agent_state responder,
      rng& gen) const override;

  [[nodiscard]] std::string state_name(agent_state state) const override;

  /// The memory-one strategy an encoded state plays.
  [[nodiscard]] memory_one_strategy strategy_of(agent_state state) const;

 private:
  std::size_t k_;
  rd_setting setting_;
  std::vector<double> grid_;
};

/// Builds the agent-state vector of an (alpha, beta, gamma) population with
/// the given initial GTFT levels (one entry per GTFT agent, values in
/// {0, ..., k-1}; validated against k).
[[nodiscard]] std::vector<agent_state> make_igt_population_states(
    const abg_population& pop, std::size_t k,
    const std::vector<std::uint32_t>& gtft_levels);

/// Convenience: all GTFT agents start at the same level.
[[nodiscard]] std::vector<agent_state> make_igt_population_states(
    const abg_population& pop, std::size_t k, std::size_t uniform_level);

/// Extracts the GTFT level census (length-k count vector, the z_t of the
/// paper) from the census of a simulation run under either IGT protocol.
/// Accepts any engine's census() as well as a population (implicitly
/// viewed).
[[nodiscard]] std::vector<std::uint64_t> gtft_level_counts(
    const census_view& agents, std::size_t k);

}  // namespace ppg
