#include "ppg/core/population_config.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "ppg/util/error.hpp"

namespace ppg {

double abg_population::lambda() const {
  PPG_CHECK(num_ad > 0, "lambda requires a positive AD fraction");
  const double b = beta();
  return (1.0 - b) / b;
}

abg_population abg_population::from_fractions(std::uint64_t n, double alpha,
                                              double beta, double gamma) {
  PPG_CHECK(n >= 2, "population must have at least two agents");
  PPG_CHECK(alpha >= 0.0 && beta >= 0.0 && gamma >= 0.0,
            "fractions must be non-negative");
  PPG_CHECK(std::abs(alpha + beta + gamma - 1.0) <= 1e-9,
            "fractions must sum to 1");
  const auto nd = static_cast<double>(n);
  std::array<double, 3> exact = {alpha * nd, beta * nd, gamma * nd};
  std::array<std::uint64_t, 3> counts{};
  std::array<double, 3> remainders{};
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    counts[i] = static_cast<std::uint64_t>(std::floor(exact[i]));
    remainders[i] = exact[i] - std::floor(exact[i]);
    assigned += counts[i];
  }
  // Largest remainder method for the leftover agents.
  while (assigned < n) {
    const std::size_t argmax = static_cast<std::size_t>(std::distance(
        remainders.begin(),
        std::max_element(remainders.begin(), remainders.end())));
    ++counts[argmax];
    remainders[argmax] = -1.0;
    ++assigned;
  }
  return {counts[0], counts[1], counts[2]};
}

ehrenfest_params igt_ehrenfest_params(const abg_population& pop,
                                      std::size_t k) {
  PPG_CHECK(pop.valid(), "invalid population");
  PPG_CHECK(k >= 2, "k-IGT requires k >= 2");
  ehrenfest_params params;
  params.k = k;
  params.a = pop.gamma() * (1.0 - pop.beta());
  params.b = pop.gamma() * pop.beta();
  params.m = pop.num_gtft;
  return params;
}

}  // namespace ppg
