// Closed-form theory predictions for the k-IGT dynamics: the average
// stationary generosity (Proposition 2.8 and Corollary C.1), the variance
// bound (Proposition D.2), and the Theorem 2.9 parameter-regime conditions
// under which the mean stationary distribution is an O(1/k)-approximate
// distributional equilibrium.
#pragma once

#include <cstddef>

#include "ppg/games/closed_form.hpp"

namespace ppg {

/// Proposition 2.8: the average stationary generosity
///   g_avg = g_max * ( lambda^k/(lambda^k - 1)
///                     - (1/(k-1)) (lambda/(lambda-1))
///                       (lambda^{k-1} - 1)/(lambda^k - 1) )
/// for beta != 1/2 (lambda = (1-beta)/beta), and g_max/2 for beta = 1/2.
[[nodiscard]] double average_stationary_generosity(double beta, std::size_t k,
                                                   double g_max);

/// Corollary C.1 lower bound (beta < 1/2, lambda > 1):
/// g_avg >= g_max (1 - 1/((lambda-1)(k-1))).
[[nodiscard]] double average_generosity_lower_bound(double beta,
                                                    std::size_t k,
                                                    double g_max);

/// Proposition D.2's bound on Var_{g ~ mu}[g]: 16/(k-1)^2 (stated for the
/// lambda >= 2 regime of Theorem 2.9).
[[nodiscard]] double generosity_variance_bound(std::size_t k);

/// Exact variance of g under the normalized mean stationary distribution
/// mu(j) ∝ lambda^{j-1} on the grid G (used to confirm the bound is loose
/// but valid).
[[nodiscard]] double stationary_generosity_variance(double beta,
                                                    std::size_t k,
                                                    double g_max);

/// The parameter-regime conditions of Theorem 2.9, evaluated one by one for
/// diagnosability.
///
/// Reproduction note (see EXPERIMENTS.md, experiment E5): the paper's
/// appendix simplifies the payoff difference f(g_i, g_k) - f(g_avg, g_k) in
/// equation (63) to (g_i - g_avg)(1-s1)(b-c)(delta^2(1-g_max)+delta)/Phi.
/// Direct algebra on the closed form (46) instead gives the bracket
///   (b-c) delta^2 (1-g_max) + b delta^3 (1-g_max)^2 - c delta,
/// which can be *negative* for parameters that satisfy all of the theorem's
/// literal constraints (e.g. g_max close to 1 with moderate delta). When it
/// is negative, the best deviation is g = 0 and the equilibrium gap Psi is
/// Theta(1), not O(1/k). We therefore additionally expose the corrected
/// positivity condition `deviation_gain_ok` below; it is equivalent to
/// d/dg f(g, g_max) > 0 (local gain of generosity against the most generous
/// opponent, cf. Proposition 2.2) dominating the AD loss term
/// beta delta c/(1-delta). With it, Psi = O(1/k) reproduces cleanly.
struct theorem_2_9_conditions {
  bool s1_ok = false;          ///< s1 in [0, 1)
  bool lambda_ok = false;      ///< lambda = (1-beta)/beta >= 2
  bool reward_ratio_ok = false;  ///< b/c > 1 + beta c / (gamma (1 - s1))
  bool delta_ok = false;       ///< delta < sqrt(1 - beta c/(gamma (b-c)(1-s1)))
  /// g_max < 1 - (1/delta)(beta c/(gamma (b-c)(1-delta)(1-s1)) - 1)
  bool g_max_ok = false;
  bool deviation_gain_ok = false;  ///< corrected condition (see above)

  double delta_limit = 0.0;  ///< the RHS of the delta condition
  double g_max_limit = 0.0;  ///< the RHS of the g_max condition (capped at 1)
  /// gamma (1-s1) [(b-c) d^2 (1-g_max) + b d^3 (1-g_max)^2 - c d]
  ///   - beta d c/(1-d); positive means deviating upward is the best
  /// response, placing the best deviation within O(1/k) of the mean.
  double deviation_coefficient = 0.0;

  /// The paper's literal constraint set.
  [[nodiscard]] bool paper_conditions() const {
    return s1_ok && lambda_ok && reward_ratio_ok && delta_ok && g_max_ok;
  }
  /// Paper constraints plus the corrected deviation-gain condition; this is
  /// the regime in which the O(1/k) convergence is actually observed.
  [[nodiscard]] bool all() const {
    return paper_conditions() && deviation_gain_ok;
  }
};

/// Evaluates the Theorem 2.9 regime for a game setting and population
/// fractions. `beta` and `gamma` are the AD/GTFT fractions.
[[nodiscard]] theorem_2_9_conditions check_theorem_2_9(
    const rd_setting& setting, double beta, double gamma, double g_max);

/// Searches for a valid Theorem 2.9 configuration: given population
/// fractions and s1, returns an rd_setting and g_max satisfying all
/// conditions (with safety margins), or throws if the fractions admit none
/// within the searched grid. Used by tests/benches to construct admissible
/// experiments.
struct theorem_2_9_instance {
  rd_setting setting;
  double g_max = 0.0;
};
[[nodiscard]] theorem_2_9_instance make_theorem_2_9_instance(double beta,
                                                             double gamma,
                                                             double s1);

}  // namespace ppg
