// The k-IGT count chain {z_t} (Section 2.2.1): the level-census process of
// the GTFT subpopulation. Per equation (5) it is exactly the
// (k, gamma(1-beta), gamma*beta, gamma*n)-Ehrenfest process; this wrapper
// exposes it with IGT vocabulary and the closed-form stationary law of
// Theorem 2.7, plus conversions between level censuses and distributions
// over the generosity grid G.
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/core/population_config.hpp"
#include "ppg/ehrenfest/coordinate_walk.hpp"

namespace ppg {

class igt_count_chain {
 public:
  /// All GTFT agents start at `initial_level`.
  igt_count_chain(const abg_population& pop, std::size_t k,
                  std::size_t initial_level);

  /// Explicit per-agent initial levels.
  igt_count_chain(const abg_population& pop, std::size_t k,
                  std::vector<std::uint32_t> initial_levels);

  /// One *population* interaction (most steps leave the census unchanged —
  /// they are interactions whose initiator is not GTFT; the embedded
  /// Ehrenfest chain steps with the correct unconditional probabilities).
  void step(rng& gen);
  void run(std::uint64_t steps, rng& gen);

  /// Current level census z_t (length k, sums to m = num_gtft).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return walk_.counts();
  }
  [[nodiscard]] std::uint64_t interactions() const { return walk_.time(); }
  [[nodiscard]] const abg_population& population_config() const {
    return pop_;
  }
  [[nodiscard]] std::size_t k() const { return k_; }

  /// The underlying Ehrenfest parameters (Section 2.4).
  [[nodiscard]] const ehrenfest_params& ehrenfest() const {
    return walk_.params();
  }

  /// Normalized census: the paper's mu_t in Delta(G).
  [[nodiscard]] std::vector<double> level_distribution() const;

 private:
  abg_population pop_;
  std::size_t k_;
  coordinate_walk walk_;
};

/// Theorem 2.7 stationary probabilities over levels:
/// p_j ∝ (1/beta - 1)^{j-1}.
[[nodiscard]] std::vector<double> igt_stationary_probs(
    const abg_population& pop, std::size_t k);

/// Theorem 2.7 mixing-time upper bound in total population interactions:
/// 2 Phi log(4m) from Lemma A.8 applied to the embedded Ehrenfest chain with
/// a = gamma(1-beta), b = gamma*beta, m = gamma*n. One chain step is one
/// population interaction (the gamma factors in a and b account for
/// interactions that do not move the census), so no rescaling is needed;
/// the bound is O(k n log n / |1-2beta|) as stated in the theorem.
[[nodiscard]] double igt_mixing_upper_bound(const abg_population& pop,
                                            std::size_t k);

/// Theorem 2.7 lower bound Omega(kn): the diameter bound k*m/2 expressed in
/// population interactions.
[[nodiscard]] double igt_mixing_lower_bound(const abg_population& pop,
                                            std::size_t k);

}  // namespace ppg
