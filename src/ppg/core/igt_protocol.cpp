#include "ppg/core/igt_protocol.hpp"

#include <memory>

#include "ppg/games/strategy.hpp"
#include "ppg/util/error.hpp"
#include "ppg/util/table.hpp"

namespace ppg {

std::size_t igt_encoding::level(agent_state s) {
  PPG_CHECK(is_gtft(s), "state is not a GTFT level");
  return s - first_gtft;
}

agent_state igt_encoding::gtft(std::size_t level) {
  return first_gtft + static_cast<agent_state>(level);
}

igt_protocol::igt_protocol(std::size_t k, igt_discipline discipline)
    // Definition 2.1 as a generic compilation: the paper's strategy set
    // (igt_game_matrix keeps the igt_encoding state order and the AC/AD/gj
    // names) under the laddered adjustment rule. The rule is payoff-blind,
    // so the default rd_setting only decorates the matrix with payoffs for
    // callers that inspect game().
    : game_protocol(igt_game_matrix(k),
                    std::make_shared<igt_ladder_rule>(k), discipline),
      k_(k) {}

igt_action_protocol::igt_action_protocol(std::size_t k, rd_setting setting,
                                         double g_max)
    : k_(k), setting_(setting), grid_(generosity_grid(k, g_max)) {
  PPG_CHECK(setting_.valid(), "invalid RD setting");
}

memory_one_strategy igt_action_protocol::strategy_of(
    agent_state state) const {
  if (state == igt_encoding::ac) return always_cooperate();
  if (state == igt_encoding::ad) return always_defect();
  const std::size_t level = igt_encoding::level(state);
  PPG_CHECK(level < k_, "GTFT level out of range");
  return generous_tit_for_tat(grid_[level], setting_.s1);
}

std::pair<agent_state, agent_state> igt_action_protocol::interact(
    agent_state initiator, agent_state responder, rng& gen) const {
  if (!igt_encoding::is_gtft(initiator)) {
    return {initiator, responder};
  }
  // Play the repeated game for real; the initiator classifies the opponent
  // from its realized actions — cooperative iff it cooperated in a majority
  // of rounds. For large delta this agrees with the opponent's true type
  // with high probability (the inference the paper sketches after
  // Definition 2.1), and the resulting dynamics approach Definition 2.1's.
  const rollout_result game = play_repeated_game(
      setting_.to_game(), strategy_of(initiator), strategy_of(responder),
      gen);
  const bool opponent_cooperative =
      2 * game.col_cooperations > game.rounds;
  const std::size_t level = igt_encoding::level(initiator);
  if (opponent_cooperative) {
    const std::size_t next = level + 1 < k_ ? level + 1 : k_ - 1;
    return {igt_encoding::gtft(next), responder};
  }
  const std::size_t next = level > 0 ? level - 1 : 0;
  return {igt_encoding::gtft(next), responder};
}

std::string igt_action_protocol::state_name(agent_state state) const {
  if (state == igt_encoding::ac) return "AC";
  if (state == igt_encoding::ad) return "AD";
  return "g" + std::to_string(igt_encoding::level(state) + 1) + "=" +
         fmt(grid_[igt_encoding::level(state)], 3);
}

std::vector<agent_state> make_igt_population_states(
    const abg_population& pop, std::size_t k,
    const std::vector<std::uint32_t>& gtft_levels) {
  PPG_CHECK(pop.valid(), "invalid population");
  PPG_CHECK(k >= 2, "k-IGT requires k >= 2");
  PPG_CHECK(gtft_levels.size() == pop.num_gtft,
            "need one level per GTFT agent");
  for (const auto level : gtft_levels) {
    PPG_CHECK(level < k, "GTFT level out of range for this k");
  }
  std::vector<agent_state> states;
  states.reserve(pop.n());
  for (std::uint64_t i = 0; i < pop.num_ac; ++i) {
    states.push_back(igt_encoding::ac);
  }
  for (std::uint64_t i = 0; i < pop.num_ad; ++i) {
    states.push_back(igt_encoding::ad);
  }
  for (const auto level : gtft_levels) {
    states.push_back(igt_encoding::gtft(level));
  }
  return states;
}

std::vector<agent_state> make_igt_population_states(
    const abg_population& pop, std::size_t k, std::size_t uniform_level) {
  PPG_CHECK(uniform_level < k, "initial level out of range");
  return make_igt_population_states(
      pop, k,
      std::vector<std::uint32_t>(
          pop.num_gtft, static_cast<std::uint32_t>(uniform_level)));
}

std::vector<std::uint64_t> gtft_level_counts(const census_view& agents,
                                             std::size_t k) {
  std::vector<std::uint64_t> counts(k, 0);
  for (std::size_t level = 0; level < k; ++level) {
    counts[level] = agents.count(igt_encoding::gtft(level));
  }
  return counts;
}

}  // namespace ppg
