// Distributional equilibria (Definitions 1.1 and 1.2) and the equilibrium
// gap Psi = max_i E[f(g_i, S)] - E_{g~mu, S~mu_hat}[f(g, S)] that
// Theorem 2.9 bounds by O(1/k).
#pragma once

#include <cstddef>
#include <vector>

#include "ppg/core/population_config.hpp"
#include "ppg/core/theory.hpp"
#include "ppg/games/exact_payoff.hpp"
#include "ppg/linalg/matrix.hpp"

namespace ppg {

/// The distribution mu_hat over the full strategy set
/// S = {AC, AD, g_1, ..., g_k} induced by mu over G (equation (3)):
/// mu_hat = (alpha, beta, gamma*mu(1), ..., gamma*mu(k)).
[[nodiscard]] std::vector<double> induced_full_distribution(
    const std::vector<double>& mu, double alpha, double beta, double gamma);

/// Result of a Definition 1.2 gap computation.
struct de_result {
  /// The gap Psi (>= 0); mu is an eps-DE for any eps >= Psi.
  double epsilon = 0.0;
  std::size_t best_level = 0;  ///< argmax_i of the deviation payoff
  double mean_payoff = 0.0;  ///< E_{g~mu, S~mu_hat}[f(g, S)]
  double best_payoff = 0.0;  ///< max_i E_{S~mu_hat}[f(g_i, S)]
  std::vector<double> deviation_payoffs;  ///< E_{S~mu_hat}[f(g_i, S)] per level
};

/// Computes Definition 1.2 quantities for the k-IGT setting. Expected
/// payoffs f come from the paper's closed forms (Appendix B.1.5), which the
/// test suite cross-validates against the matrix engine.
class igt_equilibrium_analyzer {
 public:
  /// `fractions` are (alpha, beta, gamma); k and g_max define the grid G.
  igt_equilibrium_analyzer(rd_setting setting, double alpha, double beta,
                           double gamma, std::size_t k, double g_max);

  /// Gap of an arbitrary mu over G (length k, a distribution).
  [[nodiscard]] de_result gap(const std::vector<double>& mu) const;

  /// Gap of the normalized mean stationary distribution of the k-IGT
  /// dynamics, mu(j) ∝ lambda^{j-1} (the object of Theorem 2.9).
  [[nodiscard]] de_result stationary_gap() const;

  /// The normalized mean stationary distribution itself.
  [[nodiscard]] std::vector<double> stationary_mu() const;

  /// E_{S~mu_hat}[f(g, S)] for an arbitrary generosity g in [0, g_max]
  /// (used for the f(g_tilde, S) comparisons in the proof of Theorem 2.9).
  [[nodiscard]] double payoff_vs_mixture(double g,
                                         const std::vector<double>& mu) const;

  /// Continuous best response: the generosity g* in [0, g_max] maximizing
  /// payoff_vs_mixture(g, mu), found by golden-section search refined over
  /// a coarse scan (payoff is smooth but not necessarily unimodal over the
  /// whole interval, hence the scan). The distance |g_avg - g*| is the
  /// quantity the Theorem 2.9 proof bounds by O(1/k).
  [[nodiscard]] double best_response_generosity(
      const std::vector<double>& mu) const;

  [[nodiscard]] const std::vector<double>& grid() const { return grid_; }
  [[nodiscard]] const rd_setting& setting() const { return setting_; }

 private:
  rd_setting setting_;
  double alpha_;
  double beta_;
  double gamma_;
  std::size_t k_;
  std::vector<double> grid_;
  // Precomputed payoff tables.
  double f_vs_ac_;                       // f(g, AC): independent of g
  std::vector<double> f_vs_ad_;          // f(g_i, AD)
  matrix f_vs_gtft_;                     // f(g_i, g_j)
};

/// Definition 1.1 for a general finite two-player game: `u1(i, j)` is the
/// payoff of the first agent playing strategy i against j, `u2(i, j)` the
/// second agent's payoff in the same interaction. Returns the smallest
/// epsilon for which mu is an epsilon-DE (the larger of the two players'
/// deviation gaps, clamped at 0).
struct general_de_result {
  double epsilon1 = 0.0;  ///< first inequality's gap
  double epsilon2 = 0.0;  ///< second inequality's gap
  [[nodiscard]] double epsilon() const {
    return epsilon1 > epsilon2 ? epsilon1 : epsilon2;
  }
};
[[nodiscard]] general_de_result general_de_gap(const matrix& u1,
                                               const matrix& u2,
                                               const std::vector<double>& mu);

/// Builds the full (k+2) x (k+2) expected-payoff matrix over
/// S = {AC, AD, g_1, ..., g_k} with the exact matrix engine; entry (i, j)
/// is f(S_i, S_j). Used to cross-check the closed-form analyzer and to run
/// Definition 1.1 on the whole game.
[[nodiscard]] matrix full_payoff_matrix(const rd_setting& setting,
                                        std::size_t k, double g_max);

/// Population welfare: the expected payoff of a uniformly random agent in
/// the "average interaction" — W(mu_hat) = E_{S1, S2 ~ mu_hat}[f(S1, S2)].
/// `payoffs` is a full payoff matrix over the same support as mu_hat.
/// (For symmetric payoff structures this equals the per-capita rate at
/// which the population accumulates reward.)
[[nodiscard]] double population_welfare(const matrix& payoffs,
                                        const std::vector<double>& mu_hat);

}  // namespace ppg
