#include "ppg/core/igt_count_chain.hpp"

#include "ppg/ehrenfest/bounds.hpp"
#include "ppg/ehrenfest/stationary.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

igt_count_chain::igt_count_chain(const abg_population& pop, std::size_t k,
                                 std::size_t initial_level)
    : igt_count_chain(pop, k,
                      std::vector<std::uint32_t>(
                          pop.num_gtft,
                          static_cast<std::uint32_t>(initial_level))) {}

igt_count_chain::igt_count_chain(const abg_population& pop, std::size_t k,
                                 std::vector<std::uint32_t> initial_levels)
    : pop_(pop),
      k_(k),
      walk_(igt_ehrenfest_params(pop, k), std::move(initial_levels)) {
  PPG_CHECK(pop_.num_ad > 0,
            "k-IGT count chain requires beta > 0 (otherwise the dynamics "
            "degenerate to the top level)");
}

void igt_count_chain::step(rng& gen) {
  walk_.step(gen);
}

void igt_count_chain::run(std::uint64_t steps, rng& gen) {
  walk_.run(steps, gen);
}

std::vector<double> igt_count_chain::level_distribution() const {
  const auto& z = walk_.counts();
  std::vector<double> mu(z.size());
  const auto m = static_cast<double>(pop_.num_gtft);
  for (std::size_t j = 0; j < z.size(); ++j) {
    mu[j] = static_cast<double>(z[j]) / m;
  }
  return mu;
}

std::vector<double> igt_stationary_probs(const abg_population& pop,
                                         std::size_t k) {
  return ehrenfest_stationary_probs(igt_ehrenfest_params(pop, k));
}

double igt_mixing_upper_bound(const abg_population& pop, std::size_t k) {
  return mixing_upper_bound(igt_ehrenfest_params(pop, k));
}

double igt_mixing_lower_bound(const abg_population& pop, std::size_t k) {
  return mixing_lower_bound(igt_ehrenfest_params(pop, k));
}

}  // namespace ppg
