// (alpha, beta, gamma) populations (Section 1.1.2): fixed subpopulations of
// AC and AD agents plus a gamma fraction of GTFT agents whose generosity
// levels evolve under the k-IGT dynamics.
#pragma once

#include <cstdint>

#include "ppg/ehrenfest/process.hpp"

namespace ppg {

/// Exact integer composition of an (alpha, beta, gamma) population. Stored
/// as counts so that fractions are consistent by construction.
struct abg_population {
  std::uint64_t num_ac = 0;    ///< always-cooperate agents (alpha fraction)
  std::uint64_t num_ad = 0;    ///< always-defect agents (beta fraction)
  /// GTFT agents (gamma fraction, the m of the paper).
  std::uint64_t num_gtft = 0;

  [[nodiscard]] std::uint64_t n() const {
    return num_ac + num_ad + num_gtft;
  }
  [[nodiscard]] double alpha() const {
    return static_cast<double>(num_ac) / static_cast<double>(n());
  }
  [[nodiscard]] double beta() const {
    return static_cast<double>(num_ad) / static_cast<double>(n());
  }
  [[nodiscard]] double gamma() const {
    return static_cast<double>(num_gtft) / static_cast<double>(n());
  }

  /// The paper's lambda = (1 - beta)/beta (Theorem 2.7); requires
  /// num_ad > 0.
  [[nodiscard]] double lambda() const;

  /// Needs at least two agents total and at least one GTFT agent for the
  /// dynamics to be non-trivial.
  [[nodiscard]] bool valid() const { return n() >= 2 && num_gtft >= 1; }

  /// Rounds target fractions to integer counts (largest-remainder method,
  /// preserving n). Fractions must be non-negative and sum to 1.
  [[nodiscard]] static abg_population from_fractions(std::uint64_t n,
                                                     double alpha,
                                                     double beta,
                                                     double gamma);
};

/// The Ehrenfest parameters of the k-IGT count chain (Section 2.4): the
/// sequence {z_t} is exactly a (k, a, b, m)-Ehrenfest process with
/// a = gamma (1 - beta), b = gamma beta, m = gamma n.
[[nodiscard]] ehrenfest_params igt_ehrenfest_params(
    const abg_population& pop, std::size_t k);

}  // namespace ppg
