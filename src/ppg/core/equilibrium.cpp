#include "ppg/core/equilibrium.hpp"

#include <cmath>

#include "ppg/games/closed_form.hpp"
#include "ppg/games/strategy.hpp"
#include "ppg/stats/distributions.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

std::vector<double> induced_full_distribution(const std::vector<double>& mu,
                                              double alpha, double beta,
                                              double gamma) {
  PPG_CHECK(is_distribution(mu, 1e-6), "mu must be a distribution");
  PPG_CHECK(std::abs(alpha + beta + gamma - 1.0) <= 1e-9,
            "fractions must sum to 1");
  std::vector<double> full;
  full.reserve(mu.size() + 2);
  full.push_back(alpha);
  full.push_back(beta);
  for (const double p : mu) {
    full.push_back(gamma * p);
  }
  return full;
}

igt_equilibrium_analyzer::igt_equilibrium_analyzer(rd_setting setting,
                                                   double alpha, double beta,
                                                   double gamma,
                                                   std::size_t k,
                                                   double g_max)
    : setting_(setting),
      alpha_(alpha),
      beta_(beta),
      gamma_(gamma),
      k_(k),
      grid_(generosity_grid(k, g_max)),
      f_vs_ac_(f_gtft_vs_ac(setting)),
      f_vs_ad_(k),
      f_vs_gtft_(k, k) {
  PPG_CHECK(std::abs(alpha + beta + gamma - 1.0) <= 1e-9,
            "fractions must sum to 1");
  PPG_CHECK(beta > 0.0 && beta < 1.0 && gamma > 0.0,
            "need positive AD and GTFT fractions");
  for (std::size_t i = 0; i < k_; ++i) {
    f_vs_ad_[i] = f_gtft_vs_ad(setting_, grid_[i]);
    for (std::size_t j = 0; j < k_; ++j) {
      f_vs_gtft_(i, j) = f_gtft_vs_gtft(setting_, grid_[i], grid_[j]);
    }
  }
}

de_result igt_equilibrium_analyzer::gap(const std::vector<double>& mu) const {
  PPG_CHECK(mu.size() == k_, "mu must have length k");
  PPG_CHECK(is_distribution(mu, 1e-6), "mu must be a distribution");
  de_result result;
  result.deviation_payoffs.resize(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    double vs_gtft = 0.0;
    for (std::size_t j = 0; j < k_; ++j) {
      vs_gtft += mu[j] * f_vs_gtft_(i, j);
    }
    result.deviation_payoffs[i] =
        alpha_ * f_vs_ac_ + beta_ * f_vs_ad_[i] + gamma_ * vs_gtft;
  }
  result.best_payoff = result.deviation_payoffs[0];
  result.best_level = 0;
  double mean = 0.0;
  for (std::size_t i = 0; i < k_; ++i) {
    mean += mu[i] * result.deviation_payoffs[i];
    if (result.deviation_payoffs[i] > result.best_payoff) {
      result.best_payoff = result.deviation_payoffs[i];
      result.best_level = i;
    }
  }
  result.mean_payoff = mean;
  result.epsilon = result.best_payoff - mean;
  return result;
}

std::vector<double> igt_equilibrium_analyzer::stationary_mu() const {
  const double lambda = (1.0 - beta_) / beta_;
  return geometric_weights(k_, lambda);
}

de_result igt_equilibrium_analyzer::stationary_gap() const {
  return gap(stationary_mu());
}

double igt_equilibrium_analyzer::payoff_vs_mixture(
    double g, const std::vector<double>& mu) const {
  PPG_CHECK(mu.size() == k_, "mu must have length k");
  double vs_gtft = 0.0;
  for (std::size_t j = 0; j < k_; ++j) {
    vs_gtft += mu[j] * f_gtft_vs_gtft(setting_, g, grid_[j]);
  }
  return alpha_ * f_vs_ac_ + beta_ * f_gtft_vs_ad(setting_, g) +
         gamma_ * vs_gtft;
}

double igt_equilibrium_analyzer::best_response_generosity(
    const std::vector<double>& mu) const {
  PPG_CHECK(mu.size() == k_, "mu must have length k");
  const double g_max = grid_.back();
  // Coarse scan to locate the best bracket...
  constexpr int scan_points = 64;
  double best_g = 0.0;
  double best_value = payoff_vs_mixture(0.0, mu);
  for (int i = 1; i <= scan_points; ++i) {
    const double g = g_max * i / scan_points;
    const double value = payoff_vs_mixture(g, mu);
    if (value > best_value) {
      best_value = value;
      best_g = g;
    }
  }
  // ...then golden-section refinement inside the neighboring cells.
  double lo = std::max(0.0, best_g - g_max / scan_points);
  double hi = std::min(g_max, best_g + g_max / scan_points);
  constexpr double inv_phi = 0.6180339887498949;
  double x1 = hi - inv_phi * (hi - lo);
  double x2 = lo + inv_phi * (hi - lo);
  double f1 = payoff_vs_mixture(x1, mu);
  double f2 = payoff_vs_mixture(x2, mu);
  for (int iter = 0; iter < 80 && hi - lo > 1e-12; ++iter) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + inv_phi * (hi - lo);
      f2 = payoff_vs_mixture(x2, mu);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - inv_phi * (hi - lo);
      f1 = payoff_vs_mixture(x1, mu);
    }
  }
  return 0.5 * (lo + hi);
}

general_de_result general_de_gap(const matrix& u1, const matrix& u2,
                                 const std::vector<double>& mu) {
  const std::size_t s = mu.size();
  PPG_CHECK(u1.rows() == s && u1.cols() == s && u2.rows() == s &&
                u2.cols() == s,
            "payoff matrices must match the strategy count");
  PPG_CHECK(is_distribution(mu, 1e-6), "mu must be a distribution");

  // Expected payoffs of the average interaction.
  double mean1 = 0.0;
  double mean2 = 0.0;
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      mean1 += mu[i] * mu[j] * u1(i, j);
      mean2 += mu[i] * mu[j] * u2(i, j);
    }
  }
  // Best unilateral deviations.
  double best1 = -1e300;
  double best2 = -1e300;
  for (std::size_t dev = 0; dev < s; ++dev) {
    double v1 = 0.0;
    double v2 = 0.0;
    for (std::size_t j = 0; j < s; ++j) {
      v1 += mu[j] * u1(dev, j);  // first agent deviates to `dev`
      v2 += mu[j] * u2(j, dev);  // second agent deviates to `dev`
    }
    best1 = std::max(best1, v1);
    best2 = std::max(best2, v2);
  }
  general_de_result result;
  result.epsilon1 = std::max(0.0, best1 - mean1);
  result.epsilon2 = std::max(0.0, best2 - mean2);
  return result;
}

matrix full_payoff_matrix(const rd_setting& setting, std::size_t k,
                          double g_max) {
  const auto grid = generosity_grid(k, g_max);
  std::vector<paper_strategy> strategies;
  strategies.reserve(k + 2);
  strategies.push_back(paper_strategy::ac());
  strategies.push_back(paper_strategy::ad());
  for (const double g : grid) {
    strategies.push_back(paper_strategy::gtft(g));
  }
  const payoff_oracle oracle(setting.to_game(), setting.s1);
  matrix u(strategies.size(), strategies.size());
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    for (std::size_t j = 0; j < strategies.size(); ++j) {
      u(i, j) = oracle.payoff(strategies[i], strategies[j]);
    }
  }
  return u;
}

double population_welfare(const matrix& payoffs,
                          const std::vector<double>& mu_hat) {
  const std::size_t s = mu_hat.size();
  PPG_CHECK(payoffs.rows() == s && payoffs.cols() == s,
            "payoff matrix must match the distribution support");
  PPG_CHECK(is_distribution(mu_hat, 1e-6), "mu_hat must be a distribution");
  double welfare = 0.0;
  for (std::size_t i = 0; i < s; ++i) {
    if (mu_hat[i] == 0.0) continue;
    for (std::size_t j = 0; j < s; ++j) {
      welfare += mu_hat[i] * mu_hat[j] * payoffs(i, j);
    }
  }
  return welfare;
}

}  // namespace ppg
