#include "ppg/core/theory.hpp"

#include <cmath>

#include "ppg/games/strategy.hpp"
#include "ppg/stats/distributions.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

void check_beta(double beta) {
  PPG_CHECK(beta > 0.0 && beta < 1.0, "beta must lie in (0, 1)");
}

}  // namespace

double average_stationary_generosity(double beta, std::size_t k,
                                     double g_max) {
  check_beta(beta);
  PPG_CHECK(k >= 2, "k must be at least 2");
  PPG_CHECK(g_max >= 0.0 && g_max <= 1.0, "g_max must be a probability");
  if (std::abs(beta - 0.5) < 1e-15) {
    return g_max / 2.0;
  }
  const double lambda = (1.0 - beta) / beta;
  const auto kd = static_cast<double>(k);
  const double lk = std::pow(lambda, kd);
  const double lk1 = std::pow(lambda, kd - 1.0);
  return g_max * (lk / (lk - 1.0) -
                  (1.0 / (kd - 1.0)) * (lambda / (lambda - 1.0)) *
                      ((lk1 - 1.0) / (lk - 1.0)));
}

double average_generosity_lower_bound(double beta, std::size_t k,
                                      double g_max) {
  check_beta(beta);
  PPG_CHECK(beta < 0.5, "Corollary C.1 requires beta < 1/2");
  PPG_CHECK(k >= 2, "k must be at least 2");
  const double lambda = (1.0 - beta) / beta;
  return g_max *
         (1.0 - 1.0 / ((lambda - 1.0) * (static_cast<double>(k) - 1.0)));
}

double generosity_variance_bound(std::size_t k) {
  PPG_CHECK(k >= 2, "k must be at least 2");
  const auto kd = static_cast<double>(k);
  return 16.0 / ((kd - 1.0) * (kd - 1.0));
}

double stationary_generosity_variance(double beta, std::size_t k,
                                      double g_max) {
  check_beta(beta);
  const double lambda = (1.0 - beta) / beta;
  const auto mu = geometric_weights(k, lambda);
  const auto grid = generosity_grid(k, g_max);
  return distribution_variance(mu, grid);
}

theorem_2_9_conditions check_theorem_2_9(const rd_setting& setting,
                                         double beta, double gamma,
                                         double g_max) {
  PPG_CHECK(setting.valid(), "invalid RD setting");
  check_beta(beta);
  PPG_CHECK(gamma > 0.0 && gamma < 1.0, "gamma must lie in (0, 1)");
  PPG_CHECK(g_max >= 0.0 && g_max <= 1.0, "g_max must be a probability");

  theorem_2_9_conditions cond;
  cond.s1_ok = setting.s1 >= 0.0 && setting.s1 < 1.0;
  cond.lambda_ok = (1.0 - beta) / beta >= 2.0;

  const double one_minus_s1 = 1.0 - setting.s1;
  if (one_minus_s1 <= 0.0) {
    return cond;  // remaining conditions are undefined for s1 = 1
  }
  cond.reward_ratio_ok =
      setting.b / setting.c >
      1.0 + beta * setting.c / (gamma * one_minus_s1);

  const double ratio =
      beta * setting.c /
      (gamma * (setting.b - setting.c) * one_minus_s1);
  if (ratio < 1.0) {
    cond.delta_limit = std::sqrt(1.0 - ratio);
    cond.delta_ok = setting.delta < cond.delta_limit;
  } else {
    cond.delta_limit = 0.0;
    cond.delta_ok = false;
  }

  if (setting.delta > 0.0 && setting.delta < 1.0) {
    const double inner = beta * setting.c /
                         (gamma * (setting.b - setting.c) *
                          (1.0 - setting.delta) * one_minus_s1);
    cond.g_max_limit =
        std::min(1.0, 1.0 - (inner - 1.0) / setting.delta);
    cond.g_max_ok = g_max < cond.g_max_limit;
  }

  // Corrected deviation-gain condition (see the header comment): the payoff
  // difference bracket from direct differentiation of (46), evaluated
  // against the most generous opponent, must dominate the AD loss slope.
  const double d = setting.delta;
  const double w = 1.0 - g_max;
  const double bracket = (setting.b - setting.c) * d * d * w +
                         setting.b * d * d * d * w * w - setting.c * d;
  cond.deviation_coefficient = gamma * one_minus_s1 * bracket -
                               beta * d * setting.c / (1.0 - d);
  cond.deviation_gain_ok = cond.deviation_coefficient > 0.0;
  return cond;
}

theorem_2_9_instance make_theorem_2_9_instance(double beta, double gamma,
                                               double s1) {
  check_beta(beta);
  PPG_CHECK((1.0 - beta) / beta >= 2.0,
            "Theorem 2.9 instances require lambda >= 2 (beta <= 1/3)");
  PPG_CHECK(s1 >= 0.0 && s1 < 1.0, "s1 must lie in [0, 1)");
  // Search a grid of (b, delta, g_max) with c = 1 for a configuration that
  // satisfies every condition with a little margin.
  const double c = 1.0;
  for (double b = 4.0; b <= 4096.0; b *= 2.0) {
    rd_setting setting{b, c, 0.0, s1};
    for (const double delta_frac : {0.5, 0.7, 0.9}) {
      theorem_2_9_conditions probe =
          check_theorem_2_9({b, c, 0.0, s1}, beta, gamma, 0.0);
      if (probe.delta_limit <= 0.0) continue;
      setting.delta = delta_frac * probe.delta_limit;
      if (setting.delta <= 0.0 || setting.delta >= 1.0) continue;
      theorem_2_9_conditions with_delta =
          check_theorem_2_9(setting, beta, gamma, 0.0);
      if (with_delta.g_max_limit <= 0.0) continue;
      // Respect both the paper's g_max constraint and the corrected
      // deviation-gain regime: keep generosity locally beneficial against
      // the most generous opponent (cf. Proposition 2.2's
      // g_max < 1 - c/(delta b)).
      const double local_gain_limit = 1.0 - c / (setting.delta * b);
      const double g_max =
          0.9 * std::min(with_delta.g_max_limit, local_gain_limit);
      if (g_max <= 0.0) continue;
      const theorem_2_9_conditions final_check =
          check_theorem_2_9(setting, beta, gamma, g_max);
      if (final_check.all()) {
        return {setting, g_max};
      }
    }
  }
  PPG_CHECK(false,
            "no Theorem 2.9 instance found for these population fractions");
}

}  // namespace ppg
