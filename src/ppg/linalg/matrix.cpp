#include "ppg/linalg/matrix.hpp"

#include <cmath>

namespace ppg {

matrix::matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  PPG_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

matrix matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  PPG_CHECK(!rows.empty() && !rows.front().empty(),
            "from_rows needs non-empty data");
  matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    PPG_CHECK(rows[r].size() == m.cols_, "ragged rows in from_rows");
    for (std::size_t c = 0; c < m.cols_; ++c) {
      m(r, c) = rows[r][c];
    }
  }
  return m;
}

matrix matrix::identity(std::size_t n) {
  matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

matrix& matrix::operator+=(const matrix& other) {
  PPG_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "matrix shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

matrix& matrix::operator-=(const matrix& other) {
  PPG_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "matrix shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
  return *this;
}

matrix& matrix::operator*=(double scalar) {
  for (auto& x : data_) {
    x *= scalar;
  }
  return *this;
}

matrix matrix::transposed() const {
  matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

double matrix::max_abs() const {
  double worst = 0.0;
  for (const double x : data_) {
    worst = std::max(worst, std::abs(x));
  }
  return worst;
}

std::vector<double> matrix::row_sums() const {
  std::vector<double> sums(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      sums[r] += (*this)(r, c);
    }
  }
  return sums;
}

bool matrix::is_row_stochastic(double tol) const {
  for (const double x : data_) {
    if (x < -tol) return false;
  }
  for (const double s : row_sums()) {
    if (std::abs(s - 1.0) > tol) return false;
  }
  return true;
}

matrix operator+(matrix lhs, const matrix& rhs) {
  lhs += rhs;
  return lhs;
}

matrix operator-(matrix lhs, const matrix& rhs) {
  lhs -= rhs;
  return lhs;
}

matrix operator*(const matrix& lhs, const matrix& rhs) {
  PPG_CHECK(lhs.cols() == rhs.rows(), "matrix shape mismatch in *");
  matrix out(lhs.rows(), rhs.cols());
  for (std::size_t r = 0; r < lhs.rows(); ++r) {
    for (std::size_t k = 0; k < lhs.cols(); ++k) {
      const double x = lhs(r, k);
      if (x == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols(); ++c) {
        out(r, c) += x * rhs(k, c);
      }
    }
  }
  return out;
}

matrix operator*(double scalar, matrix m) {
  m *= scalar;
  return m;
}

std::vector<double> row_times(const std::vector<double>& v, const matrix& m) {
  PPG_CHECK(v.size() == m.rows(), "row_times shape mismatch");
  std::vector<double> out(m.cols(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double x = v[r];
    if (x == 0.0) continue;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out[c] += x * m.at_unchecked(r, c);
    }
  }
  return out;
}

std::vector<double> times_col(const matrix& m, const std::vector<double>& v) {
  PPG_CHECK(v.size() == m.cols(), "times_col shape mismatch");
  std::vector<double> out(m.rows(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      sum += m.at_unchecked(r, c) * v[c];
    }
    out[r] = sum;
  }
  return out;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  PPG_CHECK(a.size() == b.size(), "dot product shape mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

}  // namespace ppg
