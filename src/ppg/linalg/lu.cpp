#include "ppg/linalg/lu.hpp"

#include <cmath>
#include <numeric>

namespace ppg {

lu_decomposition::lu_decomposition(matrix a)
    : original_(a), lu_(std::move(a)) {
  PPG_CHECK(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest remaining entry in this column.
    std::size_t pivot = col;
    double best = std::abs(lu_(perm_[col], col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double candidate = std::abs(lu_(perm_[r], col));
      if (candidate > best) {
        best = candidate;
        pivot = r;
      }
    }
    PPG_CHECK(best > 1e-300, "matrix is numerically singular");
    if (pivot != col) {
      std::swap(perm_[pivot], perm_[col]);
      pivot_sign_ = -pivot_sign_;
    }
    const double diag = lu_(perm_[col], col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_(perm_[r], col) / diag;
      lu_(perm_[r], col) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_(perm_[r], c) -= factor * lu_(perm_[col], c);
      }
    }
  }
}

std::vector<double> lu_decomposition::solve(std::vector<double> b) const {
  const std::size_t n = lu_.rows();
  PPG_CHECK(b.size() == n, "rhs size mismatch in LU solve");
  // Forward substitution with the permuted rows (L has unit diagonal).
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double sum = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) {
      sum -= lu_(perm_[r], c) * y[c];
    }
    y[r] = sum;
  }
  // Back substitution through U.
  std::vector<double> x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) {
      sum -= lu_(perm_[ri], c) * x[c];
    }
    x[ri] = sum / lu_(perm_[ri], ri);
  }
  return x;
}

std::vector<double> lu_decomposition::solve_transposed(
    const std::vector<double>& b) const {
  return lu_decomposition(original_.transposed()).solve(b);
}

matrix lu_decomposition::inverse() const {
  const std::size_t n = lu_.rows();
  matrix inv(n, n);
  std::vector<double> unit(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    unit[c] = 1.0;
    const auto col = solve(unit);
    unit[c] = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      inv(r, c) = col[r];
    }
  }
  return inv;
}

double lu_decomposition::determinant() const {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) {
    det *= lu_(perm_[i], i);
  }
  return det;
}

std::vector<double> solve(const matrix& a, const std::vector<double>& b) {
  return lu_decomposition(a).solve(b);
}

matrix inverse(const matrix& a) {
  return lu_decomposition(a).inverse();
}

}  // namespace ppg
