// Dense row-major matrix with the small set of operations the library needs:
// products, transposition, row-vector multiplication, norms. No external
// BLAS/LAPACK dependency — matrices here are small (4x4 round chains, modest
// exact state spaces).
#pragma once

#include <cstddef>
#include <vector>

#include "ppg/util/error.hpp"

namespace ppg {

class matrix {
 public:
  matrix() = default;
  matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer-style data; all rows must have equal
  /// length.
  static matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of the given size.
  static matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    PPG_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    PPG_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Unchecked access for hot loops (exact chain evolution).
  [[nodiscard]] double at_unchecked(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  matrix& operator+=(const matrix& other);
  matrix& operator-=(const matrix& other);
  matrix& operator*=(double scalar);

  [[nodiscard]] matrix transposed() const;

  /// Max absolute entry.
  [[nodiscard]] double max_abs() const;

  /// Row sums (useful for verifying stochasticity).
  [[nodiscard]] std::vector<double> row_sums() const;

  /// True if every row sums to 1 within tol and all entries >= -tol.
  [[nodiscard]] bool is_row_stochastic(double tol = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] matrix operator+(matrix lhs, const matrix& rhs);
[[nodiscard]] matrix operator-(matrix lhs, const matrix& rhs);
[[nodiscard]] matrix operator*(const matrix& lhs, const matrix& rhs);
[[nodiscard]] matrix operator*(double scalar, matrix m);

/// Row-vector times matrix: result_j = sum_i v_i * m(i, j).
[[nodiscard]] std::vector<double> row_times(const std::vector<double>& v,
                                            const matrix& m);

/// Matrix times column vector.
[[nodiscard]] std::vector<double> times_col(const matrix& m,
                                            const std::vector<double>& v);

/// Dot product of two equally sized vectors.
[[nodiscard]] double dot(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace ppg
