// LU decomposition with partial pivoting; powers the exact repeated-game
// payoff oracle (solving against I - delta*M) and small-chain stationary
// computations.
#pragma once

#include <vector>

#include "ppg/linalg/matrix.hpp"

namespace ppg {

/// LU factorization P*A = L*U with partial pivoting. Throws invariant_error
/// if the matrix is numerically singular. Keeps a copy of A so transposed
/// systems can be solved exactly; matrices in this library are small, so the
/// duplicate storage is irrelevant.
class lu_decomposition {
 public:
  explicit lu_decomposition(matrix a);

  /// Solves A x = b.
  [[nodiscard]] std::vector<double> solve(std::vector<double> b) const;

  /// Solves x A = b (i.e. A^T x = b), needed for row-vector systems such as
  /// q1 (I - delta M)^{-1}.
  [[nodiscard]] std::vector<double> solve_transposed(
      const std::vector<double>& b) const;

  /// Full inverse (column-by-column solves).
  [[nodiscard]] matrix inverse() const;

  /// Determinant from the diagonal of U and the pivot parity.
  [[nodiscard]] double determinant() const;

 private:
  matrix original_;
  matrix lu_;                      // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;  // row permutation
  int pivot_sign_ = 1;
};

/// Convenience: solves A x = b in one call.
[[nodiscard]] std::vector<double> solve(const matrix& a,
                                        const std::vector<double>& b);

/// Convenience: computes A^{-1}.
[[nodiscard]] matrix inverse(const matrix& a);

}  // namespace ppg
