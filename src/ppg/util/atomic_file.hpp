// Crash-safe file replacement: the write-fsync-rename discipline used by
// every durable artifact in the tree (ppg-serve session spills). The final
// path is replaced atomically — a reader (or a process rebooting after a
// crash) sees either the previous complete content or the new complete
// content, never a prefix. A crash mid-write can leave a `*.tmp` sibling,
// which scanners must ignore and may delete.
//
// The syscall surface is injectable (`file_ops`) so fault-injection tests
// can force EIO/ENOSPC, short writes, and torn renames through the exact
// production code path instead of mocking around it (serve/faults.hpp).
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <string>
#include <string_view>

namespace ppg {

/// The syscalls atomic_write_file performs, as overridable hooks. The
/// default implementation forwards to the real syscalls; fault-injection
/// wrappers (serve/faults.hpp) override individual operations.
class file_ops {
 public:
  virtual ~file_ops() = default;

  /// write(2); may write fewer bytes than requested (callers loop).
  virtual ssize_t write_fd(int fd, const void* data, std::size_t size);
  /// fsync(2); 0 on success, -1 with errno set.
  virtual int fsync_fd(int fd);
  /// rename(2); 0 on success, -1 with errno set.
  virtual int rename_file(const std::string& from, const std::string& to);
};

/// The process-wide pass-through instance (stateless, thread-safe).
[[nodiscard]] file_ops& default_file_ops();

/// Atomically replaces `path` with `bytes`: writes `path` + ".tmp" in the
/// same directory, fsyncs the file, rename(2)s it over `path`, and fsyncs
/// the directory so the rename itself is durable. Returns true on success;
/// on failure returns false with *error describing the failing step and
/// errno — the final path is untouched (though a ".tmp" sibling may
/// remain). Never throws on I/O failure: durability degradation is a
/// caller policy decision, not an exception.
bool atomic_write_file(const std::string& path, std::string_view bytes,
                       std::string* error, file_ops& ops = default_file_ops());

/// Reads a whole regular file into *out. False (with *error) when the file
/// cannot be opened or read; *out is unspecified on failure.
bool read_file(const std::string& path, std::string* out, std::string* error);

}  // namespace ppg
