// Minimal JSON document type: an ordered-object/array/string/number/bool/
// null variant with a writer and a strict recursive-descent parser. No
// external dependencies — this backs the `ppg-bench` artifact files
// (BENCH_*.json) and must stay byte-stable across platforms, so all number
// formatting goes through format_metric (shortest round-trip via
// std::to_chars, never locale-dependent).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ppg {

/// Formats a double as the shortest decimal string that parses back to the
/// identical bits (std::to_chars). With `sig_digits > 0` the value is first
/// rounded to that many significant digits and the rounded value is printed
/// shortest-form — so "0.6667" rather than "0.666700" or a truncated
/// std::to_string. Every numeric cell of a scenario table and every number
/// in a JSON artifact is rendered by this one helper, which is what makes
/// the human tables and the machine artifacts agree.
[[nodiscard]] std::string format_metric(double value, int sig_digits = 0);

/// A JSON value. Objects preserve insertion order (artifact diffs stay
/// readable); lookup is linear, which is fine at artifact sizes.
class json {
 public:
  enum class kind { null, boolean, number, string, array, object };

  // Scalars convert implicitly so artifact-building code reads naturally
  // (result["n"] = 400; result["engine"] = "census";). Unsigned integers
  // are kept exact (not routed through double, which silently corrupts
  // values above 2^53 — e.g. a 64-bit master seed the artifact must
  // record faithfully); they serialize as plain JSON integers and the
  // parser restores them exactly.
  json() : kind_(kind::null) {}
  json(bool value) : kind_(kind::boolean), bool_(value) {}
  json(double value) : kind_(kind::number), number_(value) {}
  json(int value) : json(static_cast<double>(value)) {}
  json(std::int64_t value) : json(static_cast<double>(value)) {}
  json(std::uint64_t value)
      : kind_(kind::number),
        number_(static_cast<double>(value)),
        uint_(value),
        exact_uint_(true) {}
  json(std::string value) : kind_(kind::string), string_(std::move(value)) {}
  json(const char* value) : json(std::string(value)) {}

  [[nodiscard]] static json array() {
    json value;
    value.kind_ = kind::array;
    return value;
  }
  [[nodiscard]] static json object() {
    json value;
    value.kind_ = kind::object;
    return value;
  }

  [[nodiscard]] kind type() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == kind::null; }
  [[nodiscard]] bool is_number() const { return kind_ == kind::number; }
  [[nodiscard]] bool is_string() const { return kind_ == kind::string; }
  [[nodiscard]] bool is_array() const { return kind_ == kind::array; }
  [[nodiscard]] bool is_object() const { return kind_ == kind::object; }

  /// Scalar accessors; each checks the stored kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  /// The exact unsigned value; requires a number written as an unsigned
  /// integer (constructed from uint64 or parsed from a pure-digit token).
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] bool is_exact_uint() const {
    return kind_ == kind::number && exact_uint_;
  }

  /// Array access. push_back requires kind array.
  void push_back(json value);
  [[nodiscard]] const std::vector<json>& items() const;

  /// Object access: operator[] inserts a null member on first use (requires
  /// kind object or null, which is promoted); find returns nullptr when the
  /// key is absent.
  json& operator[](std::string_view key);
  [[nodiscard]] const json* find(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, json>>& members()
      const;

  /// Number of elements (array) or members (object); 0 for scalars.
  [[nodiscard]] std::size_t size() const;

  /// Serializes with 2-space indentation when `indent` is true, compact
  /// otherwise. Keys and strings are escaped per RFC 8259; non-finite
  /// numbers serialize as null (JSON has no inf/nan).
  void dump(std::ostream& out, bool indent = true) const;
  [[nodiscard]] std::string dump_string(bool indent = true) const;

  /// Resource bounds for parsing untrusted input (network bodies, uploaded
  /// checkpoints). `max_bytes == 0` means unlimited; `max_depth` is the
  /// deepest admitted container nesting — `max_depth == 4` accepts
  /// `[[[[1]]]]` and rejects a fifth level (the parser recurses once per
  /// level, so this is also the stack bound). Scalars don't count.
  struct parse_limits {
    std::size_t max_bytes = 0;
    std::size_t max_depth = 128;
  };

  /// Strict parser for the subset this writer emits (standard JSON with
  /// \uXXXX escapes, including surrogate pairs). Throws ppg::invariant_error
  /// on malformed input, trailing garbage, or nesting deeper than 128.
  [[nodiscard]] static json parse(std::string_view text);

  /// parse() with explicit resource bounds: rejects input larger than
  /// `limits.max_bytes` (when nonzero) or nested deeper than
  /// `limits.max_depth` with a pointed ppg::invariant_error *before* doing
  /// unbounded work — the entry point for untrusted network input
  /// (ppg-serve request bodies).
  [[nodiscard]] static json parse(std::string_view text,
                                  const parse_limits& limits);

  friend bool operator==(const json& a, const json& b);
  friend bool operator!=(const json& a, const json& b) { return !(a == b); }

 private:
  void dump_impl(std::ostream& out, bool indent, int depth) const;

  kind kind_ = kind::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::uint64_t uint_ = 0;       // exact value when exact_uint_
  bool exact_uint_ = false;
  std::string string_;
  std::vector<json> array_;
  std::vector<std::pair<std::string, json>> object_;
};

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes): ", \, and control characters become escape sequences.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Strict-access helpers for schema'd documents (engine snapshots,
/// checkpoint headers, spec recipes): each names the offending key in the
/// ppg::invariant_error it throws, so a corrupt or hand-edited checkpoint
/// fails with a message instead of a silent default. `where` prefixes the
/// message with the document being parsed (e.g. "checkpoint spec").
[[nodiscard]] const json& json_require(const json& object,
                                       std::string_view key,
                                       std::string_view where);
[[nodiscard]] std::uint64_t json_require_uint(const json& object,
                                              std::string_view key,
                                              std::string_view where);
[[nodiscard]] double json_require_number(const json& object,
                                         std::string_view key,
                                         std::string_view where);
[[nodiscard]] const std::string& json_require_string(const json& object,
                                                     std::string_view key,
                                                     std::string_view where);
[[nodiscard]] bool json_require_bool(const json& object, std::string_view key,
                                     std::string_view where);
[[nodiscard]] const std::vector<json>& json_require_array(
    const json& object, std::string_view key, std::string_view where);

/// Strict shape check: `object` must be an object whose member set is
/// exactly `keys` (unknown keys are rejected — a key this version does not
/// understand could change the meaning of the state being restored).
void json_require_keys(const json& object,
                       std::initializer_list<std::string_view> keys,
                       std::string_view where);

/// Reads an array of exact unsigned integers (a census, an RNG state).
[[nodiscard]] std::vector<std::uint64_t> json_require_uint_array(
    const json& object, std::string_view key, std::string_view where);

/// Writes a vector of unsigned integers as a JSON array of exact integers.
[[nodiscard]] json json_uint_array(const std::vector<std::uint64_t>& values);

}  // namespace ppg
