#include "ppg/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace ppg {

thread_pool::thread_pool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void thread_pool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void thread_pool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void thread_pool::run_sharded(
    std::size_t count,
    const std::function<void(std::size_t worker, std::size_t index)>& body) {
  if (count == 0) return;
  // Per-call completion state: shared_ptr keeps it alive until the last
  // task's final notify even if the caller's wait races ahead.
  struct job_state {
    std::atomic<std::size_t> next{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t live_tasks = 0;
  };
  auto job = std::make_shared<job_state>();
  const std::size_t tasks = std::min(size(), count);
  job->live_tasks = tasks;
  for (std::size_t w = 0; w < tasks; ++w) {
    // `body` is captured by reference: the caller blocks below until every
    // task has exited, so the reference outlives all uses.
    submit([job, w, count, &body] {
      for (;;) {
        const std::size_t i =
            job->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        body(w, i);
      }
      {
        const std::lock_guard<std::mutex> lock(job->done_mutex);
        --job->live_tasks;
      }
      job->done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(job->done_mutex);
  job->done_cv.wait(lock, [&] { return job->live_tasks == 0; });
}

std::size_t thread_pool::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t thread_pool::active() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

}  // namespace ppg
