#include "ppg/util/rng.hpp"

#include <cmath>

namespace ppg {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) {
  // splitmix64 guarantees the state is not all-zero (a fixed point of
  // xoshiro) for any seed, since its outputs are a bijection of the counter.
  for (auto& word : state_) {
    word = splitmix64(seed);
  }
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;  // unreachable in practice; defensive against UB in rotl
  }
}

rng::result_type rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t rng::next_below(std::uint64_t bound) {
  PPG_CHECK(bound >= 1, "next_below requires a positive bound");
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = (*this)();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t rng::next_in(std::int64_t lo, std::int64_t hi) {
  PPG_CHECK(lo <= hi, "next_in requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) {
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double rng::next_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool rng::next_bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t rng::next_geometric(double p) {
  PPG_CHECK(p > 0.0 && p <= 1.0, "next_geometric requires p in (0, 1]");
  if (p == 1.0) return 0;
  // Inversion: floor(log(U) / log1p(-p)) for U uniform on (0, 1). log1p
  // keeps the denominator accurate for p near 0, where log(1-p) would lose
  // all precision to cancellation.
  double u = next_double();
  while (u <= 0.0) u = next_double();
  const double skips = std::floor(std::log(u) / std::log1p(-p));
  // For tiny p the inversion can exceed the 64-bit range (p = 1e-300 gives
  // skips ~ 1e302); the double -> uint64 cast would then be undefined.
  // Clamp to the largest representable skip count — callers always cap a
  // geometric draw at a finite step budget, so the clamp is unobservable.
  constexpr double max_skips = 18446744073709549568.0;  // largest ok double
  if (skips >= max_skips) return static_cast<std::uint64_t>(max_skips);
  return static_cast<std::uint64_t>(skips);
}

rng rng::split() {
  return rng((*this)());
}

void rng::restore(const std::array<std::uint64_t, 4>& state) {
  PPG_CHECK(state[0] != 0 || state[1] != 0 || state[2] != 0 || state[3] != 0,
            "rng::restore: the all-zero state is not a reachable xoshiro "
            "state (corrupt checkpoint?)");
  state_ = state;
}

std::uint64_t derive_stream_seed(std::uint64_t master, std::uint64_t stream) {
  // Jump the splitmix64 counter directly to position `stream`: adding the
  // golden-ratio increment (stream+1) times is one multiplication.
  std::uint64_t counter = master + stream * 0x9e3779b97f4a7c15ull;
  return splitmix64(counter);
}

rng make_stream_rng(std::uint64_t master, std::uint64_t stream) {
  return rng(derive_stream_seed(master, stream));
}

}  // namespace ppg
