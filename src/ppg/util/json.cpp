#include "ppg/util/json.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "ppg/util/error.hpp"

namespace ppg {

std::string format_metric(double value, int sig_digits) {
  PPG_CHECK(sig_digits >= 0, "sig_digits must be non-negative");
  if (!std::isfinite(value)) {
    return value != value ? "nan" : (value > 0 ? "inf" : "-inf");
  }
  if (sig_digits > 0 && value != 0.0) {
    // Round to sig_digits significant digits, then print the rounded value
    // in its own shortest form (so 2.0 at 3 digits is "2", not "2.00", and
    // the printed string parses back to exactly the rounded double).
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*e", sig_digits - 1, value);
    value = std::strtod(buffer, nullptr);
  }
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  PPG_CHECK(result.ec == std::errc(), "to_chars failed on a double");
  return std::string(buffer, result.ptr);
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool json::as_bool() const {
  PPG_CHECK(kind_ == kind::boolean, "json value is not a boolean");
  return bool_;
}

double json::as_number() const {
  PPG_CHECK(kind_ == kind::number, "json value is not a number");
  return number_;
}

const std::string& json::as_string() const {
  PPG_CHECK(kind_ == kind::string, "json value is not a string");
  return string_;
}

std::uint64_t json::as_uint64() const {
  PPG_CHECK(is_exact_uint(),
            "json value is not an exact unsigned integer");
  return uint_;
}

void json::push_back(json value) {
  PPG_CHECK(kind_ == kind::array, "push_back requires a json array");
  array_.push_back(std::move(value));
}

const std::vector<json>& json::items() const {
  PPG_CHECK(kind_ == kind::array, "items() requires a json array");
  return array_;
}

json& json::operator[](std::string_view key) {
  if (kind_ == kind::null) kind_ = kind::object;
  PPG_CHECK(kind_ == kind::object, "operator[] requires a json object");
  for (auto& [name, value] : object_) {
    if (name == key) return value;
  }
  object_.emplace_back(std::string(key), json());
  return object_.back().second;
}

const json* json::find(std::string_view key) const {
  PPG_CHECK(kind_ == kind::object, "find() requires a json object");
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, json>>& json::members() const {
  PPG_CHECK(kind_ == kind::object, "members() requires a json object");
  return object_;
}

std::size_t json::size() const {
  if (kind_ == kind::array) return array_.size();
  if (kind_ == kind::object) return object_.size();
  return 0;
}

void json::dump(std::ostream& out, bool indent) const {
  dump_impl(out, indent, 0);
}

std::string json::dump_string(bool indent) const {
  std::ostringstream out;
  dump(out, indent);
  return out.str();
}

namespace {

void write_newline_indent(std::ostream& out, bool indent, int depth) {
  if (!indent) return;
  out << '\n';
  for (int i = 0; i < depth; ++i) out << "  ";
}

}  // namespace

void json::dump_impl(std::ostream& out, bool indent, int depth) const {
  switch (kind_) {
    case kind::null:
      out << "null";
      break;
    case kind::boolean:
      out << (bool_ ? "true" : "false");
      break;
    case kind::number:
      if (exact_uint_) {
        out << uint_;  // exact: never routed through double
      } else if (std::isfinite(number_)) {
        out << format_metric(number_);
      } else {
        out << "null";  // JSON has no representation for inf/nan
      }
      break;
    case kind::string:
      out << '"' << json_escape(string_) << '"';
      break;
    case kind::array: {
      if (array_.empty()) {
        out << "[]";
        break;
      }
      out << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out << ',';
        write_newline_indent(out, indent, depth + 1);
        array_[i].dump_impl(out, indent, depth + 1);
      }
      write_newline_indent(out, indent, depth);
      out << ']';
      break;
    }
    case kind::object: {
      if (object_.empty()) {
        out << "{}";
        break;
      }
      out << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out << ',';
        write_newline_indent(out, indent, depth + 1);
        out << '"' << json_escape(object_[i].first) << "\":";
        if (indent) out << ' ';
        object_[i].second.dump_impl(out, indent, depth + 1);
      }
      write_newline_indent(out, indent, depth);
      out << '}';
      break;
    }
  }
}

bool operator==(const json& a, const json& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case json::kind::null:
      return true;
    case json::kind::boolean:
      return a.bool_ == b.bool_;
    case json::kind::number:
      // Numeric equality: exact-vs-exact compares the integers, otherwise
      // the double values (so 400 written from int equals 400 re-parsed
      // as an exact integer).
      if (a.exact_uint_ && b.exact_uint_) return a.uint_ == b.uint_;
      return a.number_ == b.number_;
    case json::kind::string:
      return a.string_ == b.string_;
    case json::kind::array:
      return a.array_ == b.array_;
    case json::kind::object:
      return a.object_ == b.object_;
  }
  return false;
}

namespace {

/// Strict recursive-descent JSON parser over a string_view.
class json_parser {
 public:
  json_parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  json parse_document() {
    json value = parse_value(0);
    skip_whitespace();
    PPG_CHECK(pos_ == text_.size(), "trailing characters after JSON value");
    return value;
  }

 private:
  json parse_value(std::size_t depth) {
    skip_whitespace();
    PPG_CHECK(pos_ < text_.size(), "unexpected end of JSON input");
    switch (text_[pos_]) {
      // `depth` containers already enclose this value, so opening another
      // is legal only while depth < max (max_depth counts container levels;
      // scalars are free).
      case '{':
        check_depth(depth);
        return parse_object(depth);
      case '[':
        check_depth(depth);
        return parse_array(depth);
      case '"':
        return json(parse_string());
      case 't':
        expect_literal("true");
        return json(true);
      case 'f':
        expect_literal("false");
        return json(false);
      case 'n':
        expect_literal("null");
        return json();
      default:
        return parse_number();
    }
  }

  void check_depth(std::size_t depth) const {
    PPG_CHECK(depth < max_depth_,
              "JSON nesting deeper than " + std::to_string(max_depth_) +
                  " levels");
  }

  json parse_object(std::size_t depth) {
    ++pos_;  // consume '{'
    json value = json::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      PPG_CHECK(peek() == '"', "expected a quoted object key");
      std::string key = parse_string();
      skip_whitespace();
      PPG_CHECK(peek() == ':', "expected ':' after object key");
      ++pos_;
      PPG_CHECK(value.find(key) == nullptr, "duplicate object key: " + key);
      value[key] = parse_value(depth + 1);
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      PPG_CHECK(c == '}', "expected ',' or '}' in object");
      ++pos_;
      return value;
    }
  }

  json parse_array(std::size_t depth) {
    ++pos_;  // consume '['
    json value = json::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      PPG_CHECK(c == ']', "expected ',' or ']' in array");
      ++pos_;
      return value;
    }
  }

  std::string parse_string() {
    ++pos_;  // consume opening quote
    std::string out;
    while (true) {
      PPG_CHECK(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        PPG_CHECK(static_cast<unsigned char>(c) >= 0x20,
                  "raw control character in JSON string");
        out += c;
        continue;
      }
      PPG_CHECK(pos_ < text_.size(), "unterminated escape sequence");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            PPG_CHECK(pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                          text_[pos_ + 1] == 'u',
                      "lone high surrogate in JSON string");
            pos_ += 2;
            const unsigned low = parse_hex4();
            PPG_CHECK(low >= 0xdc00 && low <= 0xdfff,
                      "invalid low surrogate in JSON string");
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else {
            PPG_CHECK(code < 0xdc00 || code > 0xdfff,
                      "lone low surrogate in JSON string");
          }
          append_utf8(out, code);
          break;
        }
        default:
          PPG_CHECK(false, std::string("invalid escape character: \\") + esc);
      }
    }
  }

  unsigned parse_hex4() {
    PPG_CHECK(pos_ + 4 <= text_.size(), "truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        PPG_CHECK(false, "invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  json parse_number() {
    const std::size_t start = pos_;
    bool digits_only = true;
    if (peek() == '-') {
      digits_only = false;
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        digits_only = false;
      }
      ++pos_;
    }
    PPG_CHECK(pos_ > start, "expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    // A pure-digit token that fits uint64 is restored exactly (so 64-bit
    // seeds survive a write/parse round trip); everything else is a
    // double.
    if (digits_only && token.size() <= 20) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long exact = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return json(static_cast<std::uint64_t>(exact));
      }
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    PPG_CHECK(end == token.c_str() + token.size(),
              "malformed JSON number: " + token);
    return json(value);
  }

  void expect_literal(std::string_view literal) {
    PPG_CHECK(text_.substr(pos_, literal.size()) == literal,
              "malformed JSON literal");
    pos_ += literal.size();
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    PPG_CHECK(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
};

}  // namespace

json json::parse(std::string_view text) {
  return parse(text, parse_limits{});
}

json json::parse(std::string_view text, const parse_limits& limits) {
  PPG_CHECK(limits.max_depth >= 1, "json parse_limits: max_depth must be >= 1");
  PPG_CHECK(limits.max_bytes == 0 || text.size() <= limits.max_bytes,
            "JSON input of " + std::to_string(text.size()) +
                " bytes exceeds the " + std::to_string(limits.max_bytes) +
                "-byte limit");
  return json_parser(text, limits.max_depth).parse_document();
}

namespace {

std::string describe(std::string_view where, std::string_view key,
                     const char* what) {
  std::string message(where);
  message += ": ";
  message += what;
  message += " '";
  message += key;
  message += "'";
  return message;
}

}  // namespace

const json& json_require(const json& object, std::string_view key,
                         std::string_view where) {
  PPG_CHECK(object.is_object(),
            std::string(where) + ": expected a JSON object");
  const json* member = object.find(key);
  PPG_CHECK(member != nullptr, describe(where, key, "missing key"));
  return *member;
}

std::uint64_t json_require_uint(const json& object, std::string_view key,
                                std::string_view where) {
  const json& member = json_require(object, key, where);
  PPG_CHECK(member.is_exact_uint(),
            describe(where, key, "expected an unsigned integer at key"));
  return member.as_uint64();
}

double json_require_number(const json& object, std::string_view key,
                           std::string_view where) {
  const json& member = json_require(object, key, where);
  PPG_CHECK(member.is_number(),
            describe(where, key, "expected a number at key"));
  return member.as_number();
}

const std::string& json_require_string(const json& object,
                                       std::string_view key,
                                       std::string_view where) {
  const json& member = json_require(object, key, where);
  PPG_CHECK(member.is_string(),
            describe(where, key, "expected a string at key"));
  return member.as_string();
}

bool json_require_bool(const json& object, std::string_view key,
                       std::string_view where) {
  const json& member = json_require(object, key, where);
  PPG_CHECK(member.type() == json::kind::boolean,
            describe(where, key, "expected a boolean at key"));
  return member.as_bool();
}

const std::vector<json>& json_require_array(const json& object,
                                            std::string_view key,
                                            std::string_view where) {
  const json& member = json_require(object, key, where);
  PPG_CHECK(member.is_array(),
            describe(where, key, "expected an array at key"));
  return member.items();
}

void json_require_keys(const json& object,
                       std::initializer_list<std::string_view> keys,
                       std::string_view where) {
  PPG_CHECK(object.is_object(),
            std::string(where) + ": expected a JSON object");
  for (const auto key : keys) {
    (void)json_require(object, key, where);
  }
  for (const auto& [name, value] : object.members()) {
    (void)value;
    bool known = false;
    for (const auto key : keys) {
      if (name == key) {
        known = true;
        break;
      }
    }
    PPG_CHECK(known, describe(where, name, "unknown key"));
  }
}

std::vector<std::uint64_t> json_require_uint_array(const json& object,
                                                   std::string_view key,
                                                   std::string_view where) {
  const auto& items = json_require_array(object, key, where);
  std::vector<std::uint64_t> values;
  values.reserve(items.size());
  for (const auto& item : items) {
    PPG_CHECK(item.is_exact_uint(),
              describe(where, key, "expected unsigned integers in array"));
    values.push_back(item.as_uint64());
  }
  return values;
}

json json_uint_array(const std::vector<std::uint64_t>& values) {
  json array = json::array();
  for (const auto value : values) {
    array.push_back(value);
  }
  return array;
}

}  // namespace ppg
