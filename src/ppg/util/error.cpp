#include "ppg/util/error.hpp"

#include <sstream>

namespace ppg::detail {

void throw_invariant(const char* expr, const char* file, int line,
                     const std::string& message) {
  std::ostringstream out;
  out << "invariant violated: " << message << " [" << expr << " at " << file
      << ":" << line << "]";
  throw invariant_error(out.str());
}

}  // namespace ppg::detail
