// Error handling primitives for the ppg library.
//
// The library is used both from tests (where throwing is convenient) and from
// long-running simulations (where a precise message matters). All invariant
// violations throw ppg::invariant_error with file/line context.
#pragma once

#include <stdexcept>
#include <string>

namespace ppg {

/// Exception thrown when a library invariant or precondition is violated.
class invariant_error : public std::logic_error {
 public:
  explicit invariant_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& message);
}  // namespace detail

}  // namespace ppg

/// Checks a precondition/invariant; throws ppg::invariant_error on failure.
/// Unlike assert(), this is active in all build types: simulation correctness
/// must not depend on the build configuration.
#define PPG_CHECK(expr, message)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::ppg::detail::throw_invariant(#expr, __FILE__, __LINE__, (message)); \
    }                                                                       \
  } while (false)

/// Debug-only variant of PPG_CHECK for hot-path preconditions: active when
/// NDEBUG is not defined (Debug / sanitizer builds), compiled out entirely in
/// Release. Use only where the check is on a per-interaction fast path and
/// the invariant is already enforced at a boundary (construction, kernel
/// validation); everything else should use PPG_CHECK.
#ifdef NDEBUG
#define PPG_DCHECK(expr, message) \
  do {                            \
  } while (false)
#else
#define PPG_DCHECK(expr, message) PPG_CHECK(expr, message)
#endif
