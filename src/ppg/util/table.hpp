// Minimal text-table and CSV writers used by the bench harness to print
// paper-style result tables (measured vs. predicted rows).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ppg {

/// Accumulates rows of string cells and renders an aligned ASCII table.
/// All formatting is done at render time; cells are stored verbatim.
class text_table {
 public:
  explicit text_table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with column alignment and a header underline.
  void print(std::ostream& out) const;

  /// Renders as comma-separated values (no quoting; cells must not contain
  /// commas — enforced when adding rows).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
[[nodiscard]] std::string fmt(double value, int precision = 4);

/// Formats a double in scientific notation with the given precision.
[[nodiscard]] std::string fmt_sci(double value, int precision = 3);

/// Formats an integral count with thousands separators (e.g. 1_250_000).
[[nodiscard]] std::string fmt_count(std::uint64_t value);

}  // namespace ppg
