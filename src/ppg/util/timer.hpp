// Wall-clock timing helper for the bench harness.
#pragma once

#include <chrono>

namespace ppg {

/// Simple monotonic stopwatch. Started on construction.
class timer {
 public:
  timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ppg
