// A small fixed-size worker pool for CPU-bound simulation batches.
//
// Design constraints, in order: (1) determinism of the *caller* must never
// depend on scheduling — the pool only promises that every submitted task
// runs exactly once and that wait_idle() observes all side effects; (2) zero
// dependencies beyond <thread>; (3) graceful teardown (the destructor drains
// the queue). Throughput niceties (work stealing, task batching) are left to
// future scaling PRs — the batch engine amortizes task-queue overhead by
// submitting one task per worker, not one per replica.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppg {

class thread_pool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (itself clamped to at least 1).
  explicit thread_pool(std::size_t num_threads = 0);

  /// Joins all workers after finishing every queued task.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Enqueues a task. Tasks must not throw; wrap fallible work and capture
  /// errors explicitly (the batch engine does).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  /// Runs `body(worker, index)` exactly once for every index in [0, count),
  /// spread across min(size(), count) pool tasks, and blocks the caller
  /// until all indices have finished. `worker` is the task's slot in
  /// [0, min(size(), count)) — stable for the task's lifetime, so callers
  /// can hand each concurrent task its own scratch buffer. Indices are
  /// claimed from a shared counter, so which worker runs which index is
  /// scheduling-dependent; only use `worker` for scratch, never for
  /// index-dependent results. Completion is tracked per call (not via
  /// wait_idle), so a shared pool with unrelated queued tasks still works.
  void run_sharded(std::size_t count,
                   const std::function<void(std::size_t worker,
                                            std::size_t index)>& body);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker. A point-in-time
  /// reading (the queue drains concurrently); exact only when the caller
  /// knows no worker is dequeuing — its consumers (the ppg-serve /stats
  /// endpoint, the fair scheduler's depth probe) want a load gauge, not a
  /// synchronization primitive.
  [[nodiscard]] std::size_t queued() const;

  /// Tasks currently executing on a worker. Same point-in-time caveat as
  /// queued(); queued() + active() == 0 after wait_idle() returns with no
  /// concurrent submitters, which is what the determinism tests pin.
  [[nodiscard]] std::size_t active() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ppg
