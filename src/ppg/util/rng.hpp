// Deterministic pseudo-random number generation.
//
// All stochastic components of the library draw from ppg::rng, a xoshiro256**
// generator seeded through splitmix64. We implement the generator and the
// derived distributions (bounded integers, reals, Bernoulli, geometric)
// ourselves instead of using <random> distributions so that simulation results
// are bit-reproducible across standard libraries and platforms.
#pragma once

#include <array>
#include <cstdint>

#include "ppg/util/error.hpp"

namespace ppg {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it can also feed <random> if needed.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64,
  /// as recommended by the xoshiro authors.
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next 64 uniformly random bits.
  result_type operator()();

  /// Uniform integer in [0, bound) via Lemire's unbiased multiply-shift
  /// rejection method. Requires bound >= 1.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double next_double();

  /// Bernoulli trial: true with probability p (clamped to [0, 1]).
  bool next_bernoulli(double p);

  /// Number of failures before the first success of a Bernoulli(p) sequence
  /// (support {0, 1, 2, ...}). Requires p in (0, 1]. Draws whose inversion
  /// exceeds the 64-bit range (possible for p below ~1e-18) are clamped to
  /// the largest representable count, so the cast is always defined;
  /// callers that cap a draw at a step budget never observe the clamp.
  std::uint64_t next_geometric(double p);

  /// Derives an independent generator (for sub-streams) by jumping the state
  /// through splitmix64 of a fresh draw; cheap and collision-resistant enough
  /// for simulation sub-streams.
  rng split();

  /// The full 256-bit generator state — the generator's exact position in
  /// its stream. save() on one process and restore() on another continues
  /// the identical draw sequence; this is the substrate of the engines'
  /// bit-exact checkpoint/resume contract (pp/checkpoint.hpp).
  [[nodiscard]] std::array<std::uint64_t, 4> save() const { return state_; }

  /// Restores a state previously captured by save(). The all-zero state is
  /// rejected: it is xoshiro's fixed point and is never produced by seeding
  /// or stepping, so it can only mean a corrupt checkpoint.
  void restore(const std::array<std::uint64_t, 4>& state);

 private:
  std::array<std::uint64_t, 4> state_;
};

/// The `stream`-th derived seed of a master seed: the (stream+1)-th output of
/// splitmix64 started at `master`. Counter-based (O(1) per index), so replica
/// i's seed does not depend on how many other replicas exist or in what order
/// they are created — the foundation of the batch engine's determinism.
/// splitmix64's output function is a bijection of its counter, so distinct
/// streams of one master never collide.
[[nodiscard]] std::uint64_t derive_stream_seed(std::uint64_t master,
                                               std::uint64_t stream);

/// Generator for replica `stream` of `master`: rng(derive_stream_seed(...)).
[[nodiscard]] rng make_stream_rng(std::uint64_t master, std::uint64_t stream);

}  // namespace ppg
