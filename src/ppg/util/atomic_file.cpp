#include "ppg/util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ppg {
namespace {

std::string errno_text(const char* step) {
  return std::string(step) + ": " + std::strerror(errno);
}

/// The directory part of `path` ("." when there is none) — what must be
/// fsynced for a rename inside it to survive a crash.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

ssize_t file_ops::write_fd(int fd, const void* data, std::size_t size) {
  return ::write(fd, data, size);
}

int file_ops::fsync_fd(int fd) { return ::fsync(fd); }

int file_ops::rename_file(const std::string& from, const std::string& to) {
  return ::rename(from.c_str(), to.c_str());
}

file_ops& default_file_ops() {
  static file_ops ops;
  return ops;
}

bool atomic_write_file(const std::string& path, std::string_view bytes,
                       std::string* error, file_ops& ops) {
  const std::string temp = path + ".tmp";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = errno_text("open temp");
    return false;
  }

  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t wrote =
        ops.write_fd(fd, bytes.data() + written, bytes.size() - written);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = errno_text("write");
      ::close(fd);
      ::unlink(temp.c_str());
      return false;
    }
    if (wrote == 0) {
      // A zero-byte write that is not EOF-like progress would loop forever;
      // treat it as the device refusing the data.
      if (error != nullptr) *error = "write: no progress";
      ::close(fd);
      ::unlink(temp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(wrote);
  }

  if (ops.fsync_fd(fd) != 0) {
    if (error != nullptr) *error = errno_text("fsync");
    ::close(fd);
    ::unlink(temp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    if (error != nullptr) *error = errno_text("close");
    ::unlink(temp.c_str());
    return false;
  }

  if (ops.rename_file(temp, path) != 0) {
    if (error != nullptr) *error = errno_text("rename");
    ::unlink(temp.c_str());
    return false;
  }

  // fsync the directory so the rename (the commit point) is itself durable.
  // Failure here is reported — the data likely survives, but the caller
  // asked for a durability guarantee we cannot certify.
  const int dir_fd = ::open(parent_dir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    if (error != nullptr) *error = errno_text("open dir");
    return false;
  }
  const bool dir_synced = ops.fsync_fd(dir_fd) == 0;
  if (!dir_synced && error != nullptr) *error = errno_text("fsync dir");
  ::close(dir_fd);
  return dir_synced;
}

bool read_file(const std::string& path, std::string* out, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) *error = errno_text("open");
    return false;
  }
  out->clear();
  char chunk[65536];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = errno_text("read");
      ::close(fd);
      return false;
    }
    if (got == 0) break;
    out->append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return true;
}

}  // namespace ppg
