#include "ppg/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "ppg/util/error.hpp"

namespace ppg {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PPG_CHECK(!headers_.empty(), "a table needs at least one column");
}

void text_table::add_row(std::vector<std::string> cells) {
  PPG_CHECK(cells.size() == headers_.size(),
            "row width must match header width");
  for (const auto& cell : cells) {
    PPG_CHECK(cell.find(',') == std::string::npos,
              "table cells must not contain commas (CSV output)");
  }
  rows_.push_back(std::move(cells));
}

void text_table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
          << row[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void text_table::print_csv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << row[c];
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string fmt_sci(double value, int precision) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(precision) << value;
  return out.str();
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string grouped;
  grouped.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) {
      grouped.push_back('_');
    }
    grouped.push_back(digits[i]);
  }
  return grouped;
}

}  // namespace ppg
