#include "ppg/util/timer.hpp"

// timer is header-only; this translation unit anchors the target so every
// header in util/ has a corresponding compiled unit (keeps include hygiene
// checked by the build).
