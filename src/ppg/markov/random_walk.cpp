#include "ppg/markov/random_walk.hpp"

#include <cmath>

#include "ppg/stats/distributions.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

void check_params(walk_params params) {
  PPG_CHECK(params.up > 0.0 && params.down > 0.0,
            "walk needs positive up/down probabilities");
  PPG_CHECK(params.up + params.down <= 1.0 + 1e-12,
            "walk probabilities exceed 1");
}

}  // namespace

double expected_absorption_time(walk_params params, std::int64_t span,
                                std::int64_t start) {
  check_params(params);
  PPG_CHECK(span >= 1, "absorption span must be positive");
  PPG_CHECK(start >= 0 && start <= span, "start outside the interval");
  if (start == 0 || start == span) return 0.0;
  const double a = params.up;
  const double b = params.down;
  const double move = a + b;  // probability of a non-lazy step
  const auto z = static_cast<double>(start);
  const auto n = static_cast<double>(span);
  // Conditional on moving, the walk is a standard gambler's ruin with
  // p = a/(a+b); the expected number of *moves* has the textbook closed
  // form, and each move takes 1/(a+b) steps in expectation.
  const double p = a / move;
  const double q = b / move;
  double moves = 0.0;
  if (std::abs(a - b) < 1e-15) {
    moves = z * (n - z);
  } else {
    const double r = q / p;
    moves = z / (q - p) - (n / (q - p)) * (1.0 - std::pow(r, z)) /
                              (1.0 - std::pow(r, n));
  }
  return moves / move;
}

double upper_absorption_probability(walk_params params, std::int64_t span,
                                    std::int64_t start) {
  check_params(params);
  PPG_CHECK(span >= 1, "absorption span must be positive");
  PPG_CHECK(start >= 0 && start <= span, "start outside the interval");
  const double a = params.up;
  const double b = params.down;
  const auto z = static_cast<double>(start);
  const auto n = static_cast<double>(span);
  if (std::abs(a - b) < 1e-15) {
    return z / n;
  }
  const double r = b / a;
  return (1.0 - std::pow(r, z)) / (1.0 - std::pow(r, n));
}

std::uint64_t simulate_absorption_time(walk_params params, std::int64_t span,
                                       std::int64_t start, rng& gen) {
  check_params(params);
  PPG_CHECK(span >= 1, "absorption span must be positive");
  PPG_CHECK(start >= 0 && start <= span, "start outside the interval");
  std::int64_t position = start;
  std::uint64_t steps = 0;
  while (position != 0 && position != span) {
    const double u = gen.next_double();
    if (u < params.up) {
      ++position;
    } else if (u < params.up + params.down) {
      --position;
    }
    ++steps;
  }
  return steps;
}

finite_chain reflecting_walk_chain(std::size_t size, walk_params params) {
  check_params(params);
  PPG_CHECK(size >= 2, "reflecting walk needs at least two states");
  finite_chain chain(size);
  for (std::size_t j = 0; j < size; ++j) {
    double stay = 1.0 - params.up - params.down;
    if (j + 1 < size) {
      chain.add_transition(j, j + 1, params.up);
    } else {
      stay += params.up;  // truncation: the attempted increment holds
    }
    if (j > 0) {
      chain.add_transition(j, j - 1, params.down);
    } else {
      stay += params.down;
    }
    if (stay > 0.0) {
      chain.add_transition(j, j, stay);
    }
  }
  return chain;
}

std::vector<double> reflecting_walk_stationary(std::size_t size,
                                               walk_params params) {
  check_params(params);
  return geometric_weights(size, params.up / params.down);
}

}  // namespace ppg
