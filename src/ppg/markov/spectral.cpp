#include "ppg/markov/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "ppg/util/error.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {

spectral_result estimate_slem(const finite_chain& chain,
                              const std::vector<double>& pi, double tol,
                              std::size_t max_iterations,
                              double reversibility_tol) {
  const std::size_t n = chain.num_states();
  PPG_CHECK(pi.size() == n, "stationary size mismatch");
  PPG_CHECK(chain.detailed_balance_residual(pi) <= reversibility_tol,
            "chain is not reversible w.r.t. pi");

  // Top eigenvector of the symmetrized operator: v = sqrt(pi).
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    PPG_CHECK(pi[i] >= 0.0, "negative stationary mass");
    v[i] = std::sqrt(pi[i]);
  }

  // Apply S = D^{1/2} P D^{-1/2}: (Sx)_i = sum_j sqrt(pi_i) P(i,j)
  // x_j / sqrt(pi_j). Iterate on x with the v-component deflated; the
  // Rayleigh quotient then converges to the second eigenvalue in absolute
  // value. (S is symmetric for reversible chains, so power iteration on the
  // deflated operator is sound.)
  auto apply_s = [&](const std::vector<double>& x) {
    std::vector<double> out(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (v[i] == 0.0) continue;
      double sum = 0.0;
      for (const auto& t : chain.row(i)) {
        if (v[t.target] == 0.0) continue;
        sum += t.probability * x[t.target] / v[t.target];
      }
      out[i] = v[i] * sum;
    }
    return out;
  };
  auto deflate = [&](std::vector<double>& x) {
    double proj = 0.0;
    for (std::size_t i = 0; i < n; ++i) proj += x[i] * v[i];
    for (std::size_t i = 0; i < n; ++i) x[i] -= proj * v[i];
  };
  auto norm = [&](const std::vector<double>& x) {
    double sum = 0.0;
    for (const double xi : x) sum += xi * xi;
    return std::sqrt(sum);
  };

  // Deterministic pseudo-random start vector (decorrelated from v).
  rng gen(0xe16e25eedull);
  std::vector<double> x(n);
  for (auto& xi : x) xi = gen.next_double() - 0.5;
  deflate(x);
  double x_norm = norm(x);
  PPG_CHECK(x_norm > 0.0, "degenerate start vector");
  for (auto& xi : x) xi /= x_norm;

  spectral_result result;
  double previous = 0.0;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    auto next = apply_s(x);
    deflate(next);  // re-deflate to control round-off drift
    const double next_norm = norm(next);
    result.iterations = it + 1;
    if (next_norm == 0.0) {
      // x was (numerically) orthogonal to all non-top eigenspace mass.
      result.slem = 0.0;
      result.converged = true;
      break;
    }
    const double estimate = next_norm;  // |lambda_2| estimate (since |x|=1)
    for (std::size_t i = 0; i < n; ++i) x[i] = next[i] / next_norm;
    if (it > 8 && std::abs(estimate - previous) <= tol) {
      result.slem = estimate;
      result.converged = true;
      break;
    }
    previous = estimate;
    result.slem = estimate;
  }
  result.slem = std::min(result.slem, 1.0);
  result.spectral_gap = 1.0 - result.slem;
  PPG_CHECK(result.spectral_gap > 0.0,
            "zero spectral gap: chain may be periodic or reducible");
  result.relaxation_time = 1.0 / result.spectral_gap;
  return result;
}

spectral_mixing_bounds mixing_bounds_from_relaxation(
    const spectral_result& spectral, const std::vector<double>& pi,
    double eps) {
  PPG_CHECK(eps > 0.0 && eps < 1.0, "eps must lie in (0, 1)");
  double pi_min = 1.0;
  for (const double p : pi) {
    if (p > 0.0) pi_min = std::min(pi_min, p);
  }
  spectral_mixing_bounds bounds;
  bounds.lower = std::max(0.0, (spectral.relaxation_time - 1.0) *
                                   std::log(1.0 / (2.0 * eps)));
  bounds.upper =
      spectral.relaxation_time * std::log(1.0 / (eps * pi_min));
  return bounds;
}

}  // namespace ppg
