// Absorbing-chain analysis: exact expected absorption times and absorption
// probabilities via the fundamental-matrix linear systems. Verifies the
// gambler's-ruin closed forms used in the coupling proof (Proposition A.7)
// and gives exact completion times for protocols with absorbing censuses
// (e.g. leader election projected onto the leader count).
#pragma once

#include <vector>

#include "ppg/markov/chain.hpp"

namespace ppg {

/// Expected number of steps to reach *any* absorbing state, from every
/// state. `absorbing[i]` marks state i as absorbing (its outgoing
/// transitions are ignored). All non-absorbing states must be able to reach
/// an absorbing state (otherwise the linear system is singular and this
/// throws). Solves (I - Q) t = 1 over the transient states.
[[nodiscard]] std::vector<double> expected_absorption_times(
    const finite_chain& chain, const std::vector<bool>& absorbing);

/// Probability of being absorbed in a state of `target` (a subset of the
/// absorbing states), from every state. Solves (I - Q) h = R * 1_target.
[[nodiscard]] std::vector<double> absorption_probabilities(
    const finite_chain& chain, const std::vector<bool>& absorbing,
    const std::vector<bool>& target);

/// Builds the lazy +-1 gambler's-ruin chain on {0, ..., span} with
/// absorbing barriers (steps up with probability `up`, down with `down`);
/// companion to reflecting_walk_chain.
[[nodiscard]] finite_chain absorbing_walk_chain(std::size_t span, double up,
                                                double down);

/// Builds the leader-count projection of the basic leader election protocol
/// with n agents: state l in {1, ..., n} is the number of leaders, and a
/// step moves l -> l-1 with probability l(l-1)/(n(n-1)) (two leaders meet).
/// State 1 is absorbing. State 0 is unreachable and excluded; the chain is
/// indexed by l-1.
[[nodiscard]] finite_chain leader_count_chain(std::size_t n);

}  // namespace ppg
