// Exact mixing-time measurement for finite chains: distance-to-stationarity
// curves d(t) = ||P^t(x, .) - pi||_TV from chosen start states, and the
// derived t_mix(eps) = min{t : d(t) <= eps} (Section 2.1 of the paper,
// eps = 1/4 by convention).
#pragma once

#include <cstddef>
#include <vector>

#include "ppg/markov/chain.hpp"

namespace ppg {

/// A sampled TV-decay curve: tv[i] is the distance after times[i] steps.
struct tv_curve {
  std::vector<std::size_t> times;
  std::vector<double> tv;
};

/// Evolves a point mass at `start` and records TV distance to `pi` at each
/// requested time (times must be non-decreasing).
[[nodiscard]] tv_curve tv_decay_curve(const finite_chain& chain,
                                      std::size_t start,
                                      const std::vector<double>& pi,
                                      const std::vector<std::size_t>& times);

/// First time t <= max_steps with ||P^t(start, .) - pi||_TV <= eps, stepping
/// one transition at a time. Returns max_steps + 1 if never reached.
[[nodiscard]] std::size_t hitting_time_of_tv(const finite_chain& chain,
                                             std::size_t start,
                                             const std::vector<double>& pi,
                                             double eps,
                                             std::size_t max_steps);

/// Mixing time from the worst start among `starts` (the paper's d(t)
/// maximizes over all starts; for the monotone corner-to-corner structure of
/// Ehrenfest chains the extreme corners dominate, and callers pass those).
[[nodiscard]] std::size_t mixing_time_from_starts(
    const finite_chain& chain, const std::vector<std::size_t>& starts,
    const std::vector<double>& pi, double eps, std::size_t max_steps);

}  // namespace ppg
