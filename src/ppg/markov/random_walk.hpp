// Lazy biased random walks on integer intervals, with the closed-form
// absorption quantities used in the paper's coupling analysis
// (Appendix A.4.1, Propositions A.6 / A.7).
//
// The walk increments with probability `up`, decrements with probability
// `down`, and holds otherwise (up + down <= 1).
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/markov/chain.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {

/// Parameters of a lazy +-1 walk.
struct walk_params {
  double up = 0.5;
  double down = 0.5;
};

/// Expected number of steps for the walk started at `start` on
/// {0, 1, ..., span} (absorbing at both ends) to be absorbed. Uses the
/// standard gambler's-ruin closed form; the lazy hold probability rescales
/// time by 1/(up + down).
[[nodiscard]] double expected_absorption_time(walk_params params,
                                              std::int64_t span,
                                              std::int64_t start);

/// Probability that the walk started at `start` on {0, ..., span} is
/// absorbed at `span` (the upper barrier); equation (25) of the paper after
/// recentring {-k, ..., k} to {0, ..., 2k}.
[[nodiscard]] double upper_absorption_probability(walk_params params,
                                                  std::int64_t span,
                                                  std::int64_t start);

/// Simulates the absorption time of the lazy walk; used to cross-check the
/// closed forms.
[[nodiscard]] std::uint64_t simulate_absorption_time(walk_params params,
                                                     std::int64_t span,
                                                     std::int64_t start,
                                                     rng& gen);

/// Builds the finite_chain of the lazy walk on {0, ..., size-1} with
/// *reflecting* (truncating) barriers: attempts to leave the interval hold
/// in place, exactly like the per-coordinate dynamics of the coordinate
/// representation of the Ehrenfest process (proof of Theorem 2.5).
[[nodiscard]] finite_chain reflecting_walk_chain(std::size_t size,
                                                 walk_params params);

/// Stationary distribution of the reflecting walk: geometric weights
/// pi_j ∝ (up/down)^j on {0, ..., size-1}.
[[nodiscard]] std::vector<double> reflecting_walk_stationary(
    std::size_t size, walk_params params);

}  // namespace ppg
