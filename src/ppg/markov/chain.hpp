// Sparse finite Markov chain representation.
//
// Used for exact analysis of small state spaces: the 4-state repeated-game
// round chain, reflecting random walks, and fully enumerated Ehrenfest
// simplices (Definition 2.3) where |∆^m_k| = C(m+k-1, k-1) is modest.
#pragma once

#include <cstddef>
#include <vector>

namespace ppg {

/// One outgoing transition: probability of moving to `target`.
struct transition {
  std::size_t target = 0;
  double probability = 0.0;
};

/// Row-sparse transition matrix over states {0, ..., size-1}.
class finite_chain {
 public:
  explicit finite_chain(std::size_t num_states);

  /// Adds probability mass to the (from -> to) transition. Repeated calls
  /// accumulate.
  void add_transition(std::size_t from, std::size_t to, double probability);

  [[nodiscard]] std::size_t num_states() const { return rows_.size(); }
  [[nodiscard]] const std::vector<transition>& row(std::size_t from) const;

  /// Probability of the (from -> to) transition (0 if absent).
  [[nodiscard]] double probability(std::size_t from, std::size_t to) const;

  /// True if every row sums to 1 within tol and all entries are
  /// non-negative.
  [[nodiscard]] bool is_stochastic(double tol = 1e-9) const;

  /// One step of distribution evolution: returns mu * P.
  [[nodiscard]] std::vector<double> step(const std::vector<double>& mu) const;

  /// Evolves a distribution t steps.
  [[nodiscard]] std::vector<double> evolve(std::vector<double> mu,
                                           std::size_t t) const;

  /// Maximum over all states x of the detailed-balance residual
  /// |pi(x) P(x,y) - pi(y) P(y,x)|; zero for reversible chains with
  /// stationary pi.
  [[nodiscard]] double detailed_balance_residual(
      const std::vector<double>& pi) const;

  /// True if the chain is irreducible (single strongly connected component
  /// over edges with positive probability).
  [[nodiscard]] bool is_irreducible() const;

 private:
  std::vector<std::vector<transition>> rows_;
};

}  // namespace ppg
