#include "ppg/markov/chain.hpp"

#include <algorithm>
#include <cmath>
#include <stack>

#include "ppg/util/error.hpp"

namespace ppg {

finite_chain::finite_chain(std::size_t num_states) : rows_(num_states) {
  PPG_CHECK(num_states > 0, "chain needs at least one state");
}

void finite_chain::add_transition(std::size_t from, std::size_t to,
                                  double probability) {
  PPG_CHECK(from < rows_.size() && to < rows_.size(),
            "transition endpoint out of range");
  PPG_CHECK(probability >= 0.0, "negative transition probability");
  if (probability == 0.0) return;
  for (auto& t : rows_[from]) {
    if (t.target == to) {
      t.probability += probability;
      return;
    }
  }
  rows_[from].push_back({to, probability});
}

const std::vector<transition>& finite_chain::row(std::size_t from) const {
  PPG_CHECK(from < rows_.size(), "row index out of range");
  return rows_[from];
}

double finite_chain::probability(std::size_t from, std::size_t to) const {
  for (const auto& t : row(from)) {
    if (t.target == to) return t.probability;
  }
  return 0.0;
}

bool finite_chain::is_stochastic(double tol) const {
  for (const auto& row : rows_) {
    double sum = 0.0;
    for (const auto& t : row) {
      if (t.probability < -tol) return false;
      sum += t.probability;
    }
    if (std::abs(sum - 1.0) > tol) return false;
  }
  return true;
}

std::vector<double> finite_chain::step(const std::vector<double>& mu) const {
  PPG_CHECK(mu.size() == rows_.size(), "distribution size mismatch");
  std::vector<double> out(rows_.size(), 0.0);
  for (std::size_t from = 0; from < rows_.size(); ++from) {
    const double mass = mu[from];
    if (mass == 0.0) continue;
    for (const auto& t : rows_[from]) {
      out[t.target] += mass * t.probability;
    }
  }
  return out;
}

std::vector<double> finite_chain::evolve(std::vector<double> mu,
                                         std::size_t t) const {
  for (std::size_t i = 0; i < t; ++i) {
    mu = step(mu);
  }
  return mu;
}

double finite_chain::detailed_balance_residual(
    const std::vector<double>& pi) const {
  PPG_CHECK(pi.size() == rows_.size(), "stationary size mismatch");
  double worst = 0.0;
  for (std::size_t x = 0; x < rows_.size(); ++x) {
    for (const auto& t : rows_[x]) {
      const double forward = pi[x] * t.probability;
      const double backward = pi[t.target] * probability(t.target, x);
      worst = std::max(worst, std::abs(forward - backward));
    }
  }
  return worst;
}

bool finite_chain::is_irreducible() const {
  // Two DFS passes: reachability from state 0 in the forward and the
  // reversed graph. Irreducible iff all states are reachable both ways.
  const std::size_t n = rows_.size();
  auto reachable = [&](const auto& neighbors) {
    std::vector<bool> seen(n, false);
    std::stack<std::size_t> work;
    work.push(0);
    seen[0] = true;
    std::size_t count = 1;
    while (!work.empty()) {
      const std::size_t u = work.top();
      work.pop();
      for (const std::size_t v : neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          ++count;
          work.push(v);
        }
      }
    }
    return count == n;
  };

  auto forward = [&](std::size_t u) {
    std::vector<std::size_t> out;
    for (const auto& t : rows_[u]) {
      if (t.probability > 0.0) out.push_back(t.target);
    }
    return out;
  };
  if (!reachable(forward)) return false;

  std::vector<std::vector<std::size_t>> reversed(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (const auto& t : rows_[u]) {
      if (t.probability > 0.0) reversed[t.target].push_back(u);
    }
  }
  auto backward = [&](std::size_t u) { return reversed[u]; };
  return reachable(backward);
}

}  // namespace ppg
