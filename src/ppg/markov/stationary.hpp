// Stationary distribution computation for finite chains.
#pragma once

#include <vector>

#include "ppg/markov/chain.hpp"

namespace ppg {

/// Result of an iterative stationary computation.
struct stationary_result {
  std::vector<double> distribution;
  std::size_t iterations = 0;
  double residual = 0.0;  ///< TV distance between final iterates
  bool converged = false;
};

/// Power iteration from the uniform distribution until successive iterates
/// are within `tol` in total variation. Suitable for aperiodic chains (all
/// chains in this library are lazy).
[[nodiscard]] stationary_result power_iteration_stationary(
    const finite_chain& chain, double tol = 1e-12,
    std::size_t max_iterations = 2'000'000);

/// Direct solve of pi P = pi with sum(pi) = 1 via the dense linear system
/// (P^T - I) pi = 0 with one row replaced by the normalization constraint.
/// Exact up to numerics; intended for small chains.
[[nodiscard]] std::vector<double> solve_stationary(const finite_chain& chain);

}  // namespace ppg
