#include "ppg/markov/mixing.hpp"

#include <algorithm>

#include "ppg/stats/empirical.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

tv_curve tv_decay_curve(const finite_chain& chain, std::size_t start,
                        const std::vector<double>& pi,
                        const std::vector<std::size_t>& times) {
  PPG_CHECK(start < chain.num_states(), "start state out of range");
  PPG_CHECK(std::is_sorted(times.begin(), times.end()),
            "sample times must be non-decreasing");
  tv_curve curve;
  curve.times = times;
  curve.tv.reserve(times.size());
  std::vector<double> mu(chain.num_states(), 0.0);
  mu[start] = 1.0;
  std::size_t now = 0;
  for (const std::size_t t : times) {
    while (now < t) {
      mu = chain.step(mu);
      ++now;
    }
    curve.tv.push_back(total_variation(mu, pi));
  }
  return curve;
}

std::size_t hitting_time_of_tv(const finite_chain& chain, std::size_t start,
                               const std::vector<double>& pi, double eps,
                               std::size_t max_steps) {
  PPG_CHECK(start < chain.num_states(), "start state out of range");
  std::vector<double> mu(chain.num_states(), 0.0);
  mu[start] = 1.0;
  if (total_variation(mu, pi) <= eps) return 0;
  for (std::size_t t = 1; t <= max_steps; ++t) {
    mu = chain.step(mu);
    if (total_variation(mu, pi) <= eps) return t;
  }
  return max_steps + 1;
}

std::size_t mixing_time_from_starts(const finite_chain& chain,
                                    const std::vector<std::size_t>& starts,
                                    const std::vector<double>& pi, double eps,
                                    std::size_t max_steps) {
  PPG_CHECK(!starts.empty(), "need at least one start state");
  std::size_t worst = 0;
  for (const std::size_t s : starts) {
    worst = std::max(worst, hitting_time_of_tv(chain, s, pi, eps, max_steps));
  }
  return worst;
}

}  // namespace ppg
