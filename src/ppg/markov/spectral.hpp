// Spectral analysis of reversible finite chains: the second-largest
// eigenvalue modulus (SLEM) and the relaxation time t_rel = 1/(1 - SLEM),
// which brackets the mixing time (Levin-Peres Theorems 12.4/12.5):
//   (t_rel - 1) log(1/(2 eps))  <=  t_mix(eps)  <=  t_rel log(1/(eps pi_min)).
// Used as an independent diagnostic of the Theorem 2.5 mixing bounds.
#pragma once

#include <vector>

#include "ppg/markov/chain.hpp"

namespace ppg {

struct spectral_result {
  double slem = 0.0;            ///< second-largest eigenvalue modulus
  double spectral_gap = 0.0;    ///< 1 - slem
  double relaxation_time = 0.0; ///< 1/(1 - slem)
  std::size_t iterations = 0;
  bool converged = false;
};

/// Estimates the SLEM of a *reversible* chain with stationary distribution
/// `pi` by power iteration on the symmetrized operator
/// S = D^{1/2} P D^{-1/2} with the top eigenvector sqrt(pi) deflated.
/// The chain must be reversible w.r.t. pi (detailed balance); this is
/// checked up to `reversibility_tol`.
[[nodiscard]] spectral_result estimate_slem(const finite_chain& chain,
                                            const std::vector<double>& pi,
                                            double tol = 1e-12,
                                            std::size_t max_iterations =
                                                500'000,
                                            double reversibility_tol = 1e-8);

/// Mixing-time bounds implied by the relaxation time at accuracy eps
/// (defaults to the paper's 1/4).
struct spectral_mixing_bounds {
  double lower = 0.0;  ///< (t_rel - 1) log(1/(2 eps))
  double upper = 0.0;  ///< t_rel log(1/(eps pi_min))
};
[[nodiscard]] spectral_mixing_bounds mixing_bounds_from_relaxation(
    const spectral_result& spectral, const std::vector<double>& pi,
    double eps = 0.25);

}  // namespace ppg
