#include "ppg/markov/stationary.hpp"

#include "ppg/linalg/lu.hpp"
#include "ppg/linalg/matrix.hpp"
#include "ppg/stats/empirical.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

stationary_result power_iteration_stationary(const finite_chain& chain,
                                             double tol,
                                             std::size_t max_iterations) {
  const std::size_t n = chain.num_states();
  stationary_result result;
  result.distribution.assign(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < max_iterations; ++it) {
    auto next = chain.step(result.distribution);
    result.residual = total_variation(next, result.distribution);
    result.distribution = std::move(next);
    result.iterations = it + 1;
    if (result.residual <= tol) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<double> solve_stationary(const finite_chain& chain) {
  const std::size_t n = chain.num_states();
  PPG_CHECK(n >= 1, "empty chain");
  // Build A = P^T - I, then replace the last equation with sum(pi) = 1.
  matrix a(n, n);
  for (std::size_t from = 0; from < n; ++from) {
    for (const auto& t : chain.row(from)) {
      a(t.target, from) += t.probability;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) -= 1.0;
  }
  std::vector<double> b(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    a(n - 1, c) = 1.0;
  }
  b[n - 1] = 1.0;
  auto pi = solve(a, b);
  // Clean tiny negative round-off and renormalize.
  double total = 0.0;
  for (auto& x : pi) {
    if (x < 0.0 && x > -1e-9) x = 0.0;
    PPG_CHECK(x >= 0.0, "negative stationary mass: chain not irreducible?");
    total += x;
  }
  PPG_CHECK(total > 0.0, "zero stationary mass");
  for (auto& x : pi) {
    x /= total;
  }
  return pi;
}

}  // namespace ppg
