#include "ppg/markov/absorbing.hpp"

#include "ppg/linalg/lu.hpp"
#include "ppg/linalg/matrix.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

// Maps transient states to a compact index; returns (map, transient list).
std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
transient_indexing(const std::vector<bool>& absorbing) {
  std::vector<std::size_t> to_compact(absorbing.size(),
                                      static_cast<std::size_t>(-1));
  std::vector<std::size_t> transient;
  for (std::size_t i = 0; i < absorbing.size(); ++i) {
    if (!absorbing[i]) {
      to_compact[i] = transient.size();
      transient.push_back(i);
    }
  }
  return {std::move(to_compact), std::move(transient)};
}

// Builds I - Q over the transient states.
matrix build_i_minus_q(const finite_chain& chain,
                       const std::vector<bool>& absorbing,
                       const std::vector<std::size_t>& to_compact,
                       const std::vector<std::size_t>& transient) {
  matrix a(transient.size(), transient.size());
  for (std::size_t row = 0; row < transient.size(); ++row) {
    a(row, row) = 1.0;
    for (const auto& t : chain.row(transient[row])) {
      if (!absorbing[t.target]) {
        a(row, to_compact[t.target]) -= t.probability;
      }
    }
  }
  return a;
}

}  // namespace

std::vector<double> expected_absorption_times(
    const finite_chain& chain, const std::vector<bool>& absorbing) {
  PPG_CHECK(absorbing.size() == chain.num_states(),
            "absorbing mask size mismatch");
  const auto [to_compact, transient] = transient_indexing(absorbing);
  std::vector<double> times(chain.num_states(), 0.0);
  if (transient.empty()) return times;
  const matrix a = build_i_minus_q(chain, absorbing, to_compact, transient);
  const std::vector<double> ones(transient.size(), 1.0);
  const auto t = solve(a, ones);
  for (std::size_t i = 0; i < transient.size(); ++i) {
    PPG_CHECK(t[i] >= 0.0, "negative absorption time: bad chain structure");
    times[transient[i]] = t[i];
  }
  return times;
}

std::vector<double> absorption_probabilities(
    const finite_chain& chain, const std::vector<bool>& absorbing,
    const std::vector<bool>& target) {
  PPG_CHECK(absorbing.size() == chain.num_states(),
            "absorbing mask size mismatch");
  PPG_CHECK(target.size() == chain.num_states(), "target mask size mismatch");
  for (std::size_t i = 0; i < target.size(); ++i) {
    PPG_CHECK(!target[i] || absorbing[i],
              "target states must be absorbing");
  }
  const auto [to_compact, transient] = transient_indexing(absorbing);
  std::vector<double> probs(chain.num_states(), 0.0);
  for (std::size_t i = 0; i < target.size(); ++i) {
    if (target[i]) probs[i] = 1.0;
  }
  if (transient.empty()) return probs;
  const matrix a = build_i_minus_q(chain, absorbing, to_compact, transient);
  // Right-hand side: one-step probability of landing in the target set.
  std::vector<double> rhs(transient.size(), 0.0);
  for (std::size_t row = 0; row < transient.size(); ++row) {
    for (const auto& t : chain.row(transient[row])) {
      if (target[t.target]) {
        rhs[row] += t.probability;
      }
    }
  }
  const auto h = solve(a, rhs);
  for (std::size_t i = 0; i < transient.size(); ++i) {
    probs[transient[i]] = h[i];
  }
  return probs;
}

finite_chain absorbing_walk_chain(std::size_t span, double up, double down) {
  PPG_CHECK(span >= 2, "need at least one transient state");
  PPG_CHECK(up > 0.0 && down > 0.0 && up + down <= 1.0 + 1e-12,
            "invalid walk probabilities");
  finite_chain chain(span + 1);
  chain.add_transition(0, 0, 1.0);
  chain.add_transition(span, span, 1.0);
  for (std::size_t i = 1; i < span; ++i) {
    chain.add_transition(i, i + 1, up);
    chain.add_transition(i, i - 1, down);
    const double stay = 1.0 - up - down;
    if (stay > 0.0) chain.add_transition(i, i, stay);
  }
  return chain;
}

finite_chain leader_count_chain(std::size_t n) {
  PPG_CHECK(n >= 2, "leader election needs at least two agents");
  finite_chain chain(n);  // state index l-1 for l leaders
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1);
  chain.add_transition(0, 0, 1.0);  // one leader: absorbed
  for (std::size_t l = 2; l <= n; ++l) {
    const double drop = static_cast<double>(l) *
                        static_cast<double>(l - 1) / pairs;
    chain.add_transition(l - 1, l - 2, drop);
    chain.add_transition(l - 1, l - 1, 1.0 - drop);
  }
  return chain;
}

}  // namespace ppg
