// Strategies for repeated games.
//
// The engine implements general *memory-one* strategies (cooperation
// probability conditioned on the previous joint state), which subsume every
// strategy the paper uses — AC, AD, and GTFT are all memory-one — plus the
// classics (TFT, GRIM, Win-Stay-Lose-Shift) used in tests and examples.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "ppg/games/donation.hpp"

namespace ppg {

/// A memory-one strategy: probability of cooperating in round 1, and
/// probability of cooperating in round r+1 given the joint state of round r
/// *from this player's perspective* (their own action first).
struct memory_one_strategy {
  double initial_cooperation = 1.0;
  /// Indexed by game_state (mine, opponent's): CC, CD, DC, DD.
  std::array<double, num_game_states> cooperate_given{1.0, 1.0, 1.0, 1.0};

  /// All probabilities within [0, 1].
  [[nodiscard]] bool valid() const;

  /// Probability of cooperating after observing joint state `s` (from this
  /// player's perspective).
  [[nodiscard]] double response(game_state s) const {
    return cooperate_given[static_cast<std::size_t>(s)];
  }

  /// True if the strategy is *reactive*: the response depends only on the
  /// opponent's previous action (GTFT, AC, AD, TFT are reactive; WSLS and
  /// GRIM are not).
  [[nodiscard]] bool is_reactive(double tol = 1e-12) const;
};

/// AC: cooperate unconditionally.
[[nodiscard]] memory_one_strategy always_cooperate();

/// AD: defect unconditionally.
[[nodiscard]] memory_one_strategy always_defect();

/// TFT: repeat the opponent's previous action; cooperates in round 1 with
/// probability s1 (classically 1).
[[nodiscard]] memory_one_strategy tit_for_tat(double s1 = 1.0);

/// GTFT with generosity g (Section 1.1.2): round 1 cooperates w.p. s1;
/// afterwards repeats the opponent's action w.p. 1-g and cooperates w.p. g
/// (equivalently: C after opponent-C always, C w.p. g after opponent-D).
[[nodiscard]] memory_one_strategy generous_tit_for_tat(double g, double s1);

/// GRIM trigger: cooperate until anyone defects, then defect forever.
/// (Memory-one approximation: cooperate only after mutual cooperation.)
[[nodiscard]] memory_one_strategy grim(double s1 = 1.0);

/// Win-Stay-Lose-Shift (Pavlov): repeat your action after R or T, switch
/// after S or P.
[[nodiscard]] memory_one_strategy win_stay_lose_shift(double s1 = 1.0);

/// The paper's strategy set S = {AC, AD, g_1, ..., g_k}.
enum class strategy_kind : std::uint8_t { ac = 0, ad = 1, gtft = 2 };

/// A strategy in the paper's set: AC, AD, or GTFT with a generosity value.
struct paper_strategy {
  strategy_kind kind = strategy_kind::gtft;
  double generosity = 0.0;  ///< meaningful only for kind == gtft

  [[nodiscard]] static paper_strategy ac() { return {strategy_kind::ac, 0.0}; }
  [[nodiscard]] static paper_strategy ad() { return {strategy_kind::ad, 0.0}; }
  [[nodiscard]] static paper_strategy gtft(double g) {
    return {strategy_kind::gtft, g};
  }

  /// Lowers to the memory-one engine representation. `s1` is the initial
  /// cooperation probability shared by all GTFT agents (Definition 2.1).
  [[nodiscard]] memory_one_strategy to_memory_one(double s1) const;

  [[nodiscard]] std::string name() const;
};

/// The discretized generosity grid G = {g_1, ..., g_k} with
/// g_j = g_max * (j-1)/(k-1) (Definition 2.1). Requires k >= 2.
[[nodiscard]] std::vector<double> generosity_grid(std::size_t k,
                                                  double g_max);

/// Execution noise (the robustness motivation of Section 1.1.2): each
/// *performed* action flips with probability `noise`. Because memory-one
/// strategies condition on the executed (observed) actions, the noisy game
/// between two strategies is *exactly* the noise-free game between their
/// perturbed versions with every cooperation probability mapped
/// p -> p(1-noise) + (1-p)noise. This function applies that map.
[[nodiscard]] memory_one_strategy perturbed(const memory_one_strategy& s,
                                            double noise);

}  // namespace ppg
