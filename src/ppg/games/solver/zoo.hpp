// The generated game zoo the solver and certification layers sweep: every
// named builder from games/game_matrix.hpp plus seeded random payoff
// matrices across a range of strategy counts. Random payoffs are drawn
// uniformly from [-1, 1] with the repo's own rng, so a zoo is a pure
// function of its seed — the g5 bench gate relies on the same seed
// producing the same games, equilibria, and solver metrics on every
// platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ppg/games/game_matrix.hpp"

namespace ppg {

struct zoo_entry {
  std::string name;
  game_matrix game;
};

/// A seeded random q-strategy game "rand-q<q>-<index>" with payoffs uniform
/// in [-1, 1]. Generic with probability 1: ties and singular support
/// systems have measure zero.
[[nodiscard]] zoo_entry random_zoo_game(std::uint64_t seed, std::size_t q,
                                        std::size_t index);

/// The full zoo: the named classics (donation, prisoner's dilemma,
/// hawk-dove, stag hunt, rock-paper-scissors, the paper's k-IGT matrix),
/// then `random_per_size` seeded random games for each q in
/// [min_q, max_q]. Deterministic in `seed`.
[[nodiscard]] std::vector<zoo_entry> make_game_zoo(
    std::uint64_t seed, std::size_t random_per_size = 4, std::size_t min_q = 2,
    std::size_t max_q = 6);

}  // namespace ppg
