#include "ppg/games/solver/homotopy.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ppg/linalg/lu.hpp"
#include "ppg/linalg/matrix.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

namespace {

/// softmax(z), max-shifted so the largest exponent is exp(0).
std::vector<double> softmax(const std::vector<double>& z) {
  double top = z[0];
  for (const double v : z) top = std::max(top, v);
  std::vector<double> x(z.size());
  double total = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    x[i] = std::exp(z[i] - top);
    total += x[i];
  }
  for (auto& v : x) v /= total;
  return x;
}

/// Expected payoffs u_i = sum_j a(i, j) x_j.
std::vector<double> expected_payoffs(const game_matrix& g,
                                     const std::vector<double>& x) {
  std::vector<double> u(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    u[i] = g.expected_payoff(i, x);
  }
  return u;
}

/// ||softmax(z) - softmax(A softmax(z) / t)||_1 — the rung's fixed-point
/// defect, measured on the simplex where the certification layer compares
/// points.
double rung_residual(const game_matrix& g, const std::vector<double>& z,
                     double t) {
  const auto x = softmax(z);
  const auto u = expected_payoffs(g, x);
  std::vector<double> y(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) y[i] = u[i] / t;
  const auto target = softmax(y);
  double r = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) r += std::abs(x[i] - target[i]);
  return r;
}

/// Solves the rung's fixed point z = A softmax(z) / t by damped Newton in
/// logit space: the Jacobian of F(z) = A softmax(z)/t - z is
/// J(i,j) = x_j (a(i,j) - u_i)/t - delta_ij (the softmax differential
/// diag(x) - x x^T folded into A). Backtracks on the simplex residual and
/// falls back to a damped fixed-point step when Newton stalls.
homotopy_record solve_rung(const game_matrix& g, std::vector<double>& z,
                           double t, const homotopy_options& options) {
  const std::size_t q = g.num_strategies();
  homotopy_record record;
  record.temperature = t;
  double residual = rung_residual(g, z, t);
  while (residual > options.tolerance &&
         record.iterations < options.max_iterations) {
    ++record.iterations;
    const auto x = softmax(z);
    const auto u = expected_payoffs(g, x);
    std::vector<double> descent(q);
    for (std::size_t i = 0; i < q; ++i) descent[i] = u[i] / t - z[i];
    matrix jacobian(q, q);
    for (std::size_t i = 0; i < q; ++i) {
      for (std::size_t j = 0; j < q; ++j) {
        jacobian(i, j) = x[j] * (g.payoff(i, j) - u[i]) / t -
                         (i == j ? 1.0 : 0.0);
      }
    }
    std::vector<double> newton;
    bool have_newton = true;
    try {
      std::vector<double> negated(q);
      for (std::size_t i = 0; i < q; ++i) negated[i] = -descent[i];
      newton = lu_decomposition(std::move(jacobian)).solve(std::move(negated));
    } catch (const invariant_error&) {
      have_newton = false;  // singular at a bifurcation: damped step below
    }
    bool accepted = false;
    if (have_newton) {
      double scale = 1.0;
      for (int attempt = 0; attempt < 24 && !accepted; ++attempt) {
        std::vector<double> trial(q);
        for (std::size_t i = 0; i < q; ++i) {
          trial[i] = z[i] + scale * newton[i];
        }
        const double trial_residual = rung_residual(g, trial, t);
        if (trial_residual < residual || trial_residual <= options.tolerance) {
          z = std::move(trial);
          residual = trial_residual;
          double step = 0.0;
          for (const double d : newton) {
            step = std::max(step, scale * std::abs(d));
          }
          record.step = step;
          accepted = true;
        }
        scale *= 0.5;
      }
    }
    if (!accepted) {
      // Damped fixed-point step z <- z + beta (A x / t - z): a contraction
      // whenever the ladder's rungs are close, and immune to a singular
      // Jacobian.
      const double beta = 0.25;
      double step = 0.0;
      for (std::size_t i = 0; i < q; ++i) {
        z[i] += beta * descent[i];
        step = std::max(step, beta * std::abs(descent[i]));
      }
      residual = rung_residual(g, z, t);
      record.step = step;
    }
  }
  // Recenter the logits (softmax is shift-invariant) so magnitudes do not
  // accumulate down the ladder.
  double mean = 0.0;
  for (const double v : z) mean += v;
  mean /= static_cast<double>(q);
  for (auto& v : z) v -= mean;
  record.residual = residual;
  return record;
}

}  // namespace

homotopy_result follow_logit_path(const game_matrix& g,
                                  const homotopy_options& options) {
  PPG_CHECK(options.end_temperature > 0.0,
            "homotopy end temperature must be positive");
  PPG_CHECK(options.decay > 0.0 && options.decay < 1.0,
            "homotopy decay must lie in (0, 1)");
  PPG_CHECK(options.tolerance > 0.0 && options.max_iterations > 0,
            "homotopy tolerance and iteration budget must be positive");
  const double start =
      options.start_temperature > 0.0
          ? options.start_temperature
          : 8.0 * std::max(g.payoff_span(), 1.0);
  PPG_CHECK(start >= options.end_temperature,
            "homotopy start temperature must not undercut the end");

  homotopy_result result;
  result.converged = true;
  std::vector<double> z(g.num_strategies(), 0.0);  // the barycenter
  double t = start;
  while (true) {
    auto record = solve_rung(g, z, t, options);
    result.converged =
        result.converged && record.residual <= options.tolerance;
    result.total_iterations += record.iterations;
    result.path.push_back(record);
    if (t <= options.end_temperature) break;
    t = std::max(t * options.decay, options.end_temperature);
  }
  result.mix = softmax(z);
  result.temperature = t;
  result.residual = result.path.back().residual;
  const auto u = expected_payoffs(g, result.mix);
  double best = u[0];
  for (const double v : u) best = std::max(best, v);
  double average = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) average += result.mix[i] * u[i];
  result.nash_gap = best - average;
  return result;
}

}  // namespace ppg
