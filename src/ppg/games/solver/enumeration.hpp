// Exact symmetric-Nash enumeration for small strategy counts: for every
// candidate support S the indifference system
//
//   sum_{j in S} a(i, j) x_j = v   for all i in S,   sum_{j in S} x_j = 1
//
// is one (|S|+1) x (|S|+1) linear solve (linalg/lu). A solution is a
// symmetric equilibrium iff the support weights are positive and no pure
// strategy outside S earns more than v against x. The sweep over all 2^q - 1
// supports is exact and exhaustive — every symmetric Nash point of a
// nondegenerate game appears for exactly one support — and is the reference
// the homotopy path follower (solver/homotopy.hpp) and the certification
// layer (solver/certify.hpp) are checked against.
//
// Each equilibrium is classified dynamically: evolutionarily stable (ESS),
// neutrally stable, unstable, or indeterminate. The ESS test is the
// second-order condition on the symmetric part C = (A + A^T)/2 restricted
// to the tangent space of the best-response face — negative definite there
// (checked by Sylvester minors via LU determinants) certifies an ESS; an
// invasion direction with positive quadratic form certifies instability.
// When the support is a strict subset of the best-response set the cone of
// feasible invasion directions is proper and the finite probe below is not
// exhaustive, so undecided boundary cases report `indeterminate` rather
// than guessing (DESIGN.md §12).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ppg/games/game_matrix.hpp"

namespace ppg {

/// Dynamic-stability classification of a symmetric equilibrium.
enum class equilibrium_stability : std::uint8_t {
  ess,               ///< evolutionarily stable: resists every rare mutant
  neutrally_stable,  ///< mutants never gain, some are not expelled (e.g. RPS)
  unstable,          ///< some mutant strictly invades
  indeterminate,     ///< boundary case the finite second-order probe cannot
                     ///< decide (see header comment)
};

[[nodiscard]] const char* equilibrium_stability_name(equilibrium_stability s);

/// One symmetric Nash equilibrium x with x^T A x = payoff.
struct symmetric_equilibrium {
  std::vector<double> mix;           ///< point on the strategy simplex
  std::vector<std::size_t> support;  ///< strategies with positive weight
  double payoff = 0.0;               ///< equilibrium payoff v
  double residual = 0.0;  ///< max indifference/normalization violation
  bool pure = false;      ///< single-strategy support
  equilibrium_stability stability = equilibrium_stability::indeterminate;
};

struct enumeration_options {
  /// Payoff slack for the Nash test (non-support deviations may earn at
  /// most v + tie_tol) and for membership in the best-response set during
  /// classification.
  double tie_tol = 1e-9;
  /// Minimum support weight: solutions with any x_j below this are
  /// rejected for support S (their closure appears under a smaller
  /// support).
  double support_tol = 1e-9;
  /// Two equilibria closer than this in L-infinity are duplicates (a
  /// degenerate game can produce one point under several supports).
  double dedupe_tol = 1e-7;
};

/// All symmetric Nash equilibria of `g` by exhaustive support enumeration,
/// ordered by support size then lexicographic support. Cost is
/// O(2^q q^3) — exact and fast through q = 12 (checked); use the homotopy
/// follower beyond that. Every returned point satisfies the Nash
/// inequalities to
/// within tie_tol; `residual` reports the linear-solve defect.
[[nodiscard]] std::vector<symmetric_equilibrium> enumerate_symmetric_equilibria(
    const game_matrix& g, const enumeration_options& options = {});

/// The pure best-response structure of `g`: br[s] is the lowest-index pure
/// best response to an opponent playing pure s, and `cycles` lists the
/// cycles of that functional graph (each rotated to start at its smallest
/// member, ordered by that member). A fixed point br[s] == s is a cycle of
/// length 1 (a symmetric pure Nash candidate); a longer cycle is the
/// discrete signature of non-convergent best-response dynamics (e.g.
/// rock -> paper -> scissors -> rock).
struct best_response_cycles {
  std::vector<std::size_t> best_response;      ///< functional BR graph
  std::vector<std::vector<std::size_t>> cycles;
  bool has_nontrivial_cycle = false;  ///< any cycle of length >= 2
};

[[nodiscard]] best_response_cycles find_best_response_cycles(
    const game_matrix& g, double tie_tol = 1e-9);

}  // namespace ppg
