// The interior-point companion to solver/enumeration.hpp: a logit
// (quantal-response) homotopy path follower. At temperature T the smoothed
// equilibrium condition is the fixed point
//
//   x = softmax(A x / T),
//
// which for large T has a unique solution near the barycenter and, as
// T -> 0 along the principal branch, converges to a Nash point of the game
// (for coordination games, the risk-dominant one — the branch through the
// barycenter tracks the basin sizes, not the payoff-dominant corner). The
// follower walks a geometric temperature ladder, warm-starting each rung
// from the last and solving the rung's fixed point by a damped Newton
// iteration in logit space (where the simplex constraint is unconditionally
// satisfied), and logs one convergence record per rung — temperature,
// iterations, residual, last step — in the style of the canonical-section
// iteration of Sun et al.'s PTAS_Game solver (see SNIPPETS.md). The path
// records make non-convergence diagnosable rather than silent; DESIGN.md
// §12 documents the contract.
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/games/game_matrix.hpp"

namespace ppg {

/// One rung of the temperature ladder.
struct homotopy_record {
  double temperature = 0.0;
  std::uint64_t iterations = 0;  ///< Newton/damped steps spent on the rung
  double residual = 0.0;         ///< ||x - softmax(Ax/T)||_1 at acceptance
  double step = 0.0;             ///< last logit-space step, L-infinity
};

struct homotopy_options {
  /// First rung; <= 0 picks 8 * max(payoff_span, 1), high enough that the
  /// softmax map is a contraction and the rung is trivially solvable.
  double start_temperature = 0.0;
  /// Last rung: the returned point is the quantal-response equilibrium at
  /// this temperature, an O(T) perturbation of the limiting Nash point.
  double end_temperature = 1e-3;
  /// Geometric ladder factor in (0, 1); smaller is faster but risks
  /// losing the principal branch between rungs.
  double decay = 0.8;
  /// Per-rung fixed-point residual (L1) demanded before descending.
  double tolerance = 1e-10;
  /// Per-rung iteration budget; exceeding it marks the result
  /// unconverged but still returns the best point found.
  std::uint64_t max_iterations = 256;
};

struct homotopy_result {
  std::vector<double> mix;       ///< QRE at the final temperature reached
  double temperature = 0.0;      ///< final rung temperature
  double residual = 0.0;         ///< fixed-point residual at `mix`
  double nash_gap = 0.0;         ///< max_i u_i(mix) - mix^T A mix
  bool converged = false;        ///< every rung met the tolerance
  std::uint64_t total_iterations = 0;
  std::vector<homotopy_record> path;  ///< one record per rung, in order
};

/// Follows the principal quantal-response branch of `g` from the barycenter
/// down the temperature ladder. `converged` guarantees residual <=
/// options.tolerance at every rung including the last; `nash_gap` measures
/// how close the endpoint is to exact Nash (it is O(end_temperature) on a
/// nondegenerate game).
[[nodiscard]] homotopy_result follow_logit_path(
    const game_matrix& g, const homotopy_options& options = {});

}  // namespace ppg
