#include "ppg/games/solver/enumeration.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ppg/linalg/lu.hpp"
#include "ppg/linalg/matrix.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

namespace {

/// Solution of one support's indifference system, before the Nash test.
struct support_solution {
  std::vector<double> mix;  ///< full-length, zeros off the support
  double payoff = 0.0;
  double residual = 0.0;
  bool valid = false;
};

/// Solves { sum_j a(i,j) x_j - v = 0 (i in S); sum_j x_j = 1 } for the
/// support weights and the common payoff v. Invalid when the system is
/// singular or any weight falls below support_tol.
support_solution solve_support(const game_matrix& g,
                               const std::vector<std::size_t>& support,
                               double support_tol) {
  const std::size_t m = support.size();
  matrix system(m + 1, m + 1);
  std::vector<double> rhs(m + 1, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      system(i, j) = g.payoff(support[i], support[j]);
    }
    system(i, m) = -1.0;  // the -v column of the indifference rows
  }
  for (std::size_t j = 0; j < m; ++j) system(m, j) = 1.0;
  rhs[m] = 1.0;

  support_solution out;
  std::vector<double> solution;
  try {
    solution = lu_decomposition(std::move(system)).solve(std::move(rhs));
  } catch (const invariant_error&) {
    return out;  // singular: this support carries no isolated equilibrium
  }
  for (std::size_t j = 0; j < m; ++j) {
    if (!(solution[j] >= support_tol)) return out;  // also rejects NaN
  }
  out.mix.assign(g.num_strategies(), 0.0);
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    out.mix[support[j]] = solution[j];
    total += solution[j];
  }
  out.payoff = solution[m];
  out.residual = std::abs(total - 1.0);
  for (auto& w : out.mix) w /= total;
  for (std::size_t j = 0; j < m; ++j) {
    out.residual = std::max(
        out.residual,
        std::abs(g.expected_payoff(support[j], out.mix) - out.payoff));
  }
  out.valid = true;
  return out;
}

/// z^T C z for C = (A + A^T)/2 — the quadratic form of the second-order
/// (ESS) condition; the antisymmetric part of A never contributes.
double symmetric_form(const game_matrix& g, const std::vector<double>& z) {
  double q = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    if (z[i] == 0.0) continue;
    for (std::size_t j = 0; j < z.size(); ++j) {
      if (z[j] == 0.0) continue;
      q += z[i] * z[j] * 0.5 * (g.payoff(i, j) + g.payoff(j, i));
    }
  }
  return q;
}

/// True iff C restricted to the tangent space of the simplex face on
/// `face` (directions e_{face[k]} - e_{face[0]}) is negative definite,
/// by Sylvester's criterion on the negated restricted form.
bool negative_definite_on_face(const game_matrix& g,
                               const std::vector<std::size_t>& face) {
  const std::size_t m = face.size() - 1;
  if (m == 0) return true;  // zero-dimensional tangent space: vacuous
  matrix restricted(m, m);
  const auto c = [&](std::size_t i, std::size_t j) {
    return 0.5 * (g.payoff(i, j) + g.payoff(j, i));
  };
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t l = 0; l < m; ++l) {
      const std::size_t a = face[k + 1];
      const std::size_t b = face[l + 1];
      const std::size_t o = face[0];
      // (e_a - e_o)^T C (e_b - e_o), negated for the positive-definite test.
      restricted(k, l) = -(c(a, b) - c(a, o) - c(o, b) + c(o, o));
    }
  }
  for (std::size_t k = 1; k <= m; ++k) {
    matrix leading(k, k);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) leading(i, j) = restricted(i, j);
    }
    try {
      if (!(lu_decomposition(std::move(leading)).determinant() > 0.0)) {
        return false;
      }
    } catch (const invariant_error&) {
      return false;  // numerically singular minor: not definite
    }
  }
  return true;
}

equilibrium_stability classify(const game_matrix& g,
                               const symmetric_equilibrium& eq,
                               const enumeration_options& options) {
  const std::size_t q = g.num_strategies();
  const double scale = std::max(1.0, g.payoff_span());
  // The best-response face: strategies within tie_tol of the equilibrium
  // payoff. Mutants outside it are strictly repelled to first order, so
  // stability is decided entirely on this face.
  std::vector<std::size_t> face;
  for (std::size_t i = 0; i < q; ++i) {
    if (g.expected_payoff(i, eq.mix) >= eq.payoff - options.tie_tol * scale) {
      face.push_back(i);
    }
  }
  if (face.size() <= 1) return equilibrium_stability::ess;  // strict Nash
  if (negative_definite_on_face(g, face)) return equilibrium_stability::ess;

  // Probe feasible invasion directions for a strictly positive form. Mass
  // may move from any support strategy toward any face strategy, and sums
  // of two such moves stay feasible (x has positive weight to give on the
  // support side); a positive value certifies a mutant that invades.
  const bool face_equals_support = face.size() == eq.support.size();
  std::vector<std::vector<double>> probes;
  for (const std::size_t a : face) {
    for (const std::size_t b : eq.support) {
      if (a == b) continue;
      std::vector<double> z(q, 0.0);
      z[a] += 1.0;
      z[b] -= 1.0;
      probes.push_back(std::move(z));
    }
  }
  const double positive = options.tie_tol * scale;
  const std::size_t pairwise = probes.size();
  for (std::size_t i = 0; i < pairwise; ++i) {
    for (std::size_t j = i + 1; j < pairwise; ++j) {
      std::vector<double> z(q, 0.0);
      for (std::size_t s = 0; s < q; ++s) z[s] = probes[i][s] + probes[j][s];
      probes.push_back(std::move(z));
    }
  }
  for (const auto& z : probes) {
    if (symmetric_form(g, z) > positive) {
      return equilibrium_stability::unstable;
    }
  }
  // No invader among the probes and the definiteness test failed: a
  // neutral direction exists. With face == support every probe direction
  // is feasible in both signs and the probes span the tangent space, so
  // the point is neutrally stable; a proper face leaves feasible cone
  // directions the finite probe set cannot certify either way.
  return face_equals_support ? equilibrium_stability::neutrally_stable
                             : equilibrium_stability::indeterminate;
}

}  // namespace

const char* equilibrium_stability_name(equilibrium_stability s) {
  switch (s) {
    case equilibrium_stability::ess:
      return "ESS";
    case equilibrium_stability::neutrally_stable:
      return "neutrally-stable";
    case equilibrium_stability::unstable:
      return "unstable";
    case equilibrium_stability::indeterminate:
      return "indeterminate";
  }
  return "unknown";
}

std::vector<symmetric_equilibrium> enumerate_symmetric_equilibria(
    const game_matrix& g, const enumeration_options& options) {
  const std::size_t q = g.num_strategies();
  PPG_CHECK(q <= 12,
            "support enumeration sweeps 2^q supports; use the homotopy "
            "follower for q > 12");
  PPG_CHECK(options.tie_tol > 0.0 && options.support_tol > 0.0 &&
                options.dedupe_tol > 0.0,
            "enumeration tolerances must be positive");
  const double scale = std::max(1.0, g.payoff_span());

  // Supports in (size, lexicographic) order, so pure equilibria list first
  // and duplicates resolve toward the smallest support.
  std::vector<std::uint32_t> masks;
  masks.reserve((std::size_t{1} << q) - 1);
  for (std::uint32_t mask = 1; mask < (std::uint32_t{1} << q); ++mask) {
    masks.push_back(mask);
  }
  std::stable_sort(masks.begin(), masks.end(),
                   [](std::uint32_t a, std::uint32_t b) {
                     const int pa = __builtin_popcount(a);
                     const int pb = __builtin_popcount(b);
                     return pa != pb ? pa < pb : a < b;
                   });

  std::vector<symmetric_equilibrium> found;
  for (const std::uint32_t mask : masks) {
    std::vector<std::size_t> support;
    for (std::size_t s = 0; s < q; ++s) {
      if ((mask >> s) & 1u) support.push_back(s);
    }
    auto solution = solve_support(g, support, options.support_tol);
    if (!solution.valid) continue;
    bool nash = true;
    for (std::size_t i = 0; i < q && nash; ++i) {
      if ((mask >> i) & 1u) continue;
      nash = g.expected_payoff(i, solution.mix) <=
             solution.payoff + options.tie_tol * scale;
    }
    if (!nash) continue;
    bool duplicate = false;
    for (const auto& other : found) {
      double gap = 0.0;
      for (std::size_t s = 0; s < q; ++s) {
        gap = std::max(gap, std::abs(other.mix[s] - solution.mix[s]));
      }
      if (gap < options.dedupe_tol) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    symmetric_equilibrium eq;
    eq.mix = std::move(solution.mix);
    eq.support = std::move(support);
    eq.payoff = solution.payoff;
    eq.residual = solution.residual;
    eq.pure = eq.support.size() == 1;
    eq.stability = classify(g, eq, options);
    found.push_back(std::move(eq));
  }
  return found;
}

best_response_cycles find_best_response_cycles(const game_matrix& g,
                                               double tie_tol) {
  const std::size_t q = g.num_strategies();
  PPG_CHECK(tie_tol >= 0.0, "tie tolerance must be non-negative");
  best_response_cycles out;
  out.best_response.resize(q);
  for (std::size_t s = 0; s < q; ++s) {
    // best_responses_to_pure reports every strategy within the tie
    // tolerance of the maximum, ascending; the lowest index wins a tie.
    out.best_response[s] = g.best_responses_to_pure(s, tie_tol).front();
  }
  // Cycle extraction in the functional graph: walk each unvisited node;
  // a walk that re-enters itself closes exactly one new cycle.
  std::vector<std::uint8_t> state(q, 0);  // 0 new, 1 on this walk, 2 done
  for (std::size_t start = 0; start < q; ++start) {
    if (state[start] != 0) continue;
    std::vector<std::size_t> walk;
    std::size_t node = start;
    while (state[node] == 0) {
      state[node] = 1;
      walk.push_back(node);
      node = out.best_response[node];
    }
    if (state[node] == 1) {
      const auto entry = std::find(walk.begin(), walk.end(), node);
      std::vector<std::size_t> cycle(entry, walk.end());
      std::rotate(cycle.begin(),
                  std::min_element(cycle.begin(), cycle.end()), cycle.end());
      out.has_nontrivial_cycle =
          out.has_nontrivial_cycle || cycle.size() >= 2;
      out.cycles.push_back(std::move(cycle));
    }
    for (const std::size_t visited : walk) state[visited] = 2;
  }
  std::sort(out.cycles.begin(), out.cycles.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

}  // namespace ppg
