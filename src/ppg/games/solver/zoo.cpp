#include "ppg/games/solver/zoo.hpp"

#include <utility>

#include "ppg/util/error.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {

zoo_entry random_zoo_game(std::uint64_t seed, std::size_t q,
                          std::size_t index) {
  PPG_CHECK(q >= 2, "a matrix game needs at least two strategies");
  // One derived stream per (q, index) pair, so adding sizes or raising the
  // per-size count never reshuffles the games already in the zoo.
  rng gen = make_stream_rng(seed, (q << 16) | index);
  std::vector<std::string> names(q);
  for (std::size_t s = 0; s < q; ++s) names[s] = "s" + std::to_string(s);
  std::vector<double> payoffs(q * q);
  for (auto& p : payoffs) p = 2.0 * gen.next_double() - 1.0;
  return {"rand-q" + std::to_string(q) + "-" + std::to_string(index),
          game_matrix(std::move(names), std::move(payoffs))};
}

std::vector<zoo_entry> make_game_zoo(std::uint64_t seed,
                                     std::size_t random_per_size,
                                     std::size_t min_q, std::size_t max_q) {
  PPG_CHECK(min_q >= 2 && min_q <= max_q, "invalid zoo size range");
  std::vector<zoo_entry> zoo;
  zoo.push_back({"donation", donation_matrix()});
  zoo.push_back({"prisoners-dilemma",
                 prisoners_dilemma_matrix({3.0, 0.0, 5.0, 1.0})});
  zoo.push_back({"hawk-dove", hawk_dove_matrix(1.0, 2.0)});
  zoo.push_back({"stag-hunt", stag_hunt_matrix()});
  zoo.push_back({"rock-paper-scissors", rock_paper_scissors_matrix()});
  zoo.push_back({"igt-k3", igt_game_matrix(3)});
  for (std::size_t q = min_q; q <= max_q; ++q) {
    for (std::size_t index = 0; index < random_per_size; ++index) {
      zoo.push_back(random_zoo_game(seed, q, index));
    }
  }
  return zoo;
}

}  // namespace ppg
