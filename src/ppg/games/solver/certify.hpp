// The certification layer: turns a stationary census an engine produced
// into a checkable claim against an independently computed equilibrium set.
// For one recipe — game x update rule x revision discipline — the certifier
// computes, once:
//
//   1. the game's symmetric Nash equilibria (solver/enumeration.hpp),
//   2. the limiting point of the logit homotopy (solver/homotopy.hpp), and
//   3. the *rule's* own predicted limit: the mean-field fixed point of the
//      compiled protocol, relaxed from the barycenter (games/mean_field.hpp)
//      — the rule's dynamics need not settle on a Nash point of the game
//      (a logit rule at positive temperature settles on a smoothed point;
//      proportional imitation follows the replicator field, which can orbit).
//
// certify() then measures a time-averaged census against all three and
// emits a verdict: the nearest equilibrium and its L1/TV distance, the TV
// distance to the rule's predicted limit, the census's own Nash gap, and a
// `certified` flag — the census reproduced the predicted limit, and that
// prediction is trusted (the relaxation converged). DESIGN.md §12 states
// when the prediction is trustworthy: a unique attracting fixed point
// certifies; cycles or drift (an unconverged relaxation) yield
// prediction_trusted() == false, and certify() refuses to certify rather
// than comparing against a point that means nothing.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "ppg/games/game_matrix.hpp"
#include "ppg/games/game_protocol.hpp"
#include "ppg/games/mean_field.hpp"
#include "ppg/games/solver/enumeration.hpp"
#include "ppg/games/solver/homotopy.hpp"
#include "ppg/games/update_rule.hpp"

namespace ppg {

struct certify_options {
  /// Max TV(census, predicted limit) for a certified verdict. Covers both
  /// the engine's O(1/sqrt(n)) fluctuation scale and the mean-field
  /// approximation error; the g5 bench uses 0.03 at n = 10^4 (sized by
  /// stag-hunt, whose slow mixing inflates the time-average error).
  double tolerance = 0.02;
  /// Mean-field relaxation controls (games/mean_field.hpp).
  double relax_dt = 0.02;
  double relax_tol = 1e-10;
  double relax_t_max = 4000.0;
  enumeration_options enumeration;
  homotopy_options homotopy;
};

/// The verdict on one census.
struct certification {
  std::size_t nearest_equilibrium = 0;  ///< index into equilibria()
  double l1_to_equilibrium = 0.0;       ///< ||census - that equilibrium||_1
  double tv_to_equilibrium = 0.0;       ///< total variation = L1 / 2
  double tv_to_prediction = 0.0;        ///< TV(census, mean-field limit)
  double nash_gap = 0.0;  ///< max_i u_i(census) - census^T A census
  bool rule_predicts_equilibrium = false;  ///< census and the rule's limit
                                           ///< sit nearest the same
                                           ///< equilibrium
  bool certified = false;  ///< prediction trusted and census within
                           ///< tolerance of it
};

/// Computes the equilibrium structure of one recipe at construction, then
/// certifies any number of censuses against it.
class equilibrium_certifier {
 public:
  equilibrium_certifier(
      game_matrix game, std::shared_ptr<const update_rule> rule,
      revision_discipline discipline = revision_discipline::one_way,
      certify_options options = {});

  /// The game's symmetric Nash equilibria; non-empty (Nash's theorem, and
  /// the enumeration is exhaustive), so certify() always has a nearest
  /// point.
  [[nodiscard]] const std::vector<symmetric_equilibrium>& equilibria() const {
    return equilibria_;
  }

  /// The logit-homotopy limiting point and its convergence records.
  [[nodiscard]] const homotopy_result& limiting_point() const {
    return homotopy_;
  }

  /// The rule's predicted limit: the compiled protocol's mean-field fixed
  /// point relaxed from the barycenter.
  [[nodiscard]] const mean_field_fixed_point& prediction() const {
    return prediction_;
  }

  /// Whether prediction() may be compared against at all: the relaxation
  /// converged to a fixed point within the option tolerances. False means
  /// the dynamics cycle or drift on the horizon — certify() then reports
  /// distances but never certifies.
  [[nodiscard]] bool prediction_trusted() const {
    return prediction_.converged;
  }

  /// The equilibrium nearest the rule's predicted limit, and its TV gap
  /// (the rule's smoothing: a logit rule's positive temperature keeps its
  /// limit off the exact Nash point by O(temperature)).
  [[nodiscard]] std::size_t predicted_equilibrium() const {
    return predicted_equilibrium_;
  }
  [[nodiscard]] double prediction_equilibrium_gap() const {
    return prediction_equilibrium_gap_;
  }

  /// Verdict on one census (fractions over the game's strategies).
  [[nodiscard]] certification certify(
      const std::vector<double>& census_fractions) const;

 private:
  game_matrix game_;
  certify_options options_;
  std::vector<symmetric_equilibrium> equilibria_;
  homotopy_result homotopy_;
  mean_field_fixed_point prediction_;
  std::size_t predicted_equilibrium_ = 0;
  double prediction_equilibrium_gap_ = 0.0;
};

}  // namespace ppg
