#include "ppg/games/solver/certify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "ppg/util/error.hpp"

namespace ppg {

namespace {

double l1_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += std::abs(a[i] - b[i]);
  return total;
}

/// Index of the equilibrium nearest `point` in L1.
std::size_t nearest(const std::vector<symmetric_equilibrium>& equilibria,
                    const std::vector<double>& point, double* distance) {
  std::size_t best = 0;
  double best_distance = l1_distance(equilibria[0].mix, point);
  for (std::size_t e = 1; e < equilibria.size(); ++e) {
    const double d = l1_distance(equilibria[e].mix, point);
    if (d < best_distance) {
      best = e;
      best_distance = d;
    }
  }
  if (distance != nullptr) *distance = best_distance;
  return best;
}

}  // namespace

equilibrium_certifier::equilibrium_certifier(
    game_matrix game, std::shared_ptr<const update_rule> rule,
    revision_discipline discipline, certify_options options)
    : game_(std::move(game)), options_(options) {
  PPG_CHECK(rule != nullptr, "certification needs an update rule");
  PPG_CHECK(options_.tolerance > 0.0,
            "certification tolerance must be positive");
  equilibria_ = enumerate_symmetric_equilibria(game_, options_.enumeration);
  PPG_CHECK(!equilibria_.empty(),
            "support enumeration found no symmetric equilibrium; loosen "
            "enumeration tolerances (Nash's theorem guarantees one exists)");
  homotopy_ = follow_logit_path(game_, options_.homotopy);

  const game_protocol proto(game_, std::move(rule), discipline);
  const mean_field_ode ode(proto);
  const std::size_t q = game_.num_strategies();
  const std::vector<double> barycenter(q, 1.0 / static_cast<double>(q));
  prediction_ = relax_to_fixed_point(ode, barycenter, options_.relax_dt,
                                     options_.relax_tol, options_.relax_t_max);
  double gap = 0.0;
  predicted_equilibrium_ = nearest(equilibria_, prediction_.state, &gap);
  prediction_equilibrium_gap_ = 0.5 * gap;
}

certification equilibrium_certifier::certify(
    const std::vector<double>& census_fractions) const {
  PPG_CHECK(census_fractions.size() == game_.num_strategies(),
            "census width must match the game's strategy count");
  certification verdict;
  verdict.nearest_equilibrium =
      nearest(equilibria_, census_fractions, &verdict.l1_to_equilibrium);
  verdict.tv_to_equilibrium = 0.5 * verdict.l1_to_equilibrium;
  verdict.tv_to_prediction =
      0.5 * l1_distance(census_fractions, prediction_.state);
  double best = -std::numeric_limits<double>::infinity();
  double average = 0.0;
  for (std::size_t i = 0; i < census_fractions.size(); ++i) {
    const double u = game_.expected_payoff(i, census_fractions);
    best = std::max(best, u);
    average += census_fractions[i] * u;
  }
  verdict.nash_gap = best - average;
  verdict.rule_predicts_equilibrium =
      verdict.nearest_equilibrium == predicted_equilibrium_;
  verdict.certified = prediction_trusted() &&
                      verdict.tv_to_prediction <= options_.tolerance;
  return verdict;
}

}  // namespace ppg
