// Compiles a (game_matrix, update_rule) pair into a population protocol:
// the kernel of an ordered (initiator, responder) encounter is the rule's
// revision distribution for the initiator (one_way) or the independent
// product of both sides' revisions (two_way). The compiled protocol exposes
// the full transition kernel (outcome_distribution), so every composed game
// runs unchanged on the agent, census, and batched engines, and feeds the
// mean-field extraction in games/mean_field.hpp. See DESIGN.md §7 for the
// compilation contract.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "ppg/games/game_matrix.hpp"
#include "ppg/games/update_rule.hpp"
#include "ppg/pp/kernel.hpp"

namespace ppg {

/// Which side(s) of an encounter revise their strategy: one_way is the
/// paper's initiator-only discipline (footnote 3); two_way revises both
/// sides independently, each keyed on the partner's *pre-interaction*
/// strategy (standard two-way population protocol semantics).
enum class revision_discipline : std::uint8_t { one_way, two_way };

/// A matrix game plus an update rule, compiled into a protocol. The q x q
/// kernel is materialized and validated at construction, so per-interaction
/// sampling never re-queries the rule and never allocates.
class game_protocol : public protocol {
 public:
  game_protocol(game_matrix game, std::shared_ptr<const update_rule> rule,
                revision_discipline discipline = revision_discipline::one_way);

  [[nodiscard]] const game_matrix& game() const { return game_; }
  [[nodiscard]] const update_rule& rule() const { return *rule_; }
  [[nodiscard]] revision_discipline discipline() const { return discipline_; }

  [[nodiscard]] std::size_t num_states() const override {
    return game_.num_strategies();
  }
  [[nodiscard]] bool has_kernel() const override { return true; }

  [[nodiscard]] std::vector<outcome> outcome_distribution(
      agent_state initiator, agent_state responder) const override;

  /// Samples the precompiled kernel directly (no per-call distribution
  /// rebuild); draw consumption matches the default kernel-sampling
  /// interact exactly, so agent-engine trajectories are independent of
  /// whether a protocol caches its kernel.
  [[nodiscard]] std::pair<agent_state, agent_state> interact(
      agent_state initiator, agent_state responder,
      rng& gen) const override;

  /// The strategy's name in the game.
  [[nodiscard]] std::string state_name(agent_state state) const override;

 private:
  [[nodiscard]] std::size_t index(agent_state initiator,
                                  agent_state responder) const {
    return static_cast<std::size_t>(initiator) * game_.num_strategies() +
           static_cast<std::size_t>(responder);
  }

  game_matrix game_;
  std::shared_ptr<const update_rule> rule_;
  revision_discipline discipline_;
  std::vector<std::vector<outcome>> kernel_;  ///< q*q compiled distributions
};

}  // namespace ppg
