// Single-round game structure: actions, the four joint game states
// A = {CC, CD, DC, DD} (ordered (row action, column action)), general
// prisoner's dilemma payoffs, and the donation-game subclass the paper
// studies (reward vector v = [b-c, -c, b, 0], b > c >= 0; Section 1.1.2).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ppg {

enum class action : std::uint8_t { cooperate = 0, defect = 1 };

/// Joint round states, indexed to match the paper's ordering of A.
enum class game_state : std::uint8_t { cc = 0, cd = 1, dc = 2, dd = 3 };

inline constexpr std::size_t num_game_states = 4;

/// Combines the row and column actions into a joint state index.
[[nodiscard]] constexpr game_state make_state(action row, action col) {
  return static_cast<game_state>(static_cast<std::size_t>(row) * 2 +
                                 static_cast<std::size_t>(col));
}

/// Row player's action in a joint state.
[[nodiscard]] constexpr action row_action(game_state s) {
  return static_cast<action>(static_cast<std::size_t>(s) / 2);
}

/// Column player's action in a joint state.
[[nodiscard]] constexpr action col_action(game_state s) {
  return static_cast<action>(static_cast<std::size_t>(s) % 2);
}

/// The same joint state seen from the column player's perspective
/// (actions swapped): CD <-> DC.
[[nodiscard]] constexpr game_state swapped(game_state s) {
  return make_state(col_action(s), row_action(s));
}

/// General symmetric 2x2 payoffs in the conventional (R, S, T, P) naming:
/// R = reward for mutual cooperation, S = sucker's payoff, T = temptation,
/// P = punishment. The row player's payoff in state (CC, CD, DC, DD) is
/// (R, S, T, P).
struct pd_payoffs {
  double reward = 0.0;
  double sucker = 0.0;
  double temptation = 0.0;
  double punishment = 0.0;

  /// Row player's single-round payoff vector over A.
  [[nodiscard]] std::array<double, num_game_states> reward_vector() const {
    return {reward, sucker, temptation, punishment};
  }

  /// Row player's payoff in a joint state.
  [[nodiscard]] double payoff(game_state s) const {
    return reward_vector()[static_cast<std::size_t>(s)];
  }

  /// True if the payoffs form a prisoner's dilemma:
  /// T > R > P > S (and 2R > T + S so mutual cooperation beats alternating).
  [[nodiscard]] bool is_prisoners_dilemma() const;
};

/// Donation game: cooperating pays cost c to give the opponent benefit b.
struct donation_game {
  double b = 2.0;  ///< benefit to the recipient
  double c = 1.0;  ///< cost to the donor

  /// The paper requires b > c >= 0.
  [[nodiscard]] bool valid() const { return b > c && c >= 0.0; }

  /// The induced prisoner's dilemma payoffs (R, S, T, P) =
  /// (b-c, -c, b, 0).
  [[nodiscard]] pd_payoffs payoffs() const { return {b - c, -c, b, 0.0}; }

  /// Row player's payoff vector v over A, as in the paper.
  [[nodiscard]] std::array<double, num_game_states> reward_vector() const {
    return payoffs().reward_vector();
  }
};

}  // namespace ppg
