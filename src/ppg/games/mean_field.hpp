// The mean-field (fluid) limit of a kernel protocol: for census fractions
// x over the q states, the expected per-interaction state change under the
// idealized with-replacement pair law P(i, r) = x_i x_r gives the ODE
//
//   dx_u/dt = sum_{i,r} x_i x_r * E[ Delta_u | kernel(i, r) ],
//
// with t in parallel-time units (n interactions per unit t). The drift is
// extracted once from the same outcome_distribution the engines execute, so
// a simulation and its deterministic limit can never disagree about the
// dynamics being approximated. RK4 integration with a simplex projection,
// plus a fixed-point relaxer, support cross-checking engine runs against
// the ODE (DESIGN.md §7 discusses when the approximation is trusted).
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/games/game_matrix.hpp"
#include "ppg/pp/kernel.hpp"

namespace ppg {

/// The drift field extracted from a protocol's transition kernel. Requires
/// has_kernel(); the protocol may be discarded after construction.
class mean_field_ode {
 public:
  explicit mean_field_ode(const protocol& proto);

  /// Number of states (the ODE lives on the q-simplex).
  [[nodiscard]] std::size_t dimension() const { return q_; }

  /// dx/dt at census fractions x (length q). Coordinates always sum to 0,
  /// so the simplex is invariant.
  [[nodiscard]] std::vector<double> drift(const std::vector<double>& x) const;

 private:
  /// One ordered state pair with a non-trivial expected change.
  struct pair_term {
    agent_state initiator = 0;
    agent_state responder = 0;
    /// Sparse expected change E[Delta | pair]: (state, coefficient).
    std::vector<std::pair<agent_state, double>> delta;
  };

  std::size_t q_;
  std::vector<pair_term> terms_;
};

/// One classical RK4 step of size dt from x, then projection back onto the
/// simplex (clamping the O(dt^5) negative undershoots near the boundary and
/// renormalizing the total mass to 1).
[[nodiscard]] std::vector<double> rk4_simplex_step(const mean_field_ode& ode,
                                                   const std::vector<double>& x,
                                                   double dt);

/// A recorded mean-field trajectory: states[i] is the solution at times[i].
struct mean_field_trajectory {
  std::vector<double> times;
  std::vector<std::vector<double>> states;
};

/// Integrates from x0 (a probability vector of length ode.dimension()) for
/// `steps` RK4 steps of size dt, recording every `record_every` steps and
/// always recording the initial and final states.
[[nodiscard]] mean_field_trajectory integrate_mean_field(
    const mean_field_ode& ode, std::vector<double> x0, double dt,
    std::uint64_t steps, std::uint64_t record_every = 1);

/// Result of relaxing the ODE toward a fixed point — a full convergence
/// report, not just the last iterate: callers must branch on `converged`
/// (an unconverged relaxation means the dynamics cycle or drift on the
/// horizon, and `state` is then just where integration stopped — see
/// DESIGN.md §12 on when the prediction is trusted).
struct mean_field_fixed_point {
  std::vector<double> state;
  double time = 0.0;               ///< integration time spent
  double residual = 0.0;           ///< ||drift||_1 at `state`
  std::uint64_t iterations = 0;    ///< RK4 steps taken
  bool converged = false;          ///< residual <= tol before t_max
};

/// Integrates from x0 until ||drift||_1 <= tol (converged) or t_max is
/// reached. A fixed point of the mean-field ODE is the deterministic-limit
/// prediction for the engines' stationary census fractions.
[[nodiscard]] mean_field_fixed_point relax_to_fixed_point(
    const mean_field_ode& ode, std::vector<double> x0, double dt, double tol,
    double t_max);

/// The classical replicator drift x_u (f_u(x) - f_avg(x)) of a matrix game
/// — the reference dynamics mean-field limits are compared against. For a
/// zero-sum game, the mean field of proportional imitation equals this
/// field scaled by 2 rate / payoff_span (pinned in tests/test_mean_field).
[[nodiscard]] std::vector<double> replicator_drift(
    const game_matrix& g, const std::vector<double>& x);

}  // namespace ppg
