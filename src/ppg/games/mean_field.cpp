#include "ppg/games/mean_field.hpp"

#include <cmath>
#include <utility>

#include "ppg/util/error.hpp"

namespace ppg {

namespace {

void check_simplex_point(const std::vector<double>& x, std::size_t q) {
  PPG_CHECK(x.size() == q, "state width must match the ODE dimension");
  double total = 0.0;
  for (const double v : x) {
    PPG_CHECK(v >= 0.0, "census fractions must be non-negative");
    total += v;
  }
  PPG_CHECK(std::abs(total - 1.0) <= 1e-9,
            "census fractions must sum to 1");
}

/// Clamp tiny negative undershoots and renormalize the mass to 1.
void project_to_simplex(std::vector<double>& x) {
  double total = 0.0;
  for (auto& v : x) {
    PPG_CHECK(v > -1e-6,
              "state left the simplex: reduce the RK4 step size dt");
    if (v < 0.0) v = 0.0;
    total += v;
  }
  PPG_CHECK(total > 0.0, "state collapsed to zero mass");
  for (auto& v : x) v /= total;
}

}  // namespace

mean_field_ode::mean_field_ode(const protocol& proto)
    : q_(proto.num_states()) {
  PPG_CHECK(proto.has_kernel(),
            "mean-field extraction requires a transition kernel");
  std::vector<double> delta(q_, 0.0);
  for (agent_state i = 0; i < q_; ++i) {
    for (agent_state r = 0; r < q_; ++r) {
      const auto dist = proto.outcome_distribution(i, r);
      for (auto& d : delta) d = 0.0;
      for (const auto& o : dist) {
        PPG_CHECK(o.initiator < q_ && o.responder < q_,
                  "kernel outcome state out of range");
        delta[o.initiator] += o.probability;
        delta[o.responder] += o.probability;
      }
      delta[i] -= 1.0;
      delta[r] -= 1.0;
      pair_term term{i, r, {}};
      for (agent_state u = 0; u < q_; ++u) {
        if (delta[u] != 0.0) term.delta.emplace_back(u, delta[u]);
      }
      if (!term.delta.empty()) terms_.push_back(std::move(term));
    }
  }
}

std::vector<double> mean_field_ode::drift(const std::vector<double>& x) const {
  PPG_CHECK(x.size() == q_, "state width must match the ODE dimension");
  std::vector<double> out(q_, 0.0);
  for (const auto& term : terms_) {
    const double weight = x[term.initiator] * x[term.responder];
    if (weight == 0.0) continue;
    for (const auto& [state, coefficient] : term.delta) {
      out[state] += weight * coefficient;
    }
  }
  return out;
}

namespace {

/// RK4 core with the first stage precomputed (relax_to_fixed_point already
/// evaluates drift(x) for its residual; recomputing it would make every
/// step 5 drift evaluations instead of 4).
std::vector<double> rk4_from(const mean_field_ode& ode,
                             const std::vector<double>& x,
                             const std::vector<double>& k1, double dt) {
  PPG_CHECK(dt > 0.0, "RK4 step size must be positive");
  const std::size_t q = ode.dimension();
  PPG_CHECK(x.size() == q, "state width must match the ODE dimension");
  std::vector<double> stage(q);
  for (std::size_t u = 0; u < q; ++u) stage[u] = x[u] + 0.5 * dt * k1[u];
  const auto k2 = ode.drift(stage);
  for (std::size_t u = 0; u < q; ++u) stage[u] = x[u] + 0.5 * dt * k2[u];
  const auto k3 = ode.drift(stage);
  for (std::size_t u = 0; u < q; ++u) stage[u] = x[u] + dt * k3[u];
  const auto k4 = ode.drift(stage);
  std::vector<double> next(q);
  for (std::size_t u = 0; u < q; ++u) {
    next[u] = x[u] + dt / 6.0 * (k1[u] + 2.0 * k2[u] + 2.0 * k3[u] + k4[u]);
  }
  project_to_simplex(next);
  return next;
}

}  // namespace

std::vector<double> rk4_simplex_step(const mean_field_ode& ode,
                                     const std::vector<double>& x,
                                     double dt) {
  PPG_CHECK(x.size() == ode.dimension(),
            "state width must match the ODE dimension");
  return rk4_from(ode, x, ode.drift(x), dt);
}

mean_field_trajectory integrate_mean_field(const mean_field_ode& ode,
                                           std::vector<double> x0, double dt,
                                           std::uint64_t steps,
                                           std::uint64_t record_every) {
  check_simplex_point(x0, ode.dimension());
  PPG_CHECK(record_every > 0, "recording interval must be positive");
  mean_field_trajectory trajectory;
  trajectory.times.push_back(0.0);
  trajectory.states.push_back(x0);
  std::vector<double> x = std::move(x0);
  for (std::uint64_t i = 1; i <= steps; ++i) {
    x = rk4_simplex_step(ode, x, dt);
    if (i % record_every == 0 || i == steps) {
      trajectory.times.push_back(static_cast<double>(i) * dt);
      trajectory.states.push_back(x);
    }
  }
  return trajectory;
}

mean_field_fixed_point relax_to_fixed_point(const mean_field_ode& ode,
                                            std::vector<double> x0, double dt,
                                            double tol, double t_max) {
  check_simplex_point(x0, ode.dimension());
  PPG_CHECK(tol > 0.0 && t_max > 0.0,
            "fixed-point tolerance and horizon must be positive");
  mean_field_fixed_point result;
  result.state = std::move(x0);
  while (true) {
    const auto k1 = ode.drift(result.state);
    double residual = 0.0;
    for (const double d : k1) residual += std::abs(d);
    result.residual = residual;
    if (residual <= tol) {
      result.converged = true;
      return result;
    }
    if (result.time >= t_max) return result;
    result.state = rk4_from(ode, result.state, k1, dt);
    result.time += dt;
    ++result.iterations;
  }
}

std::vector<double> replicator_drift(const game_matrix& g,
                                     const std::vector<double>& x) {
  const std::size_t q = g.num_strategies();
  PPG_CHECK(x.size() == q, "state width must match the strategy count");
  const double average = g.average_payoff(x);
  std::vector<double> out(q);
  for (std::size_t u = 0; u < q; ++u) {
    out[u] = x[u] * (g.expected_payoff(u, x) - average);
  }
  return out;
}

}  // namespace ppg
