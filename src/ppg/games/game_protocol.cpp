#include "ppg/games/game_protocol.hpp"

#include <cmath>

#include "ppg/util/error.hpp"

namespace ppg {

namespace {

/// Validates one revision distribution against the rule contract.
std::vector<double> checked_revision(const update_rule& rule,
                                     const game_matrix& game,
                                     std::size_t self, std::size_t partner) {
  auto p = rule.revise(game, self, partner);
  PPG_CHECK(p.size() == game.num_strategies(),
            "update rule must return one probability per strategy");
  double total = 0.0;
  for (const double x : p) {
    PPG_CHECK(x >= 0.0, "revision probabilities must be non-negative");
    total += x;
  }
  PPG_CHECK(std::abs(total - 1.0) <= 1e-9,
            "revision probabilities must sum to 1");
  return p;
}

}  // namespace

game_protocol::game_protocol(game_matrix game,
                             std::shared_ptr<const update_rule> rule,
                             revision_discipline discipline)
    : game_(std::move(game)),
      rule_(std::move(rule)),
      discipline_(discipline) {
  PPG_CHECK(rule_ != nullptr, "game_protocol requires an update rule");
  const std::size_t q = game_.num_strategies();
  kernel_.resize(q * q);
  for (agent_state i = 0; i < q; ++i) {
    for (agent_state r = 0; r < q; ++r) {
      const auto initiator_next = checked_revision(*rule_, game_, i, r);
      auto& dist = kernel_[index(i, r)];
      if (discipline_ == revision_discipline::one_way) {
        for (agent_state u = 0; u < q; ++u) {
          if (initiator_next[u] > 0.0) {
            dist.push_back({u, r, initiator_next[u]});
          }
        }
      } else {
        // Both sides revise independently, each keyed on the partner's
        // pre-interaction strategy; the joint kernel is the product.
        const auto responder_next = checked_revision(*rule_, game_, r, i);
        for (agent_state u = 0; u < q; ++u) {
          if (initiator_next[u] <= 0.0) continue;
          for (agent_state v = 0; v < q; ++v) {
            if (responder_next[v] <= 0.0) continue;
            dist.push_back({u, v, initiator_next[u] * responder_next[v]});
          }
        }
      }
    }
  }
}

std::vector<outcome> game_protocol::outcome_distribution(
    agent_state initiator, agent_state responder) const {
  PPG_CHECK(initiator < game_.num_strategies() &&
                responder < game_.num_strategies(),
            "strategy index out of range");
  return kernel_[index(initiator, responder)];
}

std::pair<agent_state, agent_state> game_protocol::interact(
    agent_state initiator, agent_state responder, rng& gen) const {
  PPG_CHECK(initiator < game_.num_strategies() &&
                responder < game_.num_strategies(),
            "strategy index out of range");
  const auto& dist = kernel_[index(initiator, responder)];
  if (dist.size() == 1) {
    return {dist.front().initiator, dist.front().responder};
  }
  double u = gen.next_double();
  for (const auto& o : dist) {
    u -= o.probability;
    if (u < 0.0) return {o.initiator, o.responder};
  }
  return {dist.back().initiator, dist.back().responder};
}

std::string game_protocol::state_name(agent_state state) const {
  return game_.strategy_name(state);
}

}  // namespace ppg
