#include "ppg/games/rollout.hpp"

#include "ppg/util/error.hpp"

namespace ppg {

rollout_result play_repeated_game(const repeated_donation_game& rdg,
                                  const memory_one_strategy& row,
                                  const memory_one_strategy& col, rng& gen) {
  PPG_CHECK(rdg.valid(), "invalid repeated game setting");
  PPG_CHECK(row.valid() && col.valid(), "invalid strategy");
  const auto v = rdg.game.reward_vector();

  rollout_result result;
  action row_act = gen.next_bernoulli(row.initial_cooperation)
                       ? action::cooperate
                       : action::defect;
  action col_act = gen.next_bernoulli(col.initial_cooperation)
                       ? action::cooperate
                       : action::defect;
  while (true) {
    const game_state state = make_state(row_act, col_act);
    result.row_payoff += v[static_cast<std::size_t>(state)];
    result.col_payoff += v[static_cast<std::size_t>(swapped(state))];
    result.rounds += 1;
    result.row_cooperations += row_act == action::cooperate ? 1 : 0;
    result.col_cooperations += col_act == action::cooperate ? 1 : 0;
    if (!gen.next_bernoulli(rdg.delta)) break;
    const action next_row = gen.next_bernoulli(row.response(state))
                                ? action::cooperate
                                : action::defect;
    const action next_col = gen.next_bernoulli(col.response(swapped(state)))
                                ? action::cooperate
                                : action::defect;
    row_act = next_row;
    col_act = next_col;
  }
  return result;
}

running_summary estimate_payoff(const repeated_donation_game& rdg,
                                const memory_one_strategy& row,
                                const memory_one_strategy& col,
                                std::size_t trials, rng& gen) {
  PPG_CHECK(trials > 0, "need at least one trial");
  running_summary summary;
  for (std::size_t i = 0; i < trials; ++i) {
    summary.add(play_repeated_game(rdg, row, col, gen).row_payoff);
  }
  return summary;
}

}  // namespace ppg
