#include "ppg/games/game_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <utility>

#include "ppg/games/exact_payoff.hpp"
#include "ppg/games/strategy.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

game_matrix::game_matrix(std::vector<std::string> strategy_names,
                         std::vector<double> payoffs)
    : names_(std::move(strategy_names)), payoffs_(std::move(payoffs)) {
  PPG_CHECK(names_.size() >= 2, "a matrix game needs at least two strategies");
  PPG_CHECK(payoffs_.size() == names_.size() * names_.size(),
            "payoff matrix must be q x q for q strategy names");
  std::unordered_set<std::string> seen;
  for (const auto& name : names_) {
    PPG_CHECK(!name.empty(), "strategy names must be non-empty");
    PPG_CHECK(seen.insert(name).second, "strategy names must be unique");
  }
  for (const double a : payoffs_) {
    PPG_CHECK(std::isfinite(a), "payoffs must be finite");
  }
  min_payoff_ = *std::min_element(payoffs_.begin(), payoffs_.end());
  max_payoff_ = *std::max_element(payoffs_.begin(), payoffs_.end());
}

double game_matrix::payoff(std::size_t mine, std::size_t theirs) const {
  PPG_CHECK(mine < names_.size() && theirs < names_.size(),
            "strategy index out of range");
  return payoffs_[mine * names_.size() + theirs];
}

const std::string& game_matrix::strategy_name(std::size_t s) const {
  PPG_CHECK(s < names_.size(), "strategy index out of range");
  return names_[s];
}

double game_matrix::expected_payoff(std::size_t s,
                                    const std::vector<double>& mix) const {
  PPG_CHECK(s < names_.size(), "strategy index out of range");
  PPG_CHECK(mix.size() == names_.size(),
            "mixed strategy width must match the strategy count");
  double total = 0.0;
  for (std::size_t j = 0; j < mix.size(); ++j) {
    total += mix[j] * payoffs_[s * names_.size() + j];
  }
  return total;
}

double game_matrix::average_payoff(const std::vector<double>& mix) const {
  double total = 0.0;
  for (std::size_t s = 0; s < names_.size(); ++s) {
    total += mix[s] * expected_payoff(s, mix);
  }
  return total;
}

std::vector<std::size_t> game_matrix::best_responses(
    const std::vector<double>& mix, double tol) const {
  PPG_CHECK(tol >= 0.0, "tie tolerance must be non-negative");
  double best = expected_payoff(0, mix);
  for (std::size_t s = 1; s < names_.size(); ++s) {
    best = std::max(best, expected_payoff(s, mix));
  }
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < names_.size(); ++s) {
    if (expected_payoff(s, mix) >= best - tol) out.push_back(s);
  }
  return out;
}

std::vector<std::size_t> game_matrix::best_responses_to_pure(
    std::size_t theirs, double tol) const {
  PPG_CHECK(tol >= 0.0, "tie tolerance must be non-negative");
  double best = payoff(0, theirs);
  for (std::size_t s = 1; s < names_.size(); ++s) {
    best = std::max(best, payoff(s, theirs));
  }
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < names_.size(); ++s) {
    if (payoff(s, theirs) >= best - tol) out.push_back(s);
  }
  return out;
}

game_matrix donation_matrix(const donation_game& game) {
  PPG_CHECK(game.valid(), "donation game requires b > c >= 0");
  return prisoners_dilemma_matrix(game.payoffs());
}

game_matrix prisoners_dilemma_matrix(const pd_payoffs& p) {
  return game_matrix({"C", "D"},
                     {p.reward, p.sucker, p.temptation, p.punishment});
}

game_matrix hawk_dove_matrix(double value, double cost) {
  PPG_CHECK(cost > value && value > 0.0,
            "hawk-dove requires cost > value > 0 (interior equilibrium)");
  return game_matrix(
      {"H", "D"}, {(value - cost) / 2.0, value, 0.0, value / 2.0});
}

game_matrix stag_hunt_matrix(double stag, double hare) {
  PPG_CHECK(stag > hare && hare > 0.0, "stag hunt requires stag > hare > 0");
  return game_matrix({"S", "H"}, {stag, 0.0, hare, hare});
}

game_matrix rock_paper_scissors_matrix(double win, double loss) {
  PPG_CHECK(win > 0.0 && loss > 0.0,
            "rock-paper-scissors requires positive win/loss payoffs");
  return game_matrix({"R", "P", "S"}, {0.0, -loss, win,    //
                                       win, 0.0, -loss,    //
                                       -loss, win, 0.0});
}

game_matrix igt_game_matrix(std::size_t k, const rd_setting& setting,
                            double g_max) {
  PPG_CHECK(k >= 2, "the generosity grid requires k >= 2");
  PPG_CHECK(setting.valid(), "invalid RD setting");
  PPG_CHECK(g_max >= 0.0 && g_max <= 1.0, "g_max must lie in [0, 1]");
  const payoff_oracle oracle(setting.to_game(), setting.s1);
  const auto grid = generosity_grid(k, g_max);
  std::vector<paper_strategy> strategies;
  std::vector<std::string> names;
  strategies.reserve(2 + k);
  names.reserve(2 + k);
  strategies.push_back(paper_strategy::ac());
  names.emplace_back("AC");
  strategies.push_back(paper_strategy::ad());
  names.emplace_back("AD");
  for (std::size_t j = 0; j < k; ++j) {
    strategies.push_back(paper_strategy::gtft(grid[j]));
    names.push_back("g" + std::to_string(j + 1));
  }
  std::vector<double> payoffs;
  payoffs.reserve(strategies.size() * strategies.size());
  for (const auto& mine : strategies) {
    for (const auto& theirs : strategies) {
      payoffs.push_back(oracle.payoff(mine, theirs));
    }
  }
  return game_matrix(std::move(names), std::move(payoffs));
}

}  // namespace ppg
