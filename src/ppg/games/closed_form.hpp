// The paper's closed-form expected payoffs and their derivatives
// (Appendix B.1.5, equations (44)-(46), (47), (57)), plus the Proposition 2.2
// parameter-regime predicate. These are cross-validated against the matrix
// engine in exact_payoff.hpp and against Monte-Carlo rollouts.
#pragma once

#include "ppg/games/exact_payoff.hpp"

namespace ppg {

/// Parameters shared by the closed forms: game (b, c), continuation delta,
/// initial cooperation s1.
struct rd_setting {
  double b = 2.0;
  double c = 1.0;
  double delta = 0.9;
  double s1 = 1.0;

  [[nodiscard]] bool valid() const {
    return b > c && c >= 0.0 && delta >= 0.0 && delta < 1.0 && s1 >= 0.0 &&
           s1 <= 1.0;
  }

  [[nodiscard]] repeated_donation_game to_game() const {
    return {{b, c}, delta};
  }
};

/// Equation (44): f(g, AC) = c(1 - s1) + (b - c)/(1 - delta).
/// Independent of g.
[[nodiscard]] double f_gtft_vs_ac(const rd_setting& s);

/// Equation (45): f(g, AD) = -c s1 - c g delta / (1 - delta).
[[nodiscard]] double f_gtft_vs_ad(const rd_setting& s, double g);

/// Equation (46): f(g, g') for two GTFT agents.
[[nodiscard]] double f_gtft_vs_gtft(const rd_setting& s, double g,
                                    double g_prime);

/// Equation (47): d/dg f(g, g').
[[nodiscard]] double df_dg_gtft_vs_gtft(const rd_setting& s, double g,
                                        double g_prime);

/// Equation (57): d^2/dg^2 f(g, g').
[[nodiscard]] double d2f_dg2_gtft_vs_gtft(const rd_setting& s, double g,
                                          double g_prime);

/// Uniform bound L on |d^2/dg^2 f(g, S)| over g, g' in [0, g_max]
/// (Proposition D.3): maximizes the explicit bounds (58)-(59) over the grid
/// corners where they are extremal.
[[nodiscard]] double second_derivative_bound(const rd_setting& s,
                                             double g_max);

/// Proposition 2.2's parameter conditions: s1 in [0,1), delta > c/b, and
/// g_max < 1 - c/(delta b). Under these, f(., g'') is strictly increasing,
/// f(., AC) non-decreasing, and f(., AD) strictly decreasing — i.e. the
/// k-IGT transition rules are locally optimal.
[[nodiscard]] bool proposition_2_2_regime(const rd_setting& s, double g_max);

}  // namespace ppg
