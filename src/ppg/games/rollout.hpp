// Monte-Carlo simulation of single repeated donation games: plays the
// round-by-round process exactly as defined in Section 1.1.2 (independent
// continuation with probability delta after every round) and accumulates
// realized payoffs. Cross-validates the exact oracle in exact_payoff.hpp.
#pragma once

#include <cstdint>

#include "ppg/games/exact_payoff.hpp"
#include "ppg/stats/summary.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {

/// Outcome of one simulated repeated game.
struct rollout_result {
  double row_payoff = 0.0;
  double col_payoff = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t row_cooperations = 0;
  std::uint64_t col_cooperations = 0;
};

/// Plays one full repeated game between two memory-one strategies.
[[nodiscard]] rollout_result play_repeated_game(
    const repeated_donation_game& rdg, const memory_one_strategy& row,
    const memory_one_strategy& col, rng& gen);

/// Monte-Carlo estimate of the row player's expected payoff over `trials`
/// independent games.
[[nodiscard]] running_summary estimate_payoff(
    const repeated_donation_game& rdg, const memory_one_strategy& row,
    const memory_one_strategy& col, std::size_t trials, rng& gen);

}  // namespace ppg
