#include "ppg/games/closed_form.hpp"

#include <cmath>

#include "ppg/util/error.hpp"

namespace ppg {
namespace {

void check_setting(const rd_setting& s) {
  PPG_CHECK(s.valid(), "invalid RD setting");
}

void check_generosity(double g) {
  PPG_CHECK(g >= 0.0 && g <= 1.0, "generosity must be a probability");
}

}  // namespace

double f_gtft_vs_ac(const rd_setting& s) {
  check_setting(s);
  return s.c * (1.0 - s.s1) + (s.b - s.c) / (1.0 - s.delta);
}

double f_gtft_vs_ad(const rd_setting& s, double g) {
  check_setting(s);
  check_generosity(g);
  return -s.c * s.s1 - s.c * g * s.delta / (1.0 - s.delta);
}

double f_gtft_vs_gtft(const rd_setting& s, double g, double g_prime) {
  check_setting(s);
  check_generosity(g);
  check_generosity(g_prime);
  const double d = s.delta;
  const double denom = 1.0 - d * d * (1.0 - g) * (1.0 - g_prime);
  return s.s1 * (s.b - s.c) + (s.b - s.c) * d / (1.0 - d) +
         s.c * (1.0 - s.s1) *
             (d * d * (1.0 - g) * (1.0 - g_prime) + d * (1.0 - g)) / denom -
         s.b * (1.0 - s.s1) *
             (d * d * (1.0 - g) * (1.0 - g_prime) + d * (1.0 - g_prime)) /
             denom;
}

double df_dg_gtft_vs_gtft(const rd_setting& s, double g, double g_prime) {
  check_setting(s);
  check_generosity(g);
  check_generosity(g_prime);
  const double d = s.delta;
  const double one_minus_gp = 1.0 - g_prime;
  const double denom = 1.0 - d * d * (1.0 - g) * one_minus_gp;
  const double denom2 = denom * denom;
  return (1.0 - s.s1) * s.c * (-d * d * one_minus_gp - d) / denom2 -
         (1.0 - s.s1) * s.b *
             (-d * d * one_minus_gp - d * d * d * one_minus_gp * one_minus_gp) /
             denom2;
}

double d2f_dg2_gtft_vs_gtft(const rd_setting& s, double g, double g_prime) {
  check_setting(s);
  check_generosity(g);
  check_generosity(g_prime);
  const double d = s.delta;
  const double one_minus_gp = 1.0 - g_prime;
  const double denom = 1.0 - d * d * (1.0 - g) * one_minus_gp;
  const double denom3 = denom * denom * denom;
  return (1.0 - s.s1) *
         (s.c * 2.0 * d * d * d * one_minus_gp * (1.0 + d * one_minus_gp) -
          s.b * 2.0 * d * d * d * d * one_minus_gp * one_minus_gp *
              (1.0 + d * one_minus_gp)) /
         denom3;
}

double second_derivative_bound(const rd_setting& s, double g_max) {
  check_setting(s);
  check_generosity(g_max);
  // Equations (58)-(59) bound the c-term and b-term of (57) separately; by
  // the triangle inequality, with (1 - g') <= 1 and the denominator at its
  // minimum (1 - delta^2)^3 over g, g' in [0, g_max]:
  //   |d2f/dg2| <= (1 - s1) * 2 delta^3 (1 + delta) (c + b delta)
  //                / (1 - delta^2)^3.
  // This is the uniform constant L used in Proposition D.1; it is loose but
  // provably valid on the whole square.
  const double d = s.delta;
  const double denom_min = 1.0 - d * d;
  return (1.0 - s.s1) * 2.0 * d * d * d * (1.0 + d) * (s.c + s.b * d) /
         (denom_min * denom_min * denom_min);
}

bool proposition_2_2_regime(const rd_setting& s, double g_max) {
  check_setting(s);
  check_generosity(g_max);
  if (s.s1 >= 1.0) return false;
  if (!(s.delta > s.c / s.b)) return false;
  return g_max < 1.0 - s.c / (s.delta * s.b);
}

}  // namespace ppg
