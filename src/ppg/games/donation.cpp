#include "ppg/games/donation.hpp"

namespace ppg {

bool pd_payoffs::is_prisoners_dilemma() const {
  // Strict PD ordering plus the standard alternation condition. The donation
  // game with b > c > 0 satisfies all of these; c = 0 degenerates (P = S),
  // which we deliberately reject here even though the paper allows c = 0 as
  // a boundary case for the reward vector.
  return temptation > reward && reward > punishment && punishment > sucker &&
         2.0 * reward > temptation + sucker;
}

}  // namespace ppg
