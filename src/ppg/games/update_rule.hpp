// Strategy-revision rules: the "dynamics" half of the game -> update-rule ->
// kernel compilation contract (DESIGN.md §7). A rule maps one encounter —
// the reviser's strategy, the partner's strategy, and the game's payoffs —
// to a distribution over the reviser's next strategy. Rules are *local*: the
// distribution may depend only on the two encounter strategies and the
// payoff matrix, never on the population census, so every compiled protocol
// is a legal population protocol (Bournez et al., "Population Protocols that
// Correspond to Symmetric Games").
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "ppg/games/game_matrix.hpp"

namespace ppg {

/// A local strategy-revision rule.
class update_rule {
 public:
  virtual ~update_rule() = default;
  update_rule() = default;
  update_rule(const update_rule&) = default;
  update_rule& operator=(const update_rule&) = default;

  /// The distribution over the reviser's next strategy after an encounter
  /// in which it played `self` against `partner` in game `g`: a dense
  /// probability vector of length g.num_strategies(), entries >= 0 summing
  /// to 1 (game_protocol validates on compilation).
  [[nodiscard]] virtual std::vector<double> revise(
      const game_matrix& g, std::size_t self, std::size_t partner) const = 0;

  /// Human-readable rule name (for tables and examples).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Deterministic imitation: adopt the partner's strategy iff the partner's
/// realized payoff in this encounter strictly beat the reviser's.
class imitate_if_better_rule final : public update_rule {
 public:
  [[nodiscard]] std::vector<double> revise(
      const game_matrix& g, std::size_t self,
      std::size_t partner) const override;
  [[nodiscard]] std::string name() const override {
    return "imitate-if-better";
  }
};

/// Schlag's proportional imitation: adopt the partner's strategy with
/// probability rate * (partner's payoff - own payoff)_+ / payoff_span. For a
/// zero-sum game (e.g. rock-paper-scissors) the mean-field limit is exactly
/// the replicator dynamics at rate 2*rate/span (see games/mean_field.hpp and
/// DESIGN.md §7).
class proportional_imitation_rule final : public update_rule {
 public:
  explicit proportional_imitation_rule(double rate = 1.0);

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] std::vector<double> revise(
      const game_matrix& g, std::size_t self,
      std::size_t partner) const override;
  [[nodiscard]] std::string name() const override {
    return "proportional-imitation";
  }

 private:
  double rate_;
};

/// Smoothed (logit) best response to the sampled partner: the next strategy
/// is drawn from softmax(a(., partner) / temperature). temperature -> 0
/// approaches the exact best response to the partner's strategy;
/// temperature -> infinity approaches uniform exploration.
class logit_response_rule final : public update_rule {
 public:
  explicit logit_response_rule(double temperature);

  [[nodiscard]] double temperature() const { return temperature_; }
  [[nodiscard]] std::vector<double> revise(
      const game_matrix& g, std::size_t self,
      std::size_t partner) const override;
  [[nodiscard]] std::string name() const override {
    return "logit-best-response";
  }

 private:
  double temperature_;
};

/// The paper's laddered IGT adjustment (Definition 2.1) over a
/// generosity-indexed strategy set in igt_game_matrix order: strategies 0
/// (AC) and 1 (AD) are fixed; a ladder strategy 2+j steps down to 2+(j-1)
/// when the partner is AD and up to 2+(j+1) otherwise, clamped to the k rungs.
class igt_ladder_rule final : public update_rule {
 public:
  explicit igt_ladder_rule(std::size_t k);

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::vector<double> revise(
      const game_matrix& g, std::size_t self,
      std::size_t partner) const override;
  [[nodiscard]] std::string name() const override { return "igt-ladder"; }

 private:
  std::size_t k_;
};

}  // namespace ppg
