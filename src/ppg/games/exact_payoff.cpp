#include "ppg/games/exact_payoff.hpp"

#include "ppg/linalg/lu.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

matrix round_transition_matrix(const memory_one_strategy& row,
                               const memory_one_strategy& col) {
  PPG_CHECK(row.valid() && col.valid(), "invalid strategy");
  matrix m(num_game_states, num_game_states);
  for (std::size_t s = 0; s < num_game_states; ++s) {
    const auto state = static_cast<game_state>(s);
    const double p_row = row.response(state);
    const double p_col = col.response(swapped(state));
    const double probs[2] = {p_row, 1.0 - p_row};
    const double qrobs[2] = {p_col, 1.0 - p_col};
    for (std::size_t ra = 0; ra < 2; ++ra) {
      for (std::size_t ca = 0; ca < 2; ++ca) {
        const auto next = make_state(static_cast<action>(ra),
                                     static_cast<action>(ca));
        m(s, static_cast<std::size_t>(next)) += probs[ra] * qrobs[ca];
      }
    }
  }
  return m;
}

std::vector<double> initial_state_distribution(
    const memory_one_strategy& row, const memory_one_strategy& col) {
  PPG_CHECK(row.valid() && col.valid(), "invalid strategy");
  const double p = row.initial_cooperation;
  const double q = col.initial_cooperation;
  return {p * q, p * (1.0 - q), (1.0 - p) * q, (1.0 - p) * (1.0 - q)};
}

std::vector<double> expected_state_occupation(
    const repeated_donation_game& rdg, const memory_one_strategy& row,
    const memory_one_strategy& col) {
  PPG_CHECK(rdg.valid(), "invalid repeated game setting");
  const matrix m = round_transition_matrix(row, col);
  // Solve w (I - delta M) = q1 for the row vector w, i.e.
  // (I - delta M)^T w = q1.
  matrix a = matrix::identity(num_game_states);
  a -= rdg.delta * m;
  const auto q1 = initial_state_distribution(row, col);
  return lu_decomposition(std::move(a)).solve_transposed(q1);
}

double expected_payoff(const repeated_donation_game& rdg,
                       const memory_one_strategy& row,
                       const memory_one_strategy& col) {
  const auto occupation = expected_state_occupation(rdg, row, col);
  const auto v = rdg.game.reward_vector();
  double payoff = 0.0;
  for (std::size_t s = 0; s < num_game_states; ++s) {
    payoff += occupation[s] * v[s];
  }
  return payoff;
}

std::pair<double, double> expected_payoffs(const repeated_donation_game& rdg,
                                           const memory_one_strategy& row,
                                           const memory_one_strategy& col) {
  // By the symmetry of the round structure, the column player's payoff is
  // the row payoff of the swapped pairing.
  return {expected_payoff(rdg, row, col), expected_payoff(rdg, col, row)};
}

double cooperation_rate(const repeated_donation_game& rdg,
                        const memory_one_strategy& row,
                        const memory_one_strategy& col) {
  const auto occupation = expected_state_occupation(rdg, row, col);
  const double cooperating =
      occupation[static_cast<std::size_t>(game_state::cc)] +
      occupation[static_cast<std::size_t>(game_state::cd)];
  return cooperating / rdg.expected_rounds();
}

payoff_oracle::payoff_oracle(repeated_donation_game rdg, double s1)
    : rdg_(rdg), s1_(s1) {
  PPG_CHECK(rdg_.valid(), "invalid repeated game setting");
  PPG_CHECK(s1 >= 0.0 && s1 <= 1.0, "s1 must be a probability");
}

double payoff_oracle::payoff(const paper_strategy& s1,
                             const paper_strategy& s2) const {
  return expected_payoff(rdg_, s1.to_memory_one(s1_), s2.to_memory_one(s1_));
}

double payoff_oracle::gtft_payoff(double g, const paper_strategy& s2) const {
  return payoff(paper_strategy::gtft(g), s2);
}

}  // namespace ppg
