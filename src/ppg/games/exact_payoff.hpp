// Exact expected payoffs in repeated donation games (Appendix B.1).
//
// A pair of memory-one strategies induces a Markov chain over the joint
// round states A = {CC, CD, DC, DD}; with continuation probability delta the
// expected total payoff of the row player is
//     f(S1, S2) = < v, q1 (I - delta M)^{-1} >,
// where q1 is the initial state distribution, M the conditional round
// transition matrix, and v the single-round reward vector (equation (33)).
#pragma once

#include <utility>
#include <vector>

#include "ppg/games/donation.hpp"
#include "ppg/games/strategy.hpp"
#include "ppg/linalg/matrix.hpp"

namespace ppg {

/// The round transition matrix M over A for (row, col): from joint state s,
/// the row player cooperates w.p. row.response(s) and the column player
/// w.p. col.response(swapped(s)); next-state probabilities are the product.
[[nodiscard]] matrix round_transition_matrix(const memory_one_strategy& row,
                                             const memory_one_strategy& col);

/// Initial distribution q1 over A from the two initial cooperation
/// probabilities.
[[nodiscard]] std::vector<double> initial_state_distribution(
    const memory_one_strategy& row, const memory_one_strategy& col);

/// Game-level description of a repeated donation game.
struct repeated_donation_game {
  donation_game game;
  double delta = 0.9;  ///< continuation (restart) probability

  [[nodiscard]] bool valid() const {
    return game.valid() && delta >= 0.0 && delta < 1.0;
  }

  /// Expected number of rounds: 1 / (1 - delta).
  [[nodiscard]] double expected_rounds() const { return 1.0 / (1.0 - delta); }
};

/// Exact expected total payoff of the row player.
[[nodiscard]] double expected_payoff(const repeated_donation_game& rdg,
                                     const memory_one_strategy& row,
                                     const memory_one_strategy& col);

/// Both players' expected payoffs in one solve (row first).
[[nodiscard]] std::pair<double, double> expected_payoffs(
    const repeated_donation_game& rdg, const memory_one_strategy& row,
    const memory_one_strategy& col);

/// Expected (discounted by survival) occupation mass of each joint state
/// over the whole game: q1 (I - delta M)^{-1}. Sums to expected_rounds().
[[nodiscard]] std::vector<double> expected_state_occupation(
    const repeated_donation_game& rdg, const memory_one_strategy& row,
    const memory_one_strategy& col);

/// Expected fraction of rounds in which the row player cooperates.
[[nodiscard]] double cooperation_rate(const repeated_donation_game& rdg,
                                      const memory_one_strategy& row,
                                      const memory_one_strategy& col);

/// Payoff oracle over the paper's strategy set with a fixed game setting;
/// precomputes nothing, but centralizes f(S1, S2) with the shared s1.
class payoff_oracle {
 public:
  payoff_oracle(repeated_donation_game rdg, double s1);

  /// f(S1, S2): expected payoff of the S1 agent against an S2 opponent.
  [[nodiscard]] double payoff(const paper_strategy& s1,
                              const paper_strategy& s2) const;

  /// f(g, S): expected payoff of a GTFT(g) agent against S.
  [[nodiscard]] double gtft_payoff(double g, const paper_strategy& s2) const;

  [[nodiscard]] const repeated_donation_game& setting() const { return rdg_; }
  [[nodiscard]] double initial_cooperation() const { return s1_; }

 private:
  repeated_donation_game rdg_;
  double s1_;
};

}  // namespace ppg
