#include "ppg/games/update_rule.hpp"

#include <algorithm>
#include <cmath>

#include "ppg/util/error.hpp"

namespace ppg {

namespace {

std::vector<double> point_mass(std::size_t q, std::size_t s) {
  std::vector<double> p(q, 0.0);
  p[s] = 1.0;
  return p;
}

}  // namespace

std::vector<double> imitate_if_better_rule::revise(
    const game_matrix& g, std::size_t self, std::size_t partner) const {
  const bool switch_over = g.payoff(partner, self) > g.payoff(self, partner);
  return point_mass(g.num_strategies(), switch_over ? partner : self);
}

proportional_imitation_rule::proportional_imitation_rule(double rate)
    : rate_(rate) {
  PPG_CHECK(rate > 0.0 && rate <= 1.0, "imitation rate must lie in (0, 1]");
}

std::vector<double> proportional_imitation_rule::revise(
    const game_matrix& g, std::size_t self, std::size_t partner) const {
  const double span = g.payoff_span();
  const double gap = g.payoff(partner, self) - g.payoff(self, partner);
  // A constant game (span 0) admits no payoff-driven switching.
  const double p =
      span > 0.0 ? rate_ * std::max(0.0, gap) / span : 0.0;
  auto out = point_mass(g.num_strategies(), self);
  if (p > 0.0 && partner != self) {
    out[self] = 1.0 - p;
    out[partner] = p;
  }
  return out;
}

logit_response_rule::logit_response_rule(double temperature)
    : temperature_(temperature) {
  PPG_CHECK(temperature > 0.0, "logit temperature must be positive");
}

std::vector<double> logit_response_rule::revise(
    const game_matrix& g, std::size_t /*self*/, std::size_t partner) const {
  const std::size_t q = g.num_strategies();
  std::vector<double> out(q, 0.0);
  double best = g.payoff(0, partner);
  for (std::size_t s = 1; s < q; ++s) {
    best = std::max(best, g.payoff(s, partner));
  }
  double total = 0.0;
  for (std::size_t s = 0; s < q; ++s) {
    out[s] = std::exp((g.payoff(s, partner) - best) / temperature_);
    total += out[s];
  }
  for (auto& p : out) p /= total;
  return out;
}

igt_ladder_rule::igt_ladder_rule(std::size_t k) : k_(k) {
  PPG_CHECK(k >= 2, "the IGT ladder requires k >= 2");
}

std::vector<double> igt_ladder_rule::revise(const game_matrix& g,
                                            std::size_t self,
                                            std::size_t partner) const {
  PPG_CHECK(g.num_strategies() == 2 + k_,
            "IGT ladder expects the {AC, AD, g_1..g_k} strategy set");
  constexpr std::size_t ad = 1;
  constexpr std::size_t first_rung = 2;
  if (self < first_rung) {
    return point_mass(g.num_strategies(), self);  // AC/AD stay fixed
  }
  const std::size_t level = self - first_rung;
  const std::size_t next =
      partner == ad ? (level > 0 ? level - 1 : 0)
                    : (level + 1 < k_ ? level + 1 : k_ - 1);
  return point_mass(g.num_strategies(), first_rung + next);
}

}  // namespace ppg
