#include "ppg/games/strategy.hpp"

#include <cmath>
#include <vector>

#include "ppg/util/error.hpp"
#include "ppg/util/table.hpp"

namespace ppg {

bool memory_one_strategy::valid() const {
  auto in_unit = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!in_unit(initial_cooperation)) return false;
  for (const double p : cooperate_given) {
    if (!in_unit(p)) return false;
  }
  return true;
}

bool memory_one_strategy::is_reactive(double tol) const {
  // Reactive: response depends only on the opponent's previous action,
  // i.e. response(CC) == response(DC) and response(CD) == response(DD).
  return std::abs(response(game_state::cc) - response(game_state::dc)) <=
             tol &&
         std::abs(response(game_state::cd) - response(game_state::dd)) <= tol;
}

memory_one_strategy always_cooperate() {
  return {1.0, {1.0, 1.0, 1.0, 1.0}};
}

memory_one_strategy always_defect() {
  return {0.0, {0.0, 0.0, 0.0, 0.0}};
}

memory_one_strategy tit_for_tat(double s1) {
  PPG_CHECK(s1 >= 0.0 && s1 <= 1.0, "s1 must be a probability");
  return {s1, {1.0, 0.0, 1.0, 0.0}};
}

memory_one_strategy generous_tit_for_tat(double g, double s1) {
  PPG_CHECK(g >= 0.0 && g <= 1.0, "generosity must be a probability");
  PPG_CHECK(s1 >= 0.0 && s1 <= 1.0, "s1 must be a probability");
  // After opponent C: repeat C w.p. (1-g) plus generous C w.p. g -> 1.
  // After opponent D: repeat D w.p. (1-g), generous C w.p. g -> g.
  return {s1, {1.0, g, 1.0, g}};
}

memory_one_strategy grim(double s1) {
  PPG_CHECK(s1 >= 0.0 && s1 <= 1.0, "s1 must be a probability");
  return {s1, {1.0, 0.0, 0.0, 0.0}};
}

memory_one_strategy win_stay_lose_shift(double s1) {
  PPG_CHECK(s1 >= 0.0 && s1 <= 1.0, "s1 must be a probability");
  // After CC (payoff R, win): stay with C. After CD (S, lose): shift to D.
  // After DC (T, win): stay with D. After DD (P, lose): shift to C.
  return {s1, {1.0, 0.0, 0.0, 1.0}};
}

memory_one_strategy paper_strategy::to_memory_one(double s1) const {
  switch (kind) {
    case strategy_kind::ac:
      return always_cooperate();
    case strategy_kind::ad:
      return always_defect();
    case strategy_kind::gtft:
      return generous_tit_for_tat(generosity, s1);
  }
  PPG_CHECK(false, "unknown strategy kind");
}

std::string paper_strategy::name() const {
  switch (kind) {
    case strategy_kind::ac:
      return "AC";
    case strategy_kind::ad:
      return "AD";
    case strategy_kind::gtft:
      return "GTFT(" + fmt(generosity, 3) + ")";
  }
  PPG_CHECK(false, "unknown strategy kind");
}

memory_one_strategy perturbed(const memory_one_strategy& s, double noise) {
  PPG_CHECK(s.valid(), "invalid strategy");
  PPG_CHECK(noise >= 0.0 && noise <= 1.0, "noise must be a probability");
  auto flip = [noise](double p) {
    return p * (1.0 - noise) + (1.0 - p) * noise;
  };
  memory_one_strategy out;
  out.initial_cooperation = flip(s.initial_cooperation);
  for (std::size_t i = 0; i < num_game_states; ++i) {
    out.cooperate_given[i] = flip(s.cooperate_given[i]);
  }
  return out;
}

std::vector<double> generosity_grid(std::size_t k, double g_max) {
  PPG_CHECK(k >= 2, "the paper's grid requires k >= 2");
  PPG_CHECK(g_max >= 0.0 && g_max <= 1.0,
            "maximum generosity must be a probability");
  std::vector<double> grid(k);
  for (std::size_t j = 0; j < k; ++j) {
    grid[j] = g_max * static_cast<double>(j) / static_cast<double>(k - 1);
  }
  return grid;
}

}  // namespace ppg
