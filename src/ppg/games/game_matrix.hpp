// An arbitrary finite symmetric two-player matrix game: q named strategies
// and a q x q payoff matrix a(mine, theirs) giving the row player's payoff.
// This is the "game" half of the game -> update-rule -> kernel compilation
// contract (DESIGN.md §7): a game_matrix plus an update_rule compiles into a
// population protocol (games/game_protocol.hpp) that runs unchanged on every
// engine, and into a mean-field ODE (games/mean_field.hpp).
//
// Builders cover the classics — the paper's donation game, the general
// prisoner's dilemma, hawk-dove, the stag-hunt coordination game,
// rock-paper-scissors — plus the paper's own strategy set: igt_game_matrix
// re-expresses the repeated donation game over {AC, AD, g_1..g_k} through
// the exact payoff oracle, so the k-IGT path is one instance of the generic
// API.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ppg/games/closed_form.hpp"

namespace ppg {

/// A symmetric matrix game. "Symmetric" means both players share the one
/// strategy set and payoff function — the matrix itself need not be a
/// symmetric matrix (hawk-dove's is not).
class game_matrix {
 public:
  /// `payoffs` is row-major: payoffs[mine * q + theirs] is the payoff of
  /// playing `mine` against `theirs`. Requires at least two strategies,
  /// one (non-empty, unique) name per strategy, and finite payoffs.
  game_matrix(std::vector<std::string> strategy_names,
              std::vector<double> payoffs);

  [[nodiscard]] std::size_t num_strategies() const { return names_.size(); }

  /// Payoff of playing `mine` against an opponent playing `theirs`.
  [[nodiscard]] double payoff(std::size_t mine, std::size_t theirs) const;

  [[nodiscard]] const std::string& strategy_name(std::size_t s) const;
  [[nodiscard]] const std::vector<std::string>& strategy_names() const {
    return names_;
  }

  [[nodiscard]] double min_payoff() const { return min_payoff_; }
  [[nodiscard]] double max_payoff() const { return max_payoff_; }
  /// max_payoff() - min_payoff(): the normalizing constant bounded update
  /// rules (proportional imitation) divide payoff differences by.
  [[nodiscard]] double payoff_span() const {
    return max_payoff_ - min_payoff_;
  }

  /// Expected payoff of pure strategy `s` against an opponent drawn from
  /// `mix` (a probability vector of length num_strategies()).
  [[nodiscard]] double expected_payoff(std::size_t s,
                                       const std::vector<double>& mix) const;

  /// Population-average payoff when everyone plays `mix` against `mix`.
  [[nodiscard]] double average_payoff(const std::vector<double>& mix) const;

  /// All pure best responses to an opponent playing `mix`: every strategy
  /// whose expected payoff is within the *absolute* tie tolerance `tol` of
  /// the maximum (tol >= 0 required; tol = 0 is exact comparison). The
  /// tolerance is how degenerate games are handled honestly: payoffs that
  /// tie only up to floating-point noise are reported as joint best
  /// responses rather than arbitrarily ranked, so callers (the solver's
  /// stability classifier, the BR cycle detector) see the true tie
  /// structure. Callers comparing payoffs on very different scales should
  /// pass a tolerance scaled by payoff_span().
  [[nodiscard]] std::vector<std::size_t> best_responses(
      const std::vector<double>& mix, double tol = 1e-12) const;

  /// Same, against an opponent playing pure strategy `theirs` — exact
  /// payoff lookups, no expected-value rounding.
  [[nodiscard]] std::vector<std::size_t> best_responses_to_pure(
      std::size_t theirs, double tol = 1e-12) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> payoffs_;  ///< row-major q x q
  double min_payoff_ = 0.0;
  double max_payoff_ = 0.0;
};

/// The paper's donation game as a 2-strategy matrix over {C, D}:
/// a(C,C) = b-c, a(C,D) = -c, a(D,C) = b, a(D,D) = 0.
[[nodiscard]] game_matrix donation_matrix(const donation_game& game = {});

/// General prisoner's dilemma over {C, D} from (R, S, T, P) payoffs.
[[nodiscard]] game_matrix prisoners_dilemma_matrix(const pd_payoffs& p);

/// Hawk-dove over {H, D}: contested value v, fight cost c with c > v > 0,
/// so the mixed equilibrium plays hawk with probability v/c:
/// a(H,H) = (v-c)/2, a(H,D) = v, a(D,H) = 0, a(D,D) = v/2.
[[nodiscard]] game_matrix hawk_dove_matrix(double value, double cost);

/// Stag hunt over {S, H}: coordination with a payoff-dominant risky
/// equilibrium (stag > hare > 0):
/// a(S,S) = stag, a(S,H) = 0, a(H,S) = a(H,H) = hare.
[[nodiscard]] game_matrix stag_hunt_matrix(double stag = 4.0,
                                           double hare = 3.0);

/// Rock-paper-scissors over {R, P, S}: 0 on the diagonal, +win for the
/// winning strategy, -loss for the losing one (zero-sum when win == loss).
[[nodiscard]] game_matrix rock_paper_scissors_matrix(double win = 1.0,
                                                     double loss = 1.0);

/// The paper's repeated donation game over the strategy set
/// {AC, AD, g_1, ..., g_k} (generosity grid g_j = g_max (j-1)/(k-1)):
/// every entry is the exact expected repeated-game payoff f(S1, S2) from
/// the payoff oracle. Strategy indices follow igt_encoding — 0 = AC,
/// 1 = AD, 2+j = level j — so the matrix composes with igt_ladder_rule and
/// the existing igt population helpers.
[[nodiscard]] game_matrix igt_game_matrix(std::size_t k,
                                          const rd_setting& setting = {},
                                          double g_max = 0.9);

}  // namespace ppg
