// The named protocol registry: reconstructs a protocol from a (name, JSON
// params) pair, which is what makes a serialized sim_spec — and therefore a
// checkpoint file (pp/checkpoint.hpp) — self-describing: the header names
// the protocol, the registry rebuilds it, and the restored engine continues
// the trajectory. The same schema is the natural request surface for a
// future simulation service (`ppg-serve`): a session spec is one registry
// entry plus an initial census.
//
// Built-in entries (params are strict: unknown keys are rejected):
//   "rumor", "approximate-majority", "leader-election"   — params {}
//   "igt"          — {"k": uint, "discipline": "one_way"|"two_way"}
//   "matrix-game"  — {"game": <game>, "rule": <rule>, "discipline": ...}
// where <game> / <rule> are the JSON forms read by game_matrix_from_json /
// update_rule_from_json below. Downstream code may register additional
// protocols at startup via protocol_registry::global().add(...).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ppg/games/game_protocol.hpp"
#include "ppg/pp/kernel.hpp"
#include "ppg/util/json.hpp"

namespace ppg {

class protocol_registry {
 public:
  using factory =
      std::function<std::unique_ptr<protocol>(const json& params)>;

  /// The process-wide registry, pre-populated with the built-ins above.
  static protocol_registry& global();

  /// Registers a factory; throws on a duplicate or empty name.
  void add(std::string name, factory make);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Builds the named protocol from its parameter object; throws
  /// ppg::invariant_error on an unknown name or malformed params.
  [[nodiscard]] std::unique_ptr<protocol> make(const std::string& name,
                                               const json& params) const;

  /// Registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, factory>> factories_;
};

/// Builds a game_matrix from its JSON description: {"name": ...} selects a
/// builder ("donation" {b,c}, "prisoners-dilemma" {reward,sucker,temptation,
/// punishment}, "hawk-dove" {value,cost}, "stag-hunt" {stag,hare},
/// "rock-paper-scissors" {win,loss}, "igt" {k,b,c,delta,s1,g_max}) or, with
/// name "custom", reads explicit {"strategies": [names], "payoffs":
/// [row-major q*q]}. Strict-parse: unknown keys and missing fields throw.
[[nodiscard]] game_matrix game_matrix_from_json(const json& params);

/// Builds an update rule from {"name": ...}: "imitate-if-better" {},
/// "proportional-imitation" {rate}, "logit" {temperature}, "igt-ladder" {k}.
[[nodiscard]] std::shared_ptr<const update_rule> update_rule_from_json(
    const json& params);

/// revision_discipline ⇄ its canonical JSON string ("one_way"/"two_way").
[[nodiscard]] const char* revision_discipline_name(revision_discipline d);
[[nodiscard]] revision_discipline revision_discipline_from_name(
    const std::string& name);

}  // namespace ppg
