#include "ppg/pp/ensemble_engine.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "ppg/pp/engine.hpp"
#include "ppg/pp/multibatch_engine.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

ensemble_engine::ensemble_engine(
    const protocol& proto, const std::vector<std::uint64_t>& initial_counts,
    std::uint64_t master_seed, std::size_t replicas, pair_sampling sampling,
    std::shared_ptr<const kernel_table> kernel)
    : kernel_(kernel ? std::move(kernel)
                     : std::make_shared<const kernel_table>(proto)),
      replicas_(replicas),
      width_(initial_counts.size()),
      n_([&] {
        std::uint64_t n = 0;
        for (const auto c : initial_counts) n += c;
        return n;
      }()),
      master_seed_(master_seed),
      executor_(kernel_, width_, n_) {
  PPG_CHECK(replicas_ >= 1, "an ensemble needs at least one replica");
  PPG_CHECK(sampling == pair_sampling::distinct,
            "ensemble engine supports pair_sampling::distinct only");
  PPG_CHECK(kernel_->num_states() == proto.num_states(),
            "ensemble engine: precompiled kernel does not match the "
            "protocol");
  for (std::size_t s = 0; s < width_; ++s) {
    PPG_CHECK(s < kernel_->num_states() || initial_counts[s] == 0,
              "ensemble engine: agents in states outside the protocol's "
              "space");
  }
  counts_.resize(replicas_ * width_);
  untouched_.resize(replicas_ * width_);
  touched_.assign(replicas_ * width_, 0);
  for (std::size_t r = 0; r < replicas_; ++r) {
    std::copy(initial_counts.begin(), initial_counts.end(),
              counts_.data() + r * width_);
    std::copy(initial_counts.begin(), initial_counts.end(),
              untouched_.data() + r * width_);
  }
  untouched_total_.assign(replicas_, n_);
  interactions_.assign(replicas_, 0);
  rounds_.assign(replicas_, 0);
  collisions_.assign(replicas_, 0);
  pending_free_.assign(replicas_, 0);
  collision_pending_.assign(replicas_, 0);
  gens_.reserve(replicas_);
  for (std::size_t r = 0; r < replicas_; ++r) {
    // The batch_runner composition, verbatim: replica r's spec generator is
    // make_stream_rng(master, r), and make_engine seeds the engine from its
    // split() — so replica r here is the bitwise twin of a solo multibatch
    // engine inside batch_runner replica r.
    rng base = make_stream_rng(master_seed_, r);
    gens_.push_back(base.split());
  }
}

std::vector<std::uint64_t> ensemble_engine::replica_census(
    std::size_t r) const {
  PPG_CHECK(r < replicas_, "ensemble replica index out of range");
  const std::uint64_t* base = counts_.data() + r * width_;
  return {base, base + width_};
}

std::uint64_t ensemble_engine::total_interactions() const {
  std::uint64_t total = 0;
  for (const auto x : interactions_) total += x;
  return total;
}

std::uint64_t ensemble_engine::total_rounds() const {
  std::uint64_t total = 0;
  for (const auto x : rounds_) total += x;
  return total;
}

std::uint64_t ensemble_engine::total_collisions() const {
  std::uint64_t total = 0;
  for (const auto x : collisions_) total += x;
  return total;
}

std::vector<double> ensemble_engine::mean_fractions() const {
  std::vector<double> mean(width_, 0.0);
  for (std::size_t r = 0; r < replicas_; ++r) {
    const std::uint64_t* counts = replica_counts(r);
    for (std::size_t s = 0; s < width_; ++s) {
      mean[s] += static_cast<double>(counts[s]);
    }
  }
  const double denom =
      static_cast<double>(replicas_) * static_cast<double>(n_);
  for (auto& x : mean) x /= denom;
  return mean;
}

json ensemble_engine::save_state() const {
  json snapshot = json::object();
  snapshot["state_version"] = engine_state_version;
  snapshot["engine"] = "multibatch-ensemble";
  snapshot["master_seed"] = master_seed_;
  json replicas = json::array();
  for (std::size_t r = 0; r < replicas_; ++r) {
    multibatch_snapshot state;
    const std::uint64_t* base = counts_.data() + r * width_;
    state.counts.assign(base, base + width_);
    base = untouched_.data() + r * width_;
    state.untouched.assign(base, base + width_);
    base = touched_.data() + r * width_;
    state.touched.assign(base, base + width_);
    state.untouched_total = untouched_total_[r];
    state.interactions = interactions_[r];
    state.rounds = rounds_[r];
    state.collisions = collisions_[r];
    state.pending_free = pending_free_[r];
    state.collision_pending = collision_pending_[r] != 0;
    state.gen = gens_[r];
    replicas.push_back(dump_multibatch_snapshot(state));
  }
  snapshot["replicas"] = std::move(replicas);
  return snapshot;
}

void ensemble_engine::restore_state(const json& snapshot) {
  const char* where = "ensemble snapshot";
  json_require_keys(snapshot,
                    {"state_version", "engine", "master_seed", "replicas"},
                    where);
  const std::uint64_t version =
      json_require_uint(snapshot, "state_version", where);
  PPG_CHECK(version == engine_state_version,
            "ensemble snapshot: unsupported state_version " +
                std::to_string(version) + " (this build reads " +
                std::to_string(engine_state_version) + ")");
  const std::string& name = json_require_string(snapshot, "engine", where);
  PPG_CHECK(name == "multibatch-ensemble",
            "ensemble snapshot: engine kind is '" + name + "'");
  const std::uint64_t master_seed =
      json_require_uint(snapshot, "master_seed", where);
  const auto& entries = json_require_array(snapshot, "replicas", where);
  PPG_CHECK(entries.size() == replicas_,
            "ensemble snapshot: replica count mismatch — snapshot has " +
                std::to_string(entries.size()) + ", engine has " +
                std::to_string(replicas_));
  // Validate every entry before touching any plane, so a bad snapshot
  // leaves the ensemble unchanged.
  std::vector<multibatch_snapshot> states;
  states.reserve(replicas_);
  for (const auto& entry : entries) {
    states.push_back(
        parse_multibatch_snapshot(entry, width_, n_, kernel_->num_states()));
  }
  for (std::size_t r = 0; r < replicas_; ++r) {
    auto& state = states[r];
    std::copy(state.counts.begin(), state.counts.end(),
              counts_.data() + r * width_);
    std::copy(state.untouched.begin(), state.untouched.end(),
              untouched_.data() + r * width_);
    std::copy(state.touched.begin(), state.touched.end(),
              touched_.data() + r * width_);
    untouched_total_[r] = state.untouched_total;
    interactions_[r] = state.interactions;
    rounds_[r] = state.rounds;
    collisions_[r] = state.collisions;
    pending_free_[r] = state.pending_free;
    collision_pending_[r] = state.collision_pending ? 1 : 0;
    gens_[r] = state.gen;
  }
  master_seed_ = master_seed;
}

void ensemble_engine::set_threads(std::size_t threads) {
  if (threads <= 1) {
    pool_.reset();
    executor_.set_workers(1);
    return;
  }
  if (!pool_ || pool_->size() != threads) {
    pool_ = std::make_unique<thread_pool>(threads);
  }
  executor_.set_workers(threads);
}

void ensemble_engine::run(std::uint64_t steps) {
  const auto advance = [&](std::size_t worker, std::size_t r) {
    multibatch_state st;
    st.counts = counts_.data() + r * width_;
    st.untouched = untouched_.data() + r * width_;
    st.touched = touched_.data() + r * width_;
    st.width = width_;
    st.n = n_;
    st.untouched_total = untouched_total_[r];
    st.gen = &gens_[r];
    st.interactions = interactions_[r];
    st.rounds = rounds_[r];
    st.collisions = collisions_[r];
    st.pending_free = pending_free_[r];
    st.collision_pending = collision_pending_[r] != 0;
    executor_.run(st, steps, worker);
    untouched_total_[r] = st.untouched_total;
    interactions_[r] = st.interactions;
    rounds_[r] = st.rounds;
    collisions_[r] = st.collisions;
    pending_free_[r] = st.pending_free;
    collision_pending_[r] = st.collision_pending ? 1 : 0;
  };
  if (pool_) {
    pool_->run_sharded(replicas_, advance);
  } else {
    for (std::size_t r = 0; r < replicas_; ++r) advance(0, r);
  }
}

}  // namespace ppg
