#include "ppg/pp/population.hpp"

#include "ppg/util/error.hpp"

namespace ppg {

population::population(std::vector<agent_state> states,
                       std::size_t num_state_kinds)
    : states_(std::move(states)), counts_(num_state_kinds, 0) {
  PPG_CHECK(!states_.empty(), "population must be non-empty");
  PPG_CHECK(num_state_kinds > 0, "need at least one state kind");
  for (const auto s : states_) {
    PPG_CHECK(s < num_state_kinds, "agent state out of range");
    ++counts_[s];
  }
}

population::population(std::size_t n, agent_state state,
                       std::size_t num_state_kinds)
    : population(std::vector<agent_state>(n, state), num_state_kinds) {}

agent_state population::state_of(std::size_t agent) const {
  PPG_CHECK(agent < states_.size(), "agent index out of range");
  return states_[agent];
}

void population::set_state(std::size_t agent, agent_state next) {
  PPG_CHECK(agent < states_.size(), "agent index out of range");
  PPG_CHECK(next < counts_.size(), "agent state out of range");
  apply_interaction(agent, next);
}

void population::apply_interaction(std::size_t agent, agent_state next) {
  PPG_DCHECK(agent < states_.size(), "agent index out of range");
  PPG_DCHECK(next < counts_.size(), "agent state out of range");
  const agent_state prev = states_[agent];
  if (prev == next) return;
  --counts_[prev];
  ++counts_[next];
  states_[agent] = next;
}

std::uint64_t population::count(agent_state state) const {
  PPG_CHECK(state < counts_.size(), "state out of range");
  return counts_[state];
}

std::vector<double> population::fractions() const {
  std::vector<double> out(counts_.size());
  for (std::size_t s = 0; s < counts_.size(); ++s) {
    out[s] = static_cast<double>(counts_[s]) /
             static_cast<double>(states_.size());
  }
  return out;
}

}  // namespace ppg
